#!/bin/bash
# Sequential benchmark chunks, all appending to bench_output.txt.
cd /root/repo
: > bench_output.txt
python3 -m pytest benchmarks/bench_fig1_kernel.py benchmarks/bench_fig2_decomposition.py \
    benchmarks/bench_fig4_weak_scaling.py benchmarks/bench_table2_breakdown.py \
    benchmarks/bench_time_to_solution.py benchmarks/bench_state_of_the_art.py \
    --benchmark-only -p no:cacheprovider 2>&1 | tee -a bench_output.txt | tail -1
python3 -m pytest benchmarks/bench_fig3_milkyway.py benchmarks/bench_ablation_ics.py \
    --benchmark-only -p no:cacheprovider 2>&1 | tee -a bench_output.txt | tail -1
python3 -m pytest benchmarks/bench_ablation_equal_mass.py benchmarks/bench_ablation_mac.py \
    benchmarks/bench_ablation_quadrupole.py benchmarks/bench_ablation_nleaf.py \
    benchmarks/bench_ablation_sfc.py benchmarks/bench_ablation_sampling.py \
    --benchmark-only -p no:cacheprovider 2>&1 | tee -a bench_output.txt | tail -1
echo BENCH_ALL_DONE
