"""Fig. 3 -- Milky Way evolution: bar formation, spiral structure and
solar-neighborhood kinematics.

The paper's 51-billion-particle run forms a bar by ~4 Gyr which induces
spiral arms; the (v_r, v_phi) distribution near the Sun develops moving
groups.  A laptop cannot integrate 51e9 particles for 6 Gyr, so this
benchmark substitutes a *bar-unstable scaled variant*: the same
composite model with a heavier disk and reduced halo (disk mass x2.4,
Toomre Q ~ 1.1), which undergoes the same global m=2 instability within
~0.3 Gyr instead of ~3.5 Gyr.  The code path exercised -- live disk +
live halo + live bulge through the full tree pipeline -- is exactly the
production one, and the asserted *sequence* matches the paper: initially
axisymmetric disk, growth of persistent m=2 structure, central surface
density concentration, realistic solar-neighborhood velocity ellipsoid.

The paper's standard (warm, Q = 1.2) model is also checked: it must NOT
form a bar this quickly ("The galaxy did not form any prominent
structure up to half-way through the simulation").
"""

import dataclasses

import numpy as np
import pytest

from conftest import write_result
from repro import Simulation, SimulationConfig
from repro.analysis import (
    bar_strength,
    radial_surface_density,
    solar_neighborhood,
    surface_density_map,
    velocity_distribution,
)
from repro.constants import MILKY_WAY_PAPER, internal_to_gyr, internal_to_kms
from repro.ics import milky_way_model
from repro.particles import COMPONENT_DISK

N_PART = 8_000
N_STEPS = 100
DT = 0.5          # internal units ~ 2.4 Myr (resolves disk encounters)
EPS = 0.4         # kpc; ~ the inter-particle spacing of the small disk
THETA = 0.7

#: The bar-unstable variant (see module docstring): disk mass x2.4,
#: reduced halo, marginal Toomre Q.  Locally warm enough to conserve
#: energy, globally unstable enough to grow m=2 structure within
#: ~0.3 Gyr instead of ~3.5 Gyr.
UNSTABLE = dataclasses.replace(MILKY_WAY_PAPER, disk_mass=12.0,
                               halo_mass=45.0, disk_toomre_q=1.1)


@pytest.fixture(scope="module")
def evolution():
    """Evolve the unstable variant once; shared by the Fig. 3 checks."""
    ps = milky_way_model(N_PART, params=UNSTABLE, seed=104)
    cfg = SimulationConfig(theta=THETA, softening=EPS, dt=DT)
    sim = Simulation(ps, cfg)
    e0 = sim.diagnostics()
    records = []

    def record(s):
        disk = s.particles.select_component(COMPONENT_DISK)
        a2, phase = bar_strength(disk.pos, disk.mass, r_max=5.0)
        records.append((s.time, a2, phase))

    record(sim)
    for _ in range(N_STEPS):
        sim.step()
        if sim.step_count % 10 == 0:
            record(sim)
    return sim, e0, records


def test_fig3_bar_growth(benchmark, evolution, results_dir):
    sim, e0, records = benchmark.pedantic(lambda: evolution, rounds=1,
                                          iterations=1)
    lines = ["Fig. 3 (time series): m=2 bar amplitude of the disk",
             f"bar-unstable variant, N = {N_PART}, theta = {THETA}, "
             f"dt = {DT * 4.71:.1f} Myr",
             f"{'t [Gyr]':>8s} {'A2/A0':>8s} {'phase':>8s}"]
    for t, a2, ph in records:
        lines.append(f"{internal_to_gyr(t):8.3f} {a2:8.4f} {ph:8.3f}")
    write_result("fig3_bar_growth", lines)

    a2 = np.array([r[1] for r in records])
    assert a2[0] < 0.12                      # axisymmetric start
    # Persistent m=2 structure by the end (the instantaneous amplitude
    # fluctuates as the pattern shears, so compare window means).
    half = len(a2) // 2
    assert a2[half:].mean() > max(0.12, 3.0 * a2[0])
    assert a2[half:].mean() > a2[1:half].mean() * 0.8


def test_fig3_energy_conservation(benchmark, evolution):
    sim, e0, _ = benchmark.pedantic(lambda: evolution, rounds=1, iterations=1)
    e1 = sim.diagnostics()
    assert abs((e1.total - e0.total) / e0.total) < 0.05


def test_fig3_surface_density_panels(benchmark, evolution, results_dir):
    """The face-on surface density panels (ASCII rendering)."""
    sim, _, _ = benchmark.pedantic(lambda: evolution, rounds=1, iterations=1)
    disk = sim.particles.select_component(COMPONENT_DISK)
    sigma, _ = surface_density_map(disk.pos, disk.mass, extent=12.0, bins=24)
    peak = sigma.max()
    lines = [f"Fig. 3 (face-on panel) at t = {internal_to_gyr(sim.time):.2f} Gyr",
             "log-scaled surface density:"]
    chars = " .:-=+*#%@"
    for row in sigma.T[::-1]:
        s = ""
        for v in row:
            if v <= 0:
                s += " "
            else:
                level = int(np.clip((np.log10(v / peak) + 2.0) / 2.0 * 9, 0, 9))
                s += chars[level]
        lines.append(s)
    R, prof = radial_surface_density(disk.pos, disk.mass, r_max=12.0, bins=12)
    lines.append("Sigma(R): " + " ".join(f"{v:.3g}" for v in prof))
    write_result("fig3_surface_density", lines)
    assert prof[0] > prof[-1]     # centrally concentrated
    assert np.isfinite(prof).all()


def test_fig3_solar_neighborhood_kinematics(benchmark, evolution, results_dir):
    """The (v_r, v_phi) panel: a realistic velocity ellipsoid near the
    solar radius with the epicyclic axis ratio."""
    sim, _, _ = benchmark.pedantic(lambda: evolution, rounds=1, iterations=1)
    disk = sim.particles.select_component(COMPONENT_DISK)
    # widen the selection for the small-N model (paper: 500 pc at 51e9)
    idx = solar_neighborhood(disk.pos, disk.vel, r_sun=8.0, radius=3.5)
    assert len(idx) > 20
    v_r, v_phi = velocity_distribution(disk.pos, disk.vel, idx)
    sr = internal_to_kms(np.std(v_r))
    sp = internal_to_kms(np.std(v_phi))
    write_result("fig3_solar_neighborhood", [
        f"solar-neighborhood sample: {len(idx)} disk particles",
        f"sigma(v_r) = {sr:.1f} km/s, sigma(v_phi) = {sp:.1f} km/s",
        "(paper panel spans +-80 km/s in both axes)"])
    # Realistic dispersion scale.  The strict epicyclic ordering
    # (sigma_phi < sigma_r) holds for the quiet disk but is scrambled by
    # azimuthal streaming once the bar forms, so allow a loose ratio.
    assert 5.0 < sr < 200.0
    assert 5.0 < sp < 200.0
    assert sp < 1.7 * sr


def test_fig3_standard_model_stays_quiet(benchmark, results_dir):
    """The paper's warm Q=1.2 model must not grow a bar over the same
    short horizon -- 'no prominent structure up to ~3 billion years'."""
    def run():
        ps = milky_way_model(N_PART, seed=105)
        cfg = SimulationConfig(theta=THETA, softening=EPS, dt=DT)
        sim = Simulation(ps, cfg)
        a2_series = []
        for _ in range(20):
            sim.step()
            disk = sim.particles.select_component(COMPONENT_DISK)
            a2_series.append(bar_strength(disk.pos, disk.mass, r_max=5.0)[0])
        return a2_series

    a2 = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("fig3_standard_quiet", [
        "standard (Q = 1.2) model, first ~0.25 Gyr:",
        "A2 series: " + " ".join(f"{v:.3f}" for v in a2)])
    assert max(a2) < 0.25
