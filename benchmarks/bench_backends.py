"""Compute-backend comparison on the tree-walk hot path.

Runs the identical group-centric tree force evaluation (fixed Plummer
ICs, fixed tree) through every *available* registered compute backend
(``repro.gravity.backends``) and records per-backend wall clock,
achieved Gflop/s and the speedup over the ``numpy`` reference.

Interaction counts are a walk property no backend may change, so
``n_pp``/``n_pc``/``counts_match`` gate hard in the history verdict;
wall-clock rows are advisory (the CI container is 1-CPU).  On hosts
without numba/cupy the bench degrades to a numpy-only baseline row --
the ``backend-matrix`` CI job, which pip-installs numba, is where the
``numba_speedup_vs_numpy`` trajectory is recorded.

Environment knobs: ``BACKEND_BENCH_N`` (particles, default 8000) and
``BACKEND_BENCH_REPEATS`` (timed evaluations per backend, default 3).
"""

import os
import time

from conftest import append_history, write_result
from repro.gravity import (
    FLOPS_PER_PC,
    FLOPS_PER_PP,
    available_backends,
    get_backend,
    tree_forces,
)
from repro.gravity.backends import NumbaBackend
from repro.ics import plummer_model
from repro.obs.bench import BenchResult, register_bench
from repro.octree import build_octree, compute_moments, make_groups
from repro.testing.differential import max_rel_difference

BENCH_N = int(os.environ.get("BACKEND_BENCH_N", "8000"))
BENCH_REPEATS = int(os.environ.get("BACKEND_BENCH_REPEATS", "3"))
THETA = 0.5
EPS = 0.02
SEED = 7


def _problem(n, seed=SEED):
    ps = plummer_model(n, seed=seed)
    tree = build_octree(ps.pos, nleaf=16)
    compute_moments(tree, ps.pos, ps.mass)
    make_groups(tree, 64)
    return tree, ps


def _time_backend(backend, tree, ps, repeats):
    """(best wall seconds, TreeWalkResult) for one backend.

    ``warmup()`` runs before any clock starts (JIT compilation must
    never pollute a timed region), then one untimed evaluation primes
    caches, then ``repeats`` timed evaluations; best-of is reported.
    """
    be = get_backend(backend)
    be.warmup()
    kw = dict(theta=THETA, eps=EPS, quadrupole=True, backend=be)
    res = tree_forces(tree, ps.pos, ps.mass, **kw)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        res = tree_forces(tree, ps.pos, ps.mass, **kw)
        best = min(best, time.perf_counter() - t0)
    return best, res


@register_bench("kernel_backends",
                description="force-kernel compute backends: identical "
                            "interaction counts (gate), per-backend "
                            "Gflop/s and speedup vs numpy (advisory)")
def run_bench(n=BENCH_N, repeats=BENCH_REPEATS) -> BenchResult:
    tree, ps = _problem(n)
    wall: dict[str, float] = {}
    results = {}
    for name in available_backends():
        seconds, res = _time_backend(name, tree, ps, repeats)
        results[name] = res
        flops = res.counts.n_pp * FLOPS_PER_PP + res.counts.n_pc * FLOPS_PER_PC
        wall[f"wall_{name}_s"] = seconds
        wall[f"gflops_{name}"] = flops / seconds / 1e9
    for name in results:
        if name != "numpy":
            wall[f"{name}_speedup_vs_numpy"] = \
                wall["wall_numpy_s"] / wall[f"wall_{name}_s"]
    ref = results["numpy"]
    return BenchResult(
        bench="kernel_backends",
        config={"n": n, "repeats": repeats, "theta": THETA, "eps": EPS,
                "seed": SEED},
        counts={"n_pp": ref.counts.n_pp, "n_pc": ref.counts.n_pc,
                "counts_match": int(all(
                    (r.counts.n_pp, r.counts.n_pc)
                    == (ref.counts.n_pp, ref.counts.n_pc)
                    for r in results.values()))},
        wall=wall,
        meta={"backends": sorted(results), "cpu_count": os.cpu_count()},
    )


def test_backend_bench_equivalence(results_dir):
    """Every backend the bench would time agrees with the oracle.

    Small problem (the bench itself runs bigger): counts bitwise, forces
    inside the differential theta^2 envelope.  The numba pass source is
    always exercised via the python fallback, so a numba-free host still
    validates the fused algorithm before CI times it.
    """
    tree, ps = _problem(1500, seed=SEED)
    envelope = 0.3 * THETA ** 2
    kw = dict(theta=THETA, eps=EPS, quadrupole=True)
    ref = tree_forces(tree, ps.pos, ps.mass, backend="numpy", **kw)
    checked = []
    extras = [get_backend(n) for n in available_backends() if n != "numpy"]
    for be in [NumbaBackend(python_fallback=True), *extras]:
        res = tree_forces(tree, ps.pos, ps.mass, backend=be, **kw)
        assert (res.counts.n_pp, res.counts.n_pc) \
            == (ref.counts.n_pp, ref.counts.n_pc), be.name
        rel = max_rel_difference(res.acc, ref.acc)
        assert rel < envelope, (be.name, rel)
        checked.append((be.name, rel))

    result = run_bench(n=1500, repeats=1)
    append_history(result)
    lines = [
        f"Compute-backend bench (N=1500, theta={THETA}, "
        f"cpu_count={os.cpu_count()})",
        f"counts: n_pp={result.counts['n_pp']:.0f} "
        f"n_pc={result.counts['n_pc']:.0f} "
        f"match={result.counts['counts_match']:.0f}",
    ]
    for name, rel in checked:
        lines.append(f"  {name:16s} max rel diff vs numpy-f64: {rel:.3e}")
    for key in sorted(result.wall):
        lines.append(f"  {key:28s} {result.wall[key]:.6g}")
    write_result("backends", lines)
    assert result.counts["counts_match"] == 1
