"""Ablation: serial vs hierarchical sampling for the domain update.

The paper parallelized the sampling method because the serial variant's
DD-process must sort O(rate * N_total) samples -- a serial bottleneck as
P grows.  We measure the root-rank sample volume and the wall time of
both decomposers across rank counts (the shape -- serial cost growing
with total samples while hierarchical splits it px ways -- is what
matters; absolute times are host-dependent).
"""

import time

import numpy as np
import pytest

from conftest import write_result
from repro.parallel import hierarchical_sample_boundaries, serial_sample_boundaries
from repro.parallel.loadbalance import domain_counts
from repro.simmpi import SimWorld, spmd_run

N_PER_RANK = 50_000
RATE = 0.05


def _run(method, size):
    world = SimWorld(size)

    def prog(comm):
        rng = np.random.default_rng(109 + comm.rank)
        keys = np.sort(rng.integers(0, 2 ** 63, N_PER_RANK, dtype=np.uint64))
        t0 = time.perf_counter()
        if method == "serial":
            b = serial_sample_boundaries(comm, keys, None, comm.size, RATE)
        else:
            b = hierarchical_sample_boundaries(comm, keys, None, comm.size,
                                               RATE / 5, RATE)
        dt = time.perf_counter() - t0
        return dt, domain_counts(keys, b)

    results = spmd_run(size, prog, world=world)
    times = [r[0] for r in results]
    counts = np.sum([r[1] for r in results], axis=0)
    return max(times), counts, world.traffic.total_bytes


@pytest.mark.parametrize("method", ["serial", "hierarchical"])
@pytest.mark.parametrize("size", [4, 9])
def test_sampling_method(benchmark, method, size, results_dir):
    t, counts, nbytes = benchmark.pedantic(lambda: _run(method, size),
                                           rounds=1, iterations=1)
    write_result(f"ablation_sampling_{method}_{size}", [
        f"{method} decomposition, {size} ranks x {N_PER_RANK} particles",
        f"max rank wall time: {t * 1e3:.1f} ms",
        f"imbalance max/mean: {counts.max() / counts.mean():.3f}",
        f"traffic: {nbytes} bytes"])
    assert counts.max() / counts.mean() < 1.35


def test_both_methods_balance_equally_well(benchmark, results_dir):
    _, c_s, _ = benchmark.pedantic(lambda: _run("serial", 6), rounds=1, iterations=1)
    _, c_h, _ = _run("hierarchical", 6)
    imb_s = c_s.max() / c_s.mean()
    imb_h = c_h.max() / c_h.mean()
    write_result("ablation_sampling_summary", [
        f"serial imbalance:       {imb_s:.3f}",
        f"hierarchical imbalance: {imb_h:.3f}"])
    assert imb_h < 1.3
    assert imb_s < 1.3
