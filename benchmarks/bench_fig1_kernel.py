"""Fig. 1 -- force-kernel performance.

Regenerates the five bars of Fig. 1 from the GPU kernel model and, as
the honest counterpart, measures this repository's own (NumPy) kernels
in Gflops using the paper's operation-count conventions.  The paper's
quantitative claims are asserted: the tuned Kepler tree kernel is ~2x
the original and ~4x the Fermi kernel, and the tree kernel on K20X is
competitive with the CUDA-SDK direct kernel.
"""

import time

import numpy as np
import pytest

from conftest import write_result
from repro.gravity import (
    FLOPS_PER_PC,
    FLOPS_PER_PP,
    available_backends,
    get_backend,
    pc_interactions,
    pp_interactions,
)
from repro.perfmodel import fig1_bars

N_PAIRS = 1 << 20


@pytest.fixture(scope="module")
def pair_data():
    rng = np.random.default_rng(100)
    d = rng.normal(size=(N_PAIRS, 3)) * 5.0
    m = rng.uniform(0.1, 1.0, N_PAIRS)
    quad = rng.normal(size=(N_PAIRS, 6)) * 0.1
    return d, m, quad


def test_fig1_model_bars(benchmark, results_dir):
    bars = benchmark(fig1_bars)
    lines = ["Fig. 1: force kernel performance (modelled, Gflops)",
             f"{'GPU':8s} {'kernel':14s} {'Gflops':>8s} {'frac peak':>10s}"]
    for gpu, kernel, gflops, frac in bars:
        lines.append(f"{gpu:8s} {kernel:14s} {gflops:8.0f} {frac:10.2f}")
    write_result("fig1_kernel_model", lines)
    d = {(g, k): v for g, k, v, _ in bars}
    assert d[("K20X", "tree/tuned")] / d[("K20X", "tree/original")] > 1.9
    assert d[("K20X", "tree/tuned")] / d[("C2075", "tree/original")] > 3.5


def bench_pp(d, m):
    return pp_interactions(d[:, 0], d[:, 1], d[:, 2], m, 0.01)


def bench_pc(d, m, quad):
    return pc_interactions(d[:, 0], d[:, 1], d[:, 2], m, quad, 0.01)


def test_measured_pp_kernel_gflops(benchmark, pair_data, results_dir):
    d, m, _ = pair_data
    benchmark(bench_pp, d, m)
    gflops = N_PAIRS * FLOPS_PER_PP / benchmark.stats["mean"] / 1e9
    write_result("fig1_measured_pp", [
        "Host (NumPy) p-p kernel, paper convention (23 flops/interaction)",
        f"pairs/call: {N_PAIRS}",
        f"sustained: {gflops:.3f} Gflops"])
    assert gflops > 0.01


def test_measured_pc_kernel_gflops(benchmark, pair_data, results_dir):
    d, m, quad = pair_data
    benchmark(bench_pc, d, m, quad)
    gflops = N_PAIRS * FLOPS_PER_PC / benchmark.stats["mean"] / 1e9
    write_result("fig1_measured_pc", [
        "Host (NumPy) p-c kernel, paper convention (65 flops/interaction)",
        f"pairs/call: {N_PAIRS}",
        f"sustained: {gflops:.3f} Gflops"])
    assert gflops > 0.01


def test_measured_backend_kernel_gflops(pair_data, results_dir):
    """Per-backend Gflop/s on the same pair batch (select: -k backend).

    Times every *available* compute backend's raw pair-batch kernels
    (``backend.pp_kernel`` / ``backend.pc_kernel``) with manual best-of
    timing rather than the benchmark fixture, so the row count adapts to
    whatever backends the host carries -- on a numba-free container this
    is a numpy-only table, in the backend-matrix CI job the numba column
    appears next to it.  Kernel output must match the reference batch
    kernels, so the table can never drift from the physics."""
    d, m, quad = pair_data
    ref_pp = pp_interactions(d[:, 0], d[:, 1], d[:, 2], m, 0.01)
    ref_pc = pc_interactions(d[:, 0], d[:, 1], d[:, 2], m, quad, 0.01)
    lines = ["Host pair-batch kernels by compute backend "
             "(paper flop conventions)",
             f"pairs/call: {N_PAIRS}",
             f"{'backend':12s} {'pp Gflops':>10s} {'pc Gflops':>10s}"]
    for name in available_backends():
        backend = get_backend(name)
        backend.warmup()
        rates = []
        for kernel, ref, flops in (
                (lambda: backend.pp_kernel(d[:, 0], d[:, 1], d[:, 2],
                                           m, 0.01),
                 ref_pp, FLOPS_PER_PP),
                (lambda: backend.pc_kernel(d[:, 0], d[:, 1], d[:, 2],
                                           m, quad, 0.01),
                 ref_pc, FLOPS_PER_PC)):
            got = kernel()
            for g, r in zip(got, ref):
                np.testing.assert_allclose(g, r, rtol=1e-12, atol=1e-12)
            best = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                kernel()
                best = min(best, time.perf_counter() - t0)
            rates.append(N_PAIRS * flops / best / 1e9)
        lines.append(f"{name:12s} {rates[0]:10.3f} {rates[1]:10.3f}")
        assert min(rates) > 0.01
    write_result("fig1_measured_backends", lines)


def test_pc_kernel_costs_more_per_interaction(benchmark, pair_data):
    """The 65-flop p-c kernel must cost more wall-clock per interaction
    than the 23-flop p-p kernel.  (On the K20X the p-c kernel sustains a
    *higher* flop rate -- fma-rich vs rsqrt-bound -- which is encoded in
    the model's split R_pp/R_pc; NumPy on a CPU is memory-bound instead,
    so here we assert only the cost ordering, not the rate ordering.)"""
    import time
    d, m, quad = pair_data

    def both():
        t_pp = min(_timed(bench_pp, d, m) for _ in range(3))
        t_pc = min(_timed(bench_pc, d, m, quad) for _ in range(3))
        return t_pp, t_pc

    def _timed(fn, *args):
        t0 = time.perf_counter()
        fn(*args)
        return time.perf_counter() - t0

    t_pp, t_pc = benchmark.pedantic(both, rounds=1, iterations=1)
    assert t_pc > t_pp
