"""Ablation: initial-condition velocity assignment (Jeans vs Eddington).

The paper uses GalacticICS, which samples exact distribution functions.
Our default is the cheaper Jeans-Gaussian method; this ablation checks
what the exact (Eddington) sampler buys: a realization closer to
equilibrium, i.e. smaller virial transient when evolved.
"""

import numpy as np
import pytest

from conftest import write_result
from repro import Simulation, SimulationConfig
from repro.gravity import direct_forces
from repro.ics import milky_way_model
from repro.integrator import system_diagnostics

N = 6000


def _virial_drift(method: str, steps: int = 10) -> tuple[float, float]:
    ps = milky_way_model(N, seed=111, velocity_method=method)
    cfg = SimulationConfig(theta=0.6, softening=0.2, dt=1.0)
    sim = Simulation(ps, cfg)
    d0 = sim.diagnostics()
    sim.evolve(steps)
    d1 = sim.diagnostics()
    return d0.virial_ratio, d1.virial_ratio


@pytest.mark.parametrize("method", ["jeans", "eddington"])
def test_ics_method(benchmark, method, results_dir):
    v0, v1 = benchmark.pedantic(lambda: _virial_drift(method), rounds=1,
                                iterations=1)
    write_result(f"ablation_ics_{method}", [
        f"velocity method = {method}, N = {N}",
        f"virial ratio: t=0 {v0:.3f} -> after 10 steps {v1:.3f}"])
    # Both must start near equilibrium and stay bound.
    assert v0 == pytest.approx(1.0, abs=0.15)
    assert 0.6 < v1 < 1.6


def test_generation_cost(benchmark):
    """Eddington costs more to generate; both must be fast enough for
    'on the fly' generation (Sec. IV avoids start-up IO this way)."""
    t = benchmark.pedantic(
        lambda: milky_way_model(N, seed=112, velocity_method="eddington"),
        rounds=1, iterations=1)
    assert t.n == N
