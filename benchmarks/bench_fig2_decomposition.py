"""Fig. 2 -- Peano-Hilbert domain decomposition.

The figure illustrates 5 SFC domains over a particle distribution, with
the gray "boundary cells" that double as LET structures.  This benchmark
decomposes a disk galaxy over 5 ranks, writes an ASCII rendering of the
midplane domain map, and asserts the figure's structural claims:
domains are contiguous key ranges, balanced in count, spatially compact,
and each rank's boundary structure is far smaller than its full tree.
"""

import numpy as np
import pytest

from conftest import write_result
from repro.config import SimulationConfig
from repro.ics import milky_way_model
from repro.octree import build_octree, compute_moments, compute_opening_radii
from repro.parallel import boundary_structure, domain_update, exchange_particles
from repro.sfc import BoundingBox
from repro.simmpi import spmd_run

N_RANKS = 5
# Large enough that domains develop a genuine interior: the boundary-
# cell fraction only drops below ~1 once each rank holds >~10k particles.
N_PART = 60_000


def _decompose():
    ps = milky_way_model(N_PART, seed=101)
    box = BoundingBox.from_positions(ps.pos)
    cfg = SimulationConfig(theta=0.5)

    def prog(comm):
        lo = N_PART * comm.rank // comm.size
        hi = N_PART * (comm.rank + 1) // comm.size
        local = ps.select(np.arange(lo, hi))
        keys = box.keys(local.pos)
        order = np.argsort(keys)
        local.reorder(order)
        decomp = domain_update(comm, keys[order], rate2=0.1)
        local = exchange_particles(comm, local, keys[order], decomp)
        tree = build_octree(local.pos, nleaf=16, box=box)
        compute_moments(tree, local.pos, local.mass)
        compute_opening_radii(tree, cfg.theta, cfg.mac)
        spos = local.pos[tree.order]
        b = boundary_structure(tree, spos, local.mass[tree.order])
        return local, tree.n_cells, b.n_cells, b.nbytes

    return ps, spmd_run(N_RANKS, prog)


@pytest.fixture(scope="module")
def decomposition():
    return _decompose()


def test_fig2_domain_map(benchmark, decomposition, results_dir):
    ps, results = benchmark.pedantic(lambda: decomposition, rounds=1,
                                     iterations=1)
    # ASCII map of the midplane: which rank owns each pixel (by majority).
    grid = 40
    extent = 15.0
    owner = np.full((grid, grid), -1)
    best = np.zeros((grid, grid))
    for rank, (local, *_rest) in enumerate(results):
        sel = np.abs(local.pos[:, 2]) < 1.0
        h, _, _ = np.histogram2d(local.pos[sel, 0], local.pos[sel, 1],
                                 bins=grid, range=[[-extent, extent]] * 2)
        take = h > best
        owner[take] = rank
        best[take] = h[take]
    lines = ["Fig. 2: PH-SFC domain decomposition, disk midplane "
             f"({N_RANKS} ranks; '.' = empty)"]
    for row in owner.T[::-1]:
        lines.append("".join("." if v < 0 else str(int(v)) for v in row))
    counts = [r[0].n for r in results]
    lines.append(f"particles per domain: {counts}")
    lines.append("tree cells / boundary cells / boundary KB per rank:")
    for rank, (_, ncells, bcells, bbytes) in enumerate(results):
        lines.append(f"  rank {rank}: {ncells:6d} / {bcells:6d} / {bbytes / 1024:8.1f}")
    write_result("fig2_decomposition", lines)

    counts = np.array(counts)
    assert counts.sum() == N_PART
    assert counts.max() < 1.3 * counts.mean()


def test_domains_spatially_compact(benchmark, decomposition):
    """SFC domains are compact: a domain's RMS radius about its own
    centroid is much smaller than the full system's extent."""
    ps, results = benchmark.pedantic(lambda: decomposition, rounds=1, iterations=1)
    full_rms = np.sqrt(np.mean(np.sum(ps.pos ** 2, axis=1)))
    for local, *_ in results:
        c = local.pos.mean(axis=0)
        rms = np.sqrt(np.mean(np.sum((local.pos - c) ** 2, axis=1)))
        assert rms < full_rms


def test_boundary_fraction_shrinks_with_n(benchmark, decomposition):
    """The gray boundary cells of Fig. 2 live on the domain surface, so
    their share of the local tree shrinks as domains grow -- the
    property that keeps the allgather cheap at 13M particles per GPU
    ('the number of particles at the domain surface ... increases at a
    lower rate than the total number', Sec. III-B2).  At laptop scale
    the fraction is still large; what must hold is the trend."""
    _, results = benchmark.pedantic(lambda: decomposition, rounds=1, iterations=1)
    frac_large = np.mean([bcells / ncells for _, ncells, bcells, _ in results])
    assert frac_large < 1.0
    # Repeat at a quarter of the size: the fraction must be larger.
    from repro.perfmodel.calibration import calibrate_boundary_sizes
    cal = calibrate_boundary_sizes(n_values=[8000, 64000], theta=0.5,
                                   seed=110)
    small_frac = cal.boundary_cells[0] / 8000
    large_frac = cal.boundary_cells[1] / 64000
    assert large_frac < small_frac
    assert cal.power_law_exponent < 0.9
