"""Threads-vs-process transport wall-clock at the bench_step config.

Runs the identical distributed step pipeline (Milky-Way disk ICs, 4
SimMPI ranks) on the threaded reference transport and the
multiprocessing/shared-memory transport, and records the comparison to
``benchmarks/results/BENCH_transport.json``.

The threaded transport shares one GIL, so its four "ranks" mostly
serialize; the process transport runs one OS process per rank and is
expected to win on a multi-core host.  **The speedup assertion is gated
on ``os.cpu_count() >= 4``**: on a single-core machine (like the CI
container this repo grew up in) forked ranks time-slice one core and
pay fork + shared-memory shipping on top, so process >= threads there
is the *expected* outcome, not a regression.  The JSON record always
stores ``cpu_count`` so a reader can tell which regime produced it.

Environment knobs: ``TRANSPORT_BENCH_N`` (particles, default 8000 --
the recorded runs use 40000) and ``TRANSPORT_BENCH_STEPS`` (default 3).
"""

import json
import os
import time

import numpy as np

from conftest import RESULTS_DIR, append_history, write_result
from repro import SimulationConfig
from repro.core.parallel_simulation import gather_particles, run_parallel_simulation
from repro.ics import milky_way_model
from repro.obs.bench import BenchResult, register_bench

N_RANKS = 4
BENCH_N = int(os.environ.get("TRANSPORT_BENCH_N", "8000"))
BENCH_STEPS = int(os.environ.get("TRANSPORT_BENCH_STEPS", "3"))


def _cfg():
    return SimulationConfig(theta=0.5, softening=0.1, dt=0.1)


def _run(transport: str, n: int = BENCH_N, steps: int = BENCH_STEPS):
    ps = milky_way_model(n, seed=42)
    t0 = time.perf_counter()
    sims = run_parallel_simulation(N_RANKS, ps, _cfg(), n_steps=steps,
                                   timeout=3600.0, transport=transport)
    wall = time.perf_counter() - t0
    recv_wait = sum(s.recv_wait_seconds for s in sims)
    n_pp = sum(bd.counts.n_pp for s in sims for bd in s.history)
    n_pc = sum(bd.counts.n_pc for s in sims for bd in s.history)
    return wall, recv_wait, (n_pp, n_pc), gather_particles(sims)


@register_bench("transport",
                description="threads vs process transport: identical "
                            "interaction counts (gate), wall ratio "
                            "(advisory on few-core hosts)",
                root_artifact="BENCH_transport.json")
def run_bench(n=1200, steps=1) -> BenchResult:
    wall_t, _, counts_t, _ = _run("threads", n=n, steps=steps)
    wall_p, _, counts_p, _ = _run("process", n=n, steps=steps)
    return BenchResult(
        bench="transport",
        config={"n": n, "ranks": N_RANKS, "steps": steps, "seed": 42},
        counts={"n_pp": counts_t[0], "n_pc": counts_t[1],
                "counts_match": int(counts_t == counts_p)},
        wall={"wall_threads_s": wall_t, "wall_process_s": wall_p,
              "speedup_threads_over_process": wall_t / wall_p},
        meta={"cpu_count": os.cpu_count()},
    )


def test_transport_walltime(results_dir):
    wall_t, wait_t, counts_t, out_t = _run("threads")
    wall_p, wait_p, counts_p, out_p = _run("process")

    # Same physics on both substrates, whatever the clock says.
    scale = np.linalg.norm(out_t.pos, axis=1).mean()
    drift = np.max(np.linalg.norm(out_p.pos - out_t.pos, axis=1))
    assert drift < 1e-12 * scale

    cpus = os.cpu_count() or 1
    speedup = wall_t / wall_p
    lines = [
        f"Transport wall-clock (N={BENCH_N}, ranks={N_RANKS}, "
        f"steps={BENCH_STEPS}, cpu_count={cpus})",
        f"{'transport':12s}{'wall [s]':>10s}{'recv-wait [s]':>15s}",
        f"{'threads':12s}{wall_t:10.3f}{wait_t:15.3f}",
        f"{'process':12s}{wall_p:10.3f}{wait_p:15.3f}",
        f"speedup (threads/process): {speedup:.2f}x"
        + ("" if cpus >= N_RANKS else
           f"  [informational: only {cpus} core(s); no gate]"),
    ]
    write_result("transport", lines)

    record = {
        "ts": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "n": BENCH_N, "ranks": N_RANKS, "steps": BENCH_STEPS,
        "cpu_count": cpus,
        "wall_threads_s": round(wall_t, 3),
        "wall_process_s": round(wall_p, 3),
        "speedup_threads_over_process": round(speedup, 3),
        "recv_wait_threads_s": round(wait_t, 3),
        "recv_wait_process_s": round(wait_p, 3),
        "speedup_gated": cpus >= N_RANKS,
    }
    bench_json = RESULTS_DIR / "BENCH_transport.json"
    RESULTS_DIR.mkdir(exist_ok=True)
    history = json.loads(bench_json.read_text()) if bench_json.exists() else []
    history.append(record)
    bench_json.write_text(json.dumps(history, indent=2) + "\n")

    append_history(BenchResult(
        bench="transport",
        config={"n": BENCH_N, "ranks": N_RANKS, "steps": BENCH_STEPS,
                "seed": 42},
        counts={"n_pp": counts_t[0], "n_pc": counts_t[1],
                "counts_match": int(counts_t == counts_p)},
        wall={"wall_threads_s": wall_t, "wall_process_s": wall_p,
              "speedup_threads_over_process": speedup},
        meta={"cpu_count": cpus},
    ))

    assert wall_t > 0 and wall_p > 0
    if cpus >= N_RANKS:
        # On a real multi-core host the process transport must beat the
        # GIL-bound threaded transport at 4 ranks.
        assert speedup > 1.0, (
            f"process transport slower than threads on a {cpus}-core "
            f"machine: {wall_p:.2f}s vs {wall_t:.2f}s")
