"""Ablation: leaf capacity NLEAF (the paper uses 16, from [9]).

Small leaves push work into p-c interactions (more cells, deeper walks);
large leaves push it into p-p interactions.  NLEAF = 16 sits near the
flop minimum for GPU-style group walks, which this sweep demonstrates.
"""

import numpy as np
import pytest

from conftest import write_result
from repro.gravity import tree_forces
from repro.ics import milky_way_model
from repro.octree import build_octree, compute_moments, make_groups

N = 10_000
NLEAVES = [2, 8, 16, 64, 256]


@pytest.fixture(scope="module")
def model():
    return milky_way_model(N, seed=107)


def _run(ps, nleaf):
    tree = build_octree(ps.pos, nleaf=nleaf)
    compute_moments(tree, ps.pos, ps.mass)
    make_groups(tree, max(64, nleaf))
    return tree, tree_forces(tree, ps.pos, ps.mass, theta=0.5, eps=0.05)


@pytest.mark.parametrize("nleaf", NLEAVES)
def test_nleaf_sweep(benchmark, model, nleaf, results_dir):
    tree, res = benchmark.pedantic(lambda: _run(model, nleaf), rounds=2,
                                   iterations=1)
    write_result(f"ablation_nleaf_{nleaf}", [
        f"nleaf = {nleaf}: cells {tree.n_cells}, "
        f"pp/p {res.counts.n_pp / N:.0f}, pc/p {res.counts.n_pc / N:.0f}, "
        f"flops/p {res.counts.flops / N:.0f}"])


def test_nleaf_tradeoff_shape(benchmark, model, results_dir):
    """pp grows and pc shrinks with nleaf; the flop total is lowest in
    the middle of the sweep (where the paper's 16 sits)."""
    model = benchmark.pedantic(lambda: model, rounds=1, iterations=1)
    rows = []
    flops = {}
    for nleaf in NLEAVES:
        _, res = _run(model, nleaf)
        flops[nleaf] = res.counts.flops / N
        rows.append((nleaf, res.counts.n_pp / N, res.counts.n_pc / N,
                     flops[nleaf]))
    lines = [f"{'nleaf':>6s} {'pp/p':>8s} {'pc/p':>8s} {'flops/p':>9s}"]
    for r in rows:
        lines.append(f"{r[0]:6d} {r[1]:8.0f} {r[2]:8.0f} {r[3]:9.0f}")
    write_result("ablation_nleaf_summary", lines)
    pps = [r[1] for r in rows]
    pcs = [r[2] for r in rows]
    assert pps[0] < pps[-1]          # p-p grows with leaf size
    assert pcs[0] > pcs[-1]          # p-c shrinks with leaf size
    # The extremes are not the optimum.
    mid_best = min(flops[8], flops[16], flops[64])
    assert mid_best <= flops[2]
    assert mid_best <= flops[256]
