"""Ablation: equal-mass particles vs heavy halo particles.

Sec. IV's justification for spending 47 of 51 billion particles on the
halo: unequal masses cause numerical disk heating.  We evolve the same
model twice -- once with equal masses (paper policy) and once with 8x
heavier, 8x fewer halo particles -- and compare the disk's vertical
heating rate.  The heavy-halo run must heat the disk faster.
"""

import numpy as np
import pytest

from conftest import write_result
from repro import Simulation, SimulationConfig
from repro.analysis.heating import disk_heating_state, heating_rate
from repro.constants import internal_to_kms
from repro.ics import milky_way_model
from repro.particles import COMPONENT_DISK

N = 8000
STEPS = 40
DT = 1.0


def _run(halo_mass_factor: float):
    ps = milky_way_model(N, seed=113, halo_mass_factor=halo_mass_factor)
    cfg = SimulationConfig(theta=0.6, softening=0.3, dt=DT)
    sim = Simulation(ps, cfg)
    states, times = [], []

    def record():
        disk = sim.particles.select_component(COMPONENT_DISK)
        states.append(disk_heating_state(disk.pos, disk.vel, disk.mass))
        times.append(sim.time)

    record()
    for _ in range(STEPS):
        sim.step()
        if sim.step_count % 8 == 0:
            record()
    return states, np.array(times)


@pytest.fixture(scope="module")
def runs():
    return {1.0: _run(1.0), 8.0: _run(8.0)}


def test_equal_mass_heats_less(benchmark, runs, results_dir):
    data = benchmark.pedantic(lambda: runs, rounds=1, iterations=1)
    lines = ["Ablation: numerical disk heating (Sec. IV equal-mass policy)",
             f"N = {N}, {STEPS} steps of {DT * 4.71:.1f} Myr",
             f"{'config':>22s} {'sigma_z(0)':>11s} {'sigma_z(end)':>13s} "
             f"{'d(sigma_z^2)/dt':>16s}"]
    rates = {}
    for factor, (states, times) in data.items():
        rate = heating_rate(states, times)
        rates[factor] = rate
        label = "equal mass" if factor == 1.0 else f"halo x{factor:.0f} heavier"
        lines.append(f"{label:>22s} "
                     f"{internal_to_kms(states[0].sigma_z):10.1f}km "
                     f"{internal_to_kms(states[-1].sigma_z):12.1f}km "
                     f"{rate:16.2e}")
    write_result("ablation_equal_mass", lines)
    # The paper's claim: unequal masses heat the disk faster.
    assert rates[8.0] > rates[1.0]


def test_disk_stays_thin_with_equal_mass(benchmark, runs):
    data = benchmark.pedantic(lambda: runs, rounds=1, iterations=1)
    states, _ = data[1.0]
    # Thickness growth bounded over the run with equal masses.
    assert states[-1].thickness < 3.0 * max(states[0].thickness, 0.1)
