"""Shared fixtures and result-file plumbing for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
writes the reproduced rows/series to ``benchmarks/results/<name>.txt``
so the output can be diffed against the paper without digging through
pytest output.
"""

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

RESULTS_DIR = Path(__file__).resolve().parent / "results"
HISTORY_DIR = Path(__file__).resolve().parent / "history"


def append_history(result) -> None:
    """Append a ``repro.obs.bench.BenchResult`` to the shared history.

    Benchmarks that run as pytest tests use this so their runs land in
    the same ``benchmarks/history/<bench>.jsonl`` trajectory as runs
    launched through ``python -m repro.obs.bench run``.
    """
    from repro.obs.bench import HistoryStore
    HistoryStore(HISTORY_DIR).append(result)


def pytest_addoption(parser):
    parser.addoption(
        "--trace-out", default=None,
        help="write a Chrome trace of trace-aware benchmarks to this path "
             "(view in Perfetto, reduce with python -m repro.obs.report)")


@pytest.fixture(scope="session")
def trace_out(request):
    """Path for benchmark trace output (None when --trace-out not given)."""
    return request.config.getoption("--trace-out")


@pytest.fixture(scope="session")
def results_dir():
    """Directory collecting the regenerated tables and figure data."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(name: str, lines, append: bool = False) -> str:
    """Write a result file; returns the text (also echoed to stdout).

    ``append=True`` extends an existing file -- for benchmarks whose
    sections come from separate tests sharing one result file.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    path = RESULTS_DIR / f"{name}.txt"
    if append and path.exists():
        path.write_text(path.read_text() + text)
    else:
        path.write_text(text)
    print(f"\n=== {name} ===\n{text}")
    return text
