"""Tracer overhead: zero when disabled, a few percent when enabled.

The acceptance criteria the observability PR must hold (documented with
measured numbers in ``docs/OBSERVABILITY.md``):

- the hot force path carries no per-interaction instrumentation at all,
  so a disabled tracer (:data:`~repro.obs.NULL_TRACER`) adds zero cost
  there -- the only cost anywhere is an ``if tr.enabled`` check at
  phase/message granularity (a few dozen per step);
- a wall-clock tracer on a 2-rank benchmark stays under ~5% overhead;
- the streaming sinks (incremental JSONL, bounded ring) cost no more
  than the buffering tracer they replace, while holding tracer memory
  O(1) in run length.

Timing comparisons on shared CI hosts are noisy, so the asserted bounds
are deliberately looser than the documented measurements; the measured
numbers land in ``benchmarks/results/obs_overhead.txt`` and
``benchmarks/results/obs_sinks.txt``.
"""

import time
import timeit

from conftest import write_result
from repro import SimulationConfig
from repro.core.parallel_simulation import run_parallel_simulation
from repro.ics import plummer_model
from repro.obs import NULL_TRACER, BufferSink, RingSink, StreamingJsonlSink, Tracer
from repro.obs.bench import BenchResult, register_bench
from repro.obs.tracer import TraceEvent
from repro.simmpi import SimWorld

N_RANKS = 2
N = 4000
STEPS = 2
ROUNDS = 3


def _perf_call_costs(n_calls=100_000):
    """Per-call cost (ns) of the disabled-tracer and perf-gauge paths."""
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.perf import book_force_rate
    span_s = timeit.timeit(
        "tr.span('x', rank=0)", globals={"tr": NULL_TRACER}, number=n_calls)
    record_s = timeit.timeit(
        "tr.record('x', 0, 0.0, 1.0)", globals={"tr": NULL_TRACER},
        number=n_calls)
    reg = MetricsRegistry()
    book_force_rate(reg, 0, 1.0e9, 1.0)   # prime the gauge once
    rate_s = timeit.timeit(
        "book(reg, 0, 2.3e9, 0.5)",
        globals={"book": book_force_rate, "reg": reg}, number=n_calls)
    return (span_s / n_calls * 1e9, record_s / n_calls * 1e9,
            rate_s / n_calls * 1e9)


def _heartbeat_call_costs(n_calls=100_000):
    """Per-call cost (ns) of the heartbeat op/beat hot-path hooks."""
    from repro.obs.health import HeartbeatBoard

    board = HeartbeatBoard(N_RANKS)
    op_s = timeit.timeit("b.op(0)", globals={"b": board}, number=n_calls)
    beat_s = timeit.timeit("b.beat(0, step=1, phase='x')",
                           globals={"b": board}, number=n_calls)
    return op_s / n_calls * 1e9, beat_s / n_calls * 1e9


@register_bench("obs_overhead",
                description="observability cost: deterministic trace "
                            "event count (gate), disabled-tracer, "
                            "flop-rate and heartbeat bookkeeping ns/call "
                            "(advisory)")
def run_bench(n=400, steps=1, seed=9) -> BenchResult:
    from repro.obs.clock import VirtualClock
    world = SimWorld(N_RANKS)
    tracer = Tracer(clock=VirtualClock())
    run_parallel_simulation(N_RANKS, plummer_model(n, seed=seed),
                            SimulationConfig(theta=0.6), n_steps=steps,
                            world=world, trace=tracer)
    span_ns, record_ns, rate_ns = _perf_call_costs(n_calls=20_000)
    hb_op_ns, hb_beat_ns = _heartbeat_call_costs(n_calls=20_000)
    return BenchResult(
        bench="obs_overhead",
        config={"n": n, "ranks": N_RANKS, "steps": steps, "seed": seed},
        counts={"trace_events": len(tracer.events())},
        wall={"null_span_ns": span_ns, "null_record_ns": record_ns,
              "book_force_rate_ns": rate_ns,
              "heartbeat_op_ns": hb_op_ns,
              "heartbeat_beat_ns": hb_beat_ns},
    )


def _step_seconds(trace, health=None):
    world = SimWorld(N_RANKS)
    particles = plummer_model(N, seed=9)
    cfg = SimulationConfig(theta=0.6, softening=0.02, dt=0.01)
    t0 = time.perf_counter()
    run_parallel_simulation(N_RANKS, particles, cfg, n_steps=STEPS,
                            world=world, trace=trace, health=health)
    return time.perf_counter() - t0


def test_null_tracer_per_call_cost(results_dir):
    """The disabled path is a handful of attribute loads, no allocation."""
    n_calls = 100_000
    span_s = timeit.timeit(
        "tr.span('x', rank=0)", globals={"tr": NULL_TRACER}, number=n_calls)
    record_s = timeit.timeit(
        "tr.record('x', 0, 0.0, 1.0)", globals={"tr": NULL_TRACER},
        number=n_calls)
    per_span_ns = span_s / n_calls * 1e9
    per_record_ns = record_s / n_calls * 1e9
    write_result("obs_null_tracer", [
        "NullTracer per-call cost (disabled tracing):",
        f"  span():   {per_span_ns:8.1f} ns",
        f"  record(): {per_record_ns:8.1f} ns",
        f"  (~{STEPS * 40} such calls per parallel step -- nanoseconds "
        "against a multi-millisecond step)",
    ])
    # Sub-microsecond per call even on a loaded host.
    assert per_span_ns < 5_000
    assert per_record_ns < 5_000


def test_enabled_tracer_overhead(results_dir):
    """Wall-tracer overhead on the 2-rank pipeline, best-of-N runs."""
    baseline = min(_step_seconds(None) for _ in range(ROUNDS))
    traced = min(_step_seconds(Tracer()) for _ in range(ROUNDS))
    overhead = traced / baseline - 1.0
    write_result("obs_overhead", [
        f"Tracer overhead ({N_RANKS} ranks, N={N}, {STEPS} steps, "
        f"best of {ROUNDS}):",
        f"  disabled: {baseline:8.4f} s",
        f"  enabled:  {traced:8.4f} s",
        f"  overhead: {overhead:+8.2%}   (acceptance target < 5%)",
    ])
    # CI-safe bound; the documented measurement is the real claim.
    assert overhead < 0.25


def test_perf_accounting_cost(results_dir):
    """The flop-rate bookkeeping rides the disabled-tracer cost regime:
    one gauge write per force computation, never per interaction."""
    span_ns, record_ns, rate_ns = _perf_call_costs()
    write_result("obs_overhead", [
        "",
        "Perf-accounting per-call cost:",
        f"  NullTracer span():      {span_ns:8.1f} ns",
        f"  NullTracer record():    {record_ns:8.1f} ns",
        f"  book_force_rate():      {rate_ns:8.1f} ns  "
        "(one call per force pass, ~2/step)",
    ], append=True)
    # CI-safe: a gauge write must stay far under a force pass (ms).
    assert rate_ns < 50_000


def test_sink_per_emit_cost(results_dir):
    """Per-event cost of each sink kind: microseconds at most."""
    n_calls = 50_000
    event = TraceEvent(name="x", cat="phase", ph="X", rank=0,
                       ts=0.0, dur=1.0, seq=0, args={})

    def bench(sink):
        secs = timeit.timeit("s.emit(e)", globals={"s": sink, "e": event},
                             number=n_calls)
        return secs / n_calls * 1e9

    import tempfile
    buffer_ns = bench(BufferSink())
    ring_ns = bench(RingSink(capacity=1024))
    with tempfile.TemporaryDirectory() as tmp:
        stream = StreamingJsonlSink(f"{tmp}/bench.jsonl", flush_every=64)
        stream_ns = bench(stream)
        stream.close()
    write_result("obs_sinks", [
        "Per-emit sink cost (50k events):",
        f"  BufferSink:         {buffer_ns:8.1f} ns  (unbounded list)",
        f"  RingSink(1024):     {ring_ns:8.1f} ns  (bounded, drops "
        "counted)",
        f"  StreamingJsonlSink: {stream_ns:8.1f} ns  (serialize + "
        "batched write, flush_every=64)",
    ])
    # Even the serializing sink stays far under typical span durations.
    assert buffer_ns < 50_000 and ring_ns < 50_000
    assert stream_ns < 500_000


def test_streaming_and_ring_overhead(results_dir, tmp_path):
    """End-to-end: streaming/ring runs cost about what buffered ones do,
    with bounded instead of O(steps) tracer memory."""
    baseline = min(_step_seconds(None) for _ in range(ROUNDS))
    buffered = min(_step_seconds(Tracer()) for _ in range(ROUNDS))

    def streamed_seconds(i):
        sink = StreamingJsonlSink(tmp_path / f"bench{i}.jsonl",
                                  flush_every=64)
        with Tracer(sink=sink) as tracer:
            secs = _step_seconds(tracer)
        return secs, sink.max_buffered, sink.n_events

    runs = [streamed_seconds(i) for i in range(ROUNDS)]
    streamed = min(secs for secs, _, _ in runs)
    max_buffered = max(buffered_hw for _, buffered_hw, _ in runs)
    n_events = runs[0][2]
    ring = min(_step_seconds(Tracer(sink=RingSink(1 << 16)))
               for _ in range(ROUNDS))
    write_result("obs_sinks", [
        "",
        f"End-to-end overhead ({N_RANKS} ranks, N={N}, {STEPS} steps, "
        f"best of {ROUNDS}):",
        f"  no tracer:      {baseline:8.4f} s",
        f"  buffered:       {buffered:8.4f} s  ({buffered / baseline - 1:+.2%})",
        f"  streaming:      {streamed:8.4f} s  ({streamed / baseline - 1:+.2%})",
        f"  ring(65536):    {ring:8.4f} s  ({ring / baseline - 1:+.2%})",
        f"  streaming high-water: {max_buffered} buffered lines for "
        f"{n_events} events (O(1) tracer memory)",
    ], append=True)
    assert streamed / baseline - 1.0 < 0.30
    assert ring / baseline - 1.0 < 0.30
    # The memory claim, measured: the spool never held more than one
    # flush batch per rank.
    assert max_buffered <= 64 * N_RANKS


def test_heartbeat_per_call_cost(results_dir):
    """Health-monitor hot-path hooks: one locked dict update per beat."""
    op_ns, beat_ns = _heartbeat_call_costs()
    write_result("obs_overhead", [
        "",
        "Run-health per-call cost:",
        f"  HeartbeatBoard op():    {op_ns:8.1f} ns  "
        "(one per push/pop/exchange)",
        f"  HeartbeatBoard beat():  {beat_ns:8.1f} ns  "
        "(two per driver step)",
    ], append=True)
    # A beat must stay far under a comm op (tens of microseconds).
    assert op_ns < 50_000
    assert beat_ns < 50_000


def test_heartbeat_overhead_end_to_end(results_dir):
    """Heartbeats on vs off on the 2-rank pipeline: the beats ride the
    existing obs envelope (acceptance: within the <5% target; the
    asserted CI bound is looser)."""
    baseline = min(_step_seconds(None) for _ in range(ROUNDS))
    beating = min(_step_seconds(None, health=True) for _ in range(ROUNDS))
    overhead = beating / baseline - 1.0
    write_result("obs_overhead", [
        "",
        f"Heartbeat overhead ({N_RANKS} ranks, N={N}, {STEPS} steps, "
        f"best of {ROUNDS}):",
        f"  heartbeats off: {baseline:8.4f} s",
        f"  heartbeats on:  {beating:8.4f} s",
        f"  overhead:       {overhead:+8.2%}   (acceptance target < 5%)",
    ], append=True)
    assert overhead < 0.25


def test_disabled_tracer_changes_nothing(results_dir):
    """A run without trace= emits zero events and books no tracer state."""
    world = SimWorld(N_RANKS)
    run_parallel_simulation(N_RANKS, plummer_model(800, seed=9),
                            SimulationConfig(theta=0.6), n_steps=1,
                            world=world)
    assert world.tracer is NULL_TRACER
    assert world.tracer.events() == []
