"""Tracer overhead: zero when disabled, a few percent when enabled.

The acceptance criteria the observability PR must hold (documented with
measured numbers in ``docs/OBSERVABILITY.md``):

- the hot force path carries no per-interaction instrumentation at all,
  so a disabled tracer (:data:`~repro.obs.NULL_TRACER`) adds zero cost
  there -- the only cost anywhere is an ``if tr.enabled`` check at
  phase/message granularity (a few dozen per step);
- a wall-clock tracer on a 2-rank benchmark stays under ~5% overhead.

Timing comparisons on shared CI hosts are noisy, so the asserted bounds
are deliberately looser than the documented measurements; the measured
numbers land in ``benchmarks/results/obs_overhead.txt``.
"""

import time
import timeit

from conftest import write_result
from repro import SimulationConfig
from repro.core.parallel_simulation import run_parallel_simulation
from repro.ics import plummer_model
from repro.obs import NULL_TRACER, Tracer
from repro.simmpi import SimWorld

N_RANKS = 2
N = 4000
STEPS = 2
ROUNDS = 3


def _step_seconds(trace):
    world = SimWorld(N_RANKS)
    particles = plummer_model(N, seed=9)
    cfg = SimulationConfig(theta=0.6, softening=0.02, dt=0.01)
    t0 = time.perf_counter()
    run_parallel_simulation(N_RANKS, particles, cfg, n_steps=STEPS,
                            world=world, trace=trace)
    return time.perf_counter() - t0


def test_null_tracer_per_call_cost(results_dir):
    """The disabled path is a handful of attribute loads, no allocation."""
    n_calls = 100_000
    span_s = timeit.timeit(
        "tr.span('x', rank=0)", globals={"tr": NULL_TRACER}, number=n_calls)
    record_s = timeit.timeit(
        "tr.record('x', 0, 0.0, 1.0)", globals={"tr": NULL_TRACER},
        number=n_calls)
    per_span_ns = span_s / n_calls * 1e9
    per_record_ns = record_s / n_calls * 1e9
    write_result("obs_null_tracer", [
        "NullTracer per-call cost (disabled tracing):",
        f"  span():   {per_span_ns:8.1f} ns",
        f"  record(): {per_record_ns:8.1f} ns",
        f"  (~{STEPS * 40} such calls per parallel step -- nanoseconds "
        "against a multi-millisecond step)",
    ])
    # Sub-microsecond per call even on a loaded host.
    assert per_span_ns < 5_000
    assert per_record_ns < 5_000


def test_enabled_tracer_overhead(results_dir):
    """Wall-tracer overhead on the 2-rank pipeline, best-of-N runs."""
    baseline = min(_step_seconds(None) for _ in range(ROUNDS))
    traced = min(_step_seconds(Tracer()) for _ in range(ROUNDS))
    overhead = traced / baseline - 1.0
    write_result("obs_overhead", [
        f"Tracer overhead ({N_RANKS} ranks, N={N}, {STEPS} steps, "
        f"best of {ROUNDS}):",
        f"  disabled: {baseline:8.4f} s",
        f"  enabled:  {traced:8.4f} s",
        f"  overhead: {overhead:+8.2%}   (acceptance target < 5%)",
    ])
    # CI-safe bound; the documented measurement is the real claim.
    assert overhead < 0.25


def test_disabled_tracer_changes_nothing(results_dir):
    """A run without trace= emits zero events and books no tracer state."""
    world = SimWorld(N_RANKS)
    run_parallel_simulation(N_RANKS, plummer_model(800, seed=9),
                            SimulationConfig(theta=0.6), n_steps=1,
                            world=world)
    assert world.tracer is NULL_TRACER
    assert world.tracer.events() == []
