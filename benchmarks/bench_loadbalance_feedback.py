"""Measured-cost load-balance feedback vs the count/flops baselines.

Reproduces the effect of Sec. III-B1's feedback loop on a skewed IC
(Plummer sphere + dense satellite clump): the same run under
``load_balance="count"``, ``"flops"`` and ``"measured"``, reporting
the final slowest-rank/mean gravity-cost ratio per mode and the
measured mode's per-step smoothed-imbalance series (from the
``domain_update`` spans, i.e. exactly what ``python -m
repro.obs.report`` renders as the "Load balance" section).

The acceptance claim asserted here mirrors the convergence harness:
measured-cost cuts must end strictly better balanced than count cuts.
"""

import numpy as np
import pytest

from conftest import write_result
from repro.config import SimulationConfig
from repro.core.parallel_simulation import run_parallel_simulation
from repro.ics import plummer_model
from repro.obs import Tracer, VirtualClock
from repro.particles import ParticleSet

N_RANKS = 4
N_PART = 1600
N_STEPS = 8


def _clustered(seed=11, scale=0.05, frac=0.25):
    nb = int(N_PART * frac)
    a = plummer_model(N_PART - nb, seed=seed)
    b = plummer_model(nb, seed=seed + 1)
    b.pos *= scale
    b.vel *= np.sqrt(1.0 / scale)
    b.pos += np.array([3.0, 0.0, 0.0])
    p = ParticleSet.concatenate([a, b])
    p.ids = np.arange(p.n)
    return p


def _final_ratio(sims):
    fl = np.array([s.history[-1].counts.flops for s in sims], dtype=float)
    return float(fl.max() / fl.mean())


def _run_all_modes():
    cfg = SimulationConfig(dt=1.0 / 64)
    out = {}
    for mode, kw in [("count", {}), ("flops", {}),
                     ("measured", dict(lb_source="counts"))]:
        tracer = Tracer(clock=VirtualClock()) if mode == "measured" else None
        sims = run_parallel_simulation(N_RANKS, _clustered(), cfg,
                                       n_steps=N_STEPS, load_balance=mode,
                                       trace=tracer, **kw)
        out[mode] = (sims, tracer)
    return out


@pytest.fixture(scope="module")
def mode_runs():
    return _run_all_modes()


def test_loadbalance_feedback(benchmark, mode_runs, results_dir):
    runs = benchmark.pedantic(lambda: mode_runs, rounds=1, iterations=1)
    ratios = {mode: _final_ratio(sims) for mode, (sims, _) in runs.items()}

    lines = [f"Load-balance feedback (Sec. III-B1), {N_RANKS} ranks, "
             f"{N_PART} particles (dense clump IC), {N_STEPS} steps:",
             "", "final slowest-rank/mean gravity-cost ratio per mode:"]
    for mode in ("count", "flops", "measured"):
        sims, _ = runs[mode]
        counts = [s.particles.n for s in sims]
        lines.append(f"  {mode:9s} {ratios[mode]:.4f}   particles {counts}")

    sims, tracer = runs["measured"]
    reg = sims[0].comm.world.metrics
    recuts = reg.counter("lb_rebalance_total", "").value()
    lines += ["", f"measured mode: {recuts:.0f} re-cuts; "
              "smoothed imbalance per domain-update check:"]
    for e in tracer.events():
        if e.name == "domain_update" and e.rank == 0 and "rebalanced" in e.args:
            ratio = e.args.get("lb_imbalance")
            shown = f"{ratio:.4f}" if ratio is not None else "cold"
            action = "re-cut" if e.args["rebalanced"] else "kept"
            lines.append(f"  step {e.args.get('step'):2d}: {shown:>7s}  {action}")
    write_result("loadbalance_feedback", lines)

    # The feedback loop must pay off: strictly better balanced than the
    # count baseline, and converged in absolute terms.
    assert ratios["measured"] < ratios["count"]
    assert ratios["measured"] < 1.2
