"""Sec. VI-C -- time-to-solution estimates.

Regenerates the paper's two headline estimates: the 242-billion-particle
Milky Way on 18600 Titan GPUs completes 8 Gyr in about a week, and the
106-billion-particle model on 8192 nodes takes just over six days at
5.1 s per step.
"""

import pytest

from conftest import write_result
from repro.perfmodel import time_to_solution


def test_time_to_solution_table(benchmark, results_dir):
    def build():
        return (time_to_solution(),
                time_to_solution(n_gpus=8192, n_total=106e9))

    full, modest = benchmark(build)
    lines = ["Sec. VI-C: time-to-solution (8 Gyr, dt = 75,000 yr)",
             f"{'model':>22s} {'s/step':>8s} {'steps':>9s} {'days':>6s}"]
    for name, t in (("242B @ 18600 GPUs", full), ("106B @ 8192 GPUs", modest)):
        lines.append(f"{name:>22s} {t['seconds_per_step_barred']:8.2f} "
                     f"{t['n_steps']:9.0f} {t['wall_clock_days']:6.2f}")
    lines.append("paper: 'about a week' and 'just over six days at 5.1 s'")
    write_result("time_to_solution", lines)

    assert full["wall_clock_days"] < 8.5
    assert full["seconds_per_step_barred"] < 5.6   # "maximum of about 5.5 s"
    assert modest["seconds_per_step_barred"] == pytest.approx(5.1, rel=0.06)
    assert 5.5 < modest["wall_clock_days"] < 7.5


def test_barred_galaxy_overhead(benchmark, results_dir):
    """Sec. VI-C: the step time grows ~10% once the bar and spiral arms
    have formed (4.6 s vs 4.2 s at 51B on 4096 Piz Daint nodes)."""
    from repro.perfmodel import PIZ_DAINT, model_step

    bd = benchmark(model_step, PIZ_DAINT, 4096, 51e9 / 4096)
    quiet = bd.total
    barred = quiet * 1.10
    write_result("time_to_solution_barred", [
        f"51B on 4096 Piz Daint GPUs: quiet {quiet:.2f} s/step, "
        f"barred {barred:.2f} s/step",
        "paper: 4.6 s per iteration at T = 3.8 Gyr (+10% vs start)"])
    assert barred == pytest.approx(4.6, rel=0.10)
