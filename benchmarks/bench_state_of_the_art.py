"""Sec. II -- quantitative state of the art.

Prints the Gordon Bell tree-code lineage the paper positions itself
against, and the energy-efficiency figures that motivate GPU machines.
"""

import pytest

from conftest import write_result
from repro.perfmodel.energy import efficiency_advantage_over_k, flops_per_node_comparison
from repro.perfmodel.history import history_rows, sustained_performance_growth, versus_previous_record


def test_record_lineage(benchmark, results_dir):
    rows = benchmark(history_rows)
    lines = ["Sec. II: large-scale gravitational tree-code records"]
    for r in rows:
        lines.append("  ".join(f"{c:<24s}" if i == 1 else f"{c:<12s}"
                               for i, c in enumerate(r)))
    lines.append(f"growth since first GPU tree record (2009): "
                 f"{sustained_performance_growth():.0f}x")
    lines.append(f"vs the 2012 K-computer TreePM record: "
                 f"{versus_previous_record():.1f}x")
    write_result("sec2_state_of_the_art", lines)
    assert sustained_performance_growth() > 500


def test_energy_motivation(benchmark, results_dir):
    adv = benchmark(efficiency_advantage_over_k)
    nodes = flops_per_node_comparison()
    write_result("sec2_energy", [
        "Sec. II: flops/watt vs K computer "
        "(830 Mflops/W; Titan 2.1, Piz Daint 2.7 Gflops/W)",
        *(f"  {k}: {v:.2f}x" for k, v in adv.items()),
        "node peak comparison: "
        + ", ".join(f"{k} = {v} Tflops" for k, v in nodes.items()),
        "=> ~31x denser nodes, hence the far tighter network/flop "
        "balance Bonsai's communication hiding addresses"])
    assert adv["Piz Daint"] > adv["Titan"] > 2.0
