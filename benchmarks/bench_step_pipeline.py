"""Fast-path force pipeline: end-to-end step speedup and count pinning.

Compares the full distributed step (4 SimMPI ranks, clustered Milky-Way
initial conditions) between the fast path -- batched multi-source forest
walks, preallocated kernel workspaces with segment reduction, SFC
sort-order reuse -- and the reference pipeline it replaced
(one-walk-per-source, ``bincount`` scatter, cold argsort every step).

Outputs:

- ``benchmarks/results/step_pipeline.txt``: per-phase before/after table
  with speedups and tracemalloc allocation counts;
- ``benchmarks/results/BENCH_step.json``: one JSON record appended per
  recorded run (machine-readable history);
- a golden interaction-count fixture
  (``benchmarks/step_pipeline_golden.json``) asserting the fast path
  changes *nothing* about what is computed -- CI runs the counts check
  only and never gates on wall-clock.

Environment knobs: ``STEP_BENCH_N`` (particles, default 8000) and
``STEP_BENCH_STEPS`` (default 2) scale the timed comparison; the
recorded results were produced with ``STEP_BENCH_N=40000``.
"""

import json
import os
import time
import tracemalloc
from pathlib import Path

from conftest import RESULTS_DIR, append_history, write_result
from repro import SimulationConfig
from repro.core.parallel_simulation import run_parallel_simulation
from repro.core.step import TABLE2_PHASES
from repro.ics import milky_way_model
from repro.obs.bench import BenchResult, register_bench

GOLDEN = Path(__file__).resolve().parent / "step_pipeline_golden.json"

N_RANKS = 4
GOLDEN_N = 4000
BENCH_N = int(os.environ.get("STEP_BENCH_N", "8000"))
BENCH_STEPS = int(os.environ.get("STEP_BENCH_STEPS", "2"))

#: The reference pipeline this PR replaced, expressed as config knobs.
REFERENCE = dict(batch_sources=False, sort_reuse=False,
                 scatter="bincount", chunk=1 << 21)


def _cfg(**kw):
    base = dict(theta=0.5, softening=0.1, dt=0.1)
    base.update(kw)
    return SimulationConfig(**base)


def _run(config, n, steps, seed=42, **run_kw):
    """One timed run; returns (wall, per-phase seconds, counts, peak)."""
    ps = milky_way_model(n, seed=seed)
    t0 = time.perf_counter()
    sims = run_parallel_simulation(N_RANKS, ps, config, n_steps=steps,
                                   timeout=3600.0, **run_kw)
    wall = time.perf_counter() - t0
    phases = {ph: 0.0 for ph in TABLE2_PHASES}
    n_pp = n_pc = 0
    for s in sims:
        for bd in s.history:
            for ph in TABLE2_PHASES:
                phases[ph] += getattr(bd, ph)
            n_pp += bd.counts.n_pp
            n_pc += bd.counts.n_pc
    max_frontier = max(s._result.max_frontier for s in sims)
    return wall, phases, (n_pp, n_pc), max_frontier


@register_bench("step_pipeline",
                description="fast-path distributed step: interaction "
                            "counts (gate) and per-phase wall time",
                root_artifact="BENCH_step.json")
def run_bench(n=2000, steps=1, seed=42) -> BenchResult:
    """Canonical runner: one fast-path run at a fixed, small config.

    The interaction tallies are deterministic at fixed (n, ranks,
    steps, seed) -- they gate; the phase/wall seconds ride along as
    advisory wall metrics.
    """
    wall, phases, (n_pp, n_pc), max_frontier = _run(_cfg(), n, steps,
                                                    seed=seed)
    return BenchResult(
        bench="step_pipeline",
        config={"n": n, "ranks": N_RANKS, "steps": steps, "seed": seed,
                "pipeline": "fast"},
        counts={"n_pp": n_pp, "n_pc": n_pc},
        wall={"wall_s": wall,
              "gravity_s": phases["gravity_local"] + phases["gravity_let"],
              "sorting_s": phases["sorting"]},
        meta={"max_frontier": max_frontier},
    )


def _alloc_stats(config, n=3000):
    """tracemalloc profile of one warm force evaluation (serial driver,
    same evaluator hot path): (allocation count, peak bytes)."""
    from repro import Simulation
    sim = Simulation(milky_way_model(n, seed=7), config)
    sim.compute_forces()        # warm-up: workspace + sort cache primed
    tracemalloc.start()
    sim.compute_forces()
    snap = tracemalloc.take_snapshot()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    n_allocs = sum(st.count for st in snap.statistics("lineno"))
    return n_allocs, peak


def test_step_counts_golden():
    """CI gate: interaction counts are byte-identical between the fast
    path and the reference path, and match the committed golden fixture
    (no wall-clock assertions -- counts only)."""
    _, _, fast, _ = _run(_cfg(), GOLDEN_N, 1)
    _, _, ref, _ = _run(_cfg(**REFERENCE), GOLDEN_N, 1)
    assert fast == ref
    if GOLDEN.exists():
        golden = json.loads(GOLDEN.read_text())
        assert fast == (golden["n_pp"], golden["n_pc"])
    else:
        GOLDEN.write_text(json.dumps(
            {"n": GOLDEN_N, "ranks": N_RANKS, "steps": 1,
             "n_pp": fast[0], "n_pc": fast[1]}, indent=2) + "\n")


def test_step_pipeline_speedup(results_dir):
    """Per-phase before/after comparison; records, never gates on time."""
    ref_wall, ref_ph, ref_counts, _ = _run(_cfg(**REFERENCE),
                                           BENCH_N, BENCH_STEPS)
    fast_wall, fast_ph, fast_counts, max_frontier = _run(
        _cfg(), BENCH_N, BENCH_STEPS)
    assert fast_counts == ref_counts

    ref_allocs, ref_peak = _alloc_stats(_cfg(**REFERENCE))
    fast_allocs, fast_peak = _alloc_stats(_cfg())

    lines = [
        f"Fast-path step pipeline vs reference "
        f"(N={BENCH_N}, ranks={N_RANKS}, steps={BENCH_STEPS}, MW disk IC)",
        f"{'phase':18s}{'reference':>12s}{'fast':>12s}{'speedup':>9s}",
    ]
    for ph in TABLE2_PHASES:
        r, f = ref_ph[ph], fast_ph[ph]
        sp = f"{r / f:8.2f}x" if f > 1e-9 else "      --"
        lines.append(f"{ph:18s}{r:12.3f}{f:12.3f}{sp}")
    lines += [
        f"{'WALL (end-to-end)':18s}{ref_wall:12.3f}{fast_wall:12.3f}"
        f"{ref_wall / fast_wall:8.2f}x",
        f"counts identical: pp={fast_counts[0]} pc={fast_counts[1]}",
        f"max_frontier={max_frontier}",
        f"tracemalloc one force step (N=3000): "
        f"reference {ref_allocs} allocs / {ref_peak / 1e6:.1f} MB peak, "
        f"fast {fast_allocs} allocs / {fast_peak / 1e6:.1f} MB peak",
    ]
    write_result("step_pipeline", lines)

    record = {
        "ts": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "n": BENCH_N, "ranks": N_RANKS, "steps": BENCH_STEPS,
        "wall_reference_s": round(ref_wall, 3),
        "wall_fast_s": round(fast_wall, 3),
        "speedup": round(ref_wall / fast_wall, 3),
        "phases_reference": {k: round(v, 4) for k, v in ref_ph.items()},
        "phases_fast": {k: round(v, 4) for k, v in fast_ph.items()},
        "n_pp": fast_counts[0], "n_pc": fast_counts[1],
        "max_frontier": max_frontier,
        "allocs_reference": ref_allocs, "allocs_fast": fast_allocs,
        "alloc_peak_reference_b": ref_peak, "alloc_peak_fast_b": fast_peak,
    }
    bench_json = RESULTS_DIR / "BENCH_step.json"
    RESULTS_DIR.mkdir(exist_ok=True)
    history = json.loads(bench_json.read_text()) if bench_json.exists() else []
    history.append(record)
    bench_json.write_text(json.dumps(history, indent=2) + "\n")

    append_history(BenchResult(
        bench="step_pipeline",
        config={"n": BENCH_N, "ranks": N_RANKS, "steps": BENCH_STEPS,
                "seed": 42, "pipeline": "fast_vs_reference"},
        counts={"n_pp": fast_counts[0], "n_pc": fast_counts[1]},
        wall={"wall_reference_s": ref_wall, "wall_fast_s": fast_wall,
              "speedup": ref_wall / fast_wall},
        meta={"max_frontier": max_frontier},
    ))

    assert ref_wall > 0 and fast_wall > 0


#: Step-coherence knobs (docs/PERFORMANCE.md): incremental tree repair,
#: walk warm-starts, incremental LET drain.  Paired with measured load
#: balance -- which pins the bounding box between rebalances -- because
#: a refitted box would force the tree cache cold every step.
COHERENT = dict(tree_reuse="repair", walk_warm_start=True,
                let_drain="incremental")
REUSE_STEPS = int(os.environ.get("REUSE_BENCH_STEPS", "4"))
REUSE_REPS = int(os.environ.get("REUSE_BENCH_REPS", "2"))


def _best_of(config, n, steps, reps, **run_kw):
    """Best-of-``reps`` wall/per-phase times (elementwise min): thread
    scheduling noise on shared runners swamps the few-percent phase
    deltas; the counts must agree across reps exactly."""
    best_wall = best_ph = counts0 = None
    for _ in range(reps):
        wall, ph, counts, _ = _run(config, n, steps, **run_kw)
        if counts0 is None:
            counts0 = counts
        assert counts == counts0
        if best_wall is None or wall < best_wall:
            best_wall = wall
        best_ph = ph if best_ph is None else \
            {k: min(best_ph[k], ph[k]) for k in ph}
    return best_wall, best_ph, counts0


def test_step_reuse_on_off(results_dir):
    """Reuse-on vs reuse-off rows: interaction counts gate hard (the
    knobs are pure optimisations), the tree-build/sorting/LET wall
    seconds ride along as advisory history."""
    lb = dict(load_balance="measured", lb_source="counts")
    # The coherent regime: per-step drift below the key-grid resolution
    # keeps tree topology stable, so repair/warm-start actually engage
    # (dt=0.01 churns every leaf and the caches correctly fall cold).
    gentle = dict(dt=1e-4)
    off_wall, off_ph, off_counts = _best_of(
        _cfg(**gentle), BENCH_N, REUSE_STEPS, REUSE_REPS, **lb)
    on_wall, on_ph, on_counts = _best_of(
        _cfg(**gentle, **COHERENT), BENCH_N, REUSE_STEPS, REUSE_REPS, **lb)
    assert on_counts == off_counts  # bitwise contract, never relaxed

    def coherence_s(ph):
        return ph["tree_construction"] + ph["sorting"] + ph["gravity_let"]

    lines = [
        f"Step coherence (tree_reuse=repair, walk_warm_start, "
        f"let_drain=incremental) vs off "
        f"(N={BENCH_N}, ranks={N_RANKS}, steps={REUSE_STEPS}, "
        f"measured LB, MW disk IC)",
        f"{'phase':18s}{'reuse off':>12s}{'reuse on':>12s}{'speedup':>9s}",
    ]
    for ph in TABLE2_PHASES:
        r, f = off_ph[ph], on_ph[ph]
        sp = f"{r / f:8.2f}x" if f > 1e-9 else "      --"
        lines.append(f"{ph:18s}{r:12.3f}{f:12.3f}{sp}")
    lines += [
        f"{'WALL (end-to-end)':18s}{off_wall:12.3f}{on_wall:12.3f}"
        f"{off_wall / on_wall:8.2f}x",
        f"counts identical: pp={on_counts[0]} pc={on_counts[1]}",
    ]
    write_result("step_reuse", lines)

    append_history(BenchResult(
        bench="step_pipeline",
        config={"n": BENCH_N, "ranks": N_RANKS, "steps": REUSE_STEPS,
                "seed": 42, "dt": 1e-4, "pipeline": "reuse_vs_off"},
        counts={"n_pp": on_counts[0], "n_pc": on_counts[1]},
        wall={"wall_off_s": off_wall, "wall_on_s": on_wall,
              "speedup": off_wall / on_wall,
              "coherence_off_s": coherence_s(off_ph),
              "coherence_on_s": coherence_s(on_ph),
              "tree_off_s": off_ph["tree_construction"],
              "tree_on_s": on_ph["tree_construction"],
              "let_off_s": off_ph["gravity_let"],
              "let_on_s": on_ph["gravity_let"]},
    ))

    assert off_wall > 0 and on_wall > 0
