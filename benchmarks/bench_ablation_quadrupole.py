"""Ablation: quadrupole corrections (65-flop kernel) vs monopole only.

The paper pays 65 flops per p-c interaction for quadrupole accuracy.
This ablation shows what that buys: at equal theta the quadrupole run is
an order of magnitude more accurate; to match its accuracy the monopole
run must shrink theta, costing far more interactions.
"""

import numpy as np
import pytest

from conftest import write_result
from repro.gravity import direct_forces, tree_forces
from repro.ics import milky_way_model
from repro.octree import build_octree, compute_moments, make_groups

N = 8000


@pytest.fixture(scope="module")
def setup():
    ps = milky_way_model(N, seed=106)
    tree = build_octree(ps.pos, nleaf=16)
    compute_moments(tree, ps.pos, ps.mass)
    make_groups(tree, 64)
    acc_d, _ = direct_forces(ps.pos, ps.mass, eps=0.05)
    return ps, tree, acc_d


def _err(res, acc_d):
    return float(np.median(np.linalg.norm(res.acc - acc_d, axis=1)
                           / np.linalg.norm(acc_d, axis=1)))


@pytest.mark.parametrize("quadrupole", [True, False])
def test_kernel_order(benchmark, setup, quadrupole, results_dir):
    ps, tree, acc_d = setup
    res = benchmark.pedantic(
        lambda: tree_forces(tree, ps.pos, ps.mass, theta=0.5, eps=0.05,
                            quadrupole=quadrupole),
        rounds=2, iterations=1)
    name = "quad" if quadrupole else "mono"
    write_result(f"ablation_quadrupole_{name}", [
        f"kernel = {name}, theta = 0.5",
        f"median relative force error: {_err(res, acc_d):.3e}",
        f"flops/particle: {res.counts.flops / N:.0f}"])


def test_quadrupole_accuracy_per_flop(benchmark, setup, results_dir):
    """Quadrupole at theta=0.5 must beat monopole at theta=0.5 by a lot,
    and be cheaper than monopole pushed to similar accuracy."""
    ps, tree, acc_d = benchmark.pedantic(lambda: setup, rounds=1, iterations=1)
    q = tree_forces(tree, ps.pos, ps.mass, theta=0.5, eps=0.05,
                    quadrupole=True)
    m = tree_forces(tree, ps.pos, ps.mass, theta=0.5, eps=0.05,
                    quadrupole=False)
    m_tight = tree_forces(tree, ps.pos, ps.mass, theta=0.25, eps=0.05,
                          quadrupole=False)
    rows = [
        f"quad theta=0.5:  err {_err(q, acc_d):.3e} flops/p {q.counts.flops / N:9.0f}",
        f"mono theta=0.5:  err {_err(m, acc_d):.3e} flops/p {m.counts.flops / N:9.0f}",
        f"mono theta=0.25: err {_err(m_tight, acc_d):.3e} flops/p {m_tight.counts.flops / N:9.0f}",
    ]
    write_result("ablation_quadrupole_summary", rows)
    assert _err(q, acc_d) < 0.5 * _err(m, acc_d)
    # Matching the quadrupole's accuracy the monopole way costs more.
    assert m_tight.counts.flops > q.counts.flops
