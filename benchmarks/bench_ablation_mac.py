"""Ablation: MAC flavor (plain Barnes-Hut vs the Bonsai COM-offset MAC).

The paper's MAC [9] adds the geometric-center-to-COM offset to the
opening radius, opening more cells where mass sits asymmetrically.  This
benchmark quantifies the accuracy/work trade on the Milky Way model.
"""

import numpy as np
import pytest

from conftest import write_result
from repro.gravity import direct_forces, tree_forces
from repro.ics import milky_way_model
from repro.octree import build_octree, compute_moments, make_groups

N = 8000


@pytest.fixture(scope="module")
def setup():
    ps = milky_way_model(N, seed=105)
    tree = build_octree(ps.pos, nleaf=16)
    compute_moments(tree, ps.pos, ps.mass)
    make_groups(tree, 64)
    acc_d, _ = direct_forces(ps.pos, ps.mass, eps=0.05)
    return ps, tree, acc_d


@pytest.mark.parametrize("mac", ["bh", "bonsai"])
def test_mac_flavor(benchmark, setup, mac, results_dir):
    ps, tree, acc_d = setup
    res = benchmark.pedantic(
        lambda: tree_forces(tree, ps.pos, ps.mass, theta=0.5, eps=0.05,
                            mac=mac),
        rounds=2, iterations=1)
    err = np.median(np.linalg.norm(res.acc - acc_d, axis=1)
                    / np.linalg.norm(acc_d, axis=1))
    write_result(f"ablation_mac_{mac}", [
        f"MAC = {mac}, theta = 0.5, N = {N}",
        f"median relative force error: {err:.3e}",
        f"pp/particle: {res.counts.n_pp / N:.0f}",
        f"pc/particle: {res.counts.n_pc / N:.0f}",
        f"flops/particle: {res.counts.flops / N:.0f}"])
    assert err < 5e-3


def test_mac_tradeoff_summary(benchmark, setup, results_dir):
    """The Bonsai MAC must buy accuracy with its extra interactions."""
    ps, tree, acc_d = benchmark.pedantic(lambda: setup, rounds=1, iterations=1)
    stats = {}
    for mac in ("bh", "bonsai"):
        res = tree_forces(tree, ps.pos, ps.mass, theta=0.5, eps=0.05, mac=mac)
        err = np.median(np.linalg.norm(res.acc - acc_d, axis=1)
                        / np.linalg.norm(acc_d, axis=1))
        stats[mac] = (err, res.counts.flops)
    write_result("ablation_mac_summary", [
        f"bh:     err {stats['bh'][0]:.3e}, flops {stats['bh'][1]:.3e}",
        f"bonsai: err {stats['bonsai'][0]:.3e}, flops {stats['bonsai'][1]:.3e}"])
    assert stats["bonsai"][0] <= stats["bh"][0]
    assert stats["bonsai"][1] >= stats["bh"][1]
