"""Fig. 4 -- weak scaling on Piz Daint and Titan.

Regenerates the three Tflops curves (GPU kernels / gravity / application)
and the parallel-efficiency insets over the full GPU range of the paper,
plus a *real* weak-scaling measurement of the distributed algorithm over
SimMPI ranks on this host.
"""

import numpy as np
import pytest

from conftest import write_result
from repro.config import SimulationConfig
from repro.core.parallel_simulation import run_parallel_simulation
from repro.ics import milky_way_model
from repro.perfmodel import PIZ_DAINT, TITAN, strong_scaling, weak_scaling

DAINT_COUNTS = [1, 4, 16, 64, 256, 1024, 2048, 4096, 5200]
TITAN_COUNTS = [1, 4, 16, 64, 256, 1024, 4096, 8192, 18600]


def _series(machine, counts):
    pts = weak_scaling(machine, counts)
    single = pts[0]
    rows = []
    for p in pts:
        rows.append((p.n_gpus, p.gpu_kernel_tflops, p.gravity_tflops,
                     p.application_tflops, 100 * p.efficiency_vs(single)))
    return pts, rows


def test_fig4_model_curves(benchmark, results_dir):
    def build():
        return (_series(PIZ_DAINT, DAINT_COUNTS), _series(TITAN, TITAN_COUNTS))

    (daint_pts, daint_rows), (titan_pts, titan_rows) = benchmark(build)
    lines = ["Fig. 4: weak scaling, 13M particles/GPU, theta = 0.4",
             "", "Piz Daint",
             f"{'GPUs':>6s} {'GPU kern':>10s} {'Gravity':>10s} "
             f"{'App':>10s} {'Eff %':>7s}   [Tflops]"]
    for r in daint_rows:
        lines.append(f"{r[0]:6d} {r[1]:10.1f} {r[2]:10.1f} {r[3]:10.1f} {r[4]:7.1f}")
    lines += ["", "Titan", f"{'GPUs':>6s} {'GPU kern':>10s} {'Gravity':>10s} "
              f"{'App':>10s} {'Eff %':>7s}   [Tflops]"]
    for r in titan_rows:
        lines.append(f"{r[0]:6d} {r[1]:10.1f} {r[2]:10.1f} {r[3]:10.1f} {r[4]:7.1f}")
    write_result("fig4_weak_scaling", lines)

    # Abstract claims: Piz Daint efficiency never below ~95%; Titan 86%
    # at 18600 GPUs; peak 24.77 / 33.49 Pflops.
    for r in daint_rows[1:]:
        assert r[4] > 93.0
    assert titan_rows[-1][4] == pytest.approx(86.0, abs=3.0)
    assert titan_rows[-1][3] / 1e3 == pytest.approx(24.77, rel=0.05)
    assert titan_rows[-1][1] / 1e3 == pytest.approx(33.49, rel=0.05)
    # Curve ordering everywhere: GPU >= gravity >= application.
    for r in daint_rows + titan_rows:
        assert r[1] >= r[2] >= r[3]


def test_fig4_strong_scaling_model(benchmark, results_dir):
    def build():
        return (strong_scaling(PIZ_DAINT, 26.6e9, [2048, 4096]),
                strong_scaling(TITAN, 53.2e9, [4096, 8192]))

    daint, titan = benchmark(build)
    eff_d = daint[1].application_tflops / daint[0].application_tflops / 2
    eff_t = titan[1].application_tflops / titan[0].application_tflops / 2
    write_result("fig4_strong_scaling", [
        "Strong scaling (Sec. VI-B):",
        f"Piz Daint 26.6B particles, 2048 -> 4096 GPUs: {100 * eff_d:.0f}% "
        "(paper: 95%)",
        f"Titan 53.2B particles, 4096 -> 8192 GPUs: {100 * eff_t:.0f}% "
        "(paper: 87%)"])
    assert eff_d == pytest.approx(0.95, abs=0.05)
    assert eff_t == pytest.approx(0.87, abs=0.06)


@pytest.mark.parametrize("ranks", [1, 2, 4])
def test_real_weak_scaling_on_host(benchmark, results_dir, ranks):
    """Real weak scaling of the distributed algorithm over SimMPI: the
    per-rank gravity work (interactions) must stay roughly constant as
    ranks grow with N (the essence of Fig. 4's flat efficiency)."""
    n_per_rank = 4000
    ps = milky_way_model(n_per_rank * ranks, seed=103)
    cfg = SimulationConfig(theta=0.6, softening=0.1, dt=0.5)

    def run():
        sims = run_parallel_simulation(ranks, ps.copy(), cfg, n_steps=1)
        return sims

    sims = benchmark.pedantic(run, rounds=1, iterations=1)
    per_rank = [s.history[0].counts.n_pp + s.history[0].counts.n_pc
                for s in sims]
    total = ps.n
    write_result(f"fig4_real_host_{ranks}ranks", [
        f"ranks={ranks} N={total} interactions/rank: {per_rank}"])
    # Work per rank within 2.2x of the mean (small-N imbalance allowed).
    assert max(per_rank) < 2.2 * (sum(per_rank) / len(per_rank))
