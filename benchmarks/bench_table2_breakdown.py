"""Table II -- per-step time breakdown on Titan and Piz Daint.

Regenerates every column of Table II from the calibrated timeline model
(weak scaling 1/1024/2048/4096/18600 on Titan, 1024/2048/4096 on Piz
Daint, plus both strong-scaling columns) and also *measures* the same
breakdown for this repository's real pipeline at laptop scale.
"""

import numpy as np
import pytest

from conftest import write_result
from repro import Simulation, SimulationConfig
from repro.core.step import TABLE2_PHASES
from repro.ics import milky_way_model
from repro.perfmodel import PIZ_DAINT, TITAN, model_step, table1_rows

#: (machine, gpus, particles/GPU) for every Table II column.
COLUMNS = [
    (TITAN, 1, 13e6),
    (TITAN, 1024, 13e6), (TITAN, 2048, 13e6), (TITAN, 4096, 13e6),
    (TITAN, 18600, 13e6), (TITAN, 8192, 6.5e6),
    (PIZ_DAINT, 1024, 13e6), (PIZ_DAINT, 2048, 13e6),
    (PIZ_DAINT, 4096, 13e6), (PIZ_DAINT, 4096, 6.5e6),
]

#: Paper values for the summary rows: total [s], GPU Tflops, app Tflops.
PAPER_SUMMARY = [
    (2.79, 1.77, 1.55),
    (4.02, 1844.6, 1484.6), (4.15, 3693.7, 2971.8), (4.41, 7396.8, 5784.9),
    (4.77, 33490.0, 24773.0), (2.65, 14714.0, 10051.0),
    (3.84, 1844.7, 1551.9), (3.94, 3693.9, 3129.9),
    (4.15, 7396.9, 6180.7), (2.10, 7383.5, 5947.9),
]


def test_table1_hardware(benchmark, results_dir):
    rows = benchmark(table1_rows)
    lines = ["Table I: hardware used for the parallel simulations"]
    for r in rows:
        lines.append(f"{r[0]:24s} {r[1]:>18s} {r[2]:>18s}")
    write_result("table1_hardware", lines)
    assert rows[0][1:] == ("Piz Daint", "Titan")


def test_table2_model(benchmark, results_dir):
    def build():
        return [model_step(m, p, n) for m, p, n in COLUMNS]

    bds = benchmark(build)
    lines = ["Table II: time breakdown (model vs paper)",
             "col: machine @ GPUs (M particles/GPU)"]
    header = f"{'phase':18s}" + "".join(
        f"{m.name[:2]}@{p}".rjust(11) for m, p, n in COLUMNS)
    lines.append(header)
    for phase in TABLE2_PHASES:
        lines.append(f"{phase:18s}" + "".join(
            f"{getattr(bd, phase):11.2f}" for bd in bds))
    lines.append(f"{'TOTAL':18s}" + "".join(f"{bd.total:11.2f}" for bd in bds))
    lines.append(f"{'paper total':18s}" + "".join(
        f"{t:11.2f}" for t, _, _ in PAPER_SUMMARY))
    lines.append(f"{'pp/particle':18s}" + "".join(
        f"{bd.counts.n_pp / bd.n_particles:11.0f}" for bd in bds))
    lines.append(f"{'pc/particle':18s}" + "".join(
        f"{bd.counts.n_pc / bd.n_particles:11.0f}" for bd in bds))
    gpu_t = [bd.gpu_tflops() * p for bd, (m, p, n) in zip(bds, COLUMNS)]
    app_t = [bd.application_tflops() * p for bd, (m, p, n) in zip(bds, COLUMNS)]
    lines.append(f"{'GPU Tflops':18s}" + "".join(f"{v:11.1f}" for v in gpu_t))
    lines.append(f"{'paper GPU':18s}" + "".join(
        f"{g:11.1f}" for _, g, _ in PAPER_SUMMARY))
    lines.append(f"{'App Tflops':18s}" + "".join(f"{v:11.1f}" for v in app_t))
    lines.append(f"{'paper App':18s}" + "".join(
        f"{a:11.1f}" for _, _, a in PAPER_SUMMARY))
    write_result("table2_breakdown", lines)

    # Shape assertions: every column total within 10%, rates within 7%.
    for bd, (total, gpu, app), (m, p, n) in zip(bds, PAPER_SUMMARY, COLUMNS):
        assert bd.total == pytest.approx(total, rel=0.10)
        assert bd.gpu_tflops() * p == pytest.approx(gpu, rel=0.07)
        assert bd.application_tflops() * p == pytest.approx(app, rel=0.12)


@pytest.mark.parametrize("n", [20_000])
def test_table2_measured_pipeline(benchmark, results_dir, trace_out, n):
    """The same breakdown measured for real on this host (our 'single
    GPU' column): the structure must match -- gravity dominates, tree
    build and properties are minor.  With ``--trace-out PATH`` the
    measured steps are also exported as a Chrome trace."""
    ps = milky_way_model(n, seed=102)
    cfg = SimulationConfig(theta=0.5, softening=0.1, dt=0.5)
    tracer = None
    if trace_out:
        from repro.obs import Tracer
        tracer = Tracer()
    sim = Simulation(ps, cfg, trace=tracer)
    sim.step()  # warm-up / prime

    bd = benchmark.pedantic(sim.step, rounds=3, iterations=1)
    if tracer is not None:
        from repro.obs import write_chrome_trace
        write_chrome_trace(tracer, trace_out)
    lines = [f"Table II analogue measured on this host (N = {n}):"]
    for phase in TABLE2_PHASES:
        lines.append(f"  {phase:18s} {getattr(bd, phase):8.3f} s")
    lines.append(f"  {'TOTAL':18s} {bd.total:8.3f} s")
    pp, pc = bd.counts.per_particle(n)
    lines.append(f"  pp/particle {pp:.0f}  pc/particle {pc:.0f}")
    lines.append(f"  host 'GPU' rate: {bd.gpu_tflops() * 1e3:.3f} Gflops")
    write_result("table2_measured_host", lines)

    assert bd.gravity_local > bd.tree_construction
    assert bd.gravity_local > bd.sorting
    assert bd.counts.n_pp > 0 and bd.counts.n_pc > 0
