"""Ablation: Morton vs Peano-Hilbert ordering for the decomposition.

The paper chose the PH curve because its locality produces compact
domains, hence small domain surfaces, hence small boundary/LET traffic.
This benchmark decomposes the same model both ways and compares domain
compactness and boundary-structure sizes.
"""

import numpy as np
import pytest

from conftest import write_result
from repro.config import SimulationConfig
from repro.ics import milky_way_model
from repro.octree import build_octree, compute_moments, compute_opening_radii
from repro.parallel import boundary_structure
from repro.sfc import BoundingBox

N = 30_000
P = 8


def _domains(ps, curve):
    """Split particles into P equal key-range domains along a curve."""
    box = BoundingBox.from_positions(ps.pos)
    keys = box.keys(ps.pos, curve)
    order = np.argsort(keys)
    out = []
    for d in range(P):
        sel = order[len(order) * d // P:len(order) * (d + 1) // P]
        out.append(sel)
    return box, out


def _surface_metric(ps, box, domains, curve):
    """Total boundary-structure bytes over all domains."""
    cfg = SimulationConfig(theta=0.5)
    total_bytes = 0
    rms = []
    for sel in domains:
        pos = ps.pos[sel]
        mass = ps.mass[sel]
        tree = build_octree(pos, nleaf=16, box=box, keys=None, curve=curve)
        compute_moments(tree, pos, mass)
        compute_opening_radii(tree, cfg.theta, cfg.mac)
        b = boundary_structure(tree, pos[tree.order], mass[tree.order])
        total_bytes += b.nbytes
        c = pos.mean(axis=0)
        rms.append(np.sqrt(np.mean(np.sum((pos - c) ** 2, axis=1))))
    return total_bytes, float(np.mean(rms))


@pytest.fixture(scope="module")
def model():
    return milky_way_model(N, seed=108)


@pytest.mark.parametrize("curve", ["morton", "hilbert"])
def test_curve_decomposition(benchmark, model, curve, results_dir):
    def run():
        box, domains = _domains(model, curve)
        return _surface_metric(model, box, domains, curve)

    nbytes, rms = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(f"ablation_sfc_{curve}", [
        f"curve = {curve}, {P} domains, N = {N}",
        f"total boundary bytes: {nbytes}",
        f"mean domain RMS radius: {rms:.3f} kpc"])


def test_hilbert_domains_more_compact(benchmark, model, results_dir):
    """Hilbert domains must not be less compact than Morton domains
    (lower mean RMS radius => smaller surfaces => less LET traffic)."""
    model = benchmark.pedantic(lambda: model, rounds=1, iterations=1)
    box_m, dom_m = _domains(model, "morton")
    box_h, dom_h = _domains(model, "hilbert")
    bytes_m, rms_m = _surface_metric(model, box_m, dom_m, "morton")
    bytes_h, rms_h = _surface_metric(model, box_h, dom_h, "hilbert")
    write_result("ablation_sfc_summary", [
        f"morton:  boundary {bytes_m} B, RMS {rms_m:.3f} kpc",
        f"hilbert: boundary {bytes_h} B, RMS {rms_h:.3f} kpc"])
    assert rms_h <= rms_m * 1.05
