"""Legacy setup shim: this environment has setuptools 65 without the
`wheel` package, so PEP 660 editable installs fail; `setup.py develop`
(invoked by `pip install -e .` in legacy mode) works."""
from setuptools import setup

setup()
