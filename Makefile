.PHONY: install test test-faults bench bench-quick clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

# Full fault-injection + differential-verification harness, including the
# harness_slow matrix the default run skips (see docs/TESTING.md).
test-faults:
	pytest tests/harness -m "harness_slow or not harness_slow"

bench:
	pytest benchmarks/ --benchmark-only

# The subset that regenerates every table/figure without the long
# evolution runs (fig3, equal-mass heating).
bench-quick:
	pytest benchmarks/bench_fig1_kernel.py benchmarks/bench_fig4_weak_scaling.py \
	       benchmarks/bench_table2_breakdown.py benchmarks/bench_time_to_solution.py \
	       benchmarks/bench_state_of_the_art.py --benchmark-only

clean:
	rm -rf benchmarks/results .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
