.PHONY: install test test-faults test-loadbalance test-transport \
	test-reuse test-health test-backends bench bench-quick bench-step \
	bench-transport bench-backends bench-history trace flame dashboard \
	clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

# Full fault-injection + differential-verification harness, including the
# harness_slow matrix the default run skips (see docs/TESTING.md).
test-faults:
	pytest tests/harness -m "harness_slow or not harness_slow"

# Load-balance feedback loop: property + convergence suites including
# the harness_slow 8-rank variant (docs/OBSERVABILITY.md §5b).
test-loadbalance:
	pytest tests/harness/test_loadbalance_properties.py \
	       tests/harness/test_loadbalance_convergence.py \
	       tests/test_parallel_feedback.py \
	       -m "harness_slow or not harness_slow"

# Run-health telemetry + crash forensics: heartbeat/monitor/bundle unit
# suites, the post-mortem analyzer contract, the fault-matrix
# localization harness (crash/slowdown/stall/deadlock on both
# transports) and the dashboard health panel
# (docs/OBSERVABILITY.md §13).
test-health:
	pytest tests/test_obs_health.py tests/test_obs_postmortem.py \
	       tests/harness/test_health_forensics.py \
	       tests/test_obs_dashboard.py -q
	pytest benchmarks/bench_obs_overhead.py -q \
	       -k "heartbeat or disabled_tracer"

# Cross-transport equivalence matrix: process-transport unit + property
# suite, trace determinism on both substrates, bitwise differential
# subset, and fault parity (docs/TRANSPORTS.md).
test-transport:
	pytest tests/test_transport_process.py tests/test_obs_determinism.py
	pytest tests/harness/test_differential.py -k "transport or process"
	pytest tests/harness/test_faults.py -k "parity or transport or crash"

# Step-coherence suite: incremental octree repair, walk warm-starts and
# the incremental LET drain (docs/PERFORMANCE.md §5).  Bitwise-equality
# gates at 1/2/4/8 ranks plus fault schedules against the reuse paths,
# then the reuse-on/off bench smoke (counts gate hard, wall advisory).
test-reuse:
	pytest tests/test_octree_incremental.py tests/test_forest_walk.py \
	       tests/harness/test_reuse_faults.py \
	       -m "harness_slow or not harness_slow"
	pytest benchmarks/bench_step_pipeline.py::test_step_reuse_on_off -q

# Compute-backend registry + equivalence suite (docs/PERFORMANCE.md §6):
# registry/driver threading, numpy-default bitwise gates, oracle
# agreement for every backend the host carries (numba/cupy skip when
# absent -- install with `pip install -e .[numba]` to exercise the JIT).
test-backends:
	pytest tests/test_gravity_backends.py \
	       -m "harness_slow or not harness_slow"

bench:
	pytest benchmarks/ --benchmark-only

# Fast-path vs reference force pipeline: golden interaction-count check
# plus the per-phase before/after table (docs/PERFORMANCE.md).  Scale
# the timed comparison with STEP_BENCH_N / STEP_BENCH_STEPS.
bench-step:
	pytest benchmarks/bench_step_pipeline.py -q

# Threads-vs-process wall-clock at the step-pipeline config; records
# BENCH_transport.json (speedup gate arms only on >=4 cores).  Scale
# with TRANSPORT_BENCH_N / TRANSPORT_BENCH_STEPS.
bench-transport:
	pytest benchmarks/bench_transport.py -q

# Per-backend kernel timing: oracle-equivalence smoke, then one
# kernel_backends run appended to the history with the count gate
# judged (numba rows appear when the JIT extra is installed; see
# docs/PERFORMANCE.md §6).  Scale with BACKEND_BENCH_N / _REPEATS.
bench-backends:
	pytest benchmarks/bench_backends.py -q
	PYTHONPATH=src:$$PYTHONPATH python -m repro.obs.bench run kernel_backends
	PYTHONPATH=src:$$PYTHONPATH python -m repro.obs.bench history kernel_backends \
	       --threshold 0.25 --min-abs 0.05

# Registered-benchmark runner: append one run of the two CI benches to
# benchmarks/history/*.jsonl, then judge the trajectory -- deterministic
# count metrics gate hard (exit 1 on drift), wall-clock is advisory
# (docs/PERFORMANCE.md §4, python -m repro.obs.bench --help).
bench-history:
	PYTHONPATH=src:$$PYTHONPATH python -m repro.obs.bench run step_pipeline
	PYTHONPATH=src:$$PYTHONPATH python -m repro.obs.bench run obs_overhead
	PYTHONPATH=src:$$PYTHONPATH python -m repro.obs.bench history step_pipeline \
	       --threshold 0.25 --min-abs 0.05
	PYTHONPATH=src:$$PYTHONPATH python -m repro.obs.bench history obs_overhead \
	       --threshold 0.25 --min-abs 0.05

# The subset that regenerates every table/figure without the long
# evolution runs (fig3, equal-mass heating).
bench-quick:
	pytest benchmarks/bench_fig1_kernel.py benchmarks/bench_fig4_weak_scaling.py \
	       benchmarks/bench_table2_breakdown.py benchmarks/bench_time_to_solution.py \
	       benchmarks/bench_state_of_the_art.py --benchmark-only

# Traced 4-rank smoke run: writes trace.json + metrics.txt (and streams
# trace.jsonl incrementally during the run), then prints the Table II
# report reconstructed from the trace (docs/OBSERVABILITY.md).
trace:
	PYTHONPATH=src:$$PYTHONPATH python -m repro.obs.smoke --ranks 4 --n 2000 \
	       --steps 2 --trace-out trace.json --metrics-out metrics.txt \
	       --jsonl-out trace.jsonl
	PYTHONPATH=src:$$PYTHONPATH python -m repro.obs.report trace.json --validate

# Collapsed-stack flamegraph from the `make trace` output, fold-back
# checked; feed trace.folded to flamegraph.pl or speedscope.
flame: trace
	PYTHONPATH=src:$$PYTHONPATH python -m repro.obs.export trace.json \
	       --out trace.folded --check

# Live terminal dashboard over a small demo run (ANSI redraw per step).
dashboard:
	PYTHONPATH=src:$$PYTHONPATH python -m repro.obs.dashboard --ranks 2 \
	       --n 2000 --steps 6

clean:
	rm -rf benchmarks/results .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
