#!/usr/bin/env python3
"""The paper's production run at laptop scale: a Milky Way simulation.

Generates the Sec. IV composite model (NFW halo + exponential disk +
Hernquist bulge, equal-mass particles), evolves it with the production
configuration (theta = 0.4 by default), periodically writes snapshots
and reports the Fig. 3 observables: bar amplitude/phase, disk surface
density, and the solar-neighborhood velocity distribution.

Run:
    python examples/milky_way.py --n 20000 --steps 50 --dt 2.0
    python examples/milky_way.py --unstable      # fast bar formation
"""

import argparse
import dataclasses
from pathlib import Path

import numpy as np

from repro import Simulation, SimulationConfig
from repro.analysis import bar_strength, solar_neighborhood, velocity_distribution
from repro.constants import MILKY_WAY_PAPER, internal_to_gyr, internal_to_kms
from repro.ics import milky_way_model
from repro.io import save_snapshot
from repro.particles import COMPONENT_DISK


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--n", type=int, default=20_000,
                    help="total particle count (paper: 51.2e9)")
    ap.add_argument("--steps", type=int, default=50)
    ap.add_argument("--dt", type=float, default=2.0,
                    help="time step in internal units (~4.7 Myr each)")
    ap.add_argument("--theta", type=float, default=0.4,
                    help="opening angle (paper: 0.4)")
    ap.add_argument("--softening", type=float, default=0.1,
                    help="softening in kpc; scale ~N^(-1/3) (paper: 1e-3)")
    ap.add_argument("--unstable", action="store_true",
                    help="use the cold disk-heavy variant that forms a "
                         "bar within ~1 Gyr")
    ap.add_argument("--snapshot-every", type=int, default=0,
                    help="write a snapshot every k steps (0 = off)")
    ap.add_argument("--outdir", default="mw_output")
    args = ap.parse_args()

    params = MILKY_WAY_PAPER
    if args.unstable:
        # The bench-validated fast-bar variant: heavier disk, lighter
        # halo, marginal Q; conserves energy at dt ~ 0.5, eps ~ 0.4.
        params = dataclasses.replace(params, disk_mass=12.0, halo_mass=45.0,
                                     disk_toomre_q=1.1)

    print(f"Generating the Milky Way model with N = {args.n} "
          f"(equal-mass particles, ~{params.total_mass / args.n * 1e10:.2e} Msun each)")
    ps = milky_way_model(args.n, params=params, seed=1)
    for tag, name in ((0, "bulge"), (1, "disk"), (2, "halo")):
        c = ps.select_component(tag)
        print(f"  {name:5s}: {c.n:8d} particles, {c.total_mass * 1e10:.2e} Msun")

    cfg = SimulationConfig(theta=args.theta, softening=args.softening,
                           dt=args.dt)
    sim = Simulation(ps, cfg)
    e0 = sim.diagnostics()
    outdir = Path(args.outdir)
    if args.snapshot_every:
        outdir.mkdir(exist_ok=True)

    print(f"\n{'step':>5s} {'t [Gyr]':>8s} {'A2/A0':>7s} {'phase':>7s} "
          f"{'s/step':>7s} {'pp/p':>6s} {'pc/p':>6s}")
    for k in range(args.steps):
        bd = sim.step()
        disk = sim.particles.select_component(COMPONENT_DISK)
        a2, phase = bar_strength(disk.pos, disk.mass, r_max=5.0)
        pp, pc = bd.counts.per_particle(sim.particles.n)
        print(f"{sim.step_count:5d} {internal_to_gyr(sim.time):8.3f} "
              f"{a2:7.3f} {phase:7.2f} {bd.total:7.2f} {pp:6.0f} {pc:6.0f}")
        if args.snapshot_every and (k + 1) % args.snapshot_every == 0:
            path = outdir / f"snapshot_{sim.step_count:05d}.npz"
            save_snapshot(path, sim.particles, time=sim.time,
                          step=sim.step_count)
            print(f"      wrote {path}")

    e1 = sim.diagnostics()
    print(f"\nenergy drift: {abs((e1.total - e0.total) / e0.total):.2e}")

    # Solar-neighborhood kinematics (the Fig. 3 bottom-left panel).
    disk = sim.particles.select_component(COMPONENT_DISK)
    idx = solar_neighborhood(disk.pos, disk.vel, r_sun=8.0, radius=2.0)
    if len(idx) > 10:
        v_r, v_phi = velocity_distribution(disk.pos, disk.vel, idx)
        print(f"solar neighborhood ({len(idx)} stars within 2 kpc of the "
              "solar position):")
        print(f"  sigma(v_r)   = {internal_to_kms(np.std(v_r)):6.1f} km/s")
        print(f"  sigma(v_phi) = {internal_to_kms(np.std(v_phi)):6.1f} km/s")


if __name__ == "__main__":
    main()
