#!/usr/bin/env python3
"""Distributed simulation over SimMPI ranks + projection to Titan scale.

Runs the full parallel pipeline of Sec. III-B (hierarchical-sampling
domain decomposition, particle exchange, boundary allgather, LET
exchange, per-LET force walks) on P in-process ranks, reports the
communication statistics the paper's design minimises, then uses the
calibrated performance model to project the same workload to the paper's
machines.

Run:
    python examples/parallel_scaling.py --ranks 4 --n 16000 --steps 2
"""

import argparse

import numpy as np

from repro import SimulationConfig
from repro.core.parallel_simulation import ParallelSimulation
from repro.ics import milky_way_model
from repro.perfmodel import PIZ_DAINT, TITAN, weak_scaling
from repro.simmpi import SimWorld, spmd_run


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--ranks", type=int, default=4)
    ap.add_argument("--n", type=int, default=16_000)
    ap.add_argument("--steps", type=int, default=2)
    ap.add_argument("--theta", type=float, default=0.5)
    args = ap.parse_args()

    print(f"Milky Way model, N = {args.n}, {args.ranks} SimMPI ranks, "
          f"{args.steps} steps\n")
    ps = milky_way_model(args.n, seed=2)
    cfg = SimulationConfig(theta=args.theta, softening=0.1, dt=1.0)
    world = SimWorld(args.ranks)

    def prog(comm):
        lo = args.n * comm.rank // comm.size
        hi = args.n * (comm.rank + 1) // comm.size
        sim = ParallelSimulation(comm, ps.select(np.arange(lo, hi)), cfg)
        sim.evolve(args.steps)
        return sim

    sims = spmd_run(args.ranks, prog, world=world)

    print(f"{'rank':>4s} {'particles':>10s} {'pp/p':>7s} {'pc/p':>7s} "
          f"{'LETs sent':>9s} {'LET KB':>8s}")
    for r, sim in enumerate(sims):
        res = sim._result
        bd = sim.history[-1]
        pp, pc = bd.counts.per_particle(max(sim.particles.n, 1))
        print(f"{r:4d} {sim.particles.n:10d} {pp:7.0f} {pc:7.0f} "
              f"{res.n_lets_sent:9d} {res.let_bytes_sent / 1024:8.1f}")

    print("\ncommunication traffic by phase:")
    for phase, s in world.traffic.summary().items():
        print(f"  {phase:18s} {s['messages']:5d} msgs, "
              f"{s['collectives']:4d} collectives, {s['bytes'] / 1024:9.1f} KB")

    # Projection: the same algorithm on the paper's machines.
    print("\nProjection to the paper's machines (weak scaling, 13M/GPU):")
    print(f"{'machine':>10s} {'GPUs':>6s} {'s/step':>7s} {'app Tflops':>11s} "
          f"{'efficiency':>10s}")
    for machine in (PIZ_DAINT, TITAN):
        counts = [1, 1024, machine.nodes_used]
        pts = weak_scaling(machine, counts)
        for p in pts:
            eff = p.efficiency_vs(pts[0])
            print(f"{machine.name:>10s} {p.n_gpus:6d} {p.breakdown.total:7.2f} "
                  f"{p.application_tflops:11.1f} {eff * 100:9.1f}%")


if __name__ == "__main__":
    main()
