#!/usr/bin/env python3
"""Spiral-structure analysis: mode spectra, pitch angles, moving groups.

Demonstrates the Fig. 3 analysis toolkit on (a) a synthetic logarithmic
spiral with known parameters, recovering arm multiplicity and pitch
angle, and (b) an evolved disk snapshot (optionally loaded from a
snapshot file written by examples/milky_way.py).

Run:
    python examples/spiral_analysis.py
    python examples/spiral_analysis.py --snapshot mw_output/snapshot_00050.npz
"""

import argparse

import numpy as np

from repro.analysis import (
    bar_strength,
    solar_neighborhood,
    velocity_distribution,
    velocity_substructure_clumpiness,
)
from repro.analysis.spiral import (
    logspiral_transform,
    make_log_spiral,
    mode_spectrum,
    pitch_angle,
)
from repro.constants import internal_to_kms
from repro.io import load_snapshot
from repro.particles import COMPONENT_DISK


def analyse_disk(pos: np.ndarray, mass: np.ndarray, label: str) -> None:
    print(f"\n--- {label} ---")
    spec = mode_spectrum(pos, mass, r_min=3.0, r_max=10.0)
    print("mode spectrum |A_m|/A_0 (m = 1..8):")
    print("  " + " ".join(f"m{m}:{spec[m]:.3f}" for m in range(1, 9)))
    dominant = int(np.argmax(spec[1:]) + 1)
    print(f"dominant mode: m = {dominant}")
    a2, phase = bar_strength(pos, mass, r_max=5.0)
    print(f"bar amplitude A2/A0 (R < 5 kpc): {a2:.3f}, phase {phase:+.2f} rad")
    alpha = pitch_angle(pos, mass, m=max(dominant, 2))
    print(f"pitch angle of the m = {max(dominant, 2)} pattern: {alpha:.1f} deg")
    p, amp = logspiral_transform(pos, mass, m=2)
    print(f"log-spiral peak: p = {p[np.argmax(amp)]:+.1f}, |A| = {amp.max():.3f}")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--snapshot", default=None,
                    help="npz snapshot from examples/milky_way.py")
    args = ap.parse_args()

    # (a) synthetic spiral with known ground truth.
    truth_pitch = 18.0
    pos = make_log_spiral(40000, pitch_deg=truth_pitch, m=2, spread=0.15,
                          seed=7)
    analyse_disk(pos, np.ones(len(pos)),
                 f"synthetic 2-armed spiral (true pitch {truth_pitch} deg)")

    # (b) a simulation snapshot, if provided.
    if args.snapshot:
        ps, meta = load_snapshot(args.snapshot)
        disk = ps.select_component(COMPONENT_DISK)
        analyse_disk(disk.pos, disk.mass,
                     f"snapshot {args.snapshot} (t = {meta['time']:.1f})")
        idx = solar_neighborhood(disk.pos, disk.vel, r_sun=8.0, radius=2.0)
        if len(idx) > 256:
            v_r, v_phi = velocity_distribution(disk.pos, disk.vel, idx)
            c = velocity_substructure_clumpiness(v_r, v_phi)
            print(f"\nsolar-neighborhood sample: {len(idx)} stars, "
                  f"sigma_r = {internal_to_kms(np.std(v_r)):.0f} km/s, "
                  f"clumpiness = {c:.2f}")
            print("(moving groups appear as clumpiness >> 0; compare the "
                  "paper's Fig. 3 bottom-left panel)")


if __name__ == "__main__":
    main()
