#!/usr/bin/env python3
"""Quickstart: evolve a Plummer star cluster with the tree code.

Builds a 10,000-particle Plummer sphere in virial equilibrium, evolves
it with the Barnes-Hut tree code (theta = 0.4, quadrupole corrections,
Peano-Hilbert ordering -- the paper's production configuration) and
reports energy conservation and the per-phase time breakdown.

Run:
    python examples/quickstart.py [n_particles] [n_steps]
"""

import sys

from repro import Simulation, SimulationConfig
from repro.core.step import TABLE2_PHASES
from repro.ics import plummer_model


def main(n: int = 10_000, n_steps: int = 20) -> None:
    print(f"Building a Plummer model with {n} particles...")
    particles = plummer_model(n, seed=42)

    config = SimulationConfig(theta=0.4, softening=0.02, dt=0.02)
    sim = Simulation(particles, config)

    e0 = sim.diagnostics()
    print(f"initial energy: {e0.total:+.6f}  virial ratio: {e0.virial_ratio:.3f}")

    print(f"Evolving {n_steps} steps (dt = {config.dt})...")
    sim.evolve(n_steps)

    e1 = sim.diagnostics()
    drift = abs((e1.total - e0.total) / e0.total)
    print(f"final energy:   {e1.total:+.6f}  relative drift: {drift:.2e}")

    bd = sim.history[-1]
    print("\nlast step breakdown (the paper's Table II rows):")
    for phase in TABLE2_PHASES:
        t = getattr(bd, phase)
        if t > 0:
            print(f"  {phase:18s} {t * 1e3:9.1f} ms")
    pp, pc = bd.counts.per_particle(n)
    print(f"\ninteractions per particle: {pp:.0f} p-p, {pc:.0f} p-c")
    print(f"host force-kernel rate: {bd.gpu_tflops() * 1e3:.2f} Gflops "
          "(paper counting conventions)")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
