#!/usr/bin/env python3
"""Fig. 2 demo: Peano-Hilbert domain decomposition and boundary trees.

Decomposes a disk galaxy over P ranks along the Peano-Hilbert curve,
renders the midplane ownership map as ASCII art (the analogue of Fig. 2's
colored domains), and reports each rank's boundary structure -- the
pruned tree (gray cells in the figure) that doubles as a LET for distant
ranks.

Run:
    python examples/domain_decomposition.py --ranks 5 --n 20000
"""

import argparse

import numpy as np

from repro.config import SimulationConfig
from repro.ics import milky_way_model
from repro.octree import build_octree, compute_moments, compute_opening_radii
from repro.parallel import (
    boundary_structure,
    boundary_sufficient_for,
    domain_update,
    exchange_particles,
)
from repro.sfc import BoundingBox
from repro.simmpi import spmd_run


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--ranks", type=int, default=5)
    ap.add_argument("--n", type=int, default=20_000)
    ap.add_argument("--grid", type=int, default=48)
    args = ap.parse_args()

    ps = milky_way_model(args.n, seed=3)
    box = BoundingBox.from_positions(ps.pos)
    cfg = SimulationConfig(theta=0.5)

    def prog(comm):
        lo = args.n * comm.rank // comm.size
        hi = args.n * (comm.rank + 1) // comm.size
        local = ps.select(np.arange(lo, hi))
        keys = box.keys(local.pos)
        order = np.argsort(keys)
        local.reorder(order)
        decomp = domain_update(comm, keys[order], rate2=0.1)
        local = exchange_particles(comm, local, keys[order], decomp)
        tree = build_octree(local.pos, nleaf=16, box=box)
        compute_moments(tree, local.pos, local.mass)
        compute_opening_radii(tree, cfg.theta, cfg.mac)
        b = boundary_structure(tree, local.pos[tree.order],
                               local.mass[tree.order])
        aabb = (tree.bmin[0], tree.bmax[0])
        aabbs = comm.allgather(aabb)
        n_need_full = sum(1 for r, a in enumerate(aabbs)
                          if r != comm.rank
                          and not boundary_sufficient_for(b, *a))
        return local, tree.n_cells, b, n_need_full

    results = spmd_run(args.ranks, prog)

    # ASCII ownership map of the disk midplane.
    extent = 15.0
    g = args.grid
    owner = np.full((g, g), -1)
    best = np.zeros((g, g))
    for rank, (local, *_rest) in enumerate(results):
        sel = np.abs(local.pos[:, 2]) < 1.0
        h, _, _ = np.histogram2d(local.pos[sel, 0], local.pos[sel, 1],
                                 bins=g, range=[[-extent, extent]] * 2)
        take = h > best
        owner[take] = rank
        best[take] = h[take]
    print(f"domain ownership, disk midplane ({args.ranks} ranks, "
          f"{2 * extent:.0f} kpc box):")
    for row in owner.T[::-1]:
        print("".join("." if v < 0 else str(int(v)) for v in row))

    print(f"\n{'rank':>4s} {'particles':>10s} {'tree cells':>11s} "
          f"{'boundary cells':>15s} {'boundary KB':>12s} {'need-full-LET':>14s}")
    for rank, (local, ncells, b, nfull) in enumerate(results):
        print(f"{rank:4d} {local.n:10d} {ncells:11d} {b.n_cells:15d} "
              f"{b.nbytes / 1024:12.1f} {nfull:14d}")
    print("\nThe boundary structure is what MPI_Allgatherv ships each step;"
          "\nonly the 'need-full-LET' neighbours receive dedicated LETs.")


if __name__ == "__main__":
    main()
