#!/bin/bash
# Fault-injection + differential-verification suite (see docs/TESTING.md).
#
# Default: the fast subset (what tier-1 runs).  FULL=1 adds the extended
# harness_slow matrix: all serial-vs-parallel IC x ranks x theta
# combinations and the multi-step evolution-under-faults runs.
cd /root/repo
if [ "${FULL:-0}" = "1" ]; then
    MARKEXPR="harness_slow or not harness_slow"
else
    MARKEXPR="not harness_slow"
fi
: > fault_suite_output.txt
python3 -m pytest tests/harness -m "$MARKEXPR" -q -p no:cacheprovider \
    2>&1 | tee -a fault_suite_output.txt | tail -3
echo FAULT_SUITE_DONE
