"""High-level simulation drivers (serial and distributed)."""

from .step import StepBreakdown
from .simulation import Simulation
from .parallel_simulation import ParallelSimulation, run_parallel_simulation
from .validation import ForceAccuracy, validate_forces

__all__ = [
    "StepBreakdown",
    "Simulation",
    "ParallelSimulation",
    "run_parallel_simulation",
    "ForceAccuracy",
    "validate_forces",
]
