"""Runtime force-accuracy validation.

Tree codes trade accuracy for speed through theta; production campaigns
routinely spot-check the approximation by recomputing exact forces for a
random particle sample (cheap: O(sample * N)).  This module provides
that check for both the serial and distributed drivers and is used by
the test suite as the ground-truth oracle.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..gravity import direct_forces
from ..particles import ParticleSet


@dataclasses.dataclass(frozen=True)
class ForceAccuracy:
    """Relative force-error statistics over a validation sample."""

    sample_size: int
    median: float
    p90: float
    p99: float
    maximum: float
    potential_median: float

    def acceptable(self, theta: float) -> bool:
        """Rule-of-thumb acceptance: the median error of a quadrupole
        Barnes-Hut code scales like theta^4; allow a generous envelope
        (x50) above it, with an absolute floor for round-off."""
        return self.median < max(50.0 * theta ** 4 * 1e-2, 1e-9)


def validate_forces(particles: ParticleSet, acc: np.ndarray,
                    phi: np.ndarray, eps: float,
                    sample_size: int = 256,
                    rng: np.random.Generator | None = None) -> ForceAccuracy:
    """Compare tree forces against exact summation on a random sample.

    Parameters
    ----------
    particles:
        The full particle set (sources for the exact computation).
    acc, phi:
        Tree-code accelerations/potentials for the same particles.
    eps:
        The softening used by the tree code (must match).
    sample_size:
        Number of target particles to validate (exact cost is
        sample_size x N).
    """
    rng = rng or np.random.default_rng(0)
    n = particles.n
    k = min(sample_size, n)
    targets = rng.choice(n, size=k, replace=False)
    acc_d, phi_d = direct_forces(particles.pos, particles.mass, eps=eps,
                                 targets=targets)
    num = np.linalg.norm(acc[targets] - acc_d, axis=1)
    den = np.linalg.norm(acc_d, axis=1) + 1e-300
    rel = num / den
    perr = np.abs((phi[targets] - phi_d) / (phi_d + 1e-300))
    return ForceAccuracy(
        sample_size=k,
        median=float(np.median(rel)),
        p90=float(np.percentile(rel, 90)),
        p99=float(np.percentile(rel, 99)),
        maximum=float(rel.max()),
        potential_median=float(np.median(perr)),
    )
