"""Per-step timing breakdown mirroring the rows of Table II."""

from __future__ import annotations

import dataclasses

from ..gravity.flops import InteractionCounts

#: Ordered phase names exactly as Table II reports them.
TABLE2_PHASES = (
    "sorting",
    "domain_update",
    "tree_construction",
    "tree_properties",
    "gravity_local",
    "gravity_let",
    "non_hidden_comm",
    "other",
)


@dataclasses.dataclass
class StepBreakdown:
    """Wall-clock time per algorithm phase for one simulation step.

    Field names map 1:1 onto Table II rows: "Sorting SFC", "Domain
    Update", "Tree-construction", "Tree-properties", "Compute gravity
    Local-tree", "Compute gravity LETs", "Non-hidden LET comm" and
    "Unbalance + Other".
    """

    sorting: float = 0.0
    domain_update: float = 0.0
    tree_construction: float = 0.0
    tree_properties: float = 0.0
    gravity_local: float = 0.0
    gravity_let: float = 0.0
    non_hidden_comm: float = 0.0
    other: float = 0.0
    counts: InteractionCounts = dataclasses.field(default_factory=InteractionCounts)
    n_particles: int = 0

    @property
    def total(self) -> float:
        """Total wall-clock time of the step."""
        return (self.sorting + self.domain_update + self.tree_construction
                + self.tree_properties + self.gravity_local + self.gravity_let
                + self.non_hidden_comm + self.other)

    def as_dict(self) -> dict[str, float]:
        """Phase -> seconds mapping in Table II order."""
        return {name: getattr(self, name) for name in TABLE2_PHASES}

    def gpu_tflops(self) -> float:
        """Force-kernel Tflop/s (the 'GPU' performance row of Table II)."""
        t = self.gravity_local + self.gravity_let
        return self.counts.tflops(t)

    def application_tflops(self) -> float:
        """Whole-application Tflop/s (the 'Application' row of Table II)."""
        return self.counts.tflops(self.total)

    @classmethod
    def mean(cls, steps: "list[StepBreakdown]") -> "StepBreakdown":
        """Average a list of breakdowns (used over the measured window)."""
        if not steps:
            raise ValueError("no steps to average")
        out = cls()
        k = len(steps)
        for name in TABLE2_PHASES:
            setattr(out, name, sum(getattr(s, name) for s in steps) / k)
        out.counts = InteractionCounts(
            n_pp=sum(s.counts.n_pp for s in steps) // k,
            n_pc=sum(s.counts.n_pc for s in steps) // k,
            quadrupole=steps[0].counts.quadrupole)
        out.n_particles = steps[0].n_particles
        return out
