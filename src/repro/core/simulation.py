"""Single-process simulation driver: the full Bonsai step pipeline.

Each step performs, in order and with per-phase timing (Table II rows):
SFC key sort, tree construction, tree properties (multipole moments +
opening radii), the fused tree-walk/force kernel, and the leap-frog
update.  The "domain update" and LET phases are identically zero here;
:class:`~repro.core.parallel_simulation.ParallelSimulation` adds them.

With ``trace=`` (a :class:`repro.obs.Tracer`) every phase is also
emitted as a rank-0 span, using the very clock readings booked into the
:class:`StepBreakdown` -- the serial twin of the parallel driver's
instrumentation.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..config import SimulationConfig
from ..gravity import KernelWorkspace, tree_forces
from ..obs.tracer import NULL_TRACER, Tracer
from ..integrator import EnergyDiagnostics, system_diagnostics
from ..octree import build_octree, cached_octree, compute_moments, make_groups
from ..octree.incremental import TreeCache
from ..particles import ParticleSet
from ..sfc import BoundingBox, SortCache
from .step import StepBreakdown


class Simulation:
    """Tree-code N-body simulation on one process.

    Parameters
    ----------
    particles:
        The particle system (modified in place).
    config:
        Numerical parameters (theta, softening, dt, ...).
    trace:
        Optional :class:`repro.obs.Tracer`; phases are emitted as
        rank-0 spans (a one-rank trace, same tooling as parallel runs).
    trace_sink:
        Optional sink spec (see :func:`repro.obs.sink.coerce_sink`):
        a path streams the run to JSONL incrementally, an int bounds
        tracer memory with a ring.  Without ``trace=`` a tracer is
        built around it; call ``sim.tracer.close()`` (or use the
        tracer as a context manager) to finalise streaming files.

    Examples
    --------
    >>> from repro.ics import plummer_model
    >>> from repro import SimulationConfig
    >>> sim = Simulation(plummer_model(1000), SimulationConfig(dt=0.01))
    >>> sim.evolve(10)
    >>> round(sim.time, 2)
    0.1
    """

    def __init__(self, particles: ParticleSet, config: SimulationConfig | None = None,
                 trace: Tracer | None = None, trace_sink=None):
        self.particles = particles
        self.config = config or SimulationConfig()
        if trace_sink is not None:
            from ..obs.sink import coerce_sink
            sink = coerce_sink(trace_sink)
            if trace is None:
                trace = Tracer(sink=sink)
            else:
                trace.add_sink(sink)
        self.tracer = trace if trace is not None else NULL_TRACER
        self.time = 0.0
        self.step_count = 0
        self.history: list[StepBreakdown] = []
        self._acc: np.ndarray | None = None
        self._phi: np.ndarray | None = None
        self._sort_cache = SortCache()
        self._workspace: KernelWorkspace | None = None
        # Resolve the compute backend once (fails fast on unavailable
        # runtimes) and pay any JIT warm-up here, outside every timed
        # phase.  Ignored by the direct-force oracle path.
        from ..gravity.backends import get_backend
        self._backend = get_backend(self.config.backend)
        self._backend.warmup(self.config.precision)
        self._backend_attr = {} if self._backend.name == "numpy" \
            else {"backend": self._backend.name}
        # Step-coherence: incremental tree repair (docs/PERFORMANCE.md).
        # The serial driver refits its bounding box from the particles
        # every step, so the cache usually falls back cold (a box change
        # relabels every octant); the knob is honoured for parity and
        # for fixed-box workloads driven through compute_forces.  Walk
        # warm-starts are a parallel-driver feature: tree_forces owns
        # its walk and the serial walk has no LET overlap to hide.
        self._tree_cache = TreeCache() \
            if self.config.tree_reuse != "off" else None

    def _now(self) -> float:
        """Phase clock: the tracer's when tracing (so trace == breakdown)."""
        tr = self.tracer
        return tr.clock.now(0) if tr.enabled else time.perf_counter()

    def _rec(self, name: str, t0: float, t1: float, **attrs) -> None:
        tr = self.tracer
        if tr.enabled:
            tr.record(name, 0, t0, t1, cat="phase",
                      step=self.step_count, **attrs)

    @property
    def potential(self) -> np.ndarray | None:
        """Per-particle potential from the latest force evaluation."""
        return self._phi

    @property
    def acceleration(self) -> np.ndarray | None:
        """Per-particle acceleration from the latest force evaluation."""
        return self._acc

    def compute_forces(self, breakdown: StepBreakdown | None = None
                       ) -> tuple[np.ndarray, np.ndarray]:
        """Run the tree pipeline once; returns (acc, phi)."""
        cfg = self.config
        ps = self.particles
        bd = breakdown if breakdown is not None else StepBreakdown()
        bd.n_particles = ps.n

        if cfg.force_method == "direct":
            # The O(N^2) oracle ("if the opening angle is infinitesimal
            # the tree-code reduces to a ... direct N-body code").
            from ..gravity import direct_forces
            pp_before = bd.counts.n_pp
            t0 = self._now()
            acc, phi = direct_forces(ps.pos, ps.mass, eps=cfg.softening,
                                     counts=bd.counts)
            t1 = self._now()
            bd.gravity_local += t1 - t0
            # Span args carry *this pass's* tally; bd.counts accumulates
            # across the passes of one step (e.g. the kickstart).
            self._rec("gravity_local", t0, t1, n_particles=ps.n,
                      n_pp=bd.counts.n_pp - pp_before, n_pc=0,
                      quadrupole=False)
            bd.counts.quadrupole = False
            self._acc, self._phi = acc, phi
            return acc, phi

        t0 = self._now()
        box = BoundingBox.from_positions(ps.pos)
        keys = box.keys(ps.pos, cfg.curve)
        order = self._sort_cache.order_for(keys) if cfg.sort_reuse else None
        t1 = self._now()
        bd.sorting += t1 - t0
        sort_attr = {} if order is None else \
            {"sort_mode": self._sort_cache.last_mode}
        self._rec("sorting", t0, t1, **sort_attr)

        tree_attrs = {}
        if self._tree_cache is not None:
            tree = cached_octree(self._tree_cache, ps.pos, nleaf=cfg.nleaf,
                                 curve=cfg.curve, box=box, keys=keys,
                                 order=order)
            st = self._tree_cache.last
            tree_attrs = {"tree_mode": st.mode,
                          "tree_churn": round(st.churn, 6),
                          "tree_cells_repaired": st.cells_active,
                          "tree_cells_grafted": st.cells_grafted}
        else:
            tree = build_octree(ps.pos, nleaf=cfg.nleaf, curve=cfg.curve,
                                box=box, keys=keys, order=order)
        t2 = self._now()
        bd.tree_construction += t2 - t1
        self._rec("tree_construction", t1, t2, **tree_attrs)

        compute_moments(tree, ps.pos, ps.mass)
        make_groups(tree, cfg.ncrit)
        t3 = self._now()
        bd.tree_properties += t3 - t2
        self._rec("tree_properties", t2, t3)

        if self._workspace is None and cfg.scatter == "segment":
            self._workspace = self._backend.make_workspace(cfg.chunk,
                                                           cfg.precision)
        result = tree_forces(tree, ps.pos, ps.mass, theta=cfg.theta,
                             eps=cfg.softening, mac=cfg.mac,
                             quadrupole=cfg.quadrupole,
                             chunk=cfg.chunk, scatter=cfg.scatter,
                             precision=cfg.precision,
                             workspace=self._workspace,
                             backend=self._backend)
        t4 = self._now()
        bd.gravity_local += t4 - t3
        self._rec("gravity_local", t3, t4, n_particles=ps.n,
                  n_pp=result.counts.n_pp, n_pc=result.counts.n_pc,
                  quadrupole=cfg.quadrupole, **self._backend_attr)
        bd.counts.add(result.counts)
        bd.counts.quadrupole = cfg.quadrupole

        self._acc, self._phi = result.acc, result.phi
        return result.acc, result.phi

    def step(self) -> StepBreakdown:
        """Advance one KDK leap-frog step; returns its timing breakdown."""
        bd = StepBreakdown()
        if self._acc is None:
            self.compute_forces(bd)
        dt = self.config.dt
        half = 0.5 * dt

        t0 = self._now()
        self.particles.vel += self._acc * half
        self.particles.pos += self.particles.vel * dt
        t1 = self._now()
        bd.other += t1 - t0
        self._rec("other", t0, t1)

        self.compute_forces(bd)

        t2 = self._now()
        self.particles.vel += self._acc * half
        t3 = self._now()
        bd.other += t3 - t2
        self._rec("other", t2, t3)

        self.time += dt
        self.step_count += 1
        self.history.append(bd)
        return bd

    def evolve(self, n_steps: int,
               callback: Callable[["Simulation"], None] | None = None) -> None:
        """Advance ``n_steps`` steps, invoking ``callback`` after each."""
        for _ in range(n_steps):
            self.step()
            if callback is not None:
                callback(self)

    def diagnostics(self) -> EnergyDiagnostics:
        """Energy/momentum diagnostics from the latest potentials."""
        if self._phi is None:
            self.compute_forces()
        return system_diagnostics(self.particles, self._phi)
