"""Distributed simulation driver over SimMPI (the full Sec. III-B loop).

Each step performs exactly the paper's pipeline:

1. trailing half-kick of the previous step (KDK),
2. drift,
3. global bounding box reduction (CPUs combine local GPU boxes),
4. Peano-Hilbert keys + local sort ("Sorting SFC"),
5. hierarchical-sampling domain update + particle exchange,
6. local tree build / moments ("Tree-construction" / "Tree-properties"),
7. boundary allgather, symmetric sufficiency checks, LET exchange and
   the local + per-LET force walks ("Compute gravity"),
8. leading half-kick.

Forces are computed on the post-exchange layout, and both half-kicks of
a force evaluation run on that same layout, so the integrator remains a
well-defined KDK leap-frog even though particles migrate between ranks.

When constructed with ``trace=`` (a :class:`repro.obs.Tracer`) -- or on
a world that already carries one -- every pipeline phase is emitted as a
per-rank span using the same clock readings booked into the
:class:`StepBreakdown`, so ``python -m repro.obs.report`` reconstructs
the identical Table II numbers from the trace alone.
"""

from __future__ import annotations

import time

import numpy as np

from ..config import SimulationConfig
from ..gravity.flops import InteractionCounts
from ..integrator import EnergyDiagnostics
from ..obs.tracer import Tracer
from ..particles import ParticleSet
from ..parallel import DomainDecomposition, distributed_forces, domain_update, exchange_particles
from ..sfc import BoundingBox
from ..simmpi import SimComm, spmd_run
from .step import StepBreakdown


class ParallelSimulation:
    """Per-rank driver; instantiate inside an SPMD program.

    Parameters
    ----------
    comm:
        This rank's communicator.
    particles:
        This rank's initial local particles (any distribution; the first
        domain update moves everything where it belongs).
    config:
        Numerical parameters, identical on all ranks.
    decomposition_method:
        "hierarchical" (paper) or "serial" (ablation baseline).
    invariant_checks:
        When True (identical on all ranks -- the checks are collective),
        every redistribute asserts exchange conservation and ownership
        and every force evaluation asserts the local octree's structural
        invariants, via :mod:`repro.testing.invariants`.
    trace:
        Optional :class:`repro.obs.Tracer`; attached to the world (all
        ranks must pass the same tracer) so every phase, message and
        collective lands in one trace.  When omitted, a tracer already
        attached to the world is picked up automatically.
    """

    def __init__(self, comm: SimComm, particles: ParticleSet,
                 config: SimulationConfig | None = None,
                 decomposition_method: str = "hierarchical",
                 sample_rate1: float = 0.01, sample_rate2: float = 0.05,
                 invariant_checks: bool = False,
                 trace: Tracer | None = None):
        self.comm = comm
        self.particles = particles
        self.config = config or SimulationConfig()
        self.method = decomposition_method
        self.rate1 = sample_rate1
        self.rate2 = sample_rate2
        self.invariant_checks = invariant_checks
        if trace is not None:
            comm.world.attach_tracer(trace)
        self.time = 0.0
        self.step_count = 0
        self.history: list[StepBreakdown] = []
        self.decomposition: DomainDecomposition | None = None
        self.recv_wait_seconds = 0.0
        self._acc: np.ndarray | None = None
        self._phi: np.ndarray | None = None
        self._weights: np.ndarray | None = None

    # -- observability ----------------------------------------------------

    @property
    def tracer(self) -> Tracer:
        """The world's tracer (:data:`repro.obs.NULL_TRACER` when off)."""
        return self.comm.tracer

    def _now(self) -> float:
        """Phase-boundary clock: tracer clock when tracing, else wall.

        Using the tracer's clock for the breakdown keeps the trace and
        the :class:`StepBreakdown` numerically identical -- one
        measurement, two views.
        """
        tr = self.comm.tracer
        if tr.enabled:
            return tr.clock.now(self.comm.rank)
        return time.perf_counter()

    def _rec(self, name: str, t0: float, t1: float, **attrs) -> None:
        tr = self.comm.tracer
        if tr.enabled:
            tr.record(name, self.comm.rank, t0, t1, cat="phase",
                      step=self.step_count, **attrs)

    # -- pipeline pieces --------------------------------------------------

    def _global_box(self) -> BoundingBox:
        """Reduce local bounding boxes to the shared global cube."""
        local = BoundingBox.from_positions(self.particles.pos)
        boxes = self.comm.allgather((local.origin, local.size))
        return BoundingBox.merge([BoundingBox(origin=o, size=s)
                                  for o, s in boxes], pad=1e-3)

    def redistribute(self, bd: StepBreakdown | None = None) -> None:
        """Domain update + particle exchange (Table II "Domain Update")."""
        t0 = self._now()
        box = self._global_box()
        keys = box.keys(self.particles.pos, self.config.curve)
        order = np.argsort(keys, kind="stable")
        self.particles.reorder(order)
        keys = keys[order]
        weights = self._weights[order] if self._weights is not None and \
            len(self._weights) == len(order) else None
        t1 = self._now()
        self._rec("sorting", t0, t1)

        self.comm.set_phase("domain_update")
        self.decomposition = domain_update(self.comm, keys, weights,
                                           method=self.method,
                                           rate1=self.rate1, rate2=self.rate2)
        self.particles = exchange_particles(self.comm, self.particles, keys,
                                            self.decomposition,
                                            check=self.invariant_checks)
        if self.invariant_checks:
            from ..testing.invariants import check_ownership
            keys_after = box.keys(self.particles.pos, self.config.curve)
            check_ownership(self.comm, self.decomposition, keys_after)
        t2 = self._now()
        self._rec("domain_update", t1, t2)
        self._box = box
        if bd is not None:
            bd.sorting += t1 - t0
            bd.domain_update += t2 - t1

    def compute_forces(self, bd: StepBreakdown | None = None) -> None:
        """Distributed force computation on the current layout.

        The per-sub-phase times measured inside
        :func:`distributed_forces` are mapped onto Table II rows here:
        boundary/LET *build+send* time books under "Unbalance + Other"
        (the paper hides it), the rest map one-to-one.
        """
        result = distributed_forces(self.comm, self.particles, self.config,
                                    self._box, step=self.step_count)
        self._acc, self._phi = result.acc, result.phi
        self._result = result
        self.recv_wait_seconds += result.recv_wait_seconds
        if self.invariant_checks:
            from ..testing.invariants import check_octree
            check_octree(result.tree, self.particles.pos, self.particles.mass)
        # Per-particle cost estimate for the next load balance: spread the
        # local walk cost uniformly over local particles (the GPU balance
        # quantity is flops per domain, which this reproduces in aggregate).
        flops_pp = result.counts_total.flops / max(self.particles.n, 1)
        self._weights = np.full(self.particles.n, flops_pp)
        if bd is not None:
            ph = result.phases
            bd.tree_construction += ph["tree_construction"]
            bd.tree_properties += ph["tree_properties"]
            bd.gravity_local += ph["gravity_local"]
            bd.gravity_let += ph["gravity_let"]
            bd.non_hidden_comm += ph["non_hidden_comm"]
            bd.other += ph["boundary_exchange"] + ph["let_exchange"]
            bd.counts.add(result.counts_total)
            bd.counts.quadrupole = self.config.quadrupole
            bd.n_particles = self.particles.n

    def prime(self, bd: StepBreakdown | None = None) -> None:
        """Initial decomposition + forces (before the first step)."""
        self.redistribute(bd)
        self.compute_forces(bd)

    def step(self) -> StepBreakdown:
        """Advance one KDK step; returns this rank's timing breakdown."""
        bd = StepBreakdown()
        if self._acc is None:
            self.prime(bd)
        dt = self.config.dt
        half = 0.5 * dt

        t0 = self._now()
        self.particles.vel += self._acc * half
        self.particles.pos += self.particles.vel * dt
        t1 = self._now()
        self._rec("other", t0, t1)
        bd.other += t1 - t0

        self.redistribute(bd)
        self.compute_forces(bd)

        t0 = self._now()
        self.particles.vel += self._acc * half
        t1 = self._now()
        self._rec("other", t0, t1)
        bd.other += t1 - t0

        self.time += dt
        self.step_count += 1
        self.history.append(bd)
        return bd

    def evolve(self, n_steps: int) -> None:
        """Advance ``n_steps`` steps."""
        for _ in range(n_steps):
            self.step()

    def diagnostics(self) -> EnergyDiagnostics:
        """Globally reduced energy/momentum diagnostics."""
        if self._phi is None:
            self.prime()
        ke = self.particles.kinetic_energy()
        pe = 0.5 * float(np.sum(self.particles.mass * self._phi))
        mom = self.particles.momentum()
        ang = self.particles.angular_momentum()
        ke, pe = self.comm.allreduce(ke), self.comm.allreduce(pe)
        mom = self.comm.allreduce(mom)
        ang = self.comm.allreduce(ang)
        return EnergyDiagnostics(kinetic=ke, potential=pe, momentum=mom,
                                 angular_momentum=ang)


def run_parallel_simulation(n_ranks: int, particles: ParticleSet,
                            config: SimulationConfig | None = None,
                            n_steps: int = 1,
                            decomposition_method: str = "hierarchical",
                            timeout: float = 600.0,
                            world=None,
                            invariant_checks: bool = False,
                            trace: Tracer | None = None
                            ) -> list[ParallelSimulation]:
    """Convenience front-end: shard ``particles``, run ``n_steps`` on
    ``n_ranks`` SimMPI ranks, return the per-rank simulation objects.

    ``world`` lets callers supply a prepared :class:`~repro.simmpi.SimWorld`
    (e.g. a :class:`~repro.faults.FaultyWorld`) to run the identical
    program over an instrumented or misbehaving transport.  ``trace``
    attaches a :class:`repro.obs.Tracer` to that world so the whole run
    lands in one trace (export with
    :func:`repro.obs.write_chrome_trace`)."""
    n = particles.n

    def prog(comm: SimComm) -> ParallelSimulation:
        lo = n * comm.rank // comm.size
        hi = n * (comm.rank + 1) // comm.size
        local = particles.select(np.arange(lo, hi))
        sim = ParallelSimulation(comm, local, config,
                                 decomposition_method=decomposition_method,
                                 invariant_checks=invariant_checks,
                                 trace=trace)
        sim.evolve(n_steps)
        return sim

    return spmd_run(n_ranks, prog, timeout=timeout, world=world)


def gather_particles(sims: list[ParallelSimulation]) -> ParticleSet:
    """Reassemble the global particle set in id order from rank results."""
    full = ParticleSet.concatenate([s.particles for s in sims])
    full.reorder(np.argsort(full.ids, kind="stable"))
    return full
