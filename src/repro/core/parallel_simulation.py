"""Distributed simulation driver over SimMPI (the full Sec. III-B loop).

Each step performs exactly the paper's pipeline:

1. trailing half-kick of the previous step (KDK),
2. drift,
3. global bounding box reduction (CPUs combine local GPU boxes),
4. Peano-Hilbert keys + local sort ("Sorting SFC"),
5. hierarchical-sampling domain update + particle exchange,
6. local tree build / moments ("Tree-construction" / "Tree-properties"),
7. boundary allgather, symmetric sufficiency checks, LET exchange and
   the local + per-LET force walks ("Compute gravity"),
8. leading half-kick.

Forces are computed on the post-exchange layout, and both half-kicks of
a force evaluation run on that same layout, so the integrator remains a
well-defined KDK leap-frog even though particles migrate between ranks.

When constructed with ``trace=`` (a :class:`repro.obs.Tracer`) -- or on
a world that already carries one -- every pipeline phase is emitted as a
per-rank span using the same clock readings booked into the
:class:`StepBreakdown`, so ``python -m repro.obs.report`` reconstructs
the identical Table II numbers from the trace alone.
"""

from __future__ import annotations

import dataclasses
import math
import time

import numpy as np

from ..config import SimulationConfig
from ..gravity.flops import InteractionCounts
from ..gravity.treewalk import KernelWorkspace
from ..gravity.warmstart import WalkCache
from ..octree.incremental import TreeCache
from ..integrator import EnergyDiagnostics
from ..obs.tracer import Tracer
from ..particles import ParticleSet
from ..parallel import DomainDecomposition, distributed_forces, domain_update, exchange_particles
from ..parallel.feedback import CostModel, LB_MODES
from ..sfc import BoundingBox, SortCache
from ..simmpi import SimComm, spmd_run
from ..simmpi.transport import make_world, world_transport
from .step import StepBreakdown


@dataclasses.dataclass
class RankResult:
    """Picklable end-of-run snapshot of one rank's simulation.

    Process-transport (and mpi4py) runs return these instead of live
    :class:`ParallelSimulation` objects: the driver, with its
    communicator and caches, cannot cross a process boundary, but
    everything a caller inspects after the run can.  The attribute
    names mirror the driver's, so result-consuming code (e.g.
    :func:`gather_particles`) works on either.
    """

    rank: int
    particles: ParticleSet
    acc: np.ndarray | None
    phi: np.ndarray | None
    time: float
    step_count: int
    history: list[StepBreakdown]
    boundary_history: list[tuple[int, ...]]
    recv_wait_seconds: float


class ParallelSimulation:
    """Per-rank driver; instantiate inside an SPMD program.

    Parameters
    ----------
    comm:
        This rank's communicator.
    particles:
        This rank's initial local particles (any distribution; the first
        domain update moves everything where it belongs).
    config:
        Numerical parameters, identical on all ranks.
    decomposition_method:
        "hierarchical" (paper) or "serial" (ablation baseline).
    load_balance:
        What the domain cut balances: ``"measured"`` closes the paper's
        feedback loop (previous-step measured force cost via a
        :class:`~repro.parallel.feedback.CostModel`, EWMA-smoothed,
        re-cutting only when the imbalance trigger fires),
        ``"flops"`` (default) spreads the previous step's interaction
        flop estimate uniformly per rank and re-cuts every step, and
        ``"count"`` balances raw particle counts.
    lb_source, lb_alpha, lb_trigger_ratio:
        Measured-mode knobs, forwarded to
        :class:`~repro.parallel.feedback.CostModel` (cost source,
        EWMA weight, rebalance trigger).
    invariant_checks:
        When True (identical on all ranks -- the checks are collective),
        every redistribute asserts exchange conservation and ownership
        and every force evaluation asserts the local octree's structural
        invariants, via :mod:`repro.testing.invariants`.
    trace:
        Optional :class:`repro.obs.Tracer`; attached to the world (all
        ranks must pass the same tracer) so every phase, message and
        collective lands in one trace.  When omitted, a tracer already
        attached to the world is picked up automatically.
    health:
        Optional :class:`repro.obs.health.HeartbeatBoard`; attached to
        the world (idempotent, like ``trace``) so the SimMPI op sites
        beat through it, and the driver stamps step-level beats at the
        step boundaries.  When omitted, a board already attached to
        the world is picked up automatically.
    """

    def __init__(self, comm: SimComm, particles: ParticleSet,
                 config: SimulationConfig | None = None,
                 decomposition_method: str = "hierarchical",
                 sample_rate1: float = 0.01, sample_rate2: float = 0.05,
                 load_balance: str = "flops",
                 lb_source: str = "auto", lb_alpha: float = 0.5,
                 lb_trigger_ratio: float = 1.1,
                 invariant_checks: bool = False,
                 trace: Tracer | None = None,
                 health=None):
        self.comm = comm
        self.particles = particles
        self.config = config or SimulationConfig()
        self.method = decomposition_method
        self.rate1 = sample_rate1
        self.rate2 = sample_rate2
        if load_balance not in LB_MODES:
            raise ValueError(f"unknown load_balance {load_balance!r}; "
                             f"expected one of {LB_MODES}")
        self.load_balance = load_balance
        self.invariant_checks = invariant_checks
        if trace is not None:
            comm.world.attach_tracer(trace)
        if health is not None:
            comm.world.attach_health(health)
        # Read the board back off the world: the process transport
        # rebuilds a rank-local board from the fork-copied template.
        self._health = getattr(comm.world, "health", None)
        self._cost_model = CostModel(
            comm, source=lb_source, alpha=lb_alpha,
            trigger_ratio=lb_trigger_ratio) \
            if load_balance == "measured" else None
        self.time = 0.0
        self.step_count = 0
        self.history: list[StepBreakdown] = []
        self.decomposition: DomainDecomposition | None = None
        self._box: BoundingBox | None = None
        #: Boundary tuple after every redistribute (the sequence the
        #: determinism harness pins across runs).
        self.boundary_history: list[tuple[int, ...]] = []
        self.recv_wait_seconds = 0.0
        self._acc: np.ndarray | None = None
        self._phi: np.ndarray | None = None
        self._weights: np.ndarray | None = None
        # Fast-path state: one sort cache per sort site (pre-exchange
        # "Sorting SFC" and the in-force tree build), a persistent
        # kernel workspace, and the post-exchange keys carried from
        # redistribute to compute_forces (valid: same box).
        self._sort_cache = SortCache()
        self._tree_sort_cache = SortCache()
        self._workspace: KernelWorkspace | None = None
        self._keys: np.ndarray | None = None
        # Resolve the compute backend once per rank (fails fast when the
        # runtime is missing) and pay any JIT warm-up outside the timed
        # step phases.
        from ..gravity.backends import get_backend
        self._backend = get_backend(self.config.backend)
        self._backend.warmup(self.config.precision)
        # Step-coherence state (docs/PERFORMANCE.md): the incremental
        # octree cache and walk visit-list cache, plus a layout epoch
        # bumped whenever the local particle set changes (rebalance /
        # exchange migration) so no cross-step cache -- including the
        # sort caches' tie-breaking -- can survive a relayout.
        self._tree_cache = TreeCache() \
            if self.config.tree_reuse != "off" else None
        self._walk_cache = WalkCache() \
            if self.config.walk_warm_start else None
        self._layout_epoch = 0

    # -- observability ----------------------------------------------------

    @property
    def tracer(self) -> Tracer:
        """The world's tracer (:data:`repro.obs.NULL_TRACER` when off)."""
        return self.comm.tracer

    @property
    def acc(self) -> np.ndarray | None:
        """Accelerations of the local particles (post ``compute_forces``)."""
        return self._acc

    @property
    def phi(self) -> np.ndarray | None:
        """Potentials of the local particles (post ``compute_forces``)."""
        return self._phi

    def portable(self) -> RankResult:
        """Snapshot this rank's end state for cross-process return."""
        return RankResult(
            rank=self.comm.rank, particles=self.particles,
            acc=self._acc, phi=self._phi, time=self.time,
            step_count=self.step_count, history=list(self.history),
            boundary_history=list(self.boundary_history),
            recv_wait_seconds=self.recv_wait_seconds)

    def _now(self) -> float:
        """Phase-boundary clock: tracer clock when tracing, else wall.

        Using the tracer's clock for the breakdown keeps the trace and
        the :class:`StepBreakdown` numerically identical -- one
        measurement, two views.
        """
        tr = self.comm.tracer
        if tr.enabled:
            return tr.clock.now(self.comm.rank)
        return time.perf_counter()

    def _rec(self, name: str, t0: float, t1: float, **attrs) -> None:
        tr = self.comm.tracer
        if tr.enabled:
            tr.record(name, self.comm.rank, t0, t1, cat="phase",
                      step=self.step_count, **attrs)

    def _beat(self, phase: str | None = None) -> None:
        """Driver-level heartbeat (step boundaries; no-op without a
        board).  The comm-level phase labels keep tracking the SimMPI
        phases; a driver beat only refreshes step and timestamp unless
        it names a phase itself."""
        hb = self._health
        if hb is not None:
            hb.beat(self.comm.rank, step=self.step_count, phase=phase)

    # -- load balancing ----------------------------------------------------

    def _lb_decision(self, keys: np.ndarray,
                     flop_weights: np.ndarray | None,
                     box_changed: bool
                     ) -> tuple[np.ndarray | None, bool, float]:
        """Pick cut weights and decide whether to re-cut this step.

        Returns ``(weights, rebalance, ratio)``.  The decision is
        collective but needs no agreement protocol: every rank computes
        it from identically allgathered data.

        - ``"count"``: no weights, re-cut every step (the baseline).
        - ``"flops"``: previous-step flop-estimate weights, re-cut
          every step (the pre-feedback behaviour).
        - ``"measured"``: smoothed measured-cost weights; re-cut only
          when the imbalance trigger fires (or on cold start, falling
          back to the flop-estimate weights), otherwise keep the
          previous boundaries -- unless the global box had to be
          regrown (old boundary keys are meaningless against a new
          box) or a domain would come up empty under them.
        """
        if self.load_balance == "count":
            return None, True, math.inf
        if self._cost_model is None:
            return flop_weights, True, math.inf
        ratio = self._cost_model.imbalance()
        rebalance = (self.decomposition is None or box_changed
                     or self._cost_model.should_rebalance(ratio))
        if not rebalance:
            counts = self.comm.allreduce(self.decomposition.counts(keys))
            rebalance = bool(np.any(counts == 0))
        weights = self._cost_model.weights(len(keys))
        if weights is None:
            weights = flop_weights    # cold start: flop-estimate fallback
        return weights, rebalance, ratio

    # -- pipeline pieces --------------------------------------------------

    def _global_box(self) -> BoundingBox:
        """Reduce local bounding boxes to the shared global cube."""
        local = BoundingBox.from_positions(self.particles.pos)
        boxes = self.comm.allgather((local.origin, local.size))
        return BoundingBox.merge([BoundingBox(origin=o, size=s)
                                  for o, s in boxes], pad=1e-3)

    def _update_box(self) -> tuple[BoundingBox, bool]:
        """Global box for this step's keys; returns ``(box, changed)``.

        In measured mode the previous box is reused while it still
        contains every particle: keeping old boundary *keys* across a
        skipped re-cut is only meaningful against the box that produced
        them.  A fresh min/max box jiggles with the outermost particles,
        and near octant planes even a tiny origin shift relabels whole
        Hilbert octants -- enough to wreck a balanced cut without any
        cost change.  When a particle escapes, the box is regrown and
        the caller must re-cut.
        """
        if self._cost_model is None or self._box is None:
            return self._global_box(), True
        b = self._box
        pos = self.particles.pos
        inside = bool(np.all(pos >= b.origin) and np.all(pos < b.origin + b.size))
        if bool(self.comm.allreduce(inside, op="min")):
            return b, False
        return self._global_box(), True

    def redistribute(self, bd: StepBreakdown | None = None) -> None:
        """Domain update + particle exchange (Table II "Domain Update")."""
        t0 = self._now()
        box, box_changed = self._update_box()
        keys = box.keys(self.particles.pos, self.config.curve)
        if self.config.sort_reuse:
            order = self._sort_cache.order_for(keys,
                                               epoch=self._layout_epoch)
            sort_mode = self._sort_cache.last_mode
        else:
            order = np.argsort(keys, kind="stable")
            sort_mode = "cold"
        weights = self._weights if self._weights is not None and \
            len(self._weights) == len(order) else None
        if sort_mode != "identity":
            # identity == keys already non-decreasing: skip the reorder
            # copies entirely.
            self.particles.reorder(order)
            keys = keys[order]
            if weights is not None:
                weights = weights[order]
        t1 = self._now()
        self._rec("sorting", t0, t1, sort_mode=sort_mode)

        self.comm.set_phase("domain_update")
        weights, rebalance, ratio = self._lb_decision(keys, weights,
                                                      box_changed)
        if rebalance:
            t_rb = self._now()
            self.decomposition = domain_update(self.comm, keys, weights,
                                               method=self.method,
                                               rate1=self.rate1,
                                               rate2=self.rate2)
            if self._cost_model is not None:
                self._cost_model.record_rebalance()
                attrs = {"mode": self.load_balance}
                if math.isfinite(ratio):
                    attrs["imbalance"] = ratio
                self._rec("rebalance", t_rb, self._now(), **attrs)
        self.boundary_history.append(
            tuple(int(b) for b in self.decomposition.boundaries))
        old_ids = self.particles.ids
        self.particles, self._keys = exchange_particles(
            self.comm, self.particles, keys, self.decomposition,
            check=self.invariant_checks, return_keys=True)
        # Layout generation: any change to the local particle sequence
        # (migration in/out, or a reorder the exchange introduced)
        # invalidates every cross-step cache keyed on the old layout.
        # The epoch tag makes that invalidation explicit instead of
        # relying on downstream structural checks alone.
        if len(self.particles.ids) != len(old_ids) or \
                not np.array_equal(self.particles.ids, old_ids):
            self._layout_epoch += 1
            if self._walk_cache is not None:
                self._walk_cache.bump_epoch()
        if self.invariant_checks:
            from ..testing.invariants import check_ownership
            keys_after = box.keys(self.particles.pos, self.config.curve)
            check_ownership(self.comm, self.decomposition, keys_after)
        t2 = self._now()
        du_attrs = {}
        if self._cost_model is not None:
            du_attrs["rebalanced"] = rebalance
            if math.isfinite(ratio):
                du_attrs["lb_imbalance"] = ratio
        self._rec("domain_update", t1, t2, **du_attrs)
        self._box = box
        if bd is not None:
            bd.sorting += t1 - t0
            bd.domain_update += t2 - t1

    def compute_forces(self, bd: StepBreakdown | None = None) -> None:
        """Distributed force computation on the current layout.

        The per-sub-phase times measured inside
        :func:`distributed_forces` are mapped onto Table II rows here:
        boundary/LET *build+send* time books under "Unbalance + Other"
        (the paper hides it), the rest map one-to-one.
        """
        if self._workspace is None and self.config.scatter == "segment":
            self._workspace = self._backend.make_workspace(
                self.config.chunk, self.config.precision)
        keys, self._keys = self._keys, None
        result = distributed_forces(
            self.comm, self.particles, self.config, self._box,
            step=self.step_count, keys=keys,
            sort_cache=self._tree_sort_cache if self.config.sort_reuse
            else None,
            workspace=self._workspace,
            sort_epoch=self._layout_epoch,
            tree_cache=self._tree_cache,
            walk_cache=self._walk_cache,
            backend=self._backend)
        self._acc, self._phi = result.acc, result.phi
        self._result = result
        self.recv_wait_seconds += result.recv_wait_seconds
        if self.invariant_checks:
            from ..testing.invariants import check_octree
            check_octree(result.tree, self.particles.pos, self.particles.mass)
        # Per-particle cost estimate for the next load balance: spread the
        # local walk cost uniformly over local particles (the GPU balance
        # quantity is flops per domain, which this reproduces in aggregate).
        flops_pp = result.counts_total.flops / max(self.particles.n, 1)
        self._weights = np.full(self.particles.n, flops_pp)
        if self._cost_model is not None:
            # Fold the measurement distributed_forces just booked into
            # the metrics registry into the smoothed cost model.
            self._cost_model.observe(self.particles.n)
        if bd is not None:
            ph = result.phases
            bd.tree_construction += ph["tree_construction"]
            bd.tree_properties += ph["tree_properties"]
            bd.gravity_local += ph["gravity_local"]
            bd.gravity_let += ph["gravity_let"]
            bd.non_hidden_comm += ph["non_hidden_comm"]
            bd.other += ph["boundary_exchange"] + ph["let_exchange"]
            bd.counts.add(result.counts_total)
            bd.counts.quadrupole = self.config.quadrupole
            bd.n_particles = self.particles.n

    def prime(self, bd: StepBreakdown | None = None) -> None:
        """Initial decomposition + forces (before the first step)."""
        self._beat("prime")
        self.redistribute(bd)
        self.compute_forces(bd)

    def step(self) -> StepBreakdown:
        """Advance one KDK step; returns this rank's timing breakdown."""
        self._beat()
        bd = StepBreakdown()
        if self._acc is None:
            self.prime(bd)
        dt = self.config.dt
        half = 0.5 * dt

        t0 = self._now()
        self.particles.vel += self._acc * half
        self.particles.pos += self.particles.vel * dt
        t1 = self._now()
        self._rec("other", t0, t1)
        bd.other += t1 - t0

        self.redistribute(bd)
        self.compute_forces(bd)

        t0 = self._now()
        self.particles.vel += self._acc * half
        t1 = self._now()
        self._rec("other", t0, t1)
        bd.other += t1 - t0

        self.time += dt
        self.step_count += 1
        self.history.append(bd)
        self._beat()
        return bd

    def evolve(self, n_steps: int,
               callback=None) -> None:
        """Advance ``n_steps`` steps.

        ``callback(self)`` runs after every step on *every rank's*
        thread -- live consumers (e.g. the
        :mod:`repro.obs.dashboard`) filter on ``self.comm.rank``.
        """
        for _ in range(n_steps):
            self.step()
            if callback is not None:
                callback(self)

    def diagnostics(self) -> EnergyDiagnostics:
        """Globally reduced energy/momentum diagnostics."""
        if self._phi is None:
            self.prime()
        ke = self.particles.kinetic_energy()
        pe = 0.5 * float(np.sum(self.particles.mass * self._phi))
        mom = self.particles.momentum()
        ang = self.particles.angular_momentum()
        ke, pe = self.comm.allreduce(ke), self.comm.allreduce(pe)
        mom = self.comm.allreduce(mom)
        ang = self.comm.allreduce(ang)
        return EnergyDiagnostics(kinetic=ke, potential=pe, momentum=mom,
                                 angular_momentum=ang)


def run_parallel_simulation(n_ranks: int, particles: ParticleSet,
                            config: SimulationConfig | None = None,
                            n_steps: int = 1,
                            decomposition_method: str = "hierarchical",
                            timeout: float = 600.0,
                            world=None,
                            load_balance: str = "flops",
                            lb_source: str = "auto",
                            lb_alpha: float = 0.5,
                            lb_trigger_ratio: float = 1.1,
                            invariant_checks: bool = False,
                            trace: Tracer | None = None,
                            trace_sink=None,
                            on_step=None,
                            transport: str | None = None,
                            health=None
                            ) -> list[ParallelSimulation]:
    """Convenience front-end: shard ``particles``, run ``n_steps`` on
    ``n_ranks`` SimMPI ranks, return the per-rank results.

    ``transport`` selects the execution substrate (default: the
    config's ``transport`` field, normally ``"threads"``).  On
    ``"threads"`` each element of the returned list is the rank's live
    :class:`ParallelSimulation`; on ``"process"`` (forked ranks,
    shared-memory messaging -- see docs/TRANSPORTS.md) it is the
    equivalent picklable :class:`RankResult` snapshot.  Metrics,
    traffic and traces are merged back onto the world either way, and
    ``on_step`` runs inside the workers (so a rank-0 progress printer
    works, but it cannot mutate parent state).

    ``world`` lets callers supply a prepared world object
    (e.g. a :class:`~repro.faults.FaultyWorld` or a
    :class:`~repro.simmpi.process.ProcessWorld`) to run the identical
    program over an instrumented or misbehaving transport; it implies
    its own transport.  ``trace`` attaches a :class:`repro.obs.Tracer`
    to that world so the whole run lands in one trace (export with
    :func:`repro.obs.write_chrome_trace`).

    ``trace_sink`` accepts anything
    :func:`repro.obs.sink.coerce_sink` does -- a path streams the run
    to JSONL incrementally, an int caps tracer memory with a ring, a
    :class:`~repro.obs.sink.Sink` is used as-is.  Without ``trace=``
    the front-end builds the tracer around that sink and *owns* it:
    the sink is flushed and closed (streaming files finalised) before
    this returns.  With an explicit ``trace=`` the sink is attached to
    it and merely flushed -- the caller closes its own tracer.

    ``on_step(sim)`` runs after every step on every rank's thread (the
    dashboard hook).  ``load_balance`` / ``lb_*`` select and tune the
    domain-cut weighting (see :class:`ParallelSimulation`).

    ``health`` turns on run-health telemetry (docs/OBSERVABILITY.md
    section 13): ``True`` builds a
    :class:`~repro.obs.health.HeartbeatBoard`, or pass a prepared board,
    or a :class:`~repro.obs.health.FlightRecorder` -- the recorder's
    ring is attached as a trace sink and a post-mortem bundle is dumped
    automatically when the run dies (typed rank failure, recv timeout,
    or any run-level error)."""
    from ..obs.health import FlightRecorder, HeartbeatBoard
    from ..simmpi.errors import RankFailedError, RecvTimeoutError

    n = particles.n
    owns_tracer = False
    recorder = None
    board = None
    if isinstance(health, FlightRecorder):
        recorder = health
        board = recorder.board or HeartbeatBoard(n_ranks)
    elif isinstance(health, HeartbeatBoard):
        board = health
    elif health:
        board = HeartbeatBoard(n_ranks)
    if recorder is not None:
        # The flight ring records the run: hang it off the caller's
        # tracer, or own a fresh one around it.
        if trace is None:
            trace = Tracer(sink=recorder.ring)
            owns_tracer = True
        elif recorder.ring not in trace.sinks:
            trace.add_sink(recorder.ring)
    if trace_sink is not None:
        from ..obs.sink import coerce_sink
        sink = coerce_sink(trace_sink)
        if trace is None:
            trace = Tracer(sink=sink)
            owns_tracer = True
        else:
            trace.add_sink(sink)

    grace = config.watchdog_grace if config is not None else None
    if world is None:
        chosen = transport or (config.transport if config is not None
                               else None) or "threads"
        # Health telemetry needs the world object up front (to attach
        # the board and give the recorder something to dump), so build
        # it eagerly even on the threaded transport.
        if chosen != "threads" or board is not None:
            world = make_world(n_ranks, transport=chosen, timeout=timeout,
                               watchdog_grace=grace)
    elif transport is not None and world_transport(world) != transport:
        raise ValueError(
            f"world is a {world_transport(world)!r} transport but "
            f"transport={transport!r} was requested")
    if world is not None and trace is not None:
        # Parent-side attach: on the threaded world this is the same
        # (idempotent) attach the per-rank drivers perform; on a
        # process world it registers where the merged per-rank events
        # land after the run.
        world.attach_tracer(trace)
    if world is not None and board is not None:
        world.attach_health(board)
    if recorder is not None:
        recorder.bind(world=world, board=board, config=config)

    def prog(comm: SimComm) -> ParallelSimulation:
        lo = n * comm.rank // comm.size
        hi = n * (comm.rank + 1) // comm.size
        local = particles.select(np.arange(lo, hi))
        sim = ParallelSimulation(comm, local, config,
                                 decomposition_method=decomposition_method,
                                 load_balance=load_balance,
                                 lb_source=lb_source, lb_alpha=lb_alpha,
                                 lb_trigger_ratio=lb_trigger_ratio,
                                 invariant_checks=invariant_checks,
                                 trace=trace, health=board)
        sim.evolve(n_steps, callback=on_step)
        if getattr(comm.world, "portable_results", False):
            return sim.portable()
        return sim

    try:
        try:
            return spmd_run(n_ranks, prog, timeout=timeout, world=world)
        except (RankFailedError, RecvTimeoutError, TimeoutError,
                RuntimeError) as exc:
            # Run died: freeze the evidence before re-raising.  (Stall
            # verdicts surface as RankFailedError/RecvTimeoutError from
            # the recv path, or BrokenBarrierError -> RuntimeError from
            # collectives; either way the bundle captures the wait-for
            # state.)
            if recorder is not None:
                if isinstance(exc, RankFailedError):
                    reason = "rank-failed"
                elif isinstance(exc, TimeoutError):
                    reason = "timeout"
                else:
                    reason = "error"
                recorder.dump(reason, error=exc)
            raise
    finally:
        if owns_tracer:
            trace.close()
        elif trace is not None and trace_sink is not None:
            trace.flush()


def gather_particles(sims: list[ParallelSimulation] | list[RankResult]
                     ) -> ParticleSet:
    """Reassemble the global particle set in id order from rank results."""
    full = ParticleSet.concatenate([s.particles for s in sims])
    full.reorder(np.argsort(full.ids, kind="stable"))
    return full
