"""Distributed simulation driver over SimMPI (the full Sec. III-B loop).

Each step performs exactly the paper's pipeline:

1. trailing half-kick of the previous step (KDK),
2. drift,
3. global bounding box reduction (CPUs combine local GPU boxes),
4. Peano-Hilbert keys + local sort ("Sorting SFC"),
5. hierarchical-sampling domain update + particle exchange,
6. local tree build / moments ("Tree-construction" / "Tree-properties"),
7. boundary allgather, symmetric sufficiency checks, LET exchange and
   the local + per-LET force walks ("Compute gravity"),
8. leading half-kick.

Forces are computed on the post-exchange layout, and both half-kicks of
a force evaluation run on that same layout, so the integrator remains a
well-defined KDK leap-frog even though particles migrate between ranks.
"""

from __future__ import annotations

import time

import numpy as np

from ..config import SimulationConfig
from ..gravity.flops import InteractionCounts
from ..integrator import EnergyDiagnostics
from ..particles import ParticleSet
from ..parallel import DomainDecomposition, distributed_forces, domain_update, exchange_particles
from ..sfc import BoundingBox
from ..simmpi import SimComm, spmd_run
from .step import StepBreakdown


class ParallelSimulation:
    """Per-rank driver; instantiate inside an SPMD program.

    Parameters
    ----------
    comm:
        This rank's communicator.
    particles:
        This rank's initial local particles (any distribution; the first
        domain update moves everything where it belongs).
    config:
        Numerical parameters, identical on all ranks.
    decomposition_method:
        "hierarchical" (paper) or "serial" (ablation baseline).
    invariant_checks:
        When True (identical on all ranks -- the checks are collective),
        every redistribute asserts exchange conservation and ownership
        and every force evaluation asserts the local octree's structural
        invariants, via :mod:`repro.testing.invariants`.
    """

    def __init__(self, comm: SimComm, particles: ParticleSet,
                 config: SimulationConfig | None = None,
                 decomposition_method: str = "hierarchical",
                 sample_rate1: float = 0.01, sample_rate2: float = 0.05,
                 invariant_checks: bool = False):
        self.comm = comm
        self.particles = particles
        self.config = config or SimulationConfig()
        self.method = decomposition_method
        self.rate1 = sample_rate1
        self.rate2 = sample_rate2
        self.invariant_checks = invariant_checks
        self.time = 0.0
        self.step_count = 0
        self.history: list[StepBreakdown] = []
        self.decomposition: DomainDecomposition | None = None
        self._acc: np.ndarray | None = None
        self._phi: np.ndarray | None = None
        self._weights: np.ndarray | None = None

    # -- pipeline pieces --------------------------------------------------

    def _global_box(self) -> BoundingBox:
        """Reduce local bounding boxes to the shared global cube."""
        local = BoundingBox.from_positions(self.particles.pos)
        boxes = self.comm.allgather((local.origin, local.size))
        return BoundingBox.merge([BoundingBox(origin=o, size=s)
                                  for o, s in boxes], pad=1e-3)

    def redistribute(self, bd: StepBreakdown | None = None) -> None:
        """Domain update + particle exchange (Table II "Domain Update")."""
        t0 = time.perf_counter()
        box = self._global_box()
        keys = box.keys(self.particles.pos, self.config.curve)
        order = np.argsort(keys, kind="stable")
        self.particles.reorder(order)
        keys = keys[order]
        weights = self._weights[order] if self._weights is not None and \
            len(self._weights) == len(order) else None
        t1 = time.perf_counter()

        self.comm.set_phase("domain_update")
        self.decomposition = domain_update(self.comm, keys, weights,
                                           method=self.method,
                                           rate1=self.rate1, rate2=self.rate2)
        self.particles = exchange_particles(self.comm, self.particles, keys,
                                            self.decomposition,
                                            check=self.invariant_checks)
        if self.invariant_checks:
            from ..testing.invariants import check_ownership
            keys_after = box.keys(self.particles.pos, self.config.curve)
            check_ownership(self.comm, self.decomposition, keys_after)
        t2 = time.perf_counter()
        self._box = box
        if bd is not None:
            bd.sorting += t1 - t0
            bd.domain_update += t2 - t1

    def compute_forces(self, bd: StepBreakdown | None = None) -> None:
        """Distributed force computation on the current layout."""
        t0 = time.perf_counter()
        result = distributed_forces(self.comm, self.particles, self.config,
                                    self._box)
        t1 = time.perf_counter()
        self._acc, self._phi = result.acc, result.phi
        self._result = result
        if self.invariant_checks:
            from ..testing.invariants import check_octree
            check_octree(result.tree, self.particles.pos, self.particles.mass)
        # Per-particle cost estimate for the next load balance: spread the
        # local walk cost uniformly over local particles (the GPU balance
        # quantity is flops per domain, which this reproduces in aggregate).
        flops_pp = result.counts_total.flops / max(self.particles.n, 1)
        self._weights = np.full(self.particles.n, flops_pp)
        if bd is not None:
            bd.gravity_local += t1 - t0
            bd.counts.add(result.counts_total)
            bd.counts.quadrupole = self.config.quadrupole
            bd.n_particles = self.particles.n

    def prime(self, bd: StepBreakdown | None = None) -> None:
        """Initial decomposition + forces (before the first step)."""
        self.redistribute(bd)
        self.compute_forces(bd)

    def step(self) -> StepBreakdown:
        """Advance one KDK step; returns this rank's timing breakdown."""
        bd = StepBreakdown()
        if self._acc is None:
            self.prime(bd)
        dt = self.config.dt
        half = 0.5 * dt

        t0 = time.perf_counter()
        self.particles.vel += self._acc * half
        self.particles.pos += self.particles.vel * dt
        bd.other += time.perf_counter() - t0

        self.redistribute(bd)
        self.compute_forces(bd)

        t0 = time.perf_counter()
        self.particles.vel += self._acc * half
        bd.other += time.perf_counter() - t0

        self.time += dt
        self.step_count += 1
        self.history.append(bd)
        return bd

    def evolve(self, n_steps: int) -> None:
        """Advance ``n_steps`` steps."""
        for _ in range(n_steps):
            self.step()

    def diagnostics(self) -> EnergyDiagnostics:
        """Globally reduced energy/momentum diagnostics."""
        if self._phi is None:
            self.prime()
        ke = self.particles.kinetic_energy()
        pe = 0.5 * float(np.sum(self.particles.mass * self._phi))
        mom = self.particles.momentum()
        ang = self.particles.angular_momentum()
        ke, pe = self.comm.allreduce(ke), self.comm.allreduce(pe)
        mom = self.comm.allreduce(mom)
        ang = self.comm.allreduce(ang)
        return EnergyDiagnostics(kinetic=ke, potential=pe, momentum=mom,
                                 angular_momentum=ang)


def run_parallel_simulation(n_ranks: int, particles: ParticleSet,
                            config: SimulationConfig | None = None,
                            n_steps: int = 1,
                            decomposition_method: str = "hierarchical",
                            timeout: float = 600.0,
                            world=None,
                            invariant_checks: bool = False
                            ) -> list[ParallelSimulation]:
    """Convenience front-end: shard ``particles``, run ``n_steps`` on
    ``n_ranks`` SimMPI ranks, return the per-rank simulation objects.

    ``world`` lets callers supply a prepared :class:`~repro.simmpi.SimWorld`
    (e.g. a :class:`~repro.faults.FaultyWorld`) to run the identical
    program over an instrumented or misbehaving transport."""
    n = particles.n

    def prog(comm: SimComm) -> ParallelSimulation:
        lo = n * comm.rank // comm.size
        hi = n * (comm.rank + 1) // comm.size
        local = particles.select(np.arange(lo, hi))
        sim = ParallelSimulation(comm, local, config,
                                 decomposition_method=decomposition_method,
                                 invariant_checks=invariant_checks)
        sim.evolve(n_steps)
        return sim

    return spmd_run(n_ranks, prog, timeout=timeout, world=world)


def gather_particles(sims: list[ParallelSimulation]) -> ParticleSet:
    """Reassemble the global particle set in id order from rank results."""
    full = ParticleSet.concatenate([s.particles for s in sims])
    full.reorder(np.argsort(full.ids, kind="stable"))
    return full
