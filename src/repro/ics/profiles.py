"""Analytic density profiles of the Milky Way model components (Sec. IV).

All quantities are in internal units (G = 1).  Each spherical profile
exposes ``density``, ``enclosed_mass``, ``potential`` and the cumulative
mass fraction used for inverse-CDF sampling; the exponential disk is
axisymmetric and exposes surface density and its circular-velocity
contribution instead.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy import special


@dataclasses.dataclass(frozen=True)
class NFWProfile:
    """Truncated Navarro-Frenk-White halo [49].

    rho(r) = rho0 / ((r/rs) (1 + r/rs)^2), truncated at ``r_cut``;
    ``mass`` is the total mass inside ``r_cut``.
    """

    mass: float
    scale_radius: float
    r_cut: float

    @property
    def _mu_cut(self) -> float:
        """NFW mass integral mu(x) = ln(1+x) - x/(1+x) at the cutoff."""
        x = self.r_cut / self.scale_radius
        return float(np.log1p(x) - x / (1.0 + x))

    @property
    def rho0(self) -> float:
        """Central density normalisation."""
        return self.mass / (4.0 * np.pi * self.scale_radius ** 3 * self._mu_cut)

    def density(self, r: np.ndarray) -> np.ndarray:
        """Volume density rho(r); zero beyond the cutoff."""
        r = np.asarray(r, dtype=np.float64)
        x = np.maximum(r, 1e-12) / self.scale_radius
        rho = self.rho0 / (x * (1.0 + x) ** 2)
        return np.where(r <= self.r_cut, rho, 0.0)

    def enclosed_mass(self, r: np.ndarray) -> np.ndarray:
        """M(<r); constant beyond the cutoff."""
        r = np.asarray(r, dtype=np.float64)
        x = np.minimum(r, self.r_cut) / self.scale_radius
        mu = np.log1p(x) - x / (1.0 + x)
        return self.mass * mu / self._mu_cut

    def potential(self, r: np.ndarray) -> np.ndarray:
        """Potential of the untruncated NFW shape (adequate for r << r_cut)."""
        r = np.asarray(r, dtype=np.float64)
        x = np.maximum(r, 1e-12) / self.scale_radius
        m0 = self.mass / self._mu_cut
        return -m0 / self.scale_radius * np.log1p(x) / x

    def mass_fraction(self, r: np.ndarray) -> np.ndarray:
        """M(<r) / M_total, for inverse-CDF sampling."""
        return self.enclosed_mass(r) / self.mass


@dataclasses.dataclass(frozen=True)
class HernquistProfile:
    """Hernquist (1990) bulge [50]: rho = M a / (2 pi r (r+a)^3)."""

    mass: float
    scale_radius: float
    r_cut: float = np.inf

    @property
    def _frac_cut(self) -> float:
        """Mass fraction inside the cutoff."""
        if not np.isfinite(self.r_cut):
            return 1.0
        return float(self.r_cut ** 2 / (self.r_cut + self.scale_radius) ** 2)

    def density(self, r: np.ndarray) -> np.ndarray:
        """Volume density rho(r); zero beyond the cutoff."""
        r = np.asarray(r, dtype=np.float64)
        rr = np.maximum(r, 1e-12)
        a = self.scale_radius
        rho = self.mass * a / (2.0 * np.pi * rr * (rr + a) ** 3)
        return np.where(r <= self.r_cut, rho, 0.0)

    def enclosed_mass(self, r: np.ndarray) -> np.ndarray:
        """M(<r) of the untruncated profile, capped at the cutoff."""
        r = np.asarray(r, dtype=np.float64)
        rr = np.minimum(r, self.r_cut)
        return self.mass * rr ** 2 / (rr + self.scale_radius) ** 2

    def potential(self, r: np.ndarray) -> np.ndarray:
        """phi(r) = -M / (r + a)."""
        r = np.asarray(r, dtype=np.float64)
        return -self.mass / (r + self.scale_radius)

    def mass_fraction(self, r: np.ndarray) -> np.ndarray:
        """Mass fraction of the truncated profile (normalised to 1 at cutoff)."""
        return self.enclosed_mass(r) / (self.mass * self._frac_cut)


@dataclasses.dataclass(frozen=True)
class PlummerProfile:
    """Plummer sphere, the standard test model for collisionless codes."""

    mass: float
    scale_radius: float

    def density(self, r: np.ndarray) -> np.ndarray:
        """rho(r) = 3M/(4 pi a^3) (1 + r^2/a^2)^(-5/2)."""
        r = np.asarray(r, dtype=np.float64)
        a = self.scale_radius
        return 3.0 * self.mass / (4.0 * np.pi * a ** 3) * (1.0 + (r / a) ** 2) ** -2.5

    def enclosed_mass(self, r: np.ndarray) -> np.ndarray:
        """M(<r) = M r^3 / (r^2 + a^2)^(3/2)."""
        r = np.asarray(r, dtype=np.float64)
        return self.mass * r ** 3 / (r ** 2 + self.scale_radius ** 2) ** 1.5

    def potential(self, r: np.ndarray) -> np.ndarray:
        """phi(r) = -M / sqrt(r^2 + a^2)."""
        r = np.asarray(r, dtype=np.float64)
        return -self.mass / np.sqrt(r ** 2 + self.scale_radius ** 2)

    def mass_fraction(self, r: np.ndarray) -> np.ndarray:
        """M(<r)/M."""
        return self.enclosed_mass(r) / self.mass


@dataclasses.dataclass(frozen=True)
class ExponentialDisk:
    """Exponential stellar disk with an exponential vertical profile.

    Sigma(R) = M / (2 pi Rd^2) exp(-R / Rd)
    rho(R, z) = Sigma(R) / (2 zd) exp(-|z| / zd)
    """

    mass: float
    scale_length: float
    scale_height: float
    r_cut: float = np.inf

    def surface_density(self, R: np.ndarray) -> np.ndarray:
        """Sigma(R); zero beyond the cutoff."""
        R = np.asarray(R, dtype=np.float64)
        sigma = self.mass / (2.0 * np.pi * self.scale_length ** 2) * np.exp(-R / self.scale_length)
        return np.where(R <= self.r_cut, sigma, 0.0)

    def enclosed_mass(self, R: np.ndarray) -> np.ndarray:
        """Mass inside cylindrical radius R (untruncated shape, capped)."""
        R = np.asarray(R, dtype=np.float64)
        x = np.minimum(R, self.r_cut) / self.scale_length
        return self.mass * (1.0 - (1.0 + x) * np.exp(-x))

    def mass_fraction(self, R: np.ndarray) -> np.ndarray:
        """Cylindrical mass fraction of the truncated disk."""
        if np.isfinite(self.r_cut):
            norm = float(self.enclosed_mass(np.array(self.r_cut)))
        else:
            norm = self.mass
        return self.enclosed_mass(R) / norm

    def circular_velocity_squared(self, R: np.ndarray) -> np.ndarray:
        """v_c^2 of the razor-thin exponential disk (Freeman 1970).

        v_c^2(R) = 4 pi Sigma0 Rd y^2 [I0(y)K0(y) - I1(y)K1(y)],
        y = R / (2 Rd).  Uses exponentially scaled Bessel functions so the
        expression stays finite at large radii.
        """
        R = np.asarray(R, dtype=np.float64)
        y = np.maximum(R, 1e-12) / (2.0 * self.scale_length)
        sigma0 = self.mass / (2.0 * np.pi * self.scale_length ** 2)
        # ive(n, y) = iv(n, y) exp(-y); kve(n, y) = kv(n, y) exp(y):
        # their product is exactly iv * kv without overflow.
        bessel = (special.ive(0, y) * special.kve(0, y)
                  - special.ive(1, y) * special.kve(1, y))
        return 4.0 * np.pi * sigma0 * self.scale_length * y ** 2 * bessel

    def sample_height(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw vertical offsets from the exponential profile."""
        z = rng.exponential(self.scale_height, n)
        sign = rng.choice((-1.0, 1.0), n)
        return z * sign
