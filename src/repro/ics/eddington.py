"""Eddington inversion: exact isotropic distribution functions.

The Jeans-equation sampler (:mod:`repro.ics.velocities`) assigns
Gaussian velocities with the correct second moment, which leaves a
slight out-of-equilibrium transient.  GalacticICS-class generators
instead sample the *exact* isotropic distribution function obtained by
Eddington's inversion,

    f(E) = 1 / (sqrt(8) pi^2) *
           [ int_0^E d^2rho/dpsi^2 dpsi / sqrt(E - psi)
             + (drho/dpsi)|_{psi=0} / sqrt(E) ],

where psi = -phi is the relative potential and E = psi - v^2/2 the
relative energy.  This module tabulates f(E) for a spherical density
embedded in an arbitrary total potential and samples particle speeds
from p(v) ~ v^2 f(psi(r) - v^2/2).
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from .sampling import isotropic_directions


@dataclasses.dataclass(frozen=True)
class EddingtonModel:
    """Tabulated distribution function of one spherical component.

    Attributes
    ----------
    r_grid, psi_grid:
        Radius grid and the relative potential psi(r) on it (decreasing).
    e_grid, f_grid:
        Relative-energy grid and f(E) >= 0 on it.
    """

    r_grid: np.ndarray
    psi_grid: np.ndarray
    e_grid: np.ndarray
    f_grid: np.ndarray

    def psi_of_r(self, r: np.ndarray) -> np.ndarray:
        """Interpolated relative potential (positive, decreasing)."""
        r = np.asarray(r, dtype=np.float64)
        # psi decreases with r: interp on the increasing-r grid.
        return np.interp(r, self.r_grid, self.psi_grid,
                         left=self.psi_grid[0], right=0.0)

    def f_of_e(self, e: np.ndarray) -> np.ndarray:
        """Interpolated distribution function (0 for unbound E <= 0)."""
        e = np.asarray(e, dtype=np.float64)
        out = np.interp(e, self.e_grid, self.f_grid, left=0.0,
                        right=self.f_grid[-1])
        return np.where(e > 0.0, out, 0.0)


def relative_potential_from_mass(enclosed_mass_total: Callable[[np.ndarray], np.ndarray],
                                 r_grid: np.ndarray) -> np.ndarray:
    """psi(r) = int_r^inf M(<s)/s^2 ds on a grid (G = 1).

    The integral is evaluated by trapezoid on the grid plus the analytic
    Keplerian tail M_max/r beyond the last grid point.
    """
    m = np.asarray(enclosed_mass_total(r_grid), dtype=np.float64)
    integrand = m / r_grid ** 2
    dr = np.diff(r_grid)
    seg = 0.5 * (integrand[1:] + integrand[:-1]) * dr
    inner = np.concatenate([np.cumsum(seg[::-1])[::-1], [0.0]])
    tail = m[-1] / r_grid[-1]
    return inner + tail


def build_eddington_model(density: Callable[[np.ndarray], np.ndarray],
                          enclosed_mass_total: Callable[[np.ndarray], np.ndarray],
                          r_min: float, r_max: float,
                          n_r: int = 512, n_e: int = 256,
                          n_quad: int = 200) -> EddingtonModel:
    """Tabulate f(E) for a component of density ``density`` living in the
    total potential implied by ``enclosed_mass_total``.

    Parameters
    ----------
    r_min, r_max:
        Radial range of the tabulation; ``r_max`` should be the model's
        truncation radius.
    n_r, n_e, n_quad:
        Grid resolutions (radius, energy, inversion quadrature).

    Notes
    -----
    f is clipped at zero: composite models (e.g. a shallow-cusp density
    in a steep total potential) can produce slightly negative numerical
    f near the edges, which clipping handles at negligible mass error.
    """
    r = np.geomspace(r_min, r_max, n_r)
    psi = relative_potential_from_mass(enclosed_mass_total, r)
    # King-style lowering: measure energies relative to the potential at
    # the truncation radius so speeds vanish at r_max.  Without this a
    # hard-truncated profile (the halo's r_cut) is over-heated near the
    # edge and the realization is out of equilibrium.
    psi = psi - psi[-1]
    rho = np.maximum(np.asarray(density(r), dtype=np.float64), 0.0)

    # Reparametrise rho(psi) on an ascending-psi grid.
    psi_asc = psi[::-1]
    rho_asc = rho[::-1]

    # Derivatives d rho / d psi and d^2 rho / d psi^2.
    drho = np.gradient(rho_asc, psi_asc)
    d2rho = np.gradient(drho, psi_asc)

    def d2rho_at(p: np.ndarray) -> np.ndarray:
        return np.interp(p, psi_asc, d2rho)

    # Energy grid spans the bound range; substitute psi = E - t^2 to
    # remove the sqrt singularity: integral = 2 int_0^sqrt(E) rho''(E-t^2) dt.
    e_grid = np.geomspace(psi_asc[1] * 1e-3, psi_asc[-1], n_e)
    u = np.linspace(0.0, 1.0, n_quad)  # t = u * sqrt(E)
    f_grid = np.empty(n_e)
    drho0 = drho[0]  # d rho / d psi at the outer boundary (psi -> 0)
    for j, e in enumerate(e_grid):
        t = u * np.sqrt(e)
        vals = d2rho_at(e - t ** 2)
        integral = 2.0 * np.trapezoid(vals, t)
        f_grid[j] = integral + drho0 / np.sqrt(e)
    f_grid *= 1.0 / (np.sqrt(8.0) * np.pi ** 2)
    f_grid = np.maximum(f_grid, 0.0)

    return EddingtonModel(r_grid=r, psi_grid=psi, e_grid=e_grid,
                          f_grid=f_grid)


def sample_speeds(model: EddingtonModel, r: np.ndarray,
                  rng: np.random.Generator, n_v: int = 128) -> np.ndarray:
    """Draw isotropic speeds at radii ``r`` from p(v) ~ v^2 f(psi - v^2/2).

    Vectorised: a (n_particles, n_v) CDF table is built over each
    particle's own [0, v_esc] range and inverted with searchsorted.
    """
    r = np.asarray(r, dtype=np.float64)
    psi_r = model.psi_of_r(r)
    v_max = np.sqrt(2.0 * np.maximum(psi_r, 0.0))
    frac = np.linspace(0.0, 1.0, n_v)
    v = v_max[:, None] * frac[None, :]
    e = psi_r[:, None] - 0.5 * v ** 2
    p = v ** 2 * model.f_of_e(e)
    cdf = np.cumsum(0.5 * (p[:, 1:] + p[:, :-1]), axis=1)
    total = cdf[:, -1:]
    # Degenerate rows (f ~ 0 everywhere, e.g. r beyond the model): v = 0.
    safe = total[:, 0] > 0.0
    cdf = np.where(total > 0.0, cdf / np.maximum(total, 1e-300), 0.0)
    u_draw = rng.uniform(0.0, 1.0, len(r))
    # Row-wise searchsorted, vectorised as a comparison count.
    idx = (cdf < u_draw[:, None]).sum(axis=1)
    idx = np.minimum(idx, n_v - 2)
    speeds = v[np.arange(len(r)), idx + 1]
    return np.where(safe, speeds, 0.0)


def sample_eddington_velocities(pos: np.ndarray,
                                density: Callable[[np.ndarray], np.ndarray],
                                enclosed_mass_total: Callable[[np.ndarray], np.ndarray],
                                r_max: float,
                                rng: np.random.Generator,
                                r_min_frac: float = 1e-4) -> np.ndarray:
    """Isotropic equilibrium velocities for a spherical component.

    Drop-in alternative to
    :func:`repro.ics.velocities.sample_isotropic_velocities` with an
    exact (rather than Gaussian) speed distribution.
    """
    r = np.linalg.norm(pos, axis=1)
    model = build_eddington_model(density, enclosed_mass_total,
                                  r_min=max(r_max * r_min_frac, 1e-6),
                                  r_max=r_max)
    speeds = sample_speeds(model, r, rng)
    return speeds[:, None] * isotropic_directions(rng, len(r))
