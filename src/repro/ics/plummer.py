"""Plummer-sphere initial conditions (test model)."""

from __future__ import annotations

import numpy as np

from ..particles import ParticleSet
from .profiles import PlummerProfile
from .sampling import spherical_positions
from .velocities import sample_isotropic_velocities


def plummer_model(n: int, mass: float = 1.0, scale_radius: float = 1.0,
                  r_max_factor: float = 20.0, seed: int = 0) -> ParticleSet:
    """Equal-mass Plummer sphere in approximate virial equilibrium.

    Velocities come from the isotropic Jeans equation in the model's own
    potential, which produces a close-to-equilibrium (though not exact
    distribution-function) realisation -- sufficient for integrator and
    stability testing.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    profile = PlummerProfile(mass=mass, scale_radius=scale_radius)
    rng = np.random.default_rng(seed)
    r_max = r_max_factor * scale_radius
    pos = spherical_positions(profile.mass_fraction, r_max, rng, n)
    vel = sample_isotropic_velocities(pos, profile.density,
                                      profile.enclosed_mass, r_max, rng)
    m = np.full(n, mass / n)
    ps = ParticleSet(pos=pos, vel=vel, mass=m)
    # Remove net drift so conservation tests start from zero momentum.
    ps.vel -= ps.center_of_mass_velocity()
    ps.pos -= ps.center_of_mass()
    return ps
