"""The paper's Milky Way model (Sec. IV): NFW halo + exponential disk +
Hernquist bulge, realized with equal-mass particles.

Component masses follow the paper exactly: 6.0e11 Msun halo, 5.0e10 Msun
disk, 4.6e9 Msun bulge; particles are split across components in
proportion to mass so every particle carries the same mass ("We adopt
equal masses for each of the particles for all three components in order
to avoid numerical heating").

Generation is deterministic in ``seed`` and shardable: rank *r* of *R*
produces exactly its slice of the global particle sequence, which is how
the paper sidesteps start-up I/O by generating models on the fly.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..constants import MILKY_WAY_PAPER, MilkyWayParameters
from ..particles import (
    COMPONENT_BULGE,
    COMPONENT_DISK,
    COMPONENT_HALO,
    ParticleSet,
)
from .eddington import sample_eddington_velocities
from .profiles import ExponentialDisk, HernquistProfile, NFWProfile
from .sampling import isotropic_directions, sample_radii
from .velocities import disk_velocities, sample_isotropic_velocities


@dataclasses.dataclass(frozen=True)
class MilkyWayModel:
    """Analytic description of the composite model and helpers."""

    params: MilkyWayParameters

    @property
    def halo(self) -> NFWProfile:
        """The NFW dark-matter halo."""
        p = self.params
        return NFWProfile(mass=p.halo_mass, scale_radius=p.halo_scale_radius,
                          r_cut=p.halo_cutoff_radius)

    @property
    def bulge(self) -> HernquistProfile:
        """The Hernquist stellar bulge."""
        p = self.params
        return HernquistProfile(mass=p.bulge_mass,
                                scale_radius=p.bulge_scale_radius,
                                r_cut=p.bulge_cutoff_radius)

    @property
    def disk(self) -> ExponentialDisk:
        """The exponential stellar disk."""
        p = self.params
        return ExponentialDisk(mass=p.disk_mass,
                               scale_length=p.disk_scale_length,
                               scale_height=p.disk_scale_height,
                               r_cut=p.disk_cutoff_radius)

    def enclosed_mass_total(self, r: np.ndarray) -> np.ndarray:
        """Spherically averaged total M(<r) of all three components."""
        r = np.asarray(r, dtype=np.float64)
        return (self.halo.enclosed_mass(r) + self.bulge.enclosed_mass(r)
                + self.disk.enclosed_mass(r))

    def circular_velocity_squared(self, R: np.ndarray) -> np.ndarray:
        """Total in-plane v_c^2: spherical components + thin-disk term."""
        R = np.asarray(R, dtype=np.float64)
        spherical = (self.halo.enclosed_mass(R)
                     + self.bulge.enclosed_mass(R)) / np.maximum(R, 1e-9)
        return spherical + self.disk.circular_velocity_squared(R)

    def circular_velocity(self, R: np.ndarray) -> np.ndarray:
        """Total rotation curve v_c(R)."""
        return np.sqrt(np.maximum(self.circular_velocity_squared(R), 0.0))

    def particle_split(self, n_total: int) -> tuple[int, int, int]:
        """Equal-mass particle counts (bulge, disk, halo) summing to n_total."""
        fb, fd, fh = self.params.particle_fractions()
        nb = int(round(n_total * fb))
        nd = int(round(n_total * fd))
        nh = n_total - nb - nd
        return nb, nd, nh


def _component_seed(seed: int, component: int) -> np.random.Generator:
    """Independent, deterministic stream per (seed, component)."""
    return np.random.default_rng(np.random.SeedSequence(entropy=seed,
                                                        spawn_key=(component,)))


def milky_way_model(n_total: int,
                    params: MilkyWayParameters = MILKY_WAY_PAPER,
                    seed: int = 0,
                    rank: int = 0,
                    n_ranks: int = 1,
                    velocity_method: str = "jeans",
                    halo_mass_factor: float = 1.0) -> ParticleSet:
    """Realize the Milky Way model with ``n_total`` equal-mass particles.

    Parameters
    ----------
    n_total:
        Global particle count (over all ranks).
    rank, n_ranks:
        When sharded, each rank draws the full per-component streams but
        keeps only its contiguous slice, so the union over ranks is
        identical to a single-rank generation with the same seed.
    velocity_method:
        ``"jeans"`` (Gaussian with the Jeans dispersion; fast) or
        ``"eddington"`` (exact isotropic distribution function for the
        spherical components; closer to GalacticICS).
    halo_mass_factor:
        1.0 (paper) realizes the halo with the same particle mass as the
        disk and bulge.  Values > 1 use ``halo_mass_factor`` x heavier
        (and proportionally fewer) halo particles -- the cheaper but
        noisier choice whose numerical disk heating the paper's
        equal-mass policy avoids; kept for the heating ablation.

    Returns
    -------
    ParticleSet with component tags, centered on the system's center of
    mass with zero net momentum.
    """
    if n_total < 3:
        raise ValueError("need at least 3 particles (one per component)")
    if not (0 <= rank < n_ranks):
        raise ValueError("invalid rank/n_ranks")
    if velocity_method not in ("jeans", "eddington"):
        raise ValueError(f"unknown velocity_method {velocity_method!r}")
    if halo_mass_factor < 1.0:
        raise ValueError("halo_mass_factor must be >= 1")

    def spherical_velocities(pos, density):
        if velocity_method == "eddington":
            return sample_eddington_velocities(
                pos, density, model.enclosed_mass_total,
                params.halo_cutoff_radius, rng)
        return sample_isotropic_velocities(
            pos, density, model.enclosed_mass_total,
            params.halo_cutoff_radius, rng)
    model = MilkyWayModel(params)
    nb, nd, nh = model.particle_split(n_total)
    m_particle = params.total_mass / n_total

    sets = []

    # --- bulge ------------------------------------------------------------
    rng = _component_seed(seed, COMPONENT_BULGE)
    bulge = model.bulge
    r = sample_radii(bulge.mass_fraction, bulge.r_cut, rng, nb)
    pos = r[:, None] * isotropic_directions(rng, nb)
    vel = spherical_velocities(pos, bulge.density)
    sets.append(ParticleSet(pos=pos, vel=vel, mass=np.full(nb, m_particle),
                            component=np.full(nb, COMPONENT_BULGE, np.int8)))

    # --- disk -------------------------------------------------------------
    rng = _component_seed(seed, COMPONENT_DISK)
    disk = model.disk
    R = sample_radii(disk.mass_fraction, disk.r_cut, rng, nd)
    phi = rng.uniform(0.0, 2.0 * np.pi, nd)
    z = disk.sample_height(rng, nd)
    pos = np.stack([R * np.cos(phi), R * np.sin(phi), z], axis=1)
    vel = disk_velocities(R, phi, model.circular_velocity_squared,
                          disk.surface_density, disk.scale_length,
                          disk.scale_height, params.disk_toomre_q,
                          q_ref_radius=2.5 * disk.scale_length, rng=rng)
    sets.append(ParticleSet(pos=pos, vel=vel, mass=np.full(nd, m_particle),
                            component=np.full(nd, COMPONENT_DISK, np.int8)))

    # --- halo -------------------------------------------------------------
    rng = _component_seed(seed, COMPONENT_HALO)
    halo = model.halo
    if halo_mass_factor > 1.0:
        nh = max(int(round(nh / halo_mass_factor)), 1)
        m_halo = params.halo_mass / nh
    else:
        m_halo = m_particle
    r = sample_radii(halo.mass_fraction, halo.r_cut, rng, nh)
    pos = r[:, None] * isotropic_directions(rng, nh)
    vel = spherical_velocities(pos, halo.density)
    sets.append(ParticleSet(pos=pos, vel=vel, mass=np.full(nh, m_halo),
                            component=np.full(nh, COMPONENT_HALO, np.int8)))

    full = ParticleSet.concatenate(sets)
    n_actual = full.n   # differs from n_total when halo_mass_factor > 1
    full.ids = np.arange(n_actual, dtype=np.int64)
    # Center the realization.
    full.pos -= full.center_of_mass()
    full.vel -= full.center_of_mass_velocity()

    if n_ranks == 1:
        return full
    # Deterministic sharding: contiguous strided slices of the global set.
    lo = (n_actual * rank) // n_ranks
    hi = (n_actual * (rank + 1)) // n_ranks
    return full.select(np.arange(lo, hi))
