"""Velocity assignment: spherical Jeans equations and disk kinematics.

The spherical components (halo, bulge) get isotropic Gaussian velocities
with the radial dispersion solving the isotropic Jeans equation in the
*total* potential::

    sigma_r^2(r) = 1 / rho(r) * int_r^inf rho(s) M_tot(<s) / s^2 ds

The disk gets a rotational-supported structure: circular velocity from
the total potential, radial dispersion set by a target Toomre Q,
azimuthal dispersion from the epicyclic ratio, vertical dispersion from
the isothermal-sheet relation, and the mean rotation reduced by the
asymmetric drift.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def jeans_sigma_r(radii: np.ndarray,
                  density: Callable[[np.ndarray], np.ndarray],
                  enclosed_mass_total: Callable[[np.ndarray], np.ndarray],
                  r_max: float, grid_points: int = 2048) -> np.ndarray:
    """Isotropic Jeans radial dispersion evaluated at ``radii``.

    ``enclosed_mass_total`` must include *all* mass (halo + disk + bulge)
    so each component feels the combined potential.
    """
    radii = np.asarray(radii, dtype=np.float64)
    lo = max(1e-4 * r_max, 1e-6)
    grid = np.geomspace(lo, r_max, grid_points)
    rho = np.maximum(density(grid), 1e-300)
    integrand = rho * enclosed_mass_total(grid) / grid ** 2
    # Cumulative integral from r to r_max via reversed trapezoid.
    dr = np.diff(grid)
    seg = 0.5 * (integrand[1:] + integrand[:-1]) * dr
    tail = np.concatenate([np.cumsum(seg[::-1])[::-1], [0.0]])
    sigma2 = tail / rho
    sigma2 = np.maximum(sigma2, 0.0)
    return np.sqrt(np.interp(radii, grid, sigma2,
                             left=sigma2[0], right=0.0))


def sample_isotropic_velocities(pos: np.ndarray,
                                density: Callable[[np.ndarray], np.ndarray],
                                enclosed_mass_total: Callable[[np.ndarray], np.ndarray],
                                r_max: float,
                                rng: np.random.Generator,
                                v_escape_frac: float = 0.95) -> np.ndarray:
    """Draw isotropic Gaussian velocities for a spherical component.

    Speeds are capped at ``v_escape_frac`` times the local escape speed
    estimated from the enclosed mass (a conservative bound that prevents
    runaway particles from the Gaussian tail).
    """
    r = np.linalg.norm(pos, axis=1)
    sigma = jeans_sigma_r(r, density, enclosed_mass_total, r_max)
    vel = rng.normal(size=pos.shape) * sigma[:, None]
    # Escape-speed clamp: phi >= -M_tot(<r_max)/r roughly; use the simple
    # keplerian bound from all mass inside r_max.
    m_out = float(enclosed_mass_total(np.array([r_max]))[0])
    v_esc = np.sqrt(2.0 * m_out / np.maximum(r, 1e-6))
    speed = np.linalg.norm(vel, axis=1)
    over = speed > v_escape_frac * v_esc
    if over.any():
        vel[over] *= (v_escape_frac * v_esc[over] / speed[over])[:, None]
    return vel


def epicyclic_frequency_squared(R: np.ndarray, vc2: Callable[[np.ndarray], np.ndarray],
                                dr_frac: float = 1e-4) -> np.ndarray:
    """kappa^2 = R dOmega^2/dR + 4 Omega^2 via numerical differentiation."""
    R = np.asarray(R, dtype=np.float64)
    dR = np.maximum(R * dr_frac, 1e-9)
    om2 = vc2(R) / R ** 2
    om2_hi = vc2(R + dR) / (R + dR) ** 2
    om2_lo = vc2(np.maximum(R - dR, 1e-9)) / np.maximum(R - dR, 1e-9) ** 2
    dom2 = (om2_hi - om2_lo) / (2.0 * dR)
    return R * dom2 + 4.0 * om2


def disk_velocities(R: np.ndarray, phi_angle: np.ndarray,
                    vc2_total: Callable[[np.ndarray], np.ndarray],
                    surface_density: Callable[[np.ndarray], np.ndarray],
                    scale_length: float, scale_height: float,
                    toomre_q: float, q_ref_radius: float,
                    rng: np.random.Generator) -> np.ndarray:
    """Sample disk particle velocities in Cartesian coordinates.

    Parameters
    ----------
    R, phi_angle:
        Cylindrical radius and azimuth of each particle.
    vc2_total:
        Total circular velocity squared as a function of R.
    surface_density:
        Disk surface density Sigma(R).
    toomre_q:
        Target Toomre Q at ``q_ref_radius``; the dispersion profile keeps
        the exponential shape sigma_R ~ exp(-R / 2 Rd) and is normalised
        so Q(q_ref_radius) = toomre_q.
    """
    R = np.asarray(R, dtype=np.float64)
    vc2 = np.maximum(vc2_total(R), 0.0)
    vc = np.sqrt(vc2)
    kappa2 = np.maximum(epicyclic_frequency_squared(R, vc2_total), 1e-12)
    kappa = np.sqrt(kappa2)
    omega = vc / np.maximum(R, 1e-9)

    # Toomre-normalised radial dispersion with an exponential profile.
    kappa_ref = np.sqrt(float(epicyclic_frequency_squared(
        np.array([q_ref_radius]), vc2_total)[0]))
    sigma_ref = float(surface_density(np.array([q_ref_radius]))[0])
    sig_r_ref = toomre_q * 3.36 * sigma_ref / kappa_ref
    sigma_R = sig_r_ref * np.exp(-(R - q_ref_radius) / (2.0 * scale_length))
    # Cap the dispersion so random motion never exceeds rotation support.
    sigma_R = np.minimum(sigma_R, 0.6 * np.maximum(vc, 1e-9))

    ratio = np.clip(kappa / (2.0 * omega), 0.1, 1.0)
    sigma_phi = sigma_R * ratio
    sigma_z = np.sqrt(np.pi * np.maximum(surface_density(R), 0.0) * scale_height)
    sigma_z = np.minimum(sigma_z, sigma_R)

    # Asymmetric drift (Binney & Tremaine eq. 4.228, exponential disk
    # approximation): vbar_phi^2 = vc^2 + sigma_R^2 (1 - kappa^2/(4 Omega^2)
    # - 2 R / Rd).
    va2 = vc2 + sigma_R ** 2 * (1.0 - kappa2 / (4.0 * omega ** 2)
                                - 2.0 * R / scale_length)
    vbar_phi = np.sqrt(np.maximum(va2, 0.0))

    v_R = rng.normal(size=len(R)) * sigma_R
    v_phi = vbar_phi + rng.normal(size=len(R)) * sigma_phi
    v_z = rng.normal(size=len(R)) * sigma_z

    cos_p, sin_p = np.cos(phi_angle), np.sin(phi_angle)
    vx = v_R * cos_p - v_phi * sin_p
    vy = v_R * sin_p + v_phi * cos_p
    return np.stack([vx, vy, v_z], axis=1)
