"""Initial-condition generation (the GalacticICS substitute of Sec. IV).

Builds the paper's Milky Way model -- an NFW dark-matter halo, an
exponential stellar disk and a Hernquist bulge, realized with equal-mass
particles -- plus Plummer and uniform models for testing.  Generation is
deterministic and shardable across ranks ("we decided to generate all our
Milky Way models on the fly", Sec. IV).
"""

from .profiles import (
    HernquistProfile,
    NFWProfile,
    PlummerProfile,
    ExponentialDisk,
)
from .sampling import sample_radii, isotropic_directions
from .velocities import jeans_sigma_r, sample_isotropic_velocities
from .plummer import plummer_model
from .galactics import MilkyWayModel, milky_way_model

__all__ = [
    "NFWProfile",
    "HernquistProfile",
    "PlummerProfile",
    "ExponentialDisk",
    "sample_radii",
    "isotropic_directions",
    "jeans_sigma_r",
    "sample_isotropic_velocities",
    "plummer_model",
    "MilkyWayModel",
    "milky_way_model",
]
