"""Inverse-CDF position sampling for the analytic profiles."""

from __future__ import annotations

from typing import Callable

import numpy as np


def sample_radii(mass_fraction: Callable[[np.ndarray], np.ndarray],
                 r_max: float, rng: np.random.Generator, n: int,
                 r_min: float = 0.0, grid_points: int = 4096) -> np.ndarray:
    """Sample radii whose distribution follows a cumulative mass profile.

    Parameters
    ----------
    mass_fraction:
        Monotone cumulative mass fraction F(r) with F(r_max) ~= 1.
    r_max:
        Truncation radius of the model.
    r_min:
        Inner sampling edge (avoids r = 0 singularities).
    grid_points:
        Resolution of the tabulated inverse CDF.

    The inverse CDF is tabulated on a grid that is logarithmic when
    ``r_min > 0`` and linear otherwise, then inverted with ``np.interp``.
    """
    if n == 0:
        return np.empty(0)
    lo = max(r_min, r_max * 1.0e-6)
    grid = np.geomspace(lo, r_max, grid_points)
    grid[0] = r_min if r_min > 0 else 0.0
    cdf = np.asarray(mass_fraction(grid), dtype=np.float64)
    cdf = cdf - cdf[0]
    cdf /= cdf[-1]
    # Enforce strict monotonicity for interp (flat stretches collapse).
    cdf = np.maximum.accumulate(cdf)
    u = rng.uniform(0.0, 1.0, n)
    return np.interp(u, cdf, grid)


def isotropic_directions(rng: np.random.Generator, n: int) -> np.ndarray:
    """Uniformly distributed unit vectors, shape (n, 3)."""
    cos_t = rng.uniform(-1.0, 1.0, n)
    sin_t = np.sqrt(np.maximum(1.0 - cos_t ** 2, 0.0))
    phi = rng.uniform(0.0, 2.0 * np.pi, n)
    return np.stack([sin_t * np.cos(phi), sin_t * np.sin(phi), cos_t], axis=1)


def spherical_positions(mass_fraction: Callable[[np.ndarray], np.ndarray],
                        r_max: float, rng: np.random.Generator, n: int
                        ) -> np.ndarray:
    """Sample positions of a spherically symmetric profile."""
    r = sample_radii(mass_fraction, r_max, rng, n)
    return r[:, None] * isotropic_directions(rng, n)
