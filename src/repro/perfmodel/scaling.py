"""Weak/strong scaling series (Fig. 4) and time-to-solution (Sec. VI-C)."""

from __future__ import annotations

import dataclasses

from ..core.step import StepBreakdown
from .hardware import MachineSpec, TITAN
from .interactions import InteractionModel
from .timeline import model_step


@dataclasses.dataclass(frozen=True)
class ScalingPoint:
    """One x-position of Fig. 4 / one column of Table II."""

    n_gpus: int
    n_per_gpu: float
    breakdown: StepBreakdown

    @property
    def n_total(self) -> float:
        """Global particle count."""
        return self.n_gpus * self.n_per_gpu

    @property
    def gpu_kernel_tflops(self) -> float:
        """Aggregate force-kernel rate while the GPUs compute
        (the red "GPU kernels" curve of Fig. 4)."""
        bd = self.breakdown
        t = bd.gravity_local + bd.gravity_let
        return self.n_gpus * bd.counts.tflops(t)

    @property
    def gravity_tflops(self) -> float:
        """Gravity-step rate including non-hidden communication
        (the green "Gravity" curve)."""
        bd = self.breakdown
        t = bd.gravity_local + bd.gravity_let + bd.non_hidden_comm
        return self.n_gpus * bd.counts.tflops(t)

    @property
    def application_tflops(self) -> float:
        """Whole-application rate (the blue "Application" curve)."""
        return self.n_gpus * self.breakdown.counts.tflops(self.breakdown.total)

    def efficiency_vs(self, single: "ScalingPoint") -> float:
        """Parallel application efficiency relative to one GPU."""
        return (self.application_tflops
                / (self.n_gpus * single.application_tflops))

    def gravity_efficiency_vs(self, single: "ScalingPoint") -> float:
        """Gravity-step efficiency relative to one GPU."""
        single_grav = single.gravity_tflops
        return self.gravity_tflops / (self.n_gpus * single_grav)


def weak_scaling(machine: MachineSpec, gpu_counts: list[int],
                 n_per_gpu: float = 13.0e6,
                 interactions: InteractionModel | None = None
                 ) -> list[ScalingPoint]:
    """Model the Fig. 4 weak-scaling study on one machine."""
    return [ScalingPoint(p, n_per_gpu,
                         model_step(machine, p, n_per_gpu, interactions))
            for p in gpu_counts]


def strong_scaling(machine: MachineSpec, n_total: float,
                   gpu_counts: list[int],
                   interactions: InteractionModel | None = None
                   ) -> list[ScalingPoint]:
    """Model a strong-scaling study: fixed global N, growing P."""
    return [ScalingPoint(p, n_total / p,
                         model_step(machine, p, n_total / p, interactions))
            for p in gpu_counts]


def time_to_solution(machine: MachineSpec = TITAN,
                     n_gpus: int = 18600,
                     n_total: float = 242.0e9,
                     sim_gyr: float = 8.0,
                     dt_myr: float = 0.075,
                     barred_overhead: float = 0.10,
                     interactions: InteractionModel | None = None
                     ) -> dict[str, float]:
    """Sec. VI-C estimate: wall-clock time for a full Milky Way run.

    ``barred_overhead`` is the measured ~10% step-time increase once the
    bar and spiral arms have formed (denser regions raise the
    interaction count).

    Returns a dict with seconds per step (quiet and barred), the number
    of steps, and the total wall-clock days.
    """
    bd = model_step(machine, n_gpus, n_total / n_gpus, interactions)
    step_quiet = bd.total
    step_barred = step_quiet * (1.0 + barred_overhead)
    n_steps = sim_gyr * 1.0e3 / dt_myr
    wall_seconds = n_steps * step_barred
    return {
        "seconds_per_step_quiet": step_quiet,
        "seconds_per_step_barred": step_barred,
        "n_steps": n_steps,
        "wall_clock_days": wall_seconds / 86400.0,
    }
