"""Per-step timeline model: regenerates the rows of Table II.

``model_step`` assembles a :class:`~repro.core.step.StepBreakdown` for a
given machine, GPU count and particles-per-GPU from:

- the interaction-count model (p-p constant, p-c logarithmic in global
  N, local/LET split) -> gravity kernel times via the calibrated p-p/p-c
  sustained rates;
- per-particle memory-bound costs for sorting / tree build / properties,
  inflated by the load-imbalance envelope (the 30% particle cap);
- the network model for the boundary allgather and near-neighbour LET
  exchange, of which only the part exceeding the GPU's LET-gravity
  window appears as "non-hidden" time (communication hides behind
  computation, Sec. III-B2);
- machine constants for the domain update and the "unbalance + other"
  residual.
"""

from __future__ import annotations

import numpy as np

from ..core.step import StepBreakdown
from ..gravity.flops import InteractionCounts
from .gpu import (
    BUILD_NS_PER_PARTICLE,
    PROPS_NS_PER_PARTICLE,
    SORT_NS_PER_PARTICLE,
    KernelRates,
    tree_kernel_rates,
)
from .hardware import MachineSpec
from .interactions import InteractionModel
from .network import comm_time_seconds

#: Number of near neighbours that need full LETs (Sec. III-B2: "our ~40
#: nearest neighbors").
N_LET_NEIGHBORS = 40


def imbalance_factor(n_gpus: int) -> float:
    """Peak-over-mean particle count per GPU.

    Grows with machine size as density contrast accumulates, saturating
    at the decomposer's 30% cap (Sec. III-B1).
    """
    if n_gpus <= 1:
        return 1.0
    return 1.0 + min(0.3, 0.02 * np.log2(n_gpus))


def model_step(machine: MachineSpec, n_gpus: int, n_per_gpu: float,
               interactions: InteractionModel | None = None,
               rates: KernelRates | None = None,
               kernel_variant: str = "tuned",
               quadrupole: bool = True) -> StepBreakdown:
    """Model one full simulation step; returns a Table II column.

    Parameters
    ----------
    machine:
        PIZ_DAINT or TITAN (or a custom MachineSpec).
    n_gpus:
        Number of GPUs / MPI ranks.
    n_per_gpu:
        Average particles per GPU (13e6 in the weak-scaling study).
    """
    im = interactions or InteractionModel()
    kr = rates or tree_kernel_rates(machine.gpu, kernel_variant)
    imb = imbalance_factor(n_gpus)
    n_local = float(n_per_gpu)

    bd = StepBreakdown()
    bd.n_particles = int(n_local)

    # Memory-bound GPU phases (the slowest rank sets the pace).
    bd.sorting = SORT_NS_PER_PARTICLE * n_local * imb * 1e-9
    bd.tree_construction = BUILD_NS_PER_PARTICLE * n_local * imb * 1e-9
    bd.tree_properties = PROPS_NS_PER_PARTICLE * n_local * imb * 1e-9

    size_scale = (n_local / 13.0e6) ** 0.5

    # Domain update: sampling, cutting, broadcasting, exchanging.
    if n_gpus > 1:
        bd.domain_update = max(
            0.05, machine.c_du_base + machine.c_du_log * np.log2(n_gpus)
        ) * size_scale

    # Gravity: local tree walk and LET walks.
    pp = im.pp_per_particle(n_gpus)
    pc_loc = im.pc_local(n_local, n_gpus)
    pc_let = im.pc_let(n_local, n_gpus)
    n_pp = int(pp * n_local)
    n_pc_loc = int(pc_loc * n_local)
    n_pc_let = int(pc_let * n_local)
    bd.gravity_local = kr.gravity_seconds(n_pp, n_pc_loc, quadrupole)
    bd.gravity_let = kr.gravity_seconds(0, n_pc_let, quadrupole)

    bd.counts = InteractionCounts(n_pp=n_pp, n_pc=n_pc_loc + n_pc_let,
                                  quadrupole=quadrupole)

    # Communication: only what the LET-gravity window cannot hide shows.
    if n_gpus > 1:
        t_comm = comm_time_seconds(machine.network, n_gpus,
                                   im.boundary_bytes(n_local),
                                   im.let_bytes(n_local), N_LET_NEIGHBORS)
        hidden_window = bd.gravity_let
        overflow = max(0.0, t_comm - hidden_window)
        # Residual protocol/latency costs that no window can hide; the
        # Table II fit grows with log2(P) and is worse on the slower
        # CPUs and higher-latency torus of Titan.
        residual = max(0.0, machine.c_nonhidden_base
                       + machine.c_nonhidden_log * np.log2(n_gpus))
        # Fewer local particles leave a smaller hiding window, exposing
        # more of the residual (Table II strong-scaling columns).
        bd.non_hidden_comm = overflow + residual / size_scale

    # Unbalance + other (allocation, statistics, integration, waiting).
    if n_gpus > 1:
        bd.other = max(0.10, machine.c_other_base
                       + machine.c_other_log * np.log2(n_gpus)) * size_scale
    else:
        bd.other = 0.10

    return bd
