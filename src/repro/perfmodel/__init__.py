"""Performance model of Bonsai on GPU supercomputers.

We do not have 18600 K20X GPUs; what we do have is (a) the real
algorithm, whose interaction counts and message volumes we measure
directly, and (b) Table II of the paper, which pins down the machine
constants (kernel rates, per-particle GPU phase costs, network terms).
This package combines the two into a per-step timeline model that
regenerates Table II, Fig. 1 and Fig. 4, and whose interaction-count
inputs are *validated* against this repository's own tree walk by
``calibration.py``.
"""

from .hardware import (
    C2075,
    GPUSpec,
    K20X,
    MachineSpec,
    NetworkSpec,
    PIZ_DAINT,
    TITAN,
    table1_rows,
)
from .gpu import (
    KernelRates,
    direct_kernel_gflops,
    fig1_bars,
    tree_kernel_rates,
)
from .interactions import InteractionModel
from .network import comm_time_seconds, effective_latency_us
from .timeline import model_step
from .scaling import (
    ScalingPoint,
    strong_scaling,
    time_to_solution,
    weak_scaling,
)

__all__ = [
    "GPUSpec", "NetworkSpec", "MachineSpec", "K20X", "C2075",
    "PIZ_DAINT", "TITAN", "table1_rows",
    "KernelRates", "tree_kernel_rates", "direct_kernel_gflops", "fig1_bars",
    "InteractionModel",
    "effective_latency_us", "comm_time_seconds",
    "model_step",
    "ScalingPoint", "weak_scaling", "strong_scaling", "time_to_solution",
]
