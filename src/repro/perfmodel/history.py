"""The Gordon Bell lineage of tree-code records (Sec. II).

The paper situates itself against earlier prize runs; this module
records those data points so the state-of-the-art discussion is
reproducible alongside the benchmarks.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class RecordRun:
    """One historical large-scale tree/TreePM simulation."""

    year: int
    system: str
    method: str
    n_particles: float
    sustained_tflops: float
    accelerators: str
    note: str = ""


#: Sec. II's quantitative history, ending at this paper.
RECORD_RUNS = (
    RecordRun(year=2009, system="DEGIMA-class GPU cluster",
              method="tree (GPU force only)", n_particles=1.6e9,
              sustained_tflops=42.0, accelerators="256 GPUs",
              note="Gordon Bell price/performance, 124 Mflops/$ [31]"),
    RecordRun(year=2010, system="DEGIMA",
              method="tree (GPU force only)", n_particles=3.3e9,
              sustained_tflops=190.0, accelerators="576 GPUs",
              note="honorable mention, 254.4 Mflops/$ [32]"),
    RecordRun(year=2012, system="K computer",
              method="TreePM (GreeM)", n_particles=1.0e12,
              sustained_tflops=4450.0, accelerators="663552 CPU cores",
              note="Ishiyama, Nitadori & Makino [10]"),
    RecordRun(year=2014, system="Titan",
              method="tree (Bonsai, all-GPU)", n_particles=2.42e11,
              sustained_tflops=24770.0, accelerators="18600 GPUs",
              note="this paper"),
)


def sustained_performance_growth() -> float:
    """Factor between this paper and the first GPU tree record (2009)."""
    return RECORD_RUNS[-1].sustained_tflops / RECORD_RUNS[0].sustained_tflops


def versus_previous_record() -> float:
    """Sustained-performance factor over the 2012 K-computer run."""
    return RECORD_RUNS[-1].sustained_tflops / RECORD_RUNS[-2].sustained_tflops


def history_rows() -> list[tuple[str, ...]]:
    """Render the lineage as table rows for benchmark output."""
    rows = [("year", "system", "method", "N", "sustained", "accelerators")]
    for r in RECORD_RUNS:
        rows.append((str(r.year), r.system, r.method,
                     f"{r.n_particles:.2g}",
                     f"{r.sustained_tflops / 1e3:.3g} Pflops",
                     r.accelerators))
    return rows
