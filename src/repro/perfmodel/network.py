"""Interconnect timing model: dragonfly vs 3-D torus.

The model needs only two topology-dependent quantities: the average hop
count (which multiplies the per-hop latency) and an effective bandwidth
derate under all-to-all-style traffic (bisection pressure is much higher
on a 3-D torus than on a dragonfly, which is the paper's explanation for
Piz Daint's flatter non-hidden-communication row).
"""

from __future__ import annotations

import numpy as np

from .hardware import NetworkSpec


def average_hops(network: NetworkSpec, n_nodes: int) -> float:
    """Expected routing distance between two random nodes."""
    if n_nodes <= 1:
        return 0.0
    if network.topology == "dragonfly":
        # Minimal routing: local - global - local; diameter 3, average
        # slightly below it and nearly independent of machine size.
        return min(3.0, 1.0 + 0.5 * np.log10(max(n_nodes, 10)))
    if network.topology == "torus3d":
        # Average Manhattan distance on a k^3 torus is 3k/4.
        k = max(n_nodes, 1) ** (1.0 / 3.0)
        return 0.75 * k
    raise ValueError(f"unknown topology {network.topology!r}")


def effective_latency_us(network: NetworkSpec, n_nodes: int) -> float:
    """Per-message latency including routing distance."""
    return network.latency_us * max(1.0, average_hops(network, n_nodes))


def effective_bandwidth_gbs(network: NetworkSpec, n_nodes: int) -> float:
    """Per-node achievable bandwidth under global traffic.

    The dragonfly's all-to-all-friendly global links keep the derate
    mild; the torus loses bandwidth to multi-hop contention as the
    machine grows.
    """
    if network.topology == "dragonfly":
        derate = 1.0 / (1.0 + 0.05 * np.log2(max(n_nodes, 2)))
    elif network.topology == "torus3d":
        derate = 1.0 / (1.0 + 0.12 * np.log2(max(n_nodes, 2)))
    else:
        raise ValueError(f"unknown topology {network.topology!r}")
    return network.bandwidth_gbs * derate


def allgather_seconds(network: NetworkSpec, n_nodes: int,
                      bytes_per_rank: float) -> float:
    """Time of an allgatherv of ``bytes_per_rank`` from every rank.

    Ring/recursive-doubling hybrid: log2(P) latency terms plus receiving
    (P-1) contributions at the effective bandwidth.
    """
    if n_nodes <= 1:
        return 0.0
    lat = effective_latency_us(network, n_nodes) * 1e-6 * np.log2(n_nodes)
    vol = (n_nodes - 1) * bytes_per_rank / (effective_bandwidth_gbs(network, n_nodes) * 1e9)
    return float(lat + vol)


def neighbor_exchange_seconds(network: NetworkSpec, n_nodes: int,
                              n_neighbors: int, bytes_per_message: float) -> float:
    """Time to exchange full LETs with the near neighbours.

    Messages to distinct neighbours pipeline, so the cost is one latency
    plus the serialised injection of all outgoing bytes.
    """
    if n_nodes <= 1 or n_neighbors == 0:
        return 0.0
    lat = effective_latency_us(network, n_nodes) * 1e-6
    vol = n_neighbors * bytes_per_message / (effective_bandwidth_gbs(network, n_nodes) * 1e9)
    return float(lat + vol)


def comm_time_seconds(network: NetworkSpec, n_nodes: int,
                      boundary_bytes: float, let_bytes: float,
                      n_neighbors: int = 40) -> float:
    """Total gravity-phase communication: boundary allgather + LETs."""
    return (allgather_seconds(network, n_nodes, boundary_bytes)
            + neighbor_exchange_seconds(network, n_nodes, n_neighbors, let_bytes))
