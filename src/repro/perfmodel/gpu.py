"""GPU kernel timing model: sustained rates per kernel and architecture.

Fig. 1 of the paper fixes five sustained-throughput numbers (Gflops):

=====================  =======
C2075, original tree       460
K20X,  original tree       829
K20X,  tuned tree         1768
C2075, direct N-body       638
K20X,  direct N-body      1746
=====================  =======

The tuned Kepler kernel's 1768 Gflops is an *aggregate* over a p-p / p-c
mix; Table II additionally shows 1.77 Tflops at the single-GPU mix
(1745 p-p / 4529 p-c per particle) and ~1.80 Tflops at the 18600-GPU mix
(1716 / 6920).  Those two operating points pin down separate sustained
rates for the two kernels::

    R_pp = 1287 Gflops   (23-flop kernel, rsqrt-bound)
    R_pc = 1865 Gflops   (65-flop kernel, fma-rich)

Other kernel variants scale both rates by their Fig. 1 ratio.  The
non-force GPU phases (SFC sort, tree construction, tree properties) are
memory-bound and modelled as per-particle costs calibrated from the
single-GPU column of Table II at 13 M particles.
"""

from __future__ import annotations

import dataclasses

from .hardware import C2075, GPUSpec, K20X

#: Sustained Gflops of the tuned Kepler tree-walk kernels.
TUNED_KEPLER_RPP = 1287.0
TUNED_KEPLER_RPC = 1865.0

#: Fig. 1 aggregate tree-kernel throughput by (arch, variant), Gflops.
FIG1_TREE_GFLOPS = {
    ("fermi", "original"): 460.0,
    ("kepler", "original"): 829.0,
    ("kepler", "tuned"): 1768.0,
}

#: Fig. 1 direct N-body kernel throughput (CUDA SDK 5.5), Gflops.
FIG1_DIRECT_GFLOPS = {
    "fermi": 638.0,
    "kepler": 1746.0,
}

#: Per-particle costs of the memory-bound GPU phases, nanoseconds
#: (Table II single-GPU column at 13 M particles: 0.10 s sorting,
#: 0.11 s tree construction, 0.03 s tree properties).
SORT_NS_PER_PARTICLE = 0.10e9 / 13.0e6
BUILD_NS_PER_PARTICLE = 0.11e9 / 13.0e6
PROPS_NS_PER_PARTICLE = 0.03e9 / 13.0e6


@dataclasses.dataclass(frozen=True)
class KernelRates:
    """Sustained rates (Gflops) of the two force kernels."""

    rpp_gflops: float
    rpc_gflops: float

    def gravity_seconds(self, n_pp: int, n_pc: int,
                        quadrupole: bool = True) -> float:
        """Kernel execution time for an interaction tally."""
        from ..gravity.flops import FLOPS_PER_PC, FLOPS_PER_PC_MONOPOLE, FLOPS_PER_PP
        per_pc = FLOPS_PER_PC if quadrupole else FLOPS_PER_PC_MONOPOLE
        return (n_pp * FLOPS_PER_PP / (self.rpp_gflops * 1e9)
                + n_pc * per_pc / (self.rpc_gflops * 1e9))

    def aggregate_gflops(self, n_pp: int, n_pc: int,
                         quadrupole: bool = True) -> float:
        """Blended sustained rate at a given interaction mix."""
        from ..gravity.flops import FLOPS_PER_PC, FLOPS_PER_PC_MONOPOLE, FLOPS_PER_PP
        per_pc = FLOPS_PER_PC if quadrupole else FLOPS_PER_PC_MONOPOLE
        flops = n_pp * FLOPS_PER_PP + n_pc * per_pc
        return flops / self.gravity_seconds(n_pp, n_pc, quadrupole) / 1e9


def tree_kernel_rates(gpu: GPUSpec = K20X, variant: str = "tuned") -> KernelRates:
    """Per-kernel sustained rates for a GPU/variant combination.

    Only the Kepler "tuned" kernel is split into separately calibrated
    p-p/p-c rates; other variants scale both by their Fig. 1 ratio to
    the tuned aggregate.
    """
    key = (gpu.arch, variant)
    if key not in FIG1_TREE_GFLOPS:
        raise ValueError(f"no kernel data for arch={gpu.arch!r} variant={variant!r}")
    scale = FIG1_TREE_GFLOPS[key] / FIG1_TREE_GFLOPS[("kepler", "tuned")]
    return KernelRates(rpp_gflops=TUNED_KEPLER_RPP * scale,
                       rpc_gflops=TUNED_KEPLER_RPC * scale)


def direct_kernel_gflops(gpu: GPUSpec = K20X) -> float:
    """Sustained rate of the CUDA-SDK direct N-body kernel."""
    if gpu.arch not in FIG1_DIRECT_GFLOPS:
        raise ValueError(f"no direct-kernel data for arch={gpu.arch!r}")
    return FIG1_DIRECT_GFLOPS[gpu.arch]


def fig1_bars() -> list[tuple[str, str, float, float]]:
    """The five bars of Fig. 1: (gpu, kernel, Gflops, fraction-of-peak).

    Reproduces the figure's quantitative claims: the tuned Kepler kernel
    is ~2x the original on the same hardware and ~4x the Fermi kernel.
    """
    out = []
    for gpu, variant in ((C2075, "original"), (K20X, "original"), (K20X, "tuned")):
        g = FIG1_TREE_GFLOPS[(gpu.arch, variant)]
        out.append((gpu.name, f"tree/{variant}", g,
                    g / (gpu.peak_sp_tflops * 1e3)))
    for gpu in (C2075, K20X):
        g = FIG1_DIRECT_GFLOPS[gpu.arch]
        out.append((gpu.name, "direct", g, g / (gpu.peak_sp_tflops * 1e3)))
    return out
