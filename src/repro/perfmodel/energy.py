"""Energy efficiency: the flops/watt argument of Sec. II.

The paper motivates the move to GPU machines by energy efficiency:
"K computer offers 830 Mflops/watt compared to 2.1 (2.7) Gflops/watt for
Titan (Piz Daint)".  This module reproduces that comparison and derives
the energy cost of the paper's runs.
"""

from __future__ import annotations

import dataclasses

from .hardware import MachineSpec, PIZ_DAINT, TITAN


@dataclasses.dataclass(frozen=True)
class PowerSpec:
    """System-level power figures (green500-style, LINPACK basis)."""

    name: str
    gflops_per_watt: float
    system_power_mw: float   # total system power, megawatts


#: Sec. II figures ("see http://www.green500.org/").
K_COMPUTER_POWER = PowerSpec(name="K computer", gflops_per_watt=0.830,
                             system_power_mw=12.7)
TITAN_POWER = PowerSpec(name="Titan", gflops_per_watt=2.1,
                        system_power_mw=8.2)
PIZ_DAINT_POWER = PowerSpec(name="Piz Daint", gflops_per_watt=2.7,
                            system_power_mw=2.3)

_POWER = {"Titan": TITAN_POWER, "Piz Daint": PIZ_DAINT_POWER}


def power_spec_for(machine: MachineSpec) -> PowerSpec:
    """Look up the power figures for a modelled machine."""
    try:
        return _POWER[machine.name]
    except KeyError:
        raise ValueError(f"no power data for {machine.name!r}") from None


def efficiency_advantage_over_k() -> dict[str, float]:
    """GPU machines' flops/watt advantage over K computer (Sec. II)."""
    return {p.name: p.gflops_per_watt / K_COMPUTER_POWER.gflops_per_watt
            for p in (TITAN_POWER, PIZ_DAINT_POWER)}


def run_energy_megawatt_hours(machine: MachineSpec, n_gpus: int,
                              wall_clock_seconds: float) -> float:
    """Energy of a run, scaling system power by the node fraction used."""
    p = power_spec_for(machine)
    frac = n_gpus / machine.total_nodes
    return p.system_power_mw * frac * wall_clock_seconds / 3600.0


def flops_per_node_comparison() -> dict[str, float]:
    """Peak node Tflops: Titan vs K computer (Sec. II: 3.95 vs 0.128).

    The ratio explains why the network/flop balance is so much tighter
    on GPU machines -- the communication problem this paper solves.
    """
    return {"Titan node (K20X, SP)": 3.95, "K computer node": 0.128}
