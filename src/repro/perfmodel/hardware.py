"""Hardware descriptions: the GPUs, nodes and interconnects of Table I."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class GPUSpec:
    """An NVIDIA GPU as the force-kernel model sees it."""

    name: str
    arch: str                  # "fermi" or "kepler"
    peak_sp_tflops: float      # theoretical single-precision peak
    mem_gb: float              # device RAM (ECC enabled)
    mem_bw_gbs: float          # device memory bandwidth


#: Tesla K20X (Kepler GK110), the accelerator of both machines.
K20X = GPUSpec(name="K20X", arch="kepler", peak_sp_tflops=3.95,
               mem_gb=5.4, mem_bw_gbs=250.0)

#: Tesla C2075 (Fermi), the Fig. 1 comparison GPU.
C2075 = GPUSpec(name="C2075", arch="fermi", peak_sp_tflops=1.03,
                mem_gb=5.4, mem_bw_gbs=144.0)


@dataclasses.dataclass(frozen=True)
class NetworkSpec:
    """Interconnect model parameters.

    ``bandwidth_gbs`` is the effective per-node injection bandwidth;
    ``latency_us`` the per-hop latency; topology selects the hop-count
    model ("dragonfly" or "torus3d")."""

    name: str
    topology: str
    latency_us: float
    bandwidth_gbs: float


#: Cray Aries dragonfly (Piz Daint).
ARIES = NetworkSpec(name="Aries", topology="dragonfly",
                    latency_us=1.3, bandwidth_gbs=10.0)

#: Cray Gemini 3-D torus (Titan).
GEMINI = NetworkSpec(name="Gemini", topology="torus3d",
                     latency_us=1.5, bandwidth_gbs=6.0)


@dataclasses.dataclass(frozen=True)
class MachineSpec:
    """One row-set of Table I plus the calibrated per-machine model
    constants used by the step timeline.

    The ``c_*`` constants are fitted against the corresponding Table II
    columns (see perfmodel/timeline.py for the functional forms, all of
    the shape ``max(floor, base + log * log2(P))`` scaled by
    ``sqrt(N_local / 13e6)``):

    - ``c_du_base``/``c_du_log``: "Domain Update" row.
    - ``c_other_base``/``c_other_log``: "Unbalance + Other" row.
    - ``c_nonhidden_base``/``c_nonhidden_log``: residual (protocol /
      latency) part of "Non-hidden LET comm"; the bulk-volume part comes
      from the network model and is normally fully hidden.
    - ``cpu_slowdown``: relative CPU speed for LET generation (the
      Opteron 6274 is slower than the Xeon E5-2670; Sec. VI-B).
    """

    name: str
    gpu: GPUSpec
    gpus_per_node: int
    total_nodes: int
    nodes_used: int
    cpu_model: str
    cpu_cores_per_node: int
    node_ram_gb: float
    network: NetworkSpec
    cpu_slowdown: float
    c_du_base: float
    c_du_log: float
    c_other_base: float
    c_other_log: float
    c_nonhidden_base: float
    c_nonhidden_log: float


#: Piz Daint (Cray XC30), Table I column 1.
PIZ_DAINT = MachineSpec(
    name="Piz Daint", gpu=K20X, gpus_per_node=1,
    total_nodes=5272, nodes_used=5200,
    cpu_model="Xeon E5-2670", cpu_cores_per_node=8, node_ram_gb=32.0,
    network=ARIES, cpu_slowdown=1.0,
    c_du_base=0.10, c_du_log=0.0,
    c_other_base=-0.08, c_other_log=0.030,
    c_nonhidden_base=0.03, c_nonhidden_log=0.004,
)

#: Titan (Cray XK7), Table I column 2.
TITAN = MachineSpec(
    name="Titan", gpu=K20X, gpus_per_node=1,
    total_nodes=18688, nodes_used=18600,
    cpu_model="Opteron 6274", cpu_cores_per_node=16, node_ram_gb=32.0,
    network=GEMINI, cpu_slowdown=1.35,
    c_du_base=-0.04, c_du_log=0.024,
    c_other_base=-0.16, c_other_log=0.043,
    c_nonhidden_base=-0.22, c_nonhidden_log=0.031,
)


def table1_rows(machines: tuple[MachineSpec, ...] = (PIZ_DAINT, TITAN)
                ) -> list[tuple[str, ...]]:
    """Render Table I as (label, value...) rows for the benchmark output."""
    rows = [("Setup",) + tuple(m.name for m in machines)]
    rows.append(("GPU model",) + tuple(m.gpu.name for m in machines))
    rows.append(("GPU/node",) + tuple(str(m.gpus_per_node) for m in machines))
    rows.append(("Total GPUs",) + tuple(str(m.total_nodes) for m in machines))
    rows.append(("GPUs used",) + tuple(str(m.nodes_used) for m in machines))
    rows.append(("GPU RAM (ECC enabled)",) + tuple(f"{m.gpu.mem_gb} GB" for m in machines))
    rows.append(("CPU model",) + tuple(m.cpu_model for m in machines))
    rows.append(("Node RAM",) + tuple(f"{int(m.node_ram_gb)}GB" for m in machines))
    rows.append(("Network",) + tuple(f"{m.network.name}/{m.network.topology}"
                                     for m in machines))
    return rows
