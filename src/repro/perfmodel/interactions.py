"""Interaction-count model: how p-p and p-c counts scale with N and P.

The force-kernel flops -- and therefore every performance number in the
paper -- are set by the per-particle interaction counts, which Table II
reports directly.  Their structure follows from the tree algorithm:

- **p-p** is N-independent: leaf opening is a purely local property of
  the particle density and (theta, nleaf).  Table II: 1745 at one GPU,
  1715-1718 at every scale (the tiny drop comes from domain truncation).

- **p-c grows logarithmically with the global N**: each extra factor of
  2 in N adds about one tree level whose cells a target must consider.
  Table II fits cleanly to ``pc(N) = 4529 + 172 * log2(N / 13e6)``.

- At P > 1 the *local tree* covers only the domain's solid angle, so the
  local share of p-c drops to a roughly constant fraction (~0.51 from
  Table II's constant 1.45 s local-gravity row); the remainder comes
  from LET structures.

``repro.perfmodel.calibration`` re-measures the log-slope and the
domain-local fraction with this repository's own tree walk and compares
them against these constants.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class InteractionModel:
    """Parametrised interaction counts for the Milky Way workload at
    theta = 0.4 and nleaf = 16 (the paper's production configuration)."""

    #: p-p per particle on a single isolated tree (Table II, 1 GPU).
    pp_single: float = 1745.0
    #: p-p per particle in the distributed code (slight boundary loss).
    pp_multi: float = 1716.0
    #: p-c per particle at the 13 M reference N.
    pc_ref: float = 4529.0
    #: Reference particle count for ``pc_ref``.
    n_ref: float = 13.0e6
    #: p-c added per doubling of the global particle count (least-squares
    #: fit of Table II's four Titan weak-scaling columns).
    pc_log_slope: float = 176.0
    #: Fraction of the isolated-tree p-c count that stays in the local
    #: walk when the domain covers only part of the sky.
    domain_local_fraction: float = 0.514
    #: Strong-scaling surface correction: extra p-c per particle per
    #: log2(P) when the local count drops below the reference.
    surface_slope: float = 30.0

    def pc_isolated(self, n_total: float) -> float:
        """p-c per particle for a single tree over ``n_total`` particles."""
        return max(self.pc_ref + self.pc_log_slope * np.log2(n_total / self.n_ref),
                   0.0)

    def pp_per_particle(self, n_gpus: int) -> float:
        """p-p per particle."""
        return self.pp_single if n_gpus == 1 else self.pp_multi

    def pc_local(self, n_local: float, n_gpus: int) -> float:
        """Local-tree p-c per particle."""
        iso = self.pc_isolated(n_local)
        return iso if n_gpus == 1 else self.domain_local_fraction * iso

    def pc_total(self, n_local: float, n_gpus: int) -> float:
        """Total (local + LET) p-c per particle."""
        n_total = n_local * n_gpus
        base = self.pc_isolated(n_total)
        if n_gpus == 1:
            return base
        # Smaller domains have relatively more surface, hence more
        # remote structure to resolve (visible in the strong-scaling
        # columns of Table II).
        deficit = max(self.n_ref / n_local - 1.0, 0.0)
        return base + self.surface_slope * deficit * np.log2(n_gpus)

    def pc_let(self, n_local: float, n_gpus: int) -> float:
        """LET-walk p-c per particle."""
        return max(self.pc_total(n_local, n_gpus)
                   - self.pc_local(n_local, n_gpus), 0.0)

    def boundary_bytes(self, n_local: float, bytes_per_cell: float = 80.0,
                       nleaf: float = 16.0) -> float:
        """Wire size of one rank's boundary tree.

        Boundary cells live on the domain surface, so their number scales
        as the 2/3 power of the local *leaf* count (the paper's "the
        number of particles at the domain surface ... increases at a
        lower rate than the total number of particles inside the domain
        volume").  The 0.25 prefactor (outward-facing fraction after
        coarse-level pruning) is calibrated so the boundary allgather
        stays inside the LET-gravity hiding window at 18600 nodes, as
        Table II's small non-hidden row requires.
        """
        return 0.25 * bytes_per_cell * (float(n_local) / nleaf) ** (2.0 / 3.0)

    def let_bytes(self, n_local: float, bytes_per_cell: float = 80.0) -> float:
        """Wire size of one full LET for a near neighbour (a constant
        multiple of the boundary structure; LETs also carry leaf
        particles)."""
        return 4.0 * self.boundary_bytes(n_local, bytes_per_cell)
