"""Calibration: validate the interaction model against the real code.

The at-scale performance model rests on three structural claims about
the tree algorithm, all measurable with this repository's own tree walk
at laptop scale:

1. the p-p count per particle is independent of N;
2. the p-c count per particle grows linearly in log2(N);
3. a rank's boundary-structure size grows sublinearly (≈ 2/3 power law)
   with its local particle count.

``calibrate_interactions`` measures 1-2 on a shrinking Milky Way model;
``calibrate_boundary_sizes`` measures 3 over SimMPI runs.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..config import SimulationConfig
from ..gravity import tree_forces
from ..ics import milky_way_model
from ..octree import build_octree, compute_moments, make_groups
from ..parallel import boundary_structure
from ..octree import compute_opening_radii
from ..sfc import BoundingBox


@dataclasses.dataclass
class InteractionCalibration:
    """Measured interaction scaling from real tree walks."""

    n_values: np.ndarray
    pp_per_particle: np.ndarray
    pc_per_particle: np.ndarray
    pc_log_slope: float          # fitted d(pc)/d(log2 N)
    pc_intercept: float          # fitted pc at n_values[0]
    pp_spread: float             # max relative deviation of pp across N

    def pc_extrapolated(self, n: float) -> float:
        """Extrapolate the fitted log-law to an arbitrary N."""
        return self.pc_intercept + self.pc_log_slope * np.log2(
            n / self.n_values[0])


def calibrate_interactions(n_values: list[int] | None = None,
                           theta: float = 0.4, nleaf: int = 16,
                           ncrit: int = 64, seed: int = 11
                           ) -> InteractionCalibration:
    """Measure pp/pc per particle on Milky Way models of increasing N."""
    if n_values is None:
        n_values = [4000, 8000, 16000, 32000, 64000]
    pps, pcs = [], []
    for n in n_values:
        ps = milky_way_model(n, seed=seed)
        tree = build_octree(ps.pos, nleaf=nleaf)
        compute_moments(tree, ps.pos, ps.mass)
        make_groups(tree, ncrit)
        res = tree_forces(tree, ps.pos, ps.mass, theta=theta, eps=0.05)
        pps.append(res.counts.n_pp / n)
        pcs.append(res.counts.n_pc / n)
    n_arr = np.asarray(n_values, dtype=np.float64)
    pp_arr = np.asarray(pps)
    pc_arr = np.asarray(pcs)
    x = np.log2(n_arr / n_arr[0])
    slope, intercept = np.polyfit(x, pc_arr, 1)
    spread = float((pp_arr.max() - pp_arr.min()) / pp_arr.mean())
    return InteractionCalibration(n_values=n_arr, pp_per_particle=pp_arr,
                                  pc_per_particle=pc_arr,
                                  pc_log_slope=float(slope),
                                  pc_intercept=float(intercept),
                                  pp_spread=spread)


@dataclasses.dataclass
class BoundaryCalibration:
    """Measured boundary-structure sizes vs local particle count."""

    n_values: np.ndarray
    boundary_cells: np.ndarray
    boundary_bytes: np.ndarray
    power_law_exponent: float    # fitted d(log cells)/d(log N)


def calibrate_boundary_sizes(n_values: list[int] | None = None,
                             theta: float = 0.4, seed: int = 12
                             ) -> BoundaryCalibration:
    """Measure how the boundary structure grows with local N.

    Uses a single-domain proxy: the boundary structure of an isolated
    Milky Way tree (every rank's domain box behaves the same way).  The
    paper's hiding argument requires the exponent to be well below 1.
    """
    if n_values is None:
        n_values = [4000, 8000, 16000, 32000, 64000]
    cells, nbytes = [], []
    cfg = SimulationConfig(theta=theta)
    for n in n_values:
        ps = milky_way_model(n, seed=seed)
        box = BoundingBox.from_positions(ps.pos)
        tree = build_octree(ps.pos, nleaf=cfg.nleaf, box=box)
        compute_moments(tree, ps.pos, ps.mass)
        compute_opening_radii(tree, cfg.theta, cfg.mac)
        spos = ps.pos[tree.order]
        smass = ps.mass[tree.order]
        b = boundary_structure(tree, spos, smass)
        cells.append(b.n_cells)
        nbytes.append(b.nbytes)
    n_arr = np.asarray(n_values, dtype=np.float64)
    c_arr = np.asarray(cells, dtype=np.float64)
    slope = float(np.polyfit(np.log(n_arr), np.log(c_arr), 1)[0])
    return BoundaryCalibration(n_values=n_arr, boundary_cells=c_arr,
                               boundary_bytes=np.asarray(nbytes, dtype=np.float64),
                               power_law_exponent=slope)
