"""Simulation configuration shared by the serial and parallel drivers."""

from __future__ import annotations

import dataclasses

from .constants import PAPER_NLEAF, PAPER_THETA


@dataclasses.dataclass
class SimulationConfig:
    """Parameters of a tree-code simulation.

    Defaults follow the paper's production configuration (Sec. IV, VI):
    opening angle theta = 0.4, leaf capacity 16, Peano-Hilbert ordering,
    quadrupole corrections on, the Bonsai MAC.
    """

    theta: float = PAPER_THETA
    softening: float = 0.01          # internal units (kpc); paper: 1e-3
    dt: float = 0.25                 # internal time units
    nleaf: int = PAPER_NLEAF
    ncrit: int = 64
    mac: str = "bonsai"              # "bonsai" or "bh"
    curve: str = "hilbert"           # "hilbert" or "morton"
    quadrupole: bool = True
    force_method: str = "tree"       # "tree" or "direct" (O(N^2) oracle)

    def __post_init__(self) -> None:
        if self.force_method not in ("tree", "direct"):
            raise ValueError(f"unknown force_method {self.force_method!r}")
        if self.theta <= 0.0:
            raise ValueError("theta must be positive")
        if self.softening < 0.0:
            raise ValueError("softening must be non-negative")
        if self.dt <= 0.0:
            raise ValueError("dt must be positive")
        if self.mac not in ("bonsai", "bh"):
            raise ValueError(f"unknown MAC {self.mac!r}")
        if self.curve not in ("hilbert", "morton"):
            raise ValueError(f"unknown curve {self.curve!r}")
