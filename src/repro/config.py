"""Simulation configuration shared by the serial and parallel drivers."""

from __future__ import annotations

import dataclasses

from .constants import PAPER_NLEAF, PAPER_THETA
from .gravity.treewalk import DEFAULT_CHUNK, PRECISIONS, SCATTER_MODES
from .octree.incremental import TREE_REUSE_MODES

#: LET drain orderings for the distributed force phase.  ``auto``
#: resolves to ``deterministic`` under a deterministic tracer and
#: ``opportunistic`` otherwise (the pre-knob behaviour).
LET_DRAIN_MODES = ("auto", "deterministic", "incremental", "opportunistic")


@dataclasses.dataclass
class SimulationConfig:
    """Parameters of a tree-code simulation.

    Defaults follow the paper's production configuration (Sec. IV, VI):
    opening angle theta = 0.4, leaf capacity 16, Peano-Hilbert ordering,
    quadrupole corrections on, the Bonsai MAC.
    """

    theta: float = PAPER_THETA
    softening: float = 0.01          # internal units (kpc); paper: 1e-3
    dt: float = 0.25                 # internal time units
    nleaf: int = PAPER_NLEAF
    ncrit: int = 64
    mac: str = "bonsai"              # "bonsai" or "bh"
    curve: str = "hilbert"           # "hilbert" or "morton"
    quadrupole: bool = True
    force_method: str = "tree"       # "tree" or "direct" (O(N^2) oracle)

    # --- Fast-path force pipeline knobs ---------------------------------
    #: Pairs per evaluation chunk (cache blocking of the interaction
    #: kernels); the default fits the workspace in L2/L3 on this host.
    chunk: int = DEFAULT_CHUNK
    #: Kernel evaluation dtype: "float64", or "float32" (f32 kernels with
    #: f64 accumulators; bounded by the differential oracle).
    precision: str = "float64"
    #: Pair-to-target reduction: "segment" (reduceat over target runs,
    #: allocation-free) or "bincount" (legacy length-N scatter).
    scatter: str = "segment"
    #: Compute backend executing the interaction kernels: "numpy" (the
    #: bitwise float64 reference), "numba" (fused JIT kernels, optional
    #: dependency) or "cupy" (GPU scaffold) -- or any name registered
    #: via :func:`repro.gravity.backends.register_backend`.  Walks and
    #: interaction counts are backend-independent; see
    #: docs/PERFORMANCE.md §6.
    backend: str = "numpy"
    #: Walk all remote boundary/LET structures in one concatenated
    #: forest pass instead of one walk per source.
    batch_sources: bool = True
    #: Seed each step's tree build with the previous step's SFC sort
    #: permutation (verified/repaired instead of a cold argsort).
    sort_reuse: bool = True

    # --- Step-coherence knobs (see docs/PERFORMANCE.md) -----------------
    #: Cross-step octree reuse: "off" rebuilds cold every step (today's
    #: behaviour); "repair" diffs the new SFC keys against the cached
    #: tree and grafts unchanged subtrees
    #: (:mod:`repro.octree.incremental`).  Bitwise-identical trees
    #: either way.
    tree_reuse: str = "off"
    #: Seed tree walks from the previous step's visit list instead of
    #: the root (:mod:`repro.gravity.warmstart`).  Forces and
    #: interaction counts stay bitwise-identical to cold walks.
    walk_warm_start: bool = False
    #: LET drain ordering (:data:`LET_DRAIN_MODES`): "incremental"
    #: walks the boundary batch while LETs are in flight, then drains
    #: them in rank order -- byte-deterministic *and* bitwise-equal to
    #: "deterministic" (identical per-source accumulation sequence).
    let_drain: str = "auto"

    # --- Execution substrate --------------------------------------------
    #: SimMPI transport for parallel runs: "threads" (in-process,
    #: deterministic, GIL-bound), "process" (forked ranks + shared
    #: memory, true multi-core) or "mpi4py" (real MPI under mpiexec).
    #: See :mod:`repro.simmpi.transport` and docs/TRANSPORTS.md.
    transport: str = "threads"
    #: Process-transport watchdog: seconds between noticing a worker
    #: died silently and declaring it failed without a report (booked
    #: as the ``watchdog_grace_seconds`` gauge; see
    #: docs/OBSERVABILITY.md section 13).  Ignored by other transports.
    watchdog_grace: float = 1.0

    def __post_init__(self) -> None:
        if self.force_method not in ("tree", "direct"):
            raise ValueError(f"unknown force_method {self.force_method!r}")
        if self.theta <= 0.0:
            raise ValueError("theta must be positive")
        if self.softening < 0.0:
            raise ValueError("softening must be non-negative")
        if self.dt <= 0.0:
            raise ValueError("dt must be positive")
        if self.mac not in ("bonsai", "bh"):
            raise ValueError(f"unknown MAC {self.mac!r}")
        if self.curve not in ("hilbert", "morton"):
            raise ValueError(f"unknown curve {self.curve!r}")
        if self.chunk < 1:
            raise ValueError("chunk must be >= 1")
        if self.precision not in PRECISIONS:
            raise ValueError(f"unknown precision {self.precision!r}")
        if self.scatter not in SCATTER_MODES:
            raise ValueError(f"unknown scatter {self.scatter!r}")
        if self.precision == "float32" and self.scatter != "segment":
            raise ValueError("precision='float32' requires scatter='segment'")
        from .gravity.backends import registered_backends
        if self.backend not in registered_backends():
            raise ValueError(f"unknown backend {self.backend!r}; "
                             f"registered: {registered_backends()}")
        if self.backend != "numpy" and self.scatter != "segment":
            raise ValueError(f"backend={self.backend!r} requires "
                             f"scatter='segment' (bincount is the numpy "
                             f"reference path)")
        if self.tree_reuse not in TREE_REUSE_MODES:
            raise ValueError(f"unknown tree_reuse {self.tree_reuse!r}; "
                             f"expected one of {TREE_REUSE_MODES}")
        if self.let_drain not in LET_DRAIN_MODES:
            raise ValueError(f"unknown let_drain {self.let_drain!r}; "
                             f"expected one of {LET_DRAIN_MODES}")
        from .simmpi.transport import TRANSPORTS
        if self.transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {self.transport!r}; "
                             f"expected one of {TRANSPORTS}")
        if self.watchdog_grace <= 0.0:
            raise ValueError("watchdog_grace must be positive")
