"""Invariant checkers for the distributed tree-code pipeline.

Each checker raises :class:`InvariantViolation` (an ``AssertionError``
subclass, so plain pytest assertions interoperate) with a specific
message, and returns silently on healthy input.  The distributed
variants take a communicator and are safe to call *mid-run from every
rank simultaneously* -- they only use symmetric collectives, so calling
them under ``if self.invariant_checks:`` on all ranks preserves MPI
collective ordering.

The invariants mirror the pipeline stages of Sec. III-B:

- **conservation** -- particle exchange moves particles, it must not
  create, destroy or alter them (count, mass, momentum);
- **decomposition** -- the SFC boundary keys must partition the key
  space: strictly increasing, disjoint by construction, covering every
  particle key;
- **octree structure** -- parent/child topology, body-range partition,
  and moment consistency of a local tree;
- **LET completeness** -- a pruned (multipole-only) cell of a shipped
  LET must be guaranteed-acceptable under the MAC for its viewer box,
  i.e. the receiver can never need data that was pruned away.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..octree.properties import aabb_distance


class InvariantViolation(AssertionError):
    """A pipeline invariant does not hold."""


def _fail(name: str, msg: str) -> None:
    raise InvariantViolation(f"[{name}] {msg}")


# -- conservation ---------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class ConservationTotals:
    """Snapshot of the globally conserved quantities.

    ``momentum_scale`` is the L1 mass-flux scale used to turn the
    momentum comparison into a meaningful relative test (total momentum
    itself can be arbitrarily close to zero).
    """

    n: int
    mass: float
    momentum: tuple[float, float, float]
    momentum_scale: float

    @classmethod
    def of(cls, particles) -> "ConservationTotals":
        mom = particles.mass[:, None] * particles.vel
        return cls(n=int(particles.n),
                   mass=float(particles.mass.sum()),
                   momentum=tuple(float(x) for x in mom.sum(axis=0)),
                   momentum_scale=float(np.abs(mom).sum()))

    def reduced(self, comm) -> "ConservationTotals":
        """Globally summed totals (collective; call from every rank)."""
        n, mass, scale = comm.allreduce(np.array(
            [self.n, self.mass, self.momentum_scale]))
        mom = comm.allreduce(np.asarray(self.momentum))
        return ConservationTotals(n=int(round(n)), mass=float(mass),
                                  momentum=tuple(float(x) for x in mom),
                                  momentum_scale=float(scale))


def conservation_totals(particles) -> ConservationTotals:
    """Local conserved-quantity snapshot of a particle set."""
    return ConservationTotals.of(particles)


def check_conservation(before: ConservationTotals, after: ConservationTotals,
                       rtol: float = 1e-9) -> None:
    """Particle count, total mass and total momentum must be preserved.

    ``rtol`` absorbs the float-summation reassociation a redistribution
    implies; it is far tighter than any physical drift.
    """
    if before.n != after.n:
        _fail("conservation", f"particle count changed: {before.n} -> {after.n}")
    mass_scale = max(abs(before.mass), abs(after.mass), 1e-300)
    if abs(after.mass - before.mass) > rtol * mass_scale:
        _fail("conservation",
              f"total mass changed: {before.mass!r} -> {after.mass!r} "
              f"(rel {abs(after.mass - before.mass) / mass_scale:.3e})")
    scale = max(before.momentum_scale, after.momentum_scale, 1e-300)
    dp = np.abs(np.subtract(after.momentum, before.momentum)).max()
    if dp > rtol * scale:
        _fail("conservation",
              f"total momentum changed by {dp:.3e} "
              f"(scale {scale:.3e}, rel {dp / scale:.3e})")


def check_exchange_conservation(comm, before: ConservationTotals,
                                particles_after, rtol: float = 1e-9) -> None:
    """Distributed form: globally reduce both sides and compare.

    ``before`` must be this rank's *local* totals taken before the
    exchange; every rank must call this (it is collective).
    """
    g_before = before.reduced(comm)
    g_after = conservation_totals(particles_after).reduced(comm)
    check_conservation(g_before, g_after, rtol=rtol)


# -- domain decomposition -------------------------------------------------

def check_decomposition(boundaries: np.ndarray,
                        keys: np.ndarray | None = None,
                        n_ranks: int | None = None) -> None:
    """Boundary keys must partition the key space.

    Strict monotonicity makes the domains disjoint and non-empty as key
    intervals; ``keys`` (if given) must all fall inside the covered
    range ``[boundaries[0], boundaries[-1])``.
    """
    b = np.asarray(boundaries)
    if b.ndim != 1 or len(b) < 2:
        _fail("decomposition", f"boundaries must be a 1-D array of >= 2 keys, "
              f"got shape {b.shape}")
    if n_ranks is not None and len(b) != n_ranks + 1:
        _fail("decomposition", f"expected {n_ranks + 1} boundaries for "
              f"{n_ranks} ranks, got {len(b)}")
    if not np.all(b[1:] > b[:-1]):
        i = int(np.flatnonzero(~(b[1:] > b[:-1]))[0])
        _fail("decomposition",
              f"boundaries not strictly increasing at index {i}: "
              f"{b[i]!r} -> {b[i + 1]!r} (overlapping or empty domains)")
    if keys is not None and len(keys):
        k = np.asarray(keys)
        if k.min() < b[0] or k.max() >= b[-1]:
            _fail("decomposition",
                  f"keys outside covered range [{b[0]!r}, {b[-1]!r}): "
                  f"min {k.min()!r}, max {k.max()!r}")


def check_ownership(comm, decomp, keys: np.ndarray,
                    n_total: int | None = None) -> None:
    """Post-exchange ownership must be disjoint and total (collective).

    Every local key must lie in this rank's interval, all ranks must
    agree on the boundaries, and the per-rank counts must sum to the
    global particle count.
    """
    b = np.asarray(decomp.boundaries)
    check_decomposition(b, n_ranks=comm.size)
    all_b = comm.allgather(b.tobytes())
    if any(x != all_b[0] for x in all_b):
        _fail("ownership", "ranks disagree on the domain boundaries")
    lo, hi = decomp.key_range(comm.rank)
    k = np.asarray(keys, dtype=np.uint64)
    if len(k):
        bad = np.count_nonzero((k < lo) | (k >= hi))
        if bad:
            _fail("ownership",
                  f"rank {comm.rank} holds {bad} keys outside its domain "
                  f"[{lo}, {hi})")
    total = int(comm.allreduce(len(k)))
    if n_total is not None and total != n_total:
        _fail("ownership",
              f"global particle count {total} != expected {n_total} "
              "(ownership not total)")


# -- octree structure -----------------------------------------------------

def check_octree(tree, pos: np.ndarray, mass: np.ndarray,
                 rtol: float = 1e-8) -> None:
    """Structural + moment invariants of a local octree.

    Checks: ``order`` is a permutation; the root covers every body;
    children tile their parent's body range exactly; leaves and only
    leaves have no children; parent pointers match; cell masses equal
    the mass of their body range; COM and bodies sit inside the cell
    AABB (when moments are present).
    """
    n = len(pos)
    nc = tree.n_cells
    order = np.asarray(tree.order)
    if len(order) != n or not np.array_equal(np.sort(order), np.arange(n)):
        _fail("octree", "order is not a permutation of the particle indices "
              f"(len {len(order)}, n {n})")
    if tree.body_first[0] != 0 or tree.body_count[0] != n:
        _fail("octree", f"root body range [{tree.body_first[0]}, "
              f"+{tree.body_count[0]}) does not cover all {n} bodies")

    internal = np.flatnonzero(tree.n_children > 0)
    for c in internal:
        f, k = int(tree.first_child[c]), int(tree.n_children[c])
        if f < 0 or f + k > nc:
            _fail("octree", f"cell {c}: child range [{f}, {f + k}) out of "
                  f"bounds (n_cells {nc})")
        ch = np.arange(f, f + k)
        if not np.all(tree.cell_parent[ch] == c):
            _fail("octree", f"cell {c}: children do not point back to it")
        if int(tree.body_count[ch].sum()) != int(tree.body_count[c]):
            _fail("octree", f"cell {c}: children cover "
                  f"{int(tree.body_count[ch].sum())} bodies, parent has "
                  f"{int(tree.body_count[c])} (dropped or duplicated bodies)")
        starts = tree.body_first[ch]
        stops = starts + tree.body_count[ch]
        if starts[0] != tree.body_first[c] or np.any(starts[1:] != stops[:-1]):
            _fail("octree", f"cell {c}: children body ranges are not a "
                  "contiguous tiling of the parent range")

    if tree.mass is not None:
        smass = np.asarray(mass)[order]
        csum = np.concatenate([[0.0], np.cumsum(smass)])
        expect = csum[tree.body_first + tree.body_count] - csum[tree.body_first]
        scale = max(float(np.abs(smass).sum()), 1e-300)
        bad = np.abs(tree.mass - expect) > rtol * scale
        if bad.any():
            c = int(np.flatnonzero(bad)[0])
            _fail("octree", f"cell {c}: mass {tree.mass[c]!r} != sum of its "
                  f"body range {expect[c]!r}")
    if tree.bmin is not None and tree.com is not None:
        occupied = tree.body_count > 0
        tol = rtol * max(float(np.abs(tree.bmax[0] - tree.bmin[0]).max()), 1e-300)
        out = occupied & (np.any(tree.com < tree.bmin - tol, axis=1)
                          | np.any(tree.com > tree.bmax + tol, axis=1))
        if out.any():
            c = int(np.flatnonzero(out)[0])
            _fail("octree", f"cell {c}: COM {tree.com[c]} outside its AABB")
        spos = np.asarray(pos)[order]
        leaves = np.flatnonzero((tree.n_children == 0) & occupied)
        for c in leaves:
            f = int(tree.body_first[c])
            t = f + int(tree.body_count[c])
            seg = spos[f:t]
            if np.any(seg < tree.bmin[c] - tol) or np.any(seg > tree.bmax[c] + tol):
                _fail("octree", f"leaf {c}: bodies outside its AABB")


# -- LET completeness -----------------------------------------------------

def check_let(let, viewer_bmin: np.ndarray | None = None,
              viewer_bmax: np.ndarray | None = None,
              total_mass: float | None = None, rtol: float = 1e-8) -> None:
    """Structural and MAC-completeness invariants of a shipped LET.

    Structure: consistent array lengths; pruned cells are childless and
    bodiless; child ranges stay in bounds; exported body ranges tile the
    particle payload exactly (a truncated payload fails here); parent
    masses equal the sum of child masses; leaf masses equal their
    exported particles' mass.

    Completeness: with a viewer box, every pruned cell must satisfy
    ``d(viewer, com) > r_crit`` -- the receiver's group MAC can then
    never require opening a multipole whose children were pruned away.
    """
    nc = let.n_cells
    for f in ("first_child", "n_children", "body_first", "body_count",
              "com", "mass", "quad", "r_crit", "pruned"):
        arr = getattr(let, f)
        if len(arr) != nc:
            _fail("let", f"field {f} has length {len(arr)}, expected {nc}")
    npart = let.n_particles
    if len(let.part_pos) != npart:
        _fail("let", f"part_pos has {len(let.part_pos)} rows for "
              f"{npart} particle masses")

    pruned = np.asarray(let.pruned, dtype=bool)
    if np.any(let.n_children[pruned] != 0) or np.any(let.body_count[pruned] != 0):
        _fail("let", "a pruned (multipole-only) cell still has children "
              "or exported bodies")

    with_children = np.flatnonzero(let.n_children > 0)
    for c in with_children:
        f, k = int(let.first_child[c]), int(let.n_children[c])
        if f <= int(c) or f + k > nc:
            _fail("let", f"cell {c}: child range [{f}, {f + k}) invalid "
                  f"for {nc} cells")

    starts = let.body_first[let.body_count > 0]
    stops = starts + let.body_count[let.body_count > 0]
    order = np.argsort(starts)
    starts, stops = starts[order], stops[order]
    if len(starts):
        if starts[0] != 0 or np.any(starts[1:] != stops[:-1]) \
                or stops[-1] != npart:
            _fail("let", "exported body ranges do not tile the particle "
                  f"payload [0, {npart}) (truncated or overlapping LET)")
    elif npart:
        _fail("let", f"{npart} particles shipped but no cell references them")

    if nc:
        scale = max(abs(float(let.mass[0])), 1e-300)
        for c in with_children:
            f, k = int(let.first_child[c]), int(let.n_children[c])
            s = float(let.mass[f:f + k].sum())
            if abs(s - float(let.mass[c])) > rtol * scale:
                _fail("let", f"cell {c}: mass {let.mass[c]!r} != child sum {s!r}")
        leaves = np.flatnonzero(let.body_count > 0)
        for c in leaves:
            f = int(let.body_first[c])
            t = f + int(let.body_count[c])
            s = float(let.part_mass[f:t].sum())
            if abs(s - float(let.mass[c])) > rtol * scale:
                _fail("let", f"leaf {c}: mass {let.mass[c]!r} != exported "
                      f"particle sum {s!r}")
        if total_mass is not None and \
                abs(float(let.mass[0]) - total_mass) > rtol * scale:
            _fail("let", f"root mass {let.mass[0]!r} != source tree total "
                  f"{total_mass!r}")

    if viewer_bmin is not None and viewer_bmax is not None and pruned.any():
        d = aabb_distance(np.asarray(viewer_bmin), np.asarray(viewer_bmax),
                          let.com[pruned])
        bad = np.atleast_1d(d <= let.r_crit[pruned])
        if bad.any():
            c = int(np.flatnonzero(pruned)[int(np.flatnonzero(bad)[0])])
            _fail("let", f"pruned cell {c} violates the MAC for the viewer "
                  "box: the receiver may need data that was pruned away")
