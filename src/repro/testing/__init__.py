"""Correctness harness: invariant checkers + the differential oracle.

Two complementary verification tools for the distributed pipeline:

- :mod:`repro.testing.invariants` -- checkers for the conserved
  quantities and structural guarantees of each pipeline stage
  (exchange conservation, decomposition partition/ownership, octree
  structure, LET MAC-completeness), callable from any rank mid-run;
- :mod:`repro.testing.differential` -- an oracle that runs the same
  initial conditions through the serial and parallel drivers (at any
  rank count, optionally over a :class:`~repro.faults.FaultyWorld`)
  and asserts force agreement, anchored to direct summation.

See ``docs/TESTING.md`` for the harness guide.
"""

from .differential import (
    DifferentialReport,
    differential_force_report,
    max_rel_difference,
    parallel_forces,
    serial_forces,
)
from .invariants import (
    ConservationTotals,
    InvariantViolation,
    check_conservation,
    check_decomposition,
    check_exchange_conservation,
    check_let,
    check_octree,
    check_ownership,
    conservation_totals,
)

__all__ = [
    "InvariantViolation",
    "ConservationTotals",
    "conservation_totals",
    "check_conservation",
    "check_exchange_conservation",
    "check_decomposition",
    "check_ownership",
    "check_octree",
    "check_let",
    "DifferentialReport",
    "differential_force_report",
    "max_rel_difference",
    "parallel_forces",
    "serial_forces",
]
