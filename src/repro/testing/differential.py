"""Differential verification: serial vs. parallel force agreement.

The distributed pipeline (SFC decomposition -> exchange -> LET -> walk)
must produce forces statistically indistinguishable from the serial
tree-code; the paper's validity rests on it.  This module runs the same
initial conditions through :class:`~repro.core.simulation.Simulation`
and :class:`~repro.core.parallel_simulation.ParallelSimulation` at any
rank count (optionally on a fault-injecting world) and compares the
resulting forces particle-by-particle, with the direct-summation oracle
of :mod:`repro.core.validation` anchoring both to ground truth.

Tolerances: serial and parallel walks take different MAC decisions near
domain boundaries, so their forces differ at the order of the tree
approximation error itself -- which scales like theta**2 for the worst
particle and theta**4 for the median.  The envelopes below were
calibrated against measured differences (a factor >= 4 of headroom) and
double as regression guards.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..config import SimulationConfig
from ..core.simulation import Simulation
from ..core.parallel_simulation import ParallelSimulation
from ..core.validation import ForceAccuracy, validate_forces
from ..particles import ParticleSet
from ..simmpi import SimComm, SimWorld, spmd_run
from .invariants import InvariantViolation


def max_rel_difference(acc_a: np.ndarray, acc_b: np.ndarray) -> float:
    """Largest per-particle relative acceleration difference."""
    num = np.linalg.norm(acc_a - acc_b, axis=1)
    den = np.linalg.norm(acc_b, axis=1) + 1e-300
    return float((num / den).max())


def serial_forces(particles: ParticleSet,
                  config: SimulationConfig) -> tuple[np.ndarray, np.ndarray]:
    """One serial tree force evaluation; returns (acc, phi)."""
    sim = Simulation(particles.copy(), config)
    return sim.compute_forces()


def parallel_forces(particles: ParticleSet, config: SimulationConfig,
                    n_ranks: int, world: SimWorld | None = None,
                    decomposition_method: str = "hierarchical",
                    invariant_checks: bool = False,
                    timeout: float = 300.0,
                    transport: str | None = None
                    ) -> tuple[np.ndarray, np.ndarray]:
    """One distributed force evaluation, gathered back to id order.

    ``world`` may be a :class:`~repro.faults.FaultyWorld` to run the
    identical computation over a misbehaving transport; ``transport``
    selects the substrate ("threads"/"process") when no world is given.
    """
    ps = particles
    n = ps.n

    def prog(comm: SimComm):
        lo = n * comm.rank // comm.size
        hi = n * (comm.rank + 1) // comm.size
        sim = ParallelSimulation(comm, ps.select(np.arange(lo, hi)), config,
                                 decomposition_method=decomposition_method,
                                 invariant_checks=invariant_checks)
        sim.prime()
        return sim.particles.ids, sim._acc, sim._phi

    results = spmd_run(n_ranks, prog, world=world, timeout=timeout,
                       transport=transport)
    ids = np.concatenate([r[0] for r in results])
    acc = np.concatenate([r[1] for r in results])
    phi = np.concatenate([r[2] for r in results])
    order = np.argsort(ids, kind="stable")
    return acc[order], phi[order]


@dataclasses.dataclass(frozen=True)
class DifferentialReport:
    """Outcome of one serial-vs-parallel force comparison."""

    n_particles: int
    n_ranks: int
    theta: float
    median_rel: float        # median serial/parallel relative difference
    max_rel: float           # worst particle
    serial_accuracy: ForceAccuracy    # serial vs. direct summation
    parallel_accuracy: ForceAccuracy  # parallel vs. direct summation

    @property
    def median_tolerance(self) -> float:
        """Median-difference envelope: the theta**4 scaling of the
        quadrupole MAC error, with the same generous factor used by
        :meth:`ForceAccuracy.acceptable`."""
        return max(50.0 * self.theta ** 4 * 1e-2, 1e-9)

    @property
    def max_tolerance(self) -> float:
        """Worst-particle envelope: boundary MAC flips cost O(theta**2)."""
        return 0.3 * self.theta ** 2

    def assert_agrees(self) -> None:
        """Raise :class:`InvariantViolation` outside the envelopes."""
        if self.median_rel > self.median_tolerance:
            raise InvariantViolation(
                f"[differential] median serial/parallel force difference "
                f"{self.median_rel:.3e} exceeds {self.median_tolerance:.3e} "
                f"(ranks={self.n_ranks}, theta={self.theta})")
        if self.max_rel > self.max_tolerance:
            raise InvariantViolation(
                f"[differential] max serial/parallel force difference "
                f"{self.max_rel:.3e} exceeds {self.max_tolerance:.3e} "
                f"(ranks={self.n_ranks}, theta={self.theta})")
        if not self.parallel_accuracy.acceptable(self.theta):
            raise InvariantViolation(
                f"[differential] parallel forces fail the direct-summation "
                f"check: median error {self.parallel_accuracy.median:.3e} "
                f"(ranks={self.n_ranks}, theta={self.theta})")


def differential_force_report(particles: ParticleSet,
                              config: SimulationConfig, n_ranks: int,
                              world: SimWorld | None = None,
                              sample_size: int = 192,
                              rng_seed: int = 0,
                              transport: str | None = None
                              ) -> DifferentialReport:
    """Run both drivers on ``particles`` and compare their forces."""
    acc_s, phi_s = serial_forces(particles, config)
    acc_p, phi_p = parallel_forces(particles, config, n_ranks, world=world,
                                   transport=transport)
    num = np.linalg.norm(acc_p - acc_s, axis=1)
    den = np.linalg.norm(acc_s, axis=1) + 1e-300
    rel = num / den
    rng = np.random.default_rng(rng_seed)
    ser = validate_forces(particles, acc_s, phi_s,
                          eps=config.softening, sample_size=sample_size,
                          rng=np.random.default_rng(rng_seed))
    par = validate_forces(particles, acc_p, phi_p, eps=config.softening,
                          sample_size=sample_size, rng=rng)
    return DifferentialReport(
        n_particles=particles.n, n_ranks=n_ranks, theta=config.theta,
        median_rel=float(np.median(rel)), max_rel=float(rel.max()),
        serial_accuracy=ser, parallel_accuracy=par)
