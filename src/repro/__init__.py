"""repro: a reproduction of Bedorf et al. (SC'14), the Bonsai gravitational
tree-code and its Milky Way Galaxy simulation campaign.

Quickstart::

    from repro import Simulation, SimulationConfig
    from repro.ics import milky_way_model

    sim = Simulation(milky_way_model(100_000),
                     SimulationConfig(theta=0.4, softening=0.05, dt=0.5))
    sim.evolve(10)
    print(sim.diagnostics())

Package layout (see DESIGN.md for the full inventory):

- :mod:`repro.sfc`        -- Morton / Peano-Hilbert keys.
- :mod:`repro.octree`     -- sparse octree, multipole moments, groups.
- :mod:`repro.gravity`    -- force kernels, direct solver, tree walk.
- :mod:`repro.integrator` -- leap-frog, diagnostics.
- :mod:`repro.ics`        -- Milky Way / Plummer initial conditions.
- :mod:`repro.simmpi`     -- in-process SPMD message-passing runtime.
- :mod:`repro.parallel`   -- SFC decomposition, LET exchange, distributed
  gravity.
- :mod:`repro.core`       -- serial and distributed simulation drivers.
- :mod:`repro.perfmodel`  -- calibrated at-scale performance model
  (Fig. 1, Fig. 4, Tables I-II).
- :mod:`repro.analysis`   -- bar strength, surface density, kinematics
  (Fig. 3).
- :mod:`repro.io`         -- snapshots.
- :mod:`repro.faults`     -- deterministic fault injection for SimMPI
  (docs/TESTING.md).
- :mod:`repro.testing`    -- invariant checkers + serial-vs-parallel
  differential oracle.
"""

from . import constants
from .config import SimulationConfig
from .core import ParallelSimulation, Simulation, StepBreakdown
from .particles import ParticleSet

__all__ = [
    "constants",
    "SimulationConfig",
    "ParticleSet",
    "Simulation",
    "ParallelSimulation",
    "StepBreakdown",
]

__version__ = "1.0.0"
