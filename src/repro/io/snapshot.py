"""Snapshot files: compressed npz with particle arrays and metadata.

The paper stores intermediate snapshots "for the dual purpose of
restarting and detailed analysis" (Sec. VI-C); these helpers provide the
same capability for the reproduction.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..particles import ParticleSet

#: Format version written into every snapshot.
SNAPSHOT_VERSION = 1


def save_snapshot(path: str | Path, particles: ParticleSet,
                  time: float = 0.0, step: int = 0,
                  extra: dict | None = None) -> None:
    """Write a snapshot; ``extra`` must be JSON-serialisable metadata."""
    meta = {"version": SNAPSHOT_VERSION, "time": time, "step": step,
            "n": particles.n}
    if extra:
        meta.update(extra)
    np.savez_compressed(
        Path(path),
        pos=particles.pos, vel=particles.vel, mass=particles.mass,
        ids=particles.ids, component=particles.component,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8))


def load_snapshot(path: str | Path) -> tuple[ParticleSet, dict]:
    """Read a snapshot; returns (particles, metadata)."""
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta"].tobytes()).decode())
        if meta.get("version") != SNAPSHOT_VERSION:
            raise ValueError(f"unsupported snapshot version {meta.get('version')}")
        ps = ParticleSet(pos=data["pos"], vel=data["vel"], mass=data["mass"],
                         ids=data["ids"], component=data["component"])
    return ps, meta
