"""Snapshot I/O (restart files and analysis dumps)."""

from .snapshot import load_snapshot, save_snapshot
from .ascii import load_ascii, save_ascii

__all__ = ["save_snapshot", "load_snapshot", "save_ascii", "load_ascii"]
