"""Plain-text snapshot export/import (interoperability format).

Columns: id component mass x y z vx vy vz -- one particle per line,
with a ``# key: value`` metadata header.  Useful for feeding snapshots
to external plotting/analysis tools without a NumPy dependency.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..particles import ParticleSet


def save_ascii(path: str | Path, particles: ParticleSet,
               time: float = 0.0, step: int = 0) -> None:
    """Write a whitespace-separated text snapshot."""
    path = Path(path)
    header = (f"# repro ascii snapshot\n"
              f"# time: {time!r}\n"
              f"# step: {step}\n"
              f"# n: {particles.n}\n"
              f"# columns: id component mass x y z vx vy vz\n")
    data = np.column_stack([
        particles.ids.astype(np.float64),
        particles.component.astype(np.float64),
        particles.mass,
        particles.pos,
        particles.vel,
    ])
    with open(path, "w") as fh:
        fh.write(header)
        np.savetxt(fh, data,
                   fmt=["%d", "%d", "%.17g"] + ["%.17g"] * 6)


def load_ascii(path: str | Path) -> tuple[ParticleSet, dict]:
    """Read a text snapshot written by :func:`save_ascii`."""
    path = Path(path)
    meta: dict = {}
    with open(path) as fh:
        for line in fh:
            if not line.startswith("#"):
                break
            if ":" in line:
                key, _, value = line[1:].partition(":")
                meta[key.strip()] = value.strip()
    data = np.loadtxt(path)
    if data.ndim == 1:
        data = data[None, :]
    if data.shape[1] != 9:
        raise ValueError(f"expected 9 columns, found {data.shape[1]}")
    ps = ParticleSet(pos=data[:, 3:6], vel=data[:, 6:9], mass=data[:, 2],
                     ids=data[:, 0].astype(np.int64),
                     component=data[:, 1].astype(np.int8))
    out = {"time": float(meta.get("time", 0.0)),
           "step": int(meta.get("step", 0)),
           "n": int(meta.get("n", ps.n))}
    return ps, out
