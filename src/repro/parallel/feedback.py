"""Measured-cost load-balance feedback (the loop Sec. III-B1 closes).

The paper rebalances domains from the *measured* execution time of the
gravity kernels of the previous step, capped at 30% above the mean
particle count.  :mod:`~repro.parallel.loadbalance` implements the
capped cut; this module supplies what feeds it: a :class:`CostModel`
per rank that

1. consumes the per-rank ``force_phase_seconds_total{rank,phase}`` /
   ``force_flops_total{rank}`` series that
   :func:`~repro.parallel.gravity_parallel.distributed_forces` books
   into the world's :class:`~repro.obs.metrics.MetricsRegistry` (span
   durations when a tracer is attached, interaction counts otherwise),
2. smooths the per-step deltas with an EWMA so one noisy step cannot
   whipsaw the decomposition,
3. exposes uniform per-particle weights (this rank's smoothed cost
   spread over its particles -- the same aggregate quantity the paper's
   per-GPU timings provide) for
   :func:`~repro.parallel.sampling.sample_weighted_keys`, and
4. decides collectively *when* to re-cut: the paper's "when the
   imbalance exceeds X%" policy, via the slowest-rank/mean ratio of the
   smoothed costs.

The driver (:class:`~repro.core.parallel_simulation.ParallelSimulation`
with ``load_balance="measured"``) threads the weights into
``domain_update`` on the next step, emits the ``lb_imbalance_ratio``
gauge / ``lb_rebalance_total`` counter and a ``rebalance`` span, and
falls back to the flop-estimate weights while the model is cold.
"""

from __future__ import annotations

import math

import numpy as np

from ..simmpi import SimComm
from .gravity_parallel import FORCE_PHASES

#: Load-balance modes of the parallel driver.
LB_MODES = ("measured", "flops", "count")

#: Where a :class:`CostModel` takes its cost samples from.
COST_SOURCES = ("auto", "seconds", "counts")


def imbalance_ratio(costs) -> float:
    """Slowest-rank/mean ratio of a per-rank cost vector (1.0 when the
    total cost is zero: nothing to balance)."""
    costs = np.asarray(costs, dtype=np.float64)
    mean = float(costs.mean()) if len(costs) else 0.0
    if mean <= 0.0:
        return 1.0
    return float(costs.max()) / mean


class CostModel:
    """EWMA model of one rank's measured force cost.

    Parameters
    ----------
    comm:
        This rank's communicator; the model registers its series on the
        world's metrics registry and uses the communicator for the
        collective imbalance reduction.
    source:
        ``"seconds"`` uses the measured force sub-phase durations (the
        whole distributed force computation: gravity walks plus the
        comm stalls a slow rank causes -- the closest analogue of the
        paper's GPU timings this transport can perturb); ``"counts"``
        uses tree-walk interaction flops, which are deterministic;
        ``"auto"`` picks seconds when a tracer is attached (spans
        exist) and counts otherwise.
    alpha:
        EWMA weight of the newest observation (1.0 = no smoothing).
    trigger_ratio:
        Re-cut only when the smoothed slowest-rank/mean cost ratio
        exceeds this (paper policy: rebalance when imbalance exceeds
        X%; the count cap itself stays at 30%).
    cost_phases:
        Which ``force_phase_seconds_total`` phases make up one seconds
        observation (default: all of them).
    """

    def __init__(self, comm: SimComm, source: str = "auto",
                 alpha: float = 0.5, trigger_ratio: float = 1.1,
                 cost_phases=FORCE_PHASES):
        if source not in COST_SOURCES:
            raise ValueError(f"unknown cost source {source!r}; "
                             f"expected one of {COST_SOURCES}")
        if not (0.0 < alpha <= 1.0):
            raise ValueError("alpha must be in (0, 1]")
        if trigger_ratio < 1.0:
            raise ValueError("trigger_ratio must be >= 1.0")
        self.comm = comm
        self.source = source
        self.alpha = alpha
        self.trigger_ratio = trigger_ratio
        self.cost_phases = tuple(cost_phases)
        #: EWMA of this rank's per-step cost (drives the trigger ratio).
        self.smoothed: float | None = None
        #: EWMA of this rank's per-*particle* cost (drives the weights).
        #: Smoothing the intrinsic per-particle quantity -- rather than
        #: dividing a lagging rank total by a fresh particle count --
        #: keeps the feedback loop stable: a domain that just shrank
        #: does not look artificially expensive on the next cut.
        self.smoothed_per_particle: float | None = None
        self.n_local = 0
        self._seen = 0.0
        reg = comm.world.metrics
        self._phase_seconds = reg.counter(
            "force_phase_seconds_total",
            "Measured seconds per distributed-force sub-phase",
            labelnames=("rank", "phase"))
        self._flops = reg.counter(
            "force_flops_total", "Tree-walk interaction flops per rank",
            labelnames=("rank",))
        self._cost_gauge = reg.gauge(
            "lb_rank_cost", "Smoothed per-rank load-balance cost",
            labelnames=("rank",))
        self._imbalance_gauge = reg.gauge(
            "lb_imbalance_ratio",
            "Slowest-rank/mean smoothed cost ratio at the last check")
        self._rebalance_counter = reg.counter(
            "lb_rebalance_total",
            "Measured-cost domain re-cuts triggered so far")

    # -- observation -------------------------------------------------------

    def _use_seconds(self) -> bool:
        if self.source == "seconds":
            return True
        if self.source == "counts":
            return False
        return self.comm.tracer.enabled

    @property
    def warm(self) -> bool:
        """True once at least one force step has been observed."""
        return self.smoothed is not None

    def observe(self, n_local: int) -> float:
        """Fold the newest force measurement into the smoothed cost.

        Reads the cumulative registry series for this rank and takes
        the delta since the previous call as one step's cost sample,
        so whatever produced the metrics (the distributed force path,
        or a test poking counters directly) is the source of truth.
        Returns the updated smoothed cost.
        """
        rank = self.comm.rank
        if self._use_seconds():
            raw = sum(self._phase_seconds.value(rank=rank, phase=p)
                      for p in self.cost_phases)
        else:
            raw = self._flops.value(rank=rank)
        sample = raw - self._seen
        self._seen = raw
        if not math.isfinite(sample) or sample < 0.0:
            sample = 0.0
        sample_pp = sample / max(int(n_local), 1)
        if self.smoothed is None:
            self.smoothed = sample
            self.smoothed_per_particle = sample_pp
        else:
            self.smoothed = self.alpha * sample \
                + (1.0 - self.alpha) * self.smoothed
            self.smoothed_per_particle = self.alpha * sample_pp \
                + (1.0 - self.alpha) * self.smoothed_per_particle
        self.n_local = int(n_local)
        self._cost_gauge.set(self.smoothed, rank=rank)
        return self.smoothed

    # -- decomposition inputs ----------------------------------------------

    def weights(self, n: int) -> np.ndarray | None:
        """Per-particle cost weights for the next domain update.

        This rank's smoothed per-particle cost, uniform over its ``n``
        particles (the same aggregate quantity the paper's per-GPU
        timings provide); ``None`` while cold (or when the smoothed
        cost is zero), signalling the caller to fall back to
        flop-estimate weights.
        """
        if self.smoothed_per_particle is None \
                or self.smoothed_per_particle <= 0.0 or n <= 0:
            return None
        return np.full(n, self.smoothed_per_particle)

    def imbalance(self) -> float:
        """Collective slowest-rank/mean ratio of the smoothed costs.

        All ranks must call this together (it allgathers); every rank
        computes the identical value, so rebalance decisions made from
        it are consistent without further agreement.  Returns ``inf``
        while any rank is cold (forcing the cold-start rebalance path).
        """
        costs = self.comm.allgather(
            -1.0 if self.smoothed is None else self.smoothed)
        if any(c < 0.0 for c in costs):
            return math.inf
        ratio = imbalance_ratio(costs)
        self._imbalance_gauge.set(ratio)
        return ratio

    def should_rebalance(self, ratio: float) -> bool:
        """The trigger policy: re-cut when imbalance exceeds the
        threshold (a cold model always re-cuts)."""
        return ratio > self.trigger_ratio

    def record_rebalance(self) -> None:
        """Count one triggered re-cut (rank 0 books it, so the counter
        counts rebalances, not rebalances x ranks)."""
        if self.comm.rank == 0:
            self._rebalance_counter.inc()
