"""Weighted domain cuts with the paper's 30% particle-count cap.

The decomposer balances the *measured tree-walk cost* (flops) across
domains "with the restriction that a process cannot have 30% more than
the average number of particles per GPU" (Sec. III-B1).  The cut runs on
a sorted sample of keys where each sample carries a cost weight and a
count weight; a greedy sweep emits a boundary whenever the accumulated
cost reaches the per-domain target or the count cap would be exceeded.
"""

from __future__ import annotations

import numpy as np


def cut_weighted_with_cap(keys: np.ndarray, cost: np.ndarray, n_domains: int,
                          cap_ratio: float = 1.3) -> np.ndarray:
    """Cut sorted sample ``keys`` into ``n_domains`` contiguous pieces.

    Parameters
    ----------
    keys:
        Sorted sample keys (uint64).  Each sample also represents one
        unit of particle count.
    cost:
        Non-negative cost weight per sample (e.g. tree-walk flops).
    n_domains:
        Number of domains p.
    cap_ratio:
        Maximum allowed count per domain, relative to the mean
        (paper: 1.3).

    Returns
    -------
    (n_domains + 1,) uint64 boundary keys: domain d owns keys in
    ``[boundaries[d], boundaries[d+1])``; the first entry is 0 and the
    last is the maximum key value.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    cost = np.asarray(cost, dtype=np.float64)
    if len(keys) != len(cost):
        raise ValueError("keys and cost must align")
    if n_domains < 1:
        raise ValueError("n_domains must be >= 1")
    n = len(keys)
    boundaries = np.empty(n_domains + 1, dtype=np.uint64)
    boundaries[0] = 0
    boundaries[-1] = np.uint64(0xFFFFFFFFFFFFFFFF)
    if n_domains == 1:
        return boundaries
    if n == 0:
        # Degenerate: no information; split key space uniformly.  The
        # multiply is pinned to uint64 explicitly: d * span cannot wrap
        # because span <= KEY_MAX // n_domains, so (n_domains-1) * span
        # < KEY_MAX, and the cast keeps numpy from promoting through
        # float64 (which would round large n_domains boundaries).
        span = np.uint64(int(boundaries[-1]) // n_domains)
        boundaries[1:-1] = np.arange(1, n_domains, dtype=np.uint64) * span
        return boundaries

    total_cost = float(cost.sum())
    if total_cost <= 0.0:
        cost = np.ones(n)
        total_cost = float(n)
    cap = int(np.ceil(cap_ratio * n / n_domains)) if np.isfinite(cap_ratio) else n

    cum_cost = np.cumsum(cost)
    idx = 0
    for d in range(1, n_domains):
        remaining_domains = n_domains - d + 1
        # Cost target: split what is left evenly over remaining domains.
        cost_left = total_cost - (cum_cost[idx - 1] if idx > 0 else 0.0)
        target = (cum_cost[idx - 1] if idx > 0 else 0.0) + cost_left / remaining_domains
        j = int(np.searchsorted(cum_cost, target, side="left"))
        # Count cap: at most `cap` samples in this domain...
        j = min(j, idx + cap - 1)
        # ...but leave enough samples for the remaining domains to stay
        # under their caps too (feasibility of the tail).
        min_here = n - cap * (remaining_domains - 1)
        j = max(j, min_here, idx)
        if n >= n_domains:
            # A single sample whose cost exceeds the whole per-domain
            # target (extreme measured skew, e.g. a fault-slowed rank)
            # must not collapse a domain to zero width: every domain
            # keeps at least one sample when enough samples exist.
            j = max(j, idx + 1)
            j = min(j, n - (n_domains - d))
        j = min(j, n - 1)
        boundaries[d] = keys[j]
        idx = j
    # Boundaries must be non-decreasing (duplicate keys can violate this
    # after the cap clamps; enforce).
    boundaries[1:-1] = np.maximum.accumulate(boundaries[1:-1])
    return boundaries


def domain_counts(keys: np.ndarray, boundaries: np.ndarray) -> np.ndarray:
    """Histogram of keys per domain given boundary keys."""
    keys = np.asarray(keys, dtype=np.uint64)
    edges = np.asarray(boundaries, dtype=np.uint64)
    dom = np.searchsorted(edges[1:-1], keys, side="right")
    return np.bincount(dom, minlength=len(boundaries) - 1)
