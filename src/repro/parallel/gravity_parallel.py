"""Distributed gravity: local tree + boundary/LET exchange + partial sums.

Implements the full "Compute gravity" phase of Table II:

1. every rank builds its local tree (a branch of the hypothetical global
   octree, because all ranks share the global bounding box);
2. boundary trees (with domain AABBs) are allgathered -- the paper's
   ``MPI_Allgatherv`` collective;
3. each rank evaluates, symmetrically and without communication, which
   remote ranks can use its boundary directly and which need a full LET
   (typically only the ~40 nearest neighbours);
4. full LETs are exchanged point-to-point;
5. forces are the sum of the local-tree walk plus the remote
   contributions -- by default every batch of arrived structures
   (boundaries or LETs) is concatenated into one
   :class:`~repro.gravity.forest.SourceForest` and walked in a single
   pass ("process them as they arrive", amortized over the whole
   batch); ``config.batch_sources=False`` restores the reference
   one-walk-per-source path, which produces bitwise-identical forces.

Every sub-phase is timed into :attr:`DistributedForceResult.phases` and,
when the communicator's world carries an enabled tracer
(:mod:`repro.obs`), emitted as a ``cat="phase"`` span with interaction
counters attached, using the *same* clock readings -- so the trace and
the driver's :class:`~repro.core.step.StepBreakdown` agree exactly.

Step coherence (see docs/PERFORMANCE.md): with ``config.tree_reuse=
"repair"`` the local tree is built through a :class:`~repro.octree.incremental.TreeCache`
(diff + graft instead of a cold rebuild), with ``config.walk_warm_start``
every walk is seeded from the previous step's visit list through a
:class:`~repro.gravity.warmstart.WalkCache`, and ``config.let_drain``
selects the LET consumption order -- ``"incremental"`` walks the
boundary batch while LETs are still in flight, then drains them in rank
order, which is byte-deterministic *and* bitwise-equal to
``"deterministic"`` (identical per-source accumulation sequence).
Forces and interaction counts are bitwise-identical across every knob
setting; only the wall-clock split between phases changes.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from ..config import SimulationConfig
from ..gravity.flops import InteractionCounts
from ..gravity.forest import (
    SourceForest,
    split_by_source,
    walk_forest_interaction_lists,
)
from ..gravity.treewalk import (
    KernelWorkspace,
    SourceView,
    evaluate_pc_pairs,
    evaluate_pp_pairs,
    group_aabbs,
    target_columns,
    walk_interaction_lists,
)
from ..gravity.warmstart import (
    KIND_OPEN,
    KIND_PC,
    KIND_PP,
    WalkCache,
    warm_walk,
)
from ..octree import Octree, build_octree, cached_octree, compute_moments, compute_opening_radii, make_groups
from ..octree.incremental import TreeCache
from ..particles import ParticleSet
from ..sfc import BoundingBox, SortCache
from ..simmpi import SimComm
from .lettree import LETData, boundary_structure, boundary_sufficient_for, build_let_for_box

#: Message tag for LET payloads.
TAG_LET = 11


def _recv_let(comm: SimComm, src: int) -> LETData:
    """Receive one LET with an explicit, bounded deadline.

    Every LET receive goes through here so none of them inherits an
    unbounded wait: the deadline is the world's recv timeout, and a
    peer that died between the boundary-exchange barrier and its LET
    send surfaces as :class:`~repro.simmpi.errors.RankFailedError`
    within a few poll intervals (well before the deadline), never as a
    hang.  A live-but-stuck peer is bounded by
    :class:`~repro.simmpi.errors.RecvTimeoutError` at the deadline.
    """
    return comm.recv(source=src, tag=TAG_LET,
                     timeout=getattr(comm.world, "timeout", None))

#: Sub-phase keys of :attr:`DistributedForceResult.phases`.
FORCE_PHASES = ("tree_construction", "tree_properties", "boundary_exchange",
                "let_exchange", "gravity_local", "gravity_let",
                "non_hidden_comm")


@dataclasses.dataclass
class DistributedForceResult:
    """Per-rank output of a distributed force computation."""

    acc: np.ndarray
    phi: np.ndarray
    counts_local: InteractionCounts
    counts_let: InteractionCounts
    n_lets_sent: int
    n_lets_received: int
    let_bytes_sent: int
    boundary_bytes: int
    tree: Octree
    #: Wall-clock seconds this rank spent *blocked* waiting for LET
    #: messages -- the measured analogue of Table II's "Non-hidden LET
    #: comm" row.  LETs that arrived while the rank was walking other
    #: sources cost nothing here: that communication was hidden.
    recv_wait_seconds: float = 0.0
    #: Seconds per sub-phase (keys: :data:`FORCE_PHASES`); the driver
    #: maps these onto Table II's :class:`StepBreakdown` rows.
    phases: dict[str, float] = dataclasses.field(default_factory=dict)
    #: Peak frontier width (group, cell) pairs over every walk this
    #: rank ran this step (local + remote; the forest walk reports its
    #: combined peak).  Sizes the walk's transient memory high-water.
    max_frontier: int = 0

    @property
    def counts_total(self) -> InteractionCounts:
        """Combined local + LET interaction tally."""
        return self.counts_local + self.counts_let


def distributed_forces(comm: SimComm, particles: ParticleSet,
                       config: SimulationConfig,
                       global_box: BoundingBox,
                       step: int | None = None,
                       keys: np.ndarray | None = None,
                       sort_cache: SortCache | None = None,
                       workspace: KernelWorkspace | None = None,
                       sort_epoch: int | None = None,
                       tree_cache: TreeCache | None = None,
                       walk_cache: WalkCache | None = None,
                       backend=None,
                       ) -> DistributedForceResult:
    """Compute gravitational forces on this rank's particles.

    ``particles`` must already be domain-decomposed (each rank holds its
    own key interval).  ``global_box`` must be identical on all ranks.
    ``step`` labels emitted trace spans (drivers pass their step count).

    ``keys`` are this rank's SFC keys for ``particles.pos`` if the
    driver already has them (e.g. carried through the exchange);
    ``sort_cache`` reuses the previous step's sort permutation when
    ``config.sort_reuse`` is on; ``workspace`` is a persistent
    :class:`KernelWorkspace` so steady-state evaluation allocates
    nothing (one is created locally when absent).

    ``backend`` is a resolved compute-backend instance (or a registered
    name; ``None`` resolves ``config.backend``) executing the
    interaction kernels -- walks, pair lists and interaction counts are
    backend-independent, so the cross-rank reduction is unchanged.

    ``sort_epoch`` is the driver's layout generation tag: passing a new
    value drops the sort cache's permutation so it never repairs across
    a particle relayout.  ``tree_cache`` (used when ``config.tree_reuse
    == "repair"``) and ``walk_cache`` (used when
    ``config.walk_warm_start``) carry the previous step's tree and walk
    visit lists; every reuse path returns forces and interaction counts
    bitwise-identical to the cold path.

    Returns accelerations/potentials in this rank's particle order.
    """
    n = particles.n
    if n == 0:
        raise ValueError("distributed_forces requires a non-empty local set; "
                         "the 30% cap decomposition never empties a domain")

    tr = comm.tracer
    rank = comm.rank
    # One clock for both the phases dict and the trace spans: the
    # breakdown the driver books and the spans the report reduces are
    # the same measurement, never two drifting ones.
    if tr.enabled:
        def now() -> float:
            return tr.clock.now(rank)
    else:
        now = time.perf_counter
    phases = dict.fromkeys(FORCE_PHASES, 0.0)
    step_arg = {} if step is None else {"step": step}

    def rec(name: str, t0: float, t1: float, **attrs) -> None:
        phases[name] += t1 - t0
        if tr.enabled:
            tr.record(name, rank, t0, t1, cat="phase", **step_arg, **attrs)

    # --- local tree (Tree-construction / Tree-properties phases) ---------
    t0 = now()
    if keys is None:
        keys = global_box.keys(particles.pos, config.curve)
    order = None
    if config.sort_reuse and sort_cache is not None:
        order = sort_cache.order_for(keys, epoch=sort_epoch)
    tree_attrs = {}
    if config.tree_reuse == "repair" and tree_cache is not None:
        tree = cached_octree(tree_cache, particles.pos, nleaf=config.nleaf,
                             curve=config.curve, box=global_box, keys=keys,
                             order=order)
        st = tree_cache.last
        tree_attrs = {"tree_mode": st.mode, "tree_churn": round(st.churn, 6),
                      "tree_cells_repaired": st.cells_active,
                      "tree_cells_grafted": st.cells_grafted}
    else:
        tree = build_octree(particles.pos, nleaf=config.nleaf,
                            curve=config.curve, box=global_box, keys=keys,
                            order=order)
    sort_attr = {} if order is None else {"sort_mode": sort_cache.last_mode}
    t1 = now()
    rec("tree_construction", t0, t1, **sort_attr, **tree_attrs)
    if tree_attrs and tr.enabled:
        # A dedicated repair span (cat="tree" keeps it out of the phase
        # accounting) so trace consumers can chart reuse effectiveness.
        tr.record("tree_repair", rank, t0, t1, cat="tree", **step_arg,
                  **tree_attrs)

    t0 = now()
    compute_moments(tree, particles.pos, particles.mass)
    compute_opening_radii(tree, config.theta, config.mac)
    make_groups(tree, config.ncrit)
    spos = particles.pos[tree.order]
    smass = particles.mass[tree.order]
    rec("tree_properties", t0, now())

    # --- boundary exchange (MPI_Allgatherv of boundary trees) -------------
    t0 = now()
    my_boundary = boundary_structure(tree, spos, smass)
    my_aabb = (tree.bmin[0].copy(), tree.bmax[0].copy())
    comm.set_phase("boundary_exchange")
    gathered = comm.allgather((my_boundary, my_aabb))
    boundaries = [g[0] for g in gathered]
    aabbs = [g[1] for g in gathered]

    # --- symmetric sufficiency checks --------------------------------------
    # (a) whose boundary is enough for me; (b) who needs my full LET.
    need_full_from = [r for r in range(comm.size) if r != comm.rank
                      and not boundary_sufficient_for(boundaries[r], *my_aabb)]
    must_send_to = [r for r in range(comm.size) if r != comm.rank
                    and not boundary_sufficient_for(my_boundary, *aabbs[r])]
    rec("boundary_exchange", t0, now(), bytes=my_boundary.nbytes)

    # --- LET exchange -------------------------------------------------------
    t0 = now()
    comm.set_phase("let_exchange")
    let_bytes = 0
    for r in must_send_to:
        let = build_let_for_box(tree, spos, smass,
                                np.asarray(aabbs[r][0]), np.asarray(aabbs[r][1]))
        let_bytes += let.nbytes
        comm.send(let, dest=r, tag=TAG_LET)
    rec("let_exchange", t0, now(), n_lets=len(must_send_to), bytes=let_bytes)

    # --- force computation ---------------------------------------------------
    comm.set_phase("gravity")
    eps2 = config.softening ** 2
    acc_sorted = np.zeros((n, 3))
    phi_sorted = np.zeros(n)
    counts_local = InteractionCounts(quadrupole=config.quadrupole)
    counts_let = InteractionCounts(quadrupole=config.quadrupole)
    gmin, gmax = group_aabbs(tree, spos)

    from ..gravity.backends import get_backend
    be = get_backend(backend if backend is not None else config.backend)
    # Telemetry: non-default backends stamp their gravity spans (the
    # default stays unstamped so numpy traces are byte-identical to the
    # pre-registry era; perf_from_trace reads absence as "numpy").
    bk_attr = {} if be.name == "numpy" else {"backend": be.name}
    segment = config.scatter == "segment"
    ws = None
    tview = None
    if segment:
        ws = workspace if workspace is not None else be.make_workspace(
            config.chunk, config.precision)
        ws.ensure(config.chunk)
        tview = target_columns(spos)
    eval_kw = dict(chunk=config.chunk, scatter=config.scatter,
                   workspace=ws, tview=tview, backend=be)
    max_frontier = 0
    wcache = walk_cache if config.walk_warm_start else None
    if wcache is not None:
        wcache.begin_step(tree.group_first, tree.group_count)

    # Local tree first (the GPU starts on local work while LETs arrive).
    t0 = now()
    if wcache is not None:
        pc_g, pc_c, pp_g, pp_c, mf, _ = warm_walk(wcache, "local", tree,
                                                  gmin, gmax)
    else:
        pc_g, pc_c, pp_g, pp_c, mf = walk_interaction_lists(tree, gmin, gmax)
    max_frontier = max(max_frontier, mf)
    lview = SourceView.build(tree, spos=spos, smass=smass) if segment else None
    evaluate_pc_pairs(acc_sorted, phi_sorted, spos, tree, pc_g, pc_c,
                      tree.group_first, tree.group_count, eps2,
                      config.quadrupole, counts_local, sview=lview, **eval_kw)
    evaluate_pp_pairs(acc_sorted, phi_sorted, spos, spos, smass,
                      pp_g, pp_c, tree.group_first, tree.group_count,
                      tree.body_first, tree.body_count, eps2, counts_local,
                      exclude_self=True, sview=lview, **eval_kw)
    rec("gravity_local", t0, now(), n_particles=n,
        n_pp=counts_local.n_pp, n_pc=counts_local.n_pc,
        quadrupole=config.quadrupole, **bk_attr)

    def walk_remote(source, src_rank: int, kind: str) -> None:
        nonlocal max_frontier
        pp0, pc0 = counts_let.n_pp, counts_let.n_pc
        t0 = now()
        if wcache is not None:
            pg1, pcl1, pg2, pcl2, mf, _ = warm_walk(
                wcache, (kind, src_rank), source, gmin, gmax)
        else:
            pg1, pcl1, pg2, pcl2, mf = walk_interaction_lists(
                source, gmin, gmax)
        max_frontier = max(max_frontier, mf)
        sview = (SourceView.build(source, spos=source.part_pos,
                                  smass=source.part_mass)
                 if segment else None)
        evaluate_pc_pairs(acc_sorted, phi_sorted, spos, source, pg1, pcl1,
                          tree.group_first, tree.group_count, eps2,
                          config.quadrupole, counts_let, sview=sview,
                          **eval_kw)
        evaluate_pp_pairs(acc_sorted, phi_sorted, spos, source.part_pos,
                          source.part_mass, pg2, pcl2,
                          tree.group_first, tree.group_count,
                          source.body_first, source.body_count, eps2,
                          counts_let, exclude_self=False, sview=sview,
                          **eval_kw)
        rec("gravity_let", t0, now(), src=src_rank,
            n_pp=counts_let.n_pp - pp0, n_pc=counts_let.n_pc - pc0,
            **bk_attr)

    def walk_batch(entries: list) -> None:
        # One frontier pass over every source in the batch (``entries``
        # is a list of ``(source, rank, kind)`` triples).  Each source's
        # pair segment is then evaluated separately, in batch order,
        # with a fresh chunk layout -- accumulation order, and hence
        # float64 bitwise results, match the per-source path.
        nonlocal max_frontier
        pp0, pc0 = counts_let.n_pp, counts_let.n_pc
        t0 = now()
        if wcache is None:
            forest = SourceForest.concatenate([e[0] for e in entries],
                                              [e[1] for e in entries])
            fpc_g, fpc_c, fpp_g, fpp_c, mf = walk_forest_interaction_lists(
                forest, gmin, gmax)
            max_frontier = max(max_frontier, mf)
            pc_gs, pc_cs, pc_starts = split_by_source(forest, fpc_g, fpc_c)
            pp_gs, pp_cs, pp_starts = split_by_source(forest, fpp_g, fpp_c)
            sview = (SourceView.build(forest, spos=forest.part_pos,
                                      smass=forest.part_mass)
                     if segment else None)
            for i in range(forest.n_sources):
                a, b = pc_starts[i], pc_starts[i + 1]
                evaluate_pc_pairs(acc_sorted, phi_sorted, spos, forest,
                                  pc_gs[a:b], pc_cs[a:b],
                                  tree.group_first, tree.group_count, eps2,
                                  config.quadrupole, counts_let, sview=sview,
                                  **eval_kw)
                a, b = pp_starts[i], pp_starts[i + 1]
                evaluate_pp_pairs(acc_sorted, phi_sorted, spos,
                                  forest.part_pos, forest.part_mass,
                                  pp_gs[a:b], pp_cs[a:b],
                                  tree.group_first, tree.group_count,
                                  forest.body_first, forest.body_count, eps2,
                                  counts_let, exclude_self=False, sview=sview,
                                  **eval_kw)
        else:
            # Warm-aware batch: sources with a valid cached visit list
            # retest instead of walking; the misses are concatenated
            # into a sub-forest and walked in one pass (with the opened
            # visits collected so next step they hit).  Evaluation runs
            # in original batch order either way, per source, against
            # the source's own arrays -- bitwise the values the forest
            # slices hold, in the same accumulation order.
            lists: list = [None] * len(entries)
            hit = [wcache.has((k, r), s) for (s, r, k) in entries]
            for i, (s, r, k) in enumerate(entries):
                if hit[i]:
                    pg1, pcl1, pg2, pcl2, mf, _ = warm_walk(
                        wcache, (k, r), s, gmin, gmax)
                    max_frontier = max(max_frontier, mf)
                    lists[i] = (pg1, pcl1, pg2, pcl2)
            miss = [i for i in range(len(entries)) if not hit[i]]
            if miss:
                sub = SourceForest.concatenate(
                    [entries[i][0] for i in miss],
                    [entries[i][1] for i in miss])
                opened: list = []
                fpc_g, fpc_c, fpp_g, fpp_c, mf = \
                    walk_forest_interaction_lists(sub, gmin, gmax,
                                                  open_out=opened)
                max_frontier = max(max_frontier, mf)
                e0 = np.empty(0, dtype=np.int64)
                og = np.concatenate([p[0] for p in opened]) if opened else e0
                oc = np.concatenate([p[1] for p in opened]) if opened else e0
                pc_gs, pc_cs, pc_starts = split_by_source(sub, fpc_g, fpc_c)
                pp_gs, pp_cs, pp_starts = split_by_source(sub, fpp_g, fpp_c)
                op_gs, op_cs, op_starts = split_by_source(sub, og, oc)
                for j, i in enumerate(miss):
                    s, r, k = entries[i]
                    off = int(sub.cell_offsets[j])
                    a, b = pc_starts[j], pc_starts[j + 1]
                    lpc_g, lpc_c = pc_gs[a:b], pc_cs[a:b] - off
                    a, b = pp_starts[j], pp_starts[j + 1]
                    lpp_g, lpp_c = pp_gs[a:b], pp_cs[a:b] - off
                    a, b = op_starts[j], op_starts[j + 1]
                    lop_g, lop_c = op_gs[a:b], op_cs[a:b] - off
                    key = (k, r)
                    level = wcache.entry_levels(key, s)
                    wcache.store(key, s, level,
                                 [(lpc_g, lpc_c, KIND_PC),
                                  (lpp_g, lpp_c, KIND_PP),
                                  (lop_g, lop_c, KIND_OPEN)])
                    wcache.misses += 1
                    lists[i] = (lpc_g, lpc_c, lpp_g, lpp_c)
            for i, (s, r, k) in enumerate(entries):
                pg1, pcl1, pg2, pcl2 = lists[i]
                sview = (SourceView.build(s, spos=s.part_pos,
                                          smass=s.part_mass)
                         if segment else None)
                evaluate_pc_pairs(acc_sorted, phi_sorted, spos, s,
                                  pg1, pcl1,
                                  tree.group_first, tree.group_count, eps2,
                                  config.quadrupole, counts_let, sview=sview,
                                  **eval_kw)
                evaluate_pp_pairs(acc_sorted, phi_sorted, spos,
                                  s.part_pos, s.part_mass, pg2, pcl2,
                                  tree.group_first, tree.group_count,
                                  s.body_first, s.body_count, eps2,
                                  counts_let, exclude_self=False, sview=sview,
                                  **eval_kw)
        rec("gravity_let", t0, now(), n_src=len(entries),
            n_pp=counts_let.n_pp - pp0, n_pc=counts_let.n_pc - pc0,
            **bk_attr)

    # Remote contributions.  Sufficient boundaries are available now;
    # full LETs from near neighbours are processed *as they arrive*
    # (Sec. III-B2: the driver thread feeds whichever LET is ready to
    # the GPU).  Only time spent blocked with nothing to process counts
    # as non-hidden communication.  ``config.let_drain`` picks the
    # consumption order: "deterministic" drains every LET (rank order,
    # blocking) before one combined walk; "incremental" walks the
    # boundary batch immediately -- overlapping the in-flight LET
    # sends -- then drains LETs in rank order, each as its own batch
    # (bitwise-equal: the per-source accumulation sequence is
    # identical); "opportunistic" consumes whichever LET is ready
    # (arrival-order race, fastest on real transports).  "auto" maps to
    # "deterministic" under a deterministic tracer (so traced runs
    # replay identically) and "opportunistic" otherwise.
    drain = config.let_drain
    if drain == "auto":
        drain = "deterministic" if tr.deterministic else "opportunistic"
    sufficient = [r for r in range(comm.size)
                  if r != comm.rank and r not in need_full_from]
    n_received = 0
    pending = list(need_full_from)
    if config.batch_sources:
        # Batched fast path: every drain of available structures is one
        # forest walk instead of one walk per source.
        batch = [(boundaries[r], r, "b") for r in sufficient]
        if drain == "deterministic":
            for r in pending:
                t0 = now()
                let: LETData = _recv_let(comm, r)
                rec("non_hidden_comm", t0, now(), src=r)
                batch.append((let, r, "let"))
                n_received += 1
            pending = []
            if batch:
                walk_batch(batch)
        elif drain == "incremental":
            if batch:
                walk_batch(batch)
            for r in pending:
                t0 = now()
                let = _recv_let(comm, r)
                rec("non_hidden_comm", t0, now(), src=r)
                n_received += 1
                walk_batch([(let, r, "let")])
            pending = []
        else:
            while True:
                for r in [r for r in pending if comm.iprobe(r, TAG_LET)]:
                    batch.append((_recv_let(comm, r), r, "let"))
                    pending.remove(r)
                    n_received += 1
                if not batch and pending:
                    r = pending.pop(0)
                    t0 = now()
                    batch.append((_recv_let(comm, r), r, "let"))
                    rec("non_hidden_comm", t0, now(), src=r)
                    n_received += 1
                if batch:
                    walk_batch(batch)
                    batch = []
                if not pending:
                    break
    else:
        # Reference per-source path: one walk per remote structure
        # ("incremental" and "deterministic" coincide here: both are a
        # rank-order blocking drain).
        for r in sufficient:
            walk_remote(boundaries[r], r, "b")
        while pending:
            if drain == "opportunistic":
                ready = next((r for r in pending if comm.iprobe(r, TAG_LET)),
                             None)
            else:
                ready = None
            if ready is None:
                ready = pending[0]
                t0 = now()
                let = _recv_let(comm, ready)
                rec("non_hidden_comm", t0, now(), src=ready)
            else:
                let = _recv_let(comm, ready)
            pending.remove(ready)
            n_received += 1
            walk_remote(let, ready, "let")

    acc = np.empty_like(acc_sorted)
    phi = np.empty_like(phi_sorted)
    acc[tree.order] = acc_sorted
    phi[tree.order] = phi_sorted

    # Book the per-rank measurement into the world's metrics registry.
    # These series are what the measured-cost load balancer
    # (:mod:`repro.parallel.feedback`) consumes to close Sec. III-B1's
    # feedback loop; they also make per-rank force cost scrapeable.
    reg = comm.world.metrics
    phase_seconds = reg.counter(
        "force_phase_seconds_total",
        "Measured seconds per distributed-force sub-phase",
        labelnames=("rank", "phase"))
    for name in FORCE_PHASES:
        phase_seconds.inc(max(phases[name], 0.0), rank=rank, phase=name)
    reg.counter("force_flops_total",
                "Tree-walk interaction flops per rank",
                labelnames=("rank",)).inc(
        (counts_local + counts_let).flops, rank=rank)
    from ..obs.perf import book_force_rate
    book_force_rate(reg, rank, (counts_local + counts_let).flops,
                    max(phases["gravity_local"], 0.0)
                    + max(phases["gravity_let"], 0.0))
    reg.gauge("walk_max_frontier",
              "Peak (group, cell) frontier width over this rank's tree "
              "walks in the latest force computation",
              labelnames=("rank",)).set(max_frontier, rank=rank)
    if config.tree_reuse == "repair" and tree_cache is not None \
            and tree_cache.last is not None:
        reg.gauge("tree_cells_repaired",
                  "Cells the incremental tree updater rebuilt (vs "
                  "grafted) in the latest force computation",
                  labelnames=("rank",)).set(
            tree_cache.last.cells_active, rank=rank)
    if wcache is not None:
        reg.counter("walk_cache_hits_total",
                    "Cached walk decisions reused by warm-started "
                    "tree walks",
                    labelnames=("rank",)).inc(wcache.last_hits, rank=rank)

    return DistributedForceResult(
        acc=acc, phi=phi,
        counts_local=counts_local, counts_let=counts_let,
        n_lets_sent=len(must_send_to), n_lets_received=n_received,
        let_bytes_sent=let_bytes,
        boundary_bytes=my_boundary.nbytes,
        tree=tree,
        recv_wait_seconds=phases["non_hidden_comm"],
        phases=phases,
        max_frontier=int(max_frontier),
    )
