"""Distributed gravity: local tree + boundary/LET exchange + partial sums.

Implements the full "Compute gravity" phase of Table II:

1. every rank builds its local tree (a branch of the hypothetical global
   octree, because all ranks share the global bounding box);
2. boundary trees (with domain AABBs) are allgathered -- the paper's
   ``MPI_Allgatherv`` collective;
3. each rank evaluates, symmetrically and without communication, which
   remote ranks can use its boundary directly and which need a full LET
   (typically only the ~40 nearest neighbours);
4. full LETs are exchanged point-to-point;
5. forces are the sum of the local-tree walk plus the remote
   contributions -- by default every batch of arrived structures
   (boundaries or LETs) is concatenated into one
   :class:`~repro.gravity.forest.SourceForest` and walked in a single
   pass ("process them as they arrive", amortized over the whole
   batch); ``config.batch_sources=False`` restores the reference
   one-walk-per-source path, which produces bitwise-identical forces.

Every sub-phase is timed into :attr:`DistributedForceResult.phases` and,
when the communicator's world carries an enabled tracer
(:mod:`repro.obs`), emitted as a ``cat="phase"`` span with interaction
counters attached, using the *same* clock readings -- so the trace and
the driver's :class:`~repro.core.step.StepBreakdown` agree exactly.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from ..config import SimulationConfig
from ..gravity.flops import InteractionCounts
from ..gravity.forest import (
    SourceForest,
    split_by_source,
    walk_forest_interaction_lists,
)
from ..gravity.treewalk import (
    KernelWorkspace,
    SourceView,
    evaluate_pc_pairs,
    evaluate_pp_pairs,
    group_aabbs,
    target_columns,
    walk_interaction_lists,
)
from ..octree import Octree, build_octree, compute_moments, compute_opening_radii, make_groups
from ..particles import ParticleSet
from ..sfc import BoundingBox, SortCache
from ..simmpi import SimComm
from .lettree import LETData, boundary_structure, boundary_sufficient_for, build_let_for_box

#: Message tag for LET payloads.
TAG_LET = 11


def _recv_let(comm: SimComm, src: int) -> LETData:
    """Receive one LET with an explicit, bounded deadline.

    Every LET receive goes through here so none of them inherits an
    unbounded wait: the deadline is the world's recv timeout, and a
    peer that died between the boundary-exchange barrier and its LET
    send surfaces as :class:`~repro.simmpi.errors.RankFailedError`
    within a few poll intervals (well before the deadline), never as a
    hang.  A live-but-stuck peer is bounded by
    :class:`~repro.simmpi.errors.RecvTimeoutError` at the deadline.
    """
    return comm.recv(source=src, tag=TAG_LET,
                     timeout=getattr(comm.world, "timeout", None))

#: Sub-phase keys of :attr:`DistributedForceResult.phases`.
FORCE_PHASES = ("tree_construction", "tree_properties", "boundary_exchange",
                "let_exchange", "gravity_local", "gravity_let",
                "non_hidden_comm")


@dataclasses.dataclass
class DistributedForceResult:
    """Per-rank output of a distributed force computation."""

    acc: np.ndarray
    phi: np.ndarray
    counts_local: InteractionCounts
    counts_let: InteractionCounts
    n_lets_sent: int
    n_lets_received: int
    let_bytes_sent: int
    boundary_bytes: int
    tree: Octree
    #: Wall-clock seconds this rank spent *blocked* waiting for LET
    #: messages -- the measured analogue of Table II's "Non-hidden LET
    #: comm" row.  LETs that arrived while the rank was walking other
    #: sources cost nothing here: that communication was hidden.
    recv_wait_seconds: float = 0.0
    #: Seconds per sub-phase (keys: :data:`FORCE_PHASES`); the driver
    #: maps these onto Table II's :class:`StepBreakdown` rows.
    phases: dict[str, float] = dataclasses.field(default_factory=dict)
    #: Peak frontier width (group, cell) pairs over every walk this
    #: rank ran this step (local + remote; the forest walk reports its
    #: combined peak).  Sizes the walk's transient memory high-water.
    max_frontier: int = 0

    @property
    def counts_total(self) -> InteractionCounts:
        """Combined local + LET interaction tally."""
        return self.counts_local + self.counts_let


def distributed_forces(comm: SimComm, particles: ParticleSet,
                       config: SimulationConfig,
                       global_box: BoundingBox,
                       step: int | None = None,
                       keys: np.ndarray | None = None,
                       sort_cache: SortCache | None = None,
                       workspace: KernelWorkspace | None = None,
                       ) -> DistributedForceResult:
    """Compute gravitational forces on this rank's particles.

    ``particles`` must already be domain-decomposed (each rank holds its
    own key interval).  ``global_box`` must be identical on all ranks.
    ``step`` labels emitted trace spans (drivers pass their step count).

    ``keys`` are this rank's SFC keys for ``particles.pos`` if the
    driver already has them (e.g. carried through the exchange);
    ``sort_cache`` reuses the previous step's sort permutation when
    ``config.sort_reuse`` is on; ``workspace`` is a persistent
    :class:`KernelWorkspace` so steady-state evaluation allocates
    nothing (one is created locally when absent).

    Returns accelerations/potentials in this rank's particle order.
    """
    n = particles.n
    if n == 0:
        raise ValueError("distributed_forces requires a non-empty local set; "
                         "the 30% cap decomposition never empties a domain")

    tr = comm.tracer
    rank = comm.rank
    # One clock for both the phases dict and the trace spans: the
    # breakdown the driver books and the spans the report reduces are
    # the same measurement, never two drifting ones.
    if tr.enabled:
        def now() -> float:
            return tr.clock.now(rank)
    else:
        now = time.perf_counter
    phases = dict.fromkeys(FORCE_PHASES, 0.0)
    step_arg = {} if step is None else {"step": step}

    def rec(name: str, t0: float, t1: float, **attrs) -> None:
        phases[name] += t1 - t0
        if tr.enabled:
            tr.record(name, rank, t0, t1, cat="phase", **step_arg, **attrs)

    # --- local tree (Tree-construction / Tree-properties phases) ---------
    t0 = now()
    if keys is None:
        keys = global_box.keys(particles.pos, config.curve)
    order = None
    if config.sort_reuse and sort_cache is not None:
        order = sort_cache.order_for(keys)
    tree = build_octree(particles.pos, nleaf=config.nleaf, curve=config.curve,
                        box=global_box, keys=keys, order=order)
    sort_attr = {} if order is None else {"sort_mode": sort_cache.last_mode}
    rec("tree_construction", t0, now(), **sort_attr)

    t0 = now()
    compute_moments(tree, particles.pos, particles.mass)
    compute_opening_radii(tree, config.theta, config.mac)
    make_groups(tree, config.ncrit)
    spos = particles.pos[tree.order]
    smass = particles.mass[tree.order]
    rec("tree_properties", t0, now())

    # --- boundary exchange (MPI_Allgatherv of boundary trees) -------------
    t0 = now()
    my_boundary = boundary_structure(tree, spos, smass)
    my_aabb = (tree.bmin[0].copy(), tree.bmax[0].copy())
    comm.set_phase("boundary_exchange")
    gathered = comm.allgather((my_boundary, my_aabb))
    boundaries = [g[0] for g in gathered]
    aabbs = [g[1] for g in gathered]

    # --- symmetric sufficiency checks --------------------------------------
    # (a) whose boundary is enough for me; (b) who needs my full LET.
    need_full_from = [r for r in range(comm.size) if r != comm.rank
                      and not boundary_sufficient_for(boundaries[r], *my_aabb)]
    must_send_to = [r for r in range(comm.size) if r != comm.rank
                    and not boundary_sufficient_for(my_boundary, *aabbs[r])]
    rec("boundary_exchange", t0, now(), bytes=my_boundary.nbytes)

    # --- LET exchange -------------------------------------------------------
    t0 = now()
    comm.set_phase("let_exchange")
    let_bytes = 0
    for r in must_send_to:
        let = build_let_for_box(tree, spos, smass,
                                np.asarray(aabbs[r][0]), np.asarray(aabbs[r][1]))
        let_bytes += let.nbytes
        comm.send(let, dest=r, tag=TAG_LET)
    rec("let_exchange", t0, now(), n_lets=len(must_send_to), bytes=let_bytes)

    # --- force computation ---------------------------------------------------
    comm.set_phase("gravity")
    eps2 = config.softening ** 2
    acc_sorted = np.zeros((n, 3))
    phi_sorted = np.zeros(n)
    counts_local = InteractionCounts(quadrupole=config.quadrupole)
    counts_let = InteractionCounts(quadrupole=config.quadrupole)
    gmin, gmax = group_aabbs(tree, spos)

    segment = config.scatter == "segment"
    ws = None
    tview = None
    if segment:
        ws = workspace if workspace is not None else KernelWorkspace(
            config.chunk, config.precision)
        ws.ensure(config.chunk)
        tview = target_columns(spos)
    eval_kw = dict(chunk=config.chunk, scatter=config.scatter,
                   workspace=ws, tview=tview)
    max_frontier = 0

    # Local tree first (the GPU starts on local work while LETs arrive).
    t0 = now()
    pc_g, pc_c, pp_g, pp_c, mf = walk_interaction_lists(tree, gmin, gmax)
    max_frontier = max(max_frontier, mf)
    lview = SourceView.build(tree, spos=spos, smass=smass) if segment else None
    evaluate_pc_pairs(acc_sorted, phi_sorted, spos, tree, pc_g, pc_c,
                      tree.group_first, tree.group_count, eps2,
                      config.quadrupole, counts_local, sview=lview, **eval_kw)
    evaluate_pp_pairs(acc_sorted, phi_sorted, spos, spos, smass,
                      pp_g, pp_c, tree.group_first, tree.group_count,
                      tree.body_first, tree.body_count, eps2, counts_local,
                      exclude_self=True, sview=lview, **eval_kw)
    rec("gravity_local", t0, now(), n_particles=n,
        n_pp=counts_local.n_pp, n_pc=counts_local.n_pc,
        quadrupole=config.quadrupole)

    def walk_remote(source, src_rank: int) -> None:
        nonlocal max_frontier
        pp0, pc0 = counts_let.n_pp, counts_let.n_pc
        t0 = now()
        pg1, pcl1, pg2, pcl2, mf = walk_interaction_lists(source, gmin, gmax)
        max_frontier = max(max_frontier, mf)
        sview = (SourceView.build(source, spos=source.part_pos,
                                  smass=source.part_mass)
                 if segment else None)
        evaluate_pc_pairs(acc_sorted, phi_sorted, spos, source, pg1, pcl1,
                          tree.group_first, tree.group_count, eps2,
                          config.quadrupole, counts_let, sview=sview,
                          **eval_kw)
        evaluate_pp_pairs(acc_sorted, phi_sorted, spos, source.part_pos,
                          source.part_mass, pg2, pcl2,
                          tree.group_first, tree.group_count,
                          source.body_first, source.body_count, eps2,
                          counts_let, exclude_self=False, sview=sview,
                          **eval_kw)
        rec("gravity_let", t0, now(), src=src_rank,
            n_pp=counts_let.n_pp - pp0, n_pc=counts_let.n_pc - pc0)

    def walk_batch(sources: list, ranks: list[int]) -> None:
        # One frontier pass over every source in the batch.  Each
        # source's pair segment is then evaluated separately, in batch
        # order, with a fresh chunk layout -- accumulation order, and
        # hence float64 bitwise results, match the per-source path.
        nonlocal max_frontier
        pp0, pc0 = counts_let.n_pp, counts_let.n_pc
        t0 = now()
        forest = SourceForest.concatenate(sources, ranks)
        fpc_g, fpc_c, fpp_g, fpp_c, mf = walk_forest_interaction_lists(
            forest, gmin, gmax)
        max_frontier = max(max_frontier, mf)
        pc_gs, pc_cs, pc_starts = split_by_source(forest, fpc_g, fpc_c)
        pp_gs, pp_cs, pp_starts = split_by_source(forest, fpp_g, fpp_c)
        sview = (SourceView.build(forest, spos=forest.part_pos,
                                  smass=forest.part_mass)
                 if segment else None)
        for i in range(forest.n_sources):
            a, b = pc_starts[i], pc_starts[i + 1]
            evaluate_pc_pairs(acc_sorted, phi_sorted, spos, forest,
                              pc_gs[a:b], pc_cs[a:b],
                              tree.group_first, tree.group_count, eps2,
                              config.quadrupole, counts_let, sview=sview,
                              **eval_kw)
            a, b = pp_starts[i], pp_starts[i + 1]
            evaluate_pp_pairs(acc_sorted, phi_sorted, spos,
                              forest.part_pos, forest.part_mass,
                              pp_gs[a:b], pp_cs[a:b],
                              tree.group_first, tree.group_count,
                              forest.body_first, forest.body_count, eps2,
                              counts_let, exclude_self=False, sview=sview,
                              **eval_kw)
        rec("gravity_let", t0, now(), n_src=forest.n_sources,
            n_pp=counts_let.n_pp - pp0, n_pc=counts_let.n_pc - pc0)

    # Remote contributions.  Sufficient boundaries are available now;
    # full LETs from near neighbours are processed *as they arrive*
    # (Sec. III-B2: the driver thread feeds whichever LET is ready to
    # the GPU).  Only time spent blocked with nothing to process counts
    # as non-hidden communication.  Under a deterministic tracer the
    # arrival race is removed: LETs are consumed in rank order with a
    # blocking recv, so traced runs replay identically.
    sufficient = [r for r in range(comm.size)
                  if r != comm.rank and r not in need_full_from]
    n_received = 0
    pending = list(need_full_from)
    if config.batch_sources:
        # Batched fast path: every drain of available structures is one
        # forest walk instead of one walk per source.
        batch = [(boundaries[r], r) for r in sufficient]
        if tr.deterministic:
            for r in pending:
                t0 = now()
                let: LETData = _recv_let(comm, r)
                rec("non_hidden_comm", t0, now(), src=r)
                batch.append((let, r))
                n_received += 1
            pending = []
            if batch:
                walk_batch([s for s, _ in batch], [r for _, r in batch])
        else:
            while True:
                for r in [r for r in pending if comm.iprobe(r, TAG_LET)]:
                    batch.append((_recv_let(comm, r), r))
                    pending.remove(r)
                    n_received += 1
                if not batch and pending:
                    r = pending.pop(0)
                    t0 = now()
                    batch.append((_recv_let(comm, r), r))
                    rec("non_hidden_comm", t0, now(), src=r)
                    n_received += 1
                if batch:
                    walk_batch([s for s, _ in batch], [r for _, r in batch])
                    batch = []
                if not pending:
                    break
    else:
        # Reference per-source path: one walk per remote structure.
        for r in sufficient:
            walk_remote(boundaries[r], r)
        while pending:
            if tr.deterministic:
                ready = None
            else:
                ready = next((r for r in pending if comm.iprobe(r, TAG_LET)),
                             None)
            if ready is None:
                ready = pending[0]
                t0 = now()
                let = _recv_let(comm, ready)
                rec("non_hidden_comm", t0, now(), src=ready)
            else:
                let = _recv_let(comm, ready)
            pending.remove(ready)
            n_received += 1
            walk_remote(let, ready)

    acc = np.empty_like(acc_sorted)
    phi = np.empty_like(phi_sorted)
    acc[tree.order] = acc_sorted
    phi[tree.order] = phi_sorted

    # Book the per-rank measurement into the world's metrics registry.
    # These series are what the measured-cost load balancer
    # (:mod:`repro.parallel.feedback`) consumes to close Sec. III-B1's
    # feedback loop; they also make per-rank force cost scrapeable.
    reg = comm.world.metrics
    phase_seconds = reg.counter(
        "force_phase_seconds_total",
        "Measured seconds per distributed-force sub-phase",
        labelnames=("rank", "phase"))
    for name in FORCE_PHASES:
        phase_seconds.inc(max(phases[name], 0.0), rank=rank, phase=name)
    reg.counter("force_flops_total",
                "Tree-walk interaction flops per rank",
                labelnames=("rank",)).inc(
        (counts_local + counts_let).flops, rank=rank)
    from ..obs.perf import book_force_rate
    book_force_rate(reg, rank, (counts_local + counts_let).flops,
                    max(phases["gravity_local"], 0.0)
                    + max(phases["gravity_let"], 0.0))
    reg.gauge("walk_max_frontier",
              "Peak (group, cell) frontier width over this rank's tree "
              "walks in the latest force computation",
              labelnames=("rank",)).set(max_frontier, rank=rank)

    return DistributedForceResult(
        acc=acc, phi=phi,
        counts_local=counts_local, counts_let=counts_let,
        n_lets_sent=len(must_send_to), n_lets_received=n_received,
        let_bytes_sent=let_bytes,
        boundary_bytes=my_boundary.nbytes,
        tree=tree,
        recv_wait_seconds=phases["non_hidden_comm"],
        phases=phases,
        max_frontier=int(max_frontier),
    )
