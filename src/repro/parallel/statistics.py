"""Aggregate per-rank run statistics into Table II-style global records.

The paper reports, per configuration, the slowest-rank timing of each
phase, the mean interaction counts and the resulting machine-wide rates.
These helpers do the same reduction over the per-rank
:class:`~repro.core.step.StepBreakdown` histories of a SimMPI run.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.step import StepBreakdown, TABLE2_PHASES
from ..gravity.flops import InteractionCounts


@dataclasses.dataclass(frozen=True)
class RunStatistics:
    """Global view of one distributed run."""

    n_ranks: int
    n_particles_total: int
    mean_step: StepBreakdown      # phase maxima over ranks, step-averaged
    imbalance: float              # max/mean particle count
    interactions_per_particle: tuple[float, float]   # (pp, pc)
    recv_wait_max: float          # slowest rank's blocked-recv seconds

    @property
    def gpu_gflops_total(self) -> float:
        """Aggregate force-kernel rate across ranks (Gflops)."""
        t = self.mean_step.gravity_local + self.mean_step.gravity_let
        if t <= 0:
            return 0.0
        return self.mean_step.counts.flops / t / 1.0e9


def aggregate_rank_histories(histories: list[list[StepBreakdown]],
                             particle_counts: list[int],
                             recv_waits: list[float] | None = None
                             ) -> RunStatistics:
    """Reduce per-rank step histories into one :class:`RunStatistics`.

    Phase times take the max over ranks per step (the step finishes when
    the slowest rank does), then average over steps; interaction counts
    are summed over ranks.
    """
    if not histories or not histories[0]:
        raise ValueError("no step history to aggregate")
    n_ranks = len(histories)
    n_steps = min(len(h) for h in histories)

    mean = StepBreakdown()
    total_counts = InteractionCounts()
    for k in range(n_steps):
        for phase in TABLE2_PHASES:
            worst = max(getattr(h[k], phase) for h in histories)
            setattr(mean, phase, getattr(mean, phase) + worst / n_steps)
        for h in histories:
            total_counts.n_pp += h[k].counts.n_pp
            total_counts.n_pc += h[k].counts.n_pc
    mean.counts = InteractionCounts(n_pp=total_counts.n_pp // n_steps,
                                    n_pc=total_counts.n_pc // n_steps,
                                    quadrupole=histories[0][0].counts.quadrupole)
    n_total = int(np.sum(particle_counts))
    mean.n_particles = n_total
    counts = np.asarray(particle_counts, dtype=np.float64)
    return RunStatistics(
        n_ranks=n_ranks,
        n_particles_total=n_total,
        mean_step=mean,
        imbalance=float(counts.max() / counts.mean()),
        interactions_per_particle=(mean.counts.n_pp / n_total,
                                   mean.counts.n_pc / n_total),
        recv_wait_max=float(max(recv_waits)) if recv_waits else 0.0,
    )


def run_statistics(sims) -> RunStatistics:
    """One-call Table II reduction over ``run_parallel_simulation`` output.

    Takes the per-rank :class:`~repro.core.parallel_simulation.\
ParallelSimulation` objects and feeds their histories, final particle
    counts and cumulative blocked-recv waits to
    :func:`aggregate_rank_histories`.
    """
    return aggregate_rank_histories(
        [s.history for s in sims],
        [s.particles.n for s in sims],
        recv_waits=[s.recv_wait_seconds for s in sims])
