"""Domain decomposition state and the per-step domain update.

A :class:`DomainDecomposition` is the list of p+1 Peano-Hilbert boundary
keys produced by the sampling method; rank d owns the key interval
``[boundaries[d], boundaries[d+1])``.  Because the boundaries are SFC
keys, every domain is a union of octree cells and every local tree is a
non-overlapping branch of the hypothetical global octree (Sec. III-B1) --
the property that lets LET communication hide behind computation.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..simmpi import SimComm
from .loadbalance import domain_counts
from .sampling import hierarchical_sample_boundaries, serial_sample_boundaries


@dataclasses.dataclass(frozen=True)
class DomainDecomposition:
    """Immutable snapshot of the p-way key-space partition."""

    boundaries: np.ndarray   # (p + 1,) uint64

    @property
    def n_domains(self) -> int:
        """Number of domains p."""
        return len(self.boundaries) - 1

    def rank_of_keys(self, keys: np.ndarray) -> np.ndarray:
        """Owning rank for each key."""
        keys = np.asarray(keys, dtype=np.uint64)
        return np.searchsorted(self.boundaries[1:-1], keys, side="right")

    def counts(self, keys: np.ndarray) -> np.ndarray:
        """Per-domain key counts for a local key array."""
        return domain_counts(keys, self.boundaries)

    def key_range(self, rank: int) -> tuple[int, int]:
        """[lo, hi) key interval of one domain."""
        return int(self.boundaries[rank]), int(self.boundaries[rank + 1])


def domain_update(comm: SimComm, keys_sorted: np.ndarray,
                  weights: np.ndarray | None = None,
                  method: str = "hierarchical",
                  rate1: float = 0.002, rate2: float = 0.02,
                  cap_ratio: float = 1.3) -> DomainDecomposition:
    """Recompute the decomposition from the current particle keys.

    This is the "Domain Update" row of Table II: sampling, gathering,
    cutting and broadcasting new boundaries.

    Parameters
    ----------
    keys_sorted:
        This rank's particle keys, sorted ascending.
    weights:
        Optional per-particle cost estimates (tree-walk flops from the
        previous step); evens out the compute load.
    method:
        ``"hierarchical"`` (the paper's px x py scheme) or ``"serial"``
        (the original single-DD-process method, kept for the ablation).
    """
    if method == "hierarchical":
        b = hierarchical_sample_boundaries(comm, keys_sorted, weights,
                                           comm.size, rate1, rate2, cap_ratio)
    elif method == "serial":
        b = serial_sample_boundaries(comm, keys_sorted, weights, comm.size,
                                     rate2, cap_ratio)
    else:
        raise ValueError(f"unknown decomposition method {method!r}")
    return DomainDecomposition(boundaries=b)
