"""Local Essential Trees and boundary structures (Sec. III-B2).

A :class:`LETData` is a pruned copy of a local octree shipped to remote
ranks: internal cells that a remote viewer might open keep their
children; cells the viewer is guaranteed to accept become multipole-only
leaves; local *leaf* cells the viewer must open carry their particles.
The same structure serves as both the paper's "boundary tree" (pruned
for the most conservative viewer -- anything outside the local domain
box) and the full LET (pruned for one specific remote domain box).

Consistency guarantee: a cell is pruned only when ``d(viewer box, COM) >
r_crit``.  Any walk group on the receiving side lies inside the viewer
box, so its MAC distance can only be larger, and the multipole is always
accepted -- the receiver can never need data that was pruned away.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..octree import Octree, compute_opening_radii
from ..octree.properties import aabb_distance
from ..simmpi.traffic import payload_bytes


@dataclasses.dataclass
class LETData:
    """A shippable pruned tree; duck-types the source-tree interface of
    :func:`repro.gravity.treewalk.tree_forces`."""

    first_child: np.ndarray
    n_children: np.ndarray
    body_first: np.ndarray
    body_count: np.ndarray
    com: np.ndarray
    mass: np.ndarray
    quad: np.ndarray
    r_crit: np.ndarray
    pruned: np.ndarray          # True where a multipole-only leaf
    part_pos: np.ndarray        # exported particles (LET-local order)
    part_mass: np.ndarray

    @property
    def n_cells(self) -> int:
        """Number of cells in the pruned tree."""
        return len(self.mass)

    @property
    def n_particles(self) -> int:
        """Number of exported particles."""
        return len(self.part_mass)

    @property
    def nbytes(self) -> int:
        """Wire size of the structure."""
        return sum(payload_bytes(getattr(self, f.name))
                   for f in dataclasses.fields(self))

    def total_mass(self) -> float:
        """Mass represented by the root (sanity check)."""
        return float(self.mass[0]) if self.n_cells else 0.0


def prune_tree(tree: Octree, spos: np.ndarray, smass: np.ndarray,
               open_for_viewer) -> LETData:
    """Breadth-first prune of ``tree`` under an opening predicate.

    Parameters
    ----------
    tree:
        Local octree with moments and ``r_crit`` computed.
    spos, smass:
        Particle positions/masses in the tree's *sorted* order.
    open_for_viewer:
        Callable mapping an array of cell indices to a boolean array --
        True where the viewer might open the cell (distance < r_crit).

    Returns
    -------
    LETData with remapped child pointers and particle ranges.
    """
    out_first_child: list[np.ndarray] = []
    out_n_children: list[np.ndarray] = []
    out_body_first: list[np.ndarray] = []
    out_body_count: list[np.ndarray] = []
    out_cells: list[np.ndarray] = []
    out_pruned: list[np.ndarray] = []
    part_ranges: list[tuple[int, int]] = []

    frontier = np.zeros(1, dtype=np.int64)
    n_out = 0          # cells emitted so far
    n_parts = 0        # particles exported so far

    while len(frontier):
        opened = np.asarray(open_for_viewer(frontier), dtype=bool)
        is_leaf = tree.n_children[frontier] == 0
        descend = opened & ~is_leaf
        export_parts = opened & is_leaf

        n_batch = len(frontier)
        fc = np.full(n_batch, -1, dtype=np.int64)
        nc = np.zeros(n_batch, dtype=np.int64)
        bf = np.zeros(n_batch, dtype=np.int64)
        bc = np.zeros(n_batch, dtype=np.int64)

        # Children of descending cells land contiguously in the next batch.
        child_counts = np.where(descend, tree.n_children[frontier], 0)
        child_offsets = np.cumsum(child_counts) - child_counts
        next_base = n_out + n_batch
        fc[descend] = next_base + child_offsets[descend]
        nc[descend] = child_counts[descend]

        # Exported particle ranges (in the outgoing particle arrays).
        if export_parts.any():
            sel = np.flatnonzero(export_parts)
            counts = tree.body_count[frontier[sel]]
            offs = np.cumsum(counts) - counts
            bf[sel] = n_parts + offs
            bc[sel] = counts
            for c in frontier[sel]:
                part_ranges.append((int(tree.body_first[c]),
                                    int(tree.body_first[c] + tree.body_count[c])))
            n_parts += int(counts.sum())

        out_first_child.append(fc)
        out_n_children.append(nc)
        out_body_first.append(bf)
        out_body_count.append(bc)
        out_cells.append(frontier)
        out_pruned.append(~opened)
        n_out += n_batch

        # Build the next frontier: all children of descending cells, in
        # the same order the pointers were assigned.
        if descend.any():
            dcells = frontier[descend]
            counts = tree.n_children[dcells]
            total = int(counts.sum())
            offs = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(counts) - counts, counts)
            frontier = np.repeat(tree.first_child[dcells], counts) + offs
        else:
            frontier = np.empty(0, dtype=np.int64)

    cells = np.concatenate(out_cells)
    if part_ranges:
        idx = np.concatenate([np.arange(a, b, dtype=np.int64)
                              for a, b in part_ranges])
        part_pos = spos[idx]
        part_mass = smass[idx]
    else:
        part_pos = np.empty((0, 3))
        part_mass = np.empty(0)

    return LETData(
        first_child=np.concatenate(out_first_child),
        n_children=np.concatenate(out_n_children),
        body_first=np.concatenate(out_body_first),
        body_count=np.concatenate(out_body_count),
        com=tree.com[cells],
        mass=tree.mass[cells],
        quad=tree.quad[cells],
        r_crit=tree.r_crit[cells],
        pruned=np.concatenate(out_pruned),
        part_pos=part_pos,
        part_mass=part_mass,
    )


def build_let_for_box(tree: Octree, spos: np.ndarray, smass: np.ndarray,
                      viewer_bmin: np.ndarray, viewer_bmax: np.ndarray) -> LETData:
    """Build the LET required by a remote domain with AABB [bmin, bmax].

    A cell is opened when the minimum distance from the viewer box to the
    cell's COM is not larger than its opening radius -- the mirrored form
    of the group MAC used in the receiver's tree walk.
    """
    if tree.r_crit is None:
        raise ValueError("compute_opening_radii must run before LET construction")

    def opener(cells: np.ndarray) -> np.ndarray:
        d = aabb_distance(viewer_bmin, viewer_bmax, tree.com[cells])
        return d <= tree.r_crit[cells]

    return prune_tree(tree, spos, smass, opener)


def boundary_structure(tree: Octree, spos: np.ndarray, smass: np.ndarray
                       ) -> LETData:
    """Extract the paper's boundary tree from a local octree.

    The viewer is "anything outside my domain box": a cell is kept open
    when its opening radius reaches past the nearest face of the local
    AABB, i.e. when some exterior point could require opening it.  Deep
    interior cells collapse to multipoles, leaving exactly the "cells
    that form the edges of the local particle set" plus their parents.
    """
    if tree.r_crit is None:
        raise ValueError("compute_opening_radii must run before boundary extraction")
    dom_min = tree.bmin[0]
    dom_max = tree.bmax[0]

    def opener(cells: np.ndarray) -> np.ndarray:
        com = tree.com[cells]
        # Distance from the COM to the nearest face of the domain box,
        # measured inward; non-positive for COMs outside the box.
        inward = np.minimum((com - dom_min).min(axis=1),
                            (dom_max - com).min(axis=1))
        return inward <= tree.r_crit[cells]

    return prune_tree(tree, spos, smass, opener)


def boundary_sufficient_for(boundary: LETData,
                            viewer_bmin: np.ndarray,
                            viewer_bmax: np.ndarray) -> bool:
    """Can a remote domain compute its forces from this boundary tree?

    Sufficient iff every pruned (multipole-only) leaf passes the MAC for
    the remote domain's box; otherwise the full LET must be exchanged.
    Both the owner and the remote rank evaluate this same deterministic
    predicate -- the paper's symmetric double-compute that removes the
    request round-trip.
    """
    sel = boundary.pruned
    if not sel.any():
        return True
    d = aabb_distance(viewer_bmin, viewer_bmax, boundary.com[sel])
    return bool(np.all(d > boundary.r_crit[sel]))
