"""Key sampling for the domain decomposition (Sec. III-B1).

Two decomposers are provided:

``serial_sample_boundaries``
    The original sampling method [45]: every rank samples its local keys
    at a fixed rate, one DD-process gathers all samples, merges them into
    a global SFC and cuts it into p pieces.  As the paper notes this
    becomes a serial bottleneck at large p (the ablation benchmark
    measures exactly that).

``hierarchical_sample_boundaries``
    The paper's parallelized method: p = px * py.  A first coarse pass
    (rate R1) cuts the curve into px super-domains; a second pass (rate
    R2) routes samples to the px DD-processes, each of which cuts its
    super-domain into py pieces; the p boundaries are then combined and
    broadcast.
"""

from __future__ import annotations

import math

import numpy as np

from ..simmpi import SimComm
from .loadbalance import cut_weighted_with_cap

KEY_MAX = np.uint64(0xFFFFFFFFFFFFFFFF)


def sample_weighted_keys(keys: np.ndarray, weights: np.ndarray | None,
                         rate: float) -> tuple[np.ndarray, np.ndarray]:
    """Systematic weighted sampling of sorted keys.

    Samples ``max(1, round(rate * n))`` keys at equally spaced positions
    of the cumulative weight, so regions that cost more produce more
    samples (this is how the flop-based load correction enters the
    decomposition).

    Returns (sample_keys, sample_cost) where each sample's cost is the
    weight mass it represents.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    n = len(keys)
    if n == 0:
        return np.empty(0, dtype=np.uint64), np.empty(0)
    if not np.all(keys[:-1] <= keys[1:]):
        raise ValueError("keys must be sorted")
    n_samples = max(1, int(round(rate * n)))
    n_samples = min(n_samples, n)
    if weights is None:
        w = np.ones(n)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if len(w) != n:
            raise ValueError("weights must align with keys")
        # Measured costs can carry NaN/inf (clock glitches, div-by-zero
        # upstream); treat them as "no information" rather than letting
        # one bad sample swallow the whole cumulative-weight ramp.
        w = np.where(np.isfinite(w), w, 0.0)
        w = np.maximum(w, 0.0)
        if w.sum() <= 0.0:
            w = np.ones(n)
    cum = np.cumsum(w)
    total = cum[-1]
    targets = (np.arange(n_samples) + 0.5) * (total / n_samples)
    idx = np.searchsorted(cum, targets, side="left")
    idx = np.minimum(idx, n - 1)
    cost = np.full(n_samples, total / n_samples)
    return keys[idx], cost


def serial_sample_boundaries(comm: SimComm, keys_sorted: np.ndarray,
                             weights: np.ndarray | None, n_domains: int,
                             rate: float = 0.01,
                             cap_ratio: float = 1.3) -> np.ndarray:
    """Original (serial) sampling method: one DD-process does all cutting."""
    s_keys, s_cost = sample_weighted_keys(keys_sorted, weights, rate)
    gathered = comm.gather((s_keys, s_cost), root=0)
    if comm.rank == 0:
        all_keys = np.concatenate([g[0] for g in gathered])
        all_cost = np.concatenate([g[1] for g in gathered])
        order = np.argsort(all_keys, kind="stable")
        boundaries = cut_weighted_with_cap(all_keys[order], all_cost[order],
                                           n_domains, cap_ratio)
    else:
        boundaries = None
    return comm.bcast(boundaries, root=0)


def factor_grid(p: int) -> tuple[int, int]:
    """Factor p = px * py with px as close to sqrt(p) as possible."""
    px = int(math.isqrt(p))
    while p % px != 0:
        px -= 1
    return px, p // px


def hierarchical_sample_boundaries(comm: SimComm, keys_sorted: np.ndarray,
                                   weights: np.ndarray | None,
                                   n_domains: int,
                                   rate1: float = 0.002,
                                   rate2: float = 0.02,
                                   cap_ratio: float = 1.3) -> np.ndarray:
    """The paper's two-level parallel sampling method.

    ``rate1`` is the coarse sampling rate R1 used to find the px
    super-domain boundaries; ``rate2`` is the refinement rate R2 whose
    samples are routed to the px DD-processes (ranks 0..px-1 here).
    """
    px, py = factor_grid(n_domains)
    if px == 1 or comm.size == 1:
        # Degenerate grid: the hierarchical method reduces to the serial one.
        return serial_sample_boundaries(comm, keys_sorted, weights, n_domains,
                                        max(rate1, rate2), cap_ratio)

    # --- phase 1: coarse cut into px super-domains -------------------------
    s_keys, s_cost = sample_weighted_keys(keys_sorted, weights, rate1)
    gathered = comm.gather((s_keys, s_cost), root=0)
    if comm.rank == 0:
        all_keys = np.concatenate([g[0] for g in gathered])
        all_cost = np.concatenate([g[1] for g in gathered])
        order = np.argsort(all_keys, kind="stable")
        # The particle-count cap applies to the coarse cut too: cost
        # skew (e.g. measured-cost weights around a slow rank) must not
        # route through the super-domain level uncapped, or the global
        # 30% guarantee only holds within super-domains.
        super_bounds = cut_weighted_with_cap(all_keys[order], all_cost[order],
                                             px, cap_ratio)
    else:
        super_bounds = None
    super_bounds = comm.bcast(super_bounds, root=0)

    # --- phase 2: refine each super-domain on its DD-process ---------------
    s_keys, s_cost = sample_weighted_keys(keys_sorted, weights, rate2)
    sub = np.searchsorted(super_bounds[1:-1], s_keys, side="right")
    outbox: list = []
    for d in range(comm.size):
        if d < px:
            sel = sub == d
            outbox.append((s_keys[sel], s_cost[sel]))
        else:
            outbox.append((np.empty(0, dtype=np.uint64), np.empty(0)))
    inbox = comm.alltoallv(outbox)

    if comm.rank < px:
        my_keys = np.concatenate([m[0] for m in inbox])
        my_cost = np.concatenate([m[1] for m in inbox])
        order = np.argsort(my_keys, kind="stable")
        # Cut this super-domain into py pieces.  The local cut's first/last
        # boundaries are replaced by the super-domain edges.
        local = cut_weighted_with_cap(my_keys[order], my_cost[order], py,
                                      cap_ratio)
        local[0] = super_bounds[comm.rank]
        local[-1] = super_bounds[comm.rank + 1]
        piece = local
    else:
        piece = None

    pieces = comm.gather(piece, root=0)
    if comm.rank == 0:
        boundaries = np.empty(n_domains + 1, dtype=np.uint64)
        boundaries[0] = 0
        boundaries[-1] = KEY_MAX
        for d in range(px):
            boundaries[d * py:(d + 1) * py + 1] = pieces[d]
        boundaries[0] = 0
        boundaries[-1] = KEY_MAX
        boundaries[1:-1] = np.maximum.accumulate(boundaries[1:-1])
    else:
        boundaries = None
    return comm.bcast(boundaries, root=0)
