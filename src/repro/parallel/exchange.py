"""Particle exchange after a domain update (alltoallv of array columns).

"With the domain boundaries at hand, each GPU generates a list of
particles that are not part of its local domain, and these particles are
then exchanged between the processes." (Sec. III-B1)
"""

from __future__ import annotations

import numpy as np

from ..particles import ParticleSet
from ..simmpi import SimComm
from .decomposition import DomainDecomposition


def exchange_particles(comm: SimComm, particles: ParticleSet,
                       keys: np.ndarray,
                       decomp: DomainDecomposition,
                       check: bool = False,
                       return_keys: bool = False):
    """Route every particle to the rank owning its key.

    Returns this rank's new local particle set.  The exchange ships each
    particle exactly once; ownership is total and disjoint because the
    boundaries partition the key space.

    With ``check=True`` (identical on all ranks -- the check is
    collective) the global particle count, mass and momentum are
    asserted unchanged across the exchange via
    :mod:`repro.testing.invariants`.

    With ``return_keys=True`` each particle's SFC key rides along in the
    exchange and ``(particles, keys)`` is returned, saving the driver a
    re-encode of the post-exchange positions (the keys stay valid: the
    global box is fixed across a domain update).
    """
    if decomp.n_domains != comm.size:
        raise ValueError("decomposition size does not match communicator")
    if check:
        from ..testing.invariants import conservation_totals
        totals_before = conservation_totals(particles)
    dest = decomp.rank_of_keys(keys)
    order = np.argsort(dest, kind="stable")
    sorted_dest = dest[order]
    # Slice boundaries per destination rank.
    starts = np.searchsorted(sorted_dest, np.arange(comm.size), side="left")
    ends = np.searchsorted(sorted_dest, np.arange(comm.size), side="right")

    outbox = []
    for d in range(comm.size):
        sel = order[starts[d]:ends[d]]
        cols = (particles.pos[sel], particles.vel[sel],
                particles.mass[sel], particles.ids[sel],
                particles.component[sel])
        if return_keys:
            cols = cols + (keys[sel],)
        outbox.append(cols)
    n_kept = int(ends[comm.rank] - starts[comm.rank])
    tr = comm.tracer
    if tr.enabled:
        # Nested inside the driver's domain_update phase span: the
        # alltoallv plus how many particles actually migrated.
        with tr.span("particle_exchange", rank=comm.rank, cat="comm") as sp:
            inbox = comm.alltoallv(outbox)
            sp.add(n_sent=particles.n - n_kept,
                   n_recv=sum(len(m[3]) for i, m in enumerate(inbox)
                              if i != comm.rank))
    else:
        inbox = comm.alltoallv(outbox)

    pos = np.concatenate([m[0] for m in inbox])
    vel = np.concatenate([m[1] for m in inbox])
    mass = np.concatenate([m[2] for m in inbox])
    ids = np.concatenate([m[3] for m in inbox])
    component = np.concatenate([m[4] for m in inbox])
    out = ParticleSet(pos=pos, vel=vel, mass=mass, ids=ids,
                      component=component)
    if check:
        from ..testing.invariants import check_exchange_conservation
        check_exchange_conservation(comm, totals_before, out)
    if return_keys:
        return out, np.concatenate([m[5] for m in inbox])
    return out
