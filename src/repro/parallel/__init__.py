"""Multi-GPU parallelization of the tree code (Sec. III-B).

Combines Peano-Hilbert SFC domain decomposition with the Local Essential
Tree (LET) method exactly as the paper describes:

- hierarchical parallel sampling (px x py DD-processes) computes domain
  boundaries from weighted key samples (Sec. III-B1);
- flop-weighted load balancing with the 30% particle-count cap;
- boundary trees are extracted from each local tree and allgathered;
  they double as LET structures for distant ranks;
- a symmetric sufficiency check decides which (near-neighbour) ranks
  need full LETs, without any request handshake;
- received LETs are processed *separately* against the local groups
  (no merge step), and partial forces are summed.
"""

from .loadbalance import cut_weighted_with_cap
from .sampling import sample_weighted_keys, serial_sample_boundaries, hierarchical_sample_boundaries
from .decomposition import DomainDecomposition, domain_update
from .exchange import exchange_particles
from .lettree import LETData, prune_tree, build_let_for_box, boundary_structure, boundary_sufficient_for
from .gravity_parallel import DistributedForceResult, distributed_forces
from .feedback import COST_SOURCES, CostModel, LB_MODES, imbalance_ratio
from .statistics import RunStatistics, aggregate_rank_histories, run_statistics

__all__ = [
    "cut_weighted_with_cap",
    "sample_weighted_keys",
    "serial_sample_boundaries",
    "hierarchical_sample_boundaries",
    "DomainDecomposition",
    "domain_update",
    "exchange_particles",
    "LETData",
    "prune_tree",
    "build_let_for_box",
    "boundary_structure",
    "boundary_sufficient_for",
    "DistributedForceResult",
    "distributed_forces",
    "CostModel",
    "LB_MODES",
    "COST_SOURCES",
    "imbalance_ratio",
    "RunStatistics",
    "aggregate_rank_histories",
    "run_statistics",
]
