"""Time integration (2nd-order leap-frog) and conservation diagnostics."""

from .leapfrog import LeapfrogIntegrator, kick, drift
from .diagnostics import EnergyDiagnostics, system_diagnostics

__all__ = [
    "LeapfrogIntegrator",
    "kick",
    "drift",
    "EnergyDiagnostics",
    "system_diagnostics",
]
