"""Second-order leap-frog integration (kick-drift-kick form).

The paper advances particles with a 2nd-order leap-frog scheme [47]
after each force computation.  We use the KDK (kick-drift-kick) form,
which is symplectic for fixed time steps and time-reversible.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..particles import ParticleSet


def kick(particles: ParticleSet, acc: np.ndarray, dt: float) -> None:
    """Advance velocities by ``dt`` under accelerations ``acc`` (in place)."""
    particles.vel += acc * dt


def drift(particles: ParticleSet, dt: float) -> None:
    """Advance positions by ``dt`` at current velocities (in place)."""
    particles.pos += particles.vel * dt


ForceFunction = Callable[[ParticleSet], tuple[np.ndarray, np.ndarray]]


class LeapfrogIntegrator:
    """KDK leap-frog driver over an arbitrary force function.

    Parameters
    ----------
    force:
        Callable mapping a :class:`ParticleSet` to ``(acc, phi)``.
    dt:
        Fixed time step (internal units).

    The integrator stores the last acceleration so consecutive steps cost
    one force evaluation each (the trailing half-kick of step *k* shares
    the force with the leading half-kick of step *k+1* in the equivalent
    DKD formulation; here we evaluate at the drifted positions).
    """

    def __init__(self, force: ForceFunction, dt: float):
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        self.force = force
        self.dt = dt
        self.time = 0.0
        self.step_count = 0
        self._acc: np.ndarray | None = None
        self._phi: np.ndarray | None = None

    @property
    def potential(self) -> np.ndarray | None:
        """Per-particle potential from the last force evaluation."""
        return self._phi

    @property
    def acceleration(self) -> np.ndarray | None:
        """Per-particle acceleration from the last force evaluation."""
        return self._acc

    def prime(self, particles: ParticleSet) -> None:
        """Evaluate the initial forces (once, before the first step)."""
        self._acc, self._phi = self.force(particles)

    def step(self, particles: ParticleSet) -> None:
        """Advance the system by one full KDK step."""
        if self._acc is None:
            self.prime(particles)
        half = 0.5 * self.dt
        kick(particles, self._acc, half)
        drift(particles, self.dt)
        self._acc, self._phi = self.force(particles)
        kick(particles, self._acc, half)
        self.time += self.dt
        self.step_count += 1

    def run(self, particles: ParticleSet, n_steps: int,
            callback: Callable[[int, ParticleSet], None] | None = None) -> None:
        """Advance ``n_steps`` steps, invoking ``callback`` after each."""
        for k in range(n_steps):
            self.step(particles)
            if callback is not None:
                callback(k, particles)
