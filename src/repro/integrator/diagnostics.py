"""Conservation diagnostics: energy, momentum, angular momentum, virial."""

from __future__ import annotations

import dataclasses

import numpy as np

from ..particles import ParticleSet


@dataclasses.dataclass(frozen=True)
class EnergyDiagnostics:
    """Snapshot of global conserved quantities."""

    kinetic: float
    potential: float
    momentum: np.ndarray
    angular_momentum: np.ndarray

    @property
    def total(self) -> float:
        """Total energy."""
        return self.kinetic + self.potential

    @property
    def virial_ratio(self) -> float:
        """-2T/W; 1 for a system in virial equilibrium."""
        if self.potential == 0.0:
            return np.inf
        return -2.0 * self.kinetic / self.potential


def system_diagnostics(particles: ParticleSet, phi: np.ndarray) -> EnergyDiagnostics:
    """Compute diagnostics from per-particle potentials ``phi``.

    The pairwise potential energy is ``W = 1/2 sum_i m_i phi_i`` because
    each pair is counted twice in the per-particle sums.
    """
    ke = particles.kinetic_energy()
    pe = 0.5 * float(np.sum(particles.mass * phi))
    return EnergyDiagnostics(kinetic=ke, potential=pe,
                             momentum=particles.momentum(),
                             angular_momentum=particles.angular_momentum())
