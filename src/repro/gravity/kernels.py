"""Force kernels implementing Eqs. (1)-(2) of the paper.

With ``r = r_j - r_i`` (pointing from target *i* to source *j*) and the
softened distance ``|r| = sqrt(r.r + eps^2)``:

particle-particle (monopole)::

    phi_i += -m_j / |r|
    a_i   +=  m_j r / |r|^3

particle-cell (monopole + quadrupole, Q the 3x3 symmetric second-moment
tensor of the cell about its COM)::

    phi_i += -m_j/|r| + tr(Q)/(2|r|^3) - 3 r^T Q r / (2 |r|^5)
    a_i   +=  m_j r/|r|^3 - 3 tr(Q) r/(2|r|^5) - 3 Q r/|r|^5
              + 15 (r^T Q r) r / (2 |r|^7)

Both kernels are flat: they take pre-gathered target/source pairs as 1-D
arrays and return per-pair contributions, which callers accumulate (see
``treewalk``).  This mirrors the GPU organisation where the interaction
list is evaluated on the fly and never stored in off-chip memory.

Each kernel exists in two forms: the original allocating form
(``pp_interactions`` / ``pc_interactions``), and an in-place workspace
form (``pp_interactions_ws`` / ``pc_interactions_ws``) whose every ufunc
writes into caller-provided scratch via ``out=`` so steady-state
evaluation allocates nothing -- the register-resident evaluation the
paper credits for its single-GPU efficiency, transposed to numpy.  The
workspace forms accept float32 buffers (``SimulationConfig.precision``),
matching the paper's single-precision GPU kernels; accumulation back
into the per-particle sums stays float64 (see ``treewalk``).
"""

from __future__ import annotations

import numpy as np


def pp_interactions(dx: np.ndarray, dy: np.ndarray, dz: np.ndarray,
                    m: np.ndarray, eps2: float
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Particle-particle kernel on pre-formed separations ``r_j - r_i``.

    Returns per-pair (ax, ay, az, phi) contributions to the target.
    """
    r2 = dx * dx + dy * dy + dz * dz + eps2
    # Self-pairs at eps = 0 produce inf * 0; callers zero those entries
    # (see evaluate_pp_pairs), so silence the transient warnings.
    with np.errstate(divide="ignore", invalid="ignore"):
        rinv = 1.0 / np.sqrt(r2)
        mrinv = m * rinv
        mrinv3 = mrinv * rinv * rinv
        return mrinv3 * dx, mrinv3 * dy, mrinv3 * dz, -mrinv


def pc_interactions(dx: np.ndarray, dy: np.ndarray, dz: np.ndarray,
                    m: np.ndarray, quad: np.ndarray | None, eps2: float
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Particle-cell kernel with quadrupole corrections.

    Parameters
    ----------
    dx, dy, dz:
        Separations ``com_cell - pos_target`` per pair.
    m:
        Cell masses per pair.
    quad:
        (n, 6) packed quadrupole components (xx, yy, zz, xy, xz, yz),
        or None for a monopole-only cell expansion.  The monopole branch
        is the p-p arithmetic on COM separations -- 23 flops, not the
        65-flop quadrupole kernel fed a zero tensor.
    eps2:
        Softening squared (applied exactly as in the p-p kernel).

    Returns per-pair (ax, ay, az, phi).
    """
    if quad is None:
        return pp_interactions(dx, dy, dz, m, eps2)
    qxx, qyy, qzz, qxy, qxz, qyz = (quad[:, k] for k in range(6))

    r2 = dx * dx + dy * dy + dz * dz + eps2
    rinv = 1.0 / np.sqrt(r2)
    rinv2 = rinv * rinv
    rinv3 = rinv * rinv2
    rinv5 = rinv3 * rinv2
    rinv7 = rinv5 * rinv2

    trq = qxx + qyy + qzz

    # Q r (matrix-vector, symmetric packed form).
    qrx = qxx * dx + qxy * dy + qxz * dz
    qry = qxy * dx + qyy * dy + qyz * dz
    qrz = qxz * dx + qyz * dy + qzz * dz
    rqr = dx * qrx + dy * qry + dz * qrz

    phi = -m * rinv + 0.5 * trq * rinv3 - 1.5 * rqr * rinv5

    # Radial coefficient collects the three isotropic terms of Eq. (2).
    radial = m * rinv3 - 1.5 * trq * rinv5 + 7.5 * rqr * rinv7
    ax = radial * dx - 3.0 * qrx * rinv5
    ay = radial * dy - 3.0 * qry * rinv5
    az = radial * dz - 3.0 * qrz * rinv5
    return ax, ay, az, phi


def pp_interactions_ws(dx: np.ndarray, dy: np.ndarray, dz: np.ndarray,
                       m: np.ndarray, eps2: float,
                       r2: np.ndarray, tmp: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """In-place p-p kernel: allocation-free workspace form.

    All six arrays must be same-length, same-dtype scratch buffers owned
    by the caller.  ``dx``/``dy``/``dz``/``m`` are *consumed*: on return
    they alias (ax, ay, az, phi).
    """
    np.multiply(dx, dx, out=r2)
    np.multiply(dy, dy, out=tmp)
    r2 += tmp
    np.multiply(dz, dz, out=tmp)
    r2 += tmp
    if eps2 != 0.0:
        r2 += eps2
    with np.errstate(divide="ignore", invalid="ignore"):
        np.sqrt(r2, out=r2)
        np.divide(1.0, r2, out=r2)          # r2 now holds rinv
        rinv = r2
        np.multiply(m, rinv, out=m)         # m now holds mrinv
        np.multiply(rinv, rinv, out=tmp)
        np.multiply(m, tmp, out=tmp)        # tmp now holds mrinv3
        np.multiply(dx, tmp, out=dx)
        np.multiply(dy, tmp, out=dy)
        np.multiply(dz, tmp, out=dz)
        np.negative(m, out=m)               # phi
    return dx, dy, dz, m


def pc_interactions_ws(dx: np.ndarray, dy: np.ndarray, dz: np.ndarray,
                       m: np.ndarray, quad: tuple[np.ndarray, ...] | None,
                       eps2: float,
                       r2: np.ndarray, tmp: np.ndarray,
                       trq: np.ndarray, qrx: np.ndarray,
                       qry: np.ndarray, qrz: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """In-place p-c kernel: allocation-free workspace form.

    ``quad`` is a 6-tuple of per-pair component buffers (xx, yy, zz, xy,
    xz, yz) -- *consumed* as scratch after their values are read -- or
    None for the monopole branch.  ``dx``/``dy``/``dz``/``m`` are
    consumed and alias (ax, ay, az, phi) on return.
    """
    if quad is None:
        return pp_interactions_ws(dx, dy, dz, m, eps2, r2, tmp)
    qxx, qyy, qzz, qxy, qxz, qyz = quad

    np.multiply(dx, dx, out=r2)
    np.multiply(dy, dy, out=tmp)
    r2 += tmp
    np.multiply(dz, dz, out=tmp)
    r2 += tmp
    if eps2 != 0.0:
        r2 += eps2
    np.sqrt(r2, out=r2)
    np.divide(1.0, r2, out=r2)              # rinv
    rinv = r2

    np.add(qxx, qyy, out=trq)
    trq += qzz

    # Q r before the q-component buffers are recycled.
    np.multiply(qxx, dx, out=qrx)
    np.multiply(qxy, dy, out=tmp)
    qrx += tmp
    np.multiply(qxz, dz, out=tmp)
    qrx += tmp
    np.multiply(qxy, dx, out=qry)
    np.multiply(qyy, dy, out=tmp)
    qry += tmp
    np.multiply(qyz, dz, out=tmp)
    qry += tmp
    np.multiply(qxz, dx, out=qrz)
    np.multiply(qyz, dy, out=tmp)
    qrz += tmp
    np.multiply(qzz, dz, out=tmp)
    qrz += tmp

    rqr = qxx                               # recycle: qxx is dead
    np.multiply(dx, qrx, out=rqr)
    np.multiply(dy, qry, out=tmp)
    rqr += tmp
    np.multiply(dz, qrz, out=tmp)
    rqr += tmp

    rinv2 = qyy                             # recycle the remaining q bufs
    rinv3 = qzz
    rinv5 = qxy
    rinv7 = qxz
    np.multiply(rinv, rinv, out=rinv2)
    np.multiply(rinv, rinv2, out=rinv3)
    np.multiply(rinv3, rinv2, out=rinv5)
    np.multiply(rinv5, rinv2, out=rinv7)

    phi = qyz
    np.multiply(m, rinv, out=phi)
    np.negative(phi, out=phi)
    np.multiply(trq, rinv3, out=tmp)
    tmp *= 0.5
    phi += tmp
    np.multiply(rqr, rinv5, out=tmp)
    tmp *= 1.5
    phi -= tmp

    radial = m                              # m is dead after this product
    np.multiply(m, rinv3, out=radial)
    np.multiply(trq, rinv5, out=tmp)
    tmp *= 1.5
    radial -= tmp
    np.multiply(rqr, rinv7, out=tmp)
    tmp *= 7.5
    radial += tmp

    np.multiply(dx, radial, out=dx)
    np.multiply(qrx, rinv5, out=tmp)
    tmp *= 3.0
    dx -= tmp
    np.multiply(dy, radial, out=dy)
    np.multiply(qry, rinv5, out=tmp)
    tmp *= 3.0
    dy -= tmp
    np.multiply(dz, radial, out=dz)
    np.multiply(qrz, rinv5, out=tmp)
    tmp *= 3.0
    dz -= tmp
    return dx, dy, dz, phi


def point_forces_on_targets(targets: np.ndarray, sources: np.ndarray,
                            source_mass: np.ndarray, eps2: float,
                            backend="numpy") -> tuple[np.ndarray, np.ndarray]:
    """All-pairs forces of point sources on targets (no self-exclusion).

    Dense helper used by tests and the velocity/potential machinery of
    the initial-condition generator.  Dispatches through the compute
    backend registry (``backend`` a name or instance, default the NumPy
    reference whose chunked loop is warning-clean at eps = 0).  Returns
    (acc (n,3), phi (n,)).
    """
    from .backends import get_backend
    return get_backend(backend).point_forces(targets, sources,
                                             source_mass, eps2)
