"""Force kernels implementing Eqs. (1)-(2) of the paper.

With ``r = r_j - r_i`` (pointing from target *i* to source *j*) and the
softened distance ``|r| = sqrt(r.r + eps^2)``:

particle-particle (monopole)::

    phi_i += -m_j / |r|
    a_i   +=  m_j r / |r|^3

particle-cell (monopole + quadrupole, Q the 3x3 symmetric second-moment
tensor of the cell about its COM)::

    phi_i += -m_j/|r| + tr(Q)/(2|r|^3) - 3 r^T Q r / (2 |r|^5)
    a_i   +=  m_j r/|r|^3 - 3 tr(Q) r/(2|r|^5) - 3 Q r/|r|^5
              + 15 (r^T Q r) r / (2 |r|^7)

Both kernels are flat: they take pre-gathered target/source pairs as 1-D
arrays and return per-pair contributions, which callers accumulate (see
``treewalk``).  This mirrors the GPU organisation where the interaction
list is evaluated on the fly and never stored in off-chip memory.
"""

from __future__ import annotations

import numpy as np


def pp_interactions(dx: np.ndarray, dy: np.ndarray, dz: np.ndarray,
                    m: np.ndarray, eps2: float
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Particle-particle kernel on pre-formed separations ``r_j - r_i``.

    Returns per-pair (ax, ay, az, phi) contributions to the target.
    """
    r2 = dx * dx + dy * dy + dz * dz + eps2
    # Self-pairs at eps = 0 produce inf * 0; callers zero those entries
    # (see evaluate_pp_pairs), so silence the transient warnings.
    with np.errstate(divide="ignore", invalid="ignore"):
        rinv = 1.0 / np.sqrt(r2)
        mrinv = m * rinv
        mrinv3 = mrinv * rinv * rinv
        return mrinv3 * dx, mrinv3 * dy, mrinv3 * dz, -mrinv


def pc_interactions(dx: np.ndarray, dy: np.ndarray, dz: np.ndarray,
                    m: np.ndarray, quad: np.ndarray, eps2: float
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Particle-cell kernel with quadrupole corrections.

    Parameters
    ----------
    dx, dy, dz:
        Separations ``com_cell - pos_target`` per pair.
    m:
        Cell masses per pair.
    quad:
        (n, 6) packed quadrupole components (xx, yy, zz, xy, xz, yz).
    eps2:
        Softening squared (applied exactly as in the p-p kernel).

    Returns per-pair (ax, ay, az, phi).
    """
    qxx, qyy, qzz, qxy, qxz, qyz = (quad[:, k] for k in range(6))

    r2 = dx * dx + dy * dy + dz * dz + eps2
    rinv = 1.0 / np.sqrt(r2)
    rinv2 = rinv * rinv
    rinv3 = rinv * rinv2
    rinv5 = rinv3 * rinv2
    rinv7 = rinv5 * rinv2

    trq = qxx + qyy + qzz

    # Q r (matrix-vector, symmetric packed form).
    qrx = qxx * dx + qxy * dy + qxz * dz
    qry = qxy * dx + qyy * dy + qyz * dz
    qrz = qxz * dx + qyz * dy + qzz * dz
    rqr = dx * qrx + dy * qry + dz * qrz

    phi = -m * rinv + 0.5 * trq * rinv3 - 1.5 * rqr * rinv5

    # Radial coefficient collects the three isotropic terms of Eq. (2).
    radial = m * rinv3 - 1.5 * trq * rinv5 + 7.5 * rqr * rinv7
    ax = radial * dx - 3.0 * qrx * rinv5
    ay = radial * dy - 3.0 * qry * rinv5
    az = radial * dz - 3.0 * qrz * rinv5
    return ax, ay, az, phi


def point_forces_on_targets(targets: np.ndarray, sources: np.ndarray,
                            source_mass: np.ndarray, eps2: float
                            ) -> tuple[np.ndarray, np.ndarray]:
    """All-pairs forces of point sources on targets (no self-exclusion).

    Dense helper used by tests and the velocity/potential machinery of
    the initial-condition generator.  Returns (acc (n,3), phi (n,)).
    """
    targets = np.asarray(targets, dtype=np.float64)
    sources = np.asarray(sources, dtype=np.float64)
    acc = np.zeros((len(targets), 3))
    phi = np.zeros(len(targets))
    # Chunk over targets to bound the (nt, ns) temporary.
    chunk = max(1, int(4.0e7 // max(len(sources), 1)))
    for s in range(0, len(targets), chunk):
        t = targets[s:s + chunk]
        d = sources[None, :, :] - t[:, None, :]
        r2 = np.einsum("ijk,ijk->ij", d, d) + eps2
        rinv = 1.0 / np.sqrt(r2)
        mrinv = source_mass[None, :] * rinv
        mrinv3 = mrinv * rinv * rinv
        acc[s:s + chunk] = np.einsum("ij,ijk->ik", mrinv3, d)
        phi[s:s + chunk] = -mrinv.sum(axis=1)
    return acc, phi
