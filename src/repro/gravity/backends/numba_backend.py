"""Numba JIT backend: fused gather + kernel + reduction passes.

The NumPy segment evaluator runs ~10 ufunc passes per chunk (index
expansion, four gathers, the kernel chain, four ``reduceat`` scatters),
each streaming a chunk-length temporary through cache.  The functions
here fuse the whole pair-run evaluation -- gather, the 23/65-flop
pp/pc arithmetic of Eqs. (1)-(2), and the per-target reduction -- into
one compiled loop nest that keeps a pair's state in registers, the CPU
transcription of the paper's register-resident GPU evaluation
(Sec. III-A).

Two executions of the same source:

- **jit** (the real backend): each pass is wrapped in
  ``numba.njit(cache=True)`` on first use.  ``warmup()`` compiles every
  variant on tiny inputs so drivers pay the JIT latency outside every
  timed region.  Nothing imports numba at module load; hosts without it
  skip cleanly.
- **python fallback** (``NumbaBackend(python_fallback=True)``): the
  identical pass functions executed by the interpreter.  Tests use this
  to validate the fused algorithm (counts bitwise, forces in the
  theta^2 envelope) in containers where numba is not installed.

Numerics: separations are formed in float64 and cast once to the
evaluation dtype (exactly like the NumPy float32 gather staging); the
per-pair arithmetic runs in the evaluation dtype; accumulation into the
per-particle sums is always float64.  The evaluation dtype is passed as
an argument (``np.float32`` / ``np.float64``), so one pass source
serves both ``SimulationConfig.precision`` variants.

Accumulation *order* differs from the NumPy reference (per-target
scalar sums instead of chunked segment reductions), which is why
backend agreement is gated by the differential theta^2 envelope rather
than bitwise equality -- interaction counts, which ignore order, stay
bitwise.
"""

from __future__ import annotations

import numpy as np

from .base import ComputeBackend, module_missing
from ..treewalk import PRECISIONS


class JitWorkspace:
    """Workspace stand-in for fused backends: no ufunc scratch needed.

    Carries only the chunk/precision bookkeeping the drivers and the
    evaluators consult; ``nbytes`` is 0 because the fused passes keep a
    pair's state in registers.
    """

    def __init__(self, chunk: int, precision: str = "float64"):
        if precision not in PRECISIONS:
            raise ValueError(f"unknown precision {precision!r}; "
                             f"expected one of {PRECISIONS}")
        self.chunk = int(chunk)
        self.precision = precision
        self.dtype = np.float32 if precision == "float32" else np.float64

    def ensure(self, chunk: int) -> "JitWorkspace":
        self.chunk = max(self.chunk, int(chunk))
        return self

    @property
    def nbytes(self) -> int:
        return 0


# ---------------------------------------------------------------------------
# Pass functions: plain nopython-compatible Python, shared verbatim by the
# jit and python-fallback executions.  ``fdtype`` is the evaluation dtype
# (np.float32 / np.float64); accumulators are float64 throughout.
# ---------------------------------------------------------------------------

def _pp_run_pass(pp_g, pp_c, group_first, group_count,
                 body_first, body_count, sx, sy, sz, sm,
                 tx, ty, tz, eps2, exclude_self,
                 accx, accy, accz, accp, fdtype):
    """Fused (group x leaf) particle-particle pair-run evaluation."""
    one = fdtype(1.0)
    e2 = fdtype(eps2)
    for i in range(pp_g.shape[0]):
        g = pp_g[i]
        c = pp_c[i]
        t0 = group_first[g]
        t1 = t0 + group_count[g]
        s0 = body_first[c]
        s1 = s0 + body_count[c]
        for t in range(t0, t1):
            px = tx[t]
            py = ty[t]
            pz = tz[t]
            ax = np.float64(0.0)
            ay = np.float64(0.0)
            az = np.float64(0.0)
            ph = np.float64(0.0)
            for s in range(s0, s1):
                # Self-pair: the reference zeroes the contribution
                # (m := 0); skipping adds the same exact 0.0.
                if exclude_self and s == t:
                    continue
                dx = fdtype(sx[s] - px)
                dy = fdtype(sy[s] - py)
                dz = fdtype(sz[s] - pz)
                m = fdtype(sm[s])
                r2 = dx * dx + dy * dy + dz * dz + e2
                rinv = one / np.sqrt(r2)
                mrinv = m * rinv
                mrinv3 = mrinv * (rinv * rinv)
                ax = ax + np.float64(mrinv3 * dx)
                ay = ay + np.float64(mrinv3 * dy)
                az = az + np.float64(mrinv3 * dz)
                ph = ph - np.float64(mrinv)
            accx[t] += ax
            accy[t] += ay
            accz[t] += az
            accp[t] += ph


def _pc_mono_run_pass(pc_g, pc_c, group_first, group_count,
                      cx, cy, cz, cm, tx, ty, tz, eps2,
                      accx, accy, accz, accp, fdtype):
    """Fused particle-cell pair runs, monopole branch (23-flop kernel)."""
    one = fdtype(1.0)
    e2 = fdtype(eps2)
    for i in range(pc_g.shape[0]):
        g = pc_g[i]
        c = pc_c[i]
        sxc = cx[c]
        syc = cy[c]
        szc = cz[c]
        m = fdtype(cm[c])
        t0 = group_first[g]
        t1 = t0 + group_count[g]
        for t in range(t0, t1):
            dx = fdtype(sxc - tx[t])
            dy = fdtype(syc - ty[t])
            dz = fdtype(szc - tz[t])
            r2 = dx * dx + dy * dy + dz * dz + e2
            rinv = one / np.sqrt(r2)
            mrinv = m * rinv
            mrinv3 = mrinv * (rinv * rinv)
            accx[t] += np.float64(mrinv3 * dx)
            accy[t] += np.float64(mrinv3 * dy)
            accz[t] += np.float64(mrinv3 * dz)
            accp[t] -= np.float64(mrinv)


def _pc_quad_run_pass(pc_g, pc_c, group_first, group_count,
                      cx, cy, cz, cm, qxx, qyy, qzz, qxy, qxz, qyz,
                      tx, ty, tz, eps2,
                      accx, accy, accz, accp, fdtype):
    """Fused particle-cell pair runs, quadrupole branch (65-flop kernel)."""
    one = fdtype(1.0)
    e2 = fdtype(eps2)
    c05 = fdtype(0.5)
    c15 = fdtype(1.5)
    c30 = fdtype(3.0)
    c75 = fdtype(7.5)
    for i in range(pc_g.shape[0]):
        g = pc_g[i]
        c = pc_c[i]
        sxc = cx[c]
        syc = cy[c]
        szc = cz[c]
        m = fdtype(cm[c])
        Qxx = fdtype(qxx[c])
        Qyy = fdtype(qyy[c])
        Qzz = fdtype(qzz[c])
        Qxy = fdtype(qxy[c])
        Qxz = fdtype(qxz[c])
        Qyz = fdtype(qyz[c])
        trq = Qxx + Qyy + Qzz
        t0 = group_first[g]
        t1 = t0 + group_count[g]
        for t in range(t0, t1):
            dx = fdtype(sxc - tx[t])
            dy = fdtype(syc - ty[t])
            dz = fdtype(szc - tz[t])
            r2 = dx * dx + dy * dy + dz * dz + e2
            rinv = one / np.sqrt(r2)
            rinv2 = rinv * rinv
            rinv3 = rinv * rinv2
            rinv5 = rinv3 * rinv2
            rinv7 = rinv5 * rinv2
            qrx = Qxx * dx + Qxy * dy + Qxz * dz
            qry = Qxy * dx + Qyy * dy + Qyz * dz
            qrz = Qxz * dx + Qyz * dy + Qzz * dz
            rqr = dx * qrx + dy * qry + dz * qrz
            ph = -(m * rinv) + c05 * trq * rinv3 - c15 * rqr * rinv5
            radial = m * rinv3 - c15 * trq * rinv5 + c75 * rqr * rinv7
            accx[t] += np.float64(radial * dx - c30 * qrx * rinv5)
            accy[t] += np.float64(radial * dy - c30 * qry * rinv5)
            accz[t] += np.float64(radial * dz - c30 * qrz * rinv5)
            accp[t] += np.float64(ph)


def _pp_pairs_pass(dx, dy, dz, m, eps2, ax, ay, az, ph, fdtype):
    """Elementwise p-p kernel on pre-formed separations (Fig. 1 shape)."""
    one = fdtype(1.0)
    e2 = fdtype(eps2)
    for i in range(dx.shape[0]):
        x = fdtype(dx[i])
        y = fdtype(dy[i])
        z = fdtype(dz[i])
        mi = fdtype(m[i])
        r2 = x * x + y * y + z * z + e2
        rinv = one / np.sqrt(r2)
        mrinv = mi * rinv
        mrinv3 = mrinv * (rinv * rinv)
        ax[i] = mrinv3 * x
        ay[i] = mrinv3 * y
        az[i] = mrinv3 * z
        ph[i] = -mrinv


def _pc_quad_pairs_pass(dx, dy, dz, m, qxx, qyy, qzz, qxy, qxz, qyz,
                        eps2, ax, ay, az, ph, fdtype):
    """Elementwise p-c quadrupole kernel on pre-formed separations."""
    one = fdtype(1.0)
    e2 = fdtype(eps2)
    c05 = fdtype(0.5)
    c15 = fdtype(1.5)
    c30 = fdtype(3.0)
    c75 = fdtype(7.5)
    for i in range(dx.shape[0]):
        x = fdtype(dx[i])
        y = fdtype(dy[i])
        z = fdtype(dz[i])
        mi = fdtype(m[i])
        Qxx = fdtype(qxx[i])
        Qyy = fdtype(qyy[i])
        Qzz = fdtype(qzz[i])
        Qxy = fdtype(qxy[i])
        Qxz = fdtype(qxz[i])
        Qyz = fdtype(qyz[i])
        r2 = x * x + y * y + z * z + e2
        rinv = one / np.sqrt(r2)
        rinv2 = rinv * rinv
        rinv3 = rinv * rinv2
        rinv5 = rinv3 * rinv2
        rinv7 = rinv5 * rinv2
        trq = Qxx + Qyy + Qzz
        qrx = Qxx * x + Qxy * y + Qxz * z
        qry = Qxy * x + Qyy * y + Qyz * z
        qrz = Qxz * x + Qyz * y + Qzz * z
        rqr = x * qrx + y * qry + z * qrz
        radial = mi * rinv3 - c15 * trq * rinv5 + c75 * rqr * rinv7
        ax[i] = radial * x - c30 * qrx * rinv5
        ay[i] = radial * y - c30 * qry * rinv5
        az[i] = radial * z - c30 * qrz * rinv5
        ph[i] = -(mi * rinv) + c05 * trq * rinv3 - c15 * rqr * rinv5


def _point_forces_pass(txs, tys, tzs, sxs, sys, szs, sm, eps2,
                       acc, phi):
    """Dense all-pairs point forces, float64 (no self-exclusion)."""
    for i in range(txs.shape[0]):
        px = txs[i]
        py = tys[i]
        pz = tzs[i]
        ax = 0.0
        ay = 0.0
        az = 0.0
        ph = 0.0
        for j in range(sxs.shape[0]):
            dx = sxs[j] - px
            dy = sys[j] - py
            dz = szs[j] - pz
            r2 = dx * dx + dy * dy + dz * dz + eps2
            rinv = 1.0 / np.sqrt(r2)
            mrinv = sm[j] * rinv
            mrinv3 = mrinv * rinv * rinv
            ax += mrinv3 * dx
            ay += mrinv3 * dy
            az += mrinv3 * dz
            ph -= mrinv
        acc[i, 0] = ax
        acc[i, 1] = ay
        acc[i, 2] = az
        phi[i] = ph


#: Pass table shared by both execution modes; the jit table is built
#: lazily from this one (same keys, compiled callables).
_PASSES = {
    "pp_run": _pp_run_pass,
    "pc_mono_run": _pc_mono_run_pass,
    "pc_quad_run": _pc_quad_run_pass,
    "pp_pairs": _pp_pairs_pass,
    "pc_quad_pairs": _pc_quad_pairs_pass,
    "point_forces": _point_forces_pass,
}

_JITTED: dict = {}


def _jit_passes() -> dict:
    """Compile (once per process) and return the jitted pass table."""
    if not _JITTED:
        import numba
        for key, fn in _PASSES.items():
            _JITTED[key] = numba.njit(cache=True)(fn)
    return _JITTED


class NumbaBackend(ComputeBackend):
    """Fused ``@njit(cache=True)`` kernels (optional dependency).

    ``python_fallback=True`` runs the identical pass functions without
    numba -- orders of magnitude slower, but available everywhere, which
    is how the fused algorithm is validated on numba-free hosts.  Pass a
    ``name`` when registering a fallback instance so it never shadows
    the real ``numba`` entry.
    """

    def __init__(self, python_fallback: bool = False, name: str | None = None):
        self._python = bool(python_fallback)
        self.name = name if name is not None \
            else ("numba-python" if python_fallback else "numba")

    # -- availability -----------------------------------------------------

    def unavailable_reason(self) -> str | None:
        if self._python:
            return None
        return module_missing("numba")

    def warmup(self, precision: str = "float64") -> None:
        """Compile every pass variant on minimal inputs (idempotent).

        Numba specialises per argument signature, so both the float32
        and float64 variants of each pass are touched regardless of
        ``precision`` -- a driver warm-up must cover the LET evaluation
        path whichever precision the config selects.
        """
        p = self._passes()
        i = np.zeros(1, dtype=np.int64)
        one = np.ones(1, dtype=np.int64)
        f = np.zeros(1, dtype=np.float64)
        acc = np.zeros(1, dtype=np.float64)
        for fdtype in (np.float64, np.float32):
            p["pp_run"](i, i, i, one, i, one, f, f, f, f, f, f, f,
                        1.0, False, acc, acc, acc, acc, fdtype)
            p["pc_mono_run"](i, i, i, one, f, f, f, f, f, f, f,
                             1.0, acc, acc, acc, acc, fdtype)
            p["pc_quad_run"](i, i, i, one, f, f, f, f, f, f, f, f, f, f,
                             f, f, f, 1.0, acc, acc, acc, acc, fdtype)
            p["pp_pairs"](f, f, f, f, 1.0, acc.copy(), acc.copy(),
                          acc.copy(), acc.copy(), fdtype)
            p["pc_quad_pairs"](f, f, f, f, f, f, f, f, f, f, 1.0,
                               acc.copy(), acc.copy(), acc.copy(),
                               acc.copy(), fdtype)
        p["point_forces"](f, f, f, f, f, f, f, 1.0,
                          np.zeros((1, 3)), np.zeros(1))

    def _passes(self) -> dict:
        if self._python:
            return _PASSES
        return _jit_passes()

    @staticmethod
    def _fdtype(ws) -> type:
        return np.float32 \
            if getattr(ws, "precision", "float64") == "float32" else np.float64

    # -- workspaces -------------------------------------------------------

    def make_workspace(self, chunk: int, precision: str = "float64"):
        return JitWorkspace(chunk, precision)

    # -- raw pair-batch kernels -------------------------------------------

    def pp_kernel(self, dx, dy, dz, m, eps2):
        dx = np.ascontiguousarray(dx)
        n = len(dx)
        out = tuple(np.empty(n, dtype=dx.dtype) for _ in range(4))
        with np.errstate(divide="ignore", invalid="ignore"):
            self._passes()["pp_pairs"](
                dx, np.ascontiguousarray(dy), np.ascontiguousarray(dz),
                np.ascontiguousarray(m), float(eps2), *out, dx.dtype.type)
        return out

    def pc_kernel(self, dx, dy, dz, m, quad, eps2):
        if quad is None:
            return self.pp_kernel(dx, dy, dz, m, eps2)
        dx = np.ascontiguousarray(dx)
        n = len(dx)
        out = tuple(np.empty(n, dtype=dx.dtype) for _ in range(4))
        q = tuple(np.ascontiguousarray(quad[:, k]) for k in range(6))
        with np.errstate(divide="ignore", invalid="ignore"):
            self._passes()["pc_quad_pairs"](
                dx, np.ascontiguousarray(dy), np.ascontiguousarray(dz),
                np.ascontiguousarray(m), *q, float(eps2), *out,
                dx.dtype.type)
        return out

    # -- fused pair-run evaluators ----------------------------------------

    def evaluate_pc(self, accx, accy, accz, accp, tview, sv,
                    pc_g, pc_c, group_first, group_count,
                    eps2, quadrupole, counts, chunk, ws) -> None:
        if quadrupole and sv.quad is None:
            raise ValueError("quadrupole evaluation needs source quadrupoles")
        # The reference's exact count arithmetic: a walk property, bitwise
        # across backends.
        counts.n_pc += int(group_count[pc_g].sum())
        tx, ty, tz = tview
        gf = np.asarray(group_first, dtype=np.int64)
        gc = np.asarray(group_count, dtype=np.int64)
        p = self._passes()
        with np.errstate(divide="ignore", invalid="ignore"):
            if quadrupole:
                p["pc_quad_run"](pc_g, pc_c, gf, gc,
                                 sv.com_x, sv.com_y, sv.com_z, sv.mass,
                                 *sv.quad, tx, ty, tz, float(eps2),
                                 accx, accy, accz, accp, self._fdtype(ws))
            else:
                p["pc_mono_run"](pc_g, pc_c, gf, gc,
                                 sv.com_x, sv.com_y, sv.com_z, sv.mass,
                                 tx, ty, tz, float(eps2),
                                 accx, accy, accz, accp, self._fdtype(ws))

    def evaluate_pp(self, accx, accy, accz, accp, tview, sv,
                    pp_g, pp_c, group_first, group_count,
                    eps2, counts, exclude_self, chunk, ws) -> None:
        counts.n_pp += int((group_count[pp_g] * sv.body_count[pp_c]).sum())
        tx, ty, tz = tview
        gf = np.asarray(group_first, dtype=np.int64)
        gc = np.asarray(group_count, dtype=np.int64)
        with np.errstate(divide="ignore", invalid="ignore"):
            self._passes()["pp_run"](pp_g, pp_c, gf, gc,
                                     sv.body_first, sv.body_count,
                                     sv.sx, sv.sy, sv.sz, sv.smass,
                                     tx, ty, tz, float(eps2),
                                     bool(exclude_self),
                                     accx, accy, accz, accp,
                                     self._fdtype(ws))

    # -- dense helper -----------------------------------------------------

    def point_forces(self, targets, sources, source_mass, eps2):
        targets = np.asarray(targets, dtype=np.float64)
        sources = np.asarray(sources, dtype=np.float64)
        source_mass = np.asarray(source_mass, dtype=np.float64)
        acc = np.zeros((len(targets), 3))
        phi = np.zeros(len(targets))
        with np.errstate(divide="ignore", invalid="ignore"):
            self._passes()["point_forces"](
                np.ascontiguousarray(targets[:, 0]),
                np.ascontiguousarray(targets[:, 1]),
                np.ascontiguousarray(targets[:, 2]),
                np.ascontiguousarray(sources[:, 0]),
                np.ascontiguousarray(sources[:, 1]),
                np.ascontiguousarray(sources[:, 2]),
                source_mass, float(eps2), acc, phi)
        return acc, phi
