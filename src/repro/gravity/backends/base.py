"""Compute-backend interface for the force kernels.

The paper's performance claim rests on executing the pp/pc interaction
kernels as compiled, register-resident GPU code ("every stage on the
GPU", Sec. VI-A); this repository's hot loops are NumPy ufunc chains.
A :class:`ComputeBackend` is the seam between the two: the tree walk,
the pair lists and the interaction-count accounting never change --
only *how* a pair list is turned into accumulated (acc, phi)
contributions is delegated.

The contract every backend must honour:

- **counts are walk property, not backend property.**  ``evaluate_pc``
  / ``evaluate_pp`` must tally ``counts.n_pc`` / ``counts.n_pp`` from
  the pair lists with the exact integer arithmetic the NumPy reference
  uses (sum of per-pair expansion sizes), so interaction counts are
  bitwise-identical across backends by construction.
- **float64 NumPy is the oracle.**  A backend may fuse, reorder or
  change the precision of the *kernel arithmetic* (accumulation order
  is explicitly unspecified), but its float64 forces must stay inside
  the differential harness's theta^2-scaled envelope against the
  ``numpy`` backend (``tests/test_gravity_backends.py``).
- **accumulators are float64.**  ``accx``/``accy``/``accz``/``accp``
  are float64 views over the caller's per-particle sums in sorted
  target order; lower-precision kernels upcast on accumulation, as the
  paper's single-precision GPU kernels do.
- **no eager heavy imports.**  Constructing or registering a backend
  must not import its runtime (numba, cupy): probing happens in
  ``available()`` via ``importlib.util.find_spec`` and the import is
  deferred to first use, so hosts without the package pay nothing and
  skip cleanly.
"""

from __future__ import annotations

import importlib.util

import numpy as np


class BackendUnavailable(RuntimeError):
    """Requested compute backend's runtime is not usable on this host.

    Raised by :func:`repro.gravity.backends.get_backend` with the
    backend's own diagnosis (package missing, no CUDA device, ...).
    """


def module_missing(module: str) -> str | None:
    """``None`` if ``module`` is importable, else a human reason.

    Uses ``find_spec`` so the probe never actually imports the package
    (numba import alone costs ~1 s; cupy may hard-fail without a
    driver).
    """
    try:
        found = importlib.util.find_spec(module) is not None
    except (ImportError, ValueError):
        found = False
    if found:
        return None
    return (f"python package {module!r} is not installed "
            f"(pip install repro[{'cuda' if module == 'cupy' else module}])")


class ComputeBackend:
    """One way of executing the pp/pc force kernels.

    Subclasses override the evaluation hooks; the base class provides
    the NumPy :class:`~repro.gravity.treewalk.KernelWorkspace` and a
    no-op warm-up.  ``name`` is the registry key and the value of
    ``SimulationConfig.backend``.
    """

    name: str = "?"

    # -- availability -----------------------------------------------------

    def available(self) -> bool:
        """Whether this backend can run on this host (cheap, no import)."""
        return self.unavailable_reason() is None

    def unavailable_reason(self) -> str | None:
        """Why :meth:`available` is False (``None`` when available)."""
        return None

    def warmup(self, precision: str = "float64") -> None:
        """One-time preparation (JIT compilation, context creation).

        Drivers call this at construction time, *outside* every timed
        region, so compilation latency never pollutes a phase span or a
        benchmark.  Must be idempotent.  No-op by default.
        """

    # -- workspaces -------------------------------------------------------

    def make_workspace(self, chunk: int, precision: str = "float64"):
        """Scratch arena for chunked evaluation (backend-specific).

        The default is the NumPy :class:`KernelWorkspace`; fused
        backends that need no ufunc scratch return a lightweight
        stand-in carrying only ``chunk``/``precision``.
        """
        from ..treewalk import KernelWorkspace
        return KernelWorkspace(chunk, precision)

    # -- raw pair-batch kernels (Fig. 1 / property tests) -----------------

    def pp_kernel(self, dx, dy, dz, m, eps2: float):
        """Per-pair p-p contributions on pre-formed separations.

        Same contract as :func:`repro.gravity.kernels.pp_interactions`.
        """
        raise NotImplementedError

    def pc_kernel(self, dx, dy, dz, m, quad, eps2: float):
        """Per-pair p-c contributions (``quad=None`` = monopole branch).

        Same contract as :func:`repro.gravity.kernels.pc_interactions`.
        """
        raise NotImplementedError

    # -- fused pair-run evaluators (the hot path) -------------------------

    def evaluate_pc(self, accx, accy, accz, accp, tview, sv,
                    pc_g, pc_c, group_first, group_count,
                    eps2: float, quadrupole: bool, counts,
                    chunk: int, ws) -> None:
        """Accumulate particle-cell pair-run contributions.

        ``tview`` is the (tx, ty, tz) contiguous target columns,
        ``sv`` a :class:`~repro.gravity.treewalk.SourceView`.  Must add
        ``sum(group_count[pc_g])`` to ``counts.n_pc``.
        """
        raise NotImplementedError

    def evaluate_pp(self, accx, accy, accz, accp, tview, sv,
                    pp_g, pp_c, group_first, group_count,
                    eps2: float, counts, exclude_self: bool,
                    chunk: int, ws) -> None:
        """Accumulate particle-particle (group x leaf) contributions.

        Must add ``sum(group_count[pp_g] * body_count[pp_c])`` to
        ``counts.n_pp``.  ``exclude_self`` zeroes identical sorted
        indices (self-gravity walks).
        """
        raise NotImplementedError

    # -- dense helper -----------------------------------------------------

    def point_forces(self, targets: np.ndarray, sources: np.ndarray,
                     source_mass: np.ndarray, eps2: float
                     ) -> tuple[np.ndarray, np.ndarray]:
        """All-pairs point forces (no self-exclusion); (acc, phi) in f64."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "available" if self.available() else "unavailable"
        return f"<{type(self).__name__} {self.name!r} ({state})>"
