"""Pluggable compute backends for the force kernels.

The tree walk produces pair lists; a *backend* turns them into
accumulated forces.  ``SimulationConfig.backend`` selects one by name:

- ``"numpy"`` -- the workspace ufunc kernels, unchanged: the bitwise
  float64 reference and the default (:mod:`.numpy_backend`);
- ``"numba"`` -- fused ``@njit(cache=True)`` loop nests, optional
  dependency ``pip install repro[numba]`` (:mod:`.numba_backend`);
- ``"cupy"`` -- GPU scaffold, optional dependency
  ``pip install repro[cuda]`` (:mod:`.cupy_backend`).

Registry rules: registration is by ``backend.name`` and never imports
the backend's runtime; :func:`get_backend` raises ``ValueError`` for
unknown names and :class:`BackendUnavailable` (with the probe's reason)
for known-but-unusable ones.  Projects and tests can
:func:`register_backend` their own implementations; see
``docs/PERFORMANCE.md`` §6 for the contract a backend must honour.
"""

from __future__ import annotations

import re

from .base import BackendUnavailable, ComputeBackend
from .cupy_backend import CupyBackend
from .numba_backend import JitWorkspace, NumbaBackend
from .numpy_backend import NumpyBackend

#: Name-keyed backend singletons, in registration order.
_REGISTRY: dict[str, ComputeBackend] = {}

#: Registry keys are config values and span attributes: lowercase slugs
#: only, so the base class's ``"?"`` placeholder can never be registered.
_NAME_RE = re.compile(r"[a-z0-9][a-z0-9_.-]*")


def register_backend(backend: ComputeBackend) -> ComputeBackend:
    """Add ``backend`` to the registry under ``backend.name``.

    Re-registering a name replaces the previous entry (latest wins),
    which is how tests shadow a built-in with an instrumented double.
    Returns the backend for decorator-ish chaining.
    """
    name = getattr(backend, "name", None)
    if not (isinstance(name, str) and _NAME_RE.fullmatch(name)):
        raise ValueError(f"backend name {name!r} is not a valid registry "
                         f"key (lowercase slug, pattern {_NAME_RE.pattern})")
    _REGISTRY[name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a registered backend (no-op for unknown names)."""
    _REGISTRY.pop(name, None)


def registered_backends() -> tuple[str, ...]:
    """Every registered backend name, available or not."""
    return tuple(_REGISTRY)


def available_backends() -> tuple[str, ...]:
    """Registered backends whose runtime is usable on this host."""
    return tuple(n for n, b in _REGISTRY.items() if b.available())


def get_backend(name) -> ComputeBackend:
    """Resolve ``name`` to a usable backend instance.

    Accepts a :class:`ComputeBackend` instance as a pass-through so hot
    paths can resolve once and hand the object down.  Raises
    ``ValueError`` for unregistered names and
    :class:`BackendUnavailable` for registered ones whose runtime probe
    fails.
    """
    if isinstance(name, ComputeBackend):
        return name
    backend = _REGISTRY.get(name)
    if backend is None:
        raise ValueError(f"unknown compute backend {name!r}; "
                         f"registered: {registered_backends()}")
    if not backend.available():
        raise BackendUnavailable(
            f"compute backend {name!r} is not usable here: "
            f"{backend.unavailable_reason()}")
    return backend


register_backend(NumpyBackend())
register_backend(NumbaBackend())
register_backend(CupyBackend())

__all__ = [
    "BackendUnavailable",
    "ComputeBackend",
    "CupyBackend",
    "JitWorkspace",
    "NumbaBackend",
    "NumpyBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "registered_backends",
    "unregister_backend",
]
