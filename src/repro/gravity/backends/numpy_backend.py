"""NumPy reference backend: the float64 oracle and the default.

Delegates straight to the workspace (``*_ws``) segment evaluators in
:mod:`repro.gravity.treewalk` and the allocating kernels in
:mod:`repro.gravity.kernels` -- no arithmetic lives here, so selecting
``backend="numpy"`` is byte-for-byte the pre-registry behaviour (forces,
counts, traces).  Other backends are validated against this one.

``NumpyBackend`` accepts a ``name`` override so tests can register the
reference implementation under a second name and exercise the full
driver/telemetry threading of a non-default backend without needing
numba or a GPU in the container.
"""

from __future__ import annotations

import numpy as np

from .base import ComputeBackend


class NumpyBackend(ComputeBackend):
    """The current ``_ws`` kernels, unchanged: bitwise float64 reference."""

    def __init__(self, name: str = "numpy"):
        self.name = name

    # -- raw pair-batch kernels -------------------------------------------

    def pp_kernel(self, dx, dy, dz, m, eps2):
        from ..kernels import pp_interactions
        return pp_interactions(dx, dy, dz, m, eps2)

    def pc_kernel(self, dx, dy, dz, m, quad, eps2):
        from ..kernels import pc_interactions
        return pc_interactions(dx, dy, dz, m, quad, eps2)

    # -- fused pair-run evaluators ----------------------------------------

    def evaluate_pc(self, accx, accy, accz, accp, tview, sv,
                    pc_g, pc_c, group_first, group_count,
                    eps2, quadrupole, counts, chunk, ws) -> None:
        from ..treewalk import _evaluate_pc_segment
        _evaluate_pc_segment(accx, accy, accz, accp, tview, sv,
                             pc_g, pc_c, group_first, group_count,
                             eps2, quadrupole, counts, chunk, ws)

    def evaluate_pp(self, accx, accy, accz, accp, tview, sv,
                    pp_g, pp_c, group_first, group_count,
                    eps2, counts, exclude_self, chunk, ws) -> None:
        from ..treewalk import _evaluate_pp_segment
        _evaluate_pp_segment(accx, accy, accz, accp, tview, sv,
                             pp_g, pp_c, group_first, group_count,
                             eps2, counts, exclude_self, chunk, ws)

    # -- dense helper -----------------------------------------------------

    def point_forces(self, targets, sources, source_mass, eps2):
        targets = np.asarray(targets, dtype=np.float64)
        sources = np.asarray(sources, dtype=np.float64)
        source_mass = np.asarray(source_mass, dtype=np.float64)
        acc = np.zeros((len(targets), 3))
        phi = np.zeros(len(targets))
        # Chunk over targets to bound the (nt, ns) temporary.
        chunk = max(1, int(4.0e7 // max(len(sources), 1)))
        # Coincident target/source at eps = 0 yields inf (the helper does
        # no self-exclusion); keep that usage warning-clean like the pp
        # kernel does.
        with np.errstate(divide="ignore", invalid="ignore"):
            for s in range(0, len(targets), chunk):
                t = targets[s:s + chunk]
                d = sources[None, :, :] - t[:, None, :]
                r2 = np.einsum("ijk,ijk->ij", d, d) + eps2
                rinv = 1.0 / np.sqrt(r2)
                mrinv = source_mass[None, :] * rinv
                mrinv3 = mrinv * rinv * rinv
                acc[s:s + chunk] = np.einsum("ij,ijk->ik", mrinv3, d)
                phi[s:s + chunk] = -mrinv.sum(axis=1)
        return acc, phi
