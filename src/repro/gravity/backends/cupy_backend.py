"""CuPy GPU backend scaffold (optional dependency, import-guarded).

A working-but-unfused transcription of the reference evaluators to CuPy
device arrays: pair runs are expanded to explicit (target, source)
index vectors on the host (the same arithmetic as the ``bincount``
reference evaluator), the kernel chain runs as device elementwise ops,
and accumulation is a ``cupyx.scatter_add`` into device accumulators
that are copied back once per evaluation.

This is deliberately the *scaffold* rung of the backend ladder: it
exercises the full interface on a GPU host and is numerically the
reference algorithm, but it keeps two known inefficiencies that the
paper's production kernels remove (Sec. III-A / VI-A):

- host-side pair expansion + per-call H2D transfer of the index
  vectors (Bonsai builds interaction lists on the device);
- one device temporary per ufunc instead of a fused register-resident
  kernel (the natural follow-up is a ``cupy.RawKernel`` with one thread
  per target slot accumulating its run in registers and ``atomicAdd``
  only at segment boundaries -- see /opt/skills/guides/cuda_guide.md).

Availability requires both an importable ``cupy`` *and* a visible CUDA
device; everything else sees a clean ``BackendUnavailable`` reason and
tests skip.  Nothing imports cupy at module load.
"""

from __future__ import annotations

import numpy as np

from .base import ComputeBackend, module_missing


class CupyBackend(ComputeBackend):
    """CuPy device-array transcription of the reference evaluators."""

    def __init__(self, name: str = "cupy"):
        self.name = name
        self._cp = None

    # -- availability -----------------------------------------------------

    def unavailable_reason(self) -> str | None:
        missing = module_missing("cupy")
        if missing is not None:
            return missing
        try:
            import cupy
            if cupy.cuda.runtime.getDeviceCount() < 1:
                return "cupy is installed but no CUDA device is visible"
        except Exception as exc:  # driver/toolkit mismatch, etc.
            return f"cupy import/device probe failed: {exc!r}"
        return None

    def _xp(self):
        """The cupy module (first use imports and caches it)."""
        if self._cp is None:
            import cupy
            self._cp = cupy
        return self._cp

    def warmup(self, precision: str = "float64") -> None:
        """Touch the device allocator + compile the elementwise chain."""
        one = np.ones(2)
        self.pp_kernel(one, one, one, one, 1.0)

    # -- raw pair-batch kernels -------------------------------------------

    def pp_kernel(self, dx, dy, dz, m, eps2):
        cp = self._xp()
        ax, ay, az, ph = self._pp_device(cp.asarray(dx), cp.asarray(dy),
                                         cp.asarray(dz), cp.asarray(m),
                                         float(eps2))
        return (cp.asnumpy(ax), cp.asnumpy(ay), cp.asnumpy(az),
                cp.asnumpy(ph))

    def pc_kernel(self, dx, dy, dz, m, quad, eps2):
        if quad is None:
            return self.pp_kernel(dx, dy, dz, m, eps2)
        cp = self._xp()
        out = self._pc_device(cp.asarray(dx), cp.asarray(dy),
                              cp.asarray(dz), cp.asarray(m),
                              cp.asarray(np.asarray(quad)), float(eps2))
        return tuple(cp.asnumpy(v) for v in out)

    # -- device kernel chains ---------------------------------------------

    @staticmethod
    def _pp_device(dx, dy, dz, m, eps2):
        r2 = dx * dx + dy * dy + dz * dz + eps2
        rinv = 1.0 / r2 ** 0.5
        mrinv = m * rinv
        mrinv3 = mrinv * rinv * rinv
        return mrinv3 * dx, mrinv3 * dy, mrinv3 * dz, -mrinv

    @staticmethod
    def _pc_device(dx, dy, dz, m, quad, eps2):
        qxx, qyy, qzz, qxy, qxz, qyz = (quad[:, k] for k in range(6))
        r2 = dx * dx + dy * dy + dz * dz + eps2
        rinv = 1.0 / r2 ** 0.5
        rinv2 = rinv * rinv
        rinv3 = rinv * rinv2
        rinv5 = rinv3 * rinv2
        rinv7 = rinv5 * rinv2
        trq = qxx + qyy + qzz
        qrx = qxx * dx + qxy * dy + qxz * dz
        qry = qxy * dx + qyy * dy + qyz * dz
        qrz = qxz * dx + qyz * dy + qzz * dz
        rqr = dx * qrx + dy * qry + dz * qrz
        phi = -m * rinv + 0.5 * trq * rinv3 - 1.5 * rqr * rinv5
        radial = m * rinv3 - 1.5 * trq * rinv5 + 7.5 * rqr * rinv7
        ax = radial * dx - 3.0 * qrx * rinv5
        ay = radial * dy - 3.0 * qry * rinv5
        az = radial * dz - 3.0 * qrz * rinv5
        return ax, ay, az, phi

    # -- fused pair-run evaluators ----------------------------------------

    def evaluate_pc(self, accx, accy, accz, accp, tview, sv,
                    pc_g, pc_c, group_first, group_count,
                    eps2, quadrupole, counts, chunk, ws) -> None:
        if quadrupole and sv.quad is None:
            raise ValueError("quadrupole evaluation needs source quadrupoles")
        counts.n_pc += int(group_count[pc_g].sum())
        cp = self._xp()
        from cupyx import scatter_add
        tx, ty, tz = tview
        # Host-side expansion (scaffold; see module docstring).
        reps = group_count[pc_g]
        t = _expand_ranges(group_first[pc_g], reps)
        cell = np.repeat(pc_c, reps)
        dt = np.dtype(getattr(ws, "dtype", np.float64))
        d_t = cp.asarray(t)
        dx = cp.asarray(sv.com_x[cell] - tx[t], dtype=dt)
        dy = cp.asarray(sv.com_y[cell] - ty[t], dtype=dt)
        dz = cp.asarray(sv.com_z[cell] - tz[t], dtype=dt)
        m = cp.asarray(sv.mass[cell], dtype=dt)
        if quadrupole:
            q = cp.asarray(np.stack([col[cell] for col in sv.quad], axis=1),
                           dtype=dt)
            ax, ay, az, ph = self._pc_device(dx, dy, dz, m, q, dt.type(eps2))
        else:
            ax, ay, az, ph = self._pp_device(dx, dy, dz, m, dt.type(eps2))
        self._scatter(cp, scatter_add, d_t, (ax, ay, az, ph),
                      (accx, accy, accz, accp))

    def evaluate_pp(self, accx, accy, accz, accp, tview, sv,
                    pp_g, pp_c, group_first, group_count,
                    eps2, counts, exclude_self, chunk, ws) -> None:
        counts.n_pp += int((group_count[pp_g] * sv.body_count[pp_c]).sum())
        cp = self._xp()
        from cupyx import scatter_add
        tx, ty, tz = tview
        gc = group_count[pp_g]
        bc = sv.body_count[pp_c]
        sz = (gc * bc).astype(np.int64)
        total = int(sz.sum())
        if total == 0:
            return
        pair = np.repeat(np.arange(len(pp_g), dtype=np.int64), sz)
        off = np.arange(total, dtype=np.int64) \
            - np.repeat(np.cumsum(sz) - sz, sz)
        bcp = bc[pair]
        t = group_first[pp_g][pair] + off // bcp
        s = sv.body_first[pp_c][pair] + off % bcp
        dt = np.dtype(getattr(ws, "dtype", np.float64))
        d_t = cp.asarray(t)
        dx = cp.asarray(sv.sx[s] - tx[t], dtype=dt)
        dy = cp.asarray(sv.sy[s] - ty[t], dtype=dt)
        dz = cp.asarray(sv.sz[s] - tz[t], dtype=dt)
        m = cp.asarray(np.where(t == s, 0.0, sv.smass[s])
                       if exclude_self else sv.smass[s], dtype=dt)
        ax, ay, az, ph = self._pp_device(dx, dy, dz, m, dt.type(eps2))
        if exclude_self and eps2 == 0.0:
            zero = cp.asarray(t != s, dtype=dt)
            ax, ay, az, ph = ax * zero, ay * zero, az * zero, ph * zero
        self._scatter(cp, scatter_add, d_t, (ax, ay, az, ph),
                      (accx, accy, accz, accp))

    @staticmethod
    def _scatter(cp, scatter_add, d_t, vals, outs) -> None:
        """scatter_add on device, then one D2H add per component."""
        for val, out in zip(vals, outs):
            dev = cp.zeros(out.shape[0], dtype=cp.float64)
            scatter_add(dev, d_t, val.astype(cp.float64))
            out += cp.asnumpy(dev)

    # -- dense helper -----------------------------------------------------

    def point_forces(self, targets, sources, source_mass, eps2):
        cp = self._xp()
        t = cp.asarray(np.asarray(targets, dtype=np.float64))
        src = cp.asarray(np.asarray(sources, dtype=np.float64))
        sm = cp.asarray(np.asarray(source_mass, dtype=np.float64))
        d = src[None, :, :] - t[:, None, :]
        r2 = (d * d).sum(axis=2) + eps2
        rinv = 1.0 / r2 ** 0.5
        mrinv = sm[None, :] * rinv
        mrinv3 = mrinv * rinv * rinv
        acc = (mrinv3[:, :, None] * d).sum(axis=1)
        phi = -mrinv.sum(axis=1)
        return cp.asnumpy(acc), cp.asnumpy(phi)


def _expand_ranges(first: np.ndarray, count: np.ndarray) -> np.ndarray:
    """Host copy of treewalk's range expansion (avoids a circular import)."""
    total = int(count.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    reps = np.repeat(np.arange(len(first), dtype=np.int64), count)
    offs = np.arange(total, dtype=np.int64) \
        - np.repeat(np.cumsum(count) - count, count)
    return first[reps] + offs
