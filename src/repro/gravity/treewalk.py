"""Group-centric Barnes-Hut tree walk with on-the-fly evaluation.

Reproduces Bonsai's fused tree-walk + force kernel (Sec. III-A): the walk
proceeds once per particle *group* (warp), testing the MAC between the
group's tight AABB and each cell's COM / opening radius.  Accepted cells
become particle-cell (p-c) interactions shared by the whole group; leaf
cells that fail the MAC become particle-particle (p-p) interactions.
Interaction lists are never materialised in full: pairs are expanded and
evaluated in bounded chunks, mirroring the register-resident evaluation
the paper credits for its single-GPU efficiency.

The same machinery walks *remote* LET trees (Sec. III-B2): the walk is
parameterised by an arbitrary source tree, so the distributed code feeds
each received LET through this function and sums the partial forces.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..octree import Octree, compute_opening_radii
from ..octree.properties import aabb_distance
from .flops import InteractionCounts
from .kernels import pc_interactions, pp_interactions

#: Upper bound on expanded (target, source) pairs per evaluation chunk.
#: The kernels allocate O(20) chunk-sized temporaries, so this bounds the
#: walk's working set to a few hundred MB.
DEFAULT_CHUNK = 1 << 21


@dataclasses.dataclass
class TreeWalkResult:
    """Output of a tree-walk force computation.

    ``acc``/``phi`` are indexed by the *original* particle order of the
    target set.  ``counts`` tallies p-p and p-c interactions exactly as
    Table II reports them.
    """

    acc: np.ndarray
    phi: np.ndarray
    counts: InteractionCounts
    n_groups: int = 0
    max_frontier: int = 0


def group_aabbs(tree: Octree, spos: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Tight AABBs of the tree's particle groups (sorted positions)."""
    if tree.group_first is None:
        raise ValueError("make_groups must run before the tree walk")
    starts = tree.group_first.astype(np.intp)
    gmin = np.empty((len(starts), 3))
    gmax = np.empty((len(starts), 3))
    for k in range(3):
        gmin[:, k] = np.minimum.reduceat(spos[:, k], starts)
        gmax[:, k] = np.maximum.reduceat(spos[:, k], starts)
    return gmin, gmax


def walk_interaction_lists(source: Octree, gmin: np.ndarray, gmax: np.ndarray
                           ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Walk ``source`` once per target group, building interaction pairs.

    Parameters
    ----------
    source:
        Source octree with moments and ``r_crit`` filled in.
    gmin, gmax:
        (G, 3) tight AABBs of the target groups.

    Returns
    -------
    pc_g, pc_c:
        Group and cell indices of accepted (multipole) interactions.
    pp_g, pp_c:
        Group and cell indices of opened leaves (direct interactions).
    max_frontier:
        Peak size of the traversal frontier (a walk-cost diagnostic).
    """
    if source.r_crit is None:
        raise ValueError("compute_opening_radii must run before the walk")
    n_groups = len(gmin)
    g = np.arange(n_groups, dtype=np.int64)
    c = np.zeros(n_groups, dtype=np.int64)

    pc_g_parts: list[np.ndarray] = []
    pc_c_parts: list[np.ndarray] = []
    pp_g_parts: list[np.ndarray] = []
    pp_c_parts: list[np.ndarray] = []
    max_frontier = 0

    first_child = source.first_child
    n_children = source.n_children
    com = source.com
    r_crit = source.r_crit

    while len(g):
        max_frontier = max(max_frontier, len(g))
        d = aabb_distance(gmin[g], gmax[g], com[c])
        accept = d > r_crit[c]
        leaf = n_children[c] == 0

        take_pc = accept
        take_pp = (~accept) & leaf
        open_ = (~accept) & (~leaf)

        if take_pc.any():
            pc_g_parts.append(g[take_pc])
            pc_c_parts.append(c[take_pc])
        if take_pp.any():
            pp_g_parts.append(g[take_pp])
            pp_c_parts.append(c[take_pp])

        if open_.any():
            og = g[open_]
            oc = c[open_]
            nch = n_children[oc]
            g = np.repeat(og, nch)
            total = int(nch.sum())
            offs = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(nch) - nch, nch)
            c = np.repeat(first_child[oc], nch) + offs
        else:
            break

    def cat(parts: list[np.ndarray]) -> np.ndarray:
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    return cat(pc_g_parts), cat(pc_c_parts), cat(pp_g_parts), cat(pp_c_parts), max_frontier


def _expand_ranges(first: np.ndarray, count: np.ndarray) -> np.ndarray:
    """Concatenate [first_i, first_i + count_i) ranges into one index array."""
    total = int(count.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    reps = np.repeat(np.arange(len(first), dtype=np.int64), count)
    offs = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(count) - count, count)
    return first[reps] + offs


def evaluate_pc_pairs(acc: np.ndarray, phi: np.ndarray,
                      tpos: np.ndarray, source: Octree,
                      pc_g: np.ndarray, pc_c: np.ndarray,
                      group_first: np.ndarray, group_count: np.ndarray,
                      eps2: float, quadrupole: bool,
                      counts: InteractionCounts,
                      chunk: int = DEFAULT_CHUNK) -> None:
    """Evaluate particle-cell pairs, accumulating into acc/phi (sorted order)."""
    if len(pc_g) == 0:
        return
    n = len(tpos)
    sizes = group_count[pc_g]
    cum = np.cumsum(sizes)
    counts.n_pc += int(cum[-1])
    # Split the pair list so each slice expands to at most `chunk` rows.
    splits = np.searchsorted(cum, np.arange(chunk, int(cum[-1]), chunk), side="left") + 1
    starts = np.concatenate(([0], splits, [len(pc_g)]))
    zero_quad = np.zeros((1, 6))
    for a, b in zip(starts[:-1], starts[1:]):
        if a >= b:
            continue
        gs = pc_g[a:b]
        cs = pc_c[a:b]
        reps = group_count[gs]
        p = _expand_ranges(group_first[gs], reps)
        cell = np.repeat(cs, reps)
        dx = source.com[cell, 0] - tpos[p, 0]
        dy = source.com[cell, 1] - tpos[p, 1]
        dz = source.com[cell, 2] - tpos[p, 2]
        m = source.mass[cell]
        if quadrupole:
            ax, ay, az, ph = pc_interactions(dx, dy, dz, m, source.quad[cell], eps2)
        else:
            ax, ay, az, ph = pc_interactions(dx, dy, dz, m,
                                             np.broadcast_to(zero_quad, (len(m), 6)),
                                             eps2)
        acc[:, 0] += np.bincount(p, weights=ax, minlength=n)
        acc[:, 1] += np.bincount(p, weights=ay, minlength=n)
        acc[:, 2] += np.bincount(p, weights=az, minlength=n)
        phi += np.bincount(p, weights=ph, minlength=n)


def evaluate_pp_pairs(acc: np.ndarray, phi: np.ndarray,
                      tpos: np.ndarray,
                      spos: np.ndarray, smass: np.ndarray,
                      pp_g: np.ndarray, pp_c: np.ndarray,
                      group_first: np.ndarray, group_count: np.ndarray,
                      body_first: np.ndarray, body_count: np.ndarray,
                      eps2: float,
                      counts: InteractionCounts,
                      exclude_self: bool,
                      chunk: int = DEFAULT_CHUNK) -> None:
    """Evaluate particle-particle (group x leaf) pairs.

    ``exclude_self`` zeroes the contribution of identical sorted indices,
    which is required when targets and sources are the same particle set
    (the group inevitably walks into its own leaves).
    """
    if len(pp_g) == 0:
        return
    n = len(tpos)
    gc = group_count[pp_g]
    bc = body_count[pp_c]
    sizes = (gc * bc).astype(np.int64)
    cum = np.cumsum(sizes)
    counts.n_pp += int(cum[-1])
    splits = np.searchsorted(cum, np.arange(chunk, int(cum[-1]), chunk), side="left") + 1
    starts = np.concatenate(([0], splits, [len(pp_g)]))
    for a, b in zip(starts[:-1], starts[1:]):
        if a >= b:
            continue
        gs = pp_g[a:b]
        cs = pp_c[a:b]
        gcs = group_count[gs]
        bcs = body_count[cs]
        sz = (gcs * bcs).astype(np.int64)
        total = int(sz.sum())
        pair = np.repeat(np.arange(len(gs), dtype=np.int64), sz)
        off = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(sz) - sz, sz)
        bcp = bcs[pair]
        t = group_first[gs][pair] + off // bcp
        s = body_first[cs][pair] + off % bcp
        dx = spos[s, 0] - tpos[t, 0]
        dy = spos[s, 1] - tpos[t, 1]
        dz = spos[s, 2] - tpos[t, 2]
        m = smass[s]
        if exclude_self:
            m = np.where(t == s, 0.0, m)
        ax, ay, az, ph = pp_interactions(dx, dy, dz, m, eps2)
        if exclude_self and eps2 == 0.0:
            self_pair = t == s
            ax[self_pair] = ay[self_pair] = az[self_pair] = ph[self_pair] = 0.0
        acc[:, 0] += np.bincount(t, weights=ax, minlength=n)
        acc[:, 1] += np.bincount(t, weights=ay, minlength=n)
        acc[:, 2] += np.bincount(t, weights=az, minlength=n)
        phi += np.bincount(t, weights=ph, minlength=n)


def tree_forces(tree: Octree, pos: np.ndarray, mass: np.ndarray,
                theta: float, eps: float = 0.0,
                mac: str = "bonsai", quadrupole: bool = True,
                source: Octree | None = None,
                source_pos: np.ndarray | None = None,
                source_mass: np.ndarray | None = None,
                chunk: int = DEFAULT_CHUNK) -> TreeWalkResult:
    """Compute gravitational forces on ``tree``'s particles.

    When ``source`` is omitted the walk is self-gravity over the local
    tree.  Passing a different ``source`` tree (with its own particle
    arrays) computes the partial forces exerted by that tree's mass on
    the local particles -- this is how LET contributions are evaluated.

    Parameters
    ----------
    tree:
        Target octree; must have moments and groups.  ``pos``/``mass``
        are the target particles in original order.
    theta, mac:
        Opening angle and MAC flavor (applied to the source tree).
    eps:
        Plummer softening length.
    quadrupole:
        Evaluate quadrupole corrections (65-flop kernel) or monopole only.

    Returns
    -------
    TreeWalkResult with ``acc``/``phi`` in the original particle order.
    """
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    if tree.group_first is None:
        raise ValueError("make_groups must run on the target tree first")

    self_gravity = source is None
    if self_gravity:
        source = tree
        src_pos_sorted = pos[tree.order]
        src_mass_sorted = mass[tree.order]
    else:
        if source_pos is None or source_mass is None:
            raise ValueError("source trees need source_pos/source_mass (sorted order)")
        src_pos_sorted = np.asarray(source_pos, dtype=np.float64)
        src_mass_sorted = np.asarray(source_mass, dtype=np.float64)

    # LET structures arrive with r_crit baked in by the sender (and have
    # no geometric `half`); recompute only for full octrees.
    if getattr(source, "half", None) is not None:
        compute_opening_radii(source, theta, mac)
    elif source.r_crit is None:
        raise ValueError("source structure lacks opening radii")

    tpos = pos[tree.order]
    gmin, gmax = group_aabbs(tree, tpos)
    pc_g, pc_c, pp_g, pp_c, max_frontier = walk_interaction_lists(source, gmin, gmax)

    n = len(pos)
    acc_sorted = np.zeros((n, 3))
    phi_sorted = np.zeros(n)
    counts = InteractionCounts(quadrupole=quadrupole)
    eps2 = float(eps) * float(eps)

    evaluate_pc_pairs(acc_sorted, phi_sorted, tpos, source, pc_g, pc_c,
                      tree.group_first, tree.group_count, eps2, quadrupole,
                      counts, chunk)
    evaluate_pp_pairs(acc_sorted, phi_sorted, tpos, src_pos_sorted,
                      src_mass_sorted, pp_g, pp_c,
                      tree.group_first, tree.group_count,
                      source.body_first, source.body_count, eps2,
                      counts, exclude_self=self_gravity, chunk=chunk)

    # Scatter back to the original particle order.
    acc = np.empty_like(acc_sorted)
    phi = np.empty_like(phi_sorted)
    acc[tree.order] = acc_sorted
    phi[tree.order] = phi_sorted
    return TreeWalkResult(acc=acc, phi=phi, counts=counts,
                          n_groups=len(tree.group_first),
                          max_frontier=max_frontier)
