"""Group-centric Barnes-Hut tree walk with on-the-fly evaluation.

Reproduces Bonsai's fused tree-walk + force kernel (Sec. III-A): the walk
proceeds once per particle *group* (warp), testing the MAC between the
group's tight AABB and each cell's COM / opening radius.  Accepted cells
become particle-cell (p-c) interactions shared by the whole group; leaf
cells that fail the MAC become particle-particle (p-p) interactions.
Interaction lists are never materialised in full: pairs are expanded and
evaluated in bounded chunks, mirroring the register-resident evaluation
the paper credits for its single-GPU efficiency.

The same machinery walks *remote* LET trees (Sec. III-B2): the walk is
parameterised by an arbitrary source tree, so the distributed code feeds
each received LET through this function and sums the partial forces.
:mod:`repro.gravity.forest` batches many remote structures into a single
walk over a concatenated cell forest.

Two evaluation strategies are provided (``scatter=``):

``"segment"`` (default, the fast path)
    Pairs are stable-sorted by group, expanded particle-major through a
    preallocated :class:`KernelWorkspace` (every ufunc writes ``out=``,
    so steady state allocates nothing), evaluated by the in-place kernel
    forms, and accumulated with one ``np.add.reduceat`` segment sum per
    output component -- the targets of one chunk are unique, so the
    scatter is a plain fancy-indexed add instead of four length-N
    ``bincount`` passes per chunk.  Supports float32 evaluation with
    float64 accumulators.

``"bincount"`` (the pre-optimisation baseline)
    The original allocating evaluators, kept for A/B benchmarking
    (``benchmarks/bench_step_pipeline.py``) and as a reference
    implementation.

Interaction *counts* are identical between the two: they are a property
of the walk's pair lists, which neither strategy touches.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..octree import Octree, compute_opening_radii
from ..octree.properties import aabb_distance
from .flops import InteractionCounts
from .kernels import (
    pc_interactions,
    pc_interactions_ws,
    pp_interactions,
    pp_interactions_ws,
)

#: Upper bound on expanded (target, source) pairs per evaluation chunk.
#: Sized so the workspace's ~20 chunk-length buffers stay cache-resident:
#: the chunk sweep in benchmarks/results/step_pipeline.txt runs ~2.4x
#: faster per pair at 2**15 than at the old allocating 2**21.
DEFAULT_CHUNK = 1 << 15

#: Evaluation scatter strategies (see module docstring).
SCATTER_MODES = ("segment", "bincount")

#: Evaluation precisions for the segment path.
PRECISIONS = ("float64", "float32")


@dataclasses.dataclass
class TreeWalkResult:
    """Output of a tree-walk force computation.

    ``acc``/``phi`` are indexed by the *original* particle order of the
    target set.  ``counts`` tallies p-p and p-c interactions exactly as
    Table II reports them.
    """

    acc: np.ndarray
    phi: np.ndarray
    counts: InteractionCounts
    n_groups: int = 0
    max_frontier: int = 0


class KernelWorkspace:
    """Preallocated scratch arena for the chunked evaluators.

    One workspace serves every chunk of every source a rank evaluates:
    sixteen kernel buffers in the evaluation dtype, two float64 gather
    staging buffers, seven int64 index buffers plus a persistent arange,
    and a bool mask for self-pair exclusion.  ``ensure`` grows the arena
    when a chunk expands past the current capacity (a pair list's last
    slice may overshoot ``chunk`` by one pair's expansion) and is a
    no-op afterwards -- steady-state evaluation performs no allocation.

    ``precision="float32"`` makes the kernel buffers single precision
    (the paper's GPU kernels); separations are formed from float64
    inputs and downcast once per gather, and the per-segment partial
    sums are accumulated into float64 outputs.
    """

    _F_NAMES = ("dx", "dy", "dz", "m", "q0", "q1", "q2", "q3", "q4", "q5",
                "r2", "tmp", "trq", "qrx", "qry", "qrz")
    _I_NAMES = ("i1", "i2", "i3", "i4", "i5", "i6", "i7")

    def __init__(self, chunk: int = DEFAULT_CHUNK, precision: str = "float64"):
        if precision not in PRECISIONS:
            raise ValueError(f"unknown precision {precision!r}; "
                             f"expected one of {PRECISIONS}")
        self.precision = precision
        self.dtype = np.float32 if precision == "float32" else np.float64
        self.chunk = 0
        self.ensure(int(chunk))

    def ensure(self, chunk: int) -> "KernelWorkspace":
        """Grow the arena to hold ``chunk`` expanded pairs."""
        if chunk <= self.chunk:
            return self
        self.chunk = int(chunk)
        for name in self._F_NAMES:
            setattr(self, name, np.empty(self.chunk, dtype=self.dtype))
        self.g1 = np.empty(self.chunk, dtype=np.float64)
        self.g2 = np.empty(self.chunk, dtype=np.float64)
        for name in self._I_NAMES:
            setattr(self, name, np.empty(self.chunk, dtype=np.int64))
        self.arange = np.arange(self.chunk, dtype=np.int64)
        self.bmask = np.empty(self.chunk, dtype=bool)
        return self

    @property
    def nbytes(self) -> int:
        """Total arena size (for memory accounting)."""
        itemsize = 4 if self.precision == "float32" else 8
        return self.chunk * (16 * itemsize + 2 * 8 + 8 * 8 + 1)


class SourceView:
    """Contiguous column view of a source structure for fast gathers.

    ``np.take`` on a contiguous 1-D array is the fastest gather numpy
    offers; the tree/LET arrays are (n, 3) and (n, 6) row-major, so the
    per-column copies here pay for themselves after the first chunk.
    Built once per source (or once per forest) and shared by both
    evaluators.
    """

    __slots__ = ("com_x", "com_y", "com_z", "mass", "quad",
                 "body_first", "body_count", "sx", "sy", "sz", "smass")

    @classmethod
    def build(cls, source, spos: np.ndarray | None = None,
              smass: np.ndarray | None = None) -> "SourceView":
        v = cls()
        com = source.com
        v.com_x = np.ascontiguousarray(com[:, 0])
        v.com_y = np.ascontiguousarray(com[:, 1])
        v.com_z = np.ascontiguousarray(com[:, 2])
        v.mass = np.ascontiguousarray(source.mass)
        q = getattr(source, "quad", None)
        v.quad = tuple(np.ascontiguousarray(q[:, k]) for k in range(6)) \
            if q is not None else None
        v.body_first = np.asarray(source.body_first, dtype=np.int64)
        v.body_count = np.asarray(source.body_count, dtype=np.int64)
        if spos is not None:
            v.sx = np.ascontiguousarray(spos[:, 0])
            v.sy = np.ascontiguousarray(spos[:, 1])
            v.sz = np.ascontiguousarray(spos[:, 2])
            v.smass = np.ascontiguousarray(smass)
        else:
            v.sx = v.sy = v.sz = v.smass = None
        return v


def target_columns(tpos: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Contiguous per-axis columns of the (sorted) target positions."""
    return (np.ascontiguousarray(tpos[:, 0]),
            np.ascontiguousarray(tpos[:, 1]),
            np.ascontiguousarray(tpos[:, 2]))


def group_aabbs(tree: Octree, spos: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Tight AABBs of the tree's particle groups (sorted positions)."""
    if tree.group_first is None:
        raise ValueError("make_groups must run before the tree walk")
    starts = tree.group_first.astype(np.intp)
    gmin = np.empty((len(starts), 3))
    gmax = np.empty((len(starts), 3))
    for k in range(3):
        gmin[:, k] = np.minimum.reduceat(spos[:, k], starts)
        gmax[:, k] = np.maximum.reduceat(spos[:, k], starts)
    return gmin, gmax


def walk_frontier(first_child: np.ndarray, n_children: np.ndarray,
                  com: np.ndarray, r_crit: np.ndarray,
                  gmin: np.ndarray, gmax: np.ndarray,
                  g: np.ndarray, c: np.ndarray,
                  open_out: list | None = None
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Drive a (group, cell) frontier to completion.

    The core breadth-first MAC loop, parameterised by the initial
    frontier so that :mod:`repro.gravity.forest` can seed it with every
    remote source at once.  Mask selection and ``np.repeat`` both
    preserve relative order, so the pair lists of a multi-source
    frontier are the per-source lists interleaved level-major -- a
    stable sort by source id recovers each source's single-walk pair
    order exactly (the batched-walk equivalence the fast path relies
    on).

    ``open_out``, when given, collects every *opened* (group, cell)
    visit as ``(og, oc)`` array pairs, one per frontier iteration --
    together with the pc/pp lists this is the walk's complete visit set,
    which :mod:`repro.gravity.warmstart` caches to seed the next step.
    """
    pc_g_parts: list[np.ndarray] = []
    pc_c_parts: list[np.ndarray] = []
    pp_g_parts: list[np.ndarray] = []
    pp_c_parts: list[np.ndarray] = []
    max_frontier = 0

    while len(g):
        max_frontier = max(max_frontier, len(g))
        d = aabb_distance(gmin[g], gmax[g], com[c])
        accept = d > r_crit[c]
        leaf = n_children[c] == 0

        take_pc = accept
        take_pp = (~accept) & leaf
        open_ = (~accept) & (~leaf)

        if take_pc.any():
            pc_g_parts.append(g[take_pc])
            pc_c_parts.append(c[take_pc])
        if take_pp.any():
            pp_g_parts.append(g[take_pp])
            pp_c_parts.append(c[take_pp])

        if open_.any():
            if open_out is not None:
                open_out.append((g[open_], c[open_]))
            og = g[open_]
            oc = c[open_]
            nch = n_children[oc]
            g = np.repeat(og, nch)
            total = int(nch.sum())
            offs = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(nch) - nch, nch)
            c = np.repeat(first_child[oc], nch) + offs
        else:
            break

    def cat(parts: list[np.ndarray]) -> np.ndarray:
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    return cat(pc_g_parts), cat(pc_c_parts), cat(pp_g_parts), cat(pp_c_parts), max_frontier


def walk_interaction_lists(source, gmin: np.ndarray, gmax: np.ndarray,
                           open_out: list | None = None
                           ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Walk ``source`` once per target group, building interaction pairs.

    Parameters
    ----------
    source:
        Source octree (or LET-like structure) with moments and
        ``r_crit`` filled in.
    gmin, gmax:
        (G, 3) tight AABBs of the target groups.

    Returns
    -------
    pc_g, pc_c:
        Group and cell indices of accepted (multipole) interactions.
    pp_g, pp_c:
        Group and cell indices of opened leaves (direct interactions).
    max_frontier:
        Peak size of the traversal frontier (a walk-cost diagnostic).
    """
    if source.r_crit is None:
        raise ValueError("compute_opening_radii must run before the walk")
    n_groups = len(gmin)
    g = np.arange(n_groups, dtype=np.int64)
    c = np.zeros(n_groups, dtype=np.int64)
    return walk_frontier(source.first_child, source.n_children,
                         source.com, source.r_crit, gmin, gmax, g, c,
                         open_out=open_out)


def _expand_ranges(first: np.ndarray, count: np.ndarray) -> np.ndarray:
    """Concatenate [first_i, first_i + count_i) ranges into one index array."""
    total = int(count.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    reps = np.repeat(np.arange(len(first), dtype=np.int64), count)
    offs = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(count) - count, count)
    return first[reps] + offs


def _chunk_starts(cum: np.ndarray, n_pairs: int, chunk: int) -> np.ndarray:
    """Pair-list slice boundaries so each slice expands to ~chunk rows."""
    total = int(cum[-1])
    splits = np.searchsorted(cum, np.arange(chunk, total, chunk),
                             side="left") + 1
    return np.concatenate(([0], splits, [n_pairs]))


# ---------------------------------------------------------------------------
# Baseline evaluators ("bincount"): the pre-optimisation implementation,
# kept verbatim for A/B benchmarking against the segment fast path.
# ---------------------------------------------------------------------------

def _evaluate_pc_bincount(acc: np.ndarray, phi: np.ndarray,
                          tpos: np.ndarray, source,
                          pc_g: np.ndarray, pc_c: np.ndarray,
                          group_first: np.ndarray, group_count: np.ndarray,
                          eps2: float, quadrupole: bool,
                          counts: InteractionCounts, chunk: int) -> None:
    n = len(tpos)
    sizes = group_count[pc_g]
    cum = np.cumsum(sizes)
    counts.n_pc += int(cum[-1])
    starts = _chunk_starts(cum, len(pc_g), chunk)
    for a, b in zip(starts[:-1], starts[1:]):
        if a >= b:
            continue
        gs = pc_g[a:b]
        cs = pc_c[a:b]
        reps = group_count[gs]
        p = _expand_ranges(group_first[gs], reps)
        cell = np.repeat(cs, reps)
        dx = source.com[cell, 0] - tpos[p, 0]
        dy = source.com[cell, 1] - tpos[p, 1]
        dz = source.com[cell, 2] - tpos[p, 2]
        m = source.mass[cell]
        quad = source.quad[cell] if quadrupole else None
        ax, ay, az, ph = pc_interactions(dx, dy, dz, m, quad, eps2)
        acc[:, 0] += np.bincount(p, weights=ax, minlength=n)
        acc[:, 1] += np.bincount(p, weights=ay, minlength=n)
        acc[:, 2] += np.bincount(p, weights=az, minlength=n)
        phi += np.bincount(p, weights=ph, minlength=n)


def _evaluate_pp_bincount(acc: np.ndarray, phi: np.ndarray,
                          tpos: np.ndarray,
                          spos: np.ndarray, smass: np.ndarray,
                          pp_g: np.ndarray, pp_c: np.ndarray,
                          group_first: np.ndarray, group_count: np.ndarray,
                          body_first: np.ndarray, body_count: np.ndarray,
                          eps2: float, counts: InteractionCounts,
                          exclude_self: bool, chunk: int) -> None:
    n = len(tpos)
    gc = group_count[pp_g]
    bc = body_count[pp_c]
    sizes = (gc * bc).astype(np.int64)
    cum = np.cumsum(sizes)
    counts.n_pp += int(cum[-1])
    starts = _chunk_starts(cum, len(pp_g), chunk)
    for a, b in zip(starts[:-1], starts[1:]):
        if a >= b:
            continue
        gs = pp_g[a:b]
        cs = pp_c[a:b]
        gcs = group_count[gs]
        bcs = body_count[cs]
        sz = (gcs * bcs).astype(np.int64)
        total = int(sz.sum())
        pair = np.repeat(np.arange(len(gs), dtype=np.int64), sz)
        off = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(sz) - sz, sz)
        bcp = bcs[pair]
        t = group_first[gs][pair] + off // bcp
        s = body_first[cs][pair] + off % bcp
        dx = spos[s, 0] - tpos[t, 0]
        dy = spos[s, 1] - tpos[t, 1]
        dz = spos[s, 2] - tpos[t, 2]
        m = smass[s]
        if exclude_self:
            m = np.where(t == s, 0.0, m)
        ax, ay, az, ph = pp_interactions(dx, dy, dz, m, eps2)
        if exclude_self and eps2 == 0.0:
            self_pair = t == s
            ax[self_pair] = ay[self_pair] = az[self_pair] = ph[self_pair] = 0.0
        acc[:, 0] += np.bincount(t, weights=ax, minlength=n)
        acc[:, 1] += np.bincount(t, weights=ay, minlength=n)
        acc[:, 2] += np.bincount(t, weights=az, minlength=n)
        phi += np.bincount(t, weights=ph, minlength=n)


# ---------------------------------------------------------------------------
# Fast-path evaluators ("segment"): workspace expansion + segment reduction.
# ---------------------------------------------------------------------------

def _sort_pairs(pg: np.ndarray, pc: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Stable-sort a pair list by group.

    Walk output is level-major: a concatenation of per-level slices each
    already ascending in ``g``, so the adaptive stable sort runs in
    near-linear time (galloping merge of a few sorted runs).
    """
    order = np.argsort(pg, kind="stable")
    return pg[order], pc[order]


def _gather(col: np.ndarray, idx: np.ndarray, scratch: np.ndarray,
            out: np.ndarray) -> np.ndarray:
    """take() into ``out``, staging through float64 scratch when downcasting."""
    if out.dtype == col.dtype:
        np.take(col, idx, out=out)
    else:
        np.take(col, idx, out=scratch)
        np.copyto(out, scratch, casting="same_kind")
    return out


def _gather_diff(acol: np.ndarray, aidx: np.ndarray,
                 bcol: np.ndarray, bidx: np.ndarray,
                 g1: np.ndarray, g2: np.ndarray, out: np.ndarray) -> np.ndarray:
    """out = acol[aidx] - bcol[bidx] without temporaries (downcasts via out=)."""
    np.take(acol, aidx, out=g1)
    np.take(bcol, bidx, out=g2)
    np.subtract(g1, g2, out=out)
    return out


def _run_layout(key: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Detect maximal constant runs in ``key``: (run_first_index, run_length)."""
    change = np.flatnonzero(key[1:] != key[:-1]) + 1
    rp = np.concatenate(([0], change))
    lengths = np.diff(np.concatenate((rp, [len(key)])))
    return rp, lengths


def _row_expand(ws: KernelWorkspace, row_start: np.ndarray, total: int
                ) -> tuple[np.ndarray, np.ndarray]:
    """Per-row run ids and in-run offsets via the indicator/cumsum trick.

    Returns (rid, off) slices of workspace buffers i1/i2.
    """
    rid = ws.i1[:total]
    rid[:] = 0
    if len(row_start) > 2:
        rid[row_start[1:-1]] = 1
    np.cumsum(rid, out=rid)
    off = ws.i2[:total]
    np.take(row_start, rid, out=off)
    np.subtract(ws.arange[:total], off, out=off)
    return rid, off


def _segment_scatter(ws: KernelWorkspace, vals, run_gfirst: np.ndarray,
                     run_nseg: np.ndarray, run_seglen: np.ndarray,
                     row_start: np.ndarray, outs) -> None:
    """Reduce per-row kernel outputs into per-particle accumulators.

    Each run contributes ``run_nseg`` segments of ``run_seglen``
    consecutive rows; segment ``j`` of run ``r`` targets particle
    ``run_gfirst[r] + j``.  Within one chunk every run is a distinct
    group, so the targets are unique and the scatter is a plain
    fancy-indexed add -- no ``bincount``, no length-N temporaries.
    """
    seg_start = np.concatenate(([0], np.cumsum(run_nseg)))
    n_seg = int(seg_start[-1])
    srid = ws.i3[:n_seg]
    srid[:] = 0
    if len(seg_start) > 2:
        srid[seg_start[1:-1]] = 1
    np.cumsum(srid, out=srid)
    sj = ws.i4[:n_seg]
    np.take(seg_start, srid, out=sj)
    np.subtract(ws.arange[:n_seg], sj, out=sj)
    st = ws.i1[:n_seg]
    np.take(run_gfirst, srid, out=st)
    np.add(st, sj, out=st)
    sstart = ws.i5[:n_seg]
    np.take(run_seglen, srid, out=sstart)
    np.multiply(sstart, sj, out=sstart)
    np.take(row_start, srid, out=sj)
    np.add(sstart, sj, out=sstart)
    for val, sbuf, out_col in zip(vals, (ws.trq, ws.qrx, ws.qry, ws.qrz), outs):
        sums = sbuf[:n_seg]
        np.add.reduceat(val, sstart, out=sums)
        out_col[st] += sums


def _evaluate_pc_segment(accx, accy, accz, accp,
                         tview, sv: SourceView,
                         pc_g: np.ndarray, pc_c: np.ndarray,
                         group_first: np.ndarray, group_count: np.ndarray,
                         eps2: float, quadrupole: bool,
                         counts: InteractionCounts, chunk: int,
                         ws: KernelWorkspace) -> None:
    if quadrupole and sv.quad is None:
        raise ValueError("quadrupole evaluation needs source quadrupoles")
    gs_all, cs_all = _sort_pairs(pc_g, pc_c)
    sizes = group_count[gs_all]
    cum = np.cumsum(sizes)
    counts.n_pc += int(cum[-1])
    starts = _chunk_starts(cum, len(gs_all), chunk)
    tx, ty, tz = tview
    for a, b in zip(starts[:-1], starts[1:]):
        if a >= b:
            continue
        gs = gs_all[a:b]
        cs = cs_all[a:b]
        # Run layout: after the group sort each group's pairs are
        # contiguous, so runs == groups and chunk targets are unique.
        rp, k = _run_layout(gs)
        grun = gs[rp]
        mrun = group_count[grun]
        gfrun = group_first[grun]
        row_start = np.concatenate(([0], np.cumsum(mrun * k)))
        total = int(row_start[-1])
        ws.ensure(total)

        rid, off = _row_expand(ws, row_start, total)
        kpr = ws.i3[:total]
        np.take(k, rid, out=kpr)
        pl = ws.i4[:total]
        np.floor_divide(off, kpr, out=pl)          # particle slot in group
        cl = ws.i5[:total]
        np.multiply(pl, kpr, out=cl)
        np.subtract(off, cl, out=cl)               # cell slot in run
        np.take(rp, rid, out=kpr)
        np.add(kpr, cl, out=cl)                    # pair index in chunk
        cell = ws.i6[:total]
        np.take(cs, cl, out=cell)
        t = off                                    # reuse: off is consumed
        np.take(gfrun, rid, out=t)
        np.add(t, pl, out=t)

        dx = ws.dx[:total]
        dy = ws.dy[:total]
        dz = ws.dz[:total]
        m = ws.m[:total]
        g1 = ws.g1[:total]
        g2 = ws.g2[:total]
        _gather_diff(sv.com_x, cell, tx, t, g1, g2, dx)
        _gather_diff(sv.com_y, cell, ty, t, g1, g2, dy)
        _gather_diff(sv.com_z, cell, tz, t, g1, g2, dz)
        _gather(sv.mass, cell, g1, m)
        if quadrupole:
            qb = (ws.q0[:total], ws.q1[:total], ws.q2[:total],
                  ws.q3[:total], ws.q4[:total], ws.q5[:total])
            for col, buf in zip(sv.quad, qb):
                _gather(col, cell, g1, buf)
            ax, ay, az, ph = pc_interactions_ws(
                dx, dy, dz, m, qb, eps2, ws.r2[:total], ws.tmp[:total],
                ws.trq[:total], ws.qrx[:total], ws.qry[:total], ws.qrz[:total])
        else:
            ax, ay, az, ph = pc_interactions_ws(
                dx, dy, dz, m, None, eps2, ws.r2[:total], ws.tmp[:total],
                ws.trq[:total], ws.qrx[:total], ws.qry[:total], ws.qrz[:total])

        _segment_scatter(ws, (ax, ay, az, ph), gfrun, mrun, k, row_start,
                         (accx, accy, accz, accp))


def _evaluate_pp_segment(accx, accy, accz, accp,
                         tview, sv: SourceView,
                         pp_g: np.ndarray, pp_c: np.ndarray,
                         group_first: np.ndarray, group_count: np.ndarray,
                         eps2: float, counts: InteractionCounts,
                         exclude_self: bool, chunk: int,
                         ws: KernelWorkspace) -> None:
    gs_all, cs_all = _sort_pairs(pp_g, pp_c)
    bc_all = sv.body_count[cs_all]
    sizes = group_count[gs_all] * bc_all
    cum = np.cumsum(sizes)
    counts.n_pp += int(cum[-1])
    if (bc_all == 0).any():
        # Pruned multipole-only leaves contribute no bodies; drop them so
        # run bookkeeping never sees an empty bodylist.
        keep = bc_all > 0
        gs_all, cs_all, bc_all = gs_all[keep], cs_all[keep], bc_all[keep]
        sizes = sizes[keep]
        cum = np.cumsum(sizes)
        if len(cum) == 0:
            return
    starts = _chunk_starts(cum, len(gs_all), chunk)
    tx, ty, tz = tview
    for a, b in zip(starts[:-1], starts[1:]):
        if a >= b:
            continue
        gs = gs_all[a:b]
        cs = cs_all[a:b]
        bc = bc_all[a:b]
        rp, _ = _run_layout(gs)
        grun = gs[rp]
        mrun = group_count[grun]
        gfrun = group_first[grun]
        # Bodylist: the concatenated particles of every leaf in the
        # chunk; a run's leaves are adjacent, so its bodies form one
        # contiguous span of length brun.
        bl_pair_start = np.concatenate(([0], np.cumsum(bc)))
        n_bodies = int(bl_pair_start[-1])
        brun = np.add.reduceat(bc, rp)
        bl_run_start = bl_pair_start[rp]
        row_start = np.concatenate(([0], np.cumsum(mrun * brun)))
        total = int(row_start[-1])
        ws.ensure(total)

        blid, boff = _row_expand(ws, bl_pair_start, n_bodies)
        bl = ws.i7[:n_bodies]
        np.take(sv.body_first[cs], blid, out=bl)
        np.add(bl, boff, out=bl)

        rid, off = _row_expand(ws, row_start, total)
        bpr = ws.i3[:total]
        np.take(brun, rid, out=bpr)
        pl = ws.i4[:total]
        np.floor_divide(off, bpr, out=pl)          # particle slot in group
        blo = ws.i5[:total]
        np.multiply(pl, bpr, out=blo)
        np.subtract(off, blo, out=blo)             # body slot in run
        np.take(bl_run_start, rid, out=bpr)
        np.add(bpr, blo, out=blo)                  # bodylist index
        s = ws.i6[:total]
        np.take(bl, blo, out=s)
        t = off
        np.take(gfrun, rid, out=t)
        np.add(t, pl, out=t)

        dx = ws.dx[:total]
        dy = ws.dy[:total]
        dz = ws.dz[:total]
        m = ws.m[:total]
        g1 = ws.g1[:total]
        g2 = ws.g2[:total]
        _gather_diff(sv.sx, s, tx, t, g1, g2, dx)
        _gather_diff(sv.sy, s, ty, t, g1, g2, dy)
        _gather_diff(sv.sz, s, tz, t, g1, g2, dz)
        _gather(sv.smass, s, g1, m)
        if exclude_self:
            mask = ws.bmask[:total]
            np.equal(t, s, out=mask)
            m[mask] = 0.0
        ax, ay, az, ph = pp_interactions_ws(dx, dy, dz, m, eps2,
                                            ws.r2[:total], ws.tmp[:total])
        if exclude_self and eps2 == 0.0:
            ax[mask] = ay[mask] = az[mask] = ph[mask] = 0.0

        _segment_scatter(ws, (ax, ay, az, ph), gfrun, mrun, brun, row_start,
                         (accx, accy, accz, accp))


# ---------------------------------------------------------------------------
# Public evaluators: dispatch on scatter strategy.
# ---------------------------------------------------------------------------

def _resolve_eval_backend(backend, scatter: str):
    """Resolve the backend knob for one evaluator call.

    The ``bincount`` reference scatter predates the registry and is
    numpy-only; any other backend must use the segment path (also
    enforced by ``SimulationConfig.__post_init__``).
    """
    from .backends import NumpyBackend, get_backend
    be = get_backend(backend)
    if scatter == "bincount" and not isinstance(be, NumpyBackend):
        raise ValueError(
            f"scatter='bincount' is the numpy reference path; "
            f"backend {be.name!r} requires scatter='segment'")
    return be


def evaluate_pc_pairs(acc: np.ndarray, phi: np.ndarray,
                      tpos: np.ndarray, source,
                      pc_g: np.ndarray, pc_c: np.ndarray,
                      group_first: np.ndarray, group_count: np.ndarray,
                      eps2: float, quadrupole: bool,
                      counts: InteractionCounts,
                      chunk: int = DEFAULT_CHUNK,
                      scatter: str = "segment",
                      workspace: KernelWorkspace | None = None,
                      sview: SourceView | None = None,
                      tview=None,
                      backend="numpy") -> None:
    """Evaluate particle-cell pairs, accumulating into acc/phi (sorted order).

    ``backend`` is a registered compute-backend name or a resolved
    :class:`~repro.gravity.backends.ComputeBackend` instance (hot paths
    resolve once per step and pass the object).
    """
    if len(pc_g) == 0:
        return
    be = _resolve_eval_backend(backend, scatter)
    if scatter == "bincount":
        _evaluate_pc_bincount(acc, phi, tpos, source, pc_g, pc_c,
                              group_first, group_count, eps2, quadrupole,
                              counts, chunk)
        return
    ws = workspace if workspace is not None else be.make_workspace(chunk)
    sv = sview if sview is not None else SourceView.build(source)
    tv = tview if tview is not None else target_columns(tpos)
    be.evaluate_pc(acc[:, 0], acc[:, 1], acc[:, 2], phi, tv, sv,
                   pc_g, pc_c, group_first, group_count, eps2,
                   quadrupole, counts, chunk, ws)


def evaluate_pp_pairs(acc: np.ndarray, phi: np.ndarray,
                      tpos: np.ndarray,
                      spos: np.ndarray, smass: np.ndarray,
                      pp_g: np.ndarray, pp_c: np.ndarray,
                      group_first: np.ndarray, group_count: np.ndarray,
                      body_first: np.ndarray, body_count: np.ndarray,
                      eps2: float,
                      counts: InteractionCounts,
                      exclude_self: bool,
                      chunk: int = DEFAULT_CHUNK,
                      scatter: str = "segment",
                      workspace: KernelWorkspace | None = None,
                      sview: SourceView | None = None,
                      tview=None,
                      backend="numpy") -> None:
    """Evaluate particle-particle (group x leaf) pairs.

    ``exclude_self`` zeroes the contribution of identical sorted indices,
    which is required when targets and sources are the same particle set
    (the group inevitably walks into its own leaves).  ``backend`` as in
    :func:`evaluate_pc_pairs`.
    """
    if len(pp_g) == 0:
        return
    be = _resolve_eval_backend(backend, scatter)
    if scatter == "bincount":
        _evaluate_pp_bincount(acc, phi, tpos, spos, smass, pp_g, pp_c,
                              group_first, group_count, body_first,
                              body_count, eps2, counts, exclude_self, chunk)
        return
    ws = workspace if workspace is not None else be.make_workspace(chunk)
    if sview is None or sview.sx is None:
        sv = SourceView.__new__(SourceView)
        sv.body_first = np.asarray(body_first, dtype=np.int64)
        sv.body_count = np.asarray(body_count, dtype=np.int64)
        sv.sx = np.ascontiguousarray(spos[:, 0])
        sv.sy = np.ascontiguousarray(spos[:, 1])
        sv.sz = np.ascontiguousarray(spos[:, 2])
        sv.smass = np.ascontiguousarray(smass)
    else:
        sv = sview
    tv = tview if tview is not None else target_columns(tpos)
    be.evaluate_pp(acc[:, 0], acc[:, 1], acc[:, 2], phi, tv, sv,
                   pp_g, pp_c, group_first, group_count, eps2,
                   counts, exclude_self, chunk, ws)


def tree_forces(tree: Octree, pos: np.ndarray, mass: np.ndarray,
                theta: float, eps: float = 0.0,
                mac: str = "bonsai", quadrupole: bool = True,
                source: Octree | None = None,
                source_pos: np.ndarray | None = None,
                source_mass: np.ndarray | None = None,
                chunk: int = DEFAULT_CHUNK,
                scatter: str = "segment",
                precision: str = "float64",
                workspace: KernelWorkspace | None = None,
                backend="numpy") -> TreeWalkResult:
    """Compute gravitational forces on ``tree``'s particles.

    When ``source`` is omitted the walk is self-gravity over the local
    tree.  Passing a different ``source`` tree (with its own particle
    arrays) computes the partial forces exerted by that tree's mass on
    the local particles -- this is how LET contributions are evaluated.

    Parameters
    ----------
    tree:
        Target octree; must have moments and groups.  ``pos``/``mass``
        are the target particles in original order.
    theta, mac:
        Opening angle and MAC flavor (applied to the source tree).
    eps:
        Plummer softening length.
    quadrupole:
        Evaluate quadrupole corrections (65-flop kernel) or monopole only.
    chunk, scatter, precision, workspace:
        Evaluation strategy knobs (see module docstring).  A provided
        ``workspace`` overrides ``precision``; reuse one across calls to
        keep steady-state evaluation allocation-free.
    backend:
        Compute-backend name or instance executing the kernels
        (:mod:`repro.gravity.backends`); the walk, the pair lists and
        the interaction counts are backend-independent.

    Returns
    -------
    TreeWalkResult with ``acc``/``phi`` in the original particle order.
    """
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    if tree.group_first is None:
        raise ValueError("make_groups must run on the target tree first")
    if scatter not in SCATTER_MODES:
        raise ValueError(f"unknown scatter {scatter!r}; "
                         f"expected one of {SCATTER_MODES}")

    self_gravity = source is None
    if self_gravity:
        source = tree
        src_pos_sorted = pos[tree.order]
        src_mass_sorted = mass[tree.order]
    else:
        if source_pos is None or source_mass is None:
            raise ValueError("source trees need source_pos/source_mass (sorted order)")
        src_pos_sorted = np.asarray(source_pos, dtype=np.float64)
        src_mass_sorted = np.asarray(source_mass, dtype=np.float64)

    # LET structures arrive with r_crit baked in by the sender (and have
    # no geometric `half`); recompute only for full octrees.
    if getattr(source, "half", None) is not None:
        compute_opening_radii(source, theta, mac)
    elif source.r_crit is None:
        raise ValueError("source structure lacks opening radii")

    tpos = pos[tree.order] if not self_gravity else src_pos_sorted
    gmin, gmax = group_aabbs(tree, tpos)
    pc_g, pc_c, pp_g, pp_c, max_frontier = walk_interaction_lists(source, gmin, gmax)

    n = len(pos)
    acc_sorted = np.zeros((n, 3))
    phi_sorted = np.zeros(n)
    counts = InteractionCounts(quadrupole=quadrupole)
    eps2 = float(eps) * float(eps)

    be = _resolve_eval_backend(backend, scatter)
    if scatter == "segment":
        ws = workspace if workspace is not None \
            else be.make_workspace(chunk, precision)
        sv = SourceView.build(source, src_pos_sorted, src_mass_sorted)
        tv = (sv.sx, sv.sy, sv.sz) if self_gravity else target_columns(tpos)
    else:
        ws = sv = tv = None

    evaluate_pc_pairs(acc_sorted, phi_sorted, tpos, source, pc_g, pc_c,
                      tree.group_first, tree.group_count, eps2, quadrupole,
                      counts, chunk, scatter=scatter, workspace=ws,
                      sview=sv, tview=tv, backend=be)
    evaluate_pp_pairs(acc_sorted, phi_sorted, tpos, src_pos_sorted,
                      src_mass_sorted, pp_g, pp_c,
                      tree.group_first, tree.group_count,
                      source.body_first, source.body_count, eps2,
                      counts, exclude_self=self_gravity, chunk=chunk,
                      scatter=scatter, workspace=ws, sview=sv, tview=tv,
                      backend=be)

    # Scatter back to the original particle order.
    acc = np.empty_like(acc_sorted)
    phi = np.empty_like(phi_sorted)
    acc[tree.order] = acc_sorted
    phi[tree.order] = phi_sorted
    return TreeWalkResult(acc=acc, phi=phi, counts=counts,
                          n_groups=len(tree.group_first),
                          max_frontier=max_frontier)
