"""Floating-point operation accounting (paper Sec. VI-A).

The paper counts 23 flops per particle-particle (p-p) interaction
(4 sub + 3 mul + 6 fma + 1 rsqrt, with rsqrt counted as 4 flops) and 65
flops per particle-cell (p-c) interaction with quadrupole corrections
(4 sub + 6 add + 17 mul + 17 fma + 1 rsqrt).  Earlier Gordon Bell
records used 38 flops per p-p; we expose that constant too so benchmark
output can be compared against both conventions.
"""

from __future__ import annotations

import dataclasses

#: Flops per particle-particle interaction (paper's count).
FLOPS_PER_PP = 23

#: Flops per particle-cell interaction with quadrupole terms.
FLOPS_PER_PC = 65

#: Monopole-only particle-cell interaction: identical arithmetic to p-p.
FLOPS_PER_PC_MONOPOLE = 23

#: The legacy Warren & Salmon convention used by refs [28]-[32].
FLOPS_PER_PP_LEGACY = 38


@dataclasses.dataclass
class InteractionCounts:
    """Tally of gravitational interactions evaluated.

    ``n_pp`` / ``n_pc`` are the total numbers of particle-particle and
    particle-cell interactions -- the quantities Table II reports per
    particle ("interaction count per particle" rows).
    """

    n_pp: int = 0
    n_pc: int = 0
    quadrupole: bool = True

    def add(self, other: "InteractionCounts") -> None:
        """Accumulate another tally in place."""
        self.n_pp += other.n_pp
        self.n_pc += other.n_pc

    @property
    def flops(self) -> int:
        """Total force-kernel flops under the paper's convention."""
        per_pc = FLOPS_PER_PC if self.quadrupole else FLOPS_PER_PC_MONOPOLE
        return FLOPS_PER_PP * self.n_pp + per_pc * self.n_pc

    def per_particle(self, n: int) -> tuple[float, float]:
        """(p-p, p-c) interactions per particle, as reported in Table II."""
        if n <= 0:
            raise ValueError("n must be positive")
        return self.n_pp / n, self.n_pc / n

    def tflops(self, seconds: float) -> float:
        """Sustained Tflop/s given an execution time."""
        if seconds <= 0.0:
            return 0.0
        return self.flops / seconds / 1.0e12

    def __add__(self, other: "InteractionCounts") -> "InteractionCounts":
        return InteractionCounts(n_pp=self.n_pp + other.n_pp,
                                 n_pc=self.n_pc + other.n_pc,
                                 quadrupole=self.quadrupole)
