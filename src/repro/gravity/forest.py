"""Batched multi-source tree walks over a concatenated cell forest.

The distributed force phase (Sec. III-B2) historically ran one frontier
walk plus one chunked evaluation per remote structure: P-1 boundary/LET
walks per rank per step, each with a tiny pair list and the full fixed
cost of a traversal.  A :class:`SourceForest` concatenates any number of
LET-like structures into one cell array whose roots seed a single
frontier, so every remote source is walked in one pass -- the "process
them as they arrive" of the paper collapses to one batch per drain of
arrived LETs.

Correctness rests on an ordering property of
:func:`repro.gravity.treewalk.walk_frontier`: mask selection and
``np.repeat`` preserve relative order, so a frontier seeded source-major
produces pair lists that are the per-source single-walk lists
interleaved level-major.  :func:`split_by_source` (a stable sort on the
source id recovered from the cell index) therefore yields each source's
pairs in *exactly* the order a dedicated walk would have produced --
evaluating the segments per source in forest order gives bitwise the
same forces and byte-identical interaction counts as the per-source
path (``tests/test_forest_walk.py`` pins this at 1-8 ranks).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .treewalk import walk_frontier


@dataclasses.dataclass
class SourceForest:
    """Concatenation of LET-like source structures for one batched walk.

    Cell indices are forest-global: source ``i``'s cells occupy
    ``[cell_offsets[i], cell_offsets[i+1])`` and its root is
    ``cell_offsets[i]``.  ``body_first`` is pre-offset into the
    concatenated ``part_pos``/``part_mass`` arrays, so the forest
    duck-types the evaluators' source interface directly -- no index
    remapping at evaluation time.  ``first_child`` entries of leaves are
    offset garbage, but the walk never dereferences a leaf's child
    pointer.
    """

    first_child: np.ndarray
    n_children: np.ndarray
    body_first: np.ndarray
    body_count: np.ndarray
    com: np.ndarray
    mass: np.ndarray
    quad: np.ndarray
    r_crit: np.ndarray
    part_pos: np.ndarray
    part_mass: np.ndarray
    #: (n_sources + 1,) prefix of cell counts; roots are the prefix heads.
    cell_offsets: np.ndarray
    #: Originating rank of each source, in concatenation order.
    src_ranks: tuple[int, ...]

    @property
    def n_sources(self) -> int:
        return len(self.src_ranks)

    @property
    def n_cells(self) -> int:
        return int(self.cell_offsets[-1])

    @classmethod
    def concatenate(cls, sources, ranks) -> "SourceForest":
        """Build a forest from LET-like structures (one per remote rank).

        ``sources`` need ``first_child``, ``n_children``, ``body_first``,
        ``body_count``, ``com``, ``mass``, ``quad``, ``r_crit``,
        ``part_pos``, ``part_mass`` -- the :class:`~repro.parallel.lettree.LETData`
        interface shared by boundary structures and full LETs.
        """
        if len(sources) == 0:
            raise ValueError("cannot build a forest over zero sources")
        n_cells = np.array([len(s.mass) for s in sources], dtype=np.int64)
        n_parts = np.array([len(s.part_mass) for s in sources], dtype=np.int64)
        cell_offsets = np.concatenate(([0], np.cumsum(n_cells)))
        part_offsets = np.concatenate(([0], np.cumsum(n_parts)))
        return cls(
            first_child=np.concatenate(
                [s.first_child + o for s, o in zip(sources, cell_offsets)]),
            n_children=np.concatenate([s.n_children for s in sources]),
            body_first=np.concatenate(
                [s.body_first + o for s, o in zip(sources, part_offsets)]),
            body_count=np.concatenate([s.body_count for s in sources]),
            com=np.concatenate([s.com for s in sources]),
            mass=np.concatenate([s.mass for s in sources]),
            quad=np.concatenate([s.quad for s in sources]),
            r_crit=np.concatenate([s.r_crit for s in sources]),
            part_pos=np.concatenate([s.part_pos for s in sources]) if
            part_offsets[-1] else np.empty((0, 3)),
            part_mass=np.concatenate([s.part_mass for s in sources]) if
            part_offsets[-1] else np.empty(0),
            cell_offsets=cell_offsets,
            src_ranks=tuple(int(r) for r in ranks),
        )


def walk_forest_interaction_lists(forest: SourceForest,
                                  gmin: np.ndarray, gmax: np.ndarray,
                                  open_out: list | None = None
                                  ) -> tuple[np.ndarray, np.ndarray,
                                             np.ndarray, np.ndarray, int]:
    """Walk every source of the forest in one frontier pass.

    The initial frontier is source-major (for each source in forest
    order: every target group against that source's root), which is
    what makes :func:`split_by_source` exact.  Returns the same tuple
    as :func:`~repro.gravity.treewalk.walk_interaction_lists`, with
    forest-global cell indices and the *combined* peak frontier.
    """
    n_groups = len(gmin)
    g = np.tile(np.arange(n_groups, dtype=np.int64), forest.n_sources)
    c = np.repeat(forest.cell_offsets[:-1], n_groups)
    return walk_frontier(forest.first_child, forest.n_children,
                         forest.com, forest.r_crit, gmin, gmax, g, c,
                         open_out=open_out)


def split_by_source(forest: SourceForest, pg: np.ndarray, pc: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stable-partition a forest pair list by source.

    Returns ``(pg_sorted, pc_sorted, starts)`` where source ``i``'s
    pairs are ``[starts[i], starts[i+1])`` -- in exactly the order a
    dedicated single-source walk would have produced them (level-major,
    ascending in ``g`` within each level).
    """
    if len(pg) == 0:
        starts = np.zeros(forest.n_sources + 1, dtype=np.int64)
        return pg, pc, starts
    src = np.searchsorted(forest.cell_offsets, pc, side="right") - 1
    order = np.argsort(src, kind="stable")
    src_sorted = src[order]
    starts = np.searchsorted(
        src_sorted, np.arange(forest.n_sources + 1, dtype=np.int64))
    return pg[order], pc[order], starts
