"""Direct O(N^2) summation: the accuracy reference for the tree code.

Equivalent to an infinitesimal opening angle (Sec. I: "If the opening
angle is infinitesimal the tree-code reduces to a rather inefficient
direct N-body code").  Used for force-error validation and for the
direct-kernel bars of Fig. 1.
"""

from __future__ import annotations

import numpy as np

from .flops import InteractionCounts


def direct_forces(pos: np.ndarray, mass: np.ndarray, eps: float = 0.0,
                  targets: np.ndarray | None = None,
                  counts: InteractionCounts | None = None,
                  chunk_pairs: int = 2 ** 25
                  ) -> tuple[np.ndarray, np.ndarray]:
    """All-pairs gravitational forces with Plummer softening.

    Parameters
    ----------
    pos, mass:
        Source (and by default target) particles.
    eps:
        Plummer softening length.
    targets:
        Optional indices of target particles; defaults to all.  Self
        interactions are excluded by index identity.
    counts:
        Optional tally; ``n_pp`` is incremented by the number of pair
        interactions evaluated.
    chunk_pairs:
        Upper bound on the size of the (targets x sources) temporary.

    Returns
    -------
    acc : (n_targets, 3) accelerations
    phi : (n_targets,) potentials
    """
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    n = len(pos)
    if targets is None:
        targets = np.arange(n)
    else:
        targets = np.asarray(targets)
    eps2 = float(eps) * float(eps)

    acc = np.zeros((len(targets), 3))
    phi = np.zeros(len(targets))
    chunk = max(1, chunk_pairs // max(n, 1))
    for s in range(0, len(targets), chunk):
        tidx = targets[s:s + chunk]
        t = pos[tidx]
        d = pos[None, :, :] - t[:, None, :]
        r2 = np.einsum("ijk,ijk->ij", d, d) + eps2
        # Exclude self-interaction by zeroing the mass of the diagonal.
        w = np.broadcast_to(mass, (len(tidx), n)).copy()
        w[np.arange(len(tidx)), tidx] = 0.0
        with np.errstate(divide="ignore"):
            rinv = 1.0 / np.sqrt(r2)
        # Guard eps = 0 self pairs (r2 = 0 -> inf); they carry zero mass.
        rinv[~np.isfinite(rinv)] = 0.0
        mrinv = w * rinv
        mrinv3 = mrinv * rinv * rinv
        acc[s:s + chunk] = np.einsum("ij,ijk->ik", mrinv3, d)
        phi[s:s + chunk] = -mrinv.sum(axis=1)
    if counts is not None:
        counts.n_pp += len(targets) * (n - 1)
    return acc, phi
