"""Gravitational force evaluation.

Implements the paper's force kernels (Sec. VI-A, Eqs. 1-2): the 23-flop
particle-particle kernel and the 65-flop particle-cell kernel with
quadrupole corrections, a direct O(N^2) reference solver, and the
group-centric Barnes-Hut tree walk with interaction-count accounting
identical to Table II's "Particle-Particle" and "Particle-Cell" rows.

Kernel *execution* is pluggable: :mod:`repro.gravity.backends` registers
compute backends (numpy reference / numba JIT / cupy scaffold) selected
via ``SimulationConfig.backend``; walks and counts are backend-free.
"""

from .backends import (
    BackendUnavailable,
    ComputeBackend,
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
)
from .flops import (
    FLOPS_PER_PC,
    FLOPS_PER_PP,
    FLOPS_PER_PP_LEGACY,
    InteractionCounts,
)
from .kernels import pp_interactions, pc_interactions
from .direct import direct_forces
from .treewalk import (
    DEFAULT_CHUNK,
    PRECISIONS,
    SCATTER_MODES,
    KernelWorkspace,
    SourceView,
    TreeWalkResult,
    tree_forces,
    walk_frontier,
    walk_interaction_lists,
)
from .forest import (
    SourceForest,
    split_by_source,
    walk_forest_interaction_lists,
)
from .warmstart import WalkCache, structure_levels, warm_walk

__all__ = [
    "FLOPS_PER_PP",
    "FLOPS_PER_PC",
    "FLOPS_PER_PP_LEGACY",
    "InteractionCounts",
    "pp_interactions",
    "pc_interactions",
    "direct_forces",
    "tree_forces",
    "walk_frontier",
    "walk_interaction_lists",
    "TreeWalkResult",
    "KernelWorkspace",
    "SourceView",
    "DEFAULT_CHUNK",
    "SCATTER_MODES",
    "PRECISIONS",
    "SourceForest",
    "walk_forest_interaction_lists",
    "split_by_source",
    "WalkCache",
    "warm_walk",
    "structure_levels",
    "BackendUnavailable",
    "ComputeBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "registered_backends",
]
