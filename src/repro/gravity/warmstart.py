"""Walk warm-starts: reuse the previous step's MAC decisions.

A cold tree walk re-derives every multipole-acceptance decision from the
root, yet between coherent steps almost all of them are unchanged.  A
:class:`WalkCache` remembers, per source structure, the previous walk's
complete *visit list* -- every (group, cell) the frontier touched,
tagged accepted (PC), opened-leaf (PP) or opened-internal (OPEN) -- in
canonical (level, group, cell) order.  :func:`warm_walk` then replaces
the full breadth-first descent with one vectorised MAC retest over that
list, descending only where a decision flipped:

- ``PC -> OPEN`` (a previously accepted internal cell now fails the
  MAC): a sub-walk seeded at its children covers the newly exposed
  subtree;
- ``OPEN -> accept`` (a previously opened cell now passes): the cold
  walk would have *stopped* there, so everything cached below it is
  over-refined -- the whole group falls back to a cold walk from the
  root (rare under coherence, exact always);
- ``PP <-> PC`` leaf flips change only the pair kind, never the visit
  set (leafness is static for a fixed structure).

Bitwise contract
----------------
For a frontier seeded group-major at a single root, the frontier stays
lexicographically sorted by (group, cell) at every depth, so the cold
pair lists are exactly the visit set sorted by (level, group, cell).
The warm path therefore emits the *identical pair lists in the
identical order* -- and the evaluators' accumulation order, hence every
float64 force bit and every ``n_pp``/``n_pc`` count, matches the cold
walk.  ``tests/test_forest_walk.py`` and the differential harness pin
this at 1-8 ranks.

Validity is established structurally, not assumed: an entry is used
only when the source's ``first_child``/``n_children``/``body_first``/
``body_count`` arrays compare equal to the cached ones (identity-first,
so shared arrays from ``tree_reuse`` validate in O(1)) and the target
group partition is unchanged.  ``epoch`` is an explicit generation tag
on top: the driver bumps it on domain rebalances and particle
exchanges, so a stale entry can never survive a relayout even in
principle.
"""

from __future__ import annotations

import numpy as np

from ..octree.properties import aabb_distance
from .treewalk import walk_frontier

#: Visit kinds in a cached list.
KIND_PC = np.int8(0)
KIND_PP = np.int8(1)
KIND_OPEN = np.int8(2)


def _same(a: np.ndarray, b: np.ndarray) -> bool:
    return a is b or (a.shape == b.shape and bool(np.array_equal(a, b)))


def structure_levels(first_child: np.ndarray, n_children: np.ndarray
                     ) -> np.ndarray:
    """Per-cell depth of a linear tree, derived from child links only.

    LET structures carry no ``cell_level`` array; one breadth-first pass
    over the child adjacency recovers it (root = cell 0 = depth 0).
    """
    n = len(n_children)
    level = np.zeros(n, dtype=np.int64)
    cur = np.zeros(1, dtype=np.int64)
    depth = 0
    while len(cur):
        nch = n_children[cur]
        parents = cur[nch > 0]
        if len(parents) == 0:
            break
        cnt = n_children[parents]
        total = int(cnt.sum())
        offs = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(cnt) - cnt, cnt)
        children = np.repeat(first_child[parents], cnt) + offs
        depth += 1
        level[children] = depth
        cur = children
    return level


class _WalkEntry:
    """Cached visit list + the structural fingerprint that validates it."""

    __slots__ = ("g", "c", "kind", "level",
                 "first_child", "n_children", "body_first", "body_count")

    def __init__(self, g, c, kind, level, source):
        self.g = g
        self.c = c
        self.kind = kind
        self.level = level
        self.first_child = source.first_child
        self.n_children = source.n_children
        self.body_first = source.body_first
        self.body_count = source.body_count

    def matches(self, source) -> bool:
        return (_same(self.first_child, source.first_child)
                and _same(self.n_children, source.n_children)
                and _same(self.body_first, source.body_first)
                and _same(self.body_count, source.body_count))


class WalkCache:
    """Per-rank cache of previous-step walk visit lists.

    Entries are keyed by source site -- ``"local"`` for the local tree,
    ``("b", rank)`` / ``("let", rank)`` for remote boundary and LET
    structures -- and validated structurally on every use.
    ``begin_step`` must be called once per force computation with the
    current target group partition; a changed partition (different
    groups = meaningless cached group ids) flushes everything.
    """

    __slots__ = ("epoch", "hits", "misses", "last_hits",
                 "_entries", "_group_first", "_group_count")

    def __init__(self) -> None:
        self.epoch = 0
        self.hits = 0        #: total cached decisions reused (all steps)
        self.misses = 0      #: total cold walks taken (all steps)
        self.last_hits = 0   #: cached decisions reused in the latest step
        self._entries: dict = {}
        self._group_first: np.ndarray | None = None
        self._group_count: np.ndarray | None = None

    def bump_epoch(self) -> None:
        """Invalidate every entry (domain rebalance / particle exchange)."""
        self.epoch += 1
        self._entries.clear()
        self._group_first = None
        self._group_count = None

    def begin_step(self, group_first: np.ndarray,
                   group_count: np.ndarray) -> None:
        """Arm the cache for one force computation's group partition."""
        if self._group_first is None or \
                not _same(self._group_first, group_first) or \
                not _same(self._group_count, group_count):
            self._entries.clear()
        self._group_first = group_first
        self._group_count = group_count
        self.last_hits = 0

    def has(self, key, source) -> bool:
        """Whether a cached visit list exists and validates for ``source``."""
        prev = self._entries.get(key)
        return prev is not None and prev.matches(source)

    def entry_levels(self, key, source) -> np.ndarray:
        """Depth array for ``source``, reused when its structure is cached."""
        prev = self._entries.get(key)
        if prev is not None and prev.matches(source):
            return prev.level
        return structure_levels(source.first_child, source.n_children)

    def store(self, key, source, level, pieces) -> None:
        """Record a walk's visit list in canonical order.

        ``pieces`` is an iterable of ``(g, c, kind)`` array triples (the
        pc/pp lists plus collected opened visits, in any order).
        """
        gs = [p[0] for p in pieces]
        cs = [p[1] for p in pieces]
        ks = [np.full(len(p[0]), p[2], dtype=np.int8) for p in pieces]
        g = np.concatenate(gs) if gs else np.empty(0, dtype=np.int64)
        c = np.concatenate(cs) if cs else np.empty(0, dtype=np.int64)
        k = np.concatenate(ks) if ks else np.empty(0, dtype=np.int8)
        o = np.lexsort((c, g, level[c]))
        self._entries[key] = _WalkEntry(g[o], c[o], k[o], level, source)

    def store_sorted(self, key, source, level, g, c, kind) -> None:
        """Record an already-canonical visit list without re-sorting."""
        self._entries[key] = _WalkEntry(g, c, kind, level, source)


def _opened_arrays(open_parts: list) -> tuple[np.ndarray, np.ndarray]:
    if not open_parts:
        e = np.empty(0, dtype=np.int64)
        return e, e
    return (np.concatenate([p[0] for p in open_parts]),
            np.concatenate([p[1] for p in open_parts]))


def warm_walk(cache: WalkCache, key, source,
              gmin: np.ndarray, gmax: np.ndarray
              ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray,
                         int, bool]:
    """Walk ``source`` against the target groups, warm when possible.

    Returns ``(pc_g, pc_c, pp_g, pp_c, max_frontier, warm)`` where the
    pair lists are bitwise-identical (values *and* order) to
    :func:`~repro.gravity.treewalk.walk_interaction_lists` on the same
    inputs, and ``warm`` reports whether the cached visit list was used.
    The walk's visit list is stored back into the cache either way.
    """
    n_groups = len(gmin)
    fc, nc = source.first_child, source.n_children
    com, r_crit = source.com, source.r_crit
    entry = cache._entries.get(key)

    if entry is None or not entry.matches(source):
        level = cache.entry_levels(key, source)
        opened: list = []
        g0 = np.arange(n_groups, dtype=np.int64)
        c0 = np.zeros(n_groups, dtype=np.int64)
        pc_g, pc_c, pp_g, pp_c, mf = walk_frontier(
            fc, nc, com, r_crit, gmin, gmax, g0, c0, open_out=opened)
        og, oc = _opened_arrays(opened)
        cache.store(key, source, level,
                    [(pc_g, pc_c, KIND_PC), (pp_g, pp_c, KIND_PP),
                     (og, oc, KIND_OPEN)])
        cache.misses += 1
        return pc_g, pc_c, pp_g, pp_c, mf, False

    g, c, kind, level = entry.g, entry.c, entry.kind, entry.level
    # One vectorised retest replaces the whole per-level descent.
    d = aabb_distance(gmin[g], gmax[g], com[c])
    accept = d > r_crit[c]
    leaf = nc[c] == 0
    new_kind = np.where(accept, KIND_PC,
                        np.where(leaf, KIND_PP, KIND_OPEN)).astype(np.int8)

    # A previously opened cell that now passes the MAC means the cold
    # walk would stop above everything we cached: re-walk those groups.
    dirty_lookup = np.zeros(n_groups, dtype=bool)
    dirty_lookup[g[(kind == KIND_OPEN) & accept]] = True
    clean = ~dirty_lookup[g]
    n_clean = int(clean.sum())
    cache.hits += n_clean
    cache.last_hits += n_clean

    # Newly failing accepted cells expose their subtrees: sub-walk from
    # their children (kind != OPEN excludes OPEN->OPEN, which is covered
    # by the deeper cached entries themselves).
    descend = clean & (kind != KIND_OPEN) & (new_kind == KIND_OPEN)

    # Fast path -- the overwhelmingly common coherent case: no cell
    # newly opened, no group dirty.  The cached list is already in
    # canonical (level, group, cell) order and boolean masking preserves
    # order, so the pair lists (and the stored-back visit list, whose
    # visit *set* is unchanged -- PP<->PC flips only relabel kinds) come
    # out canonical with no concatenate and no O(V log V) lexsort.
    if not descend.any() and not dirty_lookup.any():
        pc = new_kind == KIND_PC
        pp = new_kind == KIND_PP
        cache.store_sorted(key, source, level, g, c, new_kind)
        return g[pc], c[pc], g[pp], c[pp], len(g), True

    sub_open: list = []
    if descend.any():
        og, oc = g[descend], c[descend]
        cnt = nc[oc]
        total = int(cnt.sum())
        offs = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(cnt) - cnt, cnt)
        sg = np.repeat(og, cnt)
        sc = np.repeat(fc[oc], cnt) + offs
        spc_g, spc_c, spp_g, spp_c, smf = walk_frontier(
            fc, nc, com, r_crit, gmin, gmax, sg, sc, open_out=sub_open)
    else:
        e = np.empty(0, dtype=np.int64)
        spc_g = spc_c = spp_g = spp_c = e
        smf = 0
    sog, soc = _opened_arrays(sub_open)

    dirty_groups = np.flatnonzero(dirty_lookup)
    dirty_open: list = []
    if len(dirty_groups):
        dc = np.zeros(len(dirty_groups), dtype=np.int64)
        dpc_g, dpc_c, dpp_g, dpp_c, dmf = walk_frontier(
            fc, nc, com, r_crit, gmin, gmax, dirty_groups, dc,
            open_out=dirty_open)
    else:
        e = np.empty(0, dtype=np.int64)
        dpc_g = dpc_c = dpp_g = dpp_c = e
        dmf = 0
    dog, doc = _opened_arrays(dirty_open)

    kept_pc = clean & (new_kind == KIND_PC)
    kept_pp = clean & (new_kind == KIND_PP)
    kept_open = clean & (new_kind == KIND_OPEN)

    def canonical(parts_g, parts_c):
        pg = np.concatenate(parts_g)
        pc = np.concatenate(parts_c)
        o = np.lexsort((pc, pg, level[pc]))
        return pg[o], pc[o]

    pc_g, pc_c = canonical([g[kept_pc], spc_g, dpc_g],
                           [c[kept_pc], spc_c, dpc_c])
    pp_g, pp_c = canonical([g[kept_pp], spp_g, dpp_g],
                           [c[kept_pp], spp_c, dpp_c])

    cache.store(key, source, level, [
        (pc_g, pc_c, KIND_PC), (pp_g, pp_c, KIND_PP),
        (np.concatenate([g[kept_open], sog, dog]),
         np.concatenate([c[kept_open], soc, doc]), KIND_OPEN)])
    # The retest width stands in for the cold frontier peak: it is the
    # number of (group, cell) decisions taken in one shot.  Reuse-on
    # runs legitimately report different walk_max_frontier gauges.
    mf = max(len(g), smf, dmf)
    return pc_g, pc_c, pp_g, pp_c, mf, True
