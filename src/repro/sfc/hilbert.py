"""Vectorized 3-D Peano-Hilbert key encoding and decoding.

Implements Skilling's transpose algorithm ("Programming the Hilbert
curve", AIP Conf. Proc. 707, 2004) vectorized over particle arrays with a
fixed 21-iteration bit loop.  The Hilbert curve gives the locality
property the paper relies on for its domain decomposition (Fig. 2):
consecutive key values map to face-adjacent grid cells, so an equal-key
split produces compact (if fractal) domains.
"""

from __future__ import annotations

import numpy as np

from .morton import KEY_BITS_PER_DIM, compact_bits, spread_bits

_U = np.uint64


def _where_u64(cond: np.ndarray, a, b) -> np.ndarray:
    return np.where(cond, _U(a), _U(b)).astype(np.uint64, copy=False)


def hilbert_encode(ix: np.ndarray, iy: np.ndarray, iz: np.ndarray,
                   bits: int = KEY_BITS_PER_DIM) -> np.ndarray:
    """Encode integer grid coordinates into Peano-Hilbert keys.

    Parameters
    ----------
    ix, iy, iz:
        Integer coordinates in ``[0, 2**bits)``.
    bits:
        Bits of resolution per dimension (default 21, for 63-bit keys).

    Returns
    -------
    numpy.ndarray of uint64 Hilbert indices in ``[0, 2**(3*bits))``.
    """
    x = [np.array(np.asarray(c, dtype=np.uint64), copy=True) for c in (ix, iy, iz)]
    mask = _U((1 << bits) - 1)
    for c in x:
        c &= mask

    # Inverse undo excess work (Skilling's AxestoTranspose, first loop).
    q = _U(1) << _U(bits - 1)
    while q > _U(1):
        p = q - _U(1)
        for i in range(3):
            hi = (x[i] & q) != 0
            # Branch 1 (bit set): invert low bits of x[0].
            x[0] ^= _where_u64(hi, p, 0)
            # Branch 2 (bit clear): exchange low bits of x[0] and x[i].
            t = (x[0] ^ x[i]) & _where_u64(hi, 0, p)
            x[0] ^= t
            x[i] ^= t
        q >>= _U(1)

    # Gray encode.
    x[1] ^= x[0]
    x[2] ^= x[1]
    t = np.zeros_like(x[0])
    q = _U(1) << _U(bits - 1)
    while q > _U(1):
        t ^= _where_u64((x[2] & q) != 0, int(q) - 1, 0)
        q >>= _U(1)
    for i in range(3):
        x[i] ^= t

    # Interleave the transposed form: bit j of x[0] is key bit 3j+2, etc.
    return (spread_bits(x[0]) << _U(2)) | (spread_bits(x[1]) << _U(1)) | spread_bits(x[2])


def hilbert_decode(key: np.ndarray,
                   bits: int = KEY_BITS_PER_DIM) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decode Peano-Hilbert keys back into integer grid coordinates."""
    key = np.asarray(key, dtype=np.uint64)
    x = [compact_bits(key >> _U(2)),
         compact_bits(key >> _U(1)),
         compact_bits(key)]

    n = _U(1) << _U(bits)

    # Gray decode by H ^ (H/2) (Skilling's TransposetoAxes, first part).
    t = x[2] >> _U(1)
    for i in (2, 1):
        x[i] ^= x[i - 1]
    x[0] ^= t

    # Undo excess work.
    q = _U(2)
    while q != n:
        p = q - _U(1)
        for i in (2, 1, 0):
            hi = (x[i] & q) != 0
            x[0] ^= _where_u64(hi, p, 0)
            t = (x[0] ^ x[i]) & _where_u64(hi, 0, p)
            x[0] ^= t
            x[i] ^= t
        q <<= _U(1)

    return x[0], x[1], x[2]
