"""Space-filling-curve keys (Morton and Peano-Hilbert) and key geometry.

The paper's domain decomposition (Sec. III-B1) orders particles along a
Peano-Hilbert space-filling curve; the octree construction uses the same
63-bit keys.  All routines here are vectorized over particle arrays.
"""

from .morton import (
    KEY_BITS_PER_DIM,
    KEY_MAX_LEVEL,
    morton_decode,
    morton_encode,
    spread_bits,
    compact_bits,
)
from .hilbert import hilbert_decode, hilbert_encode
from .bbox import BoundingBox, cell_geometry, keys_for_positions
from .sortcache import SORT_MODES, SortCache

__all__ = [
    "KEY_BITS_PER_DIM",
    "KEY_MAX_LEVEL",
    "morton_encode",
    "morton_decode",
    "spread_bits",
    "compact_bits",
    "hilbert_encode",
    "hilbert_decode",
    "BoundingBox",
    "keys_for_positions",
    "cell_geometry",
    "SortCache",
    "SORT_MODES",
]
