"""Vectorized 3-D Morton (Z-order) key encoding and decoding.

Keys use 21 bits per dimension packed into 63 bits of a ``uint64``, which
matches the maximum octree depth of 21 used by Bonsai-class tree codes.
Bit ``3*j + 2`` of the key holds bit ``j`` of *x*, ``3*j + 1`` holds *y*,
and ``3*j`` holds *z*, so sorting by key traverses octants in x-major
order at every level.
"""

from __future__ import annotations

import numpy as np

#: Bits of resolution per spatial dimension.
KEY_BITS_PER_DIM = 21

#: Maximum tree depth representable by a key (one level per 3 bits).
KEY_MAX_LEVEL = KEY_BITS_PER_DIM

#: Largest representable grid coordinate.
COORD_MAX = (1 << KEY_BITS_PER_DIM) - 1

_U = np.uint64


def _as_u64(x: np.ndarray) -> np.ndarray:
    """Return ``x`` as a uint64 array (no copy when already uint64)."""
    return np.asarray(x, dtype=np.uint64)


def spread_bits(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of each element so bit ``j`` moves to ``3j``.

    This is the standard magic-number dilation used by GPU tree codes.
    """
    x = _as_u64(x) & _U(0x1FFFFF)
    x = (x | (x << _U(32))) & _U(0x1F00000000FFFF)
    x = (x | (x << _U(16))) & _U(0x1F0000FF0000FF)
    x = (x | (x << _U(8))) & _U(0x100F00F00F00F00F)
    x = (x | (x << _U(4))) & _U(0x10C30C30C30C30C3)
    x = (x | (x << _U(2))) & _U(0x1249249249249249)
    return x


def compact_bits(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`spread_bits`: gather bits ``3j`` back to ``j``."""
    x = _as_u64(x) & _U(0x1249249249249249)
    x = (x | (x >> _U(2))) & _U(0x10C30C30C30C30C3)
    x = (x | (x >> _U(4))) & _U(0x100F00F00F00F00F)
    x = (x | (x >> _U(8))) & _U(0x1F0000FF0000FF)
    x = (x | (x >> _U(16))) & _U(0x1F00000000FFFF)
    x = (x | (x >> _U(32))) & _U(0x1FFFFF)
    return x


def morton_encode(ix: np.ndarray, iy: np.ndarray, iz: np.ndarray) -> np.ndarray:
    """Encode integer grid coordinates into 63-bit Morton keys.

    Parameters
    ----------
    ix, iy, iz:
        Integer coordinates in ``[0, 2**21)``.  Values outside the range
        are masked to their low 21 bits.

    Returns
    -------
    numpy.ndarray of uint64
    """
    return (spread_bits(ix) << _U(2)) | (spread_bits(iy) << _U(1)) | spread_bits(iz)


def morton_decode(key: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decode 63-bit Morton keys back into integer grid coordinates."""
    key = _as_u64(key)
    ix = compact_bits(key >> _U(2))
    iy = compact_bits(key >> _U(1))
    iz = compact_bits(key)
    return ix, iy, iz
