"""Cross-step reuse of the SFC sort permutation.

Particles barely move between timesteps, so the stable argsort of their
space-filling-curve keys -- paid from scratch in every "Sorting SFC" and
"Tree-construction" phase -- is almost the same permutation step after
step.  A :class:`SortCache` remembers the last permutation and, instead
of a cold sort, verifies it in O(n) (keys permuted by the cached order
are usually still non-decreasing) or repairs it with an adaptive stable
sort over the nearly-sorted permuted keys, which numpy's timsort handles
in near-linear time.  On this machine the verify path is ~90x cheaper
than a cold argsort at 40k keys.

Tie-breaking caveat: when distinct particles share a key (coincident at
key resolution), the repaired permutation may order them differently
than a cold stable sort would.  Tree topology, groups and interaction
counts depend only on the *sorted key sequence*, so they are unaffected;
forces on such twins can differ within the MAC tolerance.  Runs with a
fixed configuration remain deterministic either way.

A cached permutation is only meaningful against the particle *layout*
that produced it: after a particle exchange the local array is a
different set in a different order, and silently reusing the old
permutation is exactly the tie-breaking hazard above.  ``order_for``
therefore takes an optional ``epoch`` generation tag -- drivers bump it
whenever the layout changes (rebalance or migration) and the cache goes
cold instead of repairing across the relayout.
"""

from __future__ import annotations

import numpy as np

#: Outcomes of :meth:`SortCache.order_for`, cheapest first.
SORT_MODES = ("identity", "reuse", "repair", "cold")


def _is_sorted(keys: np.ndarray) -> bool:
    return len(keys) < 2 or bool(np.all(keys[:-1] <= keys[1:]))


class SortCache:
    """Remembers the previous step's sort permutation and reuses it.

    One cache per (driver, purpose): the serial driver keeps one for its
    tree build, the parallel driver one for the pre-exchange sort and
    one for the post-exchange tree build.  ``last_mode`` reports how the
    latest permutation was obtained (:data:`SORT_MODES`) for span
    attributes and metrics.
    """

    __slots__ = ("_order", "last_mode", "_epoch")

    def __init__(self) -> None:
        self._order: np.ndarray | None = None
        self.last_mode: str | None = None
        self._epoch: int | None = None

    def order_for(self, keys: np.ndarray,
                  epoch: int | None = None) -> np.ndarray:
        """A permutation that stable-sorts ``keys``, reusing prior work.

        - ``identity``: keys already non-decreasing (the returned arange
          lets callers skip the reorder copy entirely);
        - ``reuse``: the cached permutation still sorts the new keys;
        - ``repair``: cached permutation composed with an adaptive sort
          of the (nearly sorted) permuted keys;
        - ``cold``: no usable cache; plain stable argsort.

        ``epoch`` is an optional layout generation tag: a call with a
        different epoch than the cached permutation's discards the cache
        first, so permutations never survive a particle relayout.
        """
        if epoch is not None and epoch != self._epoch:
            self._order = None
            self._epoch = epoch
        n = len(keys)
        cached = self._order
        if cached is not None and len(cached) == n:
            permuted = keys[cached]
            if _is_sorted(permuted):
                self.last_mode = "reuse"
                return cached
            order = cached[np.argsort(permuted, kind="stable")]
            self.last_mode = "repair"
        elif _is_sorted(keys):
            order = np.arange(n, dtype=np.int64)
            self.last_mode = "identity"
        else:
            order = np.argsort(keys, kind="stable").astype(np.int64)
            self.last_mode = "cold"
        self._order = order
        return order

    def invalidate(self) -> None:
        """Drop the cached permutation (e.g. after an exchange)."""
        self._order = None
        self.last_mode = None
        self._epoch = None
