"""Bounding boxes and the mapping between positions and SFC keys.

The paper computes a *global* bounding box (each GPU computes a local box,
the CPUs reduce them) whose geometry maps particle coordinates onto the
integer grid underlying the Peano-Hilbert keys.  :class:`BoundingBox`
captures exactly that mapping, and is deliberately cubic so that octree
cells are cubes at every level.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .morton import KEY_BITS_PER_DIM, morton_decode, morton_encode
from .hilbert import hilbert_encode


@dataclasses.dataclass(frozen=True)
class BoundingBox:
    """A cubic axis-aligned box mapping space onto the 2^21 key grid.

    Attributes
    ----------
    origin:
        Lower corner of the cube, shape (3,).
    size:
        Edge length of the cube (single float; the box is a cube).
    """

    origin: np.ndarray
    size: float

    @classmethod
    def from_positions(cls, pos: np.ndarray, pad: float = 1.0e-3) -> "BoundingBox":
        """Build the smallest padded cube containing all positions.

        ``pad`` is a relative enlargement that keeps particles strictly
        inside the box so grid coordinates never saturate at the edge.
        """
        pos = np.asarray(pos, dtype=np.float64)
        if pos.ndim != 2 or pos.shape[1] != 3:
            raise ValueError(f"positions must have shape (N, 3), got {pos.shape}")
        if len(pos) == 0:
            raise ValueError("cannot bound zero particles")
        lo = pos.min(axis=0)
        hi = pos.max(axis=0)
        center = 0.5 * (lo + hi)
        size = float((hi - lo).max())
        if size == 0.0:
            size = 1.0
        size *= 1.0 + pad
        origin = center - 0.5 * size
        return cls(origin=origin, size=size)

    @classmethod
    def merge(cls, boxes: "list[BoundingBox]", pad: float = 0.0) -> "BoundingBox":
        """Combine per-rank local boxes into the global cube (the CPU
        reduction step of Sec. III-B1)."""
        if not boxes:
            raise ValueError("no boxes to merge")
        lo = np.min([b.origin for b in boxes], axis=0)
        hi = np.max([b.origin + b.size for b in boxes], axis=0)
        center = 0.5 * (lo + hi)
        size = float((hi - lo).max()) * (1.0 + pad)
        return cls(origin=center - 0.5 * size, size=size)

    @property
    def cell_size(self) -> float:
        """Grid spacing of the finest (level-21) cells."""
        return self.size / float(1 << KEY_BITS_PER_DIM)

    def grid_coordinates(self, pos: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Map positions to integer grid coordinates, clipped into range."""
        pos = np.asarray(pos, dtype=np.float64)
        scaled = (pos - self.origin) / self.cell_size
        nmax = (1 << KEY_BITS_PER_DIM) - 1
        ijk = np.clip(np.floor(scaled), 0, nmax).astype(np.uint64)
        return ijk[:, 0], ijk[:, 1], ijk[:, 2]

    def morton_keys(self, pos: np.ndarray) -> np.ndarray:
        """Morton keys of positions inside this box."""
        return morton_encode(*self.grid_coordinates(pos))

    def hilbert_keys(self, pos: np.ndarray) -> np.ndarray:
        """Peano-Hilbert keys of positions inside this box."""
        return hilbert_encode(*self.grid_coordinates(pos))

    def keys(self, pos: np.ndarray, curve: str = "hilbert") -> np.ndarray:
        """Keys of positions along the requested curve ('hilbert'/'morton')."""
        if curve == "hilbert":
            return self.hilbert_keys(pos)
        if curve == "morton":
            return self.morton_keys(pos)
        raise ValueError(f"unknown curve {curve!r}")


def keys_for_positions(pos: np.ndarray, curve: str = "hilbert",
                       box: BoundingBox | None = None) -> tuple[np.ndarray, BoundingBox]:
    """Convenience wrapper returning (keys, box) for a particle set."""
    if box is None:
        box = BoundingBox.from_positions(pos)
    return box.keys(pos, curve), box


def cell_geometry(cell_key: np.ndarray, cell_level: np.ndarray,
                  box: BoundingBox, curve: str = "hilbert") -> tuple[np.ndarray, np.ndarray]:
    """Geometric center and half-size of octree cells.

    A cell at level L is identified by the leading ``3*L`` bits of its
    SFC key; ``cell_key`` holds that prefix shifted to full depth (i.e.
    the key of the first grid point the curve visits inside the cell) and
    ``cell_level`` the depth (0 = root).  Both Morton and Hilbert prefixes
    denote genuine octree octants -- the Hilbert curve fully covers each
    octant before leaving it -- but for Hilbert keys the octant corner is
    recovered by decoding the first visited point and masking off the low
    ``21 - L`` coordinate bits.

    Returns
    -------
    centers : (n, 3) float64
    half : (n,) float64 -- half of the cell edge length.
    """
    cell_key = np.asarray(cell_key, dtype=np.uint64)
    cell_level = np.asarray(cell_level)
    if curve == "hilbert":
        from .hilbert import hilbert_decode
        ix, iy, iz = hilbert_decode(cell_key)
    elif curve == "morton":
        ix, iy, iz = morton_decode(cell_key)
    else:
        raise ValueError(f"unknown curve {curve!r}")
    # Mask off sub-cell bits to land on the octant's lower corner.
    shift = (KEY_BITS_PER_DIM - cell_level).astype(np.uint64)
    mask = ~((np.uint64(1) << shift) - np.uint64(1))
    corner_idx = np.stack([ix & mask, iy & mask, iz & mask], axis=1)
    corner = corner_idx.astype(np.float64) * box.cell_size + box.origin
    side = box.size / (1 << cell_level).astype(np.float64)
    half = 0.5 * side
    centers = corner + half[:, None]
    return centers, half
