"""Benchmark registry, runner and history: ``python -m repro.obs.bench``.

The repo's ``benchmarks/bench_*.py`` scripts each print their own
ad-hoc text and JSON, so the recorded perf trajectory lives nowhere --
regressions are only caught when someone re-runs a script by hand and
remembers the old numbers.  This module gives them one spine:

- **one schema** -- :class:`BenchResult` separates *deterministic
  count metrics* (interaction tallies, event counts: identical on
  every machine, gate hard) from *wall-clock metrics* (advisory on the
  1-CPU CI container), and stamps each run with its config and a host
  fingerprint so only like-for-like runs are compared;
- **a registry** -- ``@register_bench("step_pipeline")`` marks a
  callable in a ``bench_*.py`` file as the canonical entry point;
  :func:`load_registry` imports every benchmark file to populate it;
- **an append-only history** -- every ``run`` appends one JSON line to
  ``benchmarks/history/<bench>.jsonl``; nothing is ever rewritten, so
  the file *is* the perf trajectory;
- **verdicts** -- ``compare`` and ``history`` reuse the report-diff
  threshold/``--min-abs`` machinery (:func:`~repro.obs.report.delta_row`,
  :func:`~repro.obs.report.row_regressed`): any count drift fails,
  wall-clock regressions are reported but never gate.

CLI::

    python -m repro.obs.bench list
    python -m repro.obs.bench run step_pipeline [-p n=4000] [--emit-root]
    python -m repro.obs.bench compare a.json b.json [--threshold 0.1]
    python -m repro.obs.bench history step_pipeline [--last 10]
"""

from __future__ import annotations

import argparse
import dataclasses
import importlib.util
import json
import math
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any, Callable

#: Bumped when the BenchResult layout changes incompatibly.
SCHEMA_VERSION = 1


class BenchError(Exception):
    """Invalid benchmark result, unknown bench id, or broken history."""


def host_fingerprint() -> dict[str, Any]:
    """Where a result came from -- compared, never gated on."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "cpu_count": os.cpu_count(),
    }


@dataclasses.dataclass
class BenchResult:
    """One benchmark run in the canonical schema.

    ``counts`` holds deterministic metrics (identical across machines
    and runs at fixed config -- these gate hard); ``wall`` holds
    wall-clock seconds and derived ratios (advisory).  ``config`` is
    the parameter set that produced the run; history comparisons only
    pair results with equal configs.
    """

    bench: str
    config: dict[str, Any]
    counts: dict[str, float]
    wall: dict[str, float]
    host: dict[str, Any] = dataclasses.field(default_factory=host_fingerprint)
    meta: dict[str, Any] = dataclasses.field(default_factory=dict)
    ts: str = dataclasses.field(
        default_factory=lambda: time.strftime("%Y-%m-%dT%H:%M:%S"))
    schema: int = SCHEMA_VERSION

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "BenchResult":
        validate_bench_result(d)
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in known})


def _check_metric_dict(name: str, d: Any) -> None:
    if not isinstance(d, dict):
        raise BenchError(f"'{name}' must be a dict, got {type(d).__name__}")
    for key, value in d.items():
        # bool is an int subclass; encode flags as 0/1 explicitly.
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise BenchError(
                f"{name}[{key!r}] must be a number, got {value!r}")
        if not math.isfinite(value):
            raise BenchError(f"{name}[{key!r}] is not finite: {value!r}")


def validate_bench_result(d: dict[str, Any]) -> None:
    """Raise :class:`BenchError` unless ``d`` is a valid result dict."""
    if not isinstance(d, dict):
        raise BenchError(f"result must be a dict, got {type(d).__name__}")
    for key in ("bench", "config", "counts", "wall", "schema"):
        if key not in d:
            raise BenchError(f"result missing required key {key!r}")
    if not isinstance(d["bench"], str) or not d["bench"]:
        raise BenchError("'bench' must be a non-empty string")
    if d["schema"] != SCHEMA_VERSION:
        raise BenchError(f"schema {d['schema']!r} != {SCHEMA_VERSION} "
                         f"(this reader)")
    if not isinstance(d["config"], dict):
        raise BenchError("'config' must be a dict")
    _check_metric_dict("counts", d["counts"])
    _check_metric_dict("wall", d["wall"])


# -- registry ---------------------------------------------------------------

@dataclasses.dataclass
class BenchSpec:
    """A registered benchmark: id, entry point, optional root artifact."""

    bench: str
    description: str
    runner: Callable[..., BenchResult]
    root_artifact: str | None = None
    source: str = ""


REGISTRY: dict[str, BenchSpec] = {}


def register_bench(bench: str, *, description: str,
                   root_artifact: str | None = None):
    """Decorator: mark a callable as the canonical runner for ``bench``.

    The callable must accept keyword parameters (the ``-p k=v`` CLI
    overrides) and return a :class:`BenchResult`.  Re-registration
    overwrites -- re-importing a benchmark file is harmless.
    """
    def deco(fn: Callable[..., BenchResult]):
        REGISTRY[bench] = BenchSpec(
            bench=bench, description=description, runner=fn,
            root_artifact=root_artifact,
            source=getattr(fn, "__module__", ""))
        return fn
    return deco


def find_benchmarks_dir(explicit: str | Path | None = None) -> Path:
    """Locate ``benchmarks/``: explicit arg, env var, repo layout, cwd."""
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get("REPRO_BENCHMARKS_DIR")
    if env:
        return Path(env)
    repo = Path(__file__).resolve().parents[3] / "benchmarks"
    if repo.is_dir():
        return repo
    return Path.cwd() / "benchmarks"


def load_registry(benchmarks_dir: str | Path | None = None) -> Path:
    """Import every ``bench_*.py`` so their ``@register_bench`` run.

    Files that fail to import are skipped with a warning on stderr --
    one broken benchmark must not take down ``list`` for the rest.
    Returns the directory that was scanned.
    """
    bdir = find_benchmarks_dir(benchmarks_dir)
    if not bdir.is_dir():
        raise BenchError(f"benchmarks directory not found: {bdir}")
    # bench files do ``from conftest import ...``.
    if str(bdir) not in sys.path:
        sys.path.insert(0, str(bdir))
    for path in sorted(bdir.glob("bench_*.py")):
        modname = f"_repro_bench_{path.stem}"
        if modname in sys.modules:
            continue
        try:
            spec = importlib.util.spec_from_file_location(modname, path)
            module = importlib.util.module_from_spec(spec)
            sys.modules[modname] = module
            spec.loader.exec_module(module)
        except Exception as exc:  # noqa: BLE001 - isolate broken benches
            sys.modules.pop(modname, None)
            print(f"bench: skipping {path.name}: {exc}", file=sys.stderr)
    return bdir


# -- history store ----------------------------------------------------------

class HistoryStore:
    """Append-only JSONL store, one file per bench id."""

    def __init__(self, root: str | Path | None = None):
        if root is None:
            root = find_benchmarks_dir() / "history"
        self.root = Path(root)

    def path(self, bench: str) -> Path:
        return self.root / f"{bench}.jsonl"

    def append(self, result: BenchResult) -> Path:
        d = result.to_dict()
        validate_bench_result(d)
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(result.bench)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(d, sort_keys=True) + "\n")
        return path

    def load(self, bench: str) -> list[BenchResult]:
        path = self.path(bench)
        if not path.exists():
            return []
        entries = []
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(BenchResult.from_dict(json.loads(line)))
                except (json.JSONDecodeError, BenchError) as exc:
                    raise BenchError(f"{path}:{lineno}: {exc}") from exc
        return entries


# -- comparison and verdicts ------------------------------------------------

def _count_changed(row: dict[str, Any], threshold: float) -> bool:
    """Symmetric drift test for deterministic counts (any direction)."""
    if row["delta"] == 0:
        return False
    if row["rel"] is None:
        return True
    return abs(row["rel"]) > threshold


def compare_results(a: BenchResult, b: BenchResult, *,
                    threshold: float = 0.10, min_abs: float = 0.0,
                    count_threshold: float = 0.0) -> dict[str, Any]:
    """Diff two results: counts gate (symmetric), wall advises (slower).

    Reuses the report-diff row machinery: each metric becomes a
    ``delta_row`` and wall regressions apply the same
    threshold/``min_abs`` semantics as ``repro.obs.report diff``.
    """
    from .report import delta_row, row_regressed

    counts: dict[str, Any] = {}
    count_regressions: list[str] = []
    for key in sorted(set(a.counts) & set(b.counts)):
        row = delta_row(a.counts[key], b.counts[key])
        counts[key] = row
        if _count_changed(row, count_threshold):
            count_regressions.append(key)

    wall: dict[str, Any] = {}
    wall_regressions: list[str] = []
    for key in sorted(set(a.wall) & set(b.wall)):
        row = delta_row(a.wall[key], b.wall[key])
        wall[key] = row
        if row_regressed(row, threshold, min_abs):
            wall_regressions.append(key)

    return {
        "bench": a.bench,
        "comparable": a.config == b.config,
        "counts": counts,
        "wall": wall,
        "count_regressions": count_regressions,
        "wall_regressions": wall_regressions,
    }


def history_verdict(entries: list[BenchResult], *,
                    threshold: float = 0.25, min_abs: float = 0.05,
                    count_threshold: float = 0.0) -> dict[str, Any]:
    """Judge the newest entry against its latest same-config ancestor.

    ``REGRESSION`` iff a deterministic count drifted; wall-clock
    regressions are carried in the result but never flip the verdict
    (advisory on shared/1-CPU runners).  ``NO-BASELINE`` when no
    earlier entry has an identical config.
    """
    if not entries:
        return {"verdict": "NO-BASELINE", "reason": "empty history"}
    current = entries[-1]
    baseline = None
    for prev in reversed(entries[:-1]):
        if prev.config == current.config:
            baseline = prev
            break
    if baseline is None:
        return {"verdict": "NO-BASELINE", "bench": current.bench,
                "reason": "no earlier entry with an identical config"}
    diff = compare_results(baseline, current, threshold=threshold,
                           min_abs=min_abs, count_threshold=count_threshold)
    diff["verdict"] = "REGRESSION" if diff["count_regressions"] else "OK"
    diff["baseline_ts"] = baseline.ts
    diff["current_ts"] = current.ts
    return diff


# -- rendering --------------------------------------------------------------

def _fmt(v: float) -> str:
    return f"{v:.6g}"


def compare_lines(diff: dict[str, Any]) -> list[str]:
    lines = [f"bench {diff['bench']}: "
             + ("configs match" if diff["comparable"]
                else "CONFIGS DIFFER (comparison is apples-to-oranges)")]
    for section, gated in (("counts", diff["count_regressions"]),
                           ("wall", diff["wall_regressions"])):
        rows = diff[section]
        if not rows:
            continue
        tag = "gate" if section == "counts" else "advisory"
        lines.append(f"  {section} ({tag}):")
        for key, row in rows.items():
            rel = f"{row['rel']:+.1%}" if row["rel"] is not None else "  n/a"
            mark = "  << REGRESSION" if key in gated else ""
            lines.append(f"    {key:28s} {_fmt(row['a']):>12s} -> "
                         f"{_fmt(row['b']):>12s}  {rel}{mark}")
    return lines


def history_lines(bench: str, entries: list[BenchResult],
                  verdict: dict[str, Any], last: int | None = None
                  ) -> list[str]:
    """History table + per-metric trajectory sparklines + verdict."""
    from .dashboard import sparkline

    lines = [f"bench {bench}: {len(entries)} recorded run(s)"]
    shown = entries[-last:] if last else entries
    for r in shown:
        counts = " ".join(f"{k}={_fmt(v)}" for k, v in sorted(
            r.counts.items()))
        wall = " ".join(f"{k}={_fmt(v)}" for k, v in sorted(r.wall.items()))
        lines.append(f"  {r.ts}  {counts}  |  {wall}")
    # Trajectories over entries sharing the newest entry's config, so a
    # parameter change doesn't read as a cliff in the sparkline.
    if entries:
        config = entries[-1].config
        track = [r for r in entries if r.config == config]
        for section in ("counts", "wall"):
            for key in sorted(getattr(entries[-1], section)):
                values = [getattr(r, section).get(key) for r in track]
                values = [v for v in values if v is not None]
                lo, hi = min(values), max(values)
                span = hi - lo
                # A constant trajectory is a flat line, not an empty one.
                buckets = [1 if span == 0
                           else int((v - lo) / span * 7) + 1
                           for v in values]
                lines.append(f"  {section[0]} {key:26s} "
                             f"{sparkline(buckets)}  "
                             f"[{_fmt(lo)} .. {_fmt(hi)}]")
    lines.append(f"  verdict: {verdict['verdict']}")
    if verdict.get("count_regressions"):
        lines.append("  count drift (gate): "
                     + ", ".join(verdict["count_regressions"]))
    if verdict.get("wall_regressions"):
        lines.append("  wall regressions (advisory): "
                     + ", ".join(verdict["wall_regressions"]))
    if verdict.get("reason"):
        lines.append(f"  ({verdict['reason']})")
    return lines


# -- CLI --------------------------------------------------------------------

def _parse_param(text: str) -> tuple[str, Any]:
    if "=" not in text:
        raise BenchError(f"-p expects key=value, got {text!r}")
    key, raw = text.split("=", 1)
    for conv in (int, float):
        try:
            return key, conv(raw)
        except ValueError:
            pass
    if raw.lower() in ("true", "false"):
        return key, raw.lower() == "true"
    return key, raw


def _resolve_spec(bench: str, benchmarks_dir) -> BenchSpec:
    # Programmatically registered benches (tests) win; otherwise scan
    # the benchmarks directory to populate the registry.
    if bench not in REGISTRY:
        load_registry(benchmarks_dir)
    if bench not in REGISTRY:
        known = ", ".join(sorted(REGISTRY)) or "(none)"
        raise BenchError(f"unknown bench {bench!r}; registered: {known}")
    return REGISTRY[bench]


def _load_result_file(path: str) -> BenchResult:
    with open(path, encoding="utf-8") as fh:
        d = json.load(fh)
    if isinstance(d, list):  # a root BENCH_*.json history dump
        if not d:
            raise BenchError(f"{path}: empty result list")
        d = d[-1]
    return BenchResult.from_dict(d)


def _emit_root(spec: BenchSpec, store: HistoryStore, benchmarks_dir: Path
               ) -> Path | None:
    if spec.root_artifact is None:
        return None
    entries = [r.to_dict() for r in store.load(spec.bench)]
    for d in entries:
        validate_bench_result(d)
    out = benchmarks_dir.parent / spec.root_artifact
    out.write_text(json.dumps(entries, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.bench",
        description="Registry, runner and append-only history for the "
                    "benchmarks/bench_*.py suite.")
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_list = sub.add_parser("list", help="list registered benchmarks")
    p_list.add_argument("--benchmarks-dir", default=None)

    p_run = sub.add_parser("run", help="run one benchmark, append history")
    p_run.add_argument("bench")
    p_run.add_argument("-p", "--param", action="append", default=[],
                       help="override a runner kwarg, e.g. -p n=4000")
    p_run.add_argument("--no-append", action="store_true",
                       help="do not append to the history store")
    p_run.add_argument("--emit-root", action="store_true",
                       help="rewrite the bench's root BENCH_*.json "
                            "artifact from the full history")
    p_run.add_argument("--out", default=None,
                       help="also write the single result to this file")
    p_run.add_argument("--json", action="store_true",
                       help="print the result as JSON instead of text")
    p_run.add_argument("--history-dir", default=None)
    p_run.add_argument("--benchmarks-dir", default=None)

    p_cmp = sub.add_parser("compare", help="diff two result files")
    p_cmp.add_argument("a")
    p_cmp.add_argument("b")
    p_cmp.add_argument("--threshold", type=float, default=0.10,
                       help="relative wall-clock regression threshold")
    p_cmp.add_argument("--min-abs", type=float, default=0.0,
                       help="absolute wall-clock noise floor (seconds)")
    p_cmp.add_argument("--count-threshold", type=float, default=0.0,
                       help="relative drift tolerated on count metrics "
                            "(default: exact)")
    p_cmp.add_argument("--json", action="store_true")

    p_hist = sub.add_parser("history",
                            help="show a bench's trajectory and verdict")
    p_hist.add_argument("bench")
    p_hist.add_argument("--threshold", type=float, default=0.25)
    p_hist.add_argument("--min-abs", type=float, default=0.05)
    p_hist.add_argument("--count-threshold", type=float, default=0.0)
    p_hist.add_argument("--last", type=int, default=None,
                        help="show only the last N entries")
    p_hist.add_argument("--json", action="store_true")
    p_hist.add_argument("--history-dir", default=None)

    args = parser.parse_args(argv)

    try:
        if args.cmd == "list":
            bdir = load_registry(args.benchmarks_dir)
            print(f"registered benchmarks ({bdir}):")
            for bench in sorted(REGISTRY):
                spec = REGISTRY[bench]
                root = f"  [root: {spec.root_artifact}]" \
                    if spec.root_artifact else ""
                print(f"  {bench:20s} {spec.description}{root}")
            return 0

        if args.cmd == "run":
            spec = _resolve_spec(args.bench, args.benchmarks_dir)
            params = dict(_parse_param(p) for p in args.param)
            result = spec.runner(**params)
            if not isinstance(result, BenchResult):
                raise BenchError(f"runner for {args.bench!r} returned "
                                 f"{type(result).__name__}, "
                                 f"not BenchResult")
            validate_bench_result(result.to_dict())
            store = HistoryStore(args.history_dir)
            if not args.no_append:
                path = store.append(result)
                print(f"appended -> {path}", file=sys.stderr)
            if args.out:
                Path(args.out).write_text(
                    json.dumps(result.to_dict(), indent=2, sort_keys=True)
                    + "\n", encoding="utf-8")
            if args.emit_root:
                bdir = find_benchmarks_dir(args.benchmarks_dir)
                out = _emit_root(spec, store, bdir)
                if out is not None:
                    print(f"root artifact -> {out}", file=sys.stderr)
            if args.json:
                print(json.dumps(result.to_dict(), indent=2,
                                 sort_keys=True))
            else:
                counts = " ".join(f"{k}={_fmt(v)}" for k, v in sorted(
                    result.counts.items()))
                wall = " ".join(f"{k}={_fmt(v)}" for k, v in sorted(
                    result.wall.items()))
                print(f"{result.bench}: {counts}  |  {wall}")
            return 0

        if args.cmd == "compare":
            a = _load_result_file(args.a)
            b = _load_result_file(args.b)
            diff = compare_results(a, b, threshold=args.threshold,
                                   min_abs=args.min_abs,
                                   count_threshold=args.count_threshold)
            if args.json:
                print(json.dumps(diff, indent=2, sort_keys=True))
            else:
                print("\n".join(compare_lines(diff)))
            return 1 if diff["count_regressions"] else 0

        if args.cmd == "history":
            store = HistoryStore(args.history_dir)
            entries = store.load(args.bench)
            verdict = history_verdict(
                entries, threshold=args.threshold, min_abs=args.min_abs,
                count_threshold=args.count_threshold)
            if args.json:
                out = {"bench": args.bench, "entries": len(entries),
                       "verdict": verdict}
                print(json.dumps(out, indent=2, sort_keys=True))
            else:
                print("\n".join(history_lines(args.bench, entries,
                                              verdict, last=args.last)))
            return 1 if verdict["verdict"] == "REGRESSION" else 0
    except BenchError as exc:
        print(f"bench: error: {exc}", file=sys.stderr)
        return 2

    raise AssertionError(f"unhandled command {args.cmd!r}")


if __name__ == "__main__":
    # Under ``python -m`` this file runs as ``__main__``; delegate to
    # the canonical module instance so bench files registering into
    # ``repro.obs.bench.REGISTRY`` and the CLI see the same registry.
    from repro.obs.bench import main as _canonical_main
    sys.exit(_canonical_main())
