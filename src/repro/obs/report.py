"""Reconstruct Table II, overlap and imbalance reports from a trace.

``python -m repro.obs.report trace.json`` reads a Chrome trace-event
file produced by the instrumented drivers and rebuilds, *from the trace
alone*:

1. the Table II phase breakdown -- per-rank, per-step phase times
   reduced with the same slowest-rank-then-step-average rule as
   :func:`repro.parallel.statistics.aggregate_rank_histories` (the
   driver-side view of the identical measurement: one source of truth,
   two views);
2. an overlap/hiding summary -- per step, the fraction of LET
   communication hidden behind local gravity work;
3. a per-rank imbalance table (gravity seconds and particle counts);
4. the Sec. VI-A performance accounting (:mod:`repro.obs.perf`) --
   per-rank/per-phase achieved flop-rates from the spans' exact
   interaction tallies, a per-step rate timeline, and the efficiency
   ratio against the calibrated :mod:`repro.perfmodel.gpu` rates
   (``--json`` exposes it under the ``"perf"`` key).

``python -m repro.obs.report a.json b.json`` instead *diffs* two runs
phase by phase (absolute and relative deltas on every Table II row,
the total, blocked-recv wait and step-time imbalance); with
``--threshold R`` the exit code is 1 whenever any phase of ``b``
regressed more than the relative threshold -- so "fault-free vs
degraded" or "theta=0.3 vs theta=0.8" comparisons become one command
with a CI-able verdict.

Options: ``--validate`` schema-checks the file(s) first, ``--json``
emits the statistics (or the diff) as JSON instead of text tables.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from typing import Any

from ..core.step import StepBreakdown, TABLE2_PHASES
from ..gravity.flops import InteractionCounts
from ..parallel.statistics import RunStatistics, aggregate_rank_histories
from .export import validate_chrome_trace
from .perf import perf_from_trace, perf_lines

#: Phase-span name -> StepBreakdown field.  Spans the driver books under
#: "Unbalance + Other" (boundary allgather, LET build/send, integrator
#: kick/drift) all fold into ``other``.
SPAN_TO_FIELD = {
    "sorting": "sorting",
    "domain_update": "domain_update",
    "tree_construction": "tree_construction",
    "tree_properties": "tree_properties",
    "gravity_local": "gravity_local",
    "gravity_let": "gravity_let",
    "non_hidden_comm": "non_hidden_comm",
    "other": "other",
    "boundary_exchange": "other",
    "let_exchange": "other",
}


def load_trace(path) -> dict:
    """Load a Chrome trace-event JSON file."""
    with open(path) as fh:
        return json.load(fh)


def histories_from_trace(doc: dict
                         ) -> tuple[list[list[StepBreakdown]], list[int],
                                    list[float]]:
    """Rebuild per-rank :class:`StepBreakdown` histories from a trace.

    Returns ``(histories, particle_counts, recv_waits)`` shaped exactly
    like the inputs of :func:`aggregate_rank_histories`: one history per
    rank (steps truncated to the shortest rank), final-step particle
    counts, and per-rank total blocked LET wait seconds.
    """
    by_rank_step: dict[tuple[int, int], StepBreakdown] = {}
    counts: dict[tuple[int, int], InteractionCounts] = {}
    n_particles: dict[int, int] = {}
    recv_waits: dict[int, float] = defaultdict(float)
    quadrupole = True

    for e in doc.get("traceEvents", ()):
        if e.get("ph") != "X" or e.get("cat") != "phase":
            continue
        field = SPAN_TO_FIELD.get(e.get("name"))
        if field is None:
            continue
        args = e.get("args", {})
        rank = int(e["tid"])
        step = int(args.get("step", 0))
        key = (rank, step)
        bd = by_rank_step.get(key)
        if bd is None:
            bd = by_rank_step[key] = StepBreakdown()
            counts[key] = InteractionCounts(n_pp=0, n_pc=0)
        setattr(bd, field, getattr(bd, field) + e["dur"] / 1e6)
        if "n_pp" in args or "n_pc" in args:
            counts[key].n_pp += int(args.get("n_pp", 0))
            counts[key].n_pc += int(args.get("n_pc", 0))
        if "quadrupole" in args:
            quadrupole = bool(args["quadrupole"])
        if "n_particles" in args:
            n_particles[rank] = int(args["n_particles"])
        if e["name"] == "non_hidden_comm":
            recv_waits[rank] += e["dur"] / 1e6

    if not by_rank_step:
        raise ValueError("trace contains no phase spans "
                         "(was the run traced with trace= enabled?)")
    ranks = sorted({r for r, _ in by_rank_step})
    n_steps = min(max(s for r2, s in by_rank_step if r2 == r) + 1
                  for r in ranks)
    histories: list[list[StepBreakdown]] = []
    for r in ranks:
        history = []
        for s in range(n_steps):
            bd = by_rank_step.get((r, s), StepBreakdown())
            c = counts.get((r, s), InteractionCounts(n_pp=0, n_pc=0))
            c.quadrupole = quadrupole
            bd.counts = c
            history.append(bd)
        histories.append(history)
    particle_counts = [n_particles.get(r, 0) for r in ranks]
    waits = [recv_waits[r] for r in ranks]
    return histories, particle_counts, waits


def statistics_from_trace(doc: dict) -> RunStatistics:
    """The trace-side Table II reduction (slowest rank, step-averaged)."""
    histories, particle_counts, waits = histories_from_trace(doc)
    return aggregate_rank_histories(histories, particle_counts,
                                    recv_waits=waits)


def table2_lines(stats: RunStatistics) -> list[str]:
    """Render the reconstructed Table II phase breakdown."""
    lines = [f"Table II breakdown from trace "
             f"({stats.n_ranks} ranks, {stats.n_particles_total} particles, "
             f"slowest-rank reduction, step-averaged):"]
    for phase in TABLE2_PHASES:
        lines.append(f"  {phase:18s} {getattr(stats.mean_step, phase):10.6f} s")
    lines.append(f"  {'TOTAL':18s} {stats.mean_step.total:10.6f} s")
    pp, pc = stats.interactions_per_particle
    lines.append(f"  pp/particle {pp:.1f}  pc/particle {pc:.1f}")
    lines.append(f"  aggregate force-kernel rate {stats.gpu_gflops_total:.3f} Gflops")
    lines.append(f"  slowest-rank blocked recv {stats.recv_wait_max:.6f} s")
    return lines


def overlap_lines(histories: list[list[StepBreakdown]]) -> list[str]:
    """Per-step communication-hiding summary.

    For each step the hidden fraction is
    ``1 - wait / (wait + gravity)`` with both terms at their
    slowest-rank value: the share of the LET-exchange window the slowest
    rank spent computing rather than blocked (Sec. III-B2's overlap
    claim, measured)."""
    lines = ["Overlap (fraction of LET comm hidden behind gravity):"]
    n_steps = min(len(h) for h in histories)
    for s in range(n_steps):
        wait = max(h[s].non_hidden_comm for h in histories)
        gravity = max(h[s].gravity_local + h[s].gravity_let
                      for h in histories)
        denom = wait + gravity
        hidden = 1.0 - wait / denom if denom > 0 else 1.0
        lines.append(f"  step {s}: hidden {hidden:6.1%}  "
                     f"(blocked {wait:.6f} s vs gravity {gravity:.6f} s)")
    return lines


def imbalance_lines(histories: list[list[StepBreakdown]],
                    particle_counts: list[int]) -> list[str]:
    """Per-rank step-time/particle imbalance table."""
    lines = ["Per-rank imbalance (mean over steps):",
             f"  {'rank':>4s} {'step total':>12s} {'gravity':>12s} "
             f"{'particles':>10s}"]
    n_steps = min(len(h) for h in histories)
    totals = []
    for r, h in enumerate(histories):
        tot = sum(bd.total for bd in h[:n_steps]) / n_steps
        grav = sum(bd.gravity_local + bd.gravity_let
                   for bd in h[:n_steps]) / n_steps
        totals.append(tot)
        n = particle_counts[r] if r < len(particle_counts) else 0
        lines.append(f"  {r:>4d} {tot:>12.6f} {grav:>12.6f} {n:>10d}")
    mean = sum(totals) / len(totals)
    if mean > 0:
        lines.append(f"  step-time imbalance (max/mean): "
                     f"{max(totals) / mean:.3f}")
    return lines


def loadbalance_summary(doc: dict) -> dict[str, Any] | None:
    """Measured-mode feedback summary: imbalance over time, re-cut count.

    Scans ``domain_update`` spans for the ``lb_imbalance`` /
    ``rebalanced`` args the measured-mode driver attaches plus the
    nested ``rebalance`` spans.  Only rank 0's copies are read -- the
    ratio is computed collectively, so every rank records the same
    value.  Returns ``None`` when the run did not use
    ``load_balance="measured"`` (no such args in the trace).

    ``rebalance`` spans deliberately stay out of :data:`SPAN_TO_FIELD`:
    they nest inside ``domain_update`` and would double-count its time.
    """
    checks: list[dict[str, Any]] = []
    n_recuts = 0
    for e in doc.get("traceEvents", ()):
        if e.get("ph") != "X" or e.get("cat") != "phase":
            continue
        if int(e.get("tid", -1)) != 0:
            continue
        args = e.get("args", {})
        if e.get("name") == "rebalance":
            n_recuts += 1
        elif e.get("name") == "domain_update" and "rebalanced" in args:
            checks.append({"step": int(args.get("step", 0)),
                           "imbalance": args.get("lb_imbalance"),
                           "rebalanced": bool(args["rebalanced"])})
    if not checks:
        return None
    return {"rebalances": n_recuts, "checks": checks}


def loadbalance_lines(summary: dict[str, Any]) -> list[str]:
    """Render the measured-mode imbalance-over-time section."""
    lines = [f"Load balance (measured-cost feedback, "
             f"{summary['rebalances']} re-cuts):"]
    for c in summary["checks"]:
        ratio = c["imbalance"]
        shown = f"{ratio:6.3f}" if ratio is not None else "  cold"
        action = "re-cut" if c["rebalanced"] else "kept boundaries"
        lines.append(f"  step {c['step']}: imbalance {shown}  {action}")
    return lines


def render_report(doc: dict) -> str:
    """The full text report for one trace document."""
    histories, particle_counts, waits = histories_from_trace(doc)
    stats = aggregate_rank_histories(histories, particle_counts,
                                     recv_waits=waits)
    sections = [table2_lines(stats), overlap_lines(histories),
                imbalance_lines(histories, particle_counts)]
    perf = perf_from_trace(doc)
    if perf is not None:
        sections.append(perf_lines(perf))
    lb = loadbalance_summary(doc)
    if lb is not None:
        sections.append(loadbalance_lines(lb))
    return "\n\n".join("\n".join(s) for s in sections)


def _json_report(doc: dict) -> dict[str, Any]:
    histories, particle_counts, waits = histories_from_trace(doc)
    stats = aggregate_rank_histories(histories, particle_counts,
                                     recv_waits=waits)
    out = {
        "n_ranks": stats.n_ranks,
        "n_particles_total": stats.n_particles_total,
        "phases": stats.mean_step.as_dict(),
        "total": stats.mean_step.total,
        "interactions_per_particle": list(stats.interactions_per_particle),
        "imbalance": stats.imbalance,
        "recv_wait_max": stats.recv_wait_max,
        "gpu_gflops_total": stats.gpu_gflops_total,
    }
    perf = perf_from_trace(doc)
    if perf is not None:
        out["perf"] = perf
    lb = loadbalance_summary(doc)
    if lb is not None:
        out["lb"] = lb
    return out


# -- run-to-run diffing ----------------------------------------------------

#: Time-like rows the regression threshold applies to (phase rows plus
#: the total -- a slower ``b`` on any of them can trip the exit code).
_DIFF_TIME_ROWS = tuple(TABLE2_PHASES) + ("total",)


def delta_row(a: float, b: float) -> dict[str, float | None]:
    """One A-to-B comparison row: ``a``, ``b``, ``delta`` (= b - a) and
    ``rel`` (delta / a; ``None`` when ``a`` is 0 -- a value appearing
    from nowhere has no meaningful relative change).

    Shared by the trace diff below and the benchmark-history verdicts
    in :mod:`repro.obs.bench` -- one threshold machinery, two gates.
    """
    return {"a": a, "b": b, "delta": b - a,
            "rel": (b - a) / a if a > 0 else None}


def row_regressed(row: dict[str, Any], threshold: float,
                  min_abs: float = 0.0) -> bool:
    """Did ``b`` regress (grow) beyond the relative threshold?

    A row regresses when its relative growth exceeds ``threshold`` *and*
    the absolute growth exceeds ``min_abs`` (the floor keeps noise in
    near-empty rows from tripping CI).  A value growing from exactly
    zero counts as a regression once it clears the absolute floor.
    """
    if row["delta"] <= min_abs:
        return False
    return row["rel"] is None or row["rel"] > threshold


def diff_reports(ra: dict[str, Any], rb: dict[str, Any]) -> dict[str, Any]:
    """Phase-by-phase delta between two ``_json_report`` dicts."""
    rows = {phase: delta_row(ra["phases"][phase], rb["phases"][phase])
            for phase in TABLE2_PHASES}
    rows["total"] = delta_row(ra["total"], rb["total"])
    return {
        "n_ranks": {"a": ra["n_ranks"], "b": rb["n_ranks"]},
        "rows": rows,
        "recv_wait_max": delta_row(ra["recv_wait_max"],
                                   rb["recv_wait_max"]),
        "imbalance": delta_row(ra["imbalance"], rb["imbalance"]),
    }


def diff_regressions(diff: dict[str, Any], threshold: float,
                     min_abs: float = 0.0) -> list[str]:
    """Time rows of ``b`` that regressed beyond ``threshold`` (see
    :func:`row_regressed` for the threshold/floor semantics)."""
    return [name for name in _DIFF_TIME_ROWS
            if row_regressed(diff["rows"][name], threshold, min_abs)]


def diff_lines(diff: dict[str, Any], threshold: float | None = None,
               min_abs: float = 0.0) -> list[str]:
    """Render the run-to-run delta table."""
    def fmt(r: dict[str, Any], label: str) -> str:
        rel = f"{r['rel']:+9.1%}" if r["rel"] is not None else \
            ("      new" if r["delta"] > 0 else "        -")
        return (f"  {label:18s} {r['a']:12.6f} {r['b']:12.6f} "
                f"{r['delta']:+12.6f} {rel}")

    lines = [f"Run diff (A -> B, {diff['n_ranks']['a']} vs "
             f"{diff['n_ranks']['b']} ranks; per-step, slowest-rank "
             "reduction):",
             f"  {'phase':18s} {'A [s]':>12s} {'B [s]':>12s} "
             f"{'delta':>12s} {'rel':>9s}"]
    for name in _DIFF_TIME_ROWS:
        lines.append(fmt(diff["rows"][name],
                         name if name != "total" else "TOTAL"))
    lines.append(fmt(diff["recv_wait_max"], "recv_wait_max"))
    lines.append(fmt(diff["imbalance"], "imbalance(max/mean)"))
    if threshold is not None:
        bad = diff_regressions(diff, threshold, min_abs)
        if bad:
            lines.append(f"  REGRESSION: {', '.join(bad)} slower than A "
                         f"beyond {threshold:.1%}")
        else:
            lines.append(f"  OK: no phase slower than A beyond "
                         f"{threshold:.1%}")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Reconstruct Table II / overlap / imbalance reports "
                    "from a Chrome trace-event file, or diff two of "
                    "them phase by phase.")
    parser.add_argument("trace", help="trace JSON written by the tracer")
    parser.add_argument("trace_b", nargs="?", default=None,
                        help="second trace: diff mode (A -> B)")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check the trace(s) before reporting")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the statistics (or diff) as JSON")
    parser.add_argument("--threshold", type=float, default=None,
                        metavar="REL",
                        help="diff mode: exit 1 when any phase of B is "
                             "slower than A by more than this relative "
                             "fraction (e.g. 0.1 = 10%%)")
    parser.add_argument("--min-abs", type=float, default=0.0,
                        metavar="SECONDS",
                        help="diff mode: ignore regressions smaller than "
                             "this many absolute seconds (noise floor)")
    args = parser.parse_args(argv)

    doc = load_trace(args.trace)
    if args.validate:
        validate_chrome_trace(doc)
        print(f"{args.trace}: schema OK "
              f"({len(doc['traceEvents'])} events)", file=sys.stderr)

    if args.trace_b is None:
        if args.as_json:
            print(json.dumps(_json_report(doc), indent=2, sort_keys=True))
        else:
            print(render_report(doc))
        return 0

    doc_b = load_trace(args.trace_b)
    if args.validate:
        validate_chrome_trace(doc_b)
        print(f"{args.trace_b}: schema OK "
              f"({len(doc_b['traceEvents'])} events)", file=sys.stderr)
    diff = diff_reports(_json_report(doc), _json_report(doc_b))
    regressions = [] if args.threshold is None else \
        diff_regressions(diff, args.threshold, args.min_abs)
    if args.as_json:
        out = dict(diff)
        if args.threshold is not None:
            out["threshold"] = args.threshold
            out["regressions"] = regressions
        print(json.dumps(out, indent=2, sort_keys=True))
    else:
        print("\n".join(diff_lines(diff, args.threshold, args.min_abs)))
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
