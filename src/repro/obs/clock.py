"""Pluggable clocks for the span tracer.

Two implementations share one protocol (``now``/``peek`` per rank):

- :class:`WallClock` -- ``time.perf_counter``; what production traces
  use.  ``rank`` is accepted and ignored.
- :class:`VirtualClock` -- a deterministic logical clock.  Each rank
  owns an independent counter that advances by a fixed ``tick`` on
  every ``now`` call, so a rank's timestamps are a pure function of its
  event sequence, not of thread scheduling.  Two runs of the same
  program therefore produce byte-identical traces (the determinism the
  harness tests assert).

``peek`` reads a rank's current time *without* advancing it.  Fault
instants use it so an injected fault never perturbs the logical
timeline of the run it was injected into.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict


class WallClock:
    """Real time via ``time.perf_counter`` (rank-independent)."""

    deterministic = False

    def now(self, rank: int = 0) -> float:
        """Current time in seconds; advances with the world."""
        return time.perf_counter()

    def peek(self, rank: int = 0) -> float:
        """Same as :meth:`now`: wall time has no side effects."""
        return time.perf_counter()


class VirtualClock:
    """Deterministic per-rank logical clock.

    Parameters
    ----------
    tick:
        Seconds added to a rank's clock per ``now`` call.
    start:
        Initial time of every rank.
    """

    deterministic = True

    def __init__(self, tick: float = 1e-3, start: float = 0.0):
        if tick <= 0:
            raise ValueError("tick must be positive")
        self.tick = tick
        self.start = start
        self._lock = threading.Lock()
        self._t: dict[int, float] = defaultdict(float)

    def now(self, rank: int = 0) -> float:
        """Return this rank's time, then advance it by one tick."""
        with self._lock:
            t = self._t[rank]
            self._t[rank] = t + self.tick
        return self.start + t

    def peek(self, rank: int = 0) -> float:
        """This rank's time without advancing it."""
        with self._lock:
            return self.start + self._t[rank]
