"""Streaming trace sinks: where tracer events go as they are emitted.

PR 2's tracer buffered every event in an unbounded list and all
serialisation happened post-hoc -- O(steps) memory, exactly what breaks
on long runs.  A :class:`Sink` receives each :class:`TraceEvent` the
moment it is recorded, so memory and I/O policy become pluggable:

- :class:`BufferSink`    -- the classic unbounded in-memory buffer
  (the :class:`~repro.obs.tracer.Tracer` default, for post-hoc export);
- :class:`RingSink`      -- bounded ring keeping the newest ``capacity``
  events; overflow *drops the oldest* with accounting (a ``dropped``
  count, a one-shot :class:`TraceDropWarning` and, once bound to a
  registry, the ``trace_events_dropped_total`` counter) instead of
  growing silently.  The live dashboard tails one of these;
- :class:`StreamingJsonlSink` -- incremental JSONL file writer with a
  configurable flush cadence.  Events spool to one part-file per rank
  (a rank's events arrive in sequence order, so each part streams
  append-only); :meth:`~StreamingJsonlSink.close` concatenates the
  parts in rank order, which *byte-reproduces* the post-hoc
  ``write_jsonl`` output -- one serialisation, two paths;
- :class:`TeeSink` / :class:`NullSink` -- fan-out and discard.

``encode_jsonl_line`` is the single canonical per-event serialisation;
:func:`repro.obs.export.jsonl_lines` is now a consumer of it, so the
buffered exporter and the streaming sink cannot diverge (the
determinism suite pins byte equality).
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from collections import deque
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .metrics import MetricsRegistry
    from .tracer import TraceEvent


class TraceDropWarning(RuntimeWarning):
    """A bounded sink dropped trace events (see ``dropped`` accounting)."""


def encode_jsonl_line(e: "TraceEvent") -> str:
    """Canonical JSONL serialisation of one event (no trailing newline).

    Shared by the buffered exporter (:func:`repro.obs.export.jsonl_lines`)
    and :class:`StreamingJsonlSink`: sorted keys, fixed separators, keys
    present only when meaningful -- a deterministic event yields
    deterministic bytes.
    """
    rec: dict[str, Any] = {"rank": e.rank, "seq": e.seq, "ph": e.ph,
                           "name": e.name, "cat": e.cat, "ts": e.ts}
    if e.ph == "X":
        rec["dur"] = e.dur
    if e.args:
        rec["args"] = e.args
    if e.flow_id is not None:
        rec["flow_id"] = e.flow_id
    return json.dumps(rec, sort_keys=True, separators=(",", ":"))


class Sink:
    """Receives trace events as they are emitted.

    Subclasses override :meth:`emit`; the lifecycle hooks
    (:meth:`flush`, :meth:`close`, :meth:`clear`) and the retention API
    (:attr:`retains` / :meth:`events`) default to no-ops so write-only
    sinks stay minimal.  Sinks are context managers (``close`` on exit).
    """

    #: True when :meth:`events` returns (some of) the received events.
    retains = False

    def emit(self, event: "TraceEvent") -> None:
        """Receive one event (called under the tracer's lock)."""
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered state to its destination (no-op by default)."""

    def close(self) -> None:
        """Flush and release resources; further emits are undefined."""

    def clear(self) -> None:
        """Drop retained events (no-op for write-only sinks)."""

    def events(self) -> list["TraceEvent"]:
        """Retained events ordered by ``(rank, seq)`` (empty if none)."""
        return []

    def bind_metrics(self, registry: "MetricsRegistry") -> None:
        """Attach a metrics registry for sink-side accounting (no-op)."""

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullSink(Sink):
    """Discards every event (tracing enabled, output nowhere)."""

    def emit(self, event: "TraceEvent") -> None:
        pass


#: Shared process-wide discard sink.
NULL_SINK = NullSink()


class BufferSink(Sink):
    """Unbounded in-memory buffer -- the classic post-hoc export path."""

    retains = True

    def __init__(self) -> None:
        self._events: list["TraceEvent"] = []

    def emit(self, event: "TraceEvent") -> None:
        self._events.append(event)

    def events(self) -> list["TraceEvent"]:
        return sorted(self._events, key=lambda e: (e.rank, e.seq))

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)


class RingSink(Sink):
    """Bounded ring buffer keeping the newest ``capacity`` events.

    Overflow evicts the oldest event and accounts for it: the
    :attr:`dropped` counter always, a one-shot :class:`TraceDropWarning`
    on the first drop, and the ``trace_events_dropped_total`` counter of
    any bound registry (drops that happened before binding are folded in
    at bind time, so the counter never under-reports).
    """

    retains = True

    def __init__(self, capacity: int,
                 registry: "MetricsRegistry | None" = None):
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.capacity = capacity
        self.dropped = 0
        self._ring: deque["TraceEvent"] = deque()
        self._lock = threading.Lock()
        self._counter = None
        self._warned = False
        if registry is not None:
            self.bind_metrics(registry)

    def bind_metrics(self, registry: "MetricsRegistry") -> None:
        with self._lock:
            counter = registry.counter(
                "trace_events_dropped_total",
                "Trace events evicted from a bounded sink before export")
            if counter is not self._counter and self.dropped:
                counter.inc(self.dropped)
            self._counter = counter

    def emit(self, event: "TraceEvent") -> None:
        # The ring update (evict + account + append) completes under the
        # lock before any side effect that can raise: with warnings
        # escalated to errors (pytest -W error), the one-shot
        # TraceDropWarning must not lose the incoming event, and every
        # drop in a sustained burst must still reach the registry
        # counter.
        counter = None
        warn = False
        with self._lock:
            if len(self._ring) >= self.capacity:
                self._ring.popleft()
                self.dropped += 1
                counter = self._counter
                if not self._warned:
                    self._warned = True
                    warn = True
            self._ring.append(event)
        if counter is not None:
            counter.inc()
        if warn:
            warnings.warn(
                f"RingSink(capacity={self.capacity}) is full: "
                "oldest trace events are being dropped (see "
                "trace_events_dropped_total)", TraceDropWarning,
                stacklevel=2)

    def events(self) -> list["TraceEvent"]:
        with self._lock:
            return sorted(self._ring, key=lambda e: (e.rank, e.seq))

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


class StreamingJsonlSink(Sink):
    """Incremental JSONL writer: O(1) tracer memory on runs of any length.

    Events are serialised with :func:`encode_jsonl_line` the moment they
    arrive and appended to one spool file per rank
    (``<path>.rank<r>.part``); at most ``flush_every`` lines per rank
    are ever held in memory.  Because every rank emits its own events in
    sequence order (each rank is one thread), each part file is already
    sorted by ``seq`` -- so :meth:`close` just concatenates the parts in
    rank order into ``path`` and deletes them, producing bytes identical
    to the post-hoc ``write_jsonl`` of a buffered run.

    Parameters
    ----------
    path:
        Final JSONL file (created/overwritten at :meth:`close`).
    flush_every:
        Lines buffered per rank before appending to its part file.
    keep_parts:
        Leave the per-rank part files next to ``path`` after the merge
        (useful for per-rank tailing).
    """

    def __init__(self, path, flush_every: int = 64,
                 keep_parts: bool = False):
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.path = os.fspath(path)
        self.flush_every = flush_every
        self.keep_parts = keep_parts
        #: High-water mark of lines buffered for any one rank (the
        #: bounded-memory property the tests assert).
        self.max_buffered = 0
        self.n_events = 0
        self._buf: dict[int, list[str]] = {}
        self._files: dict[int, Any] = {}
        self._lock = threading.Lock()
        self._closed = False

    def _part_path(self, rank: int) -> str:
        return f"{self.path}.rank{rank}.part"

    def emit(self, event: "TraceEvent") -> None:
        line = encode_jsonl_line(event)
        with self._lock:
            if self._closed:
                raise ValueError(f"sink for {self.path!r} is closed")
            buf = self._buf.setdefault(event.rank, [])
            buf.append(line)
            self.n_events += 1
            if len(buf) > self.max_buffered:
                self.max_buffered = len(buf)
            if len(buf) >= self.flush_every:
                self._flush_rank(event.rank)

    def _flush_rank(self, rank: int) -> None:
        buf = self._buf.get(rank)
        if not buf:
            return
        fh = self._files.get(rank)
        if fh is None:
            fh = self._files[rank] = open(self._part_path(rank), "w")
        fh.write("".join(line + "\n" for line in buf))
        buf.clear()

    def buffered_lines(self) -> int:
        """Lines currently held in memory across all ranks."""
        with self._lock:
            return sum(len(b) for b in self._buf.values())

    def flush(self) -> None:
        """Append every buffered line to its part file and fsync-flush."""
        with self._lock:
            for rank in list(self._buf):
                self._flush_rank(rank)
            for fh in self._files.values():
                fh.flush()

    def close(self) -> None:
        """Flush, then merge part files (rank order) into ``path``."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for rank in list(self._buf):
                self._flush_rank(rank)
            for fh in self._files.values():
                fh.close()
            with open(self.path, "w") as out:
                for rank in sorted(self._files):
                    with open(self._part_path(rank)) as part:
                        for chunk in iter(lambda p=part: p.read(1 << 16), ""):
                            out.write(chunk)
            if not self.keep_parts:
                for rank in self._files:
                    os.unlink(self._part_path(rank))
            self._files.clear()
            self._buf.clear()


class TeeSink(Sink):
    """Fans every event out to several sinks (e.g. buffer + stream)."""

    def __init__(self, *sinks: Sink):
        if not sinks:
            raise ValueError("TeeSink needs at least one sink")
        self.sinks = tuple(sinks)

    @property
    def retains(self) -> bool:  # type: ignore[override]
        return any(s.retains for s in self.sinks)

    def emit(self, event: "TraceEvent") -> None:
        for s in self.sinks:
            s.emit(event)

    def flush(self) -> None:
        for s in self.sinks:
            s.flush()

    def close(self) -> None:
        for s in self.sinks:
            s.close()

    def clear(self) -> None:
        for s in self.sinks:
            s.clear()

    def events(self) -> list["TraceEvent"]:
        for s in self.sinks:
            if s.retains:
                return s.events()
        return []

    def bind_metrics(self, registry: "MetricsRegistry") -> None:
        for s in self.sinks:
            s.bind_metrics(registry)


def coerce_sink(spec) -> Sink:
    """Turn a sink *spec* into a :class:`Sink`.

    - a :class:`Sink` passes through;
    - a ``str`` / ``os.PathLike`` becomes a :class:`StreamingJsonlSink`
      writing there;
    - an ``int`` becomes a :class:`RingSink` of that capacity;
    - a list/tuple becomes a :class:`TeeSink` of its coerced members.

    This is what the drivers' ``trace_sink=`` option accepts.
    """
    if isinstance(spec, Sink):
        return spec
    if isinstance(spec, bool):
        raise TypeError("cannot make a trace sink from a bool")
    if isinstance(spec, int):
        return RingSink(spec)
    if isinstance(spec, (str, os.PathLike)):
        return StreamingJsonlSink(spec)
    if isinstance(spec, (list, tuple)):
        return TeeSink(*(coerce_sink(s) for s in spec))
    raise TypeError(f"cannot make a trace sink from {type(spec).__name__}")
