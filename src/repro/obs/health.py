"""Run-health telemetry: heartbeats, stall/straggler/death verdicts, forensics.

The observability stack so far explains runs *after* they finish; this
module watches them *while* they run and preserves enough evidence when
they die (docs/OBSERVABILITY.md section 13):

- :class:`HeartbeatBoard` -- a cheap per-rank progress beacon.  The
  SimMPI op sites (``push``/``pop``/``exchange``/``set_phase``) and the
  driver loop stamp ``(step, phase, op counter, clock timestamp)``
  through it; timestamps come from ``clock.peek`` so heartbeats never
  advance a :class:`~repro.obs.clock.VirtualClock` timeline -- a
  heartbeat-instrumented run stays byte-identical to a bare one.
- :class:`HealthMonitor` -- classifies every rank ``ok`` / ``straggler``
  / ``stalled`` / ``dead``: dead from the world's failed-rank tracking
  (including the :class:`~repro.simmpi.process.ProcessWorld` watchdog),
  stalled when a rank's heartbeat age exceeds the deadline, straggler
  by a robust z-score (median/MAD) over the PR 3 cost-model series
  ``force_phase_seconds_total{rank,phase}``.  Verdicts are surfaced as
  the ``heartbeat_age_seconds{rank}`` / ``health_state{rank}`` gauges
  and rendered as a panel by :mod:`repro.obs.dashboard`.
- :class:`FlightRecorder` -- a bounded ring of recent trace events
  (:class:`~repro.obs.sink.RingSink`) plus :func:`write_bundle`, which
  dumps a post-mortem bundle (trace tail + metrics snapshot + config
  fingerprint + heartbeats + thread stacks) the moment a run dies or a
  stall verdict fires.  ``python -m repro.obs.postmortem`` analyses the
  bundle.

Bundles written under a deterministic clock are byte-identical across
runs: wall-clock-valued metric families are filtered from the metrics
snapshot and thread stacks (inherently scheduling-dependent) are
elided, so the determinism suite can ``cmp`` whole bundle directories.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sys
import threading
import traceback

from .clock import WallClock
from .sink import RingSink, encode_jsonl_line

#: Health states in escalation order; gauge codes are the indices.
HEALTH_STATES = ("ok", "straggler", "stalled", "dead")
#: ``health_state{rank}`` gauge value per state name.
HEALTH_STATE_CODES = {name: code for code, name in enumerate(HEALTH_STATES)}

#: Bundle layout version (manifest ``schema`` field).
BUNDLE_SCHEMA = 1

#: ``force_phase_seconds_total`` phases excluded from straggler cost
#: sums: they are dominated by *waiting on peers* (a collective wait or
#: an un-hidden LET receive), so they charge a straggler's slowness to
#: its victims and smear the guilt evenly across ranks.
WAIT_PHASES = frozenset({"boundary_exchange", "non_hidden_comm"})

#: File names inside a post-mortem bundle directory.
BUNDLE_FILES = ("manifest.json", "trace_tail.jsonl", "metrics.txt",
                "config.json", "heartbeats.json", "stacks.txt")


class HeartbeatBoard:
    """Latest progress beacon per rank, updated from the hot comm path.

    One board is shared by every rank of a run (the process transport
    rebuilds a rank-local board per worker and merges the snapshots
    back).  Each record carries the rank's last-known ``step``,
    ``phase``, ``ops`` (cumulative comm-op count), ``beats`` (total
    updates), ``ts`` (clock timestamp of the newest beat) and, while
    the rank is blocked inside a receive, the ``wait`` target
    ``{"src", "tag"}`` -- which is exactly the edge set of the
    post-mortem wait-for graph.

    Timestamps are read with ``clock.peek(rank)``: a heartbeat must
    never advance a rank's :class:`~repro.obs.clock.VirtualClock` lane,
    so enabling health telemetry cannot perturb a deterministic trace.
    """

    def __init__(self, size: int, clock=None, registry=None):
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size
        self.clock = clock if clock is not None else WallClock()
        self._lock = threading.Lock()
        self._records: dict[int, dict] = {}
        self._beats_counter = None
        if registry is not None:
            self.bind_metrics(registry)

    def use_clock(self, clock) -> None:
        """Adopt ``clock`` as the timestamp source (the SPMD runtime
        calls this so board and tracer share one clock object -- under
        a virtual clock, ``peek`` only means anything on the clock the
        tracer advances)."""
        if clock is not None:
            self.clock = clock

    def bind_metrics(self, registry) -> None:
        """Book the ``heartbeats_total{rank}`` counter on ``registry``."""
        self._beats_counter = registry.counter(
            "heartbeats_total", "Progress beacons emitted per rank",
            labelnames=("rank",))

    # -- producers (hot path: one dict update under one lock) -------------

    def _record(self, rank: int) -> dict:
        rec = self._records.get(rank)
        if rec is None:
            rec = self._records[rank] = {
                "step": None, "phase": None, "ops": 0, "beats": 0,
                "ts": self.clock.peek(rank), "wait": None,
                "last_fault": None, "faults": 0}
        return rec

    def beat(self, rank: int, step: int | None = None,
             phase: str | None = None) -> None:
        """Driver-level beacon: stamp step/phase and refresh the clock."""
        with self._lock:
            rec = self._record(rank)
            if step is not None:
                rec["step"] = int(step)
            if phase is not None:
                rec["phase"] = phase
            rec["beats"] += 1
            rec["ts"] = self.clock.peek(rank)
        if self._beats_counter is not None:
            self._beats_counter.inc(rank=rank)

    def op(self, rank: int) -> None:
        """Comm-op beacon (push/pop/exchange sites)."""
        with self._lock:
            rec = self._record(rank)
            rec["ops"] += 1
            rec["beats"] += 1
            rec["ts"] = self.clock.peek(rank)
        if self._beats_counter is not None:
            self._beats_counter.inc(rank=rank)

    def phase(self, rank: int, name: str) -> None:
        """Phase-change beacon (``SimWorld.set_phase`` hook)."""
        with self._lock:
            rec = self._record(rank)
            rec["phase"] = name
            rec["beats"] += 1
            rec["ts"] = self.clock.peek(rank)
        if self._beats_counter is not None:
            self._beats_counter.inc(rank=rank)

    def wait_begin(self, rank: int, src: int, tag: int) -> None:
        """Mark ``rank`` blocked receiving from ``src``.

        Deliberately *not* cleared on a failed receive: if the rank
        dies inside the recv, the stale wait entry is its last-known
        blocking target -- the edge the post-mortem wait-for graph
        needs.
        """
        with self._lock:
            self._record(rank)["wait"] = {"src": int(src), "tag": int(tag)}

    def wait_end(self, rank: int) -> None:
        """Clear the wait mark after a *successful* receive."""
        with self._lock:
            rec = self._records.get(rank)
            if rec is not None:
                rec["wait"] = None

    def note_fault(self, rank: int, kind: str) -> None:
        """Record an injected fault firing on ``rank`` (the fault
        lottery calls this so the newest fault survives even after the
        trace ring has rotated its instant out)."""
        with self._lock:
            rec = self._record(rank)
            rec["last_fault"] = kind
            rec["faults"] += 1

    # -- consumers ---------------------------------------------------------

    def last(self, rank: int) -> dict | None:
        """Copy of ``rank``'s latest record (None before its first beat)."""
        with self._lock:
            rec = self._records.get(rank)
            return dict(rec) if rec is not None else None

    def now(self) -> float:
        """The board's notion of "now": the front of the clock.

        A virtual clock advances per rank, so "now" is the maximum lane
        time -- the age of a lagging rank is how far it trails the
        front.  For a wall clock every peek reads the same time.
        """
        return max(self.clock.peek(r) for r in range(self.size))

    def age(self, rank: int, now: float | None = None) -> float | None:
        """Seconds since ``rank``'s last beat (None before any beat)."""
        with self._lock:
            rec = self._records.get(rank)
            ts = rec["ts"] if rec is not None else None
        if ts is None:
            return None
        if now is None:
            now = self.now()
        return max(now - ts, 0.0)

    def snapshot(self) -> dict:
        """Picklable/JSON-able dump: ``{"size", "ranks": {rank: rec}}``."""
        with self._lock:
            return {"size": self.size,
                    "ranks": {int(r): dict(rec)
                              for r, rec in self._records.items()}}

    def merge(self, snap: dict) -> None:
        """Fold another board's snapshot in (process-transport reports);
        per rank, the record with the most beats wins."""
        for r, rec in snap.get("ranks", {}).items():
            r = int(r)
            with self._lock:
                mine = self._records.get(r)
                if mine is None or rec.get("beats", 0) >= mine.get("beats", 0):
                    self._records[r] = dict(rec)


def robust_zscores(values: dict[int, float]) -> dict[int, float]:
    """Robust z-score per key: deviation from the median in MAD units.

    Falls back to the mean absolute deviation when the MAD degenerates
    to zero (e.g. 3 of 4 ranks identical), and to all-zero scores when
    every value is identical.  Scale factors 1.4826 (MAD) and 1.2533
    (meanAD) make the scores comparable to standard deviations under
    normality.
    """
    if not values:
        return {}
    xs = sorted(values.values())
    n = len(xs)
    mid = n // 2
    median = xs[mid] if n % 2 else 0.5 * (xs[mid - 1] + xs[mid])
    devs = sorted(abs(x - median) for x in xs)
    mad = devs[mid] if n % 2 else 0.5 * (devs[mid - 1] + devs[mid])
    scale = 1.4826 * mad
    if scale <= 0.0:
        scale = 1.2533 * (sum(devs) / n)
    if scale <= 0.0:
        return {k: 0.0 for k in values}
    return {k: (v - median) / scale for k, v in values.items()}


class HealthMonitor:
    """Classifies every rank of a running world.

    Parameters
    ----------
    world:
        The world under observation (``metrics`` and ``failed_ranks``
        are read from it).
    board:
        The run's :class:`HeartbeatBoard` (default: the board attached
        to the world via ``attach_health``).
    stall_after:
        Heartbeat age (clock seconds) beyond which a live rank is
        declared stalled.
    straggler_z:
        Robust z-score over per-rank ``force_phase_seconds_total`` sums
        at which a rank is declared a straggler.
    straggler_ratio:
        Secondary absolute criterion: a rank is also a straggler when
        its cost exceeds ``ratio`` times the median (the z-score
        degenerates at 2 ranks, where every value sits one MAD from
        the median).
    min_straggler_seconds:
        Ignore cost skew below this floor (empty-phase noise).
    recorder:
        Optional :class:`FlightRecorder`; the first stall verdict dumps
        a post-mortem bundle through it (once per monitor).
    """

    def __init__(self, world, board: HeartbeatBoard | None = None,
                 stall_after: float = 5.0, straggler_z: float = 3.5,
                 straggler_ratio: float = 3.0,
                 min_straggler_seconds: float = 1e-4,
                 recorder: "FlightRecorder | None" = None):
        if stall_after <= 0:
            raise ValueError("stall_after must be positive")
        self.world = world
        self.board = board if board is not None \
            else getattr(world, "health", None)
        self.stall_after = stall_after
        self.straggler_z = straggler_z
        self.straggler_ratio = straggler_ratio
        self.min_straggler_seconds = min_straggler_seconds
        self.recorder = recorder
        self._stall_dumped = False
        reg = world.metrics
        self._age_gauge = reg.gauge(
            "heartbeat_age_seconds",
            "Clock seconds since a rank's newest heartbeat",
            labelnames=("rank",))
        self._state_gauge = reg.gauge(
            "health_state",
            "Rank health: 0 ok, 1 straggler, 2 stalled, 3 dead",
            labelnames=("rank",))

    def rank_costs(self) -> dict[int, float]:
        """Per-rank sum of the ``force_phase_seconds_total`` series,
        excluding the wait-dominated phases (:data:`WAIT_PHASES`) whose
        time belongs to the rank being waited *on*."""
        counter = self.world.metrics.get("force_phase_seconds_total")
        if counter is None:
            return {}
        costs: dict[int, float] = {}
        for (rank, phase), secs in counter.series().items():
            if str(phase) in WAIT_PHASES:
                continue
            r = int(rank)
            costs[r] = costs.get(r, 0.0) + secs
        return costs

    def straggler_scores(self) -> dict[int, tuple[float, float]]:
        """``{rank: (robust z, cost seconds)}`` over live ranks."""
        costs = {r: c for r, c in self.rank_costs().items()
                 if r not in self.world.failed_ranks}
        z = robust_zscores(costs)
        return {r: (z[r], costs[r]) for r in costs}

    def _is_straggler(self, z: float, cost: float,
                      costs: dict[int, float]) -> bool:
        if cost < self.min_straggler_seconds:
            return False
        # Ratio criterion against the *lower* median: with an even rank
        # count the interpolated median averages the outlier in, and at
        # 2 ranks ``cost >= ratio * mean(a, b)`` can never hold for any
        # positive ratio > 2 -- the lower median keeps the baseline on
        # the healthy side.
        xs = sorted(costs.values())
        median = xs[(len(xs) - 1) // 2]
        return z >= self.straggler_z or \
            (median > 0 and cost >= self.straggler_ratio * median)

    def assess(self, now: float | None = None) -> dict[int, str]:
        """Classify every rank; books the age/state gauges.

        ``now`` overrides the board clock's notion of the present
        (tests sweep it to check age monotonicity).
        """
        size = self.world.size
        dead = self.world.failed_ranks
        scores = self.straggler_scores()
        costs = {r: c for r, (_z, c) in scores.items()}
        states: dict[int, str] = {}
        for r in range(size):
            age = self.board.age(r, now=now) if self.board is not None \
                else None
            if r in dead:
                state = "dead"
            elif age is not None and age > self.stall_after:
                state = "stalled"
            elif r in scores and self._is_straggler(*scores[r], costs):
                state = "straggler"
            else:
                state = "ok"
            states[r] = state
            if age is not None:
                self._age_gauge.set(age, rank=r)
            self._state_gauge.set(HEALTH_STATE_CODES[state], rank=r)
        if self.recorder is not None and not self._stall_dumped and \
                any(s == "stalled" for s in states.values()):
            self._stall_dumped = True
            self.recorder.dump("stall")
        return states

    def rows(self, now: float | None = None) -> list[dict]:
        """Per-rank dict rows for rendering (dashboard health panel)."""
        states = self.assess(now=now)
        out = []
        for r in range(self.world.size):
            rec = self.board.last(r) if self.board is not None else None
            out.append({
                "rank": r,
                "state": states[r],
                "age": self.board.age(r, now=now)
                if self.board is not None else None,
                "step": rec.get("step") if rec else None,
                "phase": rec.get("phase") if rec else None,
                "ops": rec.get("ops", 0) if rec else 0,
            })
        return out


def config_fingerprint(config) -> str:
    """Stable sha256 over a :class:`~repro.config.SimulationConfig`."""
    if config is None:
        return "none"
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        doc = dataclasses.asdict(config)
    elif isinstance(config, dict):
        doc = config
    else:
        doc = {"repr": repr(config)}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def _error_doc(error: BaseException | None) -> dict | None:
    if error is None:
        return None
    return {"type": type(error).__name__,
            "message": str(error),
            "failed_rank": getattr(error, "failed_rank", None),
            "waiting_rank": getattr(error, "waiting_rank", None),
            "detail": getattr(error, "detail", None)}


#: Metric families elided from deterministic-clock bundles: their values
#: are wall-clock measurements (or ratios of them), the one thing that
#: cannot be byte-reproduced run to run.
def _wall_valued(name: str) -> bool:
    return (name.endswith("_seconds") or name.endswith("_seconds_total")
            or name in ("force_gflops", "lb_imbalance_ratio",
                        "lb_cost_per_particle"))


def _metrics_text(registry, deterministic: bool) -> str:
    if registry is None:
        return ""
    text = registry.render()
    if not deterministic:
        return text
    out: list[str] = []
    keep = True
    for line in text.splitlines():
        if line.startswith("# HELP "):
            keep = not _wall_valued(line.split(" ", 3)[2])
        if keep:
            out.append(line)
    return "\n".join(out) + ("\n" if out else "")


def _stacks_text(deterministic: bool) -> str:
    if deterministic:
        return ("(thread stacks omitted under a deterministic clock: "
                "scheduling state is not byte-reproducible)\n")
    frames = sys._current_frames()
    names = {t.ident: t.name for t in threading.enumerate()}
    parts = []
    for ident, frame in sorted(frames.items()):
        parts.append(f"--- thread {names.get(ident, '?')} (ident {ident}) ---")
        parts.append("".join(traceback.format_stack(frame)).rstrip())
    return "\n".join(parts) + "\n"


def write_bundle(path, *, reason: str, error: BaseException | None = None,
                 world=None, board: HeartbeatBoard | None = None,
                 config=None, ring: RingSink | None = None) -> str:
    """Write a post-mortem bundle directory; returns its path.

    The bundle is the complete forensic record of a dying run:

    - ``manifest.json``   -- reason, typed-error fields, world shape,
      fault schedule, failed ranks, config fingerprint;
    - ``trace_tail.jsonl``-- the flight ring's events, (rank, seq)
      sorted, in the canonical JSONL encoding;
    - ``metrics.txt``     -- Prometheus snapshot of the world registry
      (wall-valued families elided under a deterministic clock);
    - ``config.json``     -- the full simulation config + fingerprint;
    - ``heartbeats.json`` -- the board snapshot (last step/phase/op and
      blocked-recv target per rank);
    - ``stacks.txt``      -- live thread stacks (wall clocks only).

    Existing files are overwritten, so repeated dumps into one
    directory are idempotent -- and byte-identical across runs under a
    :class:`~repro.obs.clock.VirtualClock`.
    """
    path = os.fspath(path)
    os.makedirs(path, exist_ok=True)
    clock = board.clock if board is not None else None
    deterministic = bool(getattr(clock, "deterministic", False))

    events = ring.events() if ring is not None else []
    hb = board.snapshot() if board is not None else {"size": None, "ranks": {}}
    schedule = getattr(world, "schedule", None)
    fingerprint = config_fingerprint(config)

    manifest: dict = {
        "schema": BUNDLE_SCHEMA,
        "reason": reason,
        "error": _error_doc(error),
        "size": getattr(world, "size", None) or
        (board.size if board is not None else None),
        "transport": getattr(world, "transport", None),
        "deterministic_clock": deterministic,
        "config_fingerprint": fingerprint,
        "fault_schedule": schedule.describe()
        if schedule is not None and hasattr(schedule, "describe") else None,
        "failed_ranks": sorted(getattr(world, "failed_ranks", ())),
        "watchdog_grace_seconds": getattr(world, "watchdog_grace", None),
        "trace_events": len(events),
        "files": list(BUNDLE_FILES),
    }

    def _write(name: str, text: str) -> None:
        with open(os.path.join(path, name), "w") as fh:
            fh.write(text)

    _write("manifest.json", json.dumps(manifest, sort_keys=True, indent=2)
           + "\n")
    _write("trace_tail.jsonl",
           "".join(encode_jsonl_line(e) + "\n" for e in events))
    _write("metrics.txt",
           _metrics_text(getattr(world, "metrics", None), deterministic))
    cfg_doc = {"config": dataclasses.asdict(config)
               if dataclasses.is_dataclass(config)
               and not isinstance(config, type) else config,
               "fingerprint": fingerprint}
    _write("config.json", json.dumps(cfg_doc, sort_keys=True, indent=2,
                                     default=str) + "\n")
    _write("heartbeats.json", json.dumps(
        {"size": hb["size"],
         "ranks": {str(r): hb["ranks"][r] for r in sorted(hb["ranks"])}},
        sort_keys=True, indent=2) + "\n")
    _write("stacks.txt", _stacks_text(deterministic))
    return path


class FlightRecorder:
    """Bounded flight ring + automatic post-mortem bundle dumps.

    Owns a :class:`~repro.obs.sink.RingSink` (attach it to the run's
    tracer -- the drivers do this when handed a recorder) and, once
    bound to a world/board/config, writes a bundle on demand.  The
    drivers call :meth:`dump` when a
    :class:`~repro.simmpi.errors.RankFailedError` /
    :class:`~repro.simmpi.errors.RecvTimeoutError` (or any run-level
    failure) surfaces; a :class:`HealthMonitor` holding the recorder
    dumps on its first stall verdict.
    """

    def __init__(self, out_dir="postmortem", capacity: int = 4096):
        self.out_dir = os.fspath(out_dir)
        self.ring = RingSink(capacity)
        self.world = None
        self.board: HeartbeatBoard | None = None
        self.config = None
        #: Path of the newest bundle (None until the first dump).
        self.bundle_path: str | None = None
        #: Reason of the newest dump.
        self.last_reason: str | None = None

    def bind(self, world=None, board: HeartbeatBoard | None = None,
             config=None) -> None:
        """Attach the run context the bundle writer needs (idempotent;
        later non-None values win)."""
        if world is not None:
            self.world = world
        if board is not None:
            self.board = board
        if config is not None:
            self.config = config

    def dump(self, reason: str, error: BaseException | None = None) -> str:
        """Write a bundle into ``out_dir``; returns the bundle path."""
        self.bundle_path = write_bundle(
            self.out_dir, reason=reason, error=error, world=self.world,
            board=self.board, config=self.config, ring=self.ring)
        self.last_reason = reason
        return self.bundle_path
