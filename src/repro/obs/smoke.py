"""A small traced parallel run: ``python -m repro.obs.smoke``.

Runs a Plummer model on a few SimMPI ranks with tracing on, writes (and
schema-validates) the Chrome trace, optionally dumps the Prometheus
metrics text, and prints a one-paragraph summary.  This is the CI
trace-smoke job and the ``make trace`` target; pipe the written file to
``python -m repro.obs.report`` for the full Table II reconstruction.
"""

from __future__ import annotations

import argparse
import sys

from ..config import SimulationConfig
from ..core.parallel_simulation import run_parallel_simulation
from ..ics import plummer_model
from ..parallel.statistics import run_statistics
from ..simmpi import SimWorld
from .clock import VirtualClock
from .export import validate_chrome_trace_file, write_chrome_trace
from .sink import BufferSink, StreamingJsonlSink
from .tracer import Tracer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.smoke",
        description="Run a small traced parallel simulation and write a "
                    "schema-validated Chrome trace.")
    parser.add_argument("--ranks", type=int, default=2)
    parser.add_argument("--n", type=int, default=1000,
                        help="total particle count")
    parser.add_argument("--steps", type=int, default=2)
    parser.add_argument("--theta", type=float, default=0.75)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--trace-out", default="trace.json",
                        help="Chrome trace output path")
    parser.add_argument("--metrics-out", default=None,
                        help="also write Prometheus metrics text here")
    parser.add_argument("--jsonl-out", default=None,
                        help="also stream the trace to this JSONL file "
                             "*during* the run (StreamingJsonlSink; "
                             "byte-identical to the post-hoc export)")
    parser.add_argument("--virtual-clock", action="store_true",
                        help="deterministic logical timestamps instead of "
                             "wall time (byte-reproducible trace)")
    parser.add_argument("--reference-pipeline", action="store_true",
                        help="run the pre-fast-path force pipeline "
                             "(per-source walks, bincount scatter, cold "
                             "sorts) instead of the default fast path -- "
                             "diff the two traces with repro.obs.report "
                             "(docs/PERFORMANCE.md)")
    args = parser.parse_args(argv)

    clock = VirtualClock() if args.virtual_clock else None
    sinks = [BufferSink()]
    if args.jsonl_out:
        sinks.append(StreamingJsonlSink(args.jsonl_out))
    tracer = Tracer(clock=clock, sink=sinks)
    world = SimWorld(args.ranks)
    particles = plummer_model(args.n, seed=args.seed)
    if args.reference_pipeline:
        config = SimulationConfig(theta=args.theta, batch_sources=False,
                                  sort_reuse=False, scatter="bincount",
                                  chunk=1 << 21)
    else:
        config = SimulationConfig(theta=args.theta)
    sims = run_parallel_simulation(args.ranks, particles, config,
                                   n_steps=args.steps, world=world,
                                   trace=tracer)

    write_chrome_trace(tracer, args.trace_out)
    doc = validate_chrome_trace_file(args.trace_out)
    tracer.close()  # finalises the streaming JSONL, when requested
    if args.jsonl_out:
        print(f"{args.jsonl_out}: streamed during the run "
              "(cmp against repro.obs.export.write_jsonl)")
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            fh.write(world.metrics.render())

    stats = run_statistics(sims)
    print(f"{args.trace_out}: {len(doc['traceEvents'])} events, schema OK "
          f"({args.ranks} ranks x {args.steps} steps, "
          f"{stats.n_particles_total} particles)")
    print(f"mean step {stats.mean_step.total:.6f} s, "
          f"traffic {world.traffic.total_bytes} bytes, "
          f"slowest-rank blocked recv {stats.recv_wait_max:.6f} s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
