"""Trace exporters: Chrome trace JSON, JSONL, collapsed-stack flamegraphs.

The Chrome export lays the run out one lane per rank (``pid`` 0,
``tid`` = rank, with thread-name metadata), emits spans as complete
``"X"`` events, injected faults as ``"i"`` instants and send->recv
links as ``"s"``/``"f"`` flow pairs.  Events are ordered by
``(rank, emission index)`` and serialised with sorted keys and fixed
separators, so a deterministic event stream (virtual clock) yields a
byte-identical file -- the property the determinism tests assert.

The JSONL exporter is a thin consumer of the *same* per-event
serialisation the streaming sink uses
(:func:`repro.obs.sink.encode_jsonl_line`): a buffered post-hoc export
and a :class:`~repro.obs.sink.StreamingJsonlSink` written live during
the run produce byte-identical files.

:func:`export_collapsed` folds nested spans into the collapsed-stack
format ``flamegraph.pl`` and speedscope consume (one ``a;b;c <count>``
line per unique stack, counts in integer microseconds of *self* time),
with slowest-rank and per-rank modes; ``python -m repro.obs.export``
is the file-level CLI, and ``--check`` asserts the folded totals sum
back to the span totals (the CI smoke).

``validate_chrome_trace`` checks the subset of the trace-event schema
Perfetto requires, and is run by the CI trace-smoke job on a real
2-rank trace.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from typing import Any, Iterable

from .sink import encode_jsonl_line
from .tracer import TraceEvent, Tracer

#: Event phases the exporter produces / the validator accepts.
_KNOWN_PHASES = frozenset({"X", "i", "s", "f", "M"})


def chrome_trace_events(tracer: Tracer,
                        exclude_categories: Iterable[str] = ()
                        ) -> list[dict[str, Any]]:
    """Convert a tracer's events into Chrome trace-event dicts.

    ``exclude_categories`` drops whole categories (e.g. ``("fault",)``
    to compare the logical trace across maskable fault schedules).
    Timestamps are normalised so the earliest event sits at t=0 and
    converted to microseconds (the trace-event unit).
    """
    excluded = frozenset(exclude_categories)
    events = [e for e in tracer.events() if e.cat not in excluded]
    t0 = min((e.ts for e in events), default=0.0)
    out: list[dict[str, Any]] = [{
        "args": {"name": "repro"}, "cat": "__metadata", "name": "process_name",
        "ph": "M", "pid": 0, "tid": 0, "ts": 0,
    }]
    for rank in sorted({e.rank for e in events}):
        out.append({"args": {"name": f"rank {rank}"}, "cat": "__metadata",
                    "name": "thread_name", "ph": "M", "pid": 0, "tid": rank,
                    "ts": 0})
        out.append({"args": {"sort_index": rank}, "cat": "__metadata",
                    "name": "thread_sort_index", "ph": "M", "pid": 0,
                    "tid": rank, "ts": 0})
    for e in events:
        rec: dict[str, Any] = {
            "cat": e.cat, "name": e.name, "ph": e.ph, "pid": 0,
            "tid": e.rank, "ts": (e.ts - t0) * 1e6,
        }
        if e.ph == "X":
            rec["dur"] = e.dur * 1e6
            if e.args:
                rec["args"] = e.args
        elif e.ph == "i":
            rec["s"] = "t"  # thread-scoped instant
            if e.args:
                rec["args"] = e.args
        else:  # flow endpoints
            rec["id"] = e.flow_id
            if e.ph == "f":
                rec["bp"] = "e"  # bind to the enclosing slice
        out.append(rec)
    return out


def chrome_trace_json(tracer: Tracer,
                      exclude_categories: Iterable[str] = ()) -> str:
    """Serialise to canonical (byte-stable) Chrome trace JSON."""
    doc = {"displayTimeUnit": "ms",
           "traceEvents": chrome_trace_events(tracer, exclude_categories)}
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def write_chrome_trace(tracer: Tracer, path,
                       exclude_categories: Iterable[str] = ()) -> None:
    """Write the Chrome trace JSON to ``path``."""
    with open(path, "w") as fh:
        fh.write(chrome_trace_json(tracer, exclude_categories))


def jsonl_lines(tracer: Tracer) -> list[str]:
    """One canonical JSON object per event (streaming-friendly view).

    Each line comes from :func:`repro.obs.sink.encode_jsonl_line` --
    the identical serialisation the streaming sink writes live, so the
    buffered and streaming paths cannot diverge.
    """
    return [encode_jsonl_line(e) for e in tracer.events()]


def write_jsonl(tracer: Tracer, path) -> None:
    """Write the JSONL event stream to ``path`` (byte-identical to what
    a :class:`~repro.obs.sink.StreamingJsonlSink` streams during the
    same run)."""
    with open(path, "w") as fh:
        fh.write("".join(line + "\n" for line in jsonl_lines(tracer)))


def validate_chrome_trace(doc: Any) -> None:
    """Raise :class:`ValueError` unless ``doc`` is schema-valid.

    Checks the trace-event contract Perfetto's importer relies on:
    a ``traceEvents`` list whose entries carry a known ``ph``, string
    ``name``/``cat``, integer ``pid``/``tid``, numeric ``ts`` (and
    non-negative ``dur`` for ``"X"``), dict ``args`` where present, and
    an ``id`` on every flow endpoint.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("trace must be an object with a traceEvents key")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for i, e in enumerate(events):
        ctx = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            raise ValueError(f"{ctx}: not an object")
        ph = e.get("ph")
        if ph not in _KNOWN_PHASES:
            raise ValueError(f"{ctx}: unknown ph {ph!r}")
        if not isinstance(e.get("name"), str):
            raise ValueError(f"{ctx}: name must be a string")
        if not isinstance(e.get("cat"), str):
            raise ValueError(f"{ctx}: cat must be a string")
        for field in ("pid", "tid"):
            if not isinstance(e.get(field), int):
                raise ValueError(f"{ctx}: {field} must be an integer")
        if not isinstance(e.get("ts"), (int, float)):
            raise ValueError(f"{ctx}: ts must be numeric")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{ctx}: X event needs a non-negative dur")
        if ph in ("s", "f") and not isinstance(e.get("id"), (str, int)):
            raise ValueError(f"{ctx}: flow event needs an id")
        if "args" in e and not isinstance(e["args"], dict):
            raise ValueError(f"{ctx}: args must be an object")


def validate_chrome_trace_file(path) -> dict:
    """Load ``path``, validate it, and return the parsed document."""
    with open(path) as fh:
        doc = json.load(fh)
    validate_chrome_trace(doc)
    return doc


# -- collapsed-stack (flamegraph) export ----------------------------------

#: Containment slack when deciding span nesting, in seconds.  Chrome
#: traces round-trip timestamps through microseconds, so sibling spans
#: can overlap by sub-microsecond noise.
_NEST_EPS = 5e-7


def trace_events_from_doc(doc: dict) -> list[TraceEvent]:
    """Rebuild :class:`TraceEvent` records from a Chrome trace document.

    The inverse of :func:`chrome_trace_events` up to the lost absolute
    epoch (timestamps were normalised to t=0) and the microsecond
    rounding of the trace-event format.  ``seq`` is re-assigned per rank
    in document order, which *is* emission order for files this package
    wrote.
    """
    events: list[TraceEvent] = []
    seq: dict[int, int] = defaultdict(int)
    for e in doc.get("traceEvents", ()):
        ph = e.get("ph")
        if ph == "M":
            continue
        rank = int(e.get("tid", 0))
        events.append(TraceEvent(
            rank=rank, seq=seq[rank], ph=ph, name=e.get("name", ""),
            cat=e.get("cat", ""), ts=e.get("ts", 0) / 1e6,
            dur=e.get("dur", 0) / 1e6 if ph == "X" else 0.0,
            args=e.get("args", {}) or {},
            flow_id=str(e["id"]) if ph in ("s", "f") and "id" in e else None))
        seq[rank] += 1
    return events


def _as_events(source) -> list[TraceEvent]:
    """Accept a Tracer, a Chrome trace document, or an event iterable."""
    if isinstance(source, dict):
        return trace_events_from_doc(source)
    if hasattr(source, "events"):
        return list(source.events())
    return sorted(source, key=lambda e: (e.rank, e.seq))


def fold_rank_stacks(events: Iterable[TraceEvent], rank: int
                     ) -> dict[str, float]:
    """Fold one rank's spans into ``{"a;b;c": self_seconds}``.

    Nesting is inferred from time containment: a span starting inside
    the currently open span (and ending no later) is its child.  A
    span's *self* time is its duration minus its children's durations,
    so the folded values sum exactly to the rank's top-level span total
    -- the invariant ``--check`` and the CI smoke assert.
    """
    spans = sorted((e for e in events if e.ph == "X" and e.rank == rank),
                   key=lambda e: (e.ts, -e.dur, e.seq))
    out: dict[str, float] = defaultdict(float)
    # Open-span stack: [name, end, child_seconds, dur]
    stack: list[list] = []

    def close_top() -> None:
        path = ";".join(fr[0] for fr in stack)
        name, end, child, dur = stack.pop()
        out[path] += max(dur - child, 0.0)
        if stack:
            stack[-1][2] += dur

    for e in spans:
        end = e.ts + e.dur
        # Pop spans this one does not nest inside (started after their
        # end, or extends beyond them -- partial overlap counts as
        # sibling, which only degrades attribution, never the totals).
        while stack and (e.ts >= stack[-1][1] - _NEST_EPS
                         or end > stack[-1][1] + _NEST_EPS):
            close_top()
        stack.append([e.name, end, 0.0, e.dur])
    while stack:
        close_top()
    return dict(out)


def rank_span_totals(source) -> dict[int, float]:
    """Per-rank total *top-level* span seconds (nested spans excluded).

    This is what a rank's folded stacks must sum back to; ``"slowest"``
    mode picks the argmax of it.
    """
    events = _as_events(source)
    totals: dict[int, float] = {}
    for rank in sorted({e.rank for e in events if e.ph == "X"}):
        totals[rank] = sum(fold_rank_stacks(events, rank).values())
    return totals


def collapsed_stacks(source, mode: str = "slowest",
                     rank: int | None = None) -> dict[str, float]:
    """Folded stacks in seconds, before formatting.

    ``mode="slowest"`` keeps only the rank with the largest top-level
    span total (the rank that sets the step time -- the Table II
    reduction's point of view); ``mode="per-rank"`` prefixes every
    stack with its ``rank N`` frame; an explicit ``rank=`` overrides
    both and folds just that lane.
    """
    events = _as_events(source)
    ranks = sorted({e.rank for e in events if e.ph == "X"})
    if not ranks:
        return {}
    if rank is not None:
        if rank not in ranks:
            raise ValueError(f"rank {rank} has no spans in this trace "
                             f"(ranks: {ranks})")
        return fold_rank_stacks(events, rank)
    if mode == "slowest":
        totals = {r: sum(fold_rank_stacks(events, r).values())
                  for r in ranks}
        slowest = max(totals, key=lambda r: (totals[r], -r))
        return fold_rank_stacks(events, slowest)
    if mode == "per-rank":
        out: dict[str, float] = {}
        for r in ranks:
            for path, secs in fold_rank_stacks(events, r).items():
                out[f"rank {r};{path}"] = secs
        return out
    raise ValueError(f"unknown mode {mode!r}; expected 'slowest' or "
                     "'per-rank' (or pass rank=)")


def collapsed_lines(source, mode: str = "slowest",
                    rank: int | None = None) -> list[str]:
    """Collapsed-stack lines (``stack count``; counts = self-µs).

    The output feeds straight into ``flamegraph.pl`` or speedscope.
    Lines are sorted, counts rounded once per stack, so a deterministic
    trace yields deterministic bytes.
    """
    stacks = collapsed_stacks(source, mode=mode, rank=rank)
    return [f"{path} {round(secs * 1e6)}"
            for path, secs in sorted(stacks.items())]


def export_collapsed(source, path=None, mode: str = "slowest",
                     rank: int | None = None) -> list[str]:
    """Fold ``source`` (Tracer / Chrome doc / events) to collapsed-stack
    format; write to ``path`` when given.  Returns the lines."""
    lines = collapsed_lines(source, mode=mode, rank=rank)
    if path is not None:
        with open(path, "w") as fh:
            fh.write("".join(line + "\n" for line in lines))
    return lines


def check_collapsed(source, mode: str = "slowest",
                    rank: int | None = None, tolerance: float = 1e-3
                    ) -> dict[str, float]:
    """Assert the folded output sums back to the span totals.

    Compares the collapsed-stack total (after integer-µs rounding,
    i.e. exactly what a flamegraph renders) against the top-level span
    totals of the ranks included by ``mode``/``rank``.  Raises
    :class:`ValueError` on mismatch; returns
    ``{"folded_seconds", "span_seconds", "n_stacks"}``.
    """
    events = _as_events(source)
    totals = rank_span_totals(events)
    if not totals:
        raise ValueError("trace contains no spans to fold")
    if rank is not None:
        expected = totals[rank]
    elif mode == "slowest":
        expected = max(totals.values())
    else:
        expected = sum(totals.values())
    lines = collapsed_lines(events, mode=mode, rank=rank)
    folded = sum(int(line.rsplit(" ", 1)[1]) for line in lines) / 1e6
    # Rounding once per stack bounds the error at 0.5 µs per line.
    budget = tolerance + 5e-7 * max(len(lines), 1)
    if abs(folded - expected) > budget:
        raise ValueError(
            f"collapsed stacks sum to {folded:.6f} s but top-level spans "
            f"total {expected:.6f} s (diff {folded - expected:+.6f} s, "
            f"budget {budget:.6f} s)")
    return {"folded_seconds": folded, "span_seconds": expected,
            "n_stacks": float(len(lines))}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description="Fold a Chrome trace-event file into collapsed-stack "
                    "format for flamegraph.pl / speedscope.")
    parser.add_argument("trace", help="trace JSON written by the tracer")
    parser.add_argument("--out", default="-",
                        help="output file ('-' = stdout)")
    parser.add_argument("--mode", choices=("slowest", "per-rank"),
                        default="slowest",
                        help="fold the slowest rank's lane (default) or "
                             "all lanes under 'rank N' root frames")
    parser.add_argument("--rank", type=int, default=None,
                        help="fold exactly this rank (overrides --mode)")
    parser.add_argument("--check", action="store_true",
                        help="verify the folded totals sum back to the "
                             "span totals before writing")
    args = parser.parse_args(argv)

    with open(args.trace) as fh:
        doc = json.load(fh)
    if args.check:
        summary = check_collapsed(doc, mode=args.mode, rank=args.rank)
        print(f"{args.trace}: {int(summary['n_stacks'])} stacks fold to "
              f"{summary['folded_seconds']:.6f} s "
              f"(span total {summary['span_seconds']:.6f} s)",
              file=sys.stderr)
    lines = collapsed_lines(doc, mode=args.mode, rank=args.rank)
    if args.out == "-":
        for line in lines:
            print(line)
    else:
        with open(args.out, "w") as fh:
            fh.write("".join(line + "\n" for line in lines))
        print(f"wrote {len(lines)} stacks to {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
