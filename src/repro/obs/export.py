"""Trace exporters: Chrome trace-event JSON (Perfetto) and JSONL.

The Chrome export lays the run out one lane per rank (``pid`` 0,
``tid`` = rank, with thread-name metadata), emits spans as complete
``"X"`` events, injected faults as ``"i"`` instants and send->recv
links as ``"s"``/``"f"`` flow pairs.  Events are ordered by
``(rank, emission index)`` and serialised with sorted keys and fixed
separators, so a deterministic event stream (virtual clock) yields a
byte-identical file -- the property the determinism tests assert.

``validate_chrome_trace`` checks the subset of the trace-event schema
Perfetto requires, and is run by the CI trace-smoke job on a real
2-rank trace.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from .tracer import TraceEvent, Tracer

#: Event phases the exporter produces / the validator accepts.
_KNOWN_PHASES = frozenset({"X", "i", "s", "f", "M"})


def chrome_trace_events(tracer: Tracer,
                        exclude_categories: Iterable[str] = ()
                        ) -> list[dict[str, Any]]:
    """Convert a tracer's events into Chrome trace-event dicts.

    ``exclude_categories`` drops whole categories (e.g. ``("fault",)``
    to compare the logical trace across maskable fault schedules).
    Timestamps are normalised so the earliest event sits at t=0 and
    converted to microseconds (the trace-event unit).
    """
    excluded = frozenset(exclude_categories)
    events = [e for e in tracer.events() if e.cat not in excluded]
    t0 = min((e.ts for e in events), default=0.0)
    out: list[dict[str, Any]] = [{
        "args": {"name": "repro"}, "cat": "__metadata", "name": "process_name",
        "ph": "M", "pid": 0, "tid": 0, "ts": 0,
    }]
    for rank in sorted({e.rank for e in events}):
        out.append({"args": {"name": f"rank {rank}"}, "cat": "__metadata",
                    "name": "thread_name", "ph": "M", "pid": 0, "tid": rank,
                    "ts": 0})
        out.append({"args": {"sort_index": rank}, "cat": "__metadata",
                    "name": "thread_sort_index", "ph": "M", "pid": 0,
                    "tid": rank, "ts": 0})
    for e in events:
        rec: dict[str, Any] = {
            "cat": e.cat, "name": e.name, "ph": e.ph, "pid": 0,
            "tid": e.rank, "ts": (e.ts - t0) * 1e6,
        }
        if e.ph == "X":
            rec["dur"] = e.dur * 1e6
            if e.args:
                rec["args"] = e.args
        elif e.ph == "i":
            rec["s"] = "t"  # thread-scoped instant
            if e.args:
                rec["args"] = e.args
        else:  # flow endpoints
            rec["id"] = e.flow_id
            if e.ph == "f":
                rec["bp"] = "e"  # bind to the enclosing slice
        out.append(rec)
    return out


def chrome_trace_json(tracer: Tracer,
                      exclude_categories: Iterable[str] = ()) -> str:
    """Serialise to canonical (byte-stable) Chrome trace JSON."""
    doc = {"displayTimeUnit": "ms",
           "traceEvents": chrome_trace_events(tracer, exclude_categories)}
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def write_chrome_trace(tracer: Tracer, path,
                       exclude_categories: Iterable[str] = ()) -> None:
    """Write the Chrome trace JSON to ``path``."""
    with open(path, "w") as fh:
        fh.write(chrome_trace_json(tracer, exclude_categories))


def jsonl_lines(tracer: Tracer) -> list[str]:
    """One canonical JSON object per event (streaming-friendly view)."""
    lines = []
    for e in tracer.events():
        rec: dict[str, Any] = {"rank": e.rank, "seq": e.seq, "ph": e.ph,
                               "name": e.name, "cat": e.cat, "ts": e.ts}
        if e.ph == "X":
            rec["dur"] = e.dur
        if e.args:
            rec["args"] = e.args
        if e.flow_id is not None:
            rec["flow_id"] = e.flow_id
        lines.append(json.dumps(rec, sort_keys=True, separators=(",", ":")))
    return lines


def write_jsonl(tracer: Tracer, path) -> None:
    """Write the JSONL event stream to ``path``."""
    with open(path, "w") as fh:
        fh.write("\n".join(jsonl_lines(tracer)) + "\n")


def validate_chrome_trace(doc: Any) -> None:
    """Raise :class:`ValueError` unless ``doc`` is schema-valid.

    Checks the trace-event contract Perfetto's importer relies on:
    a ``traceEvents`` list whose entries carry a known ``ph``, string
    ``name``/``cat``, integer ``pid``/``tid``, numeric ``ts`` (and
    non-negative ``dur`` for ``"X"``), dict ``args`` where present, and
    an ``id`` on every flow endpoint.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("trace must be an object with a traceEvents key")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for i, e in enumerate(events):
        ctx = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            raise ValueError(f"{ctx}: not an object")
        ph = e.get("ph")
        if ph not in _KNOWN_PHASES:
            raise ValueError(f"{ctx}: unknown ph {ph!r}")
        if not isinstance(e.get("name"), str):
            raise ValueError(f"{ctx}: name must be a string")
        if not isinstance(e.get("cat"), str):
            raise ValueError(f"{ctx}: cat must be a string")
        for field in ("pid", "tid"):
            if not isinstance(e.get(field), int):
                raise ValueError(f"{ctx}: {field} must be an integer")
        if not isinstance(e.get("ts"), (int, float)):
            raise ValueError(f"{ctx}: ts must be numeric")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{ctx}: X event needs a non-negative dur")
        if ph in ("s", "f") and not isinstance(e.get("id"), (str, int)):
            raise ValueError(f"{ctx}: flow event needs an id")
        if "args" in e and not isinstance(e["args"], dict):
            raise ValueError(f"{ctx}: args must be an object")


def validate_chrome_trace_file(path) -> dict:
    """Load ``path``, validate it, and return the parsed document."""
    with open(path) as fh:
        doc = json.load(fh)
    validate_chrome_trace(doc)
    return doc
