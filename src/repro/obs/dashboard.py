"""Live terminal dashboard: ``python -m repro.obs.dashboard``.

Tails a *running* world's observability state -- the
:class:`~repro.obs.metrics.MetricsRegistry` every subsystem books into
plus a bounded :class:`~repro.obs.sink.RingSink` of recent trace events
-- and redraws a plain-ANSI view after every step:

- last-step Table II phase timings (slowest rank, with bars),
- per-rank traffic (bytes sent/received) and blocked-recv wait, with a
  sparkline over the recv-wait histogram buckets,
- the measured-mode load-balance state (``lb_imbalance_ratio``,
  re-cut count) when the run uses ``load_balance="measured"``,
- the achieved force-kernel flop-rate of the last step (slowest rank,
  from the ring's gravity spans; falls back to the ``force_gflops``
  gauge) with its :mod:`repro.perfmodel.gpu` model efficiency,
- ring-sink drop accounting (``trace_events_dropped_total``).

No curses/rich dependency: frames are plain text, redrawn with a
clear-home escape; ``--headless`` prints frames sequentially instead
(the CI mode).  The module's ``main`` runs a small live demo
simulation; in your own driver code attach one per step::

    ring = RingSink(65536)
    dash = Dashboard(world, ring=ring)
    run_parallel_simulation(..., world=world, trace=Tracer(sink=ring),
                            on_step=lambda sim: dash.draw()
                                if sim.comm.rank == 0 else None)
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict
from typing import TextIO

from ..core.step import TABLE2_PHASES
from .report import SPAN_TO_FIELD

#: Sparkline glyphs, lowest to highest occupancy.
_SPARK = "▁▂▃▄▅▆▇█"

#: ANSI clear-screen + cursor-home.
_CLEAR = "\x1b[2J\x1b[H"


def sparkline(counts: list[int]) -> str:
    """Render bucket counts as one block glyph per bucket.

    Zero stays visually empty (``·``); nonzero counts scale linearly
    into eight block heights against the largest bucket.
    """
    peak = max(counts) if counts else 0
    if peak <= 0:
        return "·" * len(counts)
    out = []
    for c in counts:
        if c <= 0:
            out.append("·")
        else:
            idx = min(int(c / peak * len(_SPARK)), len(_SPARK) - 1)
            out.append(_SPARK[idx])
    return "".join(out)


def format_bytes(n: float) -> str:
    """Human bytes, fixed 9-char field (e.g. ``' 12.3 MB'``)."""
    for unit in ("B", "kB", "MB", "GB"):
        if abs(n) < 1000 or unit == "GB":
            return f"{n:7.1f} {unit}" if unit != "B" else f"{n:7.0f} B "
        n /= 1000.0
    return f"{n:7.1f} GB"  # pragma: no cover - loop always returns


class Dashboard:
    """Renders one world's live observability state as text frames.

    Parameters
    ----------
    world:
        The :class:`~repro.simmpi.SimWorld` under observation (its
        ``metrics`` registry is the data source).
    ring:
        Optional :class:`~repro.obs.sink.RingSink` receiving the run's
        trace events; supplies the last-step phase table.  Without it
        the phase section falls back to cumulative
        ``force_phase_seconds_total`` deltas between frames.
    out:
        Output stream (default ``sys.stdout``).
    ansi:
        Redraw in place with clear-home escapes; ``False`` appends
        frames sequentially (headless / CI mode).
    monitor:
        Optional :class:`~repro.obs.health.HealthMonitor` supplying the
        run-health panel.  Without one, a monitor is built automatically
        the first time the world carries a heartbeat board
        (``world.health``); worlds without health telemetry simply omit
        the panel.
    """

    def __init__(self, world, ring=None, out: TextIO | None = None,
                 ansi: bool = True, width: int = 72, monitor=None):
        self.world = world
        self.ring = ring
        self.out = out if out is not None else sys.stdout
        self.ansi = ansi
        self.width = width
        self.monitor = monitor
        self.frames = 0
        self._prev_force: dict[tuple[str, str], float] = {}

    # -- data extraction ---------------------------------------------------

    def _phase_rows(self) -> tuple[int | None, list[tuple[str, float]]]:
        """(last step seen, per-phase slowest-rank seconds for it)."""
        if self.ring is not None:
            events = [e for e in self.ring.events()
                      if e.ph == "X" and e.cat == "phase"
                      and e.name in SPAN_TO_FIELD and "step" in e.args]
            if not events:
                return None, []
            step = max(int(e.args["step"]) for e in events)
            per_rank: dict[str, dict[int, float]] = defaultdict(
                lambda: defaultdict(float))
            for e in events:
                if int(e.args["step"]) == step:
                    per_rank[SPAN_TO_FIELD[e.name]][e.rank] += e.dur
            rows = [(phase, max(per_rank[phase].values()))
                    for phase in TABLE2_PHASES if phase in per_rank]
            return step, rows
        # Registry fallback: delta of the cumulative per-phase counter
        # since the previous frame (an approximation of "last step").
        counter = self.world.metrics.get("force_phase_seconds_total")
        if counter is None:
            return None, []
        series = counter.series()  # {(rank, phase): seconds}
        per_phase: dict[str, float] = defaultdict(float)
        for (rank, phase), secs in series.items():
            delta = secs - self._prev_force.get((rank, phase), 0.0)
            per_phase[phase] = max(per_phase[phase], delta)
        self._prev_force = dict(series)
        return None, sorted(per_phase.items())

    def _traffic_rows(self) -> list[tuple[int, float, float]]:
        """Per-rank (rank, bytes sent, bytes received)."""
        counter = self.world.metrics.get("traffic_p2p_bytes_total")
        if counter is None:
            return []
        sent: dict[int, float] = defaultdict(float)
        recv: dict[int, float] = defaultdict(float)
        for (src, dst), nbytes in counter.series().items():
            sent[int(src)] += nbytes
            recv[int(dst)] += nbytes
        ranks = sorted(set(sent) | set(recv))
        return [(r, sent[r], recv[r]) for r in ranks]

    def _recv_wait_rows(self) -> dict[int, tuple[list[int], float]]:
        """Per-rank (histogram bucket counts, total blocked seconds)."""
        hist = self.world.metrics.get("comm_recv_wait_seconds")
        if hist is None:
            return {}
        return {int(key[0]): (counts, total)
                for key, (counts, total) in hist.series().items()}

    def _force_rate(self) -> tuple[float | None, float | None]:
        """(last-step kernel Gflop/s at the slowest rank, model eff).

        Prefers the ring's gravity spans (exact per-step tallies, so the
        model-efficiency mix is known); without a ring falls back to the
        ``force_gflops`` gauge booked by ``distributed_forces`` (latest
        pass, no mix -- efficiency is ``None`` there).
        """
        if self.ring is not None:
            events = [e for e in self.ring.events()
                      if e.ph == "X" and e.cat == "phase"
                      and e.name in ("gravity_local", "gravity_let")
                      and "step" in e.args]
            if not events:
                return None, None
            step = max(int(e.args["step"]) for e in events)
            per_rank: dict[int, float] = defaultdict(float)
            n_pp = n_pc = 0
            quadrupole = True
            for e in events:
                if int(e.args["step"]) != step:
                    continue
                per_rank[e.rank] += e.dur
                n_pp += int(e.args.get("n_pp", 0))
                n_pc += int(e.args.get("n_pc", 0))
                if "quadrupole" in e.args:
                    quadrupole = bool(e.args["quadrupole"])
            secs = max(per_rank.values())
            from ..gravity.flops import InteractionCounts
            counts = InteractionCounts(n_pp=n_pp, n_pc=n_pc,
                                       quadrupole=quadrupole)
            if secs <= 0 or counts.flops == 0:
                return None, None
            gflops = counts.flops / secs / 1e9
            from ..perfmodel.gpu import tree_kernel_rates
            model = tree_kernel_rates().aggregate_gflops(n_pp, n_pc,
                                                         quadrupole)
            return gflops, gflops / model if model > 0 else None
        gauge = self.world.metrics.get("force_gflops")
        if gauge is None:
            return None, None
        series = gauge.series()
        if not series:
            return None, None
        return max(series.values()), None

    def _health_rows(self) -> list[dict]:
        """Run-health panel rows (empty when no board is attached)."""
        if self.monitor is None:
            board = getattr(self.world, "health", None)
            if board is None:
                return []
            from .health import HealthMonitor
            self.monitor = HealthMonitor(self.world, board=board)
        return self.monitor.rows()

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        """Build one frame (no escapes -- pure text)."""
        w = self.world
        lines: list[str] = []
        step, phase_rows = self._phase_rows()
        dropped = 0
        counter = w.metrics.get("trace_events_dropped_total")
        if counter is not None:
            dropped = int(counter.total())
        head = f" repro.obs dashboard · {w.size} ranks"
        if step is not None:
            head += f" · step {step}"
        if dropped:
            head += f" · {dropped} trace events dropped"
        lines.append(head)
        lines.append("─" * self.width)

        lines.append(" Phase timings, last step (slowest rank):")
        if phase_rows:
            peak = max(secs for _, secs in phase_rows) or 1.0
            for phase, secs in phase_rows:
                bar = "█" * max(int(secs / peak * 30), 1 if secs > 0 else 0)
                lines.append(f"   {phase:18s} {secs:10.6f} s  {bar}")
        else:
            lines.append("   (no phase spans yet)")

        traffic = self._traffic_rows()
        waits = self._recv_wait_rows()
        lines.append("")
        lines.append(" Per-rank traffic and blocked-recv wait:")
        if traffic or waits:
            hist = w.metrics.get("comm_recv_wait_seconds")
            buckets = getattr(hist, "buckets", ())
            lines.append(f"   {'rank':>4s} {'sent':>10s} {'recv':>10s} "
                         f"{'wait [s]':>10s}  wait histogram "
                         f"({len(buckets)}+1 buckets)")
            ranks = sorted({r for r, _, _ in traffic} | set(waits))
            for r in ranks:
                s = next((s for rr, s, _ in traffic if rr == r), 0.0)
                v = next((v for rr, _, v in traffic if rr == r), 0.0)
                counts, wait = waits.get(r, ([], 0.0))
                lines.append(f"   {r:>4d} {format_bytes(s):>10s} "
                             f"{format_bytes(v):>10s} {wait:>10.4f}  "
                             f"{sparkline(counts)}")
        else:
            lines.append("   (no traffic yet)")

        msgs = w.metrics.get("traffic_messages_total")
        total_bytes = w.metrics.get("traffic_bytes_total")
        if msgs is not None and total_bytes is not None:
            lines.append(f"   total {format_bytes(total_bytes.total())} "
                         f"in {int(msgs.total())} messages")

        ratio = w.metrics.get("lb_imbalance_ratio")
        recuts = w.metrics.get("lb_rebalance_total")
        if ratio is not None and ratio.series():
            shown = f"{ratio.value():.3f}"
            n = int(recuts.total()) if recuts is not None else 0
            lines.append("")
            lines.append(f" Load balance: imbalance {shown} "
                         f"(slowest/mean smoothed cost), {n} re-cuts")

        gflops, eff = self._force_rate()
        if gflops is not None:
            row = f" Force rate: {gflops:.3g} Gflops (kernel, slowest rank)"
            if eff is not None:
                row += f" · {eff:.2e} of K20X-tuned model"
            lines.append("")
            lines.append(row)

        health = self._health_rows()
        if health:
            lines.append("")
            sick = sum(1 for h in health if h["state"] != "ok")
            lines.append(f" Run health ({sick} unhealthy):" if sick
                         else " Run health:")
            lines.append(f"   {'rank':>4s} {'state':<10s} {'age [s]':>9s} "
                         f"{'step':>5s} {'ops':>6s}  last phase")
            for h in health:
                age = f"{h['age']:.3f}" if h["age"] is not None else "-"
                step_s = str(h["step"]) if h["step"] is not None else "-"
                flag = "" if h["state"] == "ok" else "  <<"
                lines.append(
                    f"   {h['rank']:>4d} {h['state']:<10s} {age:>9s} "
                    f"{step_s:>5s} {h['ops']:>6d}  "
                    f"{h['phase'] or '-'}{flag}")

        lines.append("─" * self.width)
        return "\n".join(lines)

    def draw(self) -> None:
        """Render and write one frame (clear-home in ANSI mode)."""
        frame = self.render()
        if self.ansi:
            self.out.write(_CLEAR + frame + "\n")
        else:
            self.out.write(frame + "\n")
        self.out.flush()
        self.frames += 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.dashboard",
        description="Run a small parallel simulation and redraw a live "
                    "terminal dashboard of its metrics registry after "
                    "every step.")
    parser.add_argument("--ranks", type=int, default=2)
    parser.add_argument("--n", type=int, default=1000,
                        help="total particle count")
    parser.add_argument("--steps", type=int, default=4)
    parser.add_argument("--theta", type=float, default=0.75)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--ring", type=int, default=65536,
                        help="ring-sink capacity (bounded trace memory)")
    parser.add_argument("--load-balance", default="flops",
                        help="domain-cut mode (measured shows the lb row)")
    parser.add_argument("--headless", action="store_true",
                        help="print frames sequentially without ANSI "
                             "redraw (CI mode)")
    parser.add_argument("--health", action="store_true",
                        help="attach heartbeat telemetry and render the "
                             "run-health panel")
    args = parser.parse_args(argv)

    from ..config import SimulationConfig
    from ..core.parallel_simulation import run_parallel_simulation
    from ..ics import plummer_model
    from ..simmpi import SimWorld
    from .sink import RingSink
    from .tracer import Tracer

    world = SimWorld(args.ranks)
    ring = RingSink(args.ring)
    tracer = Tracer(sink=ring)
    board = None
    if args.health:
        from .health import HeartbeatBoard
        board = HeartbeatBoard(args.ranks)
        world.attach_health(board)
    dash = Dashboard(world, ring=ring, ansi=not args.headless)

    def on_step(sim) -> None:
        if sim.comm.rank == 0:
            dash.draw()

    particles = plummer_model(args.n, seed=args.seed)
    config = SimulationConfig(theta=args.theta)
    run_parallel_simulation(args.ranks, particles, config,
                            n_steps=args.steps, world=world, trace=tracer,
                            load_balance=args.load_balance,
                            on_step=on_step, health=board)
    if dash.frames == 0:
        dash.draw()
    print(f"dashboard: {dash.frames} frames, ring retained "
          f"{len(ring)} events, dropped {ring.dropped}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
