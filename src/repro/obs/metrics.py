"""Labelled counters, gauges and histograms with Prometheus export.

One :class:`MetricsRegistry` per :class:`~repro.simmpi.SimWorld` absorbs
the accounting that previously lived in three silos (``simmpi.traffic``
per-phase byte counts, blocked-recv wait time, ``faults.FaultStats``):
every producer registers its series here, and
:meth:`MetricsRegistry.render` emits the whole lot in the Prometheus
text exposition format for scraping or diffing.

Registration is get-or-create and idempotent: asking twice for the same
name returns the same metric object, so independent subsystems can
share series without plumbing references around.  Re-registering with a
different type or label set is an error (it would silently fork the
series).
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping

#: Default histogram bucket upper bounds (seconds-flavoured).
DEFAULT_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)


def _label_key(labelnames: tuple[str, ...], labels: Mapping[str, object]) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared {sorted(labelnames)}")
    return tuple(str(labels[name]) for name in labelnames)


class Metric:
    """Base class: one named family of labelled series."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Iterable[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, object]) -> tuple[str, ...]:
        return _label_key(self.labelnames, labels)

    def _render_labels(self, key: tuple[str, ...]) -> str:
        if not self.labelnames:
            return ""
        pairs = ",".join(f'{n}="{v}"' for n, v in zip(self.labelnames, key))
        return "{" + pairs + "}"

    def render(self) -> list[str]:
        raise NotImplementedError

    def snapshot(self) -> dict:
        """Picklable state of every labelled series (for cross-process
        merging; see :meth:`MetricsRegistry.snapshot`)."""
        raise NotImplementedError

    def merge(self, data: dict) -> None:
        """Fold a :meth:`snapshot` from another registry into this
        metric (counters/histograms add, gauges take the incoming
        value per label set)."""
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing value per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: Iterable[str] = ()):
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current value of one labelled series (0 if never touched)."""
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(self._values.values())

    def series(self) -> dict[tuple[str, ...], float]:
        """Snapshot of {label-values tuple: value}."""
        with self._lock:
            return dict(self._values)

    def render(self) -> list[str]:
        with self._lock:
            return [f"{self.name}{self._render_labels(k)} {v:g}"
                    for k, v in sorted(self._values.items())]

    def snapshot(self) -> dict:
        return self.series()

    def merge(self, data: dict) -> None:
        with self._lock:
            for key, v in data.items():
                self._values[key] = self._values.get(key, 0.0) + v


class Gauge(Counter):
    """A value that can go either way (set/inc/dec)."""

    kind = "gauge"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._values[self._key(labels)] = float(value)

    def merge(self, data: dict) -> None:
        # Gauges are last-write-wins per label set: worker registries
        # label gauge series by rank, so incoming values simply land.
        with self._lock:
            self._values.update(data)


class Histogram(Metric):
    """Cumulative-bucket histogram (Prometheus convention)."""

    kind = "histogram"

    def __init__(self, name: str, help: str, labelnames: Iterable[str] = (),
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        # per label set: ([per-bucket counts..., +Inf count], sum)
        self._values: dict[tuple[str, ...], tuple[list[int], float]] = {}

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation."""
        key = self._key(labels)
        with self._lock:
            counts, total = self._values.get(
                key, ([0] * (len(self.buckets) + 1), 0.0))
            for i, ub in enumerate(self.buckets):
                if value <= ub:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
            self._values[key] = (counts, total + value)

    def count(self, **labels: object) -> int:
        """Number of observations for one labelled series."""
        with self._lock:
            entry = self._values.get(self._key(labels))
            return sum(entry[0]) if entry else 0

    def sum(self, **labels: object) -> float:
        """Sum of observations for one labelled series."""
        with self._lock:
            entry = self._values.get(self._key(labels))
            return entry[1] if entry else 0.0

    def series(self) -> dict[tuple[str, ...], tuple[list[int], float]]:
        """Snapshot of ``{label-values: (per-bucket counts, sum)}``.

        Counts are per bucket (not cumulative), with the final entry
        the +Inf overflow -- the raw shape a live dashboard renders.
        """
        with self._lock:
            return {k: (list(counts), total)
                    for k, (counts, total) in self._values.items()}

    def render(self) -> list[str]:
        out = []
        with self._lock:
            for key, (counts, total) in sorted(self._values.items()):
                cum = 0
                for ub, c in zip(self.buckets, counts):
                    cum += c
                    k = key + (f"{ub:g}",)
                    pairs = ",".join(
                        f'{n}="{v}"' for n, v in
                        zip(self.labelnames + ("le",), k))
                    out.append(f"{self.name}_bucket{{{pairs}}} {cum}")
                cum += counts[-1]
                inf_key = key + ("+Inf",)
                pairs = ",".join(f'{n}="{v}"' for n, v in
                                 zip(self.labelnames + ("le",), inf_key))
                out.append(f"{self.name}_bucket{{{pairs}}} {cum}")
                out.append(f"{self.name}_sum{self._render_labels(key)} {total:g}")
                out.append(f"{self.name}_count{self._render_labels(key)} {cum}")
        return out

    def snapshot(self) -> dict:
        return self.series()

    def merge(self, data: dict) -> None:
        with self._lock:
            for key, (counts, total) in data.items():
                mine, msum = self._values.get(
                    key, ([0] * (len(self.buckets) + 1), 0.0))
                if len(counts) != len(mine):
                    raise ValueError(
                        f"histogram {self.name!r}: bucket mismatch in merge")
                merged = [a + b for a, b in zip(mine, counts)]
                self._values[key] = (merged, msum + total)


class MetricsRegistry:
    """Thread-safe, get-or-create home for a run's metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: Iterable[str], **kwargs) -> Metric:
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}")
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labelnames: Iterable[str] = ()) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Iterable[str] = ()) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        """Get or create a :class:`Histogram`."""
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    def get(self, name: str) -> Metric | None:
        """Look up a metric by name (None when absent)."""
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict:
        """Picklable dump of every metric: ``{name: (kind, help,
        labelnames, extra, data)}``.  ``extra`` carries type-specific
        construction state (histogram buckets).  The process transport
        ships one of these per worker back to the parent world."""
        with self._lock:
            metrics = list(self._metrics.values())
        out = {}
        for m in metrics:
            extra = {"buckets": m.buckets} if isinstance(m, Histogram) else {}
            out[m.name] = (m.kind, m.help, m.labelnames, extra, m.snapshot())
        return out

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Counters and histograms accumulate; gauges take the incoming
        per-label values.  Metrics absent here are created with the
        snapshot's declaration.
        """
        kinds = {"counter": self.counter, "gauge": self.gauge,
                 "histogram": self.histogram}
        for name, (kind, help, labelnames, extra, data) in snap.items():
            factory = kinds.get(kind)
            if factory is None:
                raise ValueError(f"cannot merge metric kind {kind!r}")
            kwargs = {"buckets": extra["buckets"]} if kind == "histogram" \
                else {}
            factory(name, help, labelnames, **kwargs).merge(data)

    def render(self) -> str:
        """Prometheus text exposition format for every metric."""
        with self._lock:
            metrics = [self._metrics[n] for n in sorted(self._metrics)]
        lines = []
        for m in metrics:
            lines.append(f"# HELP {m.name} {m.help}")
            lines.append(f"# TYPE {m.name} {m.kind}")
            lines.extend(m.render())
        return "\n".join(lines) + "\n"
