"""repro.obs: unified observability -- span tracing, metrics, reporting.

The subsystem every other layer emits into (docs/OBSERVABILITY.md):

- :mod:`repro.obs.clock`   -- pluggable span clocks (wall / deterministic
  virtual).
- :mod:`repro.obs.tracer`  -- nestable per-rank span tracer with
  attachable counters; :data:`NULL_TRACER` is the zero-cost disabled
  path.
- :mod:`repro.obs.metrics` -- labelled counters/gauges/histograms with
  Prometheus text export; one registry per
  :class:`~repro.simmpi.SimWorld` absorbs the traffic, recv-wait and
  fault accounting.
- :mod:`repro.obs.export`  -- Chrome trace-event JSON (one lane per
  rank, send->recv flows; loads in Perfetto) and JSONL.
- :mod:`repro.obs.report`  -- ``python -m repro.obs.report trace.json``:
  Table II phase breakdown, overlap/hiding summary, per-rank imbalance,
  reconstructed from the trace alone.
- :mod:`repro.obs.smoke`   -- ``python -m repro.obs.smoke``: a small
  traced parallel run for CI and ``make trace``.
"""

from .clock import VirtualClock, WallClock
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import NULL_TRACER, NullTracer, TraceEvent, Tracer
from .export import (
    chrome_trace_events,
    chrome_trace_json,
    jsonl_lines,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "WallClock",
    "VirtualClock",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "chrome_trace_events",
    "chrome_trace_json",
    "jsonl_lines",
    "write_chrome_trace",
    "write_jsonl",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
]
