"""repro.obs: unified observability -- span tracing, metrics, reporting.

The subsystem every other layer emits into (docs/OBSERVABILITY.md):

- :mod:`repro.obs.clock`   -- pluggable span clocks (wall / deterministic
  virtual).
- :mod:`repro.obs.tracer`  -- nestable per-rank span tracer with
  attachable counters; :data:`NULL_TRACER` is the zero-cost disabled
  path.
- :mod:`repro.obs.sink`    -- streaming event sinks: unbounded buffer,
  bounded ring with drop accounting, incremental JSONL file writer,
  tee/null -- O(1) tracer memory on long runs.
- :mod:`repro.obs.metrics` -- labelled counters/gauges/histograms with
  Prometheus text export; one registry per
  :class:`~repro.simmpi.SimWorld` absorbs the traffic, recv-wait and
  fault accounting.
- :mod:`repro.obs.export`  -- Chrome trace-event JSON (one lane per
  rank, send->recv flows; loads in Perfetto), JSONL, and
  collapsed-stack flamegraph folding
  (``python -m repro.obs.export trace.json``).
- :mod:`repro.obs.report`  -- ``python -m repro.obs.report trace.json``:
  Table II phase breakdown, overlap/hiding summary, per-rank imbalance,
  reconstructed from the trace alone; two traces diff phase-by-phase
  with a regression-threshold exit code.
- :mod:`repro.obs.dashboard` -- ``python -m repro.obs.dashboard``: live
  terminal view over a running world's registry + ring sink.
- :mod:`repro.obs.perf`    -- achieved flop-rate telemetry (the paper's
  Sec. VI-A accounting): per-rank/per-phase Gflop/s from the trace's
  interaction tallies, efficiency against the calibrated
  :mod:`repro.perfmodel.gpu` rates, sustained-Pflops summary.
- :mod:`repro.obs.bench`   -- ``python -m repro.obs.bench``: benchmark
  registry/runner with one canonical :class:`BenchResult` schema, an
  append-only ``benchmarks/history/`` JSONL store, and regression
  verdicts (deterministic counts gate, wall-clock advisory).
- :mod:`repro.obs.smoke`   -- ``python -m repro.obs.smoke``: a small
  traced parallel run for CI and ``make trace``.
- :mod:`repro.obs.health`  -- run-health telemetry: per-rank heartbeats,
  the stall/straggler/dead :class:`HealthMonitor`, and the
  :class:`FlightRecorder` post-mortem bundle writer.
- :mod:`repro.obs.postmortem` -- ``python -m repro.obs.postmortem``:
  bundle analyzer (last-known phases, blocked-recv wait-for graph with
  cycle detection, straggler ranking, verdict with CI assertions).
"""

from .clock import VirtualClock, WallClock
from .health import (
    HEALTH_STATES,
    FlightRecorder,
    HeartbeatBoard,
    HealthMonitor,
    robust_zscores,
    write_bundle,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .sink import (
    NULL_SINK,
    BufferSink,
    NullSink,
    RingSink,
    Sink,
    StreamingJsonlSink,
    TeeSink,
    TraceDropWarning,
    coerce_sink,
    encode_jsonl_line,
)
from .tracer import NULL_TRACER, NullTracer, TraceEvent, Tracer

#: Names resolved lazily from .export (PEP 562): importing them eagerly
#: would make ``python -m repro.obs.export`` warn about the module
#: already being in sys.modules when runpy re-executes it as __main__.
_EXPORT_NAMES = frozenset({
    "chrome_trace_events",
    "chrome_trace_json",
    "collapsed_lines",
    "export_collapsed",
    "jsonl_lines",
    "trace_events_from_doc",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "write_chrome_trace",
    "write_jsonl",
})


#: Lazily resolved from .perf (pulls in report/perfmodel machinery).
_PERF_NAMES = frozenset({
    "PAPER_PFLOPS",
    "book_force_rate",
    "perf_from_trace",
    "perf_lines",
})

#: Lazily resolved from .bench (same runpy/__main__ consideration as
#: .export, and keeps the registry import side-effect free here).
_BENCH_NAMES = frozenset({
    "BenchError",
    "BenchResult",
    "BenchSpec",
    "HistoryStore",
    "compare_results",
    "history_verdict",
    "host_fingerprint",
    "load_registry",
    "register_bench",
    "validate_bench_result",
})

#: Lazily resolved from .postmortem (the analyzer is also a
#: ``python -m`` entry point; same runpy/__main__ consideration).
_POSTMORTEM_NAMES = frozenset({
    "analyze",
    "load_bundle",
    "parse_metrics_text",
    "render_report",
    "straggler_ranking",
    "wait_graph",
})


def __getattr__(name: str):
    if name in _EXPORT_NAMES:
        from . import export
        return getattr(export, name)
    if name in _PERF_NAMES:
        from . import perf
        return getattr(perf, name)
    if name in _BENCH_NAMES:
        from . import bench
        return getattr(bench, name)
    if name in _POSTMORTEM_NAMES:
        from . import postmortem
        return getattr(postmortem, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "WallClock",
    "VirtualClock",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
    "Sink",
    "BufferSink",
    "RingSink",
    "StreamingJsonlSink",
    "TeeSink",
    "NullSink",
    "NULL_SINK",
    "TraceDropWarning",
    "coerce_sink",
    "encode_jsonl_line",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "chrome_trace_events",
    "chrome_trace_json",
    "collapsed_lines",
    "export_collapsed",
    "jsonl_lines",
    "trace_events_from_doc",
    "write_chrome_trace",
    "write_jsonl",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "PAPER_PFLOPS",
    "perf_from_trace",
    "perf_lines",
    "book_force_rate",
    "BenchError",
    "BenchResult",
    "BenchSpec",
    "HistoryStore",
    "compare_results",
    "history_verdict",
    "host_fingerprint",
    "load_registry",
    "register_bench",
    "validate_bench_result",
    "HEALTH_STATES",
    "HeartbeatBoard",
    "HealthMonitor",
    "FlightRecorder",
    "robust_zscores",
    "write_bundle",
    "analyze",
    "load_bundle",
    "parse_metrics_text",
    "render_report",
    "straggler_ranking",
    "wait_graph",
]
