"""Nestable per-rank span tracing with a pluggable clock.

A :class:`Tracer` collects :class:`TraceEvent` records -- spans
(``ph="X"``), instants (``ph="i"``) and flow endpoints (``ph="s"`` /
``ph="f"``, linking a send to its matching recv) -- tagged with the
emitting rank.  Every event carries a per-rank sequence number assigned
under the tracer lock, so exports can order events deterministically
(rank lane, then emission order) independent of thread scheduling.

Events are pushed, as they are emitted, into one or more pluggable
:class:`~repro.obs.sink.Sink` objects (``sink=``): the default
:class:`~repro.obs.sink.BufferSink` reproduces the classic buffer-all
behaviour, a :class:`~repro.obs.sink.RingSink` caps memory with drop
accounting, and a :class:`~repro.obs.sink.StreamingJsonlSink` writes
the run to disk incrementally -- O(1) tracer memory however long the
run (docs/OBSERVABILITY.md section 8).

The disabled path is :data:`NULL_TRACER`: ``enabled`` is False, ``span``
returns a shared no-op context manager and every recording method is a
single early-returning call, so instrumented code costs nothing when
tracing is off.  Hot kernels are never instrumented at all -- spans sit
at phase/message granularity.

Usage::

    tracer = Tracer()                       # wall clock
    with tracer.span("gravity_let", rank=2, step=7) as sp:
        ...walk a LET...
        sp.add(n_pp=dpp, n_cells=42)        # attach counters

    tracer = Tracer(clock=VirtualClock())   # deterministic test traces
    tracer = Tracer(sink="run.jsonl")       # stream to disk as it runs
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import defaultdict
from typing import Any

from .clock import VirtualClock, WallClock
from .sink import BufferSink, Sink, TeeSink, coerce_sink


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One trace record in Chrome trace-event terms."""

    rank: int
    seq: int                  # per-rank emission index (export sort key)
    ph: str                   # "X" span, "i" instant, "s"/"f" flow
    name: str
    cat: str
    ts: float                 # seconds (clock domain of the tracer)
    dur: float = 0.0          # seconds; spans only
    args: dict[str, Any] = dataclasses.field(default_factory=dict)
    flow_id: str | None = None


class _Span:
    """Context manager recording one span on exit."""

    __slots__ = ("_tracer", "name", "rank", "cat", "args", "t0", "t1")

    def __init__(self, tracer: "Tracer", name: str, rank: int, cat: str,
                 args: dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.rank = rank
        self.cat = cat
        self.args = args
        self.t0 = 0.0
        self.t1 = 0.0

    def add(self, **counters: Any) -> None:
        """Attach/accumulate counters (flops, bytes, ...) onto the span."""
        for k, v in counters.items():
            if k in self.args and isinstance(v, (int, float)) \
                    and not isinstance(v, bool):
                self.args[k] = self.args[k] + v
            else:
                self.args[k] = v

    @property
    def duration(self) -> float:
        """Span length in clock seconds (valid after exit)."""
        return self.t1 - self.t0

    def __enter__(self) -> "_Span":
        self.t0 = self._tracer.clock.now(self.rank)
        return self

    def __exit__(self, *exc) -> None:
        self.t1 = self._tracer.clock.now(self.rank)
        self._tracer._emit(TraceEvent(
            rank=self.rank, seq=self._tracer._next_seq(self.rank), ph="X",
            name=self.name, cat=self.cat, ts=self.t0,
            dur=self.t1 - self.t0, args=self.args))


class _NullSpan:
    """Shared do-nothing span for the disabled tracer."""

    __slots__ = ()
    t0 = 0.0
    t1 = 0.0
    duration = 0.0

    def add(self, **counters: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a no-op fast path."""

    enabled = False
    deterministic = False
    clock = WallClock()

    def now(self, rank: int = 0) -> float:
        return time.perf_counter()

    def span(self, name: str, rank: int = 0, cat: str = "phase",
             **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def record(self, name: str, rank: int, t0: float, t1: float,
               cat: str = "phase", **attrs: Any) -> None:
        pass

    def instant(self, name: str, rank: int = 0, ts: float | None = None,
                cat: str = "mark", **attrs: Any) -> None:
        pass

    def flow(self, ph: str, flow_id: str, rank: int, ts: float,
             name: str = "msg", cat: str = "comm") -> None:
        pass

    def events(self) -> list[TraceEvent]:
        return []

    def bind_metrics(self, registry) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: The process-wide disabled tracer.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects spans/instants/flows from every rank of a run.

    Parameters
    ----------
    clock:
        A :class:`~repro.obs.clock.WallClock` (default) or
        :class:`~repro.obs.clock.VirtualClock` for deterministic traces.
    sink:
        Where emitted events go: a :class:`~repro.obs.sink.Sink`, a
        sink *spec* accepted by :func:`~repro.obs.sink.coerce_sink`
        (path -> streaming JSONL, int -> ring), or a list of either
        (tee).  Default: one unbounded
        :class:`~repro.obs.sink.BufferSink` (the classic post-hoc
        export path).
    """

    enabled = True

    def __init__(self, clock=None, sink=None):
        self.clock = clock if clock is not None else WallClock()
        self._lock = threading.Lock()
        self._seq: dict[int, int] = defaultdict(int)
        if sink is None:
            self._sinks: list[Sink] = [BufferSink()]
        else:
            coerced = coerce_sink(sink)
            self._sinks = list(coerced.sinks) \
                if isinstance(coerced, TeeSink) else [coerced]

    @property
    def deterministic(self) -> bool:
        """True when the clock makes traces run-to-run reproducible."""
        return getattr(self.clock, "deterministic", False)

    @property
    def sinks(self) -> tuple[Sink, ...]:
        """The sinks receiving this tracer's events."""
        with self._lock:
            return tuple(self._sinks)

    def add_sink(self, sink) -> Sink:
        """Attach an additional sink (spec coerced); returns it."""
        s = coerce_sink(sink)
        with self._lock:
            self._sinks.append(s)
        return s

    def bind_metrics(self, registry) -> None:
        """Give every sink a registry for its accounting (e.g. the ring
        sink's ``trace_events_dropped_total``).  The SPMD runtime calls
        this from ``SimWorld.attach_tracer``."""
        for s in self.sinks:
            s.bind_metrics(registry)

    def now(self, rank: int = 0) -> float:
        """This rank's clock time (advances a virtual clock)."""
        return self.clock.now(rank)

    def _next_seq(self, rank: int) -> int:
        with self._lock:
            s = self._seq[rank]
            self._seq[rank] = s + 1
            return s

    def _emit(self, event: TraceEvent) -> None:
        with self._lock:
            for s in self._sinks:
                s.emit(event)

    # -- producer API ------------------------------------------------------

    def span(self, name: str, rank: int = 0, cat: str = "phase",
             **attrs: Any) -> _Span:
        """Context manager timing one nested span on ``rank``'s lane."""
        return _Span(self, name, rank, cat, dict(attrs))

    def record(self, name: str, rank: int, t0: float, t1: float,
               cat: str = "phase", **attrs: Any) -> None:
        """Record a span post-hoc from caller-supplied clock timestamps.

        Drivers that also feed :class:`~repro.core.step.StepBreakdown`
        use this so the trace and the breakdown share one measurement.
        """
        self._emit(TraceEvent(rank=rank, seq=self._next_seq(rank), ph="X",
                              name=name, cat=cat, ts=t0, dur=t1 - t0,
                              args=attrs))

    def instant(self, name: str, rank: int = 0, ts: float | None = None,
                cat: str = "mark", **attrs: Any) -> None:
        """Record a point event.  Passing an explicit ``ts`` (e.g. from
        ``clock.peek``) leaves the rank's logical clock untouched --
        fault injections use that so they never shift the timeline."""
        if ts is None:
            ts = self.clock.now(rank)
        self._emit(TraceEvent(rank=rank, seq=self._next_seq(rank), ph="i",
                              name=name, cat=cat, ts=ts, args=attrs))

    def flow(self, ph: str, flow_id: str, rank: int, ts: float,
             name: str = "msg", cat: str = "comm") -> None:
        """Record one flow endpoint: ``ph="s"`` at the send site,
        ``ph="f"`` at the matching recv (same ``flow_id``)."""
        if ph not in ("s", "f"):
            raise ValueError(f"flow ph must be 's' or 'f', got {ph!r}")
        self._emit(TraceEvent(rank=rank, seq=self._next_seq(rank), ph=ph,
                              name=name, cat=cat, ts=ts, flow_id=flow_id))

    # -- consumer API ------------------------------------------------------

    def events(self) -> list[TraceEvent]:
        """Retained events ordered by (rank, emission index).

        Comes from the first retaining sink: everything for the default
        :class:`~repro.obs.sink.BufferSink`, the newest tail for a
        :class:`~repro.obs.sink.RingSink`, and ``[]`` for a purely
        streaming tracer (whose events live on disk -- that is the
        O(1)-memory point).
        """
        for s in self.sinks:
            if s.retains:
                return s.events()
        return []

    def ranks(self) -> list[int]:
        """Ranks that emitted at least one retained event."""
        return sorted({e.rank for e in self.events()})

    def clear(self) -> None:
        """Drop retained events (sequence numbers keep counting)."""
        for s in self.sinks:
            s.clear()

    def flush(self) -> None:
        """Flush every sink (streaming sinks push buffers to disk)."""
        for s in self.sinks:
            s.flush()

    def close(self) -> None:
        """Close every sink; streaming JSONL files are finalised here."""
        for s in self.sinks:
            s.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
