"""Achieved flop-rate telemetry: the paper's Sec. VI-A accounting.

The paper's headline number -- 24.77 Pflops sustained -- is *derived*,
not sampled from hardware counters: measured interaction counts times
the fixed per-interaction flop costs (23 per p-p, 65 per quadrupole
p-c), divided by wall-clock time.  This module reconstructs exactly
that pipeline from a Chrome trace alone:

- **per-rank / per-phase achieved rate** -- the ``gravity_local`` and
  ``gravity_let`` spans already carry their exact ``n_pp``/``n_pc``
  tallies, so flops divided by span seconds is the achieved Gflop/s of
  each rank's force kernels;
- **per-step timeline** -- machine-wide flops over the slowest rank's
  kernel seconds (the step finishes when the slowest rank does), plus
  the application-level rate over the whole-step time;
- **model efficiency** -- the achieved rate over the calibrated
  :mod:`repro.perfmodel.gpu` sustained-rate prediction at the same
  p-p/p-c mix.  This is our stand-in for the paper's %-of-peak: the
  model *is* the paper's hardware, so the ratio says how far this
  reproduction sits from the machine it models;
- **sustained summary** -- total flops over the run's slowest-rank
  makespan, expressed in Gflop/s, Pflop/s and as a fraction of the
  paper's 24.77 Pflops.

Everything is a pure function of the trace bytes: a byte-identical
virtual-clock trace yields a byte-identical performance report, across
runs and across SimMPI transports.

The only live (non-trace) piece is :func:`book_force_rate`, which
gauges the latest force pass's achieved rate into the metrics registry
at phase granularity -- one gauge write per force computation, never
per interaction, so it rides the same cost budget as the rest of the
always-on metrics (measured in ``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from ..gravity.flops import FLOPS_PER_PC, FLOPS_PER_PC_MONOPOLE, FLOPS_PER_PP

#: The paper's sustained application rate on 18600 GPUs (Pflops).
PAPER_PFLOPS = 24.77

#: The force-kernel phases whose spans carry interaction tallies.
GRAVITY_PHASES = ("gravity_local", "gravity_let")


def _rate_gflops(flops: float, seconds: float) -> float | None:
    """flops/seconds in Gflop/s; ``None`` when no time was spent."""
    if seconds <= 0.0:
        return None
    return flops / seconds / 1.0e9


def perf_from_trace(doc: dict, variant: str = "tuned") -> dict[str, Any] | None:
    """Sec. VI-A performance accounting reconstructed from one trace.

    Returns ``None`` when the trace carries no interaction tallies on
    its gravity spans (untraced or foreign traces) so callers can omit
    the section gracefully.  ``variant`` selects the
    :func:`~repro.perfmodel.gpu.tree_kernel_rates` kernel variant the
    efficiency ratio is computed against.
    """
    from .report import SPAN_TO_FIELD

    # (rank, phase) -> [seconds, n_pp, n_pc]
    rank_phase: dict[tuple[int, str], list] = {}
    # backend name -> [seconds, n_pp, n_pc]; spans without a ``backend``
    # attribute are the numpy default (non-default backends stamp it).
    backend_acc: dict[str, list] = {}
    # step -> rank -> seconds (gravity phases / all Table II phases)
    step_gravity: dict[int, dict[int, float]] = defaultdict(
        lambda: defaultdict(float))
    step_total: dict[int, dict[int, float]] = defaultdict(
        lambda: defaultdict(float))
    step_counts: dict[int, list] = defaultdict(lambda: [0, 0])
    quadrupole = True
    saw_counts = False

    for e in doc.get("traceEvents", ()):
        if e.get("ph") != "X" or e.get("cat") != "phase":
            continue
        name = e.get("name")
        if name not in SPAN_TO_FIELD:
            continue
        args = e.get("args", {})
        rank = int(e.get("tid", 0))
        step = int(args.get("step", 0))
        dur = e["dur"] / 1e6
        step_total[step][rank] += dur
        if name not in GRAVITY_PHASES:
            continue
        rec = rank_phase.setdefault((rank, name), [0.0, 0, 0])
        rec[0] += dur
        rec[1] += int(args.get("n_pp", 0))
        rec[2] += int(args.get("n_pc", 0))
        if "n_pp" in args or "n_pc" in args:
            saw_counts = True
        if "quadrupole" in args:
            quadrupole = bool(args["quadrupole"])
        step_gravity[step][rank] += dur
        c = step_counts[step]
        c[0] += int(args.get("n_pp", 0))
        c[1] += int(args.get("n_pc", 0))
        brec = backend_acc.setdefault(str(args.get("backend", "numpy")),
                                      [0.0, 0, 0])
        brec[0] += dur
        brec[1] += int(args.get("n_pp", 0))
        brec[2] += int(args.get("n_pc", 0))

    if not saw_counts:
        return None

    per_pc = FLOPS_PER_PC if quadrupole else FLOPS_PER_PC_MONOPOLE

    def flops_of(n_pp: int, n_pc: int) -> int:
        return FLOPS_PER_PP * n_pp + per_pc * n_pc

    from ..perfmodel.gpu import tree_kernel_rates
    rates = tree_kernel_rates(variant=variant)

    def model_gflops(n_pp: int, n_pc: int) -> float | None:
        if n_pp + n_pc <= 0:
            return None
        return rates.aggregate_gflops(n_pp, n_pc, quadrupole)

    def efficiency(achieved: float | None, model: float | None
                   ) -> float | None:
        if achieved is None or not model:
            return None
        return achieved / model

    # -- per-rank, per-phase achieved rates -------------------------------
    per_rank: dict[str, dict[str, Any]] = {}
    for rank in sorted({r for r, _ in rank_phase}):
        entry: dict[str, Any] = {}
        tot_sec, tot_pp, tot_pc = 0.0, 0, 0
        for phase in GRAVITY_PHASES:
            sec, n_pp, n_pc = rank_phase.get((rank, phase), (0.0, 0, 0))
            fl = flops_of(n_pp, n_pc)
            entry[phase] = {"seconds": sec, "n_pp": n_pp, "n_pc": n_pc,
                            "flops": fl, "gflops": _rate_gflops(fl, sec)}
            tot_sec += sec
            tot_pp += n_pp
            tot_pc += n_pc
        fl = flops_of(tot_pp, tot_pc)
        achieved = _rate_gflops(fl, tot_sec)
        entry["combined"] = {"seconds": tot_sec, "n_pp": tot_pp,
                             "n_pc": tot_pc, "flops": fl,
                             "gflops": achieved}
        entry["model_efficiency"] = efficiency(
            achieved, model_gflops(tot_pp, tot_pc))
        per_rank[str(rank)] = entry

    # -- per-step timeline (slowest-rank reduction, as in Table II) -------
    timeline: list[dict[str, Any]] = []
    total_flops = 0
    kernel_seconds = 0.0
    wall_seconds = 0.0
    n_pp_total = n_pc_total = 0
    for step in sorted(step_total):
        n_pp, n_pc = step_counts.get(step, (0, 0))
        fl = flops_of(n_pp, n_pc)
        ksec = max(step_gravity[step].values()) if step_gravity.get(step) \
            else 0.0
        tsec = max(step_total[step].values())
        timeline.append({
            "step": step, "n_pp": n_pp, "n_pc": n_pc, "flops": fl,
            "kernel_seconds": ksec, "step_seconds": tsec,
            "kernel_gflops": _rate_gflops(fl, ksec),
            "application_gflops": _rate_gflops(fl, tsec),
        })
        total_flops += fl
        kernel_seconds += ksec
        wall_seconds += tsec
        n_pp_total += n_pp
        n_pc_total += n_pc

    # -- per-backend achieved rates (all ranks, both gravity phases) ------
    backends: dict[str, dict[str, Any]] = {}
    for name in sorted(backend_acc):
        sec, n_pp, n_pc = backend_acc[name]
        fl = flops_of(n_pp, n_pc)
        backends[name] = {"seconds": sec, "n_pp": n_pp, "n_pc": n_pc,
                          "flops": fl, "gflops": _rate_gflops(fl, sec)}

    # -- sustained rates and model efficiency -----------------------------
    kernel_gflops = _rate_gflops(total_flops, kernel_seconds)
    application_gflops = _rate_gflops(total_flops, wall_seconds)
    mix = model_gflops(n_pp_total, n_pc_total)
    return {
        "counts": {"n_pp": n_pp_total, "n_pc": n_pc_total,
                   "quadrupole": quadrupole, "flops": total_flops,
                   "flops_per_pp": FLOPS_PER_PP, "flops_per_pc": per_pc},
        "per_rank": per_rank,
        "backends": backends,
        "timeline": timeline,
        "model": {"variant": variant, "rpp_gflops": rates.rpp_gflops,
                  "rpc_gflops": rates.rpc_gflops, "mix_gflops": mix},
        "sustained": {
            "kernel_seconds": kernel_seconds,
            "wall_seconds": wall_seconds,
            "kernel_gflops": kernel_gflops,
            "application_gflops": application_gflops,
            "application_pflops": None if application_gflops is None
            else application_gflops / 1.0e6,
            "fraction_of_paper": None if application_gflops is None
            else application_gflops / (PAPER_PFLOPS * 1.0e6),
        },
        "efficiency": {"kernel": efficiency(kernel_gflops, mix),
                       "application": efficiency(application_gflops, mix)},
    }


def _fmt_rate(gflops: float | None) -> str:
    return f"{gflops:11.4g}" if gflops is not None else f"{'--':>11s}"


def _fmt_eff(eff: float | None) -> str:
    return f"{eff:10.3e}" if eff is not None else f"{'--':>10s}"


def perf_lines(perf: dict[str, Any]) -> list[str]:
    """Render the "Performance" report section from a perf summary."""
    c = perf["counts"]
    s = perf["sustained"]
    m = perf["model"]
    e = perf["efficiency"]
    lines = ["Performance (Sec. VI-A: counted interactions x flop costs "
             "/ wall time):",
             f"  interactions {c['n_pp']} pp x {c['flops_per_pp']} flops"
             f" + {c['n_pc']} pc x {c['flops_per_pc']} flops"
             f" = {c['flops']} flops"
             f" ({'quadrupole' if c['quadrupole'] else 'monopole'})",
             f"  kernel rate      {_fmt_rate(s['kernel_gflops'])} Gflops"
             f" over {s['kernel_seconds']:.6f} s of force work",
             f"  application rate {_fmt_rate(s['application_gflops'])} Gflops"
             f" over {s['wall_seconds']:.6f} s wall"]
    if s["fraction_of_paper"] is not None:
        lines.append(f"  = {s['application_pflops']:.3e} Pflops, "
                     f"{s['fraction_of_paper']:.3e} of the paper's "
                     f"{PAPER_PFLOPS} Pflops")
    mix = f"{m['mix_gflops']:.0f}" if m["mix_gflops"] is not None else "--"
    lines.append(f"  model (K20X {m['variant']}): pp {m['rpp_gflops']:.0f}"
                 f" / pc {m['rpc_gflops']:.0f} Gflops, {mix} at this mix;"
                 f" efficiency kernel {_fmt_eff(e['kernel'])}"
                 f" application {_fmt_eff(e['application'])}")
    for name in sorted(perf.get("backends", ())):
        b = perf["backends"][name]
        lines.append(f"  backend {name}: {_fmt_rate(b['gflops']).strip()}"
                     f" Gflops over {b['seconds']:.6f} s"
                     f" ({b['n_pp']} pp + {b['n_pc']} pc)")
    lines.append(f"  {'rank':>6s} {'local':>11s} {'let':>11s} "
                 f"{'combined':>11s} {'model-eff':>10s}   [Gflops]")
    for rank in sorted(perf["per_rank"], key=int):
        entry = perf["per_rank"][rank]
        lines.append(
            f"  {rank:>6s} {_fmt_rate(entry['gravity_local']['gflops'])}"
            f" {_fmt_rate(entry['gravity_let']['gflops'])}"
            f" {_fmt_rate(entry['combined']['gflops'])}"
            f" {_fmt_eff(entry['model_efficiency'])}")
    lines.append(f"  {'step':>6s} {'flops':>14s} {'kernel':>11s} "
                 f"{'application':>11s}   [Gflops]")
    for t in perf["timeline"]:
        lines.append(f"  {t['step']:>6d} {t['flops']:>14d}"
                     f" {_fmt_rate(t['kernel_gflops'])}"
                     f" {_fmt_rate(t['application_gflops'])}")
    return lines


def book_force_rate(registry, rank: int, flops: float,
                    gravity_seconds: float) -> None:
    """Gauge the latest force pass's achieved kernel rate (Gflop/s).

    One gauge write per *force computation* -- phase granularity, like
    every other metric in the hot path; the per-call cost is measured
    in ``benchmarks/bench_obs_overhead.py`` and stays microseconds
    against a multi-millisecond force pass.
    """
    if gravity_seconds <= 0.0:
        return
    registry.gauge(
        "force_gflops",
        "Achieved force-kernel Gflop/s of the latest force computation",
        labelnames=("rank",)).set(flops / gravity_seconds / 1.0e9,
                                  rank=rank)
