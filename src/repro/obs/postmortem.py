"""Post-mortem bundle analyzer: ``python -m repro.obs.postmortem``.

Reads a bundle written by :func:`repro.obs.health.write_bundle` and
answers the on-call questions about a dead or sick run:

- what was every rank doing when the run died (last step / phase /
  comm-op count / heartbeat age)?
- who was waiting on whom (the blocked-recv **wait-for graph**), and is
  there a cycle (a true deadlock) or a chain rooted at one silent rank
  (a stall)?
- which rank was the straggler (robust z-score over the per-rank
  ``force_phase_seconds_total`` sums recovered from ``metrics.txt``)?
- which injected faults fired nearby (``cat="fault"`` instants in the
  trace tail, plus the board's per-rank last-fault notes)?

The analysis rolls up into one **verdict** naming the guilty rank, its
kind (``crash`` / ``deadlock`` / ``stall`` / ``straggler`` /
``healthy``) and the rank's last-known phase.  ``--expect-rank`` /
``--expect-kind`` / ``--expect-phase`` turn the CLI into a CI assertion:
exit status 1 when the verdict does not match (the ``health-forensics``
job drives crash and slowdown schedules through this).

Evidence is ranked: an injected-crash instant or a typed
``RankFailedError`` beats graph inference, a wait-for cycle beats a
chain root, and a chain root beats the straggler ranking -- so a run
that crashed *while also* skewed blames the crash, not the skew.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

from .health import WAIT_PHASES, robust_zscores

#: Verdict kinds in evidence order (strongest first).
VERDICT_KINDS = ("crash", "deadlock", "stall", "straggler", "healthy")

_METRIC_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>[^\s]+)$")
_LABEL_PAIR = re.compile(r'(?P<k>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<v>[^"]*)"')


def parse_metrics_text(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Parse Prometheus text exposition into
    ``{family: [(labels, value), ...]}`` (sample names like
    ``_bucket``/``_sum`` stay distinct families)."""
    out: dict[str, list[tuple[dict, float]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _METRIC_LINE.match(line)
        if m is None:
            continue
        labels = {lm.group("k"): lm.group("v")
                  for lm in _LABEL_PAIR.finditer(m.group("labels") or "")}
        try:
            value = float(m.group("value"))
        except ValueError:
            continue
        out.setdefault(m.group("name"), []).append((labels, value))
    return out


def load_bundle(path) -> dict:
    """Load a bundle directory into one analysis-ready dict."""
    path = os.fspath(path)
    if not os.path.isdir(path):
        raise FileNotFoundError(f"not a bundle directory: {path!r}")

    def _json(name, default):
        p = os.path.join(path, name)
        if not os.path.exists(p):
            return default
        with open(p) as fh:
            return json.load(fh)

    def _text(name):
        p = os.path.join(path, name)
        if not os.path.exists(p):
            return ""
        with open(p) as fh:
            return fh.read()

    manifest = _json("manifest.json", {})
    hb = _json("heartbeats.json", {"size": None, "ranks": {}})
    heartbeats = {int(r): rec for r, rec in hb.get("ranks", {}).items()}
    events = [json.loads(line)
              for line in _text("trace_tail.jsonl").splitlines() if line]
    metrics = parse_metrics_text(_text("metrics.txt"))
    size = manifest.get("size")
    if size is None:
        size = hb.get("size")
    if size is None:
        size = (max(heartbeats) + 1) if heartbeats else 0
    return {"path": path, "manifest": manifest, "heartbeats": heartbeats,
            "events": events, "metrics": metrics, "size": int(size),
            "config": _json("config.json", {})}


def wait_graph(heartbeats: dict[int, dict]) -> dict[int, int]:
    """Blocked-recv edges ``waiter -> awaited source`` (functional graph:
    a rank blocks on at most one receive)."""
    graph = {}
    for rank, rec in heartbeats.items():
        wait = rec.get("wait")
        if wait is not None and wait.get("src") is not None:
            graph[rank] = int(wait["src"])
    return graph


def find_cycles(graph: dict[int, int]) -> list[list[int]]:
    """Cycles in a functional wait-for graph, each rotated to start at
    its smallest rank, sorted by that rank."""
    cycles = []
    seen: set[int] = set()
    for start in sorted(graph):
        if start in seen:
            continue
        trail: list[int] = []
        index: dict[int, int] = {}
        node = start
        while node in graph and node not in index:
            if node in seen:
                break
            index[node] = len(trail)
            trail.append(node)
            node = graph[node]
        else:
            if node in index:
                cycle = trail[index[node]:]
                low = cycle.index(min(cycle))
                cycles.append(cycle[low:] + cycle[:low])
        seen.update(trail)
    return cycles


def chain_roots(graph: dict[int, int],
                heartbeats: dict[int, dict]) -> list[tuple[int, int]]:
    """Non-waiting ranks that others (transitively) wait on, as
    ``(root, dependents)`` sorted by most dependents, then oldest
    heartbeat -- the likely stall culprits."""
    dependents: dict[int, int] = {}
    for waiter in graph:
        node = waiter
        hops = 0
        while node in graph and hops <= len(graph):
            node = graph[node]
            hops += 1
        if node not in graph:  # chain ended at a non-waiting rank
            dependents[node] = dependents.get(node, 0) + 1

    def _ts(rank: int) -> float:
        rec = heartbeats.get(rank)
        return rec.get("ts", 0.0) if rec else 0.0

    return sorted(dependents.items(), key=lambda kv: (-kv[1], _ts(kv[0])))


def force_costs(metrics: dict) -> dict[int, float]:
    """Per-rank sums of ``force_phase_seconds_total`` from metrics.txt,
    excluding wait-dominated phases (see
    :data:`repro.obs.health.WAIT_PHASES`): a collective wait charges
    the straggler's slowness to its victims."""
    costs: dict[int, float] = {}
    for labels, value in metrics.get("force_phase_seconds_total", []):
        if labels.get("phase") in WAIT_PHASES:
            continue
        try:
            r = int(labels.get("rank", ""))
        except ValueError:
            continue
        costs[r] = costs.get(r, 0.0) + value
    return costs


def straggler_ranking(metrics: dict) -> list[dict]:
    """Ranks by robust z-score over their force-phase cost, descending."""
    costs = force_costs(metrics)
    z = robust_zscores(costs)
    return sorted(
        ({"rank": r, "seconds": costs[r], "z": z[r]} for r in costs),
        key=lambda row: (-row["z"], row["rank"]))


def fault_events(events: list[dict]) -> list[dict]:
    """The ``cat="fault"`` instants present in the trace tail."""
    return [e for e in events if e.get("cat") == "fault"]


def _verdict(bundle: dict) -> dict:
    """Roll the evidence up into ``{kind, rank, ranks, phase, evidence}``."""
    manifest = bundle["manifest"]
    hb = bundle["heartbeats"]
    error = manifest.get("error") or {}

    def _phase(rank):
        rec = hb.get(rank)
        return rec.get("phase") if rec else None

    def _made(kind, rank, evidence, ranks=None):
        return {"kind": kind, "rank": rank,
                "ranks": sorted(ranks) if ranks else
                ([rank] if rank is not None else []),
                "phase": _phase(rank) if rank is not None else None,
                "evidence": evidence}

    # 1. An injected crash instant is the strongest evidence.
    crashes = [e for e in fault_events(bundle["events"])
               if e.get("name") == "fault_crash"]
    if crashes:
        e = crashes[0]
        return _made("crash", e["rank"],
                     f"injected-crash instant at op "
                     f"{e.get('args', {}).get('op', '?')} in the trace tail")
    # ... or a board-level crash note (the instant may have rotated out).
    noted = sorted(r for r, rec in hb.items()
                   if rec.get("last_fault") == "crash")
    if noted:
        return _made("crash", noted[0],
                     "heartbeat board recorded an injected crash")
    # 2. A typed error naming the failed rank.
    if error.get("failed_rank") is not None:
        return _made("crash", int(error["failed_rank"]),
                     f"{error.get('type', 'error')} named the failed rank")
    # 3. A wait-for cycle is a deadlock.
    graph = wait_graph(hb)
    cycles = find_cycles(graph)
    if cycles:
        cycle = cycles[0]
        return _made("deadlock", cycle[0],
                     "wait-for cycle " +
                     " -> ".join(str(r) for r in cycle + [cycle[0]]),
                     ranks=cycle)
    # 4. A wait chain rooted at a silent rank is a stall.  Only when the
    #    bundle says something actually went wrong -- blocked receives
    #    are the steady state of a healthy overlap schedule.
    anomalous = manifest.get("reason") not in (None, "manual") or \
        manifest.get("failed_ranks") or error
    roots = chain_roots(graph, hb)
    if roots and anomalous:
        root, n = roots[0]
        return _made("stall", root,
                     f"{n} rank(s) transitively blocked on silent rank "
                     f"{root}")
    # Hard-dead process ranks ship no report at all.
    silent_dead = [r for r in manifest.get("failed_ranks", [])
                   if r not in hb]
    if silent_dead:
        return _made("crash", silent_dead[0],
                     "rank died without shipping a report",
                     ranks=silent_dead)
    if manifest.get("failed_ranks"):
        r = manifest["failed_ranks"][0]
        return _made("crash", r, "listed in the manifest's failed ranks",
                     ranks=manifest["failed_ranks"])
    # 5. Straggler ranking (slowdown schedules / organic skew).
    ranking = straggler_ranking(bundle["metrics"])
    if ranking:
        top = ranking[0]
        costs = {row["rank"]: row["seconds"] for row in ranking}
        xs = sorted(costs.values())
        # Lower median (matches HealthMonitor): with an even rank count
        # the interpolated median averages the outlier in, and at 2
        # ranks a >2x-the-mean criterion can never hold.
        median = xs[(len(xs) - 1) // 2]
        if top["z"] >= 3.5 or (median > 0 and
                               top["seconds"] >= 3.0 * median):
            return _made(
                "straggler", top["rank"],
                f"robust z {top['z']:.1f} over force-phase seconds "
                f"({top['seconds']:.3g}s vs median {median:.3g}s)")
    return _made("healthy", None, "no crash, cycle, stall root or "
                 "straggler found in the bundle")


def analyze(bundle: dict) -> dict:
    """Full analysis document for one loaded bundle."""
    manifest = bundle["manifest"]
    hb = bundle["heartbeats"]
    graph = wait_graph(hb)
    ranks = []
    for r in range(bundle["size"]):
        rec = hb.get(r)
        row = {"rank": r,
               "reported": rec is not None,
               "step": rec.get("step") if rec else None,
               "phase": rec.get("phase") if rec else None,
               "ops": rec.get("ops") if rec else None,
               "ts": rec.get("ts") if rec else None,
               "waiting_on": graph.get(r),
               "last_fault": rec.get("last_fault") if rec else None,
               "failed": r in manifest.get("failed_ranks", [])}
        ranks.append(row)
    return {
        "bundle": bundle["path"],
        "reason": manifest.get("reason"),
        "error": manifest.get("error"),
        "size": bundle["size"],
        "transport": manifest.get("transport"),
        "deterministic_clock": manifest.get("deterministic_clock"),
        "config_fingerprint": manifest.get("config_fingerprint"),
        "fault_schedule": manifest.get("fault_schedule"),
        "ranks": ranks,
        "wait_graph": {str(k): v for k, v in sorted(graph.items())},
        "cycles": find_cycles(graph),
        "stragglers": straggler_ranking(bundle["metrics"]),
        "fault_events": fault_events(bundle["events"]),
        "verdict": _verdict(bundle),
    }


def _fmt(value, width: int | None = None) -> str:
    if value is None:
        text = "-"
    elif isinstance(value, float):
        text = f"{value:.3g}"
    else:
        text = str(value)
    return text if width is None else text.rjust(width)


def render_report(doc: dict) -> str:
    """Human-readable report (the default CLI output)."""
    lines = [f"post-mortem: {doc['bundle']}",
             f"  reason: {doc['reason']}   transport: {doc['transport']}"
             f"   ranks: {doc['size']}   deterministic clock: "
             f"{doc['deterministic_clock']}"]
    err = doc.get("error")
    if err:
        lines.append(f"  error: {err.get('type')}: {err.get('message')}")
    if doc.get("fault_schedule"):
        lines.append(f"  fault schedule: {doc['fault_schedule']}")
    lines.append("")
    lines.append("  rank  step  phase            ops  waiting-on  "
                 "last-fault  status")
    for row in doc["ranks"]:
        status = "FAILED" if row["failed"] else (
            "no report" if not row["reported"] else "ok")
        lines.append(
            f"  {_fmt(row['rank'], 4)}  {_fmt(row['step'], 4)}  "
            f"{_fmt(row['phase']):<15s}  {_fmt(row['ops'], 3)}  "
            f"{_fmt(row['waiting_on'], 10)}  "
            f"{_fmt(row['last_fault']):<10s}  {status}")
    if doc["wait_graph"]:
        lines.append("")
        lines.append("  wait-for graph: " + "   ".join(
            f"{k} -> {v}" for k, v in doc["wait_graph"].items()))
        for cycle in doc["cycles"]:
            lines.append("  DEADLOCK CYCLE: " +
                         " -> ".join(str(r) for r in cycle + [cycle[0]]))
    if doc["stragglers"]:
        lines.append("")
        lines.append("  straggler ranking (force-phase seconds, robust z):")
        for row in doc["stragglers"]:
            lines.append(f"    rank {row['rank']}: {row['seconds']:.4g}s  "
                         f"z={row['z']:+.2f}")
    if doc["fault_events"]:
        lines.append("")
        lines.append(f"  injected faults in the trace tail "
                     f"({len(doc['fault_events'])}):")
        for e in doc["fault_events"][-8:]:
            lines.append(f"    rank {e['rank']} ts={e['ts']:.6g} "
                         f"{e['name']} {e.get('args', {})}")
    v = doc["verdict"]
    lines.append("")
    where = f" (last phase: {v['phase']})" if v.get("phase") else ""
    who = f"rank {v['rank']}" if v.get("rank") is not None else "no rank"
    lines.append(f"  VERDICT: {v['kind']} -- {who}{where}")
    lines.append(f"    evidence: {v['evidence']}")
    return "\n".join(lines) + "\n"


def check_expectations(doc: dict, args) -> list[str]:
    """Mismatch messages for the ``--expect-*`` assertions (empty=pass)."""
    v = doc["verdict"]
    problems = []
    if args.expect_kind is not None and v["kind"] != args.expect_kind:
        problems.append(
            f"expected kind {args.expect_kind!r}, got {v['kind']!r}")
    if args.expect_rank is not None and v["rank"] != args.expect_rank:
        problems.append(
            f"expected guilty rank {args.expect_rank}, got {v['rank']}")
    if args.expect_phase is not None and v["phase"] != args.expect_phase:
        problems.append(
            f"expected last phase {args.expect_phase!r}, got {v['phase']!r}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.postmortem",
        description="Analyze a run-health post-mortem bundle.")
    parser.add_argument("bundle", help="bundle directory "
                        "(written by the flight recorder)")
    parser.add_argument("--json", action="store_true",
                        help="emit the analysis as JSON instead of text")
    parser.add_argument("--expect-rank", type=int, default=None,
                        help="assert the verdict names this rank")
    parser.add_argument("--expect-kind", choices=VERDICT_KINDS, default=None,
                        help="assert the verdict kind")
    parser.add_argument("--expect-phase", default=None,
                        help="assert the guilty rank's last phase")
    args = parser.parse_args(argv)

    try:
        bundle = load_bundle(args.bundle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot load bundle: {exc}", file=sys.stderr)
        return 2
    doc = analyze(bundle)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(render_report(doc), end="")
    problems = check_expectations(doc, args)
    for p in problems:
        print(f"EXPECTATION FAILED: {p}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
