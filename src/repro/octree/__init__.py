"""Sparse octree construction and multipole moments.

Reproduces the data structures of the Bonsai single-GPU pipeline
(Sec. III-A): level-by-level tree construction over SFC-sorted particles
with a leaf capacity of 16, monopole + quadrupole moments, per-cell
opening radii for the multipole acceptance criterion, and particle
*groups* (the warp-sized walk granularity, NCRIT).
"""

from .tree import Octree
from .build import build_octree
from .incremental import TREE_MODES, TREE_REUSE_MODES, TreeCache, TreeRepairStats, cached_octree
from .moments import compute_moments
from .properties import compute_opening_radii
from .groups import make_groups

__all__ = [
    "Octree",
    "build_octree",
    "cached_octree",
    "TreeCache",
    "TreeRepairStats",
    "TREE_MODES",
    "TREE_REUSE_MODES",
    "compute_moments",
    "compute_opening_radii",
    "make_groups",
]
