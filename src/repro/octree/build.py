"""Level-by-level octree construction over SFC-sorted particles.

Mirrors the GPU tree-build of Bonsai (Sec. III-A, [9]): particles are
sorted by their SFC key, then cells are created breadth-first.  A cell
with more than ``nleaf`` particles (paper value: 16) is split into its
non-empty octants by examining the next 3 key bits; the recursion is
fully vectorized per level using run-length detection on the
(parent, octant-digit) stream.
"""

from __future__ import annotations

import numpy as np

from ..sfc import BoundingBox, KEY_MAX_LEVEL, cell_geometry
from .tree import Octree

_U = np.uint64


def build_octree(pos: np.ndarray,
                 nleaf: int = 16,
                 curve: str = "hilbert",
                 box: BoundingBox | None = None,
                 keys: np.ndarray | None = None,
                 order: np.ndarray | None = None,
                 max_level: int = KEY_MAX_LEVEL) -> Octree:
    """Construct a sparse octree over ``pos``.

    Parameters
    ----------
    pos:
        (N, 3) positions.
    nleaf:
        Leaf capacity; cells with at most this many particles stop
        splitting (paper: 16).
    curve:
        ``"hilbert"`` (paper's choice) or ``"morton"``.
    box:
        Optional global bounding cube; computed from ``pos`` when absent.
        Passing the *global* box is how the distributed code guarantees
        that every local tree is a branch of the same hypothetical global
        octree (Sec. III-B1).
    keys:
        Pre-computed SFC keys for ``pos`` (skips re-encoding).
    order:
        Pre-computed stable sort permutation of ``keys`` (skips the
        argsort; see :class:`repro.sfc.SortCache`).  Must actually sort
        ``keys`` -- the caller vouches for it.
    max_level:
        Maximum tree depth; cells at this depth become leaves regardless
        of occupancy (guards against coincident particles).

    Returns
    -------
    Octree with topology filled in; moments are computed separately.
    """
    pos = np.asarray(pos, dtype=np.float64)
    n = len(pos)
    if n == 0:
        raise ValueError("cannot build a tree over zero particles")
    if nleaf < 1:
        raise ValueError("nleaf must be >= 1")
    if box is None:
        box = BoundingBox.from_positions(pos)
    if keys is None:
        keys = box.keys(pos, curve)
    else:
        keys = np.asarray(keys, dtype=np.uint64)

    if order is None:
        order = np.argsort(keys, kind="stable").astype(np.int64)
    else:
        order = np.asarray(order, dtype=np.int64)
    skeys = keys[order]

    # Per-level accumulators.
    lvl_key: list[np.ndarray] = []
    lvl_level: list[np.ndarray] = []
    lvl_parent: list[np.ndarray] = []
    lvl_first: list[np.ndarray] = []
    lvl_count: list[np.ndarray] = []

    # Root.
    lvl_key.append(skeys[:1].copy())
    lvl_level.append(np.zeros(1, dtype=np.int64))
    lvl_parent.append(np.full(1, -1, dtype=np.int64))
    lvl_first.append(np.zeros(1, dtype=np.int64))
    lvl_count.append(np.array([n], dtype=np.int64))

    first_child_parts: list[np.ndarray] = [np.full(1, -1, dtype=np.int64)]
    n_children_parts: list[np.ndarray] = [np.zeros(1, dtype=np.int64)]

    cells_before = 0          # number of cells on levels < current
    cur_first = lvl_first[0]
    cur_count = lvl_count[0]
    cur_ids = np.zeros(1, dtype=np.int64)  # global ids of current level cells

    for level in range(1, max_level + 1):
        split = cur_count > nleaf
        if not split.any():
            break
        parents = np.flatnonzero(split)
        p_first = cur_first[parents]
        p_count = cur_count[parents]

        # Gather the sorted-particle indices covered by splitting parents.
        total = int(p_count.sum())
        # arange concatenation trick: offsets within each range.
        reps = np.repeat(np.arange(len(parents)), p_count)
        offsets = np.arange(total) - np.repeat(np.cumsum(p_count) - p_count, p_count)
        pidx = p_first[reps] + offsets

        shift = _U(3 * (KEY_MAX_LEVEL - level))
        digits = (skeys[pidx] >> shift) & _U(7)

        # New cell starts where the (parent, digit) pair changes.
        newcell = np.empty(total, dtype=bool)
        newcell[0] = True
        newcell[1:] = (reps[1:] != reps[:-1]) | (digits[1:] != digits[:-1])
        starts = np.flatnonzero(newcell)

        c_first = pidx[starts]
        c_count = np.diff(np.append(starts, total))
        c_parent_local = reps[starts]            # index into `parents`
        c_parent = cur_ids[parents[c_parent_local]]
        c_key = skeys[c_first]

        n_new = len(starts)
        base = cells_before + len(cur_count)     # global id of first new cell

        # Fill parent -> child links.  Children of one parent are adjacent
        # in the `starts` order, so the first child is the first new cell
        # whose parent matches.
        fc = np.full(len(cur_count), -1, dtype=np.int64)
        nc = np.zeros(len(cur_count), dtype=np.int64)
        first_of_parent = np.flatnonzero(
            np.append(True, c_parent_local[1:] != c_parent_local[:-1]))
        nc_counts = np.diff(np.append(first_of_parent, n_new))
        fc[parents[c_parent_local[first_of_parent]]] = base + first_of_parent
        nc[parents[c_parent_local[first_of_parent]]] = nc_counts
        first_child_parts[-1] = fc
        n_children_parts[-1] = nc

        lvl_key.append(c_key)
        lvl_level.append(np.full(n_new, level, dtype=np.int64))
        lvl_parent.append(c_parent)
        lvl_first.append(c_first.astype(np.int64))
        lvl_count.append(c_count.astype(np.int64))
        first_child_parts.append(np.full(n_new, -1, dtype=np.int64))
        n_children_parts.append(np.zeros(n_new, dtype=np.int64))

        cells_before += len(cur_count)
        cur_first = c_first
        cur_count = c_count
        cur_ids = base + np.arange(n_new, dtype=np.int64)

    tree = Octree(
        cell_key=np.concatenate(lvl_key),
        cell_level=np.concatenate(lvl_level),
        cell_parent=np.concatenate(lvl_parent),
        first_child=np.concatenate(first_child_parts),
        n_children=np.concatenate(n_children_parts),
        body_first=np.concatenate(lvl_first),
        body_count=np.concatenate(lvl_count),
        order=order,
        keys=skeys,
        box=box,
        curve=curve,
        nleaf=nleaf,
    )
    tree.center, tree.half = cell_geometry(tree.cell_key, tree.cell_level,
                                           box, curve)
    return tree
