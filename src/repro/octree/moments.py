"""Multipole moments (monopole + quadrupole) and tight cell AABBs.

Computes, for every cell, the total mass, center of mass, the 3x3
symmetric second-moment tensor about the COM (packed as 6 components:
xx, yy, zz, xy, xz, yz), and the tight axis-aligned bounding box of the
cell's particles.  This is the "Tree-properties" phase of Table II.

Because every cell owns a *contiguous* range of the sorted particle
array, all segment sums reduce to prefix-sum differences, which keeps the
whole pass O(N) and fully vectorized.
"""

from __future__ import annotations

import numpy as np

from .tree import Octree

#: Packed index pairs for the 6 independent quadrupole components.
QUAD_PAIRS = ((0, 0), (1, 1), (2, 2), (0, 1), (0, 2), (1, 2))


def _range_sum(prefix: np.ndarray, first: np.ndarray, count: np.ndarray) -> np.ndarray:
    """Sum of a prefix-summed quantity over [first, first+count) ranges."""
    return prefix[first + count] - prefix[first]


def compute_moments(tree: Octree, pos: np.ndarray, mass: np.ndarray) -> Octree:
    """Fill ``mass``, ``com``, ``quad``, ``bmin``, ``bmax`` on ``tree``.

    Parameters
    ----------
    tree:
        Octree from :func:`build_octree`.
    pos, mass:
        Particle data in *original* order; the tree's ``order`` permutation
        is applied internally.

    Returns
    -------
    The same tree, for chaining.
    """
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    spos = pos[tree.order]
    smass = mass[tree.order]
    first = tree.body_first
    count = tree.body_count

    # Prefix sums with a leading zero so ranges are simple differences.
    def prefix(a: np.ndarray) -> np.ndarray:
        out = np.empty(len(a) + 1, dtype=np.float64)
        out[0] = 0.0
        np.cumsum(a, out=out[1:])
        return out

    pm = prefix(smass)
    cell_mass = _range_sum(pm, first, count)

    mx = smass[:, None] * spos
    com = np.empty((tree.n_cells, 3))
    for k in range(3):
        com[:, k] = _range_sum(prefix(mx[:, k]), first, count)
    with np.errstate(invalid="ignore"):
        com /= cell_mass[:, None]
    # Massless cells (possible in synthetic tests): use geometric center.
    bad = ~np.isfinite(com).all(axis=1)
    if bad.any():
        com[bad] = tree.center[bad]

    # Raw second moments sum m x_i x_j, then shift to the COM:
    # Q = sum m (x - c)(x - c)^T = sum m x x^T - M c c^T.
    quad = np.empty((tree.n_cells, 6))
    for q, (i, j) in enumerate(QUAD_PAIRS):
        raw = _range_sum(prefix(smass * spos[:, i] * spos[:, j]), first, count)
        quad[:, q] = raw - cell_mass * com[:, i] * com[:, j]

    # Tight AABBs.  min/max have no prefix-sum trick, so reduce per level,
    # where cell ranges are disjoint and sorted.  A sentinel element is
    # appended (+inf for min, -inf for max) so a range ending exactly at
    # the array end stays a valid reduceat boundary.
    bmin = np.full((tree.n_cells, 3), np.inf)
    bmax = np.full((tree.n_cells, 3), -np.inf)
    starts = first.astype(np.intp)
    levels = tree.cell_level
    cols_min = [np.append(spos[:, k], np.inf) for k in range(3)]
    cols_max = [np.append(spos[:, k], -np.inf) for k in range(3)]
    for lv in range(int(levels.max()) + 1):
        sel = np.flatnonzero(levels == lv)
        if len(sel) == 0:
            continue
        s = starts[sel]
        e = s + count[sel].astype(np.intp)
        # reduceat over interleaved [s0, e0, s1, e1, ...] boundaries; the
        # even-indexed outputs are the [s_i, e_i) reductions we want.
        bounds = np.empty(2 * len(sel), dtype=np.intp)
        bounds[0::2] = s
        bounds[1::2] = e
        for k in range(3):
            bmin[sel, k] = np.minimum.reduceat(cols_min[k], bounds)[0::2]
            bmax[sel, k] = np.maximum.reduceat(cols_max[k], bounds)[0::2]

    tree.mass = cell_mass
    tree.com = com
    tree.quad = quad
    tree.bmin = bmin
    tree.bmax = bmax
    return tree


def quad_trace(quad: np.ndarray) -> np.ndarray:
    """Trace of packed quadrupole tensors."""
    return quad[..., 0] + quad[..., 1] + quad[..., 2]


def quad_to_matrix(quad: np.ndarray) -> np.ndarray:
    """Unpack (…, 6) quadrupole components into (…, 3, 3) matrices."""
    quad = np.asarray(quad)
    m = np.empty(quad.shape[:-1] + (3, 3))
    m[..., 0, 0] = quad[..., 0]
    m[..., 1, 1] = quad[..., 1]
    m[..., 2, 2] = quad[..., 2]
    m[..., 0, 1] = m[..., 1, 0] = quad[..., 3]
    m[..., 0, 2] = m[..., 2, 0] = quad[..., 4]
    m[..., 1, 2] = m[..., 2, 1] = quad[..., 5]
    return m
