"""The :class:`Octree` struct-of-arrays container."""

from __future__ import annotations

import dataclasses

import numpy as np

from ..sfc import BoundingBox


@dataclasses.dataclass
class Octree:
    """A linear (array-based) sparse octree over SFC-sorted particles.

    Cells are stored level-contiguously: all cells of level L occupy a
    contiguous index range, children of one parent are adjacent, and the
    root is cell 0.  Particle ranges refer to the *sorted* particle order
    (``order`` maps sorted index -> original index).

    Topology arrays (length = n_cells):

    - ``cell_key``     -- full-depth SFC key of the curve's entry point.
    - ``cell_level``   -- depth, root = 0.
    - ``cell_parent``  -- parent cell index (-1 for root).
    - ``first_child``  -- index of first child (-1 for leaves).
    - ``n_children``   -- number of children (0 for leaves).
    - ``body_first``   -- first particle (sorted order) in the cell.
    - ``body_count``   -- number of particles in the cell.

    Geometry / moments (filled by :func:`compute_moments` and
    :func:`compute_opening_radii`):

    - ``center``/``half`` -- geometric cube center and half edge.
    - ``mass``/``com``    -- monopole: total mass and center of mass.
    - ``quad``            -- (n, 6) second moments about the COM, packed
      as (xx, yy, zz, xy, xz, yz); the force kernel's ``Q``.
    - ``bmin``/``bmax``   -- tight AABB of the cell's particles.
    - ``r_crit``          -- MAC opening radius (cells closer than this
      to a target must be opened).
    """

    # topology
    cell_key: np.ndarray
    cell_level: np.ndarray
    cell_parent: np.ndarray
    first_child: np.ndarray
    n_children: np.ndarray
    body_first: np.ndarray
    body_count: np.ndarray

    # particle ordering
    order: np.ndarray          # sorted index -> original particle index
    keys: np.ndarray           # SFC keys in sorted order
    box: BoundingBox
    curve: str = "hilbert"
    nleaf: int = 16

    # geometry + moments (optional until computed)
    center: np.ndarray | None = None
    half: np.ndarray | None = None
    mass: np.ndarray | None = None
    com: np.ndarray | None = None
    quad: np.ndarray | None = None
    bmin: np.ndarray | None = None
    bmax: np.ndarray | None = None
    r_crit: np.ndarray | None = None

    # walk granularity (optional, see groups.py)
    group_first: np.ndarray | None = None   # first sorted particle per group
    group_count: np.ndarray | None = None

    @property
    def n_cells(self) -> int:
        """Number of cells."""
        return len(self.cell_key)

    @property
    def n_bodies(self) -> int:
        """Number of particles indexed by the tree."""
        return len(self.order)

    @property
    def n_levels(self) -> int:
        """Depth of the tree (max level + 1)."""
        return int(self.cell_level.max()) + 1 if self.n_cells else 0

    @property
    def is_leaf(self) -> np.ndarray:
        """Boolean mask of leaf cells."""
        return self.n_children == 0

    def leaf_cells(self) -> np.ndarray:
        """Indices of leaf cells."""
        return np.flatnonzero(self.is_leaf)

    def children_of(self, cell: int) -> np.ndarray:
        """Child cell indices of one cell."""
        f = int(self.first_child[cell])
        n = int(self.n_children[cell])
        if n == 0:
            return np.empty(0, dtype=np.int64)
        return np.arange(f, f + n, dtype=np.int64)

    def bodies_of(self, cell: int) -> np.ndarray:
        """Original particle indices contained in one cell."""
        f = int(self.body_first[cell])
        c = int(self.body_count[cell])
        return self.order[f:f + c]

    def validate(self) -> None:
        """Check structural invariants; raises AssertionError on failure."""
        assert self.n_cells >= 1
        assert self.body_count[0] == self.n_bodies, "root must hold all bodies"
        leaves = self.leaf_cells()
        # Leaves partition the particle range.
        starts = np.sort(self.body_first[leaves])
        counts = self.body_count[leaves][np.argsort(self.body_first[leaves], kind="stable")]
        assert starts[0] == 0
        assert np.all(starts[1:] == starts[:-1] + counts[:-1])
        assert starts[-1] + counts[-1] == self.n_bodies
        # Children ranges tile their parent's range.
        internal = np.flatnonzero(~self.is_leaf)
        for c in internal[: min(len(internal), 4096)]:
            ch = self.children_of(int(c))
            assert self.body_first[ch[0]] == self.body_first[c]
            assert self.body_count[ch].sum() == self.body_count[c]
            assert np.all(self.cell_parent[ch] == c)
            assert np.all(self.cell_level[ch] == self.cell_level[c] + 1)
