"""Particle groups: the warp-sized granularity of the GPU tree walk.

Bonsai walks the tree once per *group* of up to NCRIT spatially adjacent
particles (a warp / thread block processes a group together, sharing one
interaction list).  We reproduce that by selecting the maximal tree cells
containing at most ``ncrit`` particles: a cell is a group iff its count
is <= ncrit and its parent's count is > ncrit (or it is the root).

Groups therefore partition the sorted particle array into contiguous
ranges, exactly like the leaf partition but at a coarser capacity.
"""

from __future__ import annotations

import numpy as np

from .tree import Octree


def make_groups(tree: Octree, ncrit: int = 64) -> Octree:
    """Fill ``group_first``/``group_count`` on the tree.

    Parameters
    ----------
    ncrit:
        Maximum particles per group (Bonsai uses a small multiple of the
        warp size; 64 by default here).
    """
    if ncrit < 1:
        raise ValueError("ncrit must be >= 1")
    count = tree.body_count
    parent = tree.cell_parent
    small = count <= ncrit
    parent_big = np.where(parent >= 0, count[np.maximum(parent, 0)] > ncrit, True)
    is_group = small & parent_big
    # Cells with > ncrit particles that are leaves (max depth, coincident
    # particles) must still be walked: make them groups too.
    stuck = (~small) & (tree.n_children == 0)
    is_group |= stuck

    sel = np.flatnonzero(is_group)
    order = np.argsort(tree.body_first[sel], kind="stable")
    sel = sel[order]
    gf = tree.body_first[sel].astype(np.int64)
    gc = tree.body_count[sel].astype(np.int64)

    # Groups must partition the particle range.
    if len(gf) == 0 or gf[0] != 0 or gf[-1] + gc[-1] != tree.n_bodies \
            or not np.all(gf[1:] == gf[:-1] + gc[:-1]):
        raise AssertionError("groups do not partition the particle array")

    tree.group_first = gf
    tree.group_count = gc
    return tree
