"""Incremental octree repair across timesteps (Cornerstone-style reuse).

Particles barely move between timesteps, so most of the octree built in
step k is structurally identical to the one step k+1 would build from
scratch: only the subtrees whose *leaf membership* changed need work.
Following Cornerstone's incremental update idea, :func:`cached_octree`
diffs the new sorted SFC keys against the cached tree, grafts every
subtree whose key content is unchanged, and re-runs the level-by-level
build only over the dirty regions -- falling back to a full rebuild when
the churn fraction exceeds a threshold (or when the bounding box, curve
or leaf capacity changed, which invalidates every cached prefix).

Bitwise contract
----------------
The repaired tree is **bitwise identical** to ``build_octree`` on the
same sorted keys: every topology array, ``cell_key``, and the
``center``/``half`` geometry (cell geometry is a pure function of the
cell's level prefix, so grafted rows equal a cold recompute exactly).
Multipole moments are *not* spliced: :func:`~repro.octree.moments.compute_moments`
accumulates global prefix sums whose rounding couples every cell to all
preceding particles, so per-subtree splicing could never honour the
0-ULP contract the step-coherence test suite enforces.  Callers rerun
``compute_moments`` on the repaired tree as usual -- it is a pure
function of the (identical) structure and the new particle data, hence
itself bitwise equal to the cold path.

Cleanliness criterion
---------------------
Keys are truncated to the cached tree's deepest level ``Lmax`` before
diffing: low bits below the tree's resolution flip on almost every step
(any drift perturbs the finest Hilbert digits) but cannot affect
topology.  A cell is *clean* when no truncated key was added to or
removed from its octant interval -- then its sorted truncated
subsequence is unchanged, its subtree splits identically (and can never
need to deepen past ``Lmax``, because its per-level counts are
unchanged), and its whole subtree can be grafted after locating the new
offset with one ``searchsorted``.  Full-depth ``cell_key`` values are
re-gathered from the new keys, so intra-leaf key drift never leaks
stale bytes into the repaired tree.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..sfc import BoundingBox, KEY_MAX_LEVEL, cell_geometry
from .build import build_octree
from .tree import Octree

_U = np.uint64

#: ``SimulationConfig.tree_reuse`` values.
TREE_REUSE_MODES = ("off", "repair")

#: Outcomes of :func:`cached_octree`, cheapest first.
TREE_MODES = ("reuse", "repair", "cold")


@dataclasses.dataclass
class TreeRepairStats:
    """What the latest :func:`cached_octree` call actually did."""

    mode: str                 #: one of :data:`TREE_MODES`
    churn: float = 0.0        #: fraction of truncated keys added/removed
    cells_total: int = 0      #: cells in the returned tree
    cells_active: int = 0     #: cells rebuilt by the active (dirty) pass
    cells_grafted: int = 0    #: cells spliced verbatim from the cache


class TreeCache:
    """Remembers the previous step's octree for incremental repair.

    One cache per (driver, tree site).  Correctness never depends on the
    cache being fresh -- the diff against the cached tree's own sorted
    keys is the ground truth -- but a box/curve/nleaf change invalidates
    every cached prefix, so those force a cold build via a signature
    check (the box comparison is bitwise: even an LSB origin shift
    relabels octants).  ``epoch`` is an explicit generation tag: bumping
    it (e.g. on a domain rebalance, if the driver wants belt-and-braces
    invalidation) guarantees the next build is cold.
    """

    __slots__ = ("churn_threshold", "epoch", "last",
                 "_tree", "_sig", "_epoch_built")

    def __init__(self, churn_threshold: float = 0.3) -> None:
        if not 0.0 < churn_threshold <= 1.0:
            raise ValueError("churn_threshold must be in (0, 1]")
        self.churn_threshold = float(churn_threshold)
        self.epoch = 0
        self.last: TreeRepairStats | None = None
        self._tree: Octree | None = None
        self._sig: tuple | None = None
        self._epoch_built = -1

    def invalidate(self) -> None:
        """Drop the cached tree; the next build is cold."""
        self._tree = None
        self._sig = None

    def bump_epoch(self) -> None:
        """Advance the generation tag; stale entries can never be reused."""
        self.epoch += 1


def _signature(box: BoundingBox, curve: str, nleaf: int,
               max_level: int) -> tuple:
    origin = np.ascontiguousarray(np.asarray(box.origin, dtype=np.float64))
    return (curve, int(nleaf), int(max_level),
            origin.tobytes(), float(box.size))


def _truncated_multiset_diff(at: np.ndarray, bt: np.ndarray
                             ) -> tuple[np.ndarray, float]:
    """Dirty truncated keys between two sorted arrays.

    Returns ``(dirty, churn)``: the sorted unique truncated keys whose
    multiplicity differs, and the added+removed count as a fraction of
    the new population.
    """
    ua = at[np.append(True, at[1:] != at[:-1])] if len(at) else at
    ub = bt[np.append(True, bt[1:] != bt[:-1])] if len(bt) else bt
    u = np.union1d(ua, ub)
    ca = np.searchsorted(at, u, side="right") - np.searchsorted(at, u, side="left")
    cb = np.searchsorted(bt, u, side="right") - np.searchsorted(bt, u, side="left")
    changed = ca != cb
    churn = float(np.abs(ca - cb).sum()) / float(max(len(bt), 1))
    return u[changed], churn


def cached_octree(cache: TreeCache, pos: np.ndarray,
                  nleaf: int = 16, curve: str = "hilbert",
                  box: BoundingBox | None = None,
                  keys: np.ndarray | None = None,
                  order: np.ndarray | None = None,
                  max_level: int = KEY_MAX_LEVEL) -> Octree:
    """Build an octree, reusing the cached previous tree when possible.

    Drop-in for :func:`~repro.octree.build.build_octree` (same
    parameters and bitwise-identical result); the outcome is recorded in
    ``cache.last``.  The returned tree has topology and
    ``center``/``half`` geometry filled in; moments are computed
    separately, exactly as with a cold build.
    """
    pos = np.asarray(pos, dtype=np.float64)
    if len(pos) == 0:
        raise ValueError("cannot build a tree over zero particles")
    if box is None:
        box = BoundingBox.from_positions(pos)
    if keys is None:
        keys = box.keys(pos, curve)
    else:
        keys = np.asarray(keys, dtype=np.uint64)
    if order is None:
        order = np.argsort(keys, kind="stable").astype(np.int64)
    else:
        order = np.asarray(order, dtype=np.int64)
    skeys = keys[order]

    def cold(mode_churn: float) -> Octree:
        tree = build_octree(pos, nleaf=nleaf, curve=curve, box=box,
                            keys=keys, order=order, max_level=max_level)
        cache.last = TreeRepairStats(mode="cold", churn=mode_churn,
                                     cells_total=tree.n_cells,
                                     cells_active=tree.n_cells)
        cache._tree = tree
        cache._sig = _signature(box, curve, nleaf, max_level)
        cache._epoch_built = cache.epoch
        return tree

    old = cache._tree
    sig = _signature(box, curve, nleaf, max_level)
    if old is None or cache._sig != sig or cache._epoch_built != cache.epoch:
        return cold(1.0)

    lmax = int(old.cell_level.max())
    shift = _U(3 * (KEY_MAX_LEVEL - lmax))
    at = old.keys >> shift
    bt = skeys >> shift
    dirty, churn = _truncated_multiset_diff(at, bt)

    if len(dirty) == 0:
        # Topology is a pure function of the truncated key sequence, so
        # the cached arrays are exactly what a cold build would produce.
        # cell_key is full-depth (intra-octant drift changes it without
        # changing topology): re-gather from the new sorted keys.
        tree = Octree(
            cell_key=skeys[old.body_first],
            cell_level=old.cell_level, cell_parent=old.cell_parent,
            first_child=old.first_child, n_children=old.n_children,
            body_first=old.body_first, body_count=old.body_count,
            order=order, keys=skeys, box=box, curve=curve, nleaf=nleaf,
            center=old.center, half=old.half)
        cache.last = TreeRepairStats(mode="reuse", churn=0.0,
                                     cells_total=tree.n_cells,
                                     cells_grafted=tree.n_cells)
        cache._tree = tree
        cache._epoch_built = cache.epoch
        return tree

    if churn > cache.churn_threshold:
        return cold(churn)

    repaired = _repair(old, dirty, bt, skeys, order, box, curve, nleaf,
                       max_level, lmax)
    if repaired is None:  # nothing graftable: the diff touched every subtree
        return cold(churn)
    tree, n_grafted = repaired
    cache.last = TreeRepairStats(
        mode="repair", churn=churn, cells_total=tree.n_cells,
        cells_active=tree.n_cells - n_grafted,
        cells_grafted=n_grafted)
    cache._tree = tree
    cache._epoch_built = cache.epoch
    return tree


def _clean_roots(old: Octree, dirty: np.ndarray, bt: np.ndarray, lmax: int
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Maximal internal cells whose truncated octant interval is clean.

    Returns ``(root_ids, root_new_first)`` where ``root_new_first`` is
    each root's particle offset in the *new* sorted key array.
    """
    glob_shift = _U(3 * (KEY_MAX_LEVEL - lmax))
    tkey = old.cell_key >> glob_shift
    bits = (3 * (lmax - old.cell_level)).astype(np.uint64)
    plo = (tkey >> bits) << bits
    phi = plo + (_U(1) << bits)
    n_dirty_in = (np.searchsorted(dirty, phi, side="left")
                  - np.searchsorted(dirty, plo, side="left"))
    clean = n_dirty_in == 0
    parent_clean = np.zeros(old.n_cells, dtype=bool)
    has_parent = old.cell_parent >= 0
    parent_clean[has_parent] = clean[old.cell_parent[has_parent]]
    roots = np.flatnonzero(clean & ~parent_clean & (old.n_children > 0))
    new_first = np.searchsorted(bt, plo[roots], side="left").astype(np.int64)
    return roots, new_first


def _repair(old: Octree, dirty: np.ndarray, bt: np.ndarray,
            skeys: np.ndarray, order: np.ndarray, box: BoundingBox,
            curve: str, nleaf: int, max_level: int, lmax: int
            ) -> tuple[Octree, int] | None:
    n = len(skeys)
    roots, roots_new_first = _clean_roots(old, dirty, bt, lmax)
    if len(roots) == 0:
        return None

    # Per-level lookup tables: clean roots keyed by (level, new_first).
    root_level = old.cell_level[roots]
    tables: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
    for lv in np.unique(root_level):
        sel = root_level == lv
        rf = roots_new_first[sel]
        o = np.argsort(rf, kind="stable")
        tables[int(lv)] = (rf[o], old.body_count[roots[sel]][o],
                          roots[sel][o])

    # --- active build: the cold level loop, minus grafted subtrees ------
    act_first: list[np.ndarray] = [np.zeros(1, dtype=np.int64)]
    act_count: list[np.ndarray] = [np.array([n], dtype=np.int64)]
    act_parent: list[np.ndarray] = [np.full(1, -1, dtype=np.int64)]
    act_graft: list[np.ndarray] = [np.full(1, -1, dtype=np.int64)]

    cur_first = act_first[0]
    cur_count = act_count[0]
    cur_blocked = np.zeros(1, dtype=bool)
    matched_old: list[np.ndarray] = []
    matched_new_first: list[np.ndarray] = []

    for level in range(1, max_level + 1):
        split = (cur_count > nleaf) & ~cur_blocked
        if not split.any():
            break
        parents = np.flatnonzero(split)
        p_first = cur_first[parents]
        p_count = cur_count[parents]

        total = int(p_count.sum())
        reps = np.repeat(np.arange(len(parents)), p_count)
        offsets = np.arange(total) - np.repeat(np.cumsum(p_count) - p_count,
                                               p_count)
        pidx = p_first[reps] + offsets

        kshift = _U(3 * (KEY_MAX_LEVEL - level))
        digits = (skeys[pidx] >> kshift) & _U(7)

        newcell = np.empty(total, dtype=bool)
        newcell[0] = True
        newcell[1:] = (reps[1:] != reps[:-1]) | (digits[1:] != digits[:-1])
        starts = np.flatnonzero(newcell)

        c_first = pidx[starts].astype(np.int64)
        c_count = np.diff(np.append(starts, total)).astype(np.int64)
        c_parent = parents[reps[starts]]        # index into level-1 actives

        graft = np.full(len(starts), -1, dtype=np.int64)
        table = tables.get(level)
        if table is not None:
            tf, tcount, told = table
            pos = np.searchsorted(tf, c_first)
            pos_c = np.minimum(pos, len(tf) - 1)
            hit = (tf[pos_c] == c_first) & (tcount[pos_c] == c_count)
            graft[hit] = told[pos_c[hit]]
            if hit.any():
                matched_old.append(told[pos_c[hit]])
                matched_new_first.append(c_first[hit])

        act_first.append(c_first)
        act_count.append(c_count)
        act_parent.append(c_parent)
        act_graft.append(graft)

        cur_first = c_first
        cur_count = c_count
        cur_blocked = graft >= 0

    if not matched_old:
        return None
    m_old = np.concatenate(matched_old)
    m_new_first = np.concatenate(matched_new_first)

    # --- descendant extraction: subtree masks + per-cell offset shift ---
    n_old = old.n_cells
    in_sub = np.zeros(n_old, dtype=bool)
    is_desc = np.zeros(n_old, dtype=bool)
    shift_of = np.zeros(n_old, dtype=np.int64)
    in_sub[m_old] = True
    shift_of[m_old] = m_new_first - old.body_first[m_old]
    lvl_start = np.searchsorted(old.cell_level, np.arange(lmax + 2))
    for lv in range(1, lmax + 1):
        s0, s1 = int(lvl_start[lv]), int(lvl_start[lv + 1])
        if s0 == s1:
            continue
        par = old.cell_parent[s0:s1]
        take = np.flatnonzero(in_sub[par]) + s0
        if len(take) == 0:
            continue
        is_desc[take] = True
        in_sub[take] = True
        shift_of[take] = shift_of[old.cell_parent[take]]

    # --- per-level merge into the cold (level-contiguous, ascending
    # body_first) layout -------------------------------------------------
    n_act_levels = len(act_first)
    depth = max(n_act_levels, lmax + 1)
    act_newid: list[np.ndarray] = []
    old2new = np.full(n_old, -1, dtype=np.int64)

    out_first: list[np.ndarray] = []
    out_count: list[np.ndarray] = []
    out_parent: list[np.ndarray] = []
    out_level: list[np.ndarray] = []
    graft_rows: list[np.ndarray] = []    # new-id rows spliced from `old`
    graft_ids: list[np.ndarray] = []     # matching old cell ids
    level_base: list[int] = []
    base = 0

    for lv in range(depth):
        a_first = act_first[lv] if lv < n_act_levels else \
            np.empty(0, dtype=np.int64)
        a_count = act_count[lv] if lv < n_act_levels else \
            np.empty(0, dtype=np.int64)
        a_parent = act_parent[lv] if lv < n_act_levels else \
            np.empty(0, dtype=np.int64)
        a_graft = act_graft[lv] if lv < n_act_levels else \
            np.empty(0, dtype=np.int64)
        if lv <= lmax:
            s0, s1 = int(lvl_start[lv]), int(lvl_start[lv + 1])
            gids = np.flatnonzero(is_desc[s0:s1]) + s0
        else:
            gids = np.empty(0, dtype=np.int64)
        g_first = old.body_first[gids] + shift_of[gids]
        g_count = old.body_count[gids]

        n_a, n_g = len(a_first), len(gids)
        if n_a + n_g == 0:
            break
        first = np.concatenate((a_first, g_first))
        count = np.concatenate((a_count, g_count))
        o = np.argsort(first, kind="stable")
        posmap = np.empty(len(o), dtype=np.int64)
        posmap[o] = np.arange(len(o), dtype=np.int64)
        ids = base + posmap
        a_ids = ids[:n_a]
        g_ids_new = ids[n_a:]
        act_newid.append(a_ids)
        old2new[gids] = g_ids_new
        matched_here = a_graft >= 0
        old2new[a_graft[matched_here]] = a_ids[matched_here]

        parent = np.empty(n_a + n_g, dtype=np.int64)
        if lv == 0:
            parent[:n_a] = -1
        else:
            parent[:n_a] = act_newid[lv - 1][a_parent]
        parent[n_a:] = old2new[old.cell_parent[gids]]

        out_first.append(first[o])
        out_count.append(count[o])
        out_parent.append(parent[o])
        out_level.append(np.full(n_a + n_g, lv, dtype=np.int64))
        graft_rows.append(ids[n_a:])
        graft_ids.append(gids)
        level_base.append(base)
        base += n_a + n_g

    body_first = np.concatenate(out_first)
    body_count = np.concatenate(out_count)
    cell_parent = np.concatenate(out_parent)
    cell_level = np.concatenate(out_level)
    n_cells = len(body_first)

    first_child = np.full(n_cells, -1, dtype=np.int64)
    n_children = np.zeros(n_cells, dtype=np.int64)
    for lv in range(1, len(out_first)):
        par = out_parent[lv]
        if len(par) == 0:
            continue
        rp = np.flatnonzero(np.append(True, par[1:] != par[:-1]))
        lens = np.diff(np.append(rp, len(par)))
        first_child[par[rp]] = level_base[lv] + rp
        n_children[par[rp]] = lens

    cell_key = skeys[body_first]
    center = np.empty((n_cells, 3), dtype=np.float64)
    half = np.empty(n_cells, dtype=np.float64)
    g_rows = np.concatenate(graft_rows) if graft_rows else \
        np.empty(0, dtype=np.int64)
    g_old = np.concatenate(graft_ids) if graft_ids else \
        np.empty(0, dtype=np.int64)
    active_rows = np.ones(n_cells, dtype=bool)
    active_rows[g_rows] = False
    a_rows = np.flatnonzero(active_rows)
    # Geometry is a pure function of the cell's level prefix, so grafted
    # rows equal a cold recompute bitwise; only active rows are computed.
    c_act, h_act = cell_geometry(cell_key[a_rows], cell_level[a_rows],
                                 box, curve)
    center[a_rows] = c_act
    half[a_rows] = h_act
    center[g_rows] = old.center[g_old]
    half[g_rows] = old.half[g_old]

    tree = Octree(cell_key=cell_key, cell_level=cell_level,
                  cell_parent=cell_parent, first_child=first_child,
                  n_children=n_children, body_first=body_first,
                  body_count=body_count, order=order, keys=skeys,
                  box=box, curve=curve, nleaf=nleaf,
                  center=center, half=half)
    return tree, len(g_old)
