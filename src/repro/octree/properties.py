"""Per-cell opening radii for the multipole acceptance criterion (MAC).

Two MAC flavors are provided:

``"bh"``
    The classic Barnes & Hut criterion: a cell of side ``l`` may be used
    as a multipole by a target at distance ``d`` when ``l / d < theta``,
    i.e. the opening radius is ``r_crit = l / theta``.

``"bonsai"``
    The criterion of Bedorf, Gaburov & Portegies Zwart [9] used by the
    paper: ``r_crit = l / theta + delta`` where ``delta`` is the offset
    between the cell's geometric center and its center of mass.  The
    extra ``delta`` term protects against pathological mass placement in
    a cell, and distances are measured to the COM.

Both are evaluated against the *minimum* distance between the target
group's tight AABB and the cell COM, exactly as in the group-centric GPU
tree walk (all particles of a warp share one traversal).
"""

from __future__ import annotations

import numpy as np

from .tree import Octree


def compute_opening_radii(tree: Octree, theta: float, mac: str = "bonsai") -> Octree:
    """Fill ``tree.r_crit`` given the opening angle ``theta``.

    Must run after :func:`compute_moments` (needs ``com``).
    """
    if theta <= 0.0:
        raise ValueError("theta must be positive; use direct summation for theta=0")
    if tree.com is None:
        raise ValueError("compute_moments must run before compute_opening_radii")

    side = 2.0 * tree.half
    if mac == "bh":
        r_crit = side / theta
    elif mac == "bonsai":
        delta = np.linalg.norm(tree.com - tree.center, axis=1)
        r_crit = side / theta + delta
    else:
        raise ValueError(f"unknown MAC {mac!r}")
    # A cell can never be accepted by targets inside it; also guard
    # against zero-size cells (coincident particles).
    tree.r_crit = np.maximum(r_crit, 1.0e-30)
    return tree


def aabb_distance(bmin: np.ndarray, bmax: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Minimum Euclidean distance from points to an AABB (0 if inside).

    ``bmin``/``bmax`` may be a single box (3,) against many points (n, 3)
    or broadcast-compatible stacks of boxes and points.
    """
    d = np.maximum(np.maximum(bmin - points, 0.0), points - bmax)
    return np.sqrt(np.einsum("...k,...k->...", d, d))


def aabb_aabb_distance(amin: np.ndarray, amax: np.ndarray,
                       bmin: np.ndarray, bmax: np.ndarray) -> np.ndarray:
    """Minimum distance between two AABBs (0 when overlapping)."""
    d = np.maximum(np.maximum(amin - bmax, 0.0), bmin - amax)
    return np.sqrt(np.einsum("...k,...k->...", d, d))
