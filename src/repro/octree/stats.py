"""Tree structure statistics (diagnostics for examples and benches)."""

from __future__ import annotations

import dataclasses

import numpy as np

from .tree import Octree


@dataclasses.dataclass(frozen=True)
class TreeStats:
    """Shape summary of one octree."""

    n_bodies: int
    n_cells: int
    n_leaves: int
    depth: int
    mean_leaf_occupancy: float
    max_leaf_occupancy: int
    cells_per_level: np.ndarray
    branching_factor: float      # mean children per internal cell
    memory_bytes: int            # struct-of-arrays footprint

    def as_lines(self) -> list[str]:
        """Human-readable rendering."""
        return [
            f"bodies {self.n_bodies}, cells {self.n_cells} "
            f"({self.n_leaves} leaves), depth {self.depth}",
            f"leaf occupancy mean {self.mean_leaf_occupancy:.2f} "
            f"max {self.max_leaf_occupancy}",
            f"branching factor {self.branching_factor:.2f}",
            f"memory {self.memory_bytes / 1024:.1f} KB",
            "cells/level " + " ".join(str(int(c)) for c in self.cells_per_level),
        ]


def tree_stats(tree: Octree) -> TreeStats:
    """Compute structural statistics of a built octree."""
    is_leaf = tree.is_leaf
    leaves = np.flatnonzero(is_leaf)
    internal = np.flatnonzero(~is_leaf)
    per_level = np.bincount(tree.cell_level,
                            minlength=int(tree.cell_level.max()) + 1)
    mem = 0
    for name in ("cell_key", "cell_level", "cell_parent", "first_child",
                 "n_children", "body_first", "body_count"):
        mem += getattr(tree, name).nbytes
    for name in ("center", "half", "mass", "com", "quad", "bmin", "bmax",
                 "r_crit"):
        arr = getattr(tree, name)
        if arr is not None:
            mem += arr.nbytes
    return TreeStats(
        n_bodies=tree.n_bodies,
        n_cells=tree.n_cells,
        n_leaves=len(leaves),
        depth=tree.n_levels - 1,
        mean_leaf_occupancy=float(tree.body_count[leaves].mean()),
        max_leaf_occupancy=int(tree.body_count[leaves].max()),
        cells_per_level=per_level,
        branching_factor=float(tree.n_children[internal].mean())
        if len(internal) else 0.0,
        memory_bytes=int(mem),
    )
