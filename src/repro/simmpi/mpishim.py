"""Thin mpi4py adapter: the SimMPI surface over ``MPI.COMM_WORLD``.

This is the escape hatch to a *real* MPI fabric: launch the script
under ``mpiexec -n <ranks>`` and pass ``transport="mpi4py"``; every MPI
process becomes one rank and :class:`MPIWorld` maps the SimMPI
primitives onto mpi4py calls (``send``/``recv``/``allgather``/
``Barrier``).  The class subclasses :class:`SimWorld` purely to reuse
its send/recv accounting and tracing -- only the transport edges are
overridden -- so traffic metrics and traces keep working per rank.

Deliberately thin, with honest limitations:

- **No failure detection.** Real MPI has no portable peer-death
  signal; a rank that raises calls ``Abort`` and mpiexec tears the job
  down.  :class:`RecvTimeoutError` still works (implemented by polling
  ``Iprobe``), but :class:`RankFailedError` semantics and
  fault injection are exclusive to the in-process transports.
- **Per-rank observability only.** Each process holds its own metrics
  and trace; there is no parent to merge them (use the JSONL trace
  part-file workflow to combine post hoc).
- mpi4py is optional and never required by the test suite: everything
  here is gated on :func:`mpi_available`.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from .errors import RecvTimeoutError
from .runtime import SimWorld


def mpi_available() -> bool:
    """True when the optional mpi4py package is importable."""
    try:
        import mpi4py  # noqa: F401
        return True
    except ImportError:
        return False


class MPIWorld(SimWorld):
    """One MPI process's view of the world (rank = COMM_WORLD rank)."""

    transport = "mpi4py"
    portable_results = True

    def __init__(self, size: int | None = None, timeout: float = 120.0):
        from mpi4py import MPI
        self._mpi = MPI
        self._comm = MPI.COMM_WORLD
        world_size = self._comm.Get_size()
        if size is not None and size != world_size:
            raise RuntimeError(
                f"mpi4py transport running under {world_size} MPI "
                f"processes but {size} ranks were requested; launch "
                f"with mpiexec -n {size}")
        super().__init__(world_size, timeout=timeout)
        self.rank = self._comm.Get_rank()

    def set_phase(self, rank: int, name: str) -> None:
        self._rank_phase[rank] = name
        self.traffic.set_phase(name)

    # -- transport edges -----------------------------------------------------

    def _enqueue(self, src: int, dst: int, tag: int, payload: Any,
                 nbytes: int) -> None:
        self._comm.send(payload, dest=dst, tag=tag)

    def _pop(self, src: int, dst: int, tag: int,
             timeout: float | None = None) -> Any:
        budget = self.timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        while not self._comm.Iprobe(source=src, tag=tag):
            if time.monotonic() > deadline:
                raise RecvTimeoutError(
                    f"recv timeout: rank {dst} waiting for rank {src} "
                    f"tag {tag} after {budget:g}s")
            time.sleep(self.POLL_INTERVAL)
        return self._comm.recv(source=src, tag=tag)

    def try_pop(self, src: int, dst: int, tag: int) -> tuple[bool, Any]:
        if self._comm.Iprobe(source=src, tag=tag):
            return True, self._comm.recv(source=src, tag=tag)
        return False, None

    def probe(self, src: int, dst: int, tag: int) -> bool:
        return bool(self._comm.Iprobe(source=src, tag=tag))

    def barrier(self) -> None:
        self._comm.Barrier()

    def exchange(self, rank: int, generation: int, value: Any) -> list[Any]:
        return self._comm.allgather(value)

    # -- driver ---------------------------------------------------------------

    def run(self, fn: Callable, args: tuple = (), kwargs: dict | None = None,
            timeout: float = 600.0) -> list[Any]:
        """Run ``fn(comm, ...)`` as this MPI rank; allgather the results.

        Every rank returns the full result list, so call sites written
        for the in-process transports work unchanged.  An exception
        aborts the whole MPI job (no partial-failure recovery here).
        """
        from .comm import SimComm

        comm = SimComm(self, self.rank)
        try:
            result = fn(comm, *args, **(kwargs or {}))
        except BaseException:
            self._comm.Abort(1)
            raise
        return self._comm.allgather(result)
