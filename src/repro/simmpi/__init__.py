"""SimMPI: an in-process SPMD message-passing runtime.

The paper's parallel algorithm is written against MPI.  This package
provides a faithful in-process substitute: each logical rank runs the
*same* SPMD program in its own thread, communicating through a shared
:class:`SimWorld` that implements blocking point-to-point and collective
operations with mpi4py-like semantics and byte-accurate traffic
accounting.  Tests run the real distributed algorithm on 2-16 ranks and
the traffic tallies feed the at-scale network performance model.
"""

from .traffic import TrafficLog
from .comm import SimComm
from .runtime import SimWorld, spmd_run

__all__ = ["TrafficLog", "SimComm", "SimWorld", "spmd_run"]
