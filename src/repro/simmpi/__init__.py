"""SimMPI: a pluggable SPMD message-passing runtime.

The paper's parallel algorithm is written against MPI.  This package
provides substitutes at three fidelity levels behind one contract
(see :mod:`repro.simmpi.transport` and ``docs/TRANSPORTS.md``):

- ``threads`` -- each logical rank runs the *same* SPMD program in its
  own thread, communicating through a shared :class:`SimWorld` with
  mpi4py-like semantics and byte-accurate traffic accounting;
- ``process`` -- each rank is a forked OS process
  (:class:`ProcessWorld`), ndarray payloads moving through
  ``multiprocessing.shared_memory``: true multi-core execution with
  identical accounting;
- ``mpi4py`` -- a thin shim over ``MPI.COMM_WORLD`` for launching
  under mpiexec (optional dependency).

Failure semantics: a rank that dies is *marked* on the world, and every
peer blocked on it receives a typed :class:`RankFailedError` within one
poll interval; a live-but-silent peer produces :class:`RecvTimeoutError`
after the configured deadline.  :mod:`repro.faults` builds on these
hooks to inject deterministic message-level faults on the in-process
transports.
"""

from .errors import (
    RankFailedError,
    RecvTimeoutError,
    SimMPIError,
    SimulatedRankCrash,
)
from .traffic import TrafficLog
from .comm import Request, SimComm
from .runtime import SimWorld, resolve_run_errors, spmd_run
from .transport import TRANSPORTS, make_world, world_transport

__all__ = [
    "TrafficLog",
    "Request",
    "SimComm",
    "SimWorld",
    "spmd_run",
    "resolve_run_errors",
    "TRANSPORTS",
    "make_world",
    "world_transport",
    "SimMPIError",
    "RecvTimeoutError",
    "RankFailedError",
    "SimulatedRankCrash",
]


def __getattr__(name: str):
    # ProcessWorld imports multiprocessing machinery; load lazily so
    # plain threaded use never pays for it.
    if name in ("ProcessWorld", "ProcessRankWorld"):
        from . import process
        return getattr(process, name)
    if name == "MPIWorld":
        from .mpishim import MPIWorld
        return MPIWorld
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
