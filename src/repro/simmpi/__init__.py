"""SimMPI: an in-process SPMD message-passing runtime.

The paper's parallel algorithm is written against MPI.  This package
provides a faithful in-process substitute: each logical rank runs the
*same* SPMD program in its own thread, communicating through a shared
:class:`SimWorld` that implements blocking point-to-point and collective
operations with mpi4py-like semantics and byte-accurate traffic
accounting.  Tests run the real distributed algorithm on 2-16 ranks and
the traffic tallies feed the at-scale network performance model.

Failure semantics: a rank that dies is *marked* on the world, and every
peer blocked on it receives a typed :class:`RankFailedError` within one
poll interval; a live-but-silent peer produces :class:`RecvTimeoutError`
after the configured deadline.  :mod:`repro.faults` builds on these
hooks to inject deterministic message-level faults.
"""

from .errors import (
    RankFailedError,
    RecvTimeoutError,
    SimMPIError,
    SimulatedRankCrash,
)
from .traffic import TrafficLog
from .comm import Request, SimComm
from .runtime import SimWorld, spmd_run

__all__ = [
    "TrafficLog",
    "Request",
    "SimComm",
    "SimWorld",
    "spmd_run",
    "SimMPIError",
    "RecvTimeoutError",
    "RankFailedError",
    "SimulatedRankCrash",
]
