"""True multi-core SimMPI: ranks as forked processes + shared memory.

The threaded :class:`~repro.simmpi.runtime.SimWorld` runs every rank in
one interpreter, so the Python half of the tree walk serialises on the
GIL and "4 ranks" buys no wall-clock on one machine.  This module keeps
the exact SPMD programming model -- the same :class:`SimComm`, the same
typed errors, the same traffic/trace accounting -- but backs it with
``multiprocessing`` workers:

- :class:`ProcessWorld` is the **parent-side handle**: it owns the
  shared plumbing (one inbox queue per rank, a cross-process barrier,
  a failed-rank flag array), launches the workers, watches for hard
  deaths, and afterwards merges every worker's metrics, traffic, trace
  events, receive-wait totals and fault statistics back into itself --
  so ``world.traffic.total_bytes`` or ``world.metrics.render()`` read
  identically to a threaded run.
- :class:`ProcessRankWorld` is the **worker-side world**: a
  :class:`SimWorld` subclass living inside one forked rank.  It reuses
  the base class's ``push``/``pop`` accounting and tracing verbatim and
  overrides only the transport edges (enqueue/dequeue/barrier/
  collectives), so both transports book bytes and spans through the
  same code -- the cross-transport equality tests lean on that.
- ndarray-bearing messages (particle exchange columns, LET trees,
  boundary structures) travel as pickle-protocol-5 streams whose
  buffers live in ``multiprocessing.shared_memory`` segments
  (:mod:`repro.simmpi.shm`), not in pickled queue bytes.

Failure semantics match the threaded world: a rank that raises marks
itself in the shared flag array and aborts the barrier before exiting,
so peers blocked on it get :class:`RankFailedError` within one poll
interval; a rank that dies *without* reporting (segfault, ``kill -9``)
is detected by the parent watchdog, which marks it the same way -- a
dead worker fails fast, it never hangs the run.

Worlds are single-run: the barrier abort used for failure propagation
is permanent, exactly like the threaded world.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as _queue
import threading
import time
import traceback
from collections import defaultdict, deque
from typing import Any, Callable

from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NULL_TRACER, Tracer
from .errors import RankFailedError, RecvTimeoutError
from .runtime import SimWorld, resolve_run_errors
from .shm import SHM_MIN_BYTES, decode_payload, discard_payload, encode_payload
from .traffic import TrafficLog

#: Sentinel distinguishing "nothing ready" from a ``None`` payload.
_MISSING = object()

#: Grace period between noticing a worker died and declaring it failed
#: without a report (its result may still be in the queue pipe).
_DEATH_GRACE = 1.0


def _portable_exc(exc: BaseException) -> BaseException:
    """Return ``exc`` if it pickles cleanly, else a summarising stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        tb = "".join(traceback.format_exception(exc)).strip().splitlines()
        return RuntimeError(
            f"unpicklable {type(exc).__name__}: {exc!r} "
            f"(last frame: {tb[-2].strip() if len(tb) > 1 else '?'})")


def _rebuild_clock(clock):
    """Worker-local clock with the same semantics as a template's (a
    fresh :class:`VirtualClock` lane is identical to a lane of the
    shared clock -- every rank only ever advances its own)."""
    from ..obs.clock import VirtualClock, WallClock

    if isinstance(clock, VirtualClock):
        return VirtualClock(tick=clock.tick, start=clock.start)
    return WallClock()


def _rebuild_tracer(template) -> Tracer:
    """Worker-local tracer with the same clock semantics as ``template``.

    The parent's tracer object arrives in the worker as a fork copy;
    recording into it would be invisible to the parent, and its sinks
    may be files the parent owns.  Each rank therefore records into a
    private buffer tracer whose clock is rebuilt from the template's
    configuration and ships its events back in the worker report.
    """
    return Tracer(clock=_rebuild_clock(template.clock))


class ProcessRankWorld(SimWorld):
    """One rank's world inside a forked worker process.

    ``spec`` is the plumbing dict built by :meth:`ProcessWorld._spec`
    and inherited through ``fork``: inbox queues, the shared barrier,
    the failed-rank flag array.  All observability state (metrics,
    traffic, tracer, recv-wait) is **rank-local** and merged by the
    parent after the run.
    """

    transport = "process"
    #: SPMD programs returning driver objects should ship a picklable
    #: snapshot instead (see ``ParallelSimulation.portable``).
    portable_results = True

    def __init__(self, spec: dict, rank: int):
        super().__init__(spec["size"], timeout=spec["timeout"])
        self.rank = rank
        self._inbox = spec["inboxes"][rank]
        self._outboxes = spec["inboxes"]
        self._mp_barrier = spec["barrier"]
        self._flags = spec["failed_flags"]
        self._shm_threshold = spec["shm_threshold"]
        self._p2p_stash: dict[tuple[int, int], deque] = defaultdict(deque)
        self._coll_stash: dict[tuple[int, int], Any] = {}

    # -- phase labels are per-rank here -------------------------------------

    def set_phase(self, rank: int, name: str) -> None:
        """Every rank labels its own traffic log (they are merged by
        summing per-phase series, so all ranks must switch phase at the
        same program point -- which they do: ``set_phase`` is
        collective)."""
        self._rank_phase[rank] = name
        self.traffic.set_phase(name)
        hb = self.health
        if hb is not None:
            hb.phase(rank, name)

    # -- failure flags are shared across processes ---------------------------

    def rank_failed(self, rank: int) -> bool:
        return bool(self._flags[rank])

    @property
    def failed_ranks(self):
        return frozenset(r for r in range(self.size) if self._flags[r])

    def mark_rank_failed(self, rank: int, exc: BaseException | None = None) -> None:
        with self._failed_lock:
            self._failed[rank] = exc
        if not self._flags[rank]:
            self._flags[rank] = 1
            try:
                self._mp_barrier.abort()
            except Exception:
                pass

    def _first_failed(self) -> int:
        for r in range(self.size):
            if self._flags[r]:
                return r
        return -1

    # -- tracing: rebuild locally, ship events back --------------------------

    def attach_tracer(self, tracer) -> None:
        if tracer is None or not getattr(tracer, "enabled", False):
            return
        if self.tracer is not NULL_TRACER:
            return  # one tracer per rank per run
        local = _rebuild_tracer(tracer)
        with self._obs_lock:
            self.tracer = local
        local.bind_metrics(self.metrics)
        if self.health is not None:
            self.health.use_clock(local.clock)

    def attach_health(self, board) -> None:
        """Build a worker-local heartbeat board from the fork-copied
        template (beating into the parent's copy would be invisible to
        it).  The local board snapshots back through the worker report
        (:meth:`finalize_report`) and the parent merges it."""
        from ..obs.health import HeartbeatBoard

        if board is None or self.health is not None:
            return
        clock = self.tracer.clock if self.tracer is not NULL_TRACER \
            else _rebuild_clock(board.clock)
        local = HeartbeatBoard(self.size, clock=clock)
        with self._obs_lock:
            self.health = local
        local.bind_metrics(self.metrics)

    # -- transport edges ------------------------------------------------------

    def _enqueue(self, src: int, dst: int, tag: int, payload: Any,
                 nbytes: int) -> None:
        self._outboxes[dst].put(
            ("p", src, tag, encode_payload(payload, self._shm_threshold)))

    def _admit(self, item) -> None:
        """File one inbound queue item into the local stashes."""
        if item[0] == "p":
            _, src, tag, body = item
            self._admit_p2p(src, tag, body)
        else:
            _, gen, src, body = item
            self._coll_stash[(src, gen)] = decode_payload(body)

    def _admit_p2p(self, src: int, tag: int, body) -> None:
        self._p2p_stash[(src, tag)].append(decode_payload(body))

    def _drain_nowait(self) -> None:
        while True:
            try:
                item = self._inbox.get_nowait()
            except _queue.Empty:
                return
            self._admit(item)

    def _wait_one(self, timeout: float) -> bool:
        """Block up to ``timeout`` for one inbound item; admit it."""
        try:
            item = self._inbox.get(timeout=max(timeout, 0.0))
        except _queue.Empty:
            return False
        self._admit(item)
        return True

    def _take_p2p(self, src: int, tag: int):
        stash = self._p2p_stash.get((src, tag))
        if stash:
            return stash.popleft()
        return _MISSING

    def _pop(self, src: int, dst: int, tag: int,
             timeout: float | None = None) -> Any:
        budget = self.timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        fail_polls = 0
        while True:
            self._drain_nowait()
            payload = self._take_p2p(src, tag)
            if payload is not _MISSING:
                return payload
            remaining = deadline - time.monotonic()
            if self._wait_one(min(self.POLL_INTERVAL, max(remaining, 0.0))):
                continue
            # A dead sender's last messages may still be in the queue
            # pipe when its failed flag appears (the feeder thread
            # flushes at process exit); require a few consecutive empty
            # polls before concluding nothing more is coming.
            fail_polls = fail_polls + 1 if self.rank_failed(src) else 0
            if fail_polls >= 3:
                raise RankFailedError(src, waiting_rank=dst,
                                      detail=f"recv tag {tag}")
            if remaining <= 0:
                raise RecvTimeoutError(
                    f"recv timeout: rank {dst} waiting for rank {src} "
                    f"tag {tag} after {budget:g}s")

    def try_pop(self, src: int, dst: int, tag: int) -> tuple[bool, Any]:
        self._drain_nowait()
        payload = self._take_p2p(src, tag)
        if payload is _MISSING:
            return False, None
        return True, payload

    def probe(self, src: int, dst: int, tag: int) -> bool:
        self._drain_nowait()
        return bool(self._p2p_stash.get((src, tag)))

    # -- collectives -----------------------------------------------------------

    def barrier(self) -> None:
        try:
            self._mp_barrier.wait(timeout=self.timeout)
        except threading.BrokenBarrierError:
            failed = self._first_failed()
            if failed >= 0:
                raise RankFailedError(
                    failed, detail="collective aborted") from None
            raise

    def exchange(self, rank: int, generation: int, value: Any) -> list[Any]:
        """Allgather via point-to-point deposits keyed by generation.

        Each destination gets its own encoded copy (shared-memory
        segments are consumed once by their receiver).  Matching on the
        caller's collective generation preserves standard MPI ordering
        discipline without the threaded board's double barrier.
        """
        hb = self.health
        if hb is not None:
            hb.op(rank)
        for r in range(self.size):
            if r != rank:
                self._outboxes[r].put(
                    ("x", generation, rank,
                     encode_payload(value, self._shm_threshold)))
        out = []
        for r in range(self.size):
            out.append(value if r == rank
                       else self._pop_collective(r, generation, rank))
        return out

    def _pop_collective(self, src: int, generation: int, rank: int) -> Any:
        key = (src, generation)
        deadline = time.monotonic() + self.timeout
        fail_polls = 0
        while True:
            self._drain_nowait()
            if key in self._coll_stash:
                return self._coll_stash.pop(key)
            remaining = deadline - time.monotonic()
            if self._wait_one(min(self.POLL_INTERVAL, max(remaining, 0.0))):
                continue
            fail_polls = fail_polls + 1 if self.rank_failed(src) else 0
            if fail_polls >= 3:
                raise RankFailedError(
                    src, waiting_rank=rank,
                    detail=f"no deposit in generation {generation}")
            if remaining <= 0:
                raise RecvTimeoutError(
                    f"collective timeout: rank {rank} waiting for rank "
                    f"{src} in generation {generation}")

    # -- teardown ---------------------------------------------------------------

    def finalize_report(self) -> dict:
        """Everything the parent merges back: metrics, waits, events."""
        events = self.tracer.events() if self.tracer.enabled else []
        with self._obs_lock:
            recv_wait = dict(self._recv_wait)
        return {"rank": self.rank,
                "metrics": self.metrics.snapshot(),
                "recv_wait": recv_wait,
                "events": events,
                "health": self.health.snapshot()
                if self.health is not None else None,
                "extra": self._report_extra()}

    def _report_extra(self) -> dict:
        """Subclass hook (fault statistics, op counts)."""
        return {}

    def _discard_item(self, item) -> None:
        """Unlink whatever shared memory one queue item references."""
        discard_payload(item[3])

    def drain_inbox(self) -> None:
        """Discard undelivered messages, unlinking their segments."""
        while True:
            try:
                item = self._inbox.get_nowait()
            except _queue.Empty:
                return
            try:
                self._discard_item(item)
            except Exception:
                pass


def _worker_main(spec: dict, fn: Callable, args: tuple, kwargs: dict,
                 rank: int) -> None:
    """Entry point of one forked rank."""
    from .comm import SimComm

    if spec.get("fault") is not None:
        from ..faults.process import FaultyProcessRankWorld
        world: ProcessRankWorld = FaultyProcessRankWorld(spec, rank)
    else:
        world = ProcessRankWorld(spec, rank)
    comm = SimComm(world, rank)
    status, payload = "ok", None
    try:
        payload = fn(comm, *args, **kwargs)
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        world.mark_rank_failed(rank, exc)
        status, payload = "error", _portable_exc(exc)
    finally:
        world.drain_inbox()
        report = world.finalize_report()
        try:
            blob = pickle.dumps((status, payload, report), protocol=5)
        except Exception as exc:
            blob = pickle.dumps(
                ("error",
                 RuntimeError(f"rank {rank} result not picklable: {exc!r}"),
                 report), protocol=5)
        spec["results"].put((rank, blob))


class ProcessWorld:
    """Parent-side handle for a process-transport SPMD run.

    Mirrors the read surface of :class:`SimWorld` (``metrics``,
    ``traffic``, ``recv_waits``, ``failed_ranks``, ``attach_tracer``)
    so harness code can treat both transports uniformly; the numbers
    appear once :meth:`run` has merged the worker reports.

    Parameters
    ----------
    size:
        Number of ranks (= worker processes).
    timeout:
        Receive/barrier deadline inside the workers, like
        :class:`SimWorld`'s.
    shm_threshold:
        Minimum out-of-band payload bytes before a message's buffers
        move through a shared-memory segment instead of the queue pipe.
    watchdog_grace:
        Seconds the parent watchdog waits between noticing a worker
        died and declaring it failed without a report (its result may
        still be in the queue pipe).  Booked as the
        ``watchdog_grace_seconds`` gauge so post-mortems record it.
    """

    transport = "process"

    def __init__(self, size: int, timeout: float = 120.0,
                 shm_threshold: int = SHM_MIN_BYTES,
                 watchdog_grace: float = _DEATH_GRACE):
        if size < 1:
            raise ValueError("size must be >= 1")
        if watchdog_grace <= 0:
            raise ValueError("watchdog_grace must be positive")
        self.size = size
        self.timeout = timeout
        self.shm_threshold = shm_threshold
        self.watchdog_grace = watchdog_grace
        self.metrics = MetricsRegistry()
        self.metrics.gauge(
            "watchdog_grace_seconds",
            "Grace period before a silent dead worker is declared failed"
        ).set(watchdog_grace)
        self.traffic = TrafficLog(self.metrics)
        self.tracer = NULL_TRACER
        self.health = None
        self._ctx = multiprocessing.get_context("fork")
        self._inboxes = [self._ctx.Queue() for _ in range(size)]
        self._results = self._ctx.Queue()
        self._barrier = self._ctx.Barrier(size)
        self._failed_flags = self._ctx.Array("i", size, lock=False)
        self._recv_wait: dict[int, float] = defaultdict(float)
        self._op_count: dict[int, int] = defaultdict(int)
        self._events: list = []
        self._used = False

    # -- observability mirror -------------------------------------------------

    def attach_tracer(self, tracer) -> None:
        """Register the tracer that receives the merged per-rank events
        after the run (idempotent, same contract as ``SimWorld``)."""
        if self.tracer is not NULL_TRACER and self.tracer is not tracer:
            raise ValueError("a different tracer is already attached")
        self.tracer = tracer
        tracer.bind_metrics(self.metrics)
        if self.health is not None:
            self.health.use_clock(tracer.clock)

    def attach_health(self, board) -> None:
        """Register the heartbeat board that absorbs the per-rank board
        snapshots after the run (idempotent, mirrors ``SimWorld``).
        The board itself is shipped to the workers as a fork-copy
        template; each rank rebuilds a local one and reports back."""
        if self.health is not None and self.health is not board:
            raise ValueError("a different health board is already attached")
        self.health = board
        if self.tracer is not NULL_TRACER:
            board.use_clock(self.tracer.clock)
        board.bind_metrics(self.metrics)

    def recv_wait_seconds(self, rank: int) -> float:
        return self._recv_wait[rank]

    @property
    def recv_waits(self) -> list[float]:
        return [self._recv_wait[r] for r in range(self.size)]

    @property
    def failed_ranks(self) -> frozenset[int]:
        return frozenset(r for r in range(self.size)
                         if self._failed_flags[r])

    def rank_failed(self, rank: int) -> bool:
        return bool(self._failed_flags[rank])

    def events(self) -> list:
        """Merged trace events from every rank, ordered (rank, seq)."""
        return list(self._events)

    # -- spec / hooks ----------------------------------------------------------

    def _spec(self) -> dict:
        return {"size": self.size,
                "timeout": self.timeout,
                "shm_threshold": self.shm_threshold,
                "inboxes": self._inboxes,
                "results": self._results,
                "barrier": self._barrier,
                "failed_flags": self._failed_flags,
                "fault": None}

    def _merge_extra(self, rank: int, extra: dict) -> None:
        """Subclass hook for per-rank report extras (fault stats)."""
        for r, n in extra.get("op_count", {}).items():
            self._op_count[int(r)] += int(n)

    def _mark_failed_from_parent(self, rank: int) -> None:
        if not self._failed_flags[rank]:
            self._failed_flags[rank] = 1
            try:
                self._barrier.abort()
            except Exception:
                pass

    # -- the driver ------------------------------------------------------------

    def run(self, fn: Callable, args: tuple = (), kwargs: dict | None = None,
            timeout: float = 600.0) -> list[Any]:
        """Run ``fn(comm, *args, **kwargs)`` on every rank; return results.

        Forks ``size`` workers, watches them (a worker that dies without
        reporting is marked failed so survivors unblock), then merges
        every report back into this world's metrics/traffic/trace and
        applies the shared run-level error policy
        (:func:`~repro.simmpi.runtime.resolve_run_errors`).
        """
        if self._used:
            raise RuntimeError(
                "ProcessWorld is single-run (its barrier abort is "
                "permanent); build a fresh world per run")
        self._used = True
        spec = self._spec()
        procs = [self._ctx.Process(target=_worker_main,
                                   args=(spec, fn, args, kwargs or {}, r),
                                   name=f"simmpi-rank-{r}", daemon=True)
                 for r in range(self.size)]
        for p in procs:
            p.start()

        blobs: dict[int, bytes] = {}
        hard_dead: dict[int, int | None] = {}
        dead_since: dict[int, float] = {}
        deadline = time.monotonic() + timeout
        try:
            while len(blobs) + len(hard_dead) < self.size:
                try:
                    rank, blob = self._results.get(timeout=0.05)
                    blobs[rank] = blob
                    continue
                except _queue.Empty:
                    pass
                now = time.monotonic()
                for r, p in enumerate(procs):
                    if r in blobs or r in hard_dead or p.is_alive():
                        continue
                    # Dead without a report: give its queued report a
                    # moment to surface, then declare a hard death.
                    t0 = dead_since.setdefault(r, now)
                    if now - t0 >= self.watchdog_grace:
                        hard_dead[r] = p.exitcode
                        self._mark_failed_from_parent(r)
                if now > deadline:
                    missing = self.size - len(blobs) - len(hard_dead)
                    for r in range(self.size):
                        self._mark_failed_from_parent(r)
                    raise TimeoutError(
                        f"{missing} ranks still running after {timeout}s")
        finally:
            for p in procs:
                p.join(timeout=5.0)
            for p in procs:
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=5.0)
            self._drain_undelivered()

        results: list[Any] = [None] * self.size
        errors: list[tuple[int, BaseException]] = []
        for r in range(self.size):
            if r in hard_dead:
                errors.append((r, RankFailedError(
                    r, detail=f"worker process died "
                              f"(exitcode {hard_dead[r]})")))
                continue
            status, payload, report = pickle.loads(blobs[r])
            self._merge_report(report)
            if status == "ok":
                results[r] = payload
            else:
                errors.append((r, payload))
        self._flush_events()
        resolve_run_errors(errors)
        return results

    # -- merging ---------------------------------------------------------------

    def _merge_report(self, report: dict) -> None:
        self.metrics.merge_snapshot(report["metrics"])
        for r, sec in report["recv_wait"].items():
            self._recv_wait[int(r)] += sec
        self._events.extend(report["events"])
        health = report.get("health")
        if health is not None and self.health is not None:
            self.health.merge(health)
        self._merge_extra(report["rank"], report.get("extra", {}))

    def _flush_events(self) -> None:
        """Push merged events into the attached tracer's sinks.

        Events keep their original (rank, seq) identity, and are
        emitted in that order so streaming sinks' per-rank part files
        stay seq-sorted -- exports are then byte-identical to a
        threaded run under a virtual clock.
        """
        self._events.sort(key=lambda e: (e.rank, e.seq))
        if self.tracer is NULL_TRACER or not self._events:
            return
        for sink in self.tracer.sinks:
            for ev in self._events:
                sink.emit(ev)

    def _drain_undelivered(self) -> None:
        """Unlink shared-memory segments of never-received messages."""
        for q in self._inboxes:
            while True:
                try:
                    item = q.get_nowait()
                except _queue.Empty:
                    break
                except (OSError, ValueError):
                    break
                try:
                    discard_payload(item[3])
                except Exception:
                    pass
