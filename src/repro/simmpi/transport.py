"""Transport registry: one SPMD programming model, pluggable substrates.

Every transport exposes the same contract -- a *world* carrying
``size``/``timeout``/``metrics``/``traffic``/``attach_tracer`` plus the
message primitives :class:`~repro.simmpi.comm.SimComm` drives -- so the
simulation, the fault harness and the observability stack are written
once and run unchanged on any of:

``threads``
    :class:`~repro.simmpi.runtime.SimWorld` -- every rank is a thread
    of this process sharing one address space.  Deterministic, cheap,
    zero-copy; serialised on the GIL.
``process``
    :class:`~repro.simmpi.process.ProcessWorld` -- every rank is a
    forked OS process; ndarray payloads travel through
    ``multiprocessing.shared_memory``.  True multi-core.
``mpi4py``
    :class:`~repro.simmpi.mpishim.MPIWorld` -- a thin adapter over
    ``MPI.COMM_WORLD`` for running one rank per ``mpiexec`` process.
    Only available when mpi4py is installed (it is optional and never
    required by the test suite).

See ``docs/TRANSPORTS.md`` for the feature matrix.
"""

from __future__ import annotations

from typing import Any

#: Recognised transport names, in preference order.
TRANSPORTS = ("threads", "process", "mpi4py")


def world_transport(world: Any) -> str:
    """Name of the transport a world object implements."""
    return getattr(world, "transport", "threads")


def make_world(size: int, transport: str = "threads",
               timeout: float = 120.0, schedule=None, seed: int = 0,
               watchdog_grace: float | None = None, **kwargs: Any):
    """Build a world for ``transport``.

    ``schedule`` (a :class:`~repro.faults.FaultSchedule`) selects the
    fault-injecting variant of the transport; ``seed`` feeds its
    deterministic lottery.  ``watchdog_grace`` tunes the process
    transport's dead-worker watchdog (ignored by transports that have
    no watchdog).  Extra ``kwargs`` go to the world constructor
    (e.g. ``shm_threshold`` for ``process``).
    """
    if transport == "process" and watchdog_grace is not None:
        kwargs["watchdog_grace"] = watchdog_grace
    if transport == "threads":
        from .runtime import SimWorld
        if schedule is not None:
            from ..faults import FaultyWorld
            return FaultyWorld(size, schedule, seed=seed, timeout=timeout,
                               **kwargs)
        return SimWorld(size, timeout=timeout, **kwargs)
    if transport == "process":
        from .process import ProcessWorld
        if schedule is not None:
            from ..faults.process import FaultyProcessWorld
            return FaultyProcessWorld(size, schedule, seed=seed,
                                      timeout=timeout, **kwargs)
        return ProcessWorld(size, timeout=timeout, **kwargs)
    if transport == "mpi4py":
        from .mpishim import MPIWorld, mpi_available
        if not mpi_available():
            raise RuntimeError(
                "transport 'mpi4py' requires the mpi4py package "
                "(launch under mpiexec; see docs/TRANSPORTS.md)")
        if schedule is not None:
            raise NotImplementedError(
                "fault injection is not supported on the mpi4py shim")
        return MPIWorld(size, timeout=timeout, **kwargs)
    raise ValueError(
        f"unknown transport {transport!r}; expected one of {TRANSPORTS}")
