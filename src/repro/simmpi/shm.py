"""Shared-memory payload codec for the process transport.

A message crossing a :class:`~repro.simmpi.process.ProcessWorld` rank
boundary is serialised with pickle protocol 5; every out-of-band buffer
(numpy array data, bytes blocks) above :data:`SHM_MIN_BYTES` total is
written into **one** ``multiprocessing.shared_memory`` segment instead
of being copied through the queue pipe.  The receiver attaches, copies
each buffer into private memory, and unlinks the segment -- so a
received particle array is always an independent, writable copy:
mutating it can never corrupt the sender's array, and no view outlives
the segment (docs/TRANSPORTS.md, "shared-memory lifetime").

The copy-out on receive is deliberate.  Returning live views into the
segment would save one memcpy but make every received array's lifetime
equal to the segment's, pushing unlink responsibility into numerical
code that has no idea it holds shared memory; a leaked segment survives
the process.  One bounded copy per side (sender packs, receiver
unpacks) keeps the zero-pickle fast path while the cleanup rule stays
local to the transport.

Cleanup protocol: the **receiver** unlinks.  The sender unregisters the
segment from its own ``resource_tracker`` right after creation (the
receiver's tracker adopts it on attach), so neither side double-frees
and a clean run leaks nothing.  If a receiver dies before attaching,
the worker teardown path drains its inbox and unlinks every pending
descriptor; only a hard-killed worker can leak segments (as with real
MPI transports, the OS cleans ``/dev/shm`` at reboot).
"""

from __future__ import annotations

import pickle
from multiprocessing import resource_tracker, shared_memory

#: Messages whose out-of-band buffers total fewer bytes than this are
#: pickled inline through the queue pipe; the shared-memory round trip
#: only pays above it.
SHM_MIN_BYTES = 1 << 15


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Drop the creating process's resource-tracker registration.

    Ownership moves to the receiver (whose attach re-registers it);
    without this the sender's tracker would try to unlink the segment a
    second time at interpreter exit and warn about a leak.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def encode_payload(payload, threshold: int = SHM_MIN_BYTES):
    """Serialise ``payload`` for the inter-process queue.

    Returns ``("inline", data, buffers)`` for small messages or
    ``("shm", data, segment_name, lengths)`` when the out-of-band
    buffers were packed into a shared-memory segment.  ``data`` is the
    protocol-5 pickle stream with the buffers extracted either way, so
    large array payloads are never copied into the pickle bytes.
    """
    buffers: list[pickle.PickleBuffer] = []
    data = pickle.dumps(payload, protocol=5, buffer_callback=buffers.append)
    views = [b.raw() for b in buffers]
    total = sum(v.nbytes for v in views)
    if total < threshold:
        out = ("inline", data, [v.tobytes() for v in views])
    else:
        seg = shared_memory.SharedMemory(create=True, size=max(total, 1))
        offset = 0
        lengths = []
        for v in views:
            n = v.nbytes
            seg.buf[offset:offset + n] = v.cast("B")
            lengths.append(n)
            offset += n
        name = seg.name
        _untrack(seg)
        seg.close()
        out = ("shm", data, name, lengths)
    for b in buffers:
        b.release()
    return out


def decode_payload(env):
    """Reconstruct a payload produced by :func:`encode_payload`.

    Shared-memory buffers are copied out and the segment is unlinked
    here -- the only place receive-side cleanup happens.
    """
    kind = env[0]
    if kind == "inline":
        _, data, raw = env
        return pickle.loads(data, buffers=[bytearray(b) for b in raw])
    _, data, name, lengths = env
    seg = shared_memory.SharedMemory(name=name)
    try:
        buffers = []
        offset = 0
        for n in lengths:
            buffers.append(bytearray(seg.buf[offset:offset + n]))
            offset += n
        return pickle.loads(data, buffers=buffers)
    finally:
        seg.close()
        seg.unlink()


def discard_payload(env) -> None:
    """Release a payload without decoding it (inbox teardown drain)."""
    if env[0] == "shm":
        try:
            seg = shared_memory.SharedMemory(name=env[2])
            seg.close()
            seg.unlink()
        except FileNotFoundError:
            pass
