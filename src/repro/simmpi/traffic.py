"""Byte-accurate communication accounting for SimMPI.

Every send and collective is recorded so the scaling benchmarks can
report, per algorithm phase, how many bytes crossed the (simulated)
interconnect -- the quantity the paper's LET strategy minimises.
"""

from __future__ import annotations

import dataclasses
import pickle
import threading
from collections import defaultdict

import numpy as np


def payload_bytes(obj) -> int:
    """Size of a message payload in bytes.

    Numpy arrays are counted exactly; other Python objects are measured
    by their pickle length (what a real MPI pickle transport would ship).
    """
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (list, tuple)) and all(isinstance(x, np.ndarray) for x in obj):
        return sum(x.nbytes for x in obj)
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 0


@dataclasses.dataclass
class PhaseTraffic:
    """Aggregate traffic within one named phase."""

    n_messages: int = 0
    n_bytes: int = 0
    n_collectives: int = 0

    def add_message(self, nbytes: int) -> None:
        self.n_messages += 1
        self.n_bytes += nbytes

    def add_collective(self, nbytes: int) -> None:
        self.n_collectives += 1
        self.n_bytes += nbytes


class TrafficLog:
    """Thread-safe traffic tally shared by all ranks of a SimWorld."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.phases: dict[str, PhaseTraffic] = defaultdict(PhaseTraffic)
        self.p2p_bytes: dict[tuple[int, int], int] = defaultdict(int)
        self._phase = "default"

    def set_phase(self, name: str) -> None:
        """Label subsequent traffic (phases mirror Table II rows)."""
        with self._lock:
            self._phase = name

    def record_send(self, src: int, dst: int, nbytes: int) -> None:
        with self._lock:
            self.phases[self._phase].add_message(nbytes)
            self.p2p_bytes[(src, dst)] += nbytes

    def record_collective(self, nbytes: int) -> None:
        with self._lock:
            self.phases[self._phase].add_collective(nbytes)

    @property
    def total_bytes(self) -> int:
        """All bytes shipped, across phases."""
        with self._lock:
            return sum(p.n_bytes for p in self.phases.values())

    def summary(self) -> dict[str, dict[str, int]]:
        """Per-phase {messages, collectives, bytes} snapshot."""
        with self._lock:
            return {name: {"messages": p.n_messages,
                           "collectives": p.n_collectives,
                           "bytes": p.n_bytes}
                    for name, p in self.phases.items()}
