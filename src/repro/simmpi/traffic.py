"""Byte-accurate communication accounting for SimMPI.

Every send and collective is recorded so the scaling benchmarks can
report, per algorithm phase, how many bytes crossed the (simulated)
interconnect -- the quantity the paper's LET strategy minimises.

Since the observability PR, :class:`TrafficLog` is a thin view over a
:class:`~repro.obs.metrics.MetricsRegistry`: every tally lives as a
labelled metric series (``traffic_bytes_total{phase=...}``,
``traffic_p2p_bytes_total{src=...,dst=...}``, ...) and the legacy
methods read those series back, so the registry and the log can never
disagree -- one source of truth, two views.
"""

from __future__ import annotations

import pickle
import sys

from ..obs.metrics import MetricsRegistry


def payload_bytes(obj, traffic: "TrafficLog | None" = None) -> int:
    """Size of a message payload in bytes.

    Numpy arrays are counted exactly; other Python objects are measured
    by their pickle length (what a real MPI pickle transport would
    ship).  An unpicklable payload falls back to a shallow
    ``sys.getsizeof`` estimate -- never silently zero -- and, when a
    :class:`TrafficLog` is supplied, bumps its
    ``traffic_unmeasured_payloads_total`` counter so the lossy estimate
    is visible in the metrics.
    """
    import numpy as np

    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (list, tuple)) and all(isinstance(x, np.ndarray) for x in obj):
        return sum(x.nbytes for x in obj)
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        if traffic is not None:
            traffic.record_unmeasured()
        return max(sys.getsizeof(obj), 1)


class TrafficLog:
    """Traffic tally shared by all ranks of a SimWorld.

    Thread safety comes from the underlying metric objects; this class
    holds no mutable state of its own beyond the current phase label.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._messages = self.registry.counter(
            "traffic_messages_total",
            "Point-to-point messages sent, by algorithm phase",
            labelnames=("phase",))
        self._collectives = self.registry.counter(
            "traffic_collectives_total",
            "Collective operations recorded, by algorithm phase",
            labelnames=("phase",))
        self._bytes = self.registry.counter(
            "traffic_bytes_total",
            "Bytes shipped over the simulated interconnect, by phase",
            labelnames=("phase",))
        self._p2p = self.registry.counter(
            "traffic_p2p_bytes_total",
            "Point-to-point bytes by (source, destination) rank pair",
            labelnames=("src", "dst"))
        self._unmeasured = self.registry.counter(
            "traffic_unmeasured_payloads_total",
            "Payloads whose size had to be estimated (unpicklable)")
        self._phase = "default"

    def set_phase(self, name: str) -> None:
        """Label subsequent traffic (phases mirror Table II rows)."""
        self._phase = name

    @property
    def phase(self) -> str:
        """The phase label applied to subsequent traffic."""
        return self._phase

    def record_send(self, src: int, dst: int, nbytes: int,
                    phase: str | None = None) -> None:
        # ``phase`` pins the attribution to the *sending rank's* phase;
        # the fallback is the last global label (racy on the threaded
        # world when ranks straddle a phase change, which is why the
        # world always passes it explicitly).
        p = self._phase if phase is None else phase
        self._messages.inc(phase=p)
        self._bytes.inc(nbytes, phase=p)
        self._p2p.inc(nbytes, src=src, dst=dst)

    def record_collective(self, nbytes: int, phase: str | None = None) -> None:
        p = self._phase if phase is None else phase
        self._collectives.inc(phase=p)
        self._bytes.inc(nbytes, phase=p)

    def record_unmeasured(self) -> None:
        """Count one payload whose byte size is only an estimate."""
        self._unmeasured.inc()

    @property
    def unmeasured_payloads(self) -> int:
        """Payloads counted via the fallback estimate so far."""
        return int(self._unmeasured.value())

    @property
    def total_bytes(self) -> int:
        """All bytes shipped, across phases."""
        return int(self._bytes.total())

    @property
    def p2p_bytes(self) -> dict[tuple[int, int], int]:
        """{(src, dst): bytes} over all point-to-point sends."""
        return {(int(src), int(dst)): int(v)
                for (src, dst), v in self._p2p.series().items()}

    def summary(self) -> dict[str, dict[str, int]]:
        """Per-phase {messages, collectives, bytes} snapshot."""
        msgs = {k[0]: v for k, v in self._messages.series().items()}
        colls = {k[0]: v for k, v in self._collectives.series().items()}
        nbytes = {k[0]: v for k, v in self._bytes.series().items()}
        return {phase: {"messages": int(msgs.get(phase, 0)),
                        "collectives": int(colls.get(phase, 0)),
                        "bytes": int(nbytes.get(phase, 0))}
                for phase in sorted(set(msgs) | set(colls) | set(nbytes))}
