"""The per-rank communicator object (mpi4py-flavoured API)."""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from .runtime import SimWorld
from .traffic import payload_bytes


class Request:
    """Handle for a non-blocking operation (mpi4py-style).

    Send requests complete immediately (the runtime buffers);
    receive requests resolve lazily on :meth:`wait`/:meth:`test`.
    """

    def __init__(self, resolve=None, value: Any = None):
        self._resolve = resolve
        self._value = value
        self._done = resolve is None

    def wait(self) -> Any:
        """Block until the operation completes; returns the payload
        (None for sends)."""
        if not self._done:
            self._value = self._resolve()
            self._done = True
        return self._value

    def test(self) -> tuple[bool, Any]:
        """Non-blocking completion check: (done, payload-or-None)."""
        if self._done:
            return True, self._value
        ready, value = self._resolve(poll=True)
        if ready:
            self._value = value
            self._done = True
        return self._done, self._value


class SimComm:
    """Communicator handle for one rank of a :class:`SimWorld`.

    Implements the subset of MPI used by the parallel tree code:
    ``send``/``recv``/``isend``, ``barrier``, ``bcast``, ``gather``,
    ``allgather`` (the paper's ``MPI_Allgatherv`` for boundary trees),
    ``allreduce``, ``alltoall`` and ``alltoallv`` (particle exchange).
    Payloads are arbitrary Python objects; numpy arrays are passed by
    reference (ranks share an address space), which emulates zero-copy
    transport while the traffic log still records their true byte size.
    """

    def __init__(self, world: SimWorld, rank: int):
        self.world = world
        self.rank = rank
        self.size = world.size
        self._generation = 0

    @property
    def tracer(self):
        """The world's span tracer (:data:`~repro.obs.NULL_TRACER` when
        tracing is off)."""
        return self.world.tracer

    @property
    def recv_wait_seconds(self) -> float:
        """Wall seconds this rank has spent blocked inside recvs -- the
        first-class per-rank wait timer behind
        :attr:`~repro.parallel.statistics.RunStatistics.recv_wait_max`."""
        return self.world.recv_wait_seconds(self.rank)

    # -- bookkeeping ---------------------------------------------------

    def _next_generation(self) -> int:
        g = self._generation
        self._generation += 1
        return g

    def set_phase(self, name: str) -> None:
        """Label subsequent traffic with an algorithm phase name."""
        self.world.set_phase(self.rank, name)
        self.barrier()

    # -- point-to-point --------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking-semantics send (buffered; never deadlocks on itself)."""
        if not (0 <= dest < self.size):
            raise ValueError(f"invalid dest {dest}")
        self.world.push(self.rank, dest, tag, obj,
                        payload_bytes(obj, self.world.traffic))

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; completes immediately (buffered runtime)."""
        self.send(obj, dest, tag)
        return Request()

    def recv(self, source: int, tag: int = 0,
             timeout: float | None = None) -> Any:
        """Blocking receive from ``source``.

        ``timeout`` overrides the world default for this call only.
        Raises :class:`~repro.simmpi.errors.RecvTimeoutError` when the
        deadline passes with the peer alive, and
        :class:`~repro.simmpi.errors.RankFailedError` as soon as the
        peer is marked failed with no buffered message left.
        """
        if not (0 <= source < self.size):
            raise ValueError(f"invalid source {source}")
        return self.world.pop(source, self.rank, tag, timeout=timeout)

    def irecv(self, source: int, tag: int = 0,
              timeout: float | None = None) -> Request:
        """Non-blocking receive; resolve with ``wait()``/``test()``."""
        if not (0 <= source < self.size):
            raise ValueError(f"invalid source {source}")

        def resolve(poll: bool = False):
            if poll:
                return self.world.try_pop(source, self.rank, tag)
            return self.world.pop(source, self.rank, tag, timeout=timeout)

        return Request(resolve=resolve)

    def iprobe(self, source: int, tag: int = 0) -> bool:
        """True when a message from ``source`` with ``tag`` is waiting."""
        return self.world.probe(source, self.rank, tag)

    # -- collectives -------------------------------------------------------

    def barrier(self) -> None:
        """Synchronise all ranks."""
        self.world.barrier()

    def allgather(self, obj: Any) -> list[Any]:
        """Gather one object from every rank onto every rank.

        Models ``MPI_Allgatherv``: contributions may differ in size.
        """
        nbytes = payload_bytes(obj, self.world.traffic) * (self.size - 1)
        self.world.record_collective(self.rank, nbytes)
        return self._collective("allgather", nbytes, obj)

    def _collective(self, name: str, nbytes: int, obj: Any) -> list[Any]:
        """Run one exchange, wrapped in a comm span when tracing."""
        tr = self.world.tracer
        if tr.enabled:
            with tr.span(name, rank=self.rank, cat="comm", bytes=nbytes):
                return self.world.exchange(self.rank,
                                           self._next_generation(), obj)
        return self.world.exchange(self.rank, self._next_generation(), obj)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather onto ``root`` (None elsewhere)."""
        out = self.allgather(obj)
        return out if self.rank == root else None

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``root``'s object to every rank."""
        nbytes = payload_bytes(obj, self.world.traffic) * (self.size - 1) \
            if self.rank == root else 0
        out = self._collective("bcast", nbytes,
                               obj if self.rank == root else None)
        if self.rank == root:
            self.world.record_collective(self.rank, nbytes)
        return out[root]

    def allreduce(self, value: Any, op: Callable[[Sequence[Any]], Any] | str = "sum") -> Any:
        """Reduce a value across ranks with ``op`` ('sum', 'min', 'max',
        or a callable over the list of contributions)."""
        contributions = self.allgather(value)
        if callable(op):
            return op(contributions)
        if op == "sum":
            total = contributions[0]
            for c in contributions[1:]:
                total = total + c
            return total
        if op == "min":
            return np.minimum.reduce(contributions)
        if op == "max":
            return np.maximum.reduce(contributions)
        raise ValueError(f"unknown op {op!r}")

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        """Each rank provides one object per destination; returns the
        objects addressed to this rank, indexed by source."""
        if len(objs) != self.size:
            raise ValueError("alltoall needs exactly one object per rank")
        nbytes = 0
        for dst, o in enumerate(objs):
            if dst != self.rank:
                b = payload_bytes(o, self.world.traffic)
                self.world.record_collective(self.rank, b)
                nbytes += b
        matrix = self._collective("alltoall", nbytes, list(objs))
        return [matrix[src][self.rank] for src in range(self.size)]

    # Particle exchange ships variable-length arrays; in this runtime the
    # generic object path already handles that.
    alltoallv = alltoall
