"""Typed error hierarchy for the SimMPI runtime.

Production MPI stacks distinguish "the network is slow" from "my peer is
gone"; the original runtime collapsed both into a 120 s ``TimeoutError``.
These types let callers (and the fault-injection harness) react to each
condition: retry or extend the deadline on :class:`RecvTimeoutError`,
abandon the epoch on :class:`RankFailedError`.
"""

from __future__ import annotations


class SimMPIError(Exception):
    """Base class for all SimMPI runtime errors."""


class RecvTimeoutError(SimMPIError, TimeoutError):
    """A blocking receive exceeded its deadline with the peer still alive.

    Subclasses :class:`TimeoutError` so pre-existing callers that caught
    the generic type keep working.
    """


class RankFailedError(SimMPIError):
    """An operation could not complete because a peer rank died.

    Raised by ``pop`` when the awaited source rank has been marked
    failed, and by collectives whose barrier was aborted by a rank
    failure.  Carries enough structure for programmatic handling.
    """

    def __init__(self, failed_rank: int, waiting_rank: int | None = None,
                 detail: str = ""):
        self.failed_rank = failed_rank
        self.waiting_rank = waiting_rank
        self.detail = detail
        msg = f"rank {failed_rank} failed"
        if waiting_rank is not None:
            msg += f" while rank {waiting_rank} was waiting on it"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the message) into
        # __init__, which would corrupt the structured fields; the
        # process transport ships these across rank boundaries.
        return (RankFailedError,
                (self.failed_rank, self.waiting_rank, self.detail))


class SimulatedRankCrash(SimMPIError):
    """Raised *inside* a rank that a fault schedule crashed.

    The SPMD driver recognises this type and reports the run-level
    failure as a :class:`RankFailedError` (the survivors' view), keeping
    injected crashes distinguishable from genuine program bugs.
    """

    def __init__(self, rank: int, op_index: int):
        self.rank = rank
        self.op_index = op_index
        super().__init__(f"injected crash of rank {rank} at comm op {op_index}")

    def __reduce__(self):
        return (SimulatedRankCrash, (self.rank, self.op_index))
