"""The SimWorld SPMD runtime: threads, queues, barriers, exchange slots."""

from __future__ import annotations

import queue
import threading
import time
from collections import defaultdict
from typing import Any, Callable, Sequence

from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NULL_TRACER, Tracer
from .errors import RankFailedError, RecvTimeoutError, SimulatedRankCrash
from .traffic import TrafficLog

#: Sentinel distinguishing "no deposit" from a deposited ``None``.
_MISSING = object()


class _RunBarrier:
    """Reusable barrier whose completed generations stay completed.

    ``threading.Barrier`` has a race that breaks run determinism: after
    a generation trips, ``abort()`` can land before a slow waiter gets
    scheduled to re-check the barrier state, so a barrier *every rank
    reached* retroactively raises ``BrokenBarrierError`` for some of
    them -- whether a rank's final collective span is recorded then
    depends on thread scheduling, not on the program.  This barrier
    keys success on the generation counter alone: if the generation a
    waiter joined has advanced, the barrier tripped and the wait
    succeeds no matter what happened since.  ``abort`` (and a wait
    timeout) only breaks the current and future generations, which is
    exactly the deterministic statement "this barrier can never
    complete".
    """

    def __init__(self, parties: int):
        self.parties = parties
        self._cond = threading.Condition()
        self._count = 0
        self._generation = 0
        self._broken = False

    def wait(self, timeout: float | None = None) -> None:
        with self._cond:
            if self._broken:
                raise threading.BrokenBarrierError
            gen = self._generation
            self._count += 1
            if self._count == self.parties:
                self._count = 0
                self._generation += 1
                self._cond.notify_all()
                return
            self._cond.wait_for(
                lambda: self._generation != gen or self._broken, timeout)
            if self._generation != gen:
                return                     # tripped: success, always
            self._broken = True            # timeout or abort
            self._cond.notify_all()
            raise threading.BrokenBarrierError

    def abort(self) -> None:
        with self._cond:
            self._broken = True
            self._cond.notify_all()


class SimWorld:
    """Shared state connecting the ranks of one SPMD program.

    Point-to-point messages travel through per-(src, dst, tag) queues;
    collectives use a generation-counted exchange board protected by a
    reusable barrier.  All blocking operations honour ``timeout`` so a
    deadlocked test fails loudly instead of hanging, and the runtime
    tracks **failed ranks**: once a rank is marked failed (its program
    raised, or a fault schedule crashed it), every peer blocked on it
    gets a typed :class:`RankFailedError` within one poll interval
    instead of waiting out the full timeout.
    """

    #: Granularity of the receive/failure-detection poll loop (seconds).
    POLL_INTERVAL = 0.02

    def __init__(self, size: int, timeout: float = 120.0):
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size
        self.timeout = timeout
        self.metrics = MetricsRegistry()
        self.traffic = TrafficLog(self.metrics)
        self.tracer: Tracer = NULL_TRACER
        #: Optional :class:`~repro.obs.health.HeartbeatBoard` (see
        #: :meth:`attach_health`); None keeps the op sites zero-cost.
        self.health = None
        self._queues: dict[tuple[int, int, int], queue.Queue] = {}
        self._queues_lock = threading.Lock()
        self._barrier = _RunBarrier(size)
        self._board: dict[tuple[int, int], Any] = {}
        self._board_lock = threading.Lock()
        self._failed: dict[int, BaseException | None] = {}
        self._failed_lock = threading.Lock()
        self._obs_lock = threading.Lock()
        self._recv_wait: dict[int, float] = defaultdict(float)
        self._recv_wait_hist = self.metrics.histogram(
            "comm_recv_wait_seconds",
            "Wall seconds a rank spent inside a blocking recv",
            labelnames=("rank",))
        self._flow_send: dict[tuple[int, int, int], int] = defaultdict(int)
        self._flow_recv: dict[tuple[int, int, int], int] = defaultdict(int)
        self._rank_phase: list[str] = ["default"] * size

    #: Transport name reported by this world class (see
    #: :mod:`repro.simmpi.transport`).
    transport = "threads"

    def set_phase(self, rank: int, name: str) -> None:
        """Label subsequent traffic with an algorithm phase.

        Attribution is tracked **per rank**: each rank's sends and
        collectives are booked against the phase *that rank* is in, so
        the labelling is deterministic even when a fast rank enters the
        next phase while a slow one is still sending (and it matches
        the process transport, where each rank owns its log).  Rank 0
        additionally writes the shared log's ambient label, which is
        what :attr:`TrafficLog.phase` reports.
        """
        self._rank_phase[rank] = name
        if rank == 0:
            self.traffic.set_phase(name)
        hb = self.health
        if hb is not None:
            hb.phase(rank, name)

    def rank_phase(self, rank: int) -> str:
        """The algorithm phase ``rank`` is currently in."""
        return self._rank_phase[rank]

    def record_collective(self, rank: int, nbytes: int) -> None:
        """Book one collective against ``rank``'s current phase."""
        self.traffic.record_collective(nbytes, phase=self._rank_phase[rank])

    # -- observability -----------------------------------------------------

    def attach_tracer(self, tracer: Tracer) -> None:
        """Install a span tracer on the world (idempotent).

        All ranks of a traced run must share one tracer; attaching a
        second distinct tracer is an error, attaching the same object
        again is a no-op.  The tracer's sinks are bound to this world's
        metrics registry, so bounded sinks account their drops in
        ``trace_events_dropped_total`` here.
        """
        with self._obs_lock:
            if self.tracer is not NULL_TRACER and self.tracer is not tracer:
                raise ValueError("a different tracer is already attached")
            self.tracer = tracer
        tracer.bind_metrics(self.metrics)
        # Heartbeat timestamps must read the same clock object the
        # tracer advances (a detached VirtualClock never moves).
        if self.health is not None:
            self.health.use_clock(tracer.clock)

    def attach_health(self, board) -> None:
        """Install a heartbeat board on the world (idempotent).

        The board's timestamps are reconciled onto the attached
        tracer's clock (when one is attached) and its
        ``heartbeats_total`` counter is bound to this world's metrics
        registry.  The SimMPI op sites (:meth:`push`, :meth:`pop`,
        :meth:`exchange`, :meth:`set_phase`) beat through it from then
        on.
        """
        with self._obs_lock:
            if self.health is not None and self.health is not board:
                raise ValueError("a different health board is already attached")
            self.health = board
        if self.tracer is not NULL_TRACER:
            board.use_clock(self.tracer.clock)
        board.bind_metrics(self.metrics)

    def recv_wait_seconds(self, rank: int) -> float:
        """Total wall seconds ``rank`` has spent inside blocking recvs."""
        with self._obs_lock:
            return self._recv_wait[rank]

    @property
    def recv_waits(self) -> list[float]:
        """Per-rank blocked-recv totals, indexed by rank."""
        with self._obs_lock:
            return [self._recv_wait[r] for r in range(self.size)]

    # -- failure tracking --------------------------------------------------

    @property
    def failed_ranks(self) -> frozenset[int]:
        """Ranks that have been marked failed so far."""
        with self._failed_lock:
            return frozenset(self._failed)

    def rank_failed(self, rank: int) -> bool:
        """True when ``rank`` has been marked failed."""
        with self._failed_lock:
            return rank in self._failed

    def mark_rank_failed(self, rank: int, exc: BaseException | None = None) -> None:
        """Record that ``rank`` died and wake everyone blocked on it.

        Aborting the barrier converts in-flight collectives into
        :class:`RankFailedError`; the receive poll loop notices the mark
        on its next iteration.  Idempotent.
        """
        with self._failed_lock:
            already = rank in self._failed
            if not already:
                self._failed[rank] = exc
        if not already:
            self._barrier.abort()

    def _first_failed(self) -> int:
        with self._failed_lock:
            return min(self._failed) if self._failed else -1

    # -- point-to-point ----------------------------------------------------

    def _queue(self, src: int, dst: int, tag: int) -> queue.Queue:
        key = (src, dst, tag)
        with self._queues_lock:
            q = self._queues.get(key)
            if q is None:
                q = self._queues[key] = queue.Queue()
            return q

    def push(self, src: int, dst: int, tag: int, payload: Any, nbytes: int) -> None:
        """Send: account traffic, trace, and enqueue (see ``_enqueue``)."""
        hb = self.health
        if hb is not None:
            # Beat before the fault hook: a rank that crashes inside
            # this send still registers the op it died on.
            hb.op(src)
        self._pre_send(src)
        self.traffic.record_send(src, dst, nbytes,
                                 phase=self._rank_phase[src])
        tr = self.tracer
        if tr.enabled:
            key = (src, dst, tag)
            with self._obs_lock:
                n = self._flow_send[key]
                self._flow_send[key] = n + 1
            with tr.span("send", rank=src, cat="comm", dst=dst, tag=tag,
                         bytes=nbytes) as sp:
                self._enqueue(src, dst, tag, payload, nbytes)
            tr.flow("s", f"{src}.{dst}.{tag}.{n}", rank=src, ts=sp.t0)
        else:
            self._enqueue(src, dst, tag, payload, nbytes)

    def _pre_send(self, src: int) -> None:
        """Hook run before a send is accounted (fault injectors override)."""

    def _enqueue(self, src: int, dst: int, tag: int, payload: Any,
                 nbytes: int) -> None:
        """Transport-level delivery; subclasses may misbehave here."""
        self._queue(src, dst, tag).put(payload)

    def pop(self, src: int, dst: int, tag: int,
            timeout: float | None = None) -> Any:
        """Blocking receive: waits are accounted per rank (the
        ``comm_recv_wait_seconds`` histogram and ``recv_wait_seconds``)
        and, when tracing, emit a ``recv`` span flow-linked to the
        matching send."""
        tr = self.tracer
        t0 = tr.clock.now(dst) if tr.enabled else 0.0
        t0_wall = time.perf_counter()
        hb = self.health
        if hb is not None:
            # The wait mark is only cleared on success: if this recv
            # dies, "blocked on (src, tag)" is the rank's last-known
            # state -- the wait-for-graph edge the post-mortem reads.
            hb.wait_begin(dst, src, tag)
        try:
            payload = self._pop(src, dst, tag, timeout)
        finally:
            waited = time.perf_counter() - t0_wall
            with self._obs_lock:
                self._recv_wait[dst] += waited
            self._recv_wait_hist.observe(waited, rank=dst)
        if hb is not None:
            hb.wait_end(dst)
            hb.op(dst)
        if tr.enabled:
            t1 = tr.clock.now(dst)
            key = (src, dst, tag)
            with self._obs_lock:
                n = self._flow_recv[key]
                self._flow_recv[key] = n + 1
            tr.record("recv", dst, t0, t1, cat="comm", src=src, tag=tag)
            tr.flow("f", f"{src}.{dst}.{tag}.{n}", rank=dst, ts=t0)
        return payload

    def _pop(self, src: int, dst: int, tag: int,
             timeout: float | None = None) -> Any:
        """Blocking receive with failure detection.

        Messages the source sent before dying are still delivered;
        only once its queue drains does a failed source raise
        :class:`RankFailedError`.  A live-but-silent source raises
        :class:`RecvTimeoutError` after ``timeout`` (world default).
        """
        q = self._queue(src, dst, tag)
        budget = self.timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        while True:
            if self.rank_failed(src) and q.empty():
                raise RankFailedError(src, waiting_rank=dst,
                                      detail=f"recv tag {tag}")
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RecvTimeoutError(
                    f"recv timeout: rank {dst} waiting for rank {src} "
                    f"tag {tag} after {budget:g}s")
            try:
                return q.get(timeout=min(self.POLL_INTERVAL, remaining))
            except queue.Empty:
                continue

    def try_pop(self, src: int, dst: int, tag: int) -> tuple[bool, Any]:
        """Non-blocking pop: (True, payload) or (False, None)."""
        try:
            return True, self._queue(src, dst, tag).get_nowait()
        except queue.Empty:
            return False, None

    def probe(self, src: int, dst: int, tag: int) -> bool:
        """True when a message is queued (racy by nature, like MPI_Iprobe)."""
        return not self._queue(src, dst, tag).empty()

    # -- collectives -------------------------------------------------------

    def barrier(self) -> None:
        """Block until every rank arrives.

        If the barrier was aborted by a rank failure this raises
        :class:`RankFailedError` naming a failed rank; a plain timeout
        re-raises the underlying :class:`threading.BrokenBarrierError`.
        """
        try:
            self._barrier.wait(timeout=self.timeout)
        except threading.BrokenBarrierError:
            failed = self._first_failed()
            if failed >= 0:
                raise RankFailedError(
                    failed, detail="collective aborted") from None
            raise

    def exchange(self, rank: int, generation: int, value: Any) -> list[Any]:
        """Allgather primitive: deposit, synchronise, read all, synchronise.

        ``generation`` is the caller's per-rank collective counter; all
        ranks must call collectives in the same order (standard MPI
        discipline), which the board asserts by keying on it.
        """
        hb = self.health
        if hb is not None:
            hb.op(rank)
        with self._board_lock:
            self._board[(generation, rank)] = value
        self.barrier()
        with self._board_lock:
            out = [self._board.get((generation, r), _MISSING)
                   for r in range(self.size)]
        for r, v in enumerate(out):
            if v is _MISSING:
                raise RankFailedError(r, waiting_rank=rank,
                                      detail=f"no deposit in generation {generation}")
        self.barrier()
        if rank == 0:
            with self._board_lock:
                for r in range(self.size):
                    del self._board[(generation, r)]
        return out


def resolve_run_errors(errors: list[tuple[int, BaseException]]) -> None:
    """Apply the run-level error policy to per-rank exceptions.

    Shared by every transport driver:

    - an injected :class:`SimulatedRankCrash` anywhere surfaces as a
      :class:`RankFailedError` naming the crashed rank;
    - otherwise the first *root-cause* exception (preferring non-
      ``RankFailedError`` errors, which are secondary casualties) is
      re-raised wrapped in ``RuntimeError`` with the rank recorded.
    """
    if not errors:
        return
    crash = next(((r, e) for r, e in errors
                  if isinstance(e, SimulatedRankCrash)), None)
    if crash is not None:
        rank, exc = crash
        raise RankFailedError(rank, detail="injected crash") from exc
    rank, exc = next(((r, e) for r, e in errors
                      if not isinstance(e, RankFailedError)), errors[0])
    if isinstance(exc, RankFailedError):
        raise exc
    raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc


def spmd_run(size: int, fn: Callable[..., Any], *args: Any,
             timeout: float = 600.0, world: SimWorld | None = None,
             transport: str | None = None, **kwargs: Any) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``size`` ranks; return results.

    ``transport`` selects the execution substrate (see
    :mod:`repro.simmpi.transport`): ``"threads"`` (default) runs each
    rank in a thread of this process, ``"process"`` in a forked OS
    process communicating through shared memory.  Passing a prepared
    ``world`` (e.g. a :class:`~repro.faults.FaultyWorld` or a
    :class:`~repro.simmpi.process.ProcessWorld`) implies its transport;
    ``transport`` and ``world`` must agree when both are given.

    A rank that raises is marked failed on the world immediately, so
    peers blocked on it fail fast with :class:`RankFailedError` instead
    of timing out.  The run-level error policy is
    :func:`resolve_run_errors`.
    """
    from .comm import SimComm
    from .transport import make_world, world_transport

    if world is None:
        world = make_world(size, transport=transport or "threads",
                           timeout=timeout)
    elif transport is not None and world_transport(world) != transport:
        raise ValueError(
            f"world is a {world_transport(world)!r} transport but "
            f"transport={transport!r} was requested")
    if world.size != size:
        raise ValueError(f"world has {world.size} ranks, {size} requested")
    if world_transport(world) != "threads":
        return world.run(fn, args, kwargs, timeout=timeout)
    results: list[Any] = [None] * size
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    def body(rank: int) -> None:
        comm = SimComm(world, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - reraised below
            with lock:
                errors.append((rank, exc))
            world.mark_rank_failed(rank, exc)

    threads = [threading.Thread(target=body, args=(r,), name=f"simmpi-rank-{r}")
               for r in range(size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
    alive = [t for t in threads if t.is_alive()]
    if alive and not errors:
        raise TimeoutError(f"{len(alive)} ranks still running after {timeout}s")
    finish = getattr(world, "finish_run", None)
    if finish is not None and not alive:
        finish()
    resolve_run_errors(errors)
    return results
