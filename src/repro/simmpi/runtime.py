"""The SimWorld SPMD runtime: threads, queues, barriers, exchange slots."""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Sequence

from .traffic import TrafficLog


class SimWorld:
    """Shared state connecting the ranks of one SPMD program.

    Point-to-point messages travel through per-(src, dst, tag) queues;
    collectives use a generation-counted exchange board protected by a
    reusable barrier.  All blocking operations honour ``timeout`` so a
    deadlocked test fails loudly instead of hanging.
    """

    def __init__(self, size: int, timeout: float = 120.0):
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size
        self.timeout = timeout
        self.traffic = TrafficLog()
        self._queues: dict[tuple[int, int, int], queue.Queue] = {}
        self._queues_lock = threading.Lock()
        self._barrier = threading.Barrier(size)
        self._board: dict[tuple[int, int], Any] = {}
        self._board_lock = threading.Lock()

    # -- point-to-point ----------------------------------------------------

    def _queue(self, src: int, dst: int, tag: int) -> queue.Queue:
        key = (src, dst, tag)
        with self._queues_lock:
            q = self._queues.get(key)
            if q is None:
                q = self._queues[key] = queue.Queue()
            return q

    def push(self, src: int, dst: int, tag: int, payload: Any, nbytes: int) -> None:
        self.traffic.record_send(src, dst, nbytes)
        self._queue(src, dst, tag).put(payload)

    def pop(self, src: int, dst: int, tag: int) -> Any:
        try:
            return self._queue(src, dst, tag).get(timeout=self.timeout)
        except queue.Empty:
            raise TimeoutError(
                f"recv timeout: rank {dst} waiting for rank {src} tag {tag}")

    def try_pop(self, src: int, dst: int, tag: int) -> tuple[bool, Any]:
        """Non-blocking pop: (True, payload) or (False, None)."""
        try:
            return True, self._queue(src, dst, tag).get_nowait()
        except queue.Empty:
            return False, None

    def probe(self, src: int, dst: int, tag: int) -> bool:
        """True when a message is queued (racy by nature, like MPI_Iprobe)."""
        return not self._queue(src, dst, tag).empty()

    # -- collectives -------------------------------------------------------

    def barrier(self) -> None:
        """Block until every rank arrives."""
        self._barrier.wait(timeout=self.timeout)

    def exchange(self, rank: int, generation: int, value: Any) -> list[Any]:
        """Allgather primitive: deposit, synchronise, read all, synchronise.

        ``generation`` is the caller's per-rank collective counter; all
        ranks must call collectives in the same order (standard MPI
        discipline), which the board asserts by keying on it.
        """
        with self._board_lock:
            self._board[(generation, rank)] = value
        self.barrier()
        with self._board_lock:
            out = [self._board[(generation, r)] for r in range(self.size)]
        self.barrier()
        if rank == 0:
            with self._board_lock:
                for r in range(self.size):
                    del self._board[(generation, r)]
        return out


def spmd_run(size: int, fn: Callable[..., Any], *args: Any,
             timeout: float = 600.0, world: SimWorld | None = None,
             **kwargs: Any) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``size`` ranks; return results.

    Exceptions raised on any rank are re-raised in the caller (after all
    threads finish or time out), with the rank recorded in the message.
    """
    from .comm import SimComm

    if world is None:
        world = SimWorld(size, timeout=timeout)
    results: list[Any] = [None] * size
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    def body(rank: int) -> None:
        comm = SimComm(world, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - reraised below
            with lock:
                errors.append((rank, exc))
            world._barrier.abort()

    threads = [threading.Thread(target=body, args=(r,), name=f"simmpi-rank-{r}")
               for r in range(size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
    alive = [t for t in threads if t.is_alive()]
    if alive and not errors:
        raise TimeoutError(f"{len(alive)} ranks still running after {timeout}s")
    if errors:
        rank, exc = errors[0]
        raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
    return results
