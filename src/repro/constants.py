"""Unit system and physical constants for the Milky Way reproduction.

Internally the code works in *galactic natural units* with the
gravitational constant ``G = 1``:

===========  =================  ===========================
quantity     internal unit      physical value
===========  =================  ===========================
length       1 kpc              3.0857e16 km
mass         1e10 Msun          1.989e40 kg
velocity     sqrt(G M / L)      207.38 km/s
time         L / V              4.7147 Myr
===========  =================  ===========================

These follow from ``G = 4.300917270e-6 kpc (km/s)^2 / Msun``.  The paper's
Milky Way model (Sec. IV) is expressed in these units in
:data:`MILKY_WAY_PAPER`.
"""

from __future__ import annotations

import dataclasses

# --------------------------------------------------------------------------
# Physical constants (CODATA / IAU values, in mixed astronomical units).
# --------------------------------------------------------------------------

#: Gravitational constant in kpc (km/s)^2 / Msun.
G_ASTRO = 4.300917270e-6

#: km per kpc.
KM_PER_KPC = 3.0856775814913673e16

#: Seconds per megayear.
SEC_PER_MYR = 3.1556952e13

#: One parsec expressed in kpc (the paper's softening is 1 pc).
PC_IN_KPC = 1.0e-3

# --------------------------------------------------------------------------
# Internal unit system: G = 1, [L] = 1 kpc, [M] = 1e10 Msun.
# --------------------------------------------------------------------------

#: Mass unit in solar masses.
MASS_UNIT_MSUN = 1.0e10

#: Length unit in kpc.
LENGTH_UNIT_KPC = 1.0

#: Velocity unit in km/s: sqrt(G * MASS_UNIT / LENGTH_UNIT).
VELOCITY_UNIT_KMS = (G_ASTRO * MASS_UNIT_MSUN / LENGTH_UNIT_KPC) ** 0.5

#: Time unit in Myr: (kpc / (km/s) in Myr) / velocity_unit.
KPC_PER_KMS_IN_MYR = KM_PER_KPC / SEC_PER_MYR  # ~977.79 Myr
TIME_UNIT_MYR = KPC_PER_KMS_IN_MYR / VELOCITY_UNIT_KMS

#: Time unit in Gyr.
TIME_UNIT_GYR = TIME_UNIT_MYR / 1.0e3


def msun_to_internal(mass_msun: float) -> float:
    """Convert a mass in solar masses to internal units."""
    return mass_msun / MASS_UNIT_MSUN


def internal_to_msun(mass: float) -> float:
    """Convert an internal-unit mass to solar masses."""
    return mass * MASS_UNIT_MSUN


def kms_to_internal(v_kms: float) -> float:
    """Convert a velocity in km/s to internal units."""
    return v_kms / VELOCITY_UNIT_KMS


def internal_to_kms(v: float) -> float:
    """Convert an internal-unit velocity to km/s."""
    return v * VELOCITY_UNIT_KMS


def myr_to_internal(t_myr: float) -> float:
    """Convert a time in Myr to internal units."""
    return t_myr / TIME_UNIT_MYR


def gyr_to_internal(t_gyr: float) -> float:
    """Convert a time in Gyr to internal units."""
    return t_gyr * 1.0e3 / TIME_UNIT_MYR


def internal_to_myr(t: float) -> float:
    """Convert an internal-unit time to Myr."""
    return t * TIME_UNIT_MYR


def internal_to_gyr(t: float) -> float:
    """Convert an internal-unit time to Gyr."""
    return t * TIME_UNIT_GYR


# --------------------------------------------------------------------------
# The paper's Milky Way model (Sec. IV), Widrow & Dubinski style.
# --------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class MilkyWayParameters:
    """Structural parameters of the paper's Milky Way model.

    Masses are in internal units (1e10 Msun), lengths in kpc.  The halo,
    disk and bulge masses are exactly the Sec. IV values: 6.0e11, 5.0e10
    and 4.6e9 Msun.  The scale radii are not listed in the paper (they come
    from the Widrow, Pym & Dubinski 2008 'MWb' blueprint); we adopt the
    standard values from that model family.
    """

    halo_mass: float = 60.0          # 6.0e11 Msun
    halo_scale_radius: float = 20.0  # NFW r_s [kpc]
    halo_cutoff_radius: float = 250.0  # truncation radius [kpc]

    disk_mass: float = 5.0           # 5.0e10 Msun
    disk_scale_length: float = 2.5   # exponential R_d [kpc]
    disk_scale_height: float = 0.3   # sech^2 / exponential z_d [kpc]
    disk_cutoff_radius: float = 25.0  # truncation [kpc]
    disk_toomre_q: float = 1.2       # target Toomre Q at ~2.5 R_d

    bulge_mass: float = 0.46         # 4.6e9 Msun
    bulge_scale_radius: float = 0.7  # Hernquist a [kpc]
    bulge_cutoff_radius: float = 4.0  # truncation [kpc]

    @property
    def total_mass(self) -> float:
        """Total model mass in internal units."""
        return self.halo_mass + self.disk_mass + self.bulge_mass

    def particle_fractions(self) -> tuple[float, float, float]:
        """Equal-mass particle number fractions (bulge, disk, halo).

        The paper realizes 51,199,967,232 particles split 994,689,024 /
        2,945,105,920 / 47,260,172,288 over bulge/disk/halo, i.e. in
        proportion to component mass so every particle has equal mass
        (~10 Msun at full scale).
        """
        total = self.total_mass
        return (self.bulge_mass / total,
                self.disk_mass / total,
                self.halo_mass / total)


#: The paper's Milky Way model parameters.
MILKY_WAY_PAPER = MilkyWayParameters()

#: Paper production particle counts (Sec. IV).
PAPER_N_TOTAL = 51_199_967_232
PAPER_N_BULGE = 994_689_024
PAPER_N_DISK = 2_945_105_920
PAPER_N_HALO = 47_260_172_288

#: The largest benchmarked model (Sec. VI): 242 billion particles.
PAPER_N_MAX = 242_000_000_000

#: Paper softening length: 1 parsec, in kpc.
PAPER_SOFTENING_KPC = PC_IN_KPC

#: Paper opening angle for production and benchmark runs.
PAPER_THETA = 0.4

#: Paper leaf capacity (Sec. I: "smaller than a critical value (we use 16)").
PAPER_NLEAF = 16

#: Paper production time step: 75,000 yr = 0.075 Myr (Sec. VI-C).
PAPER_TIMESTEP_MYR = 0.075
