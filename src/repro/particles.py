"""Particle container used throughout the library.

A :class:`ParticleSet` is a struct-of-arrays view of an N-body system:
positions, velocities, masses, persistent ids and an integer component
tag (bulge / disk / halo for the Milky Way model).  All arrays are plain
``numpy`` arrays so the set can be sliced, shuffled, split across ranks
and concatenated cheaply.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

import numpy as np

#: Component tags used by the Milky Way initial conditions.
COMPONENT_BULGE = 0
COMPONENT_DISK = 1
COMPONENT_HALO = 2

COMPONENT_NAMES = {COMPONENT_BULGE: "bulge",
                   COMPONENT_DISK: "disk",
                   COMPONENT_HALO: "halo"}


@dataclasses.dataclass
class ParticleSet:
    """An N-body particle system in internal units (G = 1).

    Attributes
    ----------
    pos : (N, 3) float64
        Positions.
    vel : (N, 3) float64
        Velocities.
    mass : (N,) float64
        Particle masses.
    ids : (N,) int64
        Persistent particle identifiers (survive sorting / exchange).
    component : (N,) int8
        Component tag (see :data:`COMPONENT_NAMES`); -1 when untagged.
    """

    pos: np.ndarray
    vel: np.ndarray
    mass: np.ndarray
    ids: np.ndarray | None = None
    component: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.pos = np.ascontiguousarray(self.pos, dtype=np.float64)
        self.vel = np.ascontiguousarray(self.vel, dtype=np.float64)
        self.mass = np.ascontiguousarray(self.mass, dtype=np.float64)
        n = len(self.mass)
        if self.pos.shape != (n, 3) or self.vel.shape != (n, 3):
            raise ValueError(
                f"inconsistent shapes: pos {self.pos.shape}, vel {self.vel.shape}, "
                f"mass ({n},)")
        if self.ids is None:
            self.ids = np.arange(n, dtype=np.int64)
        else:
            self.ids = np.ascontiguousarray(self.ids, dtype=np.int64)
            if self.ids.shape != (n,):
                raise ValueError("ids shape mismatch")
        if self.component is None:
            self.component = np.full(n, -1, dtype=np.int8)
        else:
            self.component = np.ascontiguousarray(self.component, dtype=np.int8)
            if self.component.shape != (n,):
                raise ValueError("component shape mismatch")

    def __len__(self) -> int:
        return len(self.mass)

    @property
    def n(self) -> int:
        """Number of particles."""
        return len(self.mass)

    @property
    def total_mass(self) -> float:
        """Sum of particle masses."""
        return float(self.mass.sum())

    def select(self, index: np.ndarray) -> "ParticleSet":
        """Return a new set containing the indexed particles (copy)."""
        return ParticleSet(pos=self.pos[index].copy(),
                           vel=self.vel[index].copy(),
                           mass=self.mass[index].copy(),
                           ids=self.ids[index].copy(),
                           component=self.component[index].copy())

    def select_component(self, tag: int) -> "ParticleSet":
        """Return the particles belonging to one component."""
        return self.select(np.flatnonzero(self.component == tag))

    def reorder(self, order: np.ndarray) -> None:
        """Permute all arrays in place by ``order``."""
        self.pos = self.pos[order]
        self.vel = self.vel[order]
        self.mass = self.mass[order]
        self.ids = self.ids[order]
        self.component = self.component[order]

    def copy(self) -> "ParticleSet":
        """Deep copy."""
        return ParticleSet(pos=self.pos.copy(), vel=self.vel.copy(),
                           mass=self.mass.copy(), ids=self.ids.copy(),
                           component=self.component.copy())

    @classmethod
    def concatenate(cls, sets: Iterable["ParticleSet"]) -> "ParticleSet":
        """Concatenate several particle sets into one."""
        sets = list(sets)
        if not sets:
            raise ValueError("nothing to concatenate")
        return cls(pos=np.concatenate([s.pos for s in sets]),
                   vel=np.concatenate([s.vel for s in sets]),
                   mass=np.concatenate([s.mass for s in sets]),
                   ids=np.concatenate([s.ids for s in sets]),
                   component=np.concatenate([s.component for s in sets]))

    @classmethod
    def empty(cls) -> "ParticleSet":
        """An empty particle set."""
        return cls(pos=np.empty((0, 3)), vel=np.empty((0, 3)),
                   mass=np.empty(0))

    # -- diagnostics -------------------------------------------------------

    def kinetic_energy(self) -> float:
        """Total kinetic energy, sum of m v^2 / 2."""
        return float(0.5 * np.sum(self.mass * np.einsum("ij,ij->i", self.vel, self.vel)))

    def center_of_mass(self) -> np.ndarray:
        """Mass-weighted mean position."""
        return (self.mass[:, None] * self.pos).sum(axis=0) / self.total_mass

    def center_of_mass_velocity(self) -> np.ndarray:
        """Mass-weighted mean velocity."""
        return (self.mass[:, None] * self.vel).sum(axis=0) / self.total_mass

    def momentum(self) -> np.ndarray:
        """Total linear momentum."""
        return (self.mass[:, None] * self.vel).sum(axis=0)

    def angular_momentum(self) -> np.ndarray:
        """Total angular momentum about the origin."""
        return (self.mass[:, None] * np.cross(self.pos, self.vel)).sum(axis=0)
