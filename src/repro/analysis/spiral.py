"""Spiral structure diagnostics: mode spectra and pitch angle.

The paper's headline science image (Fig. 3) shows spiral arms induced by
the bar.  Quantitatively, spiral structure lives in the azimuthal
Fourier modes m = 1..8 of the disk surface density, and a trailing
logarithmic spiral of pitch angle alpha produces a peak at radial
wavenumber p = m / tan(alpha) in the (ln R, phi) Fourier transform
(the standard method of Grand et al. 2013, the paper's ref. [18]).
"""

from __future__ import annotations

import numpy as np


def mode_spectrum(pos: np.ndarray, mass: np.ndarray,
                  r_min: float = 2.0, r_max: float = 12.0,
                  m_max: int = 8) -> np.ndarray:
    """|A_m|/A_0 for m = 0..m_max over an annulus of the disk.

    Returns an array of length ``m_max + 1`` whose first entry is 1.
    """
    R = np.hypot(pos[:, 0], pos[:, 1])
    sel = (R >= r_min) & (R <= r_max)
    if not sel.any():
        return np.zeros(m_max + 1)
    phi = np.arctan2(pos[sel, 1], pos[sel, 0])
    w = mass[sel]
    a0 = w.sum()
    out = np.empty(m_max + 1)
    for m in range(m_max + 1):
        out[m] = np.abs(np.sum(w * np.exp(1j * m * phi))) / a0
    return out


def logspiral_transform(pos: np.ndarray, mass: np.ndarray,
                        m: int = 2,
                        r_min: float = 2.0, r_max: float = 12.0,
                        p_grid: np.ndarray | None = None
                        ) -> tuple[np.ndarray, np.ndarray]:
    """One-armed log-spiral Fourier transform A(p, m).

    A(p, m) = sum_j w_j exp(i (m phi_j + p ln R_j)) / sum_j w_j.

    Returns (p_grid, |A|) -- a peak at p0 means a logarithmic spiral
    with pitch angle alpha = arctan(m / |p0|); p < 0 is trailing for a
    disk rotating in +phi.
    """
    if p_grid is None:
        p_grid = np.linspace(-30.0, 30.0, 121)
    R = np.hypot(pos[:, 0], pos[:, 1])
    sel = (R >= r_min) & (R <= r_max)
    if not sel.any():
        return p_grid, np.zeros_like(p_grid)
    phi = np.arctan2(pos[sel, 1], pos[sel, 0])
    lnr = np.log(R[sel])
    w = mass[sel]
    phase = np.exp(1j * (m * phi[None, :] + p_grid[:, None] * lnr[None, :]))
    amp = np.abs(phase @ w) / w.sum()
    return p_grid, amp


def pitch_angle(pos: np.ndarray, mass: np.ndarray, m: int = 2,
                r_min: float = 2.0, r_max: float = 12.0) -> float:
    """Pitch angle (degrees) of the dominant m-armed log-spiral.

    Measured from the peak of :func:`logspiral_transform`; 90 deg means
    no winding (a bar), small angles mean tightly wound arms.
    """
    p_grid, amp = logspiral_transform(pos, mass, m, r_min, r_max)
    p0 = p_grid[int(np.argmax(amp))]
    if p0 == 0.0:
        return 90.0
    return float(np.degrees(np.arctan(m / abs(p0))))


def make_log_spiral(n: int, pitch_deg: float, m: int = 2,
                    r_min: float = 2.0, r_max: float = 12.0,
                    spread: float = 0.1,
                    seed: int = 0) -> np.ndarray:
    """Synthetic particle positions tracing an m-armed log spiral
    (testing aid; also used by the spiral-analysis example)."""
    rng = np.random.default_rng(seed)
    r = np.exp(rng.uniform(np.log(r_min), np.log(r_max), n))
    k = 1.0 / np.tan(np.radians(pitch_deg))
    arm = rng.integers(0, m, n) * (2.0 * np.pi / m)
    phi = arm - k * np.log(r) + rng.normal(scale=spread, size=n)
    return np.stack([r * np.cos(phi), r * np.sin(phi),
                     rng.normal(scale=0.1, size=n)], axis=1)
