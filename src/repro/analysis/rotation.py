"""Rotation-curve and Toomre-Q measurement from particle snapshots.

Used to validate realizations against the analytic model (the observable
the Gaia comparison in the paper's introduction ultimately constrains)
and to monitor secular evolution of the disk's stability margin.
"""

from __future__ import annotations

import numpy as np


def measured_rotation_curve(pos: np.ndarray, vel: np.ndarray,
                            mass: np.ndarray,
                            r_max: float = 20.0, bins: int = 20
                            ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Mass-weighted mean azimuthal speed per cylindrical-radius bin.

    Returns (R_centers, v_phi_mean, v_phi_dispersion); bins without
    particles hold NaN.
    """
    R = np.hypot(pos[:, 0], pos[:, 1])
    Rc = np.maximum(R, 1e-12)
    v_phi = (-vel[:, 0] * pos[:, 1] + vel[:, 1] * pos[:, 0]) / Rc
    edges = np.linspace(0.0, r_max, bins + 1)
    which = np.digitize(R, edges) - 1
    centers = 0.5 * (edges[1:] + edges[:-1])
    mean = np.full(bins, np.nan)
    disp = np.full(bins, np.nan)
    for b in range(bins):
        sel = which == b
        if not sel.any():
            continue
        w = mass[sel]
        m = np.average(v_phi[sel], weights=w)
        mean[b] = m
        disp[b] = np.sqrt(np.average((v_phi[sel] - m) ** 2, weights=w))
    return centers, mean, disp


def circular_velocity_from_mass(pos: np.ndarray, mass: np.ndarray,
                                radii: np.ndarray,
                                center: np.ndarray | None = None
                                ) -> np.ndarray:
    """Spherical-approximation v_c(R) = sqrt(M(<R)/R) from particles."""
    from .profiles_fit import enclosed_mass_profile
    radii = np.asarray(radii, dtype=np.float64)
    m = enclosed_mass_profile(pos, mass, radii, center=center)
    return np.sqrt(m / np.maximum(radii, 1e-12))


def toomre_q_profile(pos: np.ndarray, vel: np.ndarray, mass: np.ndarray,
                     total_pos: np.ndarray, total_mass: np.ndarray,
                     r_max: float = 15.0, bins: int = 12
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Measured Toomre Q(R) = sigma_R kappa / (3.36 G Sigma) of a disk.

    Parameters
    ----------
    pos, vel, mass:
        Disk particles.
    total_pos, total_mass:
        All particles (the potential that sets kappa).

    Returns (R_centers, Q); under-populated bins hold NaN.
    """
    edges = np.linspace(0.0, r_max, bins + 1)
    centers = 0.5 * (edges[1:] + edges[:-1])
    R = np.hypot(pos[:, 0], pos[:, 1])
    which = np.digitize(R, edges) - 1

    # Radial velocity dispersion per bin.
    Rc = np.maximum(R, 1e-12)
    v_R = (vel[:, 0] * pos[:, 0] + vel[:, 1] * pos[:, 1]) / Rc
    sigma_R = np.full(bins, np.nan)
    sigma = np.full(bins, np.nan)
    for b in range(bins):
        sel = which == b
        if np.count_nonzero(sel) < 8:
            continue
        w = mass[sel]
        mean = np.average(v_R[sel], weights=w)
        sigma_R[b] = np.sqrt(np.average((v_R[sel] - mean) ** 2, weights=w))
        area = np.pi * (edges[b + 1] ** 2 - edges[b] ** 2)
        sigma[b] = w.sum() / area

    # Epicyclic frequency from the total mass distribution.
    vc = circular_velocity_from_mass(total_pos, total_mass, centers)
    omega = vc / np.maximum(centers, 1e-12)
    dom2 = np.gradient(omega ** 2, centers)
    kappa2 = np.maximum(centers * dom2 + 4.0 * omega ** 2, 0.0)
    kappa = np.sqrt(kappa2)

    with np.errstate(invalid="ignore", divide="ignore"):
        q = sigma_R * kappa / (3.36 * sigma)
    return centers, q
