"""Disk heating diagnostics.

Sec. IV: "We adopt equal masses for each of the particles for all three
components in order to avoid numerical heating caused by unequal mass."
Heavy halo particles scatter light disk stars, pumping their vertical
dispersion and thickening the disk; these helpers quantify exactly that,
and the ablation benchmark confirms the paper's choice.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class DiskHeating:
    """Vertical state of a disk at one time."""

    sigma_z: float          # mass-weighted vertical velocity dispersion
    thickness: float        # mass-weighted RMS height
    sigma_R: float          # radial velocity dispersion (in-plane heating)


def disk_heating_state(pos: np.ndarray, vel: np.ndarray, mass: np.ndarray,
                       r_min: float = 2.0, r_max: float = 10.0) -> DiskHeating:
    """Measure the disk's vertical/radial heating state in an annulus.

    The annulus excludes the center (bar region, where streaming motion
    contaminates dispersions) and the poorly sampled far disk.
    """
    R = np.hypot(pos[:, 0], pos[:, 1])
    sel = (R >= r_min) & (R <= r_max)
    if not sel.any():
        return DiskHeating(sigma_z=0.0, thickness=0.0, sigma_R=0.0)
    w = mass[sel]
    wsum = w.sum()

    vz = vel[sel, 2]
    vz_bar = np.average(vz, weights=w)
    sigma_z = np.sqrt(np.average((vz - vz_bar) ** 2, weights=w))

    z = pos[sel, 2]
    z_bar = np.average(z, weights=w)
    thickness = np.sqrt(np.average((z - z_bar) ** 2, weights=w))

    cos_p = pos[sel, 0] / np.maximum(R[sel], 1e-12)
    sin_p = pos[sel, 1] / np.maximum(R[sel], 1e-12)
    v_R = vel[sel, 0] * cos_p + vel[sel, 1] * sin_p
    vr_bar = np.average(v_R, weights=w)
    sigma_R = np.sqrt(np.average((v_R - vr_bar) ** 2, weights=w))

    return DiskHeating(sigma_z=float(sigma_z), thickness=float(thickness),
                       sigma_R=float(sigma_R))


def heating_rate(states: list[DiskHeating], times: np.ndarray) -> float:
    """Linear growth rate of sigma_z^2 (the standard heating measure)."""
    if len(states) < 2:
        raise ValueError("need at least two states")
    s2 = np.array([s.sigma_z ** 2 for s in states])
    return float(np.polyfit(np.asarray(times, dtype=np.float64), s2, 1)[0])
