"""Measured density/mass profiles, for comparing realizations against
their analytic targets (IC validation and long-run stability checks)."""

from __future__ import annotations

import numpy as np


def enclosed_mass_profile(pos: np.ndarray, mass: np.ndarray,
                          radii: np.ndarray,
                          center: np.ndarray | None = None) -> np.ndarray:
    """M(<r) measured at the requested radii."""
    pos = np.asarray(pos, dtype=np.float64)
    if center is not None:
        pos = pos - center
    r = np.linalg.norm(pos, axis=1)
    order = np.argsort(r)
    r_sorted = r[order]
    m_cum = np.concatenate(([0.0], np.cumsum(mass[order])))
    idx = np.searchsorted(r_sorted, radii, side="right")
    return m_cum[idx]


def density_profile(pos: np.ndarray, mass: np.ndarray,
                    r_edges: np.ndarray,
                    center: np.ndarray | None = None
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Spherically averaged rho(r) in the given radial bins.

    Returns (r_centers, rho).
    """
    pos = np.asarray(pos, dtype=np.float64)
    if center is not None:
        pos = pos - center
    r = np.linalg.norm(pos, axis=1)
    m_r, _ = np.histogram(r, bins=r_edges, weights=mass)
    vol = 4.0 / 3.0 * np.pi * (r_edges[1:] ** 3 - r_edges[:-1] ** 3)
    centers = 0.5 * (r_edges[1:] + r_edges[:-1])
    return centers, m_r / vol
