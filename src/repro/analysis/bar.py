"""Bar diagnostics: Fourier amplitude A2 and pattern speed.

The standard bar-strength measure is the m = 2 azimuthal Fourier
amplitude of the disk surface density,

    A2 / A0 = |sum_j m_j exp(2 i phi_j)| / sum_j m_j,

evaluated over the inner disk.  A growing A2 with a coherent phase marks
bar formation (the structure that appears ~3 Gyr into the paper's run);
the time derivative of the m = 2 phase gives the bar pattern speed.
"""

from __future__ import annotations

import numpy as np


def bar_strength(pos: np.ndarray, mass: np.ndarray,
                 r_max: float = 5.0, r_min: float = 0.0,
                 m_mode: int = 2) -> tuple[float, float]:
    """Bar amplitude and phase in an annulus of the disk plane.

    Returns
    -------
    amplitude : |A_m| / A0 in [0, 1].
    phase : position angle of the mode in radians (range [-pi/m, pi/m]).
    """
    R = np.hypot(pos[:, 0], pos[:, 1])
    sel = (R >= r_min) & (R <= r_max)
    if not sel.any():
        return 0.0, 0.0
    phi = np.arctan2(pos[sel, 1], pos[sel, 0])
    w = mass[sel]
    c = np.sum(w * np.exp(1j * m_mode * phi))
    a0 = np.sum(w)
    return float(np.abs(c) / a0), float(np.angle(c) / m_mode)


def bar_strength_profile(pos: np.ndarray, mass: np.ndarray,
                         r_max: float = 15.0, bins: int = 30,
                         m_mode: int = 2) -> tuple[np.ndarray, np.ndarray]:
    """A2/A0 per radial annulus; bars show a peak at small radii."""
    R = np.hypot(pos[:, 0], pos[:, 1])
    edges = np.linspace(0.0, r_max, bins + 1)
    centers = 0.5 * (edges[1:] + edges[:-1])
    amps = np.zeros(bins)
    phi = np.arctan2(pos[:, 1], pos[:, 0])
    which = np.digitize(R, edges) - 1
    for b in range(bins):
        sel = which == b
        if not sel.any():
            continue
        c = np.sum(mass[sel] * np.exp(1j * m_mode * phi[sel]))
        amps[b] = np.abs(c) / np.sum(mass[sel])
    return centers, amps


def pattern_speed(phases: np.ndarray, times: np.ndarray,
                  m_mode: int = 2) -> float:
    """Bar pattern speed Omega_p from a time series of m=2 phases.

    Unwraps the phase (defined modulo 2 pi / m) before the linear fit;
    returns radians per time unit.
    """
    phases = np.asarray(phases, dtype=np.float64)
    times = np.asarray(times, dtype=np.float64)
    if len(phases) < 2:
        raise ValueError("need at least two phase samples")
    period = 2.0 * np.pi / m_mode
    unwrapped = np.unwrap(phases, period=period)
    return float(np.polyfit(times, unwrapped, 1)[0])
