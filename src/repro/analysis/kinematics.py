"""Solar-neighborhood kinematics (bottom-left panel of Fig. 3).

The paper samples stars within 500 pc of the Sun's position (8 kpc from
the Galactic Center) and plots the (v_r, v_phi) distribution, in which
moving groups appear as clumps.  These helpers extract the same sample
and quantify the substructure so benchmarks can assert its presence
without a human looking at a scatter plot.
"""

from __future__ import annotations

import numpy as np


def solar_neighborhood(pos: np.ndarray, vel: np.ndarray,
                       r_sun: float = 8.0, radius: float = 0.5,
                       phi_sun: float = 0.0, z_max: float | None = None
                       ) -> np.ndarray:
    """Indices of particles within ``radius`` of the solar position.

    The Sun is placed at cylindrical (r_sun, phi_sun, 0); the selection
    is a sphere (or a cylinder when ``z_max`` is given).
    """
    sun = np.array([r_sun * np.cos(phi_sun), r_sun * np.sin(phi_sun), 0.0])
    d = pos - sun
    if z_max is None:
        return np.flatnonzero(np.einsum("ij,ij->i", d, d) <= radius ** 2)
    in_plane = d[:, 0] ** 2 + d[:, 1] ** 2 <= radius ** 2
    return np.flatnonzero(in_plane & (np.abs(d[:, 2]) <= z_max))


def velocity_distribution(pos: np.ndarray, vel: np.ndarray,
                          idx: np.ndarray,
                          subtract_rotation: bool = True
                          ) -> tuple[np.ndarray, np.ndarray]:
    """Radial and azimuthal velocities of a particle sample.

    Returns (v_r, v_phi); when ``subtract_rotation`` the mean rotation of
    the sample is removed from v_phi, as in Fig. 3 ("the rotation
    velocity of the disk is subtracted from the azimuthal velocity").
    """
    p = pos[idx]
    v = vel[idx]
    R = np.hypot(p[:, 0], p[:, 1])
    R = np.maximum(R, 1e-12)
    cos_p = p[:, 0] / R
    sin_p = p[:, 1] / R
    v_r = v[:, 0] * cos_p + v[:, 1] * sin_p
    v_phi = -v[:, 0] * sin_p + v[:, 1] * cos_p
    if subtract_rotation and len(v_phi):
        v_phi = v_phi - np.mean(v_phi)
    return v_r, v_phi


def velocity_substructure_clumpiness(v_r: np.ndarray, v_phi: np.ndarray,
                                     bins: int = 16,
                                     v_max: float | None = None) -> float:
    """Quantify clumpiness of the (v_r, v_phi) plane.

    Computes the normalised excess variance of 2-D histogram counts over
    the Poisson expectation for a smooth distribution with the same
    marginal widths: 0 for a featureless Gaussian sample, rising as
    moving-group clumps develop.
    """
    n = len(v_r)
    if n < bins * bins:
        raise ValueError("sample too small for the requested binning")
    if v_max is None:
        v_max = 3.0 * max(np.std(v_r), np.std(v_phi), 1e-12)
    edges = np.linspace(-v_max, v_max, bins + 1)
    h, _, _ = np.histogram2d(v_r, v_phi, bins=(edges, edges))
    # Smooth reference: product of the observed marginals.
    px = h.sum(axis=1) / h.sum()
    py = h.sum(axis=0) / h.sum()
    expected = h.sum() * np.outer(px, py)
    mask = expected > 2.0
    if not mask.any():
        return 0.0
    chi2 = ((h[mask] - expected[mask]) ** 2 / expected[mask]).sum()
    dof = mask.sum()
    # Excess over the chi^2 expectation, per degree of freedom.
    return float(max(chi2 / dof - 1.0, 0.0))
