"""Analysis of Milky Way simulations (the Fig. 3 measurements)."""

from .surface_density import surface_density_map, radial_surface_density
from .bar import bar_strength, bar_strength_profile, pattern_speed
from .kinematics import (
    solar_neighborhood,
    velocity_distribution,
    velocity_substructure_clumpiness,
)
from .profiles_fit import enclosed_mass_profile, density_profile
from .spiral import logspiral_transform, mode_spectrum, pitch_angle
from .heating import DiskHeating, disk_heating_state, heating_rate

__all__ = [
    "mode_spectrum",
    "logspiral_transform",
    "pitch_angle",
    "DiskHeating",
    "disk_heating_state",
    "heating_rate",
    "surface_density_map",
    "radial_surface_density",
    "bar_strength",
    "bar_strength_profile",
    "pattern_speed",
    "solar_neighborhood",
    "velocity_distribution",
    "velocity_substructure_clumpiness",
    "enclosed_mass_profile",
    "density_profile",
]
