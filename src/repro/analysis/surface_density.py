"""Face-on surface density maps (top panels of Fig. 3)."""

from __future__ import annotations

import numpy as np


def surface_density_map(pos: np.ndarray, mass: np.ndarray,
                        extent: float = 15.0, bins: int = 128
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Project particles onto the x-y plane as a mass surface density.

    Parameters
    ----------
    pos, mass:
        Particle positions (kpc) and masses.
    extent:
        Half-width of the square map in kpc.
    bins:
        Pixels per side.

    Returns
    -------
    sigma : (bins, bins) surface density, mass / kpc^2 (x rows, y cols).
    edges : (bins + 1,) shared bin edges.
    """
    edges = np.linspace(-extent, extent, bins + 1)
    h, _, _ = np.histogram2d(pos[:, 0], pos[:, 1], bins=(edges, edges),
                             weights=mass)
    area = (2.0 * extent / bins) ** 2
    return h / area, edges


def radial_surface_density(pos: np.ndarray, mass: np.ndarray,
                           r_max: float = 25.0, bins: int = 50
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Azimuthally averaged Sigma(R) of a disk.

    Returns (R_centers, sigma).
    """
    R = np.hypot(pos[:, 0], pos[:, 1])
    edges = np.linspace(0.0, r_max, bins + 1)
    m_r, _ = np.histogram(R, bins=edges, weights=mass)
    area = np.pi * (edges[1:] ** 2 - edges[:-1] ** 2)
    centers = 0.5 * (edges[1:] + edges[:-1])
    return centers, m_r / area
