"""The deterministic per-message fault lottery, shared by transports.

Whether ranks are threads sharing one :class:`~repro.faults.FaultyWorld`
or forked processes with private fault state, a given ``(seed, src,
dst, tag, seq)`` message must draw exactly the same faults -- that is
what makes seeded schedules reproducible and lets the cross-transport
test matrix demand identical fault counts from both transports.  This
module owns that draw:

- :func:`message_rng` derives the per-message generator;
- :func:`draw_message_faults` consumes a **fixed stream of draws**
  (one uniform per schedule clause in declaration order, plus one for
  the delay amount when a delay clause matches and hits) so the
  outcome depends only on the key, never on which clause matched
  first or on which side of a process boundary evaluates it.  The
  process transport leans on the latter: the sender draws to decide
  delay/duplicate, the receiver re-draws the same stream to decide
  reorder holdback, and both see one coherent verdict.
- :class:`MessageFaultOps` carries the rank-level machinery (crash /
  slowdown op counting, ``cat="fault"`` trace instants) identically
  for the thread and process fault worlds.
"""

from __future__ import annotations

import time

import numpy as np

from ..simmpi.errors import SimulatedRankCrash


def message_rng(seed: int, src: int, dst: int, tag: int,
                seq: int) -> np.random.Generator:
    """The deterministic generator for one message's fault draws."""
    ss = np.random.SeedSequence([seed, src, dst, abs(tag), seq])
    return np.random.default_rng(ss)


def draw_message_faults(schedule, seed: int, src: int, dst: int, tag: int,
                        seq: int) -> tuple[float, bool, bool]:
    """Draw this message's fate: ``(delay_seconds, reorder, duplicate)``.

    One draw per message-fault clause in declaration order, whatever
    the outcome, so the lottery consumes a fixed stream per message.
    """
    rng = message_rng(seed, src, dst, tag, seq)
    delay_s = 0.0
    do_reorder = do_duplicate = False
    for spec in schedule.message_specs:
        hit = rng.random() < spec.prob
        if not spec.matches(src, dst, tag) or not hit:
            continue
        if spec.kind == "delay":
            delay_s += spec.max_delay * float(rng.random())
        elif spec.kind == "reorder":
            do_reorder = True
        elif spec.kind == "duplicate":
            do_duplicate = True
    return delay_s, do_reorder, do_duplicate


class MessageFaultOps:
    """Rank-level fault machinery shared by the fault worlds.

    Expects the host class to provide ``schedule``, ``seed``, ``stats``,
    ``_fault_lock``, ``_op_count``, ``tracer``, ``rank_failed`` and
    ``mark_rank_failed``.
    """

    def _rng(self, src: int, dst: int, tag: int,
             seq: int) -> np.random.Generator:
        return message_rng(self.seed, src, dst, tag, seq)

    def _fault_instant(self, kind: str, rank: int, **attrs) -> None:
        """Emit a cat="fault" instant without advancing the rank's
        logical clock (``peek``): injected faults must never shift the
        logical timeline, so maskable schedules stay trace-transparent."""
        tr = self.tracer
        if tr.enabled:
            tr.instant(f"fault_{kind}", rank=rank, ts=tr.clock.peek(rank),
                       cat="fault", **attrs)
        # Mirror the newest fault onto the heartbeat board (when health
        # telemetry is attached): the flight ring may rotate the instant
        # out long before a post-mortem, but heartbeats.json keeps the
        # last fault seen per rank.
        board = getattr(self, "health", None)
        if board is not None:
            board.note_fault(rank, kind)

    def _comm_op(self, rank: int) -> None:
        """Deterministic per-rank op counter driving crash/slowdown.

        Called from push, blocking pop and exchange -- operations whose
        per-rank ordinal is a property of the program, not of thread
        timing -- so crashes land at the same program point every run.
        """
        with self._fault_lock:
            self._op_count[rank] += 1
            n = self._op_count[rank]
        crash = self.schedule.crash_for(rank)
        if crash is not None and n >= crash.after and not self.rank_failed(rank):
            self.stats.record_crash(rank)
            self._fault_instant("crash", rank, op=n)
            self.mark_rank_failed(rank)
            raise SimulatedRankCrash(rank, n)
        slow = self.schedule.slowdown_for(rank)
        if slow is not None and slow.max_delay > 0:
            self.stats.record("slowdown", 0, slow.max_delay)
            self._fault_instant("slowdown", rank, seconds=slow.max_delay)
            time.sleep(slow.max_delay)
