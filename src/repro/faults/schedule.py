"""The fault-schedule DSL.

A *fault schedule* is an ordered list of :class:`FaultSpec` clauses that
a :class:`~repro.faults.world.FaultyWorld` applies to the message
stream.  Schedules are built programmatically or parsed from a compact
text form, one clause per fault::

    delay(prob=0.3, max=2ms); reorder(prob=0.5); duplicate(prob=0.2);
    crash(rank=2, after=40); slowdown(rank=1, sleep=0.5ms)

Message-level clauses (``delay``, ``reorder``, ``duplicate``) accept
optional ``src=``, ``dst=`` and ``tag=`` filters restricting which
messages they may hit; rank-level clauses (``crash``, ``slowdown``)
require ``rank=``.  Durations take ``s``/``ms``/``us`` suffixes (bare
numbers are seconds).  ``crash(after=N)`` fires on the rank's N-th
deterministic communication operation (push, blocking pop, or
collective exchange -- *not* probes, whose count is timing-dependent),
so a given schedule crashes at the same program point on every run.
"""

from __future__ import annotations

import dataclasses
import re

#: Message-level fault kinds (stochastic, per-message, seeded).
MESSAGE_KINDS = ("delay", "reorder", "duplicate")
#: Rank-level fault kinds (deterministic trigger points).
RANK_KINDS = ("crash", "slowdown")
ALL_KINDS = MESSAGE_KINDS + RANK_KINDS


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One fault clause.

    Parameters
    ----------
    kind:
        One of ``delay``, ``reorder``, ``duplicate``, ``crash``,
        ``slowdown``.
    prob:
        Per-message firing probability for message-level kinds.
    max_delay:
        ``delay``: upper bound of the uniform per-message sleep;
        ``slowdown``: the fixed sleep added to every comm op.
    rank:
        Target rank for ``crash``/``slowdown``.
    after:
        ``crash``: fire on the rank's ``after``-th comm operation.
    src, dst, tag:
        Optional message filters for message-level kinds.
    """

    kind: str
    prob: float = 1.0
    max_delay: float = 0.0
    rank: int | None = None
    after: int = 1
    src: int | None = None
    dst: int | None = None
    tag: int | None = None

    def __post_init__(self):
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {ALL_KINDS}")
        if not (0.0 <= self.prob <= 1.0):
            raise ValueError(f"{self.kind}: prob must be in [0, 1], "
                             f"got {self.prob}")
        if self.max_delay < 0:
            raise ValueError(f"{self.kind}: negative duration {self.max_delay}")
        if self.kind in RANK_KINDS and self.rank is None:
            raise ValueError(f"{self.kind} requires rank=")
        if self.kind == "crash" and self.after < 1:
            raise ValueError("crash: after must be >= 1")

    def matches(self, src: int, dst: int, tag: int) -> bool:
        """True when this clause may apply to a (src, dst, tag) message."""
        return ((self.src is None or self.src == src)
                and (self.dst is None or self.dst == dst)
                and (self.tag is None or self.tag == tag))

    def describe(self) -> str:
        """Canonical single-clause DSL text (round-trips via parse)."""
        parts = []
        if self.kind in MESSAGE_KINDS:
            parts.append(f"prob={self.prob:g}")
            if self.kind == "delay":
                parts.append(f"max={self.max_delay:g}s")
            for f in ("src", "dst", "tag"):
                v = getattr(self, f)
                if v is not None:
                    parts.append(f"{f}={v}")
        elif self.kind == "crash":
            parts.append(f"rank={self.rank}")
            parts.append(f"after={self.after}")
        else:  # slowdown
            parts.append(f"rank={self.rank}")
            parts.append(f"sleep={self.max_delay:g}s")
        return f"{self.kind}({', '.join(parts)})"


_DURATION_RE = re.compile(r"^([0-9.eE+-]+)\s*(s|ms|us)?$")
_CLAUSE_RE = re.compile(r"^\s*(\w+)\s*\(([^)]*)\)\s*$")
_SCALE = {"s": 1.0, "ms": 1e-3, "us": 1e-6, None: 1.0}


def _parse_duration(text: str) -> float:
    m = _DURATION_RE.match(text.strip())
    if not m:
        raise ValueError(f"bad duration {text!r} (want e.g. 2ms, 0.5s, 3us)")
    return float(m.group(1)) * _SCALE[m.group(2)]


def _parse_clause(text: str) -> FaultSpec:
    m = _CLAUSE_RE.match(text)
    if not m:
        raise ValueError(f"bad fault clause {text!r} (want kind(k=v, ...))")
    kind, body = m.group(1).lower(), m.group(2).strip()
    kwargs: dict = {}
    if body:
        for item in body.split(","):
            if "=" not in item:
                raise ValueError(f"bad parameter {item!r} in clause {text!r}")
            k, v = (s.strip() for s in item.split("=", 1))
            if k in ("prob", "p"):
                kwargs["prob"] = float(v)
            elif k in ("max", "sleep", "delay"):
                kwargs["max_delay"] = _parse_duration(v)
            elif k in ("rank", "src", "dst", "tag", "after"):
                kwargs[k] = int(v)
            else:
                raise ValueError(f"unknown parameter {k!r} in clause {text!r}")
    return FaultSpec(kind=kind, **kwargs)


@dataclasses.dataclass(frozen=True)
class FaultSchedule:
    """An immutable, ordered collection of fault clauses."""

    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "FaultSchedule":
        """Parse the ``;``-separated DSL text into a schedule."""
        clauses = [c for c in (s.strip() for s in text.split(";")) if c]
        return cls(specs=tuple(_parse_clause(c) for c in clauses))

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultSchedule":
        """Build a schedule from spec objects."""
        return cls(specs=tuple(specs))

    def describe(self) -> str:
        """Canonical DSL text for the whole schedule."""
        return "; ".join(s.describe() for s in self.specs)

    @property
    def message_specs(self) -> tuple[FaultSpec, ...]:
        """The stochastic per-message clauses, in declaration order."""
        return tuple(s for s in self.specs if s.kind in MESSAGE_KINDS)

    def crash_for(self, rank: int) -> FaultSpec | None:
        """The crash clause targeting ``rank``, if any."""
        return next((s for s in self.specs
                     if s.kind == "crash" and s.rank == rank), None)

    def slowdown_for(self, rank: int) -> FaultSpec | None:
        """The slowdown clause targeting ``rank``, if any."""
        return next((s for s in self.specs
                     if s.kind == "slowdown" and s.rank == rank), None)


def parse_schedule(text: str) -> FaultSchedule:
    """Module-level alias for :meth:`FaultSchedule.parse`."""
    return FaultSchedule.parse(text)
