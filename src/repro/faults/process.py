"""Fault injection on the process transport.

Same seeded adversary as :class:`~repro.faults.FaultyWorld`, living
across real process boundaries.  The lottery
(:mod:`repro.faults.lottery`) is keyed purely by ``(seed, src, dst,
tag, seq)``, which lets the work split by side without any shared
fault state:

- the **sender** draws to decide delay (sleep before enqueue, booked
  with the payload's logical bytes) and duplicate (a second encoded
  copy on the wire -- each copy gets its own shared-memory segment,
  since a receiver consumes a segment when it decodes);
- the **receiver** re-draws the same stream to decide reorder: a
  message drawn for reorder is withheld in a local holdback slot and
  released when the next message on its channel arrives (adjacent
  swap) or when the receiver is starving, mirroring the threaded
  world's sender-side holdback.  Duplicates are detected against the
  per-channel sequence state and dropped, with the undecoded copy's
  segment unlinked.

Observable behavior matches the threaded fault world: identical fault
*counts* per kind for a given (schedule, seed), identical maskable-
fault transparency (sequence reassembly hides delay/reorder/duplicate),
identical typed errors for crash schedules.  Only the lane on which
reorder trace instants appear differs (the receiver's, not the
sender's -- a process can only write its own trace lane); fault
instants are excluded from trace-equality assertions for exactly this
kind of reason.

Crash and slowdown are rank-local (op counting, sleeping, marking the
shared failed-flag array) and work unchanged via
:class:`~repro.faults.lottery.MessageFaultOps`.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict, deque
from typing import Any

from ..simmpi.errors import RankFailedError, RecvTimeoutError
from ..simmpi.process import _MISSING, ProcessRankWorld, ProcessWorld
from ..simmpi.shm import decode_payload, discard_payload, encode_payload
from .lottery import MessageFaultOps, draw_message_faults
from .schedule import FaultSchedule
from .world import FaultStats


class FaultyProcessRankWorld(MessageFaultOps, ProcessRankWorld):
    """Worker-side world applying the fault schedule from ``spec``."""

    def __init__(self, spec: dict, rank: int):
        super().__init__(spec, rank)
        schedule, seed = spec["fault"]
        if isinstance(schedule, str):
            schedule = FaultSchedule.parse(schedule)
        self.schedule = schedule
        self.seed = int(seed)
        self.stats = FaultStats(self.metrics)
        self._fault_lock = threading.Lock()
        self._op_count: dict[int, int] = defaultdict(int)
        # Sender side: next seq per (dst, tag) channel (src is us).
        self._send_seq: dict[tuple[int, int], int] = defaultdict(int)
        # Receiver side: raw arrivals per channel, then reassembly +
        # holdback.  Arrivals are serviced lazily, only when their own
        # channel is popped: dedup accounting then happens at the same
        # program points as the threaded world's (which only sees a
        # duplicate when a recv on that channel encounters it), so
        # ``fault_duplicates_dropped_total`` agrees across transports.
        self._arrivals: dict[tuple[int, int], Any] = defaultdict(deque)
        self._deliver_seq: dict[tuple[int, int], int] = defaultdict(int)
        self._stash: dict[tuple[int, int], dict[int, Any]] = defaultdict(dict)
        self._holdback: dict[tuple[int, int], tuple[int, Any]] = {}
        self._reconciling = False

    # -- sender side ---------------------------------------------------------

    def _pre_send(self, src: int) -> None:
        self._comm_op(src)

    def _enqueue(self, src: int, dst: int, tag: int, payload: Any,
                 nbytes: int) -> None:
        with self._fault_lock:
            seq = self._send_seq[(dst, tag)]
            self._send_seq[(dst, tag)] = seq + 1
        delay_s, _reorder, do_duplicate = draw_message_faults(
            self.schedule, self.seed, src, dst, tag, seq)
        if delay_s > 0:
            self.stats.record("delay", nbytes, delay_s)
            self._fault_instant("delay", src, dst=dst, seconds=delay_s)
            time.sleep(delay_s)
        self._outboxes[dst].put(
            ("p", src, tag,
             (seq, nbytes, encode_payload(payload, self._shm_threshold))))
        if do_duplicate:
            self.stats.record("duplicate", nbytes)
            self._fault_instant("duplicate", src, dst=dst)
            self._outboxes[dst].put(
                ("p", src, tag,
                 (seq, nbytes, encode_payload(payload, self._shm_threshold))))

    # -- receiver side -------------------------------------------------------

    def _admit_p2p(self, src: int, tag: int, body) -> None:
        # Raw, undecoded arrival; serviced when this channel is popped.
        self._arrivals[(src, tag)].append(body)

    def _service_channel(self, key: tuple[int, int]) -> None:
        """Run pending arrivals of one channel through dedup/holdback.

        Stops as soon as the next in-sequence message is deliverable --
        the threaded receiver likewise stops consuming its queue the
        moment the expected message surfaces, so a duplicate copy
        *behind* it is only encountered (and counted dropped) by a
        later pop on the channel.
        """
        while True:
            with self._fault_lock:
                if not self._reconciling and \
                        self._deliver_seq[key] in self._stash[key]:
                    return
            arrivals = self._arrivals.get(key)
            if not arrivals:
                return
            seq, nbytes, enc = arrivals.popleft()
            with self._fault_lock:
                held = self._holdback.get(key)
                duplicate = (seq < self._deliver_seq[key]
                             or seq in self._stash[key]
                             or (held is not None and held[0] == seq))
            if duplicate:
                discard_payload(enc)
                self.stats.record_duplicate_dropped()
                continue
            payload = decode_payload(enc)
            _delay, do_reorder, _dup = draw_message_faults(
                self.schedule, self.seed, src := key[0], self.rank,
                key[1], seq)
            with self._fault_lock:
                held = self._holdback.pop(key, None)
                if held is None and do_reorder:
                    # Withhold until the channel's next arrival
                    # (adjacent swap) or a starving receiver flushes it.
                    self._holdback[key] = (seq, payload)
                    withheld = True
                else:
                    if held is not None:
                        self._stash[key][held[0]] = held[1]
                    self._stash[key][seq] = payload
                    withheld = False
            if withheld:
                self.stats.record("reorder", nbytes)
                self._fault_instant("reorder", self.rank, src=src)

    def _take_p2p(self, src: int, tag: int):
        key = (src, tag)
        with self._fault_lock:
            expected = self._deliver_seq[key]
            stash = self._stash[key]
            if expected in stash:
                self._deliver_seq[key] = expected + 1
                return stash.pop(expected)
        return _MISSING

    def _flush_holdback(self, key: tuple[int, int]) -> bool:
        with self._fault_lock:
            env = self._holdback.pop(key, None)
            if env is None:
                return False
            self._stash[key][env[0]] = env[1]
        return True

    def _pop(self, src: int, dst: int, tag: int,
             timeout: float | None = None) -> Any:
        self._comm_op(dst)
        key = (src, tag)
        budget = self.timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        fail_polls = 0
        while True:
            self._drain_nowait()
            self._service_channel(key)
            payload = self._take_p2p(src, tag)
            if payload is not _MISSING:
                return payload
            remaining = deadline - time.monotonic()
            if self._wait_one(min(self.POLL_INTERVAL, max(remaining, 0.0))):
                continue
            if self._flush_holdback(key):
                continue
            fail_polls = fail_polls + 1 if self.rank_failed(src) else 0
            if fail_polls >= 3:
                raise RankFailedError(src, waiting_rank=dst,
                                      detail=f"recv tag {tag}")
            if remaining <= 0:
                raise RecvTimeoutError(
                    f"recv timeout: rank {dst} waiting for rank {src} "
                    f"tag {tag} after {budget:g}s")

    def try_pop(self, src: int, dst: int, tag: int) -> tuple[bool, Any]:
        self._drain_nowait()
        self._service_channel((src, tag))
        payload = self._take_p2p(src, tag)
        if payload is _MISSING and self._flush_holdback((src, tag)):
            payload = self._take_p2p(src, tag)
        if payload is _MISSING:
            return False, None
        return True, payload

    def probe(self, src: int, dst: int, tag: int) -> bool:
        self._drain_nowait()
        key = (src, tag)
        self._service_channel(key)
        with self._fault_lock:
            return (self._deliver_seq[key] in self._stash[key]
                    or key in self._holdback)

    def exchange(self, rank: int, generation: int, value: Any) -> list[Any]:
        self._comm_op(rank)
        return super().exchange(rank, generation, value)

    # -- teardown --------------------------------------------------------------

    def _discard_item(self, item) -> None:
        if item[0] == "p":
            discard_payload(item[3][2])  # ("p", src, tag, (seq, nbytes, enc))
        else:
            discard_payload(item[3])

    def drain_inbox(self) -> None:
        # Reconcile first (mirror of FaultyWorld.finish_run): run every
        # in-flight envelope through admission so duplicate accounting
        # reaches its fixed point before the report is shipped.
        try:
            self._drain_nowait()
            self._reconciling = True
            for key in list(self._arrivals):
                self._service_channel(key)
            for key in list(self._holdback):
                self._flush_holdback(key)
        except Exception:
            pass
        finally:
            self._reconciling = False
        super().drain_inbox()
        # Arrivals that failed to service above still hold undecoded
        # segments; unlink them.
        for arrivals in self._arrivals.values():
            while arrivals:
                _seq, _nbytes, enc = arrivals.popleft()
                try:
                    discard_payload(enc)
                except Exception:
                    pass

    # -- report ---------------------------------------------------------------

    def _report_extra(self) -> dict:
        with self.stats._lock:
            kinds = {name: (k.events, k.bytes, k.seconds)
                     for name, k in self.stats.kinds.items()}
            crashed = list(self.stats.crashed_ranks)
            dropped = self.stats.duplicates_dropped
        return {"op_count": dict(self._op_count),
                "fault_kinds": kinds,
                "crashed_ranks": crashed,
                "dup_dropped": dropped}


class FaultyProcessWorld(ProcessWorld):
    """Parent-side handle: a :class:`ProcessWorld` whose workers run
    :class:`FaultyProcessRankWorld`.

    After :meth:`run`, ``stats`` holds the merged per-kind tallies and
    ``_op_count`` the merged per-rank comm-op counts, mirroring what
    :class:`~repro.faults.FaultyWorld` exposes in-process (the metric
    series ``fault_events_total`` etc. arrive through the ordinary
    registry merge).
    """

    def __init__(self, size: int,
                 schedule: FaultSchedule | str = FaultSchedule(),
                 seed: int = 0, timeout: float = 120.0, **kwargs):
        super().__init__(size, timeout=timeout, **kwargs)
        if isinstance(schedule, str):
            schedule = FaultSchedule.parse(schedule)
        if seed < 0:
            raise ValueError("seed must be non-negative")
        self.schedule = schedule
        self.seed = int(seed)
        # Dict-only tallies: the metric series come via registry merge,
        # double-counting them here would corrupt fault_events_total.
        self.stats = FaultStats(registry=None)

    def _spec(self) -> dict:
        spec = super()._spec()
        spec["fault"] = (self.schedule, self.seed)
        return spec

    def _merge_extra(self, rank: int, extra: dict) -> None:
        super()._merge_extra(rank, extra)
        with self.stats._lock:
            for kind, (events, nbytes, seconds) in \
                    extra.get("fault_kinds", {}).items():
                k = self.stats.kinds[kind]
                k.events += events
                k.bytes += nbytes
                k.seconds += seconds
            self.stats.crashed_ranks.extend(extra.get("crashed_ranks", ()))
            self.stats.duplicates_dropped += extra.get("dup_dropped", 0)
