"""Deterministic fault injection for the SimMPI runtime.

The paper's production runs survive a hostile environment -- jittery
interconnects, straggling and dying nodes -- and the distributed tree
code must produce serial-quality forces anyway.  This package provides
the adversary: :class:`FaultyWorld` perturbs the SimMPI transport
(message delay, reordering, duplication, rank slowdown and crash)
according to a seeded :class:`FaultSchedule`, with per-fault accounting
in :class:`FaultStats`.  See :mod:`repro.testing` for the invariant
checkers and the differential oracle that consume it, and
``docs/TESTING.md`` for the DSL reference.
"""

from .lottery import draw_message_faults, message_rng
from .schedule import (
    ALL_KINDS,
    MESSAGE_KINDS,
    RANK_KINDS,
    FaultSchedule,
    FaultSpec,
    parse_schedule,
)
from .world import FaultStats, FaultyWorld

__all__ = [
    "FaultSpec",
    "FaultSchedule",
    "parse_schedule",
    "FaultyWorld",
    "FaultStats",
    "draw_message_faults",
    "message_rng",
    "MESSAGE_KINDS",
    "RANK_KINDS",
    "ALL_KINDS",
]


def __getattr__(name: str):
    # The process-transport fault world pulls in multiprocessing; load
    # it lazily so threaded fault tests never pay for it.
    if name in ("FaultyProcessWorld", "FaultyProcessRankWorld"):
        from . import process
        return getattr(process, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
