"""Deterministic fault injection for the SimMPI transport.

:class:`FaultyWorld` subclasses :class:`~repro.simmpi.runtime.SimWorld`
and perturbs the point-to-point layer according to a seeded
:class:`~repro.faults.schedule.FaultSchedule`:

- **delay** -- sleep before enqueueing a message;
- **reorder** -- withhold a message and release it *after* the next one
  on the same (src, dst, tag) channel (adjacent swap);
- **duplicate** -- enqueue the message twice;
- **slowdown** -- add a fixed sleep to every comm op of one rank;
- **crash** -- kill one rank at its N-th comm op, marking it failed so
  peers get :class:`~repro.simmpi.errors.RankFailedError` promptly.

Every message travels in a ``(seq, payload)`` envelope and the receive
path reassembles per-channel sequence order, dropping duplicates --
exactly the contract a reliable transport (MPI over a lossy fabric)
provides.  Delay/reorder/duplicate faults are therefore *maskable*: a
correct program must produce identical results and identical logical
traffic under any such schedule (the property the harness asserts).
Crash faults are not maskable and must surface as typed errors.

Determinism: whether a fault hits a message is decided by a counter-
keyed RNG (seed, src, dst, tag, seq), not by wall-clock or thread
timing, so a (schedule, seed) pair injects the same faults on every
run regardless of scheduling.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
from collections import defaultdict
from typing import Any

import numpy as np

from ..simmpi.errors import RankFailedError, RecvTimeoutError, SimulatedRankCrash
from ..simmpi.runtime import SimWorld
from .lottery import MessageFaultOps, draw_message_faults
from .schedule import FaultSchedule

_MISSING = object()


@dataclasses.dataclass
class FaultKindStats:
    """Tally for one fault kind."""

    events: int = 0
    bytes: int = 0
    seconds: float = 0.0


class FaultStats:
    """Thread-safe per-fault traffic accounting.

    Kept separate from :class:`~repro.simmpi.traffic.TrafficLog` on
    purpose: the logical traffic of a run must be unchanged by maskable
    faults, while this object records what the injector actually did
    (events, affected payload bytes, injected seconds).  When a
    :class:`~repro.obs.metrics.MetricsRegistry` is supplied every tally
    is mirrored into labelled fault metrics
    (``fault_events_total{kind=...}``, ...), so the injector shows up in
    the same scrape as traffic and recv-wait accounting.
    """

    def __init__(self, registry=None) -> None:
        self._lock = threading.Lock()
        self.kinds: dict[str, FaultKindStats] = defaultdict(FaultKindStats)
        self.crashed_ranks: list[int] = []
        self.duplicates_dropped: int = 0
        self._m_events = self._m_bytes = self._m_seconds = None
        self._m_dropped = None
        if registry is not None:
            self._m_events = registry.counter(
                "fault_events_total", "Injected fault events by kind",
                labelnames=("kind",))
            self._m_bytes = registry.counter(
                "fault_bytes_total", "Payload bytes touched by faults",
                labelnames=("kind",))
            self._m_seconds = registry.counter(
                "fault_seconds_total", "Seconds of injected stall by kind",
                labelnames=("kind",))
            self._m_dropped = registry.counter(
                "fault_duplicates_dropped_total",
                "Duplicate envelopes discarded by the receive path")

    def record(self, kind: str, nbytes: int = 0, seconds: float = 0.0) -> None:
        with self._lock:
            k = self.kinds[kind]
            k.events += 1
            k.bytes += nbytes
            k.seconds += seconds
        if self._m_events is not None:
            self._m_events.inc(kind=kind)
            self._m_bytes.inc(nbytes, kind=kind)
            self._m_seconds.inc(seconds, kind=kind)

    def record_crash(self, rank: int) -> None:
        with self._lock:
            self.crashed_ranks.append(rank)
            k = self.kinds["crash"]
            k.events += 1
        if self._m_events is not None:
            self._m_events.inc(kind="crash")

    def record_duplicate_dropped(self) -> None:
        with self._lock:
            self.duplicates_dropped += 1
        if self._m_dropped is not None:
            self._m_dropped.inc()

    def count(self, kind: str) -> int:
        """Number of injections of one fault kind."""
        with self._lock:
            return self.kinds[kind].events if kind in self.kinds else 0

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-kind {events, bytes, seconds} snapshot."""
        with self._lock:
            out = {name: {"events": k.events, "bytes": k.bytes,
                          "seconds": round(k.seconds, 6)}
                   for name, k in self.kinds.items()}
        out["receiver"] = {"duplicates_dropped": self.duplicates_dropped}
        return out


class FaultyWorld(MessageFaultOps, SimWorld):
    """A :class:`SimWorld` whose transport misbehaves on schedule.

    Parameters
    ----------
    size:
        Number of ranks.
    schedule:
        A :class:`FaultSchedule` or DSL text (see
        :mod:`repro.faults.schedule`).
    seed:
        Non-negative seed for the per-message fault lottery.
    timeout:
        Receive/barrier deadline; keep small in tests so unmaskable
        faults surface quickly.
    """

    def __init__(self, size: int, schedule: FaultSchedule | str = FaultSchedule(),
                 seed: int = 0, timeout: float = 120.0):
        super().__init__(size, timeout=timeout)
        if isinstance(schedule, str):
            schedule = FaultSchedule.parse(schedule)
        if seed < 0:
            raise ValueError("seed must be non-negative")
        self.schedule = schedule
        self.seed = int(seed)
        self.stats = FaultStats(self.metrics)
        self._fault_lock = threading.Lock()
        self._send_seq: dict[tuple[int, int, int], int] = defaultdict(int)
        self._deliver_seq: dict[tuple[int, int, int], int] = defaultdict(int)
        self._stash: dict[tuple[int, int, int], dict[int, Any]] = defaultdict(dict)
        self._holdback: dict[tuple[int, int, int], tuple[int, Any]] = {}
        self._op_count: dict[int, int] = defaultdict(int)

    # The deterministic fault lottery and crash/slowdown machinery live
    # in MessageFaultOps (repro.faults.lottery), shared with the
    # process-transport fault world so both draw identical faults.

    # -- faulty transport --------------------------------------------------

    def _pre_send(self, src: int) -> None:
        self._comm_op(src)

    def _enqueue(self, src: int, dst: int, tag: int, payload: Any,
                 nbytes: int) -> None:
        # Logical traffic/tracing happen once per *logical* send in
        # SimWorld.push; injected duplicates are transport noise and only
        # appear in self.stats and cat="fault" trace instants.
        key = (src, dst, tag)
        with self._fault_lock:
            seq = self._send_seq[key]
            self._send_seq[key] = seq + 1
        delay_s, do_reorder, do_duplicate = draw_message_faults(
            self.schedule, self.seed, src, dst, tag, seq)

        if delay_s > 0:
            self.stats.record("delay", nbytes, delay_s)
            self._fault_instant("delay", src, dst=dst, seconds=delay_s)
            time.sleep(delay_s)

        env = (seq, payload)
        q = self._queue(src, dst, tag)
        with self._fault_lock:
            held = self._holdback.pop(key, None)
            if do_reorder and held is None:
                # Withhold; released after the channel's next push, or
                # flushed by a starving receiver.  A duplicate copy
                # still races ahead on the wire.
                self._holdback[key] = env
                self.stats.record("reorder", nbytes)
                self._fault_instant("reorder", src, dst=dst)
                if do_duplicate:
                    self.stats.record("duplicate", nbytes)
                    self._fault_instant("duplicate", src, dst=dst)
                    q.put(env)
                return
        q.put(env)
        if do_duplicate:
            self.stats.record("duplicate", nbytes)
            self._fault_instant("duplicate", src, dst=dst)
            q.put(env)
        if held is not None:
            q.put(held)  # the older message lands after the newer one

    def _take_ready(self, key: tuple[int, int, int]) -> Any:
        """Pop the next in-sequence payload from the stash, if present."""
        with self._fault_lock:
            expected = self._deliver_seq[key]
            stash = self._stash[key]
            if expected in stash:
                self._deliver_seq[key] = expected + 1
                return stash.pop(expected)
        return _MISSING

    def _admit(self, key: tuple[int, int, int], env: tuple[int, Any]) -> None:
        """File one received envelope: stash it or drop a duplicate."""
        seq, payload = env
        with self._fault_lock:
            if seq < self._deliver_seq[key] or seq in self._stash[key]:
                dropped = True
            else:
                self._stash[key][seq] = payload
                dropped = False
        if dropped:
            self.stats.record_duplicate_dropped()

    def _flush_holdback(self, key: tuple[int, int, int]) -> bool:
        """Force-release a withheld message (receiver is starving)."""
        with self._fault_lock:
            env = self._holdback.pop(key, None)
        if env is None:
            return False
        self._admit(key, env)
        return True

    def _pop(self, src: int, dst: int, tag: int,
             timeout: float | None = None) -> Any:
        self._comm_op(dst)
        key = (src, dst, tag)
        q = self._queue(src, dst, tag)
        budget = self.timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        while True:
            payload = self._take_ready(key)
            if payload is not _MISSING:
                return payload
            remaining = deadline - time.monotonic()
            try:
                env = q.get(timeout=max(0.0, min(self.POLL_INTERVAL, remaining)))
            except queue.Empty:
                if self._flush_holdback(key):
                    continue
                if self.rank_failed(src) and q.empty():
                    raise RankFailedError(src, waiting_rank=dst,
                                          detail=f"recv tag {tag}")
                if remaining <= 0:
                    raise RecvTimeoutError(
                        f"recv timeout: rank {dst} waiting for rank {src} "
                        f"tag {tag} after {budget:g}s")
                continue
            self._admit(key, env)

    def try_pop(self, src: int, dst: int, tag: int) -> tuple[bool, Any]:
        key = (src, dst, tag)
        q = self._queue(src, dst, tag)
        while True:
            payload = self._take_ready(key)
            if payload is not _MISSING:
                return True, payload
            try:
                env = q.get_nowait()
            except queue.Empty:
                if self._flush_holdback(key):
                    continue
                return False, None
            self._admit(key, env)

    def probe(self, src: int, dst: int, tag: int) -> bool:
        key = (src, dst, tag)
        with self._fault_lock:
            if self._deliver_seq[key] in self._stash[key]:
                return True
            if key in self._holdback:
                return True
        return not self._queue(src, dst, tag).empty()

    def exchange(self, rank: int, generation: int, value: Any) -> list[Any]:
        self._comm_op(rank)
        return super().exchange(rank, generation, value)

    def finish_run(self) -> None:
        """Reconcile in-flight envelopes once the program has stopped.

        Runs leftover queue contents and holdbacks through the normal
        admission path, so every injected duplicate is eventually
        counted dropped no matter where in the stream the program ended
        -- making ``fault_duplicates_dropped_total`` a deterministic
        function of (schedule, seed) alone, comparable across
        transports (the process fault world reconciles likewise in its
        worker teardown).
        """
        with self._queues_lock:
            channels = list(self._queues.items())
        for key, q in channels:
            while True:
                try:
                    env = q.get_nowait()
                except queue.Empty:
                    break
                self._admit(key, env)
        for key in list(self._holdback):
            self._flush_holdback(key)
