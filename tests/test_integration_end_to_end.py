"""Integration tests: the whole pipeline from ICs to analysis."""

import numpy as np
import pytest

from repro import Simulation, SimulationConfig
from repro.analysis import bar_strength, surface_density_map
from repro.core.parallel_simulation import gather_particles, run_parallel_simulation
from repro.ics import milky_way_model


@pytest.fixture(scope="module")
def evolved_mw():
    """A small Milky Way evolved a handful of steps (shared)."""
    ps = milky_way_model(6000, seed=77)
    cfg = SimulationConfig(theta=0.6, softening=0.1, dt=1.0)
    sim = Simulation(ps, cfg)
    e0 = sim.diagnostics()
    sim.evolve(5)
    return sim, e0


def test_milky_way_energy_drift_small(evolved_mw):
    sim, e0 = evolved_mw
    e1 = sim.diagnostics()
    assert abs((e1.total - e0.total) / e0.total) < 0.02


def test_milky_way_angular_momentum_preserved(evolved_mw):
    sim, e0 = evolved_mw
    L0 = e0.angular_momentum[2]
    L1 = sim.diagnostics().angular_momentum[2]
    assert L1 == pytest.approx(L0, rel=0.01)


def test_milky_way_disk_survives(evolved_mw):
    """The disk must not evaporate or collapse over a few steps."""
    sim, _ = evolved_mw
    disk = sim.particles.select_component(1)
    R = np.hypot(disk.pos[:, 0], disk.pos[:, 1])
    assert 1.0 < np.median(R) < 10.0
    assert np.std(disk.pos[:, 2]) < 1.5


def test_milky_way_no_early_bar(evolved_mw):
    """At t ~ 0 the disk is still axisymmetric (the paper's bar needs
    ~3 Gyr to form)."""
    sim, _ = evolved_mw
    disk = sim.particles.select_component(1)
    a2, _ = bar_strength(disk.pos, disk.mass, r_max=5.0)
    assert a2 < 0.25


def test_surface_density_map_of_simulation(evolved_mw):
    sim, _ = evolved_mw
    disk = sim.particles.select_component(1)
    sigma, edges = surface_density_map(disk.pos, disk.mass, extent=15.0,
                                       bins=32)
    assert sigma.sum() > 0
    center = sigma[14:18, 14:18].mean()
    rim = sigma[0].mean()
    assert center > rim


def test_parallel_and_serial_agree_on_milky_way():
    """Full pipeline cross-check on the production workload geometry."""
    ps = milky_way_model(4000, seed=78)
    cfg = SimulationConfig(theta=0.6, softening=0.1, dt=0.5)
    serial = Simulation(ps.copy(), cfg)
    serial.evolve(2)
    sims = run_parallel_simulation(3, ps.copy(), cfg, n_steps=2)
    parallel = gather_particles(sims)
    scale = np.abs(serial.particles.pos).max()
    assert np.allclose(parallel.pos, serial.particles.pos,
                       atol=1e-5 * scale)


def test_step_breakdown_accounts_full_time(evolved_mw):
    sim, _ = evolved_mw
    bd = sim.history[-1]
    parts = sum(bd.as_dict().values())
    assert parts == pytest.approx(bd.total)
    assert bd.gravity_local > bd.tree_construction
