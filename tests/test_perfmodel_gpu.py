"""Tests for the GPU kernel model (Fig. 1 quantities)."""

import pytest

from repro.perfmodel import C2075, K20X, direct_kernel_gflops, fig1_bars, tree_kernel_rates


def test_fig1_values():
    bars = {(g, k): v for g, k, v, _ in fig1_bars()}
    assert bars[("C2075", "tree/original")] == 460.0
    assert bars[("K20X", "tree/original")] == 829.0
    assert bars[("K20X", "tree/tuned")] == 1768.0
    assert bars[("C2075", "direct")] == 638.0
    assert bars[("K20X", "direct")] == 1746.0


def test_fig1_claims():
    """Text claims: tuned is ~2x original on K20X and ~4x the C2075."""
    bars = {(g, k): v for g, k, v, _ in fig1_bars()}
    tuned = bars[("K20X", "tree/tuned")]
    assert tuned / bars[("K20X", "tree/original")] == pytest.approx(2.0, abs=0.2)
    assert tuned / bars[("C2075", "tree/original")] == pytest.approx(4.0, abs=0.3)


def test_single_gpu_rate_matches_table2():
    """The split p-p/p-c rates must blend to 1.77 Tflops at the 1-GPU
    interaction mix and ~1.80 at the 18600-GPU mix."""
    kr = tree_kernel_rates(K20X, "tuned")
    assert kr.aggregate_gflops(1745, 4529) == pytest.approx(1770, rel=0.01)
    assert kr.aggregate_gflops(1716, 6920) == pytest.approx(1800, rel=0.01)


def test_gravity_seconds_scale_with_counts():
    kr = tree_kernel_rates()
    t1 = kr.gravity_seconds(1000, 1000)
    t2 = kr.gravity_seconds(2000, 2000)
    assert t2 == pytest.approx(2 * t1)


def test_monopole_cheaper_than_quadrupole():
    kr = tree_kernel_rates()
    assert kr.gravity_seconds(0, 1000, quadrupole=False) < \
        kr.gravity_seconds(0, 1000, quadrupole=True)


def test_fermi_slower_than_kepler():
    f = tree_kernel_rates(C2075, "original")
    k = tree_kernel_rates(K20X, "tuned")
    assert f.rpp_gflops < k.rpp_gflops
    assert f.rpc_gflops < k.rpc_gflops


def test_direct_kernel_rates():
    assert direct_kernel_gflops(K20X) == 1746.0
    assert direct_kernel_gflops(C2075) == 638.0


def test_unknown_variant_raises():
    with pytest.raises(ValueError):
        tree_kernel_rates(C2075, "tuned")  # no tuned Fermi kernel exists


def test_fraction_of_peak_sensible():
    """Sustained fractions: K20X tuned ~45% of 3.95 Tflops peak
    (Sec. VI-D: 'the GPUs operate at 46% of this number')."""
    for gpu, kernel, gflops, frac in fig1_bars():
        assert 0.1 < frac < 0.7
    bars = {(g, k): f for g, k, _, f in fig1_bars()}
    assert bars[("K20X", "tree/tuned")] == pytest.approx(0.45, abs=0.03)
