"""Process-transport unit tests: ProcessWorld semantics + shm codec.

The cross-transport *equivalence* matrix lives in
tests/harness/test_differential.py and tests/test_obs_determinism.py;
this file pins the process transport's own contract: typed errors that
fire fast (a dead worker must never hang the run), the shared-memory
payload codec's lifetime rules (receiver copies out and unlinks), the
single-run discipline, and the Hypothesis round-trip property for
``exchange_particles`` over real process boundaries.
"""

import glob
import os
import time

import numpy as np
import pytest

from repro.parallel.decomposition import DomainDecomposition
from repro.parallel.exchange import exchange_particles
from repro.particles import ParticleSet
from repro.simmpi import (
    RankFailedError,
    RecvTimeoutError,
    make_world,
    spmd_run,
)
from repro.simmpi.process import ProcessWorld
from repro.simmpi.shm import (
    SHM_MIN_BYTES,
    decode_payload,
    discard_payload,
    encode_payload,
)


def _shm_segments() -> set[str]:
    return set(glob.glob("/dev/shm/psm_*")) | set(glob.glob("/dev/shm/wnsm_*"))


@pytest.fixture(autouse=True)
def no_shm_leaks():
    before = _shm_segments()
    yield
    leaked = _shm_segments() - before
    assert not leaked, f"leaked shared-memory segments: {leaked}"


# -- basic transport -------------------------------------------------------

def test_p2p_inline_and_shm_paths():
    big = np.arange(SHM_MIN_BYTES, dtype=np.uint8)  # forces the shm path

    def prog(comm):
        if comm.rank == 0:
            comm.send({"small": 1}, dest=1, tag=1)
            comm.send(big, dest=1, tag=2)
            return None
        small = comm.recv(source=0, tag=1)
        arr = comm.recv(source=0, tag=2)
        return small, arr

    results = spmd_run(2, prog, transport="process", timeout=30.0)
    small, arr = results[1]
    assert small == {"small": 1}
    assert np.array_equal(arr, big)


def test_collectives_match_thread_semantics():
    def prog(comm):
        gathered = comm.allgather(comm.rank * 10)
        total = comm.allreduce(comm.rank + 1)
        root_val = comm.bcast("hello" if comm.rank == 0 else None)
        a2a = comm.alltoall([comm.rank * 100 + d for d in range(comm.size)])
        return gathered, total, root_val, a2a

    for r in spmd_run(3, prog, transport="process", timeout=30.0):
        gathered, total, root_val, a2a = r
        assert gathered == [0, 10, 20]
        assert total == 6
        assert root_val == "hello"
    assert spmd_run is not None


def test_received_arrays_are_private_copies():
    """No aliasing: the receiver owns a copy, shm segment already gone."""
    def prog(comm):
        if comm.rank == 0:
            arr = np.zeros(SHM_MIN_BYTES // 8)
            comm.send(arr, dest=1)
            comm.barrier()
            return float(arr[0])           # must still be 0.0
        arr = comm.recv(source=0)
        arr[:] = -1.0                       # mutate the received copy
        comm.barrier()
        return float(arr[0])

    results = spmd_run(2, prog, transport="process", timeout=30.0)
    assert results == [0.0, -1.0]


# -- typed errors ----------------------------------------------------------

def test_recv_timeout_is_typed():
    def prog(comm):
        if comm.rank == 1:
            with pytest.raises(RecvTimeoutError):
                comm.recv(source=0, tag=9, timeout=0.3)
        comm.barrier()
        return "ok"

    assert spmd_run(2, prog, transport="process", timeout=30.0) == ["ok"] * 2


def test_raising_worker_surfaces_as_rank_failed():
    def prog(comm):
        if comm.rank == 1:
            raise ValueError("worker exploded")
        comm.recv(source=1, tag=0)

    t0 = time.monotonic()
    with pytest.raises(RuntimeError, match="worker exploded") as ei:
        spmd_run(2, prog, transport="process", timeout=30.0)
    assert isinstance(ei.value.__cause__, ValueError)  # root cause chained
    assert time.monotonic() - t0 < 10.0


def test_peer_of_raising_worker_gets_rank_failed_error():
    def prog(comm):
        if comm.rank == 1:
            raise RuntimeError("dies quietly")
        try:
            comm.recv(source=1, tag=0)
        except RankFailedError as exc:
            return ("typed", exc.failed_rank)
        return ("wrong", None)

    try:
        results = spmd_run(2, prog, transport="process", timeout=30.0)
    except RuntimeError:
        return  # run-level policy may re-raise the root cause instead
    assert results[0] == ("typed", 1)


def test_hard_killed_worker_fails_fast_not_hang():
    """A worker dying without any report (os._exit) must be detected by
    the parent watchdog and surfaced as RankFailedError well inside the
    run timeout -- the no-hang acceptance criterion."""
    def prog(comm):
        if comm.rank == 2:
            os._exit(17)                    # no cleanup, no report
        comm.recv(source=2, tag=1)

    t0 = time.monotonic()
    with pytest.raises(RankFailedError) as ei:
        spmd_run(3, prog, transport="process", timeout=30.0)
    elapsed = time.monotonic() - t0
    assert ei.value.failed_rank == 2
    assert elapsed < 15.0, f"hard death took {elapsed:.1f}s to surface"


def test_world_is_single_run():
    world = make_world(2, transport="process", timeout=30.0)

    def prog(comm):
        return comm.rank

    assert spmd_run(2, prog, world=world) == [0, 1]
    with pytest.raises(RuntimeError, match="single-run"):
        spmd_run(2, prog, world=world)


def test_world_size_mismatch_rejected():
    world = make_world(2, transport="process", timeout=30.0)
    with pytest.raises(ValueError, match="ranks"):
        spmd_run(3, lambda comm: None, world=world)


def test_make_world_rejects_unknown_transport():
    with pytest.raises(ValueError):
        make_world(2, transport="carrier-pigeon")


def test_mpi4py_transport_gated_when_absent():
    from repro.simmpi.mpishim import mpi_available
    if mpi_available():
        pytest.skip("mpi4py installed; the absent-gating path can't fire")
    with pytest.raises(RuntimeError, match="mpi4py"):
        make_world(2, transport="mpi4py")


# -- shm codec -------------------------------------------------------------

def test_shm_codec_roundtrip_inline():
    env = encode_payload({"a": np.arange(4)}, SHM_MIN_BYTES)
    assert env[0] == "inline"
    out = decode_payload(env)
    assert np.array_equal(out["a"], np.arange(4))


def test_shm_codec_roundtrip_segment():
    payload = {"x": np.arange(SHM_MIN_BYTES, dtype=np.uint8),
               "y": (np.ones(3), "meta")}
    env = encode_payload(payload, SHM_MIN_BYTES)
    assert env[0] == "shm"
    out = decode_payload(env)            # copies out + unlinks the segment
    assert np.array_equal(out["x"], payload["x"])
    assert np.array_equal(out["y"][0], np.ones(3))
    assert out["y"][1] == "meta"
    # decoded arrays are private: mutating them can't touch the original
    out["x"][:] = 0
    assert payload["x"][1] == 1


def test_shm_codec_discard_unlinks():
    env = encode_payload(np.arange(SHM_MIN_BYTES, dtype=np.uint8),
                         SHM_MIN_BYTES)
    assert env[0] == "shm"
    discard_payload(env)                 # receiver never decoded it
    # the autouse fixture asserts no segment leaked


# -- Hypothesis: exchange_particles round-trips over processes -------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

KEY_SPACE = 1 << 32


@st.composite
def exchange_cases(draw):
    ranks = draw(st.integers(min_value=1, max_value=3))
    n = draw(st.integers(min_value=0, max_value=48))
    keys = draw(st.lists(st.integers(min_value=0, max_value=KEY_SPACE - 1),
                         min_size=n, max_size=n))
    cuts = sorted(draw(st.lists(
        st.integers(min_value=0, max_value=KEY_SPACE),
        min_size=ranks - 1, max_size=ranks - 1)))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return ranks, np.asarray(keys, dtype=np.uint64), cuts, seed


@settings(max_examples=10, deadline=None)
@given(exchange_cases())
def test_exchange_particles_roundtrip_on_process_world(case):
    ranks, keys, cuts, seed = case
    n = len(keys)
    rng = np.random.default_rng(seed)
    ps = ParticleSet(pos=rng.standard_normal((n, 3)),
                     vel=rng.standard_normal((n, 3)),
                     mass=rng.uniform(0.1, 1.0, n),
                     ids=np.arange(n, dtype=np.int64))
    pos_before = ps.pos.copy()
    decomp = DomainDecomposition(np.asarray([0, *cuts, KEY_SPACE],
                                            dtype=np.uint64))
    # contiguous shards, possibly empty on some ranks
    bounds = [n * r // ranks for r in range(ranks + 1)]

    def prog(comm):
        lo, hi = bounds[comm.rank], bounds[comm.rank + 1]
        local = ps.select(np.arange(lo, hi))
        out, out_keys = exchange_particles(comm, local, keys[lo:hi], decomp,
                                           return_keys=True)
        snapshot = (out.ids.copy(), out_keys.copy(), out.pos.copy(),
                    out.mass.copy())
        out.pos += 1e6          # mutation must stay private to this rank
        out_keys[:] = 0
        return snapshot

    results = spmd_run(ranks, prog, transport="process", timeout=60.0)

    all_ids = np.concatenate([r[0] for r in results])
    all_keys = np.concatenate([r[1] for r in results])
    all_pos = np.concatenate([r[2] for r in results])
    all_mass = np.concatenate([r[3] for r in results])
    # every particle delivered exactly once
    assert sorted(all_ids.tolist()) == list(range(n))
    # exact key carry-through and payload integrity, matched by id
    order = np.argsort(all_ids)
    assert np.array_equal(all_keys[order], keys)
    assert np.array_equal(all_pos[order], pos_before)
    assert np.array_equal(all_mass[order], ps.mass)
    # each particle landed on the rank owning its key
    owner = decomp.rank_of_keys(keys)
    for rank, (ids_r, keys_r, _, _) in enumerate(results):
        assert np.all(owner[ids_r] == rank)
    # worker-side mutations never reached the parent's arrays
    assert np.array_equal(ps.pos, pos_before)
