"""Tests for particle groups (the NCRIT walk granularity)."""

import numpy as np
import pytest

from repro.octree import build_octree, make_groups


def _tree(n=3000, nleaf=16, seed=12):
    pos = np.random.default_rng(seed).normal(size=(n, 3))
    return build_octree(pos, nleaf=nleaf), pos


def test_groups_partition_particles():
    tree, _ = _tree()
    make_groups(tree, 64)
    gf, gc = tree.group_first, tree.group_count
    assert gf[0] == 0
    assert np.all(gf[1:] == gf[:-1] + gc[:-1])
    assert gf[-1] + gc[-1] == tree.n_bodies


@pytest.mark.parametrize("ncrit", [8, 32, 64, 256])
def test_group_sizes_bounded(ncrit):
    # When ncrit < nleaf, leaves that cannot split become groups, so the
    # effective bound is max(ncrit, nleaf).
    tree, _ = _tree(nleaf=16)
    make_groups(tree, ncrit)
    assert tree.group_count.max() <= max(ncrit, 16)


def test_groups_are_maximal():
    """No two sibling groups could merge into a cell <= ncrit: each
    group's parent cell exceeds ncrit."""
    tree, _ = _tree()
    ncrit = 64
    make_groups(tree, ncrit)
    # map group start -> cell
    starts = {(int(f), int(c)) for f, c in zip(tree.group_first, tree.group_count)}
    for c in range(tree.n_cells):
        key = (int(tree.body_first[c]), int(tree.body_count[c]))
        if key in starts and tree.cell_parent[c] >= 0:
            assert tree.body_count[tree.cell_parent[c]] > ncrit


def test_ncrit_one_gives_one_particle_groups():
    tree, _ = _tree(n=300)
    make_groups(tree, 1)
    # At nleaf=16 > ncrit=1, leaves become groups ("stuck"), so groups may
    # exceed one particle only for leaf cells.
    assert len(tree.group_first) >= 300 / 16


def test_invalid_ncrit():
    tree, _ = _tree(n=100)
    with pytest.raises(ValueError):
        make_groups(tree, 0)


def test_small_n_single_group():
    pos = np.random.default_rng(13).normal(size=(10, 3))
    tree = build_octree(pos, nleaf=16)
    make_groups(tree, 64)
    assert len(tree.group_first) == 1
    assert tree.group_count[0] == 10


def test_groups_follow_sfc_order():
    tree, _ = _tree()
    make_groups(tree, 64)
    assert np.all(np.diff(tree.group_first) > 0)
