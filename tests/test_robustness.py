"""Robustness tests: extreme inputs, failure injection, edge geometries."""

import numpy as np
import pytest

from repro import Simulation, SimulationConfig
from repro.gravity import direct_forces, tree_forces
from repro.octree import build_octree, compute_moments, make_groups
from repro.particles import ParticleSet
from repro.simmpi import SimWorld, spmd_run


def _forces(pos, mass, theta=0.5, eps=0.0):
    tree = build_octree(pos, nleaf=8)
    compute_moments(tree, pos, mass)
    make_groups(tree, 32)
    return tree_forces(tree, pos, mass, theta=theta, eps=eps)


def test_huge_coordinate_scale():
    """The tree must work at 1e12-scale coordinates (key mapping is
    relative to the bounding box, not absolute)."""
    rng = np.random.default_rng(97)
    pos = rng.normal(size=(500, 3)) * 1e12
    mass = np.ones(500)
    res = _forces(pos, mass, eps=1e10)
    acc_d, _ = direct_forces(pos, mass, eps=1e10)
    err = np.linalg.norm(res.acc - acc_d, axis=1) / np.linalg.norm(acc_d, axis=1)
    assert np.median(err) < 1e-2


def test_tiny_coordinate_scale():
    rng = np.random.default_rng(98)
    pos = rng.normal(size=(500, 3)) * 1e-12
    mass = np.ones(500)
    res = _forces(pos, mass, eps=1e-14)
    acc_d, _ = direct_forces(pos, mass, eps=1e-14)
    err = np.linalg.norm(res.acc - acc_d, axis=1) / np.linalg.norm(acc_d, axis=1)
    assert np.median(err) < 1e-2


def test_highly_anisotropic_distribution():
    """A needle-like distribution stresses the cubic-box key mapping."""
    rng = np.random.default_rng(99)
    pos = rng.normal(size=(2000, 3)) * [100.0, 0.01, 0.01]
    mass = np.ones(2000)
    res = _forces(pos, mass, eps=0.1)
    acc_d, _ = direct_forces(pos, mass, eps=0.1)
    err = np.linalg.norm(res.acc - acc_d, axis=1) / (np.linalg.norm(acc_d, axis=1) + 1e-300)
    assert np.median(err) < 2e-2


def test_all_particles_coincident():
    """Fully degenerate input must not crash or produce NaNs."""
    pos = np.zeros((50, 3))
    mass = np.ones(50)
    res = _forces(pos, mass, eps=0.1)
    assert np.all(np.isfinite(res.acc))
    assert np.allclose(res.acc, 0.0, atol=1e-10)  # symmetric cancellation


def test_two_distant_clusters():
    """A huge dynamic range of separations (1 vs 1e6)."""
    rng = np.random.default_rng(100)
    a = rng.normal(size=(300, 3))
    b = rng.normal(size=(300, 3)) + [1e6, 0, 0]
    pos = np.vstack([a, b])
    mass = np.ones(600)
    res = _forces(pos, mass, eps=0.01)
    acc_d, _ = direct_forces(pos, mass, eps=0.01)
    err = np.linalg.norm(res.acc - acc_d, axis=1) / np.linalg.norm(acc_d, axis=1)
    assert np.median(err) < 1e-2


def test_single_particle_simulation():
    ps = ParticleSet(pos=np.zeros((1, 3)), vel=np.ones((1, 3)),
                     mass=np.ones(1))
    sim = Simulation(ps, SimulationConfig(theta=0.5, softening=0.1, dt=0.5))
    sim.evolve(3)
    assert np.allclose(sim.particles.pos, 1.5)  # pure drift


def test_zero_mass_particles():
    """Massless tracers among massive particles."""
    rng = np.random.default_rng(101)
    pos = rng.normal(size=(200, 3))
    mass = np.ones(200)
    mass[100:] = 0.0
    res = _forces(pos, mass, eps=0.05)
    assert np.all(np.isfinite(res.acc))
    # tracers feel forces from the massive half
    assert np.linalg.norm(res.acc[100:], axis=1).min() > 0.0


def test_simmpi_deadlock_detection():
    """A rank waiting for a message nobody sends must time out, not hang."""
    world = SimWorld(2, timeout=0.5)

    def prog(comm):
        if comm.rank == 0:
            comm.recv(1, tag=42)   # never sent
        # rank 1 exits immediately

    with pytest.raises(RuntimeError, match="timeout"):
        spmd_run(2, prog, world=world, timeout=5.0)


def test_simmpi_one_rank_crashes_others_unblocked():
    """A crash on one rank aborts the collective instead of hanging."""
    world = SimWorld(3, timeout=10.0)

    def prog(comm):
        if comm.rank == 2:
            raise RuntimeError("injected fault")
        comm.barrier()   # must abort, not wait 10 s

    import time
    t0 = time.perf_counter()
    with pytest.raises(RuntimeError):
        spmd_run(3, prog, world=world, timeout=30.0)
    assert time.perf_counter() - t0 < 8.0


def test_nonfinite_positions_rejected_by_bbox():
    pos = np.array([[0.0, 0, 0], [np.nan, 1, 1]])
    from repro.sfc import BoundingBox
    box = BoundingBox.from_positions(pos[:1])
    keys = box.keys(np.nan_to_num(pos))
    assert len(keys) == 2  # sanitised input maps fine


def test_simulation_with_zero_softening():
    """eps = 0 is legal (the kernels guard self-pairs)."""
    rng = np.random.default_rng(102)
    ps = ParticleSet(pos=rng.normal(size=(100, 3)),
                     vel=np.zeros((100, 3)),
                     mass=np.full(100, 1e-3))
    sim = Simulation(ps, SimulationConfig(theta=0.5, softening=0.0, dt=1e-4))
    sim.step()
    assert np.all(np.isfinite(sim.particles.pos))
