"""Tests for the Peano-Hilbert curve, including its locality property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.sfc import hilbert_decode, hilbert_encode


def _full_curve(bits: int):
    n = 1 << bits
    g = np.arange(n, dtype=np.uint64)
    X, Y, Z = np.meshgrid(g, g, g, indexing="ij")
    coords = np.stack([X.ravel(), Y.ravel(), Z.ravel()], axis=1)
    keys = hilbert_encode(coords[:, 0], coords[:, 1], coords[:, 2], bits=bits)
    return coords, keys


def test_roundtrip_random_full_depth():
    rng = np.random.default_rng(1)
    coords = [rng.integers(0, 2 ** 21, 5000, dtype=np.uint64) for _ in range(3)]
    out = hilbert_decode(hilbert_encode(*coords))
    for a, b in zip(out, coords):
        assert np.array_equal(a, b)


@pytest.mark.parametrize("bits", [1, 2, 3, 4])
def test_bijective_on_full_grid(bits):
    _, keys = _full_curve(bits)
    n = 1 << bits
    assert len(np.unique(keys)) == n ** 3
    assert keys.min() == 0
    assert keys.max() == n ** 3 - 1


@pytest.mark.parametrize("bits", [2, 3, 4])
def test_adjacency(bits):
    """The defining Hilbert property: consecutive indices are neighbours."""
    coords, keys = _full_curve(bits)
    order = np.argsort(keys)
    walk = coords[order].astype(np.int64)
    step = np.abs(np.diff(walk, axis=0)).sum(axis=1)
    assert step.max() == 1


def test_prefix_denotes_octant():
    """Grouping keys by their top 3 bits must split the cube into the
    8 spatial octants -- the property the octree build relies on."""
    bits = 4
    coords, keys = _full_curve(bits)
    top = keys >> np.uint64(3 * (bits - 1))
    half = np.uint64(1 << (bits - 1))
    octant = ((coords[:, 0] >= half).astype(int) * 4
              + (coords[:, 1] >= half).astype(int) * 2
              + (coords[:, 2] >= half).astype(int))
    # Each key-prefix class must map to exactly one spatial octant.
    for t in range(8):
        sel = top == t
        assert len(np.unique(octant[sel])) == 1


def test_locality_beats_morton_on_average():
    """Average key distance of spatial neighbours should be smaller for
    Hilbert than for Morton ordering (why the paper picked PH-SFC)."""
    from repro.sfc import morton_encode
    bits = 4
    coords, hk = _full_curve(bits)
    mk = morton_encode(coords[:, 0], coords[:, 1], coords[:, 2])
    # x-neighbour pairs
    n = 1 << bits
    sel = coords[:, 0] < n - 1
    a = np.flatnonzero(sel)
    b = a + n * n  # +1 in x given ij-order raveling
    dh = np.abs(hk[a].astype(np.int64) - hk[b].astype(np.int64))
    dm = np.abs(mk[a].astype(np.float64) - mk[b].astype(np.float64))
    assert dh.mean() < dm.mean()


@settings(max_examples=50, deadline=None)
@given(hnp.arrays(np.uint64, st.integers(1, 50),
                  elements=st.integers(0, 2 ** 21 - 1)),
       hnp.arrays(np.uint64, 1, elements=st.integers(0, 2 ** 21 - 1)))
def test_property_roundtrip(xs, seed):
    """Hypothesis: encode/decode is the identity for any coordinates."""
    ys = np.roll(xs, 1) ^ seed[0]
    zs = (xs + seed[0]) & np.uint64(2 ** 21 - 1)
    ys &= np.uint64(2 ** 21 - 1)
    out = hilbert_decode(hilbert_encode(xs, ys, zs))
    assert np.array_equal(out[0], xs)
    assert np.array_equal(out[1], ys)
    assert np.array_equal(out[2], zs)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2 ** 12 - 2))
def test_property_adjacency_full_depth_segments(start):
    """Hypothesis: consecutive Hilbert indices decode to adjacent cells,
    checked on random segments of the 2^12-cell curve."""
    bits = 4
    keys = np.array([start, start + 1], dtype=np.uint64)
    x, y, z = hilbert_decode(keys, bits=bits)
    d = (abs(int(x[1]) - int(x[0])) + abs(int(y[1]) - int(y[0]))
         + abs(int(z[1]) - int(z[0])))
    assert d == 1
