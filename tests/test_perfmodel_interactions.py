"""Tests for the interaction-count model against Table II."""

import pytest

from repro.perfmodel import InteractionModel


@pytest.fixture()
def im():
    return InteractionModel()


def test_pc_reference_point(im):
    assert im.pc_isolated(13e6) == pytest.approx(4529)


def test_pc_log_growth_matches_table2_weak_scaling(im):
    """Table II Titan weak-scaling p-c counts (13 M per GPU)."""
    for n_gpus, paper in ((1024, 6287), (2048, 6527), (4096, 6765),
                          (18600, 6920)):
        model = im.pc_total(13e6, n_gpus)
        assert model == pytest.approx(paper, rel=0.02)


def test_pc_strong_scaling_titan(im):
    """Titan strong-scaling column: 6.5 M per GPU on 8192 GPUs -> 7096."""
    assert im.pc_total(6.5e6, 8192) == pytest.approx(7096, rel=0.04)


def test_pp_counts(im):
    assert im.pp_per_particle(1) == 1745
    assert im.pp_per_particle(1024) == 1716


def test_local_fraction_reproduces_constant_local_gravity(im):
    """pc_local at 13 M must land near 2330 (what a constant 1.45 s
    local-gravity row implies)."""
    assert im.pc_local(13e6, 1024) == pytest.approx(2330, rel=0.02)
    # and be independent of P in weak scaling
    assert im.pc_local(13e6, 18600) == pytest.approx(im.pc_local(13e6, 1024))


def test_single_gpu_sees_everything(im):
    assert im.pc_local(13e6, 1) == im.pc_isolated(13e6)
    assert im.pc_let(13e6, 1) == 0.0


def test_let_plus_local_is_total(im):
    total = im.pc_total(13e6, 4096)
    assert im.pc_local(13e6, 4096) + im.pc_let(13e6, 4096) == pytest.approx(total)


def test_boundary_bytes_sublinear(im):
    b1 = im.boundary_bytes(1e6)
    b2 = im.boundary_bytes(8e6)
    assert b2 / b1 == pytest.approx(4.0, rel=0.01)  # (8)^(2/3)


def test_let_bigger_than_boundary(im):
    assert im.let_bytes(13e6) > im.boundary_bytes(13e6)
