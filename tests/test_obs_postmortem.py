"""Post-mortem analyzer tests: parsing, graphs, verdicts, CLI contract.

The analyzer is a pure consumer of bundle directories written by
:func:`repro.obs.health.write_bundle`, so most tests drive it with
synthetic bundles built from hand-placed evidence; the end-to-end crash
path (real failing run -> auto-dumped bundle -> CLI assertion) lives in
``tests/harness/test_health_forensics.py``.
"""

import json

import pytest

from repro import SimulationConfig
from repro.obs.health import HeartbeatBoard, write_bundle
from repro.obs.postmortem import (
    analyze,
    chain_roots,
    fault_events,
    find_cycles,
    force_costs,
    load_bundle,
    main,
    parse_metrics_text,
    render_report,
    straggler_ranking,
    wait_graph,
)
from repro.obs import VirtualClock
from repro.simmpi import SimWorld

METRICS_TEXT = """\
# HELP force_phase_seconds_total Wall seconds per force phase
# TYPE force_phase_seconds_total counter
force_phase_seconds_total{rank="0",phase="gravity_local"} 1.0
force_phase_seconds_total{rank="0",phase="gravity_let"} 0.5
force_phase_seconds_total{rank="1",phase="gravity_local"} 9.5
force_phase_seconds_total{rank="2",phase="gravity_local"} 1.2
force_phase_seconds_total{rank="3",phase="gravity_local"} 1.1
# HELP heartbeats_total Progress beacons emitted per rank
# TYPE heartbeats_total counter
heartbeats_total{rank="0"} 42
bare_metric 7
"""


# -- parsing ---------------------------------------------------------------

def test_parse_metrics_text():
    fams = parse_metrics_text(METRICS_TEXT)
    assert len(fams["force_phase_seconds_total"]) == 5
    labels, value = fams["force_phase_seconds_total"][0]
    assert labels == {"rank": "0", "phase": "gravity_local"} and value == 1.0
    assert fams["heartbeats_total"] == [({"rank": "0"}, 42.0)]
    assert fams["bare_metric"] == [({}, 7.0)]


def test_parse_metrics_skips_comments_and_junk():
    fams = parse_metrics_text("# HELP x y\n\nnot a metric line !!\nx 1\n")
    assert fams == {"x": [({}, 1.0)]}


def test_force_costs_and_straggler_ranking():
    fams = parse_metrics_text(METRICS_TEXT)
    costs = force_costs(fams)
    assert costs == {0: 1.5, 1: 9.5, 2: 1.2, 3: 1.1}
    ranking = straggler_ranking(fams)
    assert ranking[0]["rank"] == 1 and ranking[0]["z"] > 3.5
    assert [row["rank"] for row in ranking[1:]] == [0, 2, 3]


# -- wait-for graph --------------------------------------------------------

def _hb(waits):
    """Heartbeat records where rank r waits on waits[r] (None = running)."""
    return {r: {"step": 1, "phase": "x", "ops": 5, "beats": 6, "ts": 1.0,
                "wait": None if src is None else {"src": src, "tag": 0},
                "last_fault": None, "faults": 0}
            for r, src in waits.items()}


def test_wait_graph_edges():
    assert wait_graph(_hb({0: None})) == {}
    graph = wait_graph(_hb({0: 1, 1: None, 2: 1}))
    assert graph == {0: 1, 2: 1}


def test_find_cycles_simple_and_rotated():
    assert find_cycles({}) == []
    assert find_cycles({0: 1, 1: 0}) == [[0, 1]]
    # 3-cycle discovered from an off-cycle entry point, rotated to min.
    assert find_cycles({3: 2, 2: 4, 4: 1, 1: 2}) == [[1, 2, 4]]
    # Chain with no cycle.
    assert find_cycles({0: 1, 1: 2}) == []


def test_find_cycles_multiple_components():
    cycles = find_cycles({0: 1, 1: 0, 2: 3, 3: 2, 4: 0})
    assert cycles == [[0, 1], [2, 3]]


def test_chain_roots_orders_by_dependents():
    # 0,1,2 all end at silent rank 3; rank 5 waits on silent rank 4.
    graph = {0: 1, 1: 3, 2: 3, 5: 4}
    roots = chain_roots(graph, _hb({3: None, 4: None}))
    assert roots == [(3, 3), (4, 1)]


def test_chain_roots_ignores_cycles():
    assert chain_roots({0: 1, 1: 0}, {}) == []


# -- verdicts on synthetic bundles -----------------------------------------

def _bundle(tmp_path, *, board=None, world=None, error=None,
            reason="manual", events=()):
    path = tmp_path / "bundle"
    write_bundle(path, reason=reason, error=error, world=world, board=board)
    if events:
        with open(path / "trace_tail.jsonl", "w") as fh:
            for e in events:
                fh.write(json.dumps(e) + "\n")
    return load_bundle(path)


def test_verdict_crash_from_fault_instant(tmp_path):
    board = HeartbeatBoard(2, clock=VirtualClock())
    board.beat(1, step=0, phase="boundary_exchange")
    instant = {"name": "fault_crash", "cat": "fault", "ph": "i", "rank": 1,
               "ts": 0.5, "dur": 0.0, "seq": 9, "args": {"op": 12}}
    bundle = _bundle(tmp_path, board=board, reason="rank-failed",
                     events=[instant])
    doc = analyze(bundle)
    v = doc["verdict"]
    assert v["kind"] == "crash" and v["rank"] == 1
    assert v["phase"] == "boundary_exchange"
    assert "op 12" in v["evidence"]
    assert fault_events(bundle["events"]) == [instant]


def test_verdict_crash_from_board_note_when_ring_rotated(tmp_path):
    board = HeartbeatBoard(2, clock=VirtualClock())
    board.beat(1, step=3, phase="gravity_local")
    board.note_fault(1, "crash")
    doc = analyze(_bundle(tmp_path, board=board, reason="rank-failed"))
    assert doc["verdict"]["kind"] == "crash"
    assert doc["verdict"]["rank"] == 1
    assert "board" in doc["verdict"]["evidence"]


def test_verdict_crash_from_typed_error(tmp_path):
    from repro.simmpi import RankFailedError
    err = RankFailedError(1, waiting_rank=0)
    doc = analyze(_bundle(tmp_path, reason="rank-failed", error=err))
    assert doc["verdict"]["kind"] == "crash" and doc["verdict"]["rank"] == 1


def test_verdict_deadlock_from_wait_cycle(tmp_path):
    board = HeartbeatBoard(2, clock=VirtualClock())
    board.wait_begin(0, src=1, tag=0)
    board.wait_begin(1, src=0, tag=0)
    doc = analyze(_bundle(tmp_path, board=board, reason="timeout"))
    v = doc["verdict"]
    assert v["kind"] == "deadlock" and v["ranks"] == [0, 1]
    assert doc["cycles"] == [[0, 1]]


def test_verdict_stall_names_silent_root(tmp_path):
    board = HeartbeatBoard(3, clock=VirtualClock())
    board.beat(0, step=1, phase="boundary_exchange")
    board.beat(1, step=1, phase="boundary_exchange")
    board.beat(2, step=1, phase="gravity_local")
    board.wait_begin(0, src=2, tag=0)
    board.wait_begin(1, src=2, tag=0)
    doc = analyze(_bundle(tmp_path, board=board, reason="stall"))
    v = doc["verdict"]
    assert v["kind"] == "stall" and v["rank"] == 2
    assert v["phase"] == "gravity_local"


def test_blocked_recvs_alone_are_not_a_stall(tmp_path):
    """A manual bundle of a healthy overlapped run has wait edges; the
    analyzer must not cry stall without an anomaly signal."""
    board = HeartbeatBoard(2, clock=VirtualClock())
    board.beat(0, step=1)
    board.beat(1, step=1)
    board.wait_begin(0, src=1, tag=3)
    doc = analyze(_bundle(tmp_path, board=board, reason="manual"))
    assert doc["verdict"]["kind"] == "healthy"


def test_verdict_silent_dead_rank(tmp_path):
    """A hard-dead process rank ships no report: failed_ranks names it
    but the heartbeat board has no record."""
    world = SimWorld(2)
    world.mark_rank_failed(1)
    board = HeartbeatBoard(2, clock=VirtualClock())
    board.beat(0, step=2, phase="prime")
    doc = analyze(_bundle(tmp_path, board=board, world=world,
                          reason="rank-failed"))
    v = doc["verdict"]
    assert v["kind"] == "crash" and v["rank"] == 1
    assert "without shipping a report" in v["evidence"]


def test_verdict_straggler_from_metrics(tmp_path):
    world = SimWorld(4)
    counter = world.metrics.counter("force_phase_seconds_total",
                                    labelnames=("rank", "phase"))
    for r, secs in ((0, 1.0), (1, 9.5), (2, 1.2), (3, 1.1)):
        counter.inc(secs, rank=r, phase="gravity_local")
    board = HeartbeatBoard(4)  # wall clock: metrics survive the filter
    for r in range(4):
        board.beat(r, step=1, phase="gravity_local")
    doc = analyze(_bundle(tmp_path, board=board, world=world,
                          reason="manual"))
    v = doc["verdict"]
    assert v["kind"] == "straggler" and v["rank"] == 1
    assert doc["stragglers"][0]["rank"] == 1


def test_verdict_healthy(tmp_path):
    board = HeartbeatBoard(2, clock=VirtualClock())
    board.beat(0, step=1)
    board.beat(1, step=1)
    doc = analyze(_bundle(tmp_path, board=board))
    assert doc["verdict"]["kind"] == "healthy"
    assert doc["verdict"]["rank"] is None


def test_crash_outranks_straggler(tmp_path):
    """Evidence order: a run that crashed while also skewed blames the
    crash."""
    world = SimWorld(2)
    counter = world.metrics.counter("force_phase_seconds_total",
                                    labelnames=("rank", "phase"))
    counter.inc(1.0, rank=0, phase="gravity_local")
    counter.inc(50.0, rank=1, phase="gravity_local")
    board = HeartbeatBoard(2)
    board.note_fault(0, "crash")
    doc = analyze(_bundle(tmp_path, board=board, world=world,
                          reason="rank-failed"))
    assert doc["verdict"]["kind"] == "crash" and doc["verdict"]["rank"] == 0


# -- report rendering ------------------------------------------------------

def test_render_report_sections(tmp_path):
    board = HeartbeatBoard(2, clock=VirtualClock())
    board.beat(0, step=2, phase="gravity_local")
    board.wait_begin(0, src=1, tag=0)
    board.wait_begin(1, src=0, tag=0)
    doc = analyze(_bundle(tmp_path, board=board, reason="timeout"))
    text = render_report(doc)
    assert "post-mortem:" in text
    assert "rank  step  phase" in text
    assert "wait-for graph: 0 -> 1   1 -> 0" in text
    assert "DEADLOCK CYCLE: 0 -> 1 -> 0" in text
    assert "VERDICT: deadlock -- rank 0" in text


# -- CLI contract ----------------------------------------------------------

def _write_crash_bundle(tmp_path):
    board = HeartbeatBoard(2, clock=VirtualClock())
    board.beat(1, step=0, phase="boundary_exchange")
    board.note_fault(1, "crash")
    path = tmp_path / "bundle"
    write_bundle(path, reason="rank-failed", board=board,
                 config=SimulationConfig(theta=0.6))
    return path


def test_main_text_and_expectations_pass(tmp_path, capsys):
    path = _write_crash_bundle(tmp_path)
    rc = main([str(path), "--expect-kind", "crash", "--expect-rank", "1",
               "--expect-phase", "boundary_exchange"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "VERDICT: crash -- rank 1 (last phase: boundary_exchange)" in out


def test_main_json_output(tmp_path, capsys):
    path = _write_crash_bundle(tmp_path)
    assert main([str(path), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["verdict"]["kind"] == "crash"
    assert doc["config_fingerprint"]


def test_main_expectation_mismatch_exits_1(tmp_path, capsys):
    path = _write_crash_bundle(tmp_path)
    assert main([str(path), "--expect-rank", "0"]) == 1
    assert "EXPECTATION FAILED" in capsys.readouterr().err


def test_main_missing_bundle_exits_2(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "cannot load bundle" in capsys.readouterr().err


def test_main_rejects_unknown_kind(tmp_path):
    with pytest.raises(SystemExit):
        main([str(tmp_path), "--expect-kind", "gremlins"])


def test_module_entrypoint_runs(tmp_path):
    import os
    import subprocess
    import sys
    path = _write_crash_bundle(tmp_path)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath("src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.obs.postmortem", str(path),
         "--expect-kind", "crash"],
        capture_output=True, text=True, env=env)
    assert proc.returncode == 0, proc.stderr
    assert "VERDICT: crash" in proc.stdout
