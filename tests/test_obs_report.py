"""Report CLI tests: Table II reconstruction from synthetic traces."""

import json

import pytest

from repro.obs import Tracer, VirtualClock, chrome_trace_json
from repro.obs.report import (
    histories_from_trace,
    loadbalance_summary,
    main,
    statistics_from_trace,
)
from repro.parallel.statistics import aggregate_rank_histories


def _synthetic_trace():
    """Two ranks, two steps, phase times chosen by hand."""
    tr = Tracer(clock=VirtualClock())
    t = {0: 0.0, 1: 0.0}

    def rec(rank, name, dur, step, **attrs):
        tr.record(name, rank, t[rank], t[rank] + dur, cat="phase",
                  step=step, **attrs)
        t[rank] += dur

    for step in range(2):
        for rank in range(2):
            rec(rank, "sorting", 0.01 * (rank + 1), step)
            rec(rank, "domain_update", 0.02, step)
            rec(rank, "tree_construction", 0.005, step)
            rec(rank, "tree_properties", 0.002, step)
            rec(rank, "gravity_local", 0.1 + 0.05 * rank, step,
                n_particles=500, n_pp=1000, n_pc=100, quadrupole=True)
            rec(rank, "gravity_let", 0.03, step, n_pp=200, n_pc=20)
            rec(rank, "non_hidden_comm", 0.004 * rank, step)
            rec(rank, "boundary_exchange", 0.001, step)
            rec(rank, "other", 0.002, step)
    return tr


def test_histories_reconstruction():
    doc = json.loads(chrome_trace_json(_synthetic_trace()))
    histories, particle_counts, waits = histories_from_trace(doc)
    assert len(histories) == 2 and len(histories[0]) == 2
    bd = histories[1][0]
    assert bd.sorting == pytest.approx(0.02)
    assert bd.gravity_local == pytest.approx(0.15)
    # boundary_exchange folds into "other"
    assert bd.other == pytest.approx(0.003)
    assert bd.counts.n_pp == 1200 and bd.counts.n_pc == 120
    assert bd.counts.quadrupole
    assert particle_counts == [500, 500]
    assert waits == pytest.approx([0.0, 0.008])


def test_statistics_match_driver_side_reduction():
    doc = json.loads(chrome_trace_json(_synthetic_trace()))
    stats = statistics_from_trace(doc)
    histories, particle_counts, waits = histories_from_trace(doc)
    expected = aggregate_rank_histories(histories, particle_counts,
                                        recv_waits=waits)
    assert stats.mean_step.as_dict() == expected.mean_step.as_dict()
    # Slowest-rank semantics: rank 1's gravity_local wins.
    assert stats.mean_step.gravity_local == pytest.approx(0.15)
    assert stats.recv_wait_max == pytest.approx(0.008)


def test_report_requires_phase_spans():
    with pytest.raises(ValueError, match="phase spans"):
        histories_from_trace({"traceEvents": []})


def test_cli_text_and_json(tmp_path, capsys):
    path = tmp_path / "trace.json"
    path.write_text(chrome_trace_json(_synthetic_trace()))

    assert main([str(path), "--validate"]) == 0
    out = capsys.readouterr().out
    assert "Table II breakdown" in out
    assert "Overlap" in out and "imbalance" in out

    assert main([str(path), "--json"]) == 0
    rep = json.loads(capsys.readouterr().out)
    assert rep["n_ranks"] == 2
    assert rep["phases"]["gravity_local"] == pytest.approx(0.15)
    assert rep["total"] == pytest.approx(sum(rep["phases"].values()))


def _measured_trace():
    """Synthetic trace with measured-mode load-balance annotations."""
    tr = _synthetic_trace()
    t = 10.0
    for rank in range(2):
        tr.record("rebalance", rank, t, t + 0.001, cat="phase", step=0,
                  mode="measured")
        tr.record("domain_update", rank, t, t + 0.002, cat="phase", step=0,
                  rebalanced=True)
        tr.record("domain_update", rank, t + 1, t + 1.002, cat="phase",
                  step=1, rebalanced=False, lb_imbalance=1.05)
    return tr


def test_loadbalance_summary_from_trace(capsys, tmp_path):
    doc = json.loads(chrome_trace_json(_measured_trace()))
    lb = loadbalance_summary(doc)
    # Only rank 0's copies count; the ratio is collective.
    assert lb == {"rebalances": 1,
                  "checks": [{"step": 0, "imbalance": None,
                              "rebalanced": True},
                             {"step": 1, "imbalance": 1.05,
                              "rebalanced": False}]}
    path = tmp_path / "trace.json"
    path.write_text(chrome_trace_json(_measured_trace()))
    assert main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "Load balance (measured-cost feedback, 1 re-cuts):" in out
    assert "kept boundaries" in out
    assert main([str(path), "--json"]) == 0
    rep = json.loads(capsys.readouterr().out)
    assert rep["lb"]["rebalances"] == 1


def test_loadbalance_section_absent_without_measured_mode(capsys, tmp_path):
    path = tmp_path / "trace.json"
    path.write_text(chrome_trace_json(_synthetic_trace()))
    assert loadbalance_summary(
        json.loads(chrome_trace_json(_synthetic_trace()))) is None
    assert main([str(path), "--json"]) == 0
    assert "lb" not in json.loads(capsys.readouterr().out)


def test_unknown_span_names_ignored():
    tr = _synthetic_trace()
    tr.record("particle_exchange", 0, 99.0, 99.5, cat="comm")
    tr.record("mystery_phase", 0, 99.0, 99.5, cat="phase")
    doc = json.loads(chrome_trace_json(tr))
    histories, _, _ = histories_from_trace(doc)
    total = sum(bd.total for h in histories for bd in h)
    assert total == pytest.approx(2 * (0.17 + 0.234), abs=1e-9)
