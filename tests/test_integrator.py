"""Tests for the leap-frog integrator and diagnostics."""

import numpy as np
import pytest

from repro.gravity import direct_forces
from repro.integrator import LeapfrogIntegrator, drift, kick, system_diagnostics
from repro.particles import ParticleSet


def _two_body_circular():
    """Equal-mass binary on a circular orbit, G = 1."""
    m = 0.5
    r = 1.0
    # a = G m / (2r)^2 toward the COM; circular speed v = sqrt(a r).
    v = np.sqrt(m / (4 * r))
    ps = ParticleSet(
        pos=np.array([[-r, 0, 0], [r, 0, 0]], dtype=float),
        vel=np.array([[0, -v, 0], [0, v, 0]], dtype=float),
        mass=np.array([m, m]))
    return ps


def _force(ps):
    return direct_forces(ps.pos, ps.mass, eps=0.0)


def test_kick_and_drift_are_linear():
    ps = _two_body_circular()
    v0 = ps.vel.copy()
    acc = np.ones_like(ps.pos)
    kick(ps, acc, 0.5)
    assert np.allclose(ps.vel, v0 + 0.5)
    p0 = ps.pos.copy()
    drift(ps, 2.0)
    assert np.allclose(ps.pos, p0 + 2.0 * ps.vel)


def test_circular_orbit_radius_preserved():
    ps = _two_body_circular()
    period = 2 * np.pi * 1.0 / np.sqrt(0.5 / 4.0)
    integ = LeapfrogIntegrator(_force, dt=period / 500)
    integ.run(ps, 500)
    assert np.linalg.norm(ps.pos[0]) == pytest.approx(1.0, abs=5e-3)


def test_energy_conservation_long_run():
    ps = _two_body_circular()
    integ = LeapfrogIntegrator(_force, dt=0.02)
    integ.prime(ps)
    e0 = system_diagnostics(ps, integ.potential).total
    integ.run(ps, 500)
    e1 = system_diagnostics(ps, integ.potential).total
    assert abs((e1 - e0) / e0) < 1e-5


def test_second_order_convergence():
    """Halving dt must reduce the position error ~4x."""
    def end_pos(dt, steps):
        ps = _two_body_circular()
        LeapfrogIntegrator(_force, dt=dt).run(ps, steps)
        return ps.pos[0].copy()

    ref = end_pos(0.0005, 4000)
    e1 = np.linalg.norm(end_pos(0.008, 250) - ref)
    e2 = np.linalg.norm(end_pos(0.004, 500) - ref)
    ratio = e1 / e2
    assert 3.0 < ratio < 5.0


def test_time_reversibility():
    ps = _two_body_circular()
    start = ps.pos.copy()
    integ = LeapfrogIntegrator(_force, dt=0.01)
    integ.run(ps, 100)
    ps.vel *= -1.0
    integ2 = LeapfrogIntegrator(_force, dt=0.01)
    integ2.run(ps, 100)
    assert np.allclose(ps.pos, start, atol=1e-9)


def test_momentum_conserved_nbody():
    rng = np.random.default_rng(26)
    ps = ParticleSet(pos=rng.normal(size=(50, 3)),
                     vel=rng.normal(size=(50, 3)) * 0.1,
                     mass=rng.uniform(0.5, 1.0, 50))
    integ = LeapfrogIntegrator(lambda p: direct_forces(p.pos, p.mass, eps=0.1),
                               dt=0.01)
    p0 = ps.momentum()
    integ.run(ps, 50)
    assert np.allclose(ps.momentum(), p0, atol=1e-10)


def test_angular_momentum_conserved_nbody():
    rng = np.random.default_rng(27)
    ps = ParticleSet(pos=rng.normal(size=(30, 3)),
                     vel=rng.normal(size=(30, 3)) * 0.1,
                     mass=rng.uniform(0.5, 1.0, 30))
    integ = LeapfrogIntegrator(lambda p: direct_forces(p.pos, p.mass, eps=0.1),
                               dt=0.005)
    integ.prime(ps)
    L0 = ps.angular_momentum()
    integ.run(ps, 100)
    assert np.allclose(ps.angular_momentum(), L0, atol=1e-8)


def test_invalid_dt():
    with pytest.raises(ValueError):
        LeapfrogIntegrator(_force, dt=0.0)


def test_callback_invoked():
    ps = _two_body_circular()
    calls = []
    integ = LeapfrogIntegrator(_force, dt=0.01)
    integ.run(ps, 5, callback=lambda k, p: calls.append(k))
    assert calls == [0, 1, 2, 3, 4]
    assert integ.step_count == 5
    assert integ.time == pytest.approx(0.05)


def test_virial_ratio_of_equilibrium_model(small_plummer, plummer_direct):
    d = system_diagnostics(small_plummer, plummer_direct[1])
    assert d.virial_ratio == pytest.approx(1.0, abs=0.1)
    assert d.total < 0.0  # bound system
