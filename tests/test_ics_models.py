"""Tests for the composite models: Plummer and the paper's Milky Way."""

import numpy as np
import pytest

from repro.analysis import enclosed_mass_profile
from repro.constants import MILKY_WAY_PAPER, internal_to_kms
from repro.gravity import direct_forces
from repro.ics import MilkyWayModel, milky_way_model, plummer_model
from repro.integrator import system_diagnostics
from repro.particles import COMPONENT_BULGE, COMPONENT_DISK, COMPONENT_HALO


def test_plummer_virial_equilibrium(small_plummer, plummer_direct):
    d = system_diagnostics(small_plummer, plummer_direct[1])
    assert d.virial_ratio == pytest.approx(1.0, abs=0.1)


def test_plummer_zero_net_momentum(small_plummer):
    assert np.allclose(small_plummer.momentum(), 0.0, atol=1e-10)
    assert np.allclose(small_plummer.center_of_mass(), 0.0, atol=1e-10)


def test_plummer_mass_profile():
    ps = plummer_model(20000, seed=40)
    radii = np.array([0.5, 1.0, 2.0, 5.0])
    m = enclosed_mass_profile(ps.pos, ps.mass, radii)
    expected = radii ** 3 / (radii ** 2 + 1.0) ** 1.5
    assert np.allclose(m, expected, rtol=0.05)


def test_milky_way_equal_mass_particles(small_milky_way):
    assert np.allclose(small_milky_way.mass, small_milky_way.mass[0])


def test_milky_way_component_masses(small_milky_way):
    p = MILKY_WAY_PAPER
    for tag, target in ((COMPONENT_BULGE, p.bulge_mass),
                        (COMPONENT_DISK, p.disk_mass),
                        (COMPONENT_HALO, p.halo_mass)):
        comp = small_milky_way.select_component(tag)
        assert comp.total_mass == pytest.approx(target, rel=0.05)


def test_milky_way_total_mass(small_milky_way):
    assert small_milky_way.total_mass == pytest.approx(
        MILKY_WAY_PAPER.total_mass, rel=1e-6)


def test_milky_way_disk_is_flat(small_milky_way):
    disk = small_milky_way.select_component(COMPONENT_DISK)
    assert np.std(disk.pos[:, 2]) < 0.2 * np.std(disk.pos[:, 0])


def test_milky_way_disk_rotates(small_milky_way):
    disk = small_milky_way.select_component(COMPONENT_DISK)
    R = np.hypot(disk.pos[:, 0], disk.pos[:, 1])
    v_phi = (-disk.vel[:, 0] * disk.pos[:, 1] + disk.vel[:, 1] * disk.pos[:, 0]) / R
    model = MilkyWayModel(MILKY_WAY_PAPER)
    sel = (R > 4) & (R < 12)
    vc = model.circular_velocity(R[sel])
    assert np.mean(v_phi[sel] / vc) == pytest.approx(1.0, abs=0.15)


def test_milky_way_rotation_curve_realistic():
    model = MilkyWayModel(MILKY_WAY_PAPER)
    vc8 = internal_to_kms(model.circular_velocity(np.array([8.0]))[0])
    assert 180.0 < vc8 < 260.0  # the observed ~220 km/s neighbourhood


def test_milky_way_virial(small_milky_way):
    acc, phi = direct_forces(small_milky_way.pos, small_milky_way.mass, eps=0.05)
    d = system_diagnostics(small_milky_way, phi)
    assert d.virial_ratio == pytest.approx(1.0, abs=0.15)


def test_milky_way_halo_mass_profile(small_milky_way):
    halo = small_milky_way.select_component(COMPONENT_HALO)
    model = MilkyWayModel(MILKY_WAY_PAPER)
    radii = np.array([10.0, 50.0, 150.0])
    m = enclosed_mass_profile(halo.pos, halo.mass, radii)
    expected = model.halo.enclosed_mass(radii)
    assert np.allclose(m, expected, rtol=0.1)


def test_deterministic_generation():
    a = milky_way_model(3000, seed=5)
    b = milky_way_model(3000, seed=5)
    assert np.array_equal(a.pos, b.pos)
    assert np.array_equal(a.vel, b.vel)


def test_different_seeds_differ():
    a = milky_way_model(3000, seed=5)
    b = milky_way_model(3000, seed=6)
    assert not np.allclose(a.pos, b.pos)


def test_sharded_generation_matches_global():
    """Rank shards must reassemble into exactly the single-rank model
    (the paper's on-the-fly distributed IC generation)."""
    full = milky_way_model(4000, seed=8)
    shards = [milky_way_model(4000, seed=8, rank=r, n_ranks=4)
              for r in range(4)]
    pos = np.concatenate([s.pos for s in shards])
    ids = np.concatenate([s.ids for s in shards])
    assert np.array_equal(np.sort(ids), np.arange(4000))
    assert np.allclose(pos, full.pos[ids])


def test_invalid_rank_raises():
    with pytest.raises(ValueError):
        milky_way_model(100, rank=2, n_ranks=2)


def test_too_few_particles_raises():
    with pytest.raises(ValueError):
        milky_way_model(2)
