"""Run-health telemetry tests: heartbeats, verdicts, flight bundles.

The tentpole properties under test:

- heartbeats are observability-grade *free*: they read the clock with
  ``peek`` and never advance a :class:`VirtualClock` lane, so a
  heartbeat-instrumented run's trace is byte-identical to a bare one;
- the :class:`HealthMonitor` classifies ranks dead > stalled >
  straggler > ok from the world's failed-rank set, heartbeat age and a
  robust z-score over ``force_phase_seconds_total``;
- a :class:`FlightRecorder` dumps a complete post-mortem bundle when a
  run dies, and under a deterministic clock two runs of the same
  failing program produce byte-identical bundles.
"""

import filecmp
import json
import warnings

import pytest

from repro import SimulationConfig
from repro.core.parallel_simulation import run_parallel_simulation
from repro.ics import plummer_model
from repro.obs import (
    BufferSink,
    FlightRecorder,
    HeartbeatBoard,
    HealthMonitor,
    Tracer,
    VirtualClock,
    robust_zscores,
    write_bundle,
)
from repro.obs.health import BUNDLE_FILES, HEALTH_STATE_CODES
from repro.obs.metrics import MetricsRegistry
from repro.simmpi import RankFailedError, SimWorld, make_world


# -- HeartbeatBoard --------------------------------------------------------

def test_board_records_progress():
    board = HeartbeatBoard(2, clock=VirtualClock())
    assert board.last(0) is None
    board.beat(0, step=3, phase="gravity_local")
    rec = board.last(0)
    assert rec["step"] == 3 and rec["phase"] == "gravity_local"
    assert rec["beats"] == 1 and rec["ops"] == 0
    board.op(0)
    board.op(0)
    board.phase(0, "boundary_exchange")
    rec = board.last(0)
    assert rec["ops"] == 2 and rec["beats"] == 4
    assert rec["phase"] == "boundary_exchange"
    assert rec["step"] == 3            # step survives op/phase beats


def test_board_rejects_empty_world():
    with pytest.raises(ValueError):
        HeartbeatBoard(0)


def test_board_wait_marks_survive_failed_recv():
    """wait_begin is only cleared by wait_end -- a rank that dies inside
    a recv leaves its blocking target behind for the wait-for graph."""
    board = HeartbeatBoard(2, clock=VirtualClock())
    board.wait_begin(1, src=0, tag=7)
    assert board.last(1)["wait"] == {"src": 0, "tag": 7}
    board.wait_end(1)
    assert board.last(1)["wait"] is None
    board.wait_begin(1, src=0, tag=9)   # recv that never completes
    assert board.last(1)["wait"] == {"src": 0, "tag": 9}


def test_board_note_fault():
    board = HeartbeatBoard(2, clock=VirtualClock())
    board.note_fault(1, "delay")
    board.note_fault(1, "crash")
    rec = board.last(1)
    assert rec["last_fault"] == "crash" and rec["faults"] == 2


def test_board_peek_never_advances_virtual_clock():
    """The central determinism invariant: beating through a board does
    not move any rank's VirtualClock lane."""
    clock = VirtualClock()
    board = HeartbeatBoard(2, clock=clock)
    for _ in range(10):
        board.beat(0, step=1, phase="x")
        board.op(1)
    assert clock.peek(0) == 0.0 and clock.peek(1) == 0.0


def test_board_age_and_now_virtual():
    clock = VirtualClock(tick=1.0)
    board = HeartbeatBoard(2, clock=clock)
    board.beat(0)
    board.beat(1)
    assert board.age(0) == 0.0
    clock.now(0)                      # advance rank 0's lane only
    clock.now(0)
    board.beat(0)                     # rank 0 beats at t=2, rank 1 stuck at 0
    assert board.now() == 2.0
    assert board.age(0) == 0.0
    assert board.age(1) == 2.0        # trails the clock front by 2 ticks
    assert board.age(1, now=5.0) == 5.0


def test_board_age_none_before_first_beat():
    board = HeartbeatBoard(2, clock=VirtualClock())
    assert board.age(0) is None


def test_board_bind_metrics_counts_beats():
    reg = MetricsRegistry()
    board = HeartbeatBoard(2, clock=VirtualClock(), registry=reg)
    board.beat(0)
    board.op(0)
    board.phase(1, "x")
    counter = reg.get("heartbeats_total")
    assert {int(k[0]): v for k, v in counter.series().items()} == \
        {0: 2.0, 1: 1.0}


def test_board_snapshot_merge_most_beats_wins():
    a = HeartbeatBoard(2, clock=VirtualClock())
    b = HeartbeatBoard(2, clock=VirtualClock())
    a.beat(0, step=1, phase="old")
    for _ in range(3):
        b.beat(0, step=2, phase="new")
    b.beat(1, step=2)
    a.merge(b.snapshot())
    assert a.last(0)["phase"] == "new" and a.last(0)["step"] == 2
    assert a.last(1)["step"] == 2
    # Merging a stale snapshot back does not regress.
    stale = HeartbeatBoard(2, clock=VirtualClock())
    stale.beat(0, step=0, phase="stale")
    a.merge(stale.snapshot())
    assert a.last(0)["phase"] == "new"


def test_board_use_clock_adopts_tracer_clock():
    board = HeartbeatBoard(2)           # defaults to WallClock
    clock = VirtualClock()
    board.use_clock(clock)
    assert board.clock is clock
    board.use_clock(None)               # None is a no-op, not a reset
    assert board.clock is clock


# -- robust_zscores --------------------------------------------------------

def test_robust_zscores_outlier():
    z = robust_zscores({0: 1.0, 1: 1.1, 2: 0.9, 3: 10.0})
    assert z[3] > 3.5
    assert abs(z[0]) < 1.5 and abs(z[2]) < 1.5


def test_robust_zscores_degenerate_inputs():
    assert robust_zscores({}) == {}
    assert robust_zscores({0: 5.0}) == {0: 0.0}
    assert robust_zscores({0: 2.0, 1: 2.0, 2: 2.0}) == {0: 0.0, 1: 0.0,
                                                        2: 0.0}


def test_robust_zscores_mad_zero_meanad_fallback():
    # 3 of 4 identical: MAD is 0, meanAD fallback still flags the spike.
    z = robust_zscores({0: 1.0, 1: 1.0, 2: 1.0, 3: 9.0})
    assert z[3] > 3.0 and z[0] == z[1] == z[2] == 0.0


# -- HealthMonitor ---------------------------------------------------------

def _world_with_costs(costs, size=4):
    world = SimWorld(size)
    counter = world.metrics.counter("force_phase_seconds_total",
                                    labelnames=("rank", "phase"))
    for rank, secs in costs.items():
        counter.inc(secs, rank=rank, phase="gravity_local")
    return world


def test_monitor_states_and_gauges():
    world = _world_with_costs({0: 1.0, 1: 1.1, 2: 0.9, 3: 30.0})
    clock = VirtualClock(tick=1.0)
    board = HeartbeatBoard(4, clock=clock)
    for r in range(4):
        board.beat(r, step=1, phase="prime")
    monitor = HealthMonitor(world, board=board, stall_after=5.0)
    states = monitor.assess(now=0.0)
    assert states == {0: "ok", 1: "ok", 2: "ok", 3: "straggler"}
    # Stop beating rank 2 and advance "now" past the deadline.
    states = monitor.assess(now=10.0)
    assert states[2] == "stalled"       # everyone is stale at now=10 ...
    world.mark_rank_failed(1)
    states = monitor.assess(now=10.0)
    assert states[1] == "dead"          # ... but dead outranks stalled
    gauge = world.metrics.get("health_state")
    assert gauge is not None
    values = {int(k[0]): v for k, v in gauge.series().items()}
    assert values[1] == HEALTH_STATE_CODES["dead"]
    ages = world.metrics.get("heartbeat_age_seconds")
    assert ages is not None and all(v >= 0 for v in ages.series().values())


def test_monitor_two_rank_ratio_criterion():
    """At 2 ranks the robust z degenerates (each value sits one MAD from
    the median); the ratio criterion still catches a 3x skew."""
    world = _world_with_costs({0: 1.0, 1: 5.0}, size=2)
    monitor = HealthMonitor(world, board=None, straggler_ratio=3.0)
    states = monitor.assess()
    assert states == {0: "ok", 1: "straggler"}


def test_monitor_cost_floor_suppresses_noise():
    world = _world_with_costs({0: 1e-9, 1: 9e-9}, size=2)
    monitor = HealthMonitor(world, board=None,
                            min_straggler_seconds=1e-4)
    assert monitor.assess() == {0: "ok", 1: "ok"}


def test_monitor_dead_rank_excluded_from_straggler_pool():
    world = _world_with_costs({0: 1.0, 1: 1.1, 2: 0.9, 3: 30.0})
    world.mark_rank_failed(3)
    monitor = HealthMonitor(world, board=None)
    states = monitor.assess()
    assert states[3] == "dead"
    assert all(states[r] == "ok" for r in range(3))


def test_monitor_rejects_bad_deadline():
    with pytest.raises(ValueError):
        HealthMonitor(SimWorld(2), stall_after=0.0)


def test_monitor_stall_dumps_once_through_recorder(tmp_path):
    world = SimWorld(2)
    clock = VirtualClock(tick=1.0)
    board = HeartbeatBoard(2, clock=clock)
    board.beat(0)
    board.beat(1)
    recorder = FlightRecorder(out_dir=tmp_path / "bundle")
    recorder.bind(world=world, board=board)
    monitor = HealthMonitor(world, board=board, stall_after=2.0,
                            recorder=recorder)
    assert monitor.assess(now=0.0) == {0: "ok", 1: "ok"}
    assert recorder.bundle_path is None
    assert monitor.assess(now=10.0)[0] == "stalled"
    assert recorder.last_reason == "stall"
    first = recorder.bundle_path
    monitor.assess(now=20.0)            # still stalled: no second dump
    assert recorder.bundle_path == first
    manifest = json.loads((tmp_path / "bundle" / "manifest.json")
                          .read_text())
    assert manifest["reason"] == "stall"


# -- heartbeats are free: trace byte-identity ------------------------------

def _trace_lines(health):
    sink = BufferSink()
    tracer = Tracer(clock=VirtualClock(), sink=sink)
    run_parallel_simulation(2, plummer_model(300, seed=11),
                            SimulationConfig(theta=0.7), n_steps=2,
                            trace=tracer, health=health)
    from repro.obs import encode_jsonl_line
    return [encode_jsonl_line(e) for e in sink.events()]


def test_heartbeats_leave_trace_byte_identical():
    """Enabling run-health telemetry must not perturb the virtual-clock
    timeline: the traced run is byte-identical with heartbeats on."""
    assert _trace_lines(health=None) == _trace_lines(health=True)


# -- end-to-end heartbeats through the drivers -----------------------------

@pytest.mark.parametrize("transport", ["threads", "process"])
def test_driver_populates_board(transport):
    board = HeartbeatBoard(2)
    world = make_world(2, transport=transport, timeout=60.0)
    run_parallel_simulation(2, plummer_model(300, seed=7),
                            SimulationConfig(theta=0.7), n_steps=1,
                            world=world, health=board, timeout=60.0)
    for r in range(2):
        rec = board.last(r)
        assert rec is not None, f"rank {r} never beat on {transport}"
        assert rec["ops"] > 0 and rec["beats"] > rec["ops"]
        assert rec["step"] is not None and rec["phase"] is not None
    counter = world.metrics.get("heartbeats_total")
    assert counter is not None and counter.total() > 0


@pytest.mark.parametrize("transport", ["threads", "process"])
@pytest.mark.parametrize("ranks", [1, 2, 4])
def test_heartbeat_age_monotone_under_maskable_slowdown(ranks, transport):
    """Satellite (c): under a maskable slowdown schedule the board still
    fills for every rank and ``heartbeat_age_seconds`` is monotone in
    the probe time -- on 1/2/4 ranks, both transports."""
    schedule = None if ranks == 1 else \
        f"slowdown(rank={ranks - 1}, sleep=0.2ms)"
    board = HeartbeatBoard(ranks)
    world = make_world(ranks, transport=transport, schedule=schedule,
                       timeout=60.0)
    run_parallel_simulation(ranks, plummer_model(200, seed=3),
                            SimulationConfig(theta=0.8), n_steps=1,
                            world=world, health=board, timeout=60.0)
    monitor = HealthMonitor(world, board=board, stall_after=1e9)
    base = board.now()
    for r in range(ranks):
        ages = [board.age(r, now=base + dt) for dt in (0.0, 1.0, 5.0)]
        assert all(a is not None for a in ages)
        assert ages == sorted(ages), f"age not monotone for rank {r}"
    monitor.assess(now=base)
    gauge = world.metrics.get("heartbeat_age_seconds")
    values = {int(k[0]): v for k, v in gauge.series().items()}
    assert set(values) == set(range(ranks))
    assert all(v >= 0.0 for v in values.values())


# -- bundles ---------------------------------------------------------------

def test_write_bundle_contents(tmp_path):
    clock = VirtualClock()
    world = SimWorld(2)
    board = HeartbeatBoard(2, clock=clock)
    board.beat(0, step=4, phase="gravity_local")
    board.wait_begin(1, src=0, tag=0)
    config = SimulationConfig(theta=0.6)
    path = tmp_path / "bundle"
    write_bundle(path, reason="manual", world=world, board=board,
                 config=config)
    for name in BUNDLE_FILES:
        assert (path / name).exists(), name
    manifest = json.loads((path / "manifest.json").read_text())
    assert manifest["schema"] == 1
    assert manifest["reason"] == "manual"
    assert manifest["size"] == 2
    assert manifest["deterministic_clock"] is True
    assert manifest["failed_ranks"] == []
    hb = json.loads((path / "heartbeats.json").read_text())
    assert hb["ranks"]["0"]["phase"] == "gravity_local"
    assert hb["ranks"]["1"]["wait"] == {"src": 0, "tag": 0}
    cfg = json.loads((path / "config.json").read_text())
    assert cfg["config"]["theta"] == 0.6
    assert cfg["fingerprint"] == manifest["config_fingerprint"]
    # Deterministic clock: stacks are elided, wall metrics filtered.
    assert "omitted under a deterministic clock" in \
        (path / "stacks.txt").read_text()


def test_bundle_error_doc_carries_typed_fields(tmp_path):
    err = RankFailedError(1, waiting_rank=0,
                          detail="crash(rank=1, after=12)")
    path = write_bundle(tmp_path / "b", reason="rank-failed", error=err)
    manifest = json.loads((tmp_path / "b" / "manifest.json").read_text())
    doc = manifest["error"]
    assert doc["type"] == "RankFailedError"
    assert doc["failed_rank"] == 1


def _crash_run(out_dir, transport="threads"):
    world = make_world(2, transport=transport,
                       schedule="crash(rank=1, after=12)", timeout=30.0)
    recorder = FlightRecorder(out_dir=out_dir, capacity=512)
    tracer = Tracer(clock=VirtualClock(), sink=recorder.ring)
    with pytest.raises(Exception):
        run_parallel_simulation(2, plummer_model(400, seed=7),
                                SimulationConfig(theta=0.6), n_steps=2,
                                world=world, trace=tracer,
                                health=recorder, timeout=30.0)
    assert recorder.bundle_path is not None
    return recorder


@pytest.mark.parametrize("transport", ["threads", "process"])
def test_crash_auto_dumps_bundle(tmp_path, transport):
    recorder = _crash_run(tmp_path / "bundle", transport=transport)
    assert recorder.last_reason in ("rank-failed", "error")
    manifest = json.loads(
        (tmp_path / "bundle" / "manifest.json").read_text())
    # The crashed rank is always recorded; peers that died waiting on
    # it may be marked too -- guilt attribution is the analyzer's job.
    assert 1 in manifest["failed_ranks"]
    assert "crash" in (manifest["fault_schedule"] or "")
    hb = json.loads((tmp_path / "bundle" / "heartbeats.json").read_text())
    assert hb["ranks"], "bundle carries no heartbeats"
    trace = (tmp_path / "bundle" / "trace_tail.jsonl").read_text()
    assert trace.strip(), "bundle carries no trace tail"


def test_crash_bundles_byte_identical(tmp_path):
    """Acceptance: two runs of the same failing program under a
    VirtualClock produce byte-identical bundle directories."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        _crash_run(tmp_path / "a")
        _crash_run(tmp_path / "b")
    match, mismatch, errors = filecmp.cmpfiles(
        tmp_path / "a", tmp_path / "b", common=list(BUNDLE_FILES),
        shallow=False)
    assert sorted(match) == sorted(BUNDLE_FILES), \
        f"mismatch={mismatch} errors={errors}"


# -- watchdog grace plumbing (satellite a) ---------------------------------

def test_config_watchdog_grace_validation():
    assert SimulationConfig().watchdog_grace == 1.0
    with pytest.raises(ValueError):
        SimulationConfig(watchdog_grace=0.0)
    with pytest.raises(ValueError):
        SimulationConfig(watchdog_grace=-1.0)


def test_make_world_plumbs_watchdog_grace():
    world = make_world(2, transport="process", watchdog_grace=0.25)
    assert world.watchdog_grace == 0.25
    gauge = world.metrics.get("watchdog_grace_seconds")
    assert gauge is not None
    assert list(gauge.series().values()) == [0.25]
    # Ignored (not an error) on transports without a watchdog.
    threads = make_world(2, transport="threads", watchdog_grace=0.25)
    assert not hasattr(threads, "watchdog_grace")


def test_run_parallel_simulation_config_grace(tmp_path):
    """SimulationConfig(watchdog_grace=...) reaches the process world."""
    config = SimulationConfig(theta=0.8, watchdog_grace=2.5)
    run_parallel_simulation(2, plummer_model(200, seed=5), config,
                            n_steps=1, transport="process", health=True,
                            timeout=60.0)
