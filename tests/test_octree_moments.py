"""Tests for multipole moments and tight AABBs."""

import numpy as np
import pytest

from repro.octree import build_octree, compute_moments
from repro.octree.moments import quad_to_matrix, quad_trace


@pytest.fixture()
def tree_and_particles():
    rng = np.random.default_rng(10)
    pos = rng.normal(size=(3000, 3))
    mass = rng.uniform(0.5, 2.0, 3000)
    tree = build_octree(pos, nleaf=16)
    compute_moments(tree, pos, mass)
    return tree, pos, mass


def test_root_mass_is_total(tree_and_particles):
    tree, pos, mass = tree_and_particles
    assert tree.mass[0] == pytest.approx(mass.sum(), rel=1e-12)


def test_root_com_is_global_com(tree_and_particles):
    tree, pos, mass = tree_and_particles
    com = (mass[:, None] * pos).sum(axis=0) / mass.sum()
    assert np.allclose(tree.com[0], com)


def test_cell_mass_equals_sum_of_children(tree_and_particles):
    tree, _, _ = tree_and_particles
    internal = np.flatnonzero(~tree.is_leaf)
    for c in internal:
        ch = tree.children_of(int(c))
        assert tree.mass[c] == pytest.approx(tree.mass[ch].sum(), rel=1e-12)


def test_com_aggregates_from_children(tree_and_particles):
    tree, _, _ = tree_and_particles
    internal = np.flatnonzero(~tree.is_leaf)
    for c in internal[:300]:
        ch = tree.children_of(int(c))
        com = (tree.mass[ch, None] * tree.com[ch]).sum(axis=0) / tree.mass[c]
        assert np.allclose(tree.com[c], com, atol=1e-10)


def test_quadrupole_matches_direct_computation(tree_and_particles):
    tree, pos, mass = tree_and_particles
    spos = pos[tree.order]
    smass = mass[tree.order]
    for c in list(tree.leaf_cells()[:50]) + [0]:
        f, n = int(tree.body_first[c]), int(tree.body_count[c])
        d = spos[f:f + n] - tree.com[c]
        q = np.einsum("i,ij,ik->jk", smass[f:f + n], d, d)
        assert np.allclose(quad_to_matrix(tree.quad[c]), q, atol=1e-8)


def test_quadrupole_parallel_axis_identity(tree_and_particles):
    """Q_parent = sum_child (Q_child + m_child * offset offset^T)."""
    tree, _, _ = tree_and_particles
    internal = np.flatnonzero(~tree.is_leaf)
    for c in internal[:100]:
        ch = tree.children_of(int(c))
        q = np.zeros((3, 3))
        for k in ch:
            off = tree.com[k] - tree.com[c]
            q += quad_to_matrix(tree.quad[k]) + tree.mass[k] * np.outer(off, off)
        assert np.allclose(quad_to_matrix(tree.quad[c]), q, atol=1e-8)


def test_quadrupole_positive_semidefinite(tree_and_particles):
    tree, _, _ = tree_and_particles
    mats = quad_to_matrix(tree.quad)
    eig = np.linalg.eigvalsh(mats)
    assert eig.min() > -1e-8


def test_quad_trace_helper(tree_and_particles):
    tree, _, _ = tree_and_particles
    assert np.allclose(quad_trace(tree.quad),
                       np.trace(quad_to_matrix(tree.quad), axis1=-2, axis2=-1))


def test_tight_aabb_contains_cell_particles(tree_and_particles):
    tree, pos, _ = tree_and_particles
    spos = pos[tree.order]
    for c in range(min(tree.n_cells, 500)):
        f, n = int(tree.body_first[c]), int(tree.body_count[c])
        sl = spos[f:f + n]
        assert np.all(sl >= tree.bmin[c] - 1e-12)
        assert np.all(sl <= tree.bmax[c] + 1e-12)
        assert np.allclose(tree.bmin[c], sl.min(axis=0))
        assert np.allclose(tree.bmax[c], sl.max(axis=0))


def test_aabb_nested_in_parent(tree_and_particles):
    tree, _, _ = tree_and_particles
    child = np.flatnonzero(tree.cell_parent >= 0)
    p = tree.cell_parent[child]
    assert np.all(tree.bmin[child] >= tree.bmin[p] - 1e-12)
    assert np.all(tree.bmax[child] <= tree.bmax[p] + 1e-12)


def test_com_inside_cell_aabb(tree_and_particles):
    # Tolerance reflects prefix-sum cancellation error (absolute, scales
    # with the global sum magnitude), not an algorithmic defect.
    tree, _, _ = tree_and_particles
    assert np.all(tree.com >= tree.bmin - 1e-9)
    assert np.all(tree.com <= tree.bmax + 1e-9)


def test_single_particle_cell_has_zero_quadrupole():
    pos = np.array([[0.3, 0.2, 0.1], [5.0, 5.0, 5.0]])
    mass = np.array([2.0, 3.0])
    tree = build_octree(pos, nleaf=1)
    compute_moments(tree, pos, mass)
    leaves = tree.leaf_cells()
    singles = leaves[tree.body_count[leaves] == 1]
    assert len(singles) >= 1
    assert np.allclose(tree.quad[singles], 0.0, atol=1e-12)
