"""Property-based tests of the LET machinery (hypothesis).

These check the invariants that make the distributed algorithm correct
for *any* geometry: mass conservation under pruning, well-formed child
pointers, and the consistency guarantee -- a receiver group inside the
viewer box can never be forced to open a pruned multipole.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import build_octree, compute_moments, compute_opening_radii
from repro.octree.properties import aabb_distance
from repro.parallel import build_let_for_box, boundary_structure


@st.composite
def tree_and_viewer(draw):
    seed = draw(st.integers(0, 2 ** 31))
    n = draw(st.integers(30, 400))
    rng = np.random.default_rng(seed)
    pos = rng.normal(size=(n, 3)) * draw(st.floats(0.5, 20.0))
    mass = rng.uniform(0.1, 1.0, n)
    theta = draw(st.floats(0.3, 1.0))
    # viewer box: random center/size, possibly overlapping the source
    center = rng.uniform(-30, 30, 3)
    half = draw(st.floats(0.1, 20.0))
    return pos, mass, theta, center - half, center + half


def _prepared(pos, mass, theta):
    tree = build_octree(pos, nleaf=8)
    compute_moments(tree, pos, mass)
    compute_opening_radii(tree, theta, "bonsai")
    return tree, pos[tree.order], mass[tree.order]


@settings(max_examples=40, deadline=None)
@given(tree_and_viewer())
def test_let_mass_conserved(case):
    pos, mass, theta, bmin, bmax = case
    tree, spos, smass = _prepared(pos, mass, theta)
    let = build_let_for_box(tree, spos, smass, bmin, bmax)
    assert let.total_mass() == pytest.approx(mass.sum(), rel=1e-9)
    # exported particle mass is part of the structure
    covered = let.part_mass.sum() + let.mass[let.pruned].sum()
    # covered counts pruned multipoles + particles; internal kept cells
    # hold the rest through their children, so covered <= total
    assert covered <= mass.sum() * (1 + 1e-9)


@settings(max_examples=40, deadline=None)
@given(tree_and_viewer())
def test_let_child_pointers_wellformed(case):
    pos, mass, theta, bmin, bmax = case
    tree, spos, smass = _prepared(pos, mass, theta)
    let = build_let_for_box(tree, spos, smass, bmin, bmax)
    internal = np.flatnonzero(let.n_children > 0)
    for c in internal:
        lo = let.first_child[c]
        hi = lo + let.n_children[c]
        assert 0 < lo < hi <= let.n_cells
        assert let.mass[lo:hi].sum() == pytest.approx(let.mass[c], rel=1e-9)


@settings(max_examples=40, deadline=None)
@given(tree_and_viewer())
def test_pruned_cells_always_accepted_by_viewer(case):
    """The consistency guarantee behind hiding communication: any point
    (hence any group AABB) inside the viewer box is farther from a
    pruned cell's COM than its opening radius."""
    pos, mass, theta, bmin, bmax = case
    tree, spos, smass = _prepared(pos, mass, theta)
    let = build_let_for_box(tree, spos, smass, bmin, bmax)
    pruned = np.flatnonzero(let.pruned)
    if len(pruned) == 0:
        return
    d = aabb_distance(bmin, bmax, let.com[pruned])
    assert np.all(d > let.r_crit[pruned])


@settings(max_examples=30, deadline=None)
@given(tree_and_viewer())
def test_boundary_structure_invariants(case):
    pos, mass, theta, _, _ = case
    tree, spos, smass = _prepared(pos, mass, theta)
    b = boundary_structure(tree, spos, smass)
    assert b.total_mass() == pytest.approx(mass.sum(), rel=1e-9)
    assert b.n_cells <= tree.n_cells
    # particle ranges stay within the exported arrays
    leaves = np.flatnonzero((b.n_children == 0) & (b.body_count > 0))
    if len(leaves):
        assert (b.body_first[leaves] + b.body_count[leaves]).max() \
            <= b.n_particles
